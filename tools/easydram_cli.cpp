// The unified EasyDRAM experiment runner: every paper figure/table
// reproducer and ablation registers itself as a named scenario; this binary
// lists them, runs parameter sweeps across a thread pool with deterministic
// per-task RNG streams, and writes machine-readable JSON summaries.
//
//   easydram_cli --list
//   easydram_cli --scenario fig13_trcd_speedup --threads 4 --out r.json
//   easydram_cli --scenario quickstart --iters 1
//   easydram_cli --scenario channel_scaling --channels 8 --mapping channel

#include "cli/scenario.hpp"

int main(int argc, char** argv) {
  return easydram::cli::scenario_main(
      std::span<const std::string_view>{}, argc, argv);
}
