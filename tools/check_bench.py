#!/usr/bin/env python3
"""Validate an easydram-bench-v2 results document and gate CI on it.

Three layers of checking, in increasing strictness:

1. Structure (always fatal): the schema tag, `all_finite`, the presence of
   every subsystem bench, and the per-bench detail payloads
   (channel-pump scaling points, ECC overhead fields, the QoS policy
   family). These are the crash/NaN checks the old inline CI gate ran --
   they never threshold absolute speed, so noisy runners cannot flake
   them.
2. Stability (fatal on multi-core hosts, warn-only otherwise): every
   bench's CV (stddev / median over the warmup-discarded measured reps)
   must stay under --cv-max. On a 1-core host the harness shares its core
   with the OS, so CV violations only warn there.
3. Regression (optional, fatal when comparable): with --baseline, each
   bench's median must not exceed the baseline median by more than
   --regression-max-percent. The comparison is skipped with a warning
   when the documents are not comparable: baseline still on schema v1,
   different host_cores, or different --perf-scale.

Exit codes: 0 = pass, 1 = a gate failed, 2 = unusable input (bad JSON,
wrong schema, missing fields).
"""

import argparse
import json
import math
import sys

SCHEMA = "easydram-bench-v2"

REQUIRED_BENCHES = [
    "mitigation_overhead",
    "raidr_refresh",
    "channel_parallel_scaling",
    "ecc_scrub_overhead",
    "qos_scheduler_overhead",
    "stream_sweep",
    "latency_sweep",
]

STAT_FIELDS = [
    "host_seconds_best",
    "host_seconds_mean",
    "host_seconds_median",
    "host_seconds_p95",
    "host_seconds_stddev",
    "cv",
]


class SchemaError(Exception):
    """The document cannot be checked at all (exit 2)."""


def finite_pos(x):
    return isinstance(x, (int, float)) and math.isfinite(x) and x > 0


def finite(x):
    return isinstance(x, (int, float)) and math.isfinite(x)


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SchemaError(f"{path}: {e}")


def check_structure(doc, failures):
    """The ported inline-gate checks: presence and finiteness only."""
    if doc.get("schema") != SCHEMA:
        raise SchemaError(
            f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    if doc.get("all_finite") is not True:
        failures.append("all_finite is not true: a bench produced a "
                        "non-finite or non-positive measurement")
    benches = doc.get("benches")
    if not benches:
        raise SchemaError("no benches in document")
    by_name = {b.get("name"): b for b in benches}
    for name in REQUIRED_BENCHES:
        if name not in by_name:
            failures.append(f"required bench missing: {name}")

    for b in benches:
        name = b.get("name", "<unnamed>")
        for s in b.get("warmup_host_seconds", []):
            if not finite_pos(s):
                failures.append(f"{name}: non-finite warmup sample {s!r}")
        reps = b.get("host_seconds_per_rep", [])
        if not reps:
            failures.append(f"{name}: no measured reps")
        for s in reps:
            if not finite_pos(s):
                failures.append(f"{name}: non-finite measured sample {s!r}")
        for field in STAT_FIELDS:
            if field not in b:
                failures.append(f"{name}: missing {field}")
            elif not finite(b[field]):
                failures.append(f"{name}: non-finite {field} = {b[field]!r}")

    # Channel-pump scaling: all four worker points present and finite; on
    # hosts with enough cores the 4-worker point must not be slower than
    # serial (relative-to-self, so runner speed cannot flake it).
    scaling = by_name.get("channel_parallel_scaling")
    if scaling is not None:
        detail = scaling.get("detail") or {}
        points = {p.get("workers"): p for p in detail.get("points", [])}
        if sorted(points) != [1, 2, 4, 8]:
            failures.append("channel_parallel_scaling: worker points are "
                            f"{sorted(points)}, expected [1, 2, 4, 8]")
        else:
            for p in points.values():
                if not finite(p.get("speedup_vs_1")):
                    failures.append(
                        f"channel_parallel_scaling: bad speedup point {p}")
                if not finite_pos(p.get("host_seconds_best")):
                    failures.append(
                        f"channel_parallel_scaling: bad timing point {p}")
            if detail.get("host_cores", 0) >= 4 and finite(
                    points[4].get("speedup_vs_1")):
                if points[4]["speedup_vs_1"] < 1.0:
                    failures.append(
                        "channel_parallel_scaling: 4-worker speedup "
                        f"{points[4]['speedup_vs_1']:.3f} < 1.0 on a "
                        f"{detail['host_cores']}-core host")

    # Error pipeline: ECC-on and default-off both ran with finite host and
    # emulated-time overheads.
    ecc = by_name.get("ecc_scrub_overhead")
    if ecc is not None:
        ed = ecc.get("detail") or {}
        for key in ("ecc_host_seconds_best", "baseline_host_seconds_best",
                    "overhead_percent", "emulated_overhead_percent"):
            if not finite(ed.get(key)):
                failures.append(f"ecc_scrub_overhead: non-finite {key}")
        if not (ed.get("ecc_emulated_ps", 0) > 0
                and ed.get("baseline_emulated_ps", 0) > 0):
            failures.append("ecc_scrub_overhead: emulated-time fields "
                            "missing or non-positive")

    # QoS scheduler family: every policy point present with finite timings.
    qos = by_name.get("qos_scheduler_overhead")
    if qos is not None:
        qpoints = {p.get("sched"): p
                   for p in (qos.get("detail") or {}).get("points", [])}
        expected = ["atlas", "bliss", "frfcfs", "parbs", "tcm"]
        if sorted(qpoints) != expected:
            failures.append(f"qos_scheduler_overhead: policy points are "
                            f"{sorted(qpoints)}, expected {expected}")
        else:
            for p in qpoints.values():
                if not finite_pos(p.get("host_seconds_best")):
                    failures.append(
                        f"qos_scheduler_overhead: bad timing point {p}")
                if not finite(p.get("overhead_vs_frfcfs_percent")):
                    failures.append(
                        f"qos_scheduler_overhead: bad overhead point {p}")
    return by_name


def check_cv(doc, cv_max, failures, warnings):
    """Stability gate: warn-only on 1-core hosts, fatal otherwise."""
    strict = doc.get("host_cores", 0) >= 2
    for b in doc.get("benches", []):
        cv = b.get("cv")
        if not finite(cv):
            continue  # already a structure failure
        if cv > cv_max:
            msg = (f"{b.get('name')}: cv {cv:.3f} exceeds --cv-max "
                   f"{cv_max:.3f}")
            if strict:
                failures.append(msg)
            else:
                warnings.append(msg + " (warn-only: host_cores < 2)")


def check_regression(doc, base, pct_max, failures, warnings):
    """Median-vs-baseline gate; skipped when documents are incomparable."""
    if base.get("schema") != SCHEMA:
        warnings.append(f"regression check skipped: baseline schema is "
                        f"{base.get('schema')!r}, not {SCHEMA!r}")
        return
    for field in ("host_cores", "scale"):
        if doc.get(field) != base.get(field):
            warnings.append(
                f"regression check skipped: {field} differs "
                f"({doc.get(field)!r} vs baseline {base.get(field)!r})")
            return
    base_by_name = {b.get("name"): b for b in base.get("benches", [])}
    for b in doc.get("benches", []):
        name = b.get("name")
        old = base_by_name.get(name)
        if old is None:
            warnings.append(f"{name}: not in baseline, regression "
                            "check skipped for this bench")
            continue
        new_med = b.get("host_seconds_median")
        old_med = old.get("host_seconds_median")
        if not (finite_pos(new_med) and finite_pos(old_med)):
            continue  # already a structure failure (or baseline defect)
        pct = (new_med - old_med) / old_med * 100.0
        if pct > pct_max:
            failures.append(
                f"{name}: median {new_med:.4f}s is {pct:.1f}% slower than "
                f"baseline {old_med:.4f}s (limit {pct_max:.0f}%)")


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("results", help="BENCH_results.json to validate")
    ap.add_argument("--baseline",
                    help="previous results document to compare medians "
                         "against (same host and scale required)")
    ap.add_argument("--cv-max", type=float, default=0.35,
                    help="per-bench CV ceiling (default 0.35; warn-only "
                         "when the host has fewer than 2 cores)")
    ap.add_argument("--regression-max-percent", type=float, default=50.0,
                    help="median slowdown vs baseline that fails the gate "
                         "(default 50)")
    ap.add_argument("--report",
                    help="write a machine-readable verdict JSON here")
    args = ap.parse_args(argv)

    failures = []
    warnings = []
    try:
        doc = load(args.results)
        check_structure(doc, failures)
        check_cv(doc, args.cv_max, failures, warnings)
        if args.baseline:
            base = load(args.baseline)
            check_regression(doc, base, args.regression_max_percent,
                             failures, warnings)
    except SchemaError as e:
        print(f"check_bench: SCHEMA ERROR: {e}", file=sys.stderr)
        if args.report:
            with open(args.report, "w") as f:
                json.dump({"verdict": "schema-error", "error": str(e)}, f,
                          indent=2)
        return 2

    for w in warnings:
        print(f"check_bench: WARNING: {w}")
    for f_ in failures:
        print(f"check_bench: FAIL: {f_}", file=sys.stderr)
    verdict = "fail" if failures else "pass"
    names = [b.get("name") for b in doc.get("benches", [])]
    print(f"check_bench: {verdict} "
          f"({len(names)} benches, {len(failures)} failures, "
          f"{len(warnings)} warnings)")
    if args.report:
        with open(args.report, "w") as f:
            json.dump({
                "verdict": verdict,
                "benches": names,
                "failures": failures,
                "warnings": warnings,
                "cv_max": args.cv_max,
                "regression_max_percent": args.regression_max_percent,
                "baseline": args.baseline,
            }, f, indent=2)
            f.write("\n")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
