#!/usr/bin/env python3
"""Documentation gate: dead intra-repo links and scenario coverage.

Checks, over README.md and every markdown file under docs/:

1. Every relative markdown link (no URL scheme) resolves to an existing
   file or directory in the repository (anchors are stripped).
2. docs/scenarios.md names every scenario the CLI reports via --list, so
   a new scenario cannot land undocumented.
3. docs/linting.md documents every check easydram-lint registers
   (tools/lint/easydram_lint.py --list-checks), so a new check cannot
   land undocumented either.

Usage:
    tools/check_docs.py [--cli PATH/TO/easydram_cli] [--repo PATH]

Without --cli the scenario-coverage check falls back to parsing the
registration calls in src/cli/scenarios_*.cpp, so the gate also works
before a build exists.
"""

import argparse
import pathlib
import re
import subprocess
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SCHEME_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")
REGISTER_RE = re.compile(r"r\.add\(\{\"([a-z0-9_]+)\"")


def doc_files(repo: pathlib.Path):
    files = [repo / "README.md"]
    files += sorted((repo / "docs").glob("**/*.md"))
    return [f for f in files if f.is_file()]


def check_links(repo: pathlib.Path) -> list:
    errors = []
    for doc in doc_files(repo):
        for lineno, line in enumerate(doc.read_text().splitlines(), 1):
            for target in LINK_RE.findall(line):
                if SCHEME_RE.match(target):  # http:, https:, mailto: ...
                    continue
                path = target.split("#", 1)[0]
                if not path:  # Pure in-page anchor.
                    continue
                resolved = (doc.parent / path).resolve()
                if not resolved.exists():
                    rel = doc.relative_to(repo)
                    errors.append(f"{rel}:{lineno}: dead link -> {target}")
    return errors


def scenario_names(repo: pathlib.Path, cli: str | None) -> set:
    if cli:
        out = subprocess.run([cli, "--list"], check=True,
                             capture_output=True, text=True).stdout
        # Scenario names are the non-indented lines of --list output.
        return {line.strip() for line in out.splitlines()
                if line and not line.startswith(" ")}
    names = set()
    for src in sorted((repo / "src" / "cli").glob("scenarios_*.cpp")):
        names.update(REGISTER_RE.findall(src.read_text()))
    return names


def check_scenario_coverage(repo: pathlib.Path, cli: str | None) -> list:
    names = scenario_names(repo, cli)
    if not names:
        return ["no scenarios found (bad --cli path or source layout?)"]
    reference = (repo / "docs" / "scenarios.md").read_text()
    # Whole-word match: "raidr_baseline" in the text must not satisfy a
    # future scenario named "raidr" (scenario names are \w-only, so \b
    # brackets them exactly).
    return [f"docs/scenarios.md: scenario '{n}' is not documented"
            for n in sorted(names)
            if not re.search(rf"\b{re.escape(n)}\b", reference)]


def lint_check_names(repo: pathlib.Path) -> set:
    out = subprocess.run(
        [sys.executable, str(repo / "tools" / "lint" / "easydram_lint.py"),
         "--list-checks"],
        check=True, capture_output=True, text=True).stdout
    return {line.split(":", 1)[0].strip()
            for line in out.splitlines() if ":" in line}


def check_lint_coverage(repo: pathlib.Path) -> list:
    names = lint_check_names(repo)
    if not names:
        return ["no lint checks reported by easydram-lint --list-checks"]
    reference = (repo / "docs" / "linting.md").read_text()
    # Checks must appear as their own catalog heading, not merely in
    # passing prose: "#### `check-name`".
    return [f"docs/linting.md: lint check '{n}' has no catalog section"
            for n in sorted(names)
            if f"#### `{n}`" not in reference]


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--cli", help="easydram_cli binary for --list coverage")
    ap.add_argument("--repo", default=str(pathlib.Path(__file__).parent.parent),
                    help="repository root (default: this script's parent)")
    args = ap.parse_args()
    repo = pathlib.Path(args.repo).resolve()

    errors = (check_links(repo) + check_scenario_coverage(repo, args.cli)
              + check_lint_coverage(repo))
    for e in errors:
        print(f"check_docs: {e}", file=sys.stderr)
    if not errors:
        n_docs = len(doc_files(repo))
        n_scen = len(scenario_names(repo, args.cli))
        n_checks = len(lint_check_names(repo))
        print(f"check_docs OK: {n_docs} docs, links clean, "
              f"{n_scen} scenarios documented, "
              f"{n_checks} lint checks documented")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
