#!/usr/bin/env python3
"""easydram-lint: determinism-contract static analysis for the EasyDRAM repo.

The repository's core contract is bit-identical scenario JSON at any
`--threads`, pinned dynamically by the golden-hash suite. This linter
enforces the *static* half of that contract: it flags source constructs
whose behaviour can differ run-to-run or thread-count-to-thread-count,
before they ever reach a golden hash. See docs/linting.md for the check
catalog and the invariant each check guards.

Engines
-------
Two analysis engines are available:

* ``tokens`` (always available): a comment/string-aware token scanner.
  This is the engine of record — CI pins it so finding counts are
  reproducible on any machine, with or without clang installed.
* ``clang`` (optional): uses clang's python bindings (libclang) for
  AST-accurate variants of the type-sensitive checks, falling back to the
  token engine per-file on any parse failure. Selected only when
  ``clang.cindex`` imports and a libclang shared object resolves.

``--engine auto`` (the default) prefers ``clang`` when usable, otherwise
``tokens``.

Suppressions
------------
A finding on line N is suppressed by a comment on the same line::

    foo();  // NOLINT-easydram(banned-entropy): justification here

or on the immediately preceding line::

    // NOLINT-easydram-next-line(raw-time-units): justification here
    std::int64_t window_ps();

``NOLINT-easydram`` with no check list suppresses every check on that
line. Justifications after ``:`` are a convention, not parsed.

Exit codes: 0 = clean, 1 = findings, 2 = usage or internal error.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import re
import sys

# ---------------------------------------------------------------------------
# Findings and suppression


@dataclasses.dataclass
class Finding:
    file: str  # Repo-relative, forward slashes.
    line: int  # 1-based.
    check: str
    message: str

    def key(self):
        return (self.file, self.line, self.check, self.message)


NOLINT_RE = re.compile(r"//\s*NOLINT-easydram(?:\(([^)]*)\))?")
NOLINT_NEXT_RE = re.compile(r"//\s*NOLINT-easydram-next-line(?:\(([^)]*)\))?")


def suppressed_checks(raw_lines, lineno):
    """Checks suppressed at 1-based `lineno`; returns None for 'all'."""
    out = set()
    line = raw_lines[lineno - 1]
    prev = raw_lines[lineno - 2] if lineno >= 2 else ""
    for regex, text in ((NOLINT_NEXT_RE, prev), (NOLINT_RE, line)):
        m = regex.search(text)
        # NOLINT-easydram-next-line also matches NOLINT_RE's prefix; the
        # same-line pattern must not fire on a next-line marker.
        if regex is NOLINT_RE and NOLINT_NEXT_RE.search(text):
            m = None
        if not m:
            continue
        if m.group(1) is None or not m.group(1).strip():
            return None  # Bare NOLINT: everything suppressed.
        out.update(c.strip() for c in m.group(1).split(","))
    return out


def is_suppressed(raw_lines, lineno, check):
    sup = suppressed_checks(raw_lines, lineno)
    return sup is None or check in sup


# ---------------------------------------------------------------------------
# Comment/string stripping (shared by every token check)


def strip_comments_and_strings(text):
    """Returns `text` with comments and string/char literals blanked.

    Replaced regions become spaces so line numbers and column offsets are
    preserved. Handles // and /* */ comments, "..." and '...' literals
    with escapes. Raw string literals are blanked conservatively from
    R"( to the next )" (custom delimiters are not used in this repo).
    """
    out = list(text)
    i, n = 0, len(text)
    NORMAL, LINE, BLOCK, STR, CHR, RAW = range(6)
    state = NORMAL
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state = LINE
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = BLOCK
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == "R" and text[i + 1 : i + 3] == '"(':
                state = RAW
                out[i] = out[i + 1] = out[i + 2] = " "
                i += 3
                continue
            if c == '"':
                state = STR
                i += 1
                continue
            if c == "'":
                state = CHR
                i += 1
                continue
            i += 1
            continue
        if state == LINE:
            if c == "\n":
                state = NORMAL
            else:
                out[i] = " "
            i += 1
            continue
        if state == BLOCK:
            if c == "*" and nxt == "/":
                state = NORMAL
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c != "\n":
                out[i] = " "
            i += 1
            continue
        if state == RAW:
            if c == ")" and nxt == '"':
                state = NORMAL
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c != "\n":
                out[i] = " "
            i += 1
            continue
        # STR / CHR
        if c == "\\":
            out[i] = " "
            if i + 1 < n and text[i + 1] != "\n":
                out[i + 1] = " "
            i += 2
            continue
        if (state == STR and c == '"') or (state == CHR and c == "'"):
            state = NORMAL
            i += 1
            continue
        if c != "\n":
            out[i] = " "
        i += 1
    return "".join(out)


# ---------------------------------------------------------------------------
# Shared grammar fragments

RAW_INT_TYPE = (
    r"(?:(?:unsigned\s+|signed\s+)?(?:long\s+long|long|int|short|char)"
    r"|(?:std::)?u?int(?:8|16|32|64)_t"
    r"|(?:std::)?size_t|(?:std::)?ptrdiff_t)"
)
TIME_SUFFIX_NAME = r"\w+_(?:ps|cycles)"
UNORDERED_TYPE_RE = re.compile(r"\bstd\s*::\s*unordered_(?:multi)?(?:map|set)\s*<")


def balanced_angle_end(text, open_idx):
    """Index one past the matching '>' for the '<' at `open_idx`, or -1."""
    depth = 0
    i = open_idx
    while i < len(text):
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif c in ";{}" and depth == 0:
            return -1
        i += 1
    return -1


# ---------------------------------------------------------------------------
# Check: nondeterministic-iteration


def collect_unordered_names(stripped_by_file):
    """Identifiers declared anywhere in the scan set with a type mentioning
    std::unordered_{map,set} (including nested, e.g. a vector of maps)."""
    names = set()
    for stripped in stripped_by_file.values():
        for m in UNORDERED_TYPE_RE.finditer(stripped):
            end = balanced_angle_end(stripped, stripped.index("<", m.start()))
            if end < 0:
                continue
            # Walk outward over any enclosing template arguments
            # (vector<unordered_map<...>> v) to the end of the full type,
            # then take the declared identifier that follows.
            j = end
            while j < len(stripped) and stripped[j] in "> \t\n":
                j += 1
            tail = stripped[j : j + 200]
            dm = re.match(r"[&*\s]*([A-Za-z_]\w*)\s*[;={(,)]", tail)
            if dm and dm.group(1) not in ("const", "constexpr", "mutable"):
                names.add(dm.group(1))
    return names


def check_nondeterministic_iteration(path, stripped_lines, ctx):
    """Range-for / iterator traversal of an unordered container.

    Hash-map iteration order is unspecified and varies with insertion
    history, libstdc++ version, and (for pointer keys) ASLR: any loop
    over an unordered container that feeds output, stats, or command
    ordering breaks run-to-run determinism. Lookup (find/count/[]/erase)
    is fine. Fix: use an ordered container, or materialize + sort before
    iterating (suppress the materializing line with a justification).
    """
    findings = []
    names = ctx["unordered_names"]
    if not names:
        return findings
    name_alt = "|".join(re.escape(n) for n in sorted(names))
    range_for = re.compile(
        r"for\s*\([^;)]*:\s*\*?(?:\w+(?:\.|->))*(%s)\b(?:\s*\[[^\]]*\])?\s*\)" % name_alt
    )
    begin_call = re.compile(
        r"\b(%s)\b(?:\s*\[[^\]]*\])?\s*\.\s*c?r?begin\s*\(" % name_alt
    )
    for i, line in enumerate(stripped_lines, 1):
        m = range_for.search(line) or begin_call.search(line)
        if m:
            findings.append(
                Finding(
                    path,
                    i,
                    "nondeterministic-iteration",
                    f"iteration over unordered container '{m.group(1)}': hash-map "
                    "order is unspecified and breaks run-to-run determinism; use an "
                    "ordered container or sort a materialized copy before iterating",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# Check: banned-entropy

ENTROPY_PATTERNS = [
    (re.compile(r"\bstd\s*::\s*rand\b|(?<![\w.:>])s?rand\s*\("), "std::rand"),
    (re.compile(r"\bstd\s*::\s*random_device\b"), "std::random_device"),
    (re.compile(r"\bstd\s*::\s*mt19937(?:_64)?\b"), "std::mt19937"),
    (
        re.compile(r"\bstd\s*::\s*chrono\s*::\s*system_clock\b"),
        "std::chrono::system_clock",
    ),
    (
        re.compile(r"\bstd\s*::\s*chrono\s*::\s*steady_clock\b"),
        "std::chrono::steady_clock",
    ),
    (
        re.compile(r"\bstd\s*::\s*chrono\s*::\s*high_resolution_clock\b"),
        "std::chrono::high_resolution_clock",
    ),
    (re.compile(r"\bstd\s*::\s*time\s*\(|(?<![\w.:>])time\s*\(\s*(?:NULL|nullptr|0|\))"),
     "time()"),
    (re.compile(r"(?<![\w.:>])gettimeofday\s*\("), "gettimeofday"),
    (re.compile(r"(?<![\w.:>])clock_gettime\s*\("), "clock_gettime"),
]

# Host-timing code measures the simulator, not the simulation: its clock
# reads never feed scenario JSON payloads.
ENTROPY_ALLOWED = re.compile(r"(^|/)src/cli/(measure|perf)\.(hpp|cpp)$")


def check_banned_entropy(path, stripped_lines, ctx):
    """Wall-clock reads and unseeded/system randomness in simulation code.

    Every simulator value must derive from the scenario seed through the
    deterministic Xoshiro/SplitMix generators in common/rng.hpp; host
    clocks and system entropy make output depend on the machine and the
    moment. Host-timing code (src/cli/measure, src/cli/perf) is exempt —
    it measures the simulator itself.
    """
    findings = []
    if ENTROPY_ALLOWED.search(path):
        return findings
    for i, line in enumerate(stripped_lines, 1):
        for regex, label in ENTROPY_PATTERNS:
            if regex.search(line):
                findings.append(
                    Finding(
                        path,
                        i,
                        "banned-entropy",
                        f"{label} is nondeterministic; simulation code must use the "
                        "seeded Xoshiro256**/SplitMix64 generators in common/rng.hpp "
                        "(host-timing belongs in src/cli/measure or src/cli/perf)",
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# Check: raw-time-units

PARAM_OR_FIELD_RE = re.compile(
    r"\b(?:const\s+)?(%s)\s*[&]?\s+(%s)\s*[,;={)\[]" % (RAW_INT_TYPE, TIME_SUFFIX_NAME)
)
RAW_RETURN_RE = re.compile(
    r"\b(?:const\s+)?(%s)\s+[&]?\s*(%s)\s*\(" % (RAW_INT_TYPE, TIME_SUFFIX_NAME)
)
MIXED_ARITH_RE = re.compile(
    r"\b\w+_ps\b\s*[-+*/%]\s*\w+_cycles\b|\b\w+_cycles\b\s*[-+*/%]\s*\w+_ps\b"
)


def check_raw_time_units(path, stripped_lines, ctx):
    """Raw integers posing as time quantities in public headers.

    An `std::int64_t window_ps` and an `std::int64_t window_cycles` add,
    compare, and convert silently — the classic unit bug the strong
    `Picoseconds` / `Cycles` wrappers in common/units.hpp exist to make
    unrepresentable. In public headers (.hpp under src/), parameters,
    returns, and fields suffixed `_ps` / `_cycles` must use the wrapper
    types; arithmetic mixing the two suffixes is flagged everywhere.
    """
    findings = []
    is_header = path.endswith((".hpp", ".h"))
    for i, line in enumerate(stripped_lines, 1):
        if is_header:
            for m in PARAM_OR_FIELD_RE.finditer(line):
                findings.append(
                    Finding(
                        path,
                        i,
                        "raw-time-units",
                        f"'{m.group(2)}' is declared {m.group(1)}; time quantities in "
                        "public headers must use Picoseconds/Cycles from "
                        "common/units.hpp",
                    )
                )
            for m in RAW_RETURN_RE.finditer(line):
                # A declaration like `int64_t foo_cycles(` is a function
                # returning a raw int; skip if PARAM_OR_FIELD already got it.
                findings.append(
                    Finding(
                        path,
                        i,
                        "raw-time-units",
                        f"function '{m.group(2)}' returns raw {m.group(1)}; return "
                        "Picoseconds/Cycles from common/units.hpp instead",
                    )
                )
        for m in MIXED_ARITH_RE.finditer(line):
            findings.append(
                Finding(
                    path,
                    i,
                    "raw-time-units",
                    "arithmetic mixes *_ps and *_cycles quantities; convert "
                    "explicitly through Frequency before combining",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# Check: float-accumulation-order

FLOAT_DECL_RE = re.compile(r"\b(?:double|float)\s+[&]?\s*([A-Za-z_]\w*)\b")
# Declarations that make an accumulator definitely NOT floating-point, so a
# float literal on the right-hand side (e.g. inside a comparison selecting a
# char appended to a std::string) is not misattributed to the accumulation.
NONFLOAT_DECL_RE = re.compile(
    r"\b(?:(?:std::)?(?:string|u?int(?:8|16|32|64)_t|size_t)|bool|char"
    r"|(?:unsigned\s+|signed\s+)?(?:long\s+long|long|int|short)"
    r"|Picoseconds|Cycles|Frequency)\s+[&]?\s*([A-Za-z_]\w*)\b"
)
FLOAT_HINT_RE = re.compile(
    r"static_cast\s*<\s*(?:double|float)\s*>|\b\d+\.\d*(?:[eE][-+]?\d+)?[fF]?\b"
)


def check_float_accumulation(path, stripped_lines, ctx):
    """Floating-point `+=` reductions outside common/stats.

    FP addition is non-associative: the moment a reduction's iteration
    order changes (the parallel core will shard exactly these loops), the
    low bits of the sum change and golden hashes drift. Accumulations
    that affect output must run through the fixed-order helpers in
    common/stats, use integer arithmetic, or carry a justification that
    the traversal order is structurally fixed.
    """
    findings = []
    if re.search(r"(^|/)src/common/stats\.(hpp|cpp)$", path):
        return findings
    float_names = set()
    nonfloat_names = set()
    for line in stripped_lines:
        for m in FLOAT_DECL_RE.finditer(line):
            if m.group(1) not in ("const", "constexpr"):
                float_names.add(m.group(1))
        for m in NONFLOAT_DECL_RE.finditer(line):
            if m.group(1) not in ("const", "constexpr"):
                nonfloat_names.add(m.group(1))
    acc_re = re.compile(r"([A-Za-z_]\w*(?:\.\w+|\[[^\]]*\])*)\s*\+=\s*(.+)$")
    for i, line in enumerate(stripped_lines, 1):
        m = acc_re.search(line)
        if not m:
            continue
        lhs_root = re.match(r"[A-Za-z_]\w*", m.group(1)).group(0)
        rhs = m.group(2)
        if lhs_root in float_names or (
            lhs_root not in nonfloat_names and FLOAT_HINT_RE.search(rhs)
        ):
            findings.append(
                Finding(
                    path,
                    i,
                    "float-accumulation-order",
                    f"floating-point accumulation into '{m.group(1)}': FP addition "
                    "is non-associative, so iteration-order changes move the low "
                    "bits; use common/stats, integers, or justify a fixed order",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# Check: fault-injection-seeding

RNG_CONSTRUCT_RE = re.compile(
    r"\b(Xoshiro256ss|SplitMix64)\s*(?:[A-Za-z_]\w*\s*)?\(([^)]*)"
)
SEED_SOURCE_RE = re.compile(r"seed|hash_mix", re.IGNORECASE)
# Files under src/ outside the fault pipeline are exempt; everything else
# (the pipeline files themselves, and fixture/test paths) is in scope —
# the same scoping trick cross-slice-shared-state uses.
FAULT_PIPELINE_EXEMPT_RE = re.compile(r"^src/(?!dram/faults\.|smc/ecc\.)")


def check_fault_injection_seeding(path, stripped_lines, ctx):
    """RNG constructions in the fault pipeline not derived from the scenario seed.

    Fault manifestation must replay bit-identically at any --threads /
    --pump-workers value, which holds only when every draw in
    src/dram/faults.* and src/smc/ecc.* is keyed from FaultConfig::seed
    through hash_mix with distinct salts. An RNG seeded from anything
    else — a literal, an address, a host counter — silently forks the
    fault stream away from the scenario seed, and the divergence only
    surfaces as a golden-hash mismatch much later. The token engine
    requires a `seed`/`hash_mix` reference on the construction line
    itself; route derived keys through identifiers named `*seed*`.
    """
    findings = []
    if FAULT_PIPELINE_EXEMPT_RE.match(path):
        return findings
    for i, line in enumerate(stripped_lines, 1):
        for m in RNG_CONSTRUCT_RE.finditer(line):
            if SEED_SOURCE_RE.search(m.group(2) or ""):
                continue
            findings.append(
                Finding(
                    path,
                    i,
                    "fault-injection-seeding",
                    f"{m.group(1)} constructed without a scenario-seed "
                    "derivation: fault-pipeline draws must be keyed from "
                    "FaultConfig::seed via hash_mix (distinct salts) so "
                    "injection replays at any worker count",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# Check: cross-slice-shared-state

STATIC_DECL_RE = re.compile(r"^\s*(?:inline\s+)?(static|thread_local)\b")
SYNC_TYPE_RE = re.compile(
    r"std\s*::\s*(?:atomic(?:_flag)?|mutex|shared_mutex|recursive_mutex"
    r"|once_flag|condition_variable(?:_any)?)"
)
IMMUTABLE_RE = re.compile(r"\b(?:const|constexpr|constinit)\b")
SLICE_SCOPED_RE = re.compile(r"^src/(?!sys/|smc/)")


def check_cross_slice_shared_state(path, stripped_lines, ctx):
    """Mutable static state in slice-pumped code without a SLICE-SHARED annotation.

    The parallel pump shards channel slices across worker threads, so any
    mutable state reachable from more than one slice must either be
    synchronized at a documented rendezvous or be immutable. The token
    proxy for "reachable from more than one slice" is a `static` or
    `thread_local` object declaration in src/sys or src/smc (the layers
    workers execute): a non-const, non-atomic static is visible to every
    worker at once. Deliberate shared state carries a
    `// SLICE-SHARED(<barrier>)` annotation on the same or previous line
    naming the synchronization point that orders access; everything else
    should become const, atomic, or per-slice.
    """
    findings = []
    if SLICE_SCOPED_RE.match(path):
        return findings  # src/ layers outside the sliced pump.
    raw_lines = ctx["raw_by_path"].get(path, [])
    for i, line in enumerate(stripped_lines, 1):
        m = STATIC_DECL_RE.match(line)
        if not m:
            continue
        if IMMUTABLE_RE.search(line) or SYNC_TYPE_RE.search(line):
            continue
        # A '(' before any '=' means a function declaration/definition,
        # not an object. (Paren-initialized statics would be skipped too;
        # this repo brace-initializes, and the annotation is the escape.)
        if "(" in line.split("=", 1)[0]:
            continue
        raw = raw_lines[i - 1] if i - 1 < len(raw_lines) else ""
        prev = raw_lines[i - 2] if 2 <= i <= len(raw_lines) + 1 else ""
        if "SLICE-SHARED(" in raw or "SLICE-SHARED(" in prev:
            continue
        findings.append(
            Finding(
                path,
                i,
                "cross-slice-shared-state",
                f"mutable {m.group(1)} state in slice-pumped code: workers "
                "pump channel slices concurrently, so non-const non-atomic "
                "statics race; make it const/atomic/per-slice or annotate "
                "deliberate sharing with // SLICE-SHARED(<barrier>)",
            )
        )
    return findings


# ---------------------------------------------------------------------------
# Optional clang (libclang) engine


def try_load_clang():
    try:
        import clang.cindex as cindex  # type: ignore

        cindex.Index.create()
        return cindex
    except Exception:
        return None


def clang_findings_for_file(cindex, path, abs_path, ctx):
    """AST-accurate variants of the type-sensitive checks for one file.

    Returns None when the file cannot be parsed, so the caller falls back
    to the token engine for it. The banned-entropy and
    float-accumulation-order checks are token-shaped even under clang.
    """
    try:
        tu = cindex.Index.create().parse(
            str(abs_path),
            args=["-std=c++20", "-I", str(ctx["repo"] / "src")],
            options=cindex.TranslationUnit.PARSE_SKIP_FUNCTION_BODIES * 0,
        )
    except Exception:
        return None
    if any(d.severity >= 4 for d in tu.diagnostics):  # Fatal: wrong flags.
        return None
    findings = []
    K = cindex.CursorKind

    def type_is_unordered(t):
        return "unordered_map" in t.spelling or "unordered_set" in t.spelling

    def type_is_raw_int(t):
        canon = t.get_canonical().spelling
        return canon in (
            "int", "long", "long long", "short", "unsigned int", "unsigned long",
            "unsigned long long", "unsigned short", "char", "signed char",
            "unsigned char",
        )

    for cur in tu.cursor.walk_preorder():
        if cur.location.file is None or str(cur.location.file) != str(abs_path):
            continue
        if cur.kind == K.CXX_FOR_RANGE_STMT:
            children = list(cur.get_children())
            if len(children) >= 2 and type_is_unordered(children[-2].type):
                findings.append(
                    Finding(
                        path, cur.location.line, "nondeterministic-iteration",
                        "range-for over an unordered container (clang engine): "
                        "hash-map order is unspecified; use an ordered container "
                        "or sort a materialized copy",
                    )
                )
        if path.endswith((".hpp", ".h")):
            if cur.kind in (K.PARM_DECL, K.FIELD_DECL):
                name = cur.spelling or ""
                if re.fullmatch(TIME_SUFFIX_NAME, name) and type_is_raw_int(cur.type):
                    findings.append(
                        Finding(
                            path, cur.location.line, "raw-time-units",
                            f"'{name}' is a raw integer (clang engine); use "
                            "Picoseconds/Cycles from common/units.hpp",
                        )
                    )
            if cur.kind in (K.CXX_METHOD, K.FUNCTION_DECL):
                name = cur.spelling or ""
                if re.fullmatch(TIME_SUFFIX_NAME, name) and type_is_raw_int(
                    cur.result_type
                ):
                    findings.append(
                        Finding(
                            path, cur.location.line, "raw-time-units",
                            f"function '{name}' returns a raw integer (clang "
                            "engine); return Picoseconds/Cycles instead",
                        )
                    )
    return findings


# ---------------------------------------------------------------------------
# Registry and driver

CHECKS = {
    "nondeterministic-iteration": check_nondeterministic_iteration,
    "banned-entropy": check_banned_entropy,
    "raw-time-units": check_raw_time_units,
    "float-accumulation-order": check_float_accumulation,
    "fault-injection-seeding": check_fault_injection_seeding,
    "cross-slice-shared-state": check_cross_slice_shared_state,
}

# Checks the clang engine replaces (the rest always run as token checks).
CLANG_COVERED = {"nondeterministic-iteration", "raw-time-units"}

SOURCE_EXTS = (".cpp", ".cc", ".cxx", ".hpp", ".h")


def gather_files(paths):
    files = []
    for p in paths:
        p = pathlib.Path(p)
        if p.is_dir():
            files.extend(sorted(q for q in p.rglob("*") if q.suffix in SOURCE_EXTS))
        elif p.is_file():
            files.append(p)
        else:
            raise FileNotFoundError(p)
    return files


def run(paths, repo, checks, engine):
    files = gather_files(paths)
    raw_by_file = {}
    stripped_by_file = {}
    rel_by_file = {}
    for f in files:
        text = f.read_text(encoding="utf-8", errors="replace")
        raw_by_file[f] = text.splitlines()
        stripped_by_file[f] = strip_comments_and_strings(text)
        try:
            rel_by_file[f] = f.resolve().relative_to(repo.resolve()).as_posix()
        except ValueError:
            rel_by_file[f] = f.as_posix()

    ctx = {
        "repo": repo,
        "unordered_names": collect_unordered_names(stripped_by_file),
        # Raw (unstripped) lines per relative path, for checks whose
        # annotations live in comments (SLICE-SHARED).
        "raw_by_path": {rel_by_file[f]: raw_by_file[f] for f in files},
    }

    cindex = try_load_clang() if engine in ("auto", "clang") else None
    engine_used = "clang" if cindex else "tokens"
    if engine == "clang" and not cindex:
        print("easydram-lint: clang engine requested but clang.cindex is "
              "unavailable; falling back to tokens", file=sys.stderr)

    findings = []
    for f in files:
        path = rel_by_file[f]
        stripped_lines = stripped_by_file[f].splitlines()
        clang_results = None
        if cindex:
            clang_results = clang_findings_for_file(cindex, path, f, ctx)
        for name in checks:
            if clang_results is not None and name in CLANG_COVERED:
                per_check = [x for x in clang_results if x.check == name]
            else:
                per_check = CHECKS[name](path, stripped_lines, ctx)
            for finding in per_check:
                if not is_suppressed(raw_by_file[f], finding.line, finding.check):
                    findings.append(finding)

    # De-duplicate (a line can match several sub-patterns) and order
    # deterministically — the linter practices what it preaches.
    seen = set()
    unique = []
    for x in sorted(findings, key=Finding.key):
        if x.key() not in seen:
            seen.add(x.key())
            unique.append(x)
    return unique, engine_used, len(files)


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="easydram-lint",
        description="Determinism-contract static analysis (see docs/linting.md).",
    )
    ap.add_argument("paths", nargs="*", default=None,
                    help="files or directories to scan (default: src/)")
    ap.add_argument("--repo", default=None,
                    help="repository root (default: this script's grandparent)")
    ap.add_argument("--check", action="append", dest="checks", metavar="NAME",
                    help="run only NAME (repeatable; default: all checks)")
    ap.add_argument("--engine", choices=("auto", "tokens", "clang"),
                    default="auto", help="analysis engine (default: auto)")
    ap.add_argument("--format", choices=("human", "json"), default="human")
    ap.add_argument("--list-checks", action="store_true",
                    help="print registered check names and exit")
    args = ap.parse_args(argv)

    if args.list_checks:
        for name, fn in CHECKS.items():
            summary = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name}: {summary}")
        return 0

    repo = pathlib.Path(args.repo) if args.repo else pathlib.Path(
        __file__).resolve().parent.parent.parent
    checks = args.checks or list(CHECKS)
    for name in checks:
        if name not in CHECKS:
            print(f"easydram-lint: unknown check '{name}' "
                  f"(known: {', '.join(CHECKS)})", file=sys.stderr)
            return 2
    paths = args.paths or [repo / "src"]

    try:
        findings, engine_used, n_files = run(paths, repo, checks, args.engine)
    except FileNotFoundError as e:
        print(f"easydram-lint: no such path: {e}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(json.dumps(
            {
                "tool": "easydram-lint",
                "engine": engine_used,
                "files_scanned": n_files,
                "checks": checks,
                "findings": [dataclasses.asdict(x) for x in findings],
            },
            indent=2,
        ))
    else:
        for x in findings:
            print(f"{x.file}:{x.line}: [{x.check}] {x.message}")
        status = "clean" if not findings else f"{len(findings)} finding(s)"
        print(f"easydram-lint: {status} over {n_files} file(s) "
              f"({engine_used} engine, checks: {', '.join(checks)})")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
