#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "tile/cost_model.hpp"
#include "tile/fifo.hpp"
#include "tile/request.hpp"

namespace easydram::tile {

/// Configuration of the EasyTile hardware block.
struct TileConfig {
  std::size_t incoming_fifo_depth = 32;
  std::size_t outgoing_fifo_depth = 32;
  std::size_t scratchpad_bytes = 128 * 1024;
  Frequency core_clock = Frequency::megahertz(100);
  CoreCostModel costs{};
};

/// Transaction-level model of EasyTile (§5.1): the incoming/outgoing request
/// FIFOs, the scratchpad, and the programmable core's cycle meter. The
/// command and readback buffers live with the Bender program/interpreter;
/// the tile control logic's transfer costs are charged through the meter.
class EasyTile {
 public:
  explicit EasyTile(const TileConfig& cfg)
      : config_(cfg),
        incoming_(cfg.incoming_fifo_depth),
        outgoing_(cfg.outgoing_fifo_depth),
        meter_(cfg.costs, cfg.core_clock) {}

  const TileConfig& config() const { return config_; }

  BoundedFifo<Request>& incoming() { return incoming_; }
  BoundedFifo<Response>& outgoing() { return outgoing_; }
  CycleMeter& meter() { return meter_; }
  const CycleMeter& meter() const { return meter_; }

  /// Scratchpad allocation bookkeeping: the SMC's request table and staging
  /// buffers must fit in on-tile memory.
  void reserve_scratchpad(std::size_t bytes) {
    EASYDRAM_EXPECTS(scratchpad_used_ + bytes <= config_.scratchpad_bytes);
    scratchpad_used_ += bytes;
  }
  std::size_t scratchpad_used() const { return scratchpad_used_; }

 private:
  TileConfig config_;
  BoundedFifo<Request> incoming_;
  BoundedFifo<Response> outgoing_;
  CycleMeter meter_;
  std::size_t scratchpad_used_ = 0;
};

}  // namespace easydram::tile
