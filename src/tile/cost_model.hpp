#pragma once

#include <cstdint>

#include "common/contracts.hpp"
#include "common/units.hpp"

namespace easydram::tile {

/// Per-operation programmable-core cycle costs.
///
/// The software memory controller is an ordinary program on the tile's
/// scalar core (Rocket in the paper); every EasyAPI call costs tens of
/// instructions. These constants model those costs in core clock cycles.
/// They are the knobs that make the *No-Time-Scaling* configuration slow in
/// exactly the way the paper describes (hundreds of FPGA cycles per request)
/// while the Time-Scaling configuration hides them from the emulated system.
/// Default costs are calibrated against the paper's observable behaviour:
/// the No-Time-Scaling lmbench memory latency (Fig. 8) implies the
/// common-case SMC request loop completes in roughly 50-70 core cycles —
/// the Tile Control Logic offloads FIFO transfers and Bender hand-off, so
/// the software path is tens of instructions, not hundreds.
struct CoreCostModel {
  Cycles poll_iteration{4};        ///< One empty main-loop iteration.
  Cycles receive_request{4};       ///< FIFO -> scratchpad (TCL-assisted).
  Cycles address_map{3};           ///< Physical -> DRAM translation.
  Cycles schedule_fcfs{8};         ///< FCFS pick.
  Cycles schedule_scan_entry{2};   ///< FR-FCFS per-scanned-entry cost.
  Cycles command_push{2};          ///< Append one Bender instruction.
  Cycles batch_kickoff{10};        ///< Trigger DRAM Bender + sync.
  Cycles batch_wait_poll{2};       ///< Poll Bender busy flag once.
  Cycles readback_line{4};         ///< Readback buffer -> scratchpad.
  Cycles enqueue_response{4};      ///< Scratchpad -> FIFO (TCL-assisted).
  Cycles timescale_update{4};      ///< Advance a time-scaling counter.
  Cycles bloom_check{12};          ///< Bloom filter lookup on row open.
  Cycles table_insert{2};          ///< Request-table bookkeeping.
};

/// Accumulates programmable-core cycles charged by EasyAPI calls and
/// converts them to wall time at the core's FPGA clock.
class CycleMeter {
 public:
  CycleMeter(CoreCostModel costs, Frequency core_clock)
      : costs_(costs), core_clock_(core_clock) {
    EASYDRAM_EXPECTS(core_clock.hertz > 0);
  }

  const CoreCostModel& costs() const { return costs_; }
  Frequency core_clock() const { return core_clock_; }

  void charge(Cycles cycles) {
    EASYDRAM_EXPECTS(cycles.count >= 0);
    total_cycles_ += cycles;
  }

  /// Core cycles charged since construction.
  Cycles total_cycles() const { return total_cycles_; }

  /// Cycles charged but not yet taken by the system engine.
  Cycles pending() const { return total_cycles_ - taken_; }

  /// Returns the cycles accumulated since the previous take() and resets
  /// the running delta. The system engine calls this to advance wall time.
  Cycles take() {
    const Cycles delta = total_cycles_ - taken_;
    taken_ = total_cycles_;
    return delta;
  }

  Picoseconds to_wall(Cycles cycles) const {
    return core_clock_.cycles_to_ps(cycles);
  }

 private:
  CoreCostModel costs_;
  Frequency core_clock_;
  Cycles total_cycles_{0};
  Cycles taken_{0};
};

}  // namespace easydram::tile
