#pragma once

#include <cstddef>
#include <vector>

#include "common/contracts.hpp"

namespace easydram::tile {

/// Bounded FIFO modelling EasyTile's hardware request/response queues.
/// Pushing into a full FIFO is a contract violation: the producers in this
/// repository (memory bus, tile control logic) check `full()` first, exactly
/// as the hardware applies backpressure.
///
/// Storage is a fixed ring buffer sized once at construction — like the
/// hardware queue it models, no allocation ever happens on push/pop. `T`
/// must be default-constructible (the ring is built eagerly) and movable.
template <typename T>
class BoundedFifo {
 public:
  explicit BoundedFifo(std::size_t capacity)
      : capacity_(capacity), items_(capacity) {
    EASYDRAM_EXPECTS(capacity > 0);
  }

  bool empty() const { return size_ == 0; }
  bool full() const { return size_ >= capacity_; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }

  void push(T item) {
    EASYDRAM_EXPECTS(!full());
    std::size_t tail = head_ + size_;
    if (tail >= capacity_) tail -= capacity_;
    items_[tail] = std::move(item);
    ++size_;
  }

  T pop() {
    EASYDRAM_EXPECTS(!empty());
    T item = std::move(items_[head_]);
    advance_head();
    return item;
  }

  /// Drops the head element without materializing a copy/move of it — for
  /// consumers that already read what they need through front().
  void drop() {
    EASYDRAM_EXPECTS(!empty());
    advance_head();
  }

  const T& front() const {
    EASYDRAM_EXPECTS(!empty());
    return items_[head_];
  }

 private:
  void advance_head() {
    head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
    --size_;
  }

  std::size_t capacity_;
  std::vector<T> items_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace easydram::tile
