#pragma once

#include <cstddef>
#include <deque>

#include "common/contracts.hpp"

namespace easydram::tile {

/// Bounded FIFO modelling EasyTile's hardware request/response queues.
/// Pushing into a full FIFO is a contract violation: the producers in this
/// repository (memory bus, tile control logic) check `full()` first, exactly
/// as the hardware applies backpressure.
template <typename T>
class BoundedFifo {
 public:
  explicit BoundedFifo(std::size_t capacity) : capacity_(capacity) {
    EASYDRAM_EXPECTS(capacity > 0);
  }

  bool empty() const { return items_.empty(); }
  bool full() const { return items_.size() >= capacity_; }
  std::size_t size() const { return items_.size(); }
  std::size_t capacity() const { return capacity_; }

  void push(T item) {
    EASYDRAM_EXPECTS(!full());
    items_.push_back(std::move(item));
  }

  T pop() {
    EASYDRAM_EXPECTS(!empty());
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  const T& front() const {
    EASYDRAM_EXPECTS(!empty());
    return items_.front();
  }

 private:
  std::size_t capacity_;
  std::deque<T> items_;
};

}  // namespace easydram::tile
