#pragma once

#include <array>
#include <cstdint>

#include "common/error.hpp"
#include "common/units.hpp"

namespace easydram::tile {

/// Kinds of main-memory requests that reach EasyTile.
///
/// kRead/kWrite are ordinary cache-line transactions. The remaining kinds
/// model the paper's memory-mapped extension interface: the processor
/// triggers a RowClone copy, a cache-line flush, or a tRCD profiling request
/// (§8.1) by writing to EasyTile control registers; each such write arrives
/// here as a typed request.
enum class RequestKind : std::uint8_t {
  kRead,
  kWrite,
  kRowClone,     ///< Copy the row containing `paddr` onto the row at `paddr2`.
  kProfileTrcd,  ///< Test the line at `paddr` under `profile_trcd`.
};

/// A main-memory request as stored in the incoming request FIFO.
struct Request {
  std::uint64_t id = 0;
  RequestKind kind = RequestKind::kRead;
  /// Traffic-stream identity (tenant id in multi-tenant workloads). Stream 0
  /// is the anonymous default; schedulers and per-stream accounting key on
  /// this value end-to-end (request -> table slot -> response -> completion).
  std::uint32_t stream_id = 0;
  std::uint64_t paddr = 0;
  std::uint64_t paddr2 = 0;                ///< kRowClone destination.
  std::array<std::uint8_t, 64> wdata{};    ///< kWrite payload.
  Picoseconds profile_trcd{};              ///< kProfileTrcd: tRCD under test.
  /// Time-scaling tag: the processor-domain cycle at which the request was
  /// issued (Fig. 5 step 1).
  std::int64_t issue_proc_cycle = 0;
  /// FPGA wall-clock arrival time (the No-Time-Scaling notion of "when").
  Picoseconds arrival_wall{};
};

/// A response placed in the outgoing FIFO by the software memory controller.
struct Response {
  std::uint64_t id = 0;
  /// Stream identity echoed from the originating request so per-stream
  /// latency accounting never has to look the request back up.
  std::uint32_t stream_id = 0;
  std::array<std::uint8_t, 64> data{};
  bool has_data = false;
  /// kRowClone: the in-DRAM copy failed and the processor must fall back to
  /// CPU load/store copy. kProfileTrcd: the tested line read correctly.
  /// kRead: false iff `error != kNone`.
  bool ok = true;
  /// kRead: the device's reliability verdict on `data` (false when a
  /// reduced-tRCD access undercut the line's minimum and no nominal retry
  /// replaced the corrupt data). Propagated so an unreliable read is never
  /// silently reported clean.
  bool data_reliable = true;
  /// Typed failure (graceful degradation; see common/error.hpp).
  RequestError error = RequestError::kNone;
  /// Time-scaling release tag: the processor may not consume this response
  /// before its cycle counter reaches this value (Fig. 5 step 10).
  std::int64_t release_proc_cycle = 0;
};

}  // namespace easydram::tile
