#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "cpu/trace.hpp"
#include "smc/addr_map.hpp"

namespace easydram::workloads {

/// Tenant archetypes of the multi-tenant QoS studies, built from the
/// repository's existing kernels.
enum class TenantKind : std::uint8_t {
  /// lmbench-style dependent pointer chase: the latency-sensitive tenant.
  /// Low request rate, but every request is on its critical path.
  kPointerChase,
  /// STREAM-style copy sweep (sequential loads from the lower half of the
  /// footprint, streaming stores to the upper half): the bandwidth hog
  /// whose row-hit trains monopolize an FR-FCFS scheduler.
  kStreamCopy,
  /// RowHammer attack loop (load + clflush over aggressor rows): the
  /// adversary tenant; pairs with PARA to ask whether mitigation overhead
  /// lands on the victims.
  kHammer,
};

std::string_view to_string(TenantKind kind);

/// One tenant of a mixed workload. Footprints must be disjoint — the
/// builder does not check overlap (sharing is occasionally what an
/// experiment wants).
struct TenantSpec {
  TenantKind kind = TenantKind::kPointerChase;
  /// Stream identity stamped on every record this tenant emits.
  std::uint32_t stream = 0;
  std::uint64_t base_addr = 0;
  std::uint64_t footprint_bytes = 256 * 1024;
  /// Work multiplier: chase walks / copy sweeps of the footprint, or
  /// hammer-round batches (kHammerRoundsPerPass rounds each).
  int passes = 1;
  /// Non-memory instructions between records (kStreamCopy only; the chase
  /// and hammer kernels fix their own gaps).
  std::uint32_t gap_instructions = 2;
};

/// Hammer rounds one `passes` unit of a kHammer tenant executes.
inline constexpr int kHammerRoundsPerPass = 300;

/// A built mixed workload: the N-stream interleaved trace plus each
/// tenant's solo trace (same records, same stream tags) for
/// slowdown-vs-alone baselines.
struct MixedTrace {
  std::vector<cpu::TraceRecord> interleaved;
  std::vector<std::vector<cpu::TraceRecord>> solo;
};

/// Builds one tenant's trace, stream-tagged. The mapper grounds the hammer
/// tenant's aggressor coordinates (its footprint's rows/bank); the other
/// kinds ignore it.
std::vector<cpu::TraceRecord> make_tenant_trace(const TenantSpec& spec,
                                                const smc::AddressMapper& mapper);

/// Builds every tenant's trace and interleaves them proportionally to
/// their lengths (smooth weighted round-robin, ties to the lower tenant
/// index) — a deterministic model of N cores issuing concurrently, ready
/// for the single trace-driven core. Record order depends only on the
/// specs, never on host state.
MixedTrace make_mixed_trace(std::span<const TenantSpec> tenants,
                            const smc::AddressMapper& mapper);

}  // namespace easydram::workloads
