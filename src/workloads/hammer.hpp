#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "cpu/trace.hpp"
#include "smc/addr_map.hpp"

namespace easydram::workloads {

/// RowHammer aggressor access patterns.
enum class HammerPattern : std::uint8_t {
  /// One aggressor row plus a far conflict row in the same bank: the
  /// classic "open A, open B" loop that forces an ACT of A every
  /// iteration. Victims: A's (and B's) physical neighbors.
  kSingleSided,
  /// Two aggressors sandwiching one victim (rows V-1 and V+1): every
  /// iteration disturbs V from both sides — the strongest classic pattern.
  kDoubleSided,
  /// `sides` aggressors spaced two rows apart: every inter-aggressor row
  /// is a double-sided victim (the "many-sided" patterns that defeat
  /// in-DRAM TRR samplers).
  kManySided,
};

std::string_view to_string(HammerPattern p);

/// Shape of one hammer kernel. Defaults pick subarray-interior rows of
/// bank 0 so every aggressor has both neighbors.
struct HammerParams {
  HammerPattern pattern = HammerPattern::kDoubleSided;
  std::uint32_t bank = 0;
  std::uint32_t rank = 0;
  std::uint32_t channel = 0;
  /// First aggressor row. Keep >= 1 and subarray-interior so neighbor sets
  /// are full-size; the generators do not re-derive it. (1024 would sit ON
  /// a subarray boundary of the default 512-row subarrays: no lower
  /// neighbor.)
  std::uint32_t base_row = 1030;
  /// kManySided only: number of aggressor rows.
  std::uint32_t sides = 4;
  /// Hammer iterations; each touches every aggressor once (load + flush,
  /// the user-space clflush attack loop).
  int rounds = 1200;
  /// Non-memory instructions between accesses (a tight attack loop).
  std::uint32_t gap_instructions = 1;
};

/// Aggressor rows the pattern activates, in per-round access order.
std::vector<std::uint32_t> hammer_aggressor_rows(const HammerParams& p);

/// Rows the pattern disturbs: the union of the aggressors' neighbors,
/// minus the aggressors themselves (an activated row is restored, not
/// disturbed). Sorted ascending.
std::vector<std::uint32_t> hammer_victim_rows(const HammerParams& p,
                                              const dram::Geometry& geo);

/// The hammer kernel as a core trace: `rounds` passes of load+clflush over
/// every aggressor row (column 0 of each), so each access misses the cache
/// hierarchy and re-activates the row in DRAM.
std::vector<cpu::TraceRecord> make_hammer_trace(const HammerParams& p,
                                                const smc::AddressMapper& mapper);

/// Blended workload: `background` records (any benign trace, e.g. a
/// PolyBench kernel prefix) with one full hammer round spliced in every
/// `burst_period` background records — the "attacker thread sharing the
/// memory system with a victim application" mix. Hammer rounds beyond the
/// background's end run back to back; `p.rounds` still bounds the total.
std::vector<cpu::TraceRecord> make_hammer_blend(
    const HammerParams& p, const smc::AddressMapper& mapper,
    std::span<const cpu::TraceRecord> background, std::size_t burst_period);

}  // namespace easydram::workloads
