#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "cpu/trace.hpp"

namespace easydram::workloads {

/// One PolyBench kernel expressed as a memory-trace generator.
///
/// Each generator reproduces the exact loop nest and array access pattern
/// of the PolyBench 4.2 kernel; dataset sizes are reduced from the paper's
/// "large" configuration so whole-suite benches finish in seconds (see
/// DESIGN.md: the substitution preserves the loop structure and the
/// relative memory intensity spread across kernels, which is what the
/// evaluation figures depend on).
struct PolybenchKernel {
  std::string_view name;
  std::vector<cpu::TraceRecord> (*generate)();
};

/// All 28 kernels used by the §6 validation study.
std::span<const PolybenchKernel> all_kernels();

/// The kernel subset of Figs. 13/14.
std::span<const std::string_view> fig13_names();

/// Generates the trace of the named kernel. Throws ContractViolation for
/// unknown names.
std::vector<cpu::TraceRecord> generate_kernel(std::string_view name);

/// Exact record count of `name`'s generated trace (0 for unknown names):
/// the capacity generate_kernel pre-reserves. Pinned to the generators by
/// a test so the table cannot silently drift.
std::size_t kernel_record_count(std::string_view name);

}  // namespace easydram::workloads
