#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "cpu/trace.hpp"

namespace easydram::workloads {

/// The four STREAM kernels (McCalpin): Copy b=a, Scale b=s*a, Add c=a+b,
/// Triad a=b+s*c. Each is generated as a marker-bounded trace at a
/// parameterized working-set size so a sweep across sizes traces the
/// modelled cache hierarchy's bandwidth curve (stream_sweep scenario).
enum class StreamKernel { kCopy, kScale, kAdd, kTriad };

inline constexpr StreamKernel kAllStreamKernels[] = {
    StreamKernel::kCopy, StreamKernel::kScale, StreamKernel::kAdd,
    StreamKernel::kTriad};

std::string_view to_string(StreamKernel k);

/// Parameters of one STREAM-kernel trace. `working_set_bytes` is the total
/// footprint budget split evenly across the kernel's arrays (2 for
/// copy/scale, 3 for add/triad), rounded down to whole cache lines — the
/// sweep axis. Warm passes prime the caches before the first marker; the
/// measured passes run between the two markers.
struct StreamSweepParams {
  StreamKernel kernel = StreamKernel::kCopy;
  std::uint64_t working_set_bytes = 0;
  int warm_passes = 1;
  int measured_passes = 2;
  std::uint64_t base_addr = 0;
};

/// Arrays the kernel touches: 2 (copy/scale) or 3 (add/triad).
int stream_array_count(StreamKernel k);

/// Cache lines per array: working_set_bytes / arrays / 64 (>= 1 required).
std::uint64_t stream_lines_per_array(const StreamSweepParams& p);

/// Memory records one pass emits: lines_per_array * (arrays' loads+stores).
std::uint64_t stream_records_per_pass(const StreamSweepParams& p);

/// Exact record count of make_stream_trace (passes plus the two markers).
std::size_t stream_record_count(const StreamSweepParams& p);

/// Bytes moved per pass (one cache line per memory record).
std::uint64_t stream_bytes_per_pass(const StreamSweepParams& p);

/// Builds the trace: warm passes, marker, measured passes, marker. The
/// arrays are laid out contiguously from base_addr, 64-byte aligned, so
/// the actual footprint is arrays * lines_per_array * 64 <= working set.
std::vector<cpu::TraceRecord> make_stream_trace(const StreamSweepParams& p);

/// Parameters of one dependent-load pointer-chase latency trace
/// (latency_sweep scenario). The chase follows a single-cycle permutation
/// over the working set's cache lines, so every load depends on the
/// previous one and each pass visits every line exactly once.
struct LatencySweepParams {
  std::uint64_t working_set_bytes = 0;
  int warm_passes = 1;
  int measured_passes = 2;
  std::uint64_t base_addr = 0;
  std::uint64_t seed = 0x17B;
};

/// The chase's successor table: next[i] is the line visited after line i.
/// Sattolo's algorithm guarantees the permutation is one single cycle
/// covering all `lines`, so a chase starting anywhere visits every line
/// exactly once before returning to its start.
std::vector<std::uint64_t> latency_chase_order(std::uint64_t lines,
                                               std::uint64_t seed);

/// Dependent loads one pass emits: working_set_bytes / 64.
std::uint64_t latency_loads_per_pass(const LatencySweepParams& p);

/// Exact record count of make_latency_trace (passes plus the two markers).
std::size_t latency_record_count(const LatencySweepParams& p);

/// Builds the chase trace: warm passes, marker, measured passes, marker.
std::vector<cpu::TraceRecord> make_latency_trace(const LatencySweepParams& p);

/// The canonical ~8-point working-set sweep spanning the hierarchy's
/// transitions for the given cache sizes:
/// {l1/2, l1, 2*l1, l2/2, l2, 2*l2, 4*l2, 8*l2}.
std::vector<std::uint64_t> sweep_working_sets(std::uint64_t l1_bytes,
                                              std::uint64_t l2_bytes);

}  // namespace easydram::workloads
