// STREAM/latency sweep kernels: the bandwidth (copy/scale/add/triad) and
// dependent-load latency workloads the stream_sweep / latency_sweep
// scenarios run at every working-set size. Trace generation is a pure
// function of the parameters — no entropy, no host state — so the
// scenarios' golden hashes pin the whole pipeline from generator to
// modeled timing.

#include "workloads/streamsweep.hpp"

#include <numeric>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace easydram::workloads {
namespace {

constexpr std::uint64_t kLine = 64;

/// Marker record: the core drains outstanding work and snapshots its cycle
/// counter — the measurement window boundaries of both sweep kernels.
cpu::TraceRecord marker_record() {
  cpu::TraceRecord r;
  r.op = cpu::Op::kMarker;
  r.gap_instructions = 0;
  return r;
}

void push(std::vector<cpu::TraceRecord>& out, cpu::Op op, std::uint64_t addr,
          std::uint32_t gap) {
  cpu::TraceRecord r;
  r.op = op;
  r.gap_instructions = gap;
  r.addr = addr;
  out.push_back(r);
}

void emit_stream_pass(std::vector<cpu::TraceRecord>& out,
                      const StreamSweepParams& p) {
  const std::uint64_t lines = stream_lines_per_array(p);
  const std::uint64_t stride = lines * kLine;
  const std::uint64_t a = p.base_addr;
  const std::uint64_t c = p.base_addr + stride;
  const std::uint64_t d = p.base_addr + 2 * stride;
  for (std::uint64_t i = 0; i < lines; ++i) {
    const std::uint64_t off = i * kLine;
    switch (p.kernel) {
      case StreamKernel::kCopy:  // b[i] = a[i]
        push(out, cpu::Op::kLoad, a + off, 2);
        push(out, cpu::Op::kStore, c + off, 2);
        break;
      case StreamKernel::kScale:  // b[i] = s * a[i]: one extra multiply.
        push(out, cpu::Op::kLoad, a + off, 2);
        push(out, cpu::Op::kStore, c + off, 3);
        break;
      case StreamKernel::kAdd:  // c[i] = a[i] + b[i]
        push(out, cpu::Op::kLoad, a + off, 2);
        push(out, cpu::Op::kLoad, c + off, 1);
        push(out, cpu::Op::kStore, d + off, 2);
        break;
      case StreamKernel::kTriad:  // a[i] = b[i] + s * c[i]: add plus multiply.
        push(out, cpu::Op::kLoad, a + off, 2);
        push(out, cpu::Op::kLoad, c + off, 1);
        push(out, cpu::Op::kStore, d + off, 3);
        break;
    }
  }
}

}  // namespace

std::string_view to_string(StreamKernel k) {
  switch (k) {
    case StreamKernel::kCopy: return "copy";
    case StreamKernel::kScale: return "scale";
    case StreamKernel::kAdd: return "add";
    case StreamKernel::kTriad: return "triad";
  }
  return "?";
}

int stream_array_count(StreamKernel k) {
  return (k == StreamKernel::kAdd || k == StreamKernel::kTriad) ? 3 : 2;
}

std::uint64_t stream_lines_per_array(const StreamSweepParams& p) {
  const auto arrays = static_cast<std::uint64_t>(stream_array_count(p.kernel));
  return p.working_set_bytes / arrays / kLine;
}

std::uint64_t stream_records_per_pass(const StreamSweepParams& p) {
  // Every line of every array is touched exactly once per pass: copy/scale
  // do load+store (2 arrays), add/triad do load+load+store (3 arrays).
  const auto arrays = static_cast<std::uint64_t>(stream_array_count(p.kernel));
  return stream_lines_per_array(p) * arrays;
}

std::size_t stream_record_count(const StreamSweepParams& p) {
  const auto passes =
      static_cast<std::uint64_t>(p.warm_passes + p.measured_passes);
  return static_cast<std::size_t>(passes * stream_records_per_pass(p) + 2);
}

std::uint64_t stream_bytes_per_pass(const StreamSweepParams& p) {
  return stream_records_per_pass(p) * kLine;
}

std::vector<cpu::TraceRecord> make_stream_trace(const StreamSweepParams& p) {
  EASYDRAM_EXPECTS(p.warm_passes >= 0 && p.measured_passes > 0);
  EASYDRAM_EXPECTS(stream_lines_per_array(p) >= 1);
  std::vector<cpu::TraceRecord> records;
  records.reserve(stream_record_count(p));
  for (int pass = 0; pass < p.warm_passes; ++pass) emit_stream_pass(records, p);
  records.push_back(marker_record());
  for (int pass = 0; pass < p.measured_passes; ++pass) {
    emit_stream_pass(records, p);
  }
  records.push_back(marker_record());
  EASYDRAM_ENSURES(records.size() == stream_record_count(p));
  return records;
}

std::vector<std::uint64_t> latency_chase_order(std::uint64_t lines,
                                               std::uint64_t seed) {
  EASYDRAM_EXPECTS(lines >= 1);
  // Sattolo's algorithm: restricting each swap partner to j < i yields a
  // uniformly random *cyclic* permutation — one cycle covering every line,
  // so the chase can never fall into a short loop that fits a cache level
  // smaller than the working set.
  std::vector<std::uint64_t> next(lines);
  std::iota(next.begin(), next.end(), 0);
  Xoshiro256ss rng(seed);
  for (std::uint64_t i = lines - 1; i >= 1; --i) {
    const std::uint64_t j = rng.next_below(i);
    std::swap(next[i], next[j]);
  }
  return next;
}

std::uint64_t latency_loads_per_pass(const LatencySweepParams& p) {
  return p.working_set_bytes / kLine;
}

std::size_t latency_record_count(const LatencySweepParams& p) {
  const auto passes =
      static_cast<std::uint64_t>(p.warm_passes + p.measured_passes);
  return static_cast<std::size_t>(passes * latency_loads_per_pass(p) + 2);
}

std::vector<cpu::TraceRecord> make_latency_trace(const LatencySweepParams& p) {
  EASYDRAM_EXPECTS(p.working_set_bytes >= kLine &&
                   p.working_set_bytes % kLine == 0);
  EASYDRAM_EXPECTS(p.warm_passes >= 0 && p.measured_passes > 0);
  const std::uint64_t lines = latency_loads_per_pass(p);
  const std::vector<std::uint64_t> next = latency_chase_order(lines, p.seed);

  std::vector<cpu::TraceRecord> records;
  records.reserve(latency_record_count(p));
  std::uint64_t cur = 0;
  const auto emit_pass = [&] {
    for (std::uint64_t i = 0; i < lines; ++i) {
      cur = next[cur];
      cpu::TraceRecord r;
      r.op = cpu::Op::kLoadDependent;
      r.gap_instructions = 1;
      r.addr = p.base_addr + cur * kLine;
      records.push_back(r);
    }
  };
  for (int pass = 0; pass < p.warm_passes; ++pass) emit_pass();
  records.push_back(marker_record());
  for (int pass = 0; pass < p.measured_passes; ++pass) emit_pass();
  records.push_back(marker_record());
  EASYDRAM_ENSURES(records.size() == latency_record_count(p));
  return records;
}

std::vector<std::uint64_t> sweep_working_sets(std::uint64_t l1_bytes,
                                              std::uint64_t l2_bytes) {
  EASYDRAM_EXPECTS(l1_bytes >= 2 * kLine && l2_bytes >= 4 * l1_bytes);
  return {l1_bytes / 2, l1_bytes,     2 * l1_bytes, l2_bytes / 2,
          l2_bytes,     2 * l2_bytes, 4 * l2_bytes, 8 * l2_bytes};
}

}  // namespace easydram::workloads
