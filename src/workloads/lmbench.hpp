#pragma once

#include <cstdint>
#include <vector>

#include "cpu/trace.hpp"

namespace easydram::workloads {

/// lmbench-style memory read latency microbenchmark (§6, Fig. 8): a strict
/// pointer chase over a buffer of `buffer_bytes`, one access per cache
/// line, in a deterministic pseudo-random permutation (defeating spatial
/// patterns exactly as lat_mem_rd's stride walk defeats prefetching).
/// Every load is dependent, so the full access latency is exposed.
///
/// Returns `passes` complete walks of the buffer.
std::vector<cpu::TraceRecord> make_lmbench_chase(std::uint64_t buffer_bytes,
                                                 int passes,
                                                 std::uint64_t base_addr = 0,
                                                 std::uint64_t seed = 0x17B);

/// Loads per pass for a buffer of the given size.
std::uint64_t lmbench_loads_per_pass(std::uint64_t buffer_bytes);

}  // namespace easydram::workloads
