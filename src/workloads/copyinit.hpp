#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "cpu/trace.hpp"
#include "smc/addr_map.hpp"
#include "smc/rowclone_alloc.hpp"

namespace easydram::workloads {

/// The §7.2 microbenchmarks: Copy replicates an N-byte source array into a
/// destination array; Init fills an N-byte array with a pattern. Each comes
/// in a CPU (load/store) variant and a RowClone variant, evaluated in two
/// settings: No-Flush (source data already resident in DRAM) and CLFLUSH
/// (cached dirty copies must be written back first).
struct CopyInitParams {
  enum class Kind { kCopy, kInit };
  Kind kind = Kind::kCopy;
  /// Use in-DRAM RowClone operations (with CPU fallback); false = pure
  /// CPU load/store baseline.
  bool use_rowclone = false;
  /// CLFLUSH setting: warm the caches with dirty copies, then flush before
  /// each RowClone operation (and charge the flushes).
  bool clflush = false;
  /// Non-memory instructions accompanying each per-line load/store (a
  /// 64-bit-word copy loop executes ~8 instructions per line and side).
  std::uint32_t line_gap = 7;
  /// Instructions per line for the memset-style Init store loop (a vector
  /// store loop is ~8 instructions per 64-byte line).
  std::uint32_t init_line_gap = 7;
};

/// Trace generator for Copy/Init. Reacts to RowClone fallback feedback:
/// a failed (or unverified) in-DRAM copy re-emits the row as CPU
/// loads/stores, exactly like the paper's software fallback.
///
/// The trace layout is: [warm phase (CLFLUSH setting only)] kMarker
/// [measured operation] kMarker — benches compute the measured-region
/// cycles as markers[1] - markers[0].
class CopyInitTrace final : public cpu::TraceSource {
 public:
  /// `copy_plan`/`init_plan`: the RowClone allocator's row plan; the CPU
  /// baseline uses the same physical rows for fairness.
  CopyInitTrace(CopyInitParams params, const smc::AddressMapper& mapper,
                std::vector<smc::CopyPlanEntry> copy_plan,
                std::vector<smc::InitPlanEntry> init_plan);

  bool next(cpu::TraceRecord& out, bool last_rowclone_ok) override;

  std::size_t rows() const;

 private:
  enum class Phase { kWarm, kRow, kFinal, kDone };

  void enqueue_warm();
  void enqueue_row(std::size_t row_index);
  void enqueue_cpu_row(std::size_t row_index);
  void enqueue_final();

  std::uint64_t src_line(std::size_t row_index, std::uint32_t col) const;
  std::uint64_t dst_line(std::size_t row_index, std::uint32_t col) const;
  std::uint64_t row_base(const smc::RowRef& r) const;

  CopyInitParams params_;
  const smc::AddressMapper* mapper_;
  std::vector<smc::CopyPlanEntry> copy_plan_;
  std::vector<smc::InitPlanEntry> init_plan_;

  Phase phase_ = Phase::kWarm;
  std::size_t row_index_ = 0;
  bool awaiting_feedback_ = false;
  std::deque<cpu::TraceRecord> pending_;
};

}  // namespace easydram::workloads
