#include "workloads/copyinit.hpp"

#include "common/contracts.hpp"

namespace easydram::workloads {

namespace {

cpu::TraceRecord make(cpu::Op op, std::uint64_t addr, std::uint32_t gap,
                      std::uint64_t addr2 = 0) {
  cpu::TraceRecord r;
  r.op = op;
  r.gap_instructions = gap;
  r.addr = addr;
  r.addr2 = addr2;
  return r;
}

}  // namespace

CopyInitTrace::CopyInitTrace(CopyInitParams params, const smc::AddressMapper& mapper,
                             std::vector<smc::CopyPlanEntry> copy_plan,
                             std::vector<smc::InitPlanEntry> init_plan)
    : params_(params),
      mapper_(&mapper),
      copy_plan_(std::move(copy_plan)),
      init_plan_(std::move(init_plan)) {
  if (params_.kind == CopyInitParams::Kind::kCopy) {
    EASYDRAM_EXPECTS(!copy_plan_.empty());
  } else {
    EASYDRAM_EXPECTS(!init_plan_.empty());
  }
  enqueue_warm();
}

std::size_t CopyInitTrace::rows() const {
  return params_.kind == CopyInitParams::Kind::kCopy ? copy_plan_.size()
                                                     : init_plan_.size();
}

std::uint64_t CopyInitTrace::row_base(const smc::RowRef& r) const {
  return mapper_->to_physical(dram::DramAddress{r.bank, r.row, 0});
}

std::uint64_t CopyInitTrace::src_line(std::size_t row_index, std::uint32_t col) const {
  EASYDRAM_EXPECTS(params_.kind == CopyInitParams::Kind::kCopy);
  const smc::RowRef& r = copy_plan_[row_index].src;
  return mapper_->to_physical(dram::DramAddress{r.bank, r.row, col});
}

std::uint64_t CopyInitTrace::dst_line(std::size_t row_index, std::uint32_t col) const {
  const smc::RowRef& r = params_.kind == CopyInitParams::Kind::kCopy
                             ? copy_plan_[row_index].dst
                             : init_plan_[row_index].dst;
  return mapper_->to_physical(dram::DramAddress{r.bank, r.row, col});
}

void CopyInitTrace::enqueue_warm() {
  const std::uint32_t cols = mapper_->geometry().cols_per_row();
  if (params_.clflush) {
    // Dirty the array the measured operation must later flush: the source
    // array for Copy, the destination array for Init.
    for (std::size_t i = 0; i < rows(); ++i) {
      for (std::uint32_t c = 0; c < cols; ++c) {
        const std::uint64_t addr = params_.kind == CopyInitParams::Kind::kCopy
                                       ? src_line(i, c)
                                       : dst_line(i, c);
        pending_.push_back(make(cpu::Op::kStore, addr, params_.line_gap));
      }
    }
    pending_.push_back(make(cpu::Op::kDrain, 0, 0));
  }
  pending_.push_back(make(cpu::Op::kMarker, 0, 0));
  phase_ = Phase::kRow;
  row_index_ = 0;
}

void CopyInitTrace::enqueue_cpu_row(std::size_t row_index) {
  const std::uint32_t cols = mapper_->geometry().cols_per_row();
  for (std::uint32_t c = 0; c < cols; ++c) {
    if (params_.kind == CopyInitParams::Kind::kCopy) {
      // Each copied line's store consumes the loaded value: the load is on
      // the critical path (memcpy's load->store dependence).
      pending_.push_back(
          make(cpu::Op::kLoadDependent, src_line(row_index, c), params_.line_gap));
    }
    // memset destinations are constant full-line streams (DC-ZVA-style
    // write streaming on cores that support it); memcpy destinations carry
    // loaded data and use the regular store path.
    if (params_.kind == CopyInitParams::Kind::kCopy) {
      pending_.push_back(
          make(cpu::Op::kStore, dst_line(row_index, c), params_.line_gap));
    } else {
      pending_.push_back(make(cpu::Op::kStoreStream, dst_line(row_index, c),
                              params_.init_line_gap));
    }
  }
}

void CopyInitTrace::enqueue_row(std::size_t row_index) {
  const std::uint32_t cols = mapper_->geometry().cols_per_row();
  if (!params_.use_rowclone) {
    enqueue_cpu_row(row_index);
    return;
  }

  const bool planned = params_.kind == CopyInitParams::Kind::kCopy
                           ? copy_plan_[row_index].use_rowclone
                           : init_plan_[row_index].use_rowclone;

  if (params_.clflush) {
    // Coherence (§7.1): write back dirty source lines and invalidate the
    // destination's cached lines before operating in DRAM.
    if (params_.kind == CopyInitParams::Kind::kCopy) {
      for (std::uint32_t c = 0; c < cols; ++c) {
        pending_.push_back(make(cpu::Op::kFlush, src_line(row_index, c), 1));
      }
    }
    for (std::uint32_t c = 0; c < cols; ++c) {
      pending_.push_back(make(cpu::Op::kFlush, dst_line(row_index, c), 1));
    }
    pending_.push_back(make(cpu::Op::kDrain, 0, 0));
  }

  if (!planned) {
    // The allocator could not verify this pair: fall back immediately.
    enqueue_cpu_row(row_index);
    return;
  }

  const std::uint64_t src = params_.kind == CopyInitParams::Kind::kCopy
                                ? row_base(copy_plan_[row_index].src)
                                : row_base(init_plan_[row_index].pattern_src);
  const std::uint64_t dst = params_.kind == CopyInitParams::Kind::kCopy
                                ? row_base(copy_plan_[row_index].dst)
                                : row_base(init_plan_[row_index].dst);
  pending_.push_back(make(cpu::Op::kRowClone, src, 2, dst));
  awaiting_feedback_ = true;
}

void CopyInitTrace::enqueue_final() {
  pending_.push_back(make(cpu::Op::kMarker, 0, 0));
  phase_ = Phase::kDone;
}

bool CopyInitTrace::next(cpu::TraceRecord& out, bool last_rowclone_ok) {
  if (awaiting_feedback_ && pending_.empty()) {
    awaiting_feedback_ = false;
    if (!last_rowclone_ok) {
      // Runtime RowClone failure: redo this row with CPU loads/stores.
      enqueue_cpu_row(row_index_);
    }
    ++row_index_;
  }

  while (pending_.empty()) {
    switch (phase_) {
      case Phase::kWarm:
        enqueue_warm();
        break;
      case Phase::kRow:
        if (row_index_ >= rows()) {
          phase_ = Phase::kFinal;
          break;
        }
        enqueue_row(row_index_);
        if (!awaiting_feedback_) ++row_index_;
        break;
      case Phase::kFinal:
        enqueue_final();
        break;
      case Phase::kDone:
        return false;
    }
  }

  out = pending_.front();
  pending_.pop_front();
  return true;
}

}  // namespace easydram::workloads
