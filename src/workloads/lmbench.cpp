#include "workloads/lmbench.hpp"

#include <numeric>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "workloads/builder.hpp"

namespace easydram::workloads {

std::uint64_t lmbench_loads_per_pass(std::uint64_t buffer_bytes) {
  return buffer_bytes / 64;
}

std::vector<cpu::TraceRecord> make_lmbench_chase(std::uint64_t buffer_bytes,
                                                 int passes,
                                                 std::uint64_t base_addr,
                                                 std::uint64_t seed) {
  EASYDRAM_EXPECTS(buffer_bytes >= 64 && buffer_bytes % 64 == 0);
  EASYDRAM_EXPECTS(passes > 0);
  const std::uint64_t lines = buffer_bytes / 64;

  // Deterministic cycle through all lines (Sattolo's algorithm builds a
  // single-cycle permutation: the chase visits every line exactly once per
  // pass).
  std::vector<std::uint64_t> order(lines);
  std::iota(order.begin(), order.end(), 0);
  Xoshiro256ss rng(seed);
  for (std::uint64_t i = lines - 1; i >= 1; --i) {
    const std::uint64_t j = rng.next_below(i);
    std::swap(order[i], order[j]);
  }

  TraceBuilder b;
  for (int p = 0; p < passes; ++p) {
    for (const std::uint64_t line : order) {
      b.load_dependent(base_addr + line * 64, /*gap=*/1);
    }
  }
  return b.take();
}

}  // namespace easydram::workloads
