#include "workloads/mixed.hpp"

#include "common/contracts.hpp"
#include "workloads/hammer.hpp"
#include "workloads/lmbench.hpp"

namespace easydram::workloads {

std::string_view to_string(TenantKind kind) {
  switch (kind) {
    case TenantKind::kPointerChase: return "chase";
    case TenantKind::kStreamCopy: return "stream";
    case TenantKind::kHammer: return "hammer";
  }
  return "?";
}

namespace {

/// STREAM-style copy: sequential dependent-free loads from the lower half
/// of the footprint, streaming stores to the upper half, one line each per
/// iteration. Written here rather than reusing the PolyBench kernels
/// because tenants need relocatable footprints (the PolyBench generators
/// are base-0).
std::vector<cpu::TraceRecord> make_stream_copy(const TenantSpec& spec) {
  const std::uint64_t half_lines = spec.footprint_bytes / 2 / 64;
  EASYDRAM_EXPECTS(half_lines > 0);
  std::vector<cpu::TraceRecord> out;
  out.reserve(static_cast<std::size_t>(spec.passes) * half_lines * 2);
  const std::uint64_t src = spec.base_addr;
  const std::uint64_t dst = spec.base_addr + spec.footprint_bytes / 2;
  for (int pass = 0; pass < spec.passes; ++pass) {
    for (std::uint64_t line = 0; line < half_lines; ++line) {
      cpu::TraceRecord rd;
      rd.op = cpu::Op::kLoad;
      rd.gap_instructions = spec.gap_instructions;
      rd.addr = src + line * 64;
      out.push_back(rd);
      cpu::TraceRecord wr;
      wr.op = cpu::Op::kStoreStream;
      wr.gap_instructions = spec.gap_instructions;
      wr.addr = dst + line * 64;
      out.push_back(wr);
    }
  }
  return out;
}

std::vector<cpu::TraceRecord> make_hammer_tenant(
    const TenantSpec& spec, const smc::AddressMapper& mapper) {
  // Ground the attack in the tenant's own footprint: hammer the bank its
  // base address decodes to, a few rows in (and off any subarray boundary)
  // so every aggressor has both neighbors.
  const dram::DramAddress base = mapper.to_dram(spec.base_addr);
  HammerParams p;
  p.bank = base.bank;
  p.rank = base.rank;
  p.channel = base.channel;
  p.base_row = base.row + 6;
  const std::uint32_t sub = mapper.geometry().rows_per_subarray;
  if (p.base_row % sub < 2) p.base_row += 2;
  p.rounds = spec.passes * kHammerRoundsPerPass;
  return make_hammer_trace(p, mapper);
}

}  // namespace

std::vector<cpu::TraceRecord> make_tenant_trace(
    const TenantSpec& spec, const smc::AddressMapper& mapper) {
  EASYDRAM_EXPECTS(spec.passes > 0);
  EASYDRAM_EXPECTS(spec.footprint_bytes >= 128);
  std::vector<cpu::TraceRecord> trace;
  switch (spec.kind) {
    case TenantKind::kPointerChase:
      // Per-tenant chase permutation: distinct streams walk distinct
      // pseudo-random orders even over equal-sized footprints.
      trace = make_lmbench_chase(spec.footprint_bytes, spec.passes,
                                 spec.base_addr, 0x17B + spec.stream);
      break;
    case TenantKind::kStreamCopy:
      trace = make_stream_copy(spec);
      break;
    case TenantKind::kHammer:
      trace = make_hammer_tenant(spec, mapper);
      break;
  }
  for (cpu::TraceRecord& rec : trace) rec.stream = spec.stream;
  return trace;
}

MixedTrace make_mixed_trace(std::span<const TenantSpec> tenants,
                            const smc::AddressMapper& mapper) {
  EASYDRAM_EXPECTS(!tenants.empty());
  MixedTrace mixed;
  mixed.solo.reserve(tenants.size());
  std::size_t total = 0;
  for (const TenantSpec& spec : tenants) {
    mixed.solo.push_back(make_tenant_trace(spec, mapper));
    total += mixed.solo.back().size();
  }

  // Smooth weighted round-robin with the tenants' record counts as
  // weights: each step every live tenant's credit grows by its weight and
  // the largest credit (ties to the lower index) emits one record. The
  // result interleaves tenants proportionally — a long bandwidth trace
  // dribbles between chase records instead of running as a block — and is
  // a pure function of the spec list.
  mixed.interleaved.reserve(total);
  std::vector<std::size_t> cursor(tenants.size(), 0);
  std::vector<std::int64_t> credit(tenants.size(), 0);
  while (mixed.interleaved.size() < total) {
    std::size_t pick = tenants.size();
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      if (cursor[i] >= mixed.solo[i].size()) continue;
      credit[i] += static_cast<std::int64_t>(mixed.solo[i].size());
      if (pick == tenants.size() || credit[i] > credit[pick]) pick = i;
    }
    EASYDRAM_ENSURES(pick < tenants.size());
    credit[pick] -= static_cast<std::int64_t>(total);
    mixed.interleaved.push_back(mixed.solo[pick][cursor[pick]++]);
  }
  return mixed;
}

}  // namespace easydram::workloads
