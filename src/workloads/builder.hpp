#pragma once

#include <cstdint>
#include <vector>

#include "common/contracts.hpp"
#include "cpu/trace.hpp"

namespace easydram::workloads {

/// Helper for composing core traces. `default_gap` models the non-memory
/// instructions (index arithmetic, FLOPs) between consecutive memory
/// operations; kernels override it per access where it matters.
class TraceBuilder {
 public:
  explicit TraceBuilder(std::uint32_t default_gap = 2) : default_gap_(default_gap) {
    if (pending_reserve_ != 0) {
      records_.reserve(pending_reserve_);
      pending_reserve_ = 0;
    }
  }

  /// One-shot capacity hint consumed by the next TraceBuilder constructed
  /// on this thread. Kernel generators are standalone functions that build
  /// their own TraceBuilder, so a caller that knows the record count ahead
  /// of time (generate_kernel's per-kernel table) passes it through here —
  /// growing a multi-million-record vector by doubling otherwise re-copies
  /// the whole trace several times over. Zero means no hint.
  static void hint_next_reserve(std::size_t records) {
    pending_reserve_ = records;
  }

  void load(std::uint64_t addr) { push(cpu::Op::kLoad, addr, default_gap_); }
  void load(std::uint64_t addr, std::uint32_t gap) { push(cpu::Op::kLoad, addr, gap); }
  void load_dependent(std::uint64_t addr, std::uint32_t gap = 1) {
    push(cpu::Op::kLoadDependent, addr, gap);
  }
  void store(std::uint64_t addr) { push(cpu::Op::kStore, addr, default_gap_); }
  void store(std::uint64_t addr, std::uint32_t gap) { push(cpu::Op::kStore, addr, gap); }
  void flush(std::uint64_t addr) { push(cpu::Op::kFlush, addr, 1); }
  void drain() { push(cpu::Op::kDrain, 0, 0); }
  void rowclone(std::uint64_t src, std::uint64_t dst) {
    cpu::TraceRecord r;
    r.op = cpu::Op::kRowClone;
    r.gap_instructions = 2;
    r.addr = src;
    r.addr2 = dst;
    records_.push_back(r);
  }
  void compute(std::uint32_t instructions) {
    // Pure-compute stretch: attach the instructions to a NOP-like record by
    // folding them into the next access's gap instead of a dedicated op.
    pending_gap_ += instructions;
  }

  std::vector<cpu::TraceRecord> take() { return std::move(records_); }
  std::size_t size() const { return records_.size(); }

 private:
  void push(cpu::Op op, std::uint64_t addr, std::uint32_t gap) {
    cpu::TraceRecord r;
    r.op = op;
    r.gap_instructions = gap + pending_gap_;
    pending_gap_ = 0;
    r.addr = addr;
    records_.push_back(r);
  }

  inline static thread_local std::size_t pending_reserve_ = 0;

  std::uint32_t default_gap_;
  std::uint32_t pending_gap_ = 0;
  std::vector<cpu::TraceRecord> records_;
};

/// Bump allocator for laying out kernel arrays in physical memory, 64-byte
/// aligned, with a guard gap between arrays so distinct arrays never share
/// a cache line.
class Layout {
 public:
  explicit Layout(std::uint64_t base = 0) : cursor_(base) {}

  std::uint64_t alloc(std::uint64_t bytes) {
    const std::uint64_t aligned = (cursor_ + 63) & ~std::uint64_t{63};
    cursor_ = aligned + ((bytes + 63) & ~std::uint64_t{63});
    return aligned;
  }

  std::uint64_t bytes_used() const { return cursor_; }

 private:
  std::uint64_t cursor_;
};

}  // namespace easydram::workloads
