#include "workloads/hammer.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace easydram::workloads {

namespace {

/// Row distance of the single-sided pattern's conflict partner: far enough
/// that the two aggressors share no victim, near enough to stay inside one
/// subarray for the default base rows.
constexpr std::uint32_t kSingleSidedPartnerDistance = 8;

cpu::TraceRecord hammer_access(cpu::Op op, std::uint64_t addr,
                               std::uint32_t gap) {
  cpu::TraceRecord r;
  r.op = op;
  r.gap_instructions = gap;
  r.addr = addr;
  return r;
}

}  // namespace

std::string_view to_string(HammerPattern p) {
  switch (p) {
    case HammerPattern::kSingleSided: return "single_sided";
    case HammerPattern::kDoubleSided: return "double_sided";
    case HammerPattern::kManySided: return "many_sided";
  }
  return "?";
}

std::vector<std::uint32_t> hammer_aggressor_rows(const HammerParams& p) {
  switch (p.pattern) {
    case HammerPattern::kSingleSided:
      return {p.base_row, p.base_row + kSingleSidedPartnerDistance};
    case HammerPattern::kDoubleSided:
      // Victim p.base_row + 1 sits between the pair.
      return {p.base_row, p.base_row + 2};
    case HammerPattern::kManySided: {
      EASYDRAM_EXPECTS(p.sides >= 2);
      std::vector<std::uint32_t> rows;
      rows.reserve(p.sides);
      for (std::uint32_t i = 0; i < p.sides; ++i) {
        rows.push_back(p.base_row + 2 * i);
      }
      return rows;
    }
  }
  return {};
}

std::vector<std::uint32_t> hammer_victim_rows(const HammerParams& p,
                                              const dram::Geometry& geo) {
  const std::vector<std::uint32_t> aggressors = hammer_aggressor_rows(p);
  std::vector<std::uint32_t> victims;
  for (const std::uint32_t row : aggressors) {
    const dram::Geometry::NeighborRows n = geo.neighbor_rows(row);
    for (std::uint32_t i = 0; i < n.count; ++i) victims.push_back(n.rows[i]);
  }
  std::sort(victims.begin(), victims.end());
  victims.erase(std::unique(victims.begin(), victims.end()), victims.end());
  // An aggressor both disturbs its neighbors and is restored by its own
  // activations: it never accumulates exposure, so it is not a victim.
  std::erase_if(victims, [&aggressors](std::uint32_t v) {
    return std::find(aggressors.begin(), aggressors.end(), v) !=
           aggressors.end();
  });
  return victims;
}

std::vector<cpu::TraceRecord> make_hammer_trace(
    const HammerParams& p, const smc::AddressMapper& mapper) {
  EASYDRAM_EXPECTS(p.rounds > 0);
  const dram::Geometry& geo = mapper.geometry();
  const std::vector<std::uint32_t> aggressors = hammer_aggressor_rows(p);
  std::vector<std::uint64_t> addrs;
  addrs.reserve(aggressors.size());
  for (const std::uint32_t row : aggressors) {
    EASYDRAM_EXPECTS(row < geo.rows_per_bank);
    addrs.push_back(mapper.to_physical(
        dram::DramAddress{p.bank, row, 0, p.channel, p.rank}));
  }

  std::vector<cpu::TraceRecord> trace;
  trace.reserve(static_cast<std::size_t>(p.rounds) * addrs.size() * 2);
  for (int round = 0; round < p.rounds; ++round) {
    for (const std::uint64_t addr : addrs) {
      // The canonical user-space attack loop: touch the line, then CLFLUSH
      // it so the next touch leaves the cache hierarchy and re-ACTs the
      // row. Dependent loads: real attack loops serialize (mfence or a
      // data dependence) precisely so the controller cannot coalesce
      // same-row accesses into one activation — each load is one ACT.
      trace.push_back(
          hammer_access(cpu::Op::kLoadDependent, addr, p.gap_instructions));
      trace.push_back(
          hammer_access(cpu::Op::kFlush, addr, p.gap_instructions));
    }
  }
  return trace;
}

std::vector<cpu::TraceRecord> make_hammer_blend(
    const HammerParams& p, const smc::AddressMapper& mapper,
    std::span<const cpu::TraceRecord> background, std::size_t burst_period) {
  EASYDRAM_EXPECTS(burst_period > 0);
  const std::vector<cpu::TraceRecord> hammer = make_hammer_trace(p, mapper);
  const std::size_t per_round = hammer_aggressor_rows(p).size() * 2;

  std::vector<cpu::TraceRecord> blend;
  blend.reserve(background.size() + hammer.size());
  std::size_t hammer_cursor = 0;
  for (std::size_t i = 0; i < background.size(); ++i) {
    blend.push_back(background[i]);
    if ((i + 1) % burst_period == 0 && hammer_cursor < hammer.size()) {
      const std::size_t end = std::min(hammer_cursor + per_round, hammer.size());
      blend.insert(blend.end(), hammer.begin() + hammer_cursor,
                   hammer.begin() + end);
      hammer_cursor = end;
    }
  }
  // Remaining hammer rounds (short background): attack continues alone.
  blend.insert(blend.end(), hammer.begin() + hammer_cursor, hammer.end());
  return blend;
}

}  // namespace easydram::workloads
