#include "workloads/polybench.hpp"

#include <array>

#include "common/contracts.hpp"
#include "workloads/builder.hpp"

namespace easydram::workloads {

namespace {

/// A 2D double array laid out row-major at a fixed physical base.
struct Arr2 {
  std::uint64_t base = 0;
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;

  std::uint64_t at(std::uint64_t i, std::uint64_t j) const {
    EASYDRAM_EXPECTS(i < rows && j < cols);
    return base + (i * cols + j) * 8;
  }
};

/// A 1D double array.
struct Arr1 {
  std::uint64_t base = 0;
  std::uint64_t n = 0;

  std::uint64_t at(std::uint64_t i) const {
    EASYDRAM_EXPECTS(i < n);
    return base + i * 8;
  }
};

Arr2 alloc2(Layout& l, std::uint64_t rows, std::uint64_t cols) {
  return Arr2{l.alloc(rows * cols * 8), rows, cols};
}

Arr1 alloc1(Layout& l, std::uint64_t n) { return Arr1{l.alloc(n * 8), n}; }

// ---------------------------------------------------------------------------
// Linear algebra: BLAS-like kernels
// ---------------------------------------------------------------------------

std::vector<cpu::TraceRecord> gen_gemm() {
  constexpr std::uint64_t NI = 112, NJ = 112, NK = 112;
  Layout l;
  TraceBuilder b;
  Arr2 C = alloc2(l, NI, NJ), A = alloc2(l, NI, NK), B = alloc2(l, NK, NJ);
  for (std::uint64_t i = 0; i < NI; ++i) {
    for (std::uint64_t j = 0; j < NJ; ++j) {
      b.load(C.at(i, j));
      b.store(C.at(i, j));  // C[i][j] *= beta
      for (std::uint64_t k = 0; k < NK; ++k) {
        b.load(A.at(i, k));
        b.load(B.at(k, j));
      }
      b.store(C.at(i, j));
    }
  }
  return b.take();
}

std::vector<cpu::TraceRecord> gen_gemver() {
  constexpr std::uint64_t N = 800;
  Layout l;
  TraceBuilder b;
  Arr2 A = alloc2(l, N, N);
  Arr1 u1 = alloc1(l, N), v1 = alloc1(l, N), u2 = alloc1(l, N), v2 = alloc1(l, N);
  Arr1 w = alloc1(l, N), x = alloc1(l, N), y = alloc1(l, N), z = alloc1(l, N);
  for (std::uint64_t i = 0; i < N; ++i) {
    b.load(u1.at(i));
    b.load(u2.at(i));
    for (std::uint64_t j = 0; j < N; ++j) {
      b.load(A.at(i, j));
      b.load(v1.at(j));
      b.load(v2.at(j));
      b.store(A.at(i, j));
    }
  }
  for (std::uint64_t i = 0; i < N; ++i) {
    b.load(x.at(i));
    for (std::uint64_t j = 0; j < N; ++j) {
      b.load(A.at(j, i));  // beta * A^T * y
      b.load(y.at(j));
    }
    b.store(x.at(i));
  }
  for (std::uint64_t i = 0; i < N; ++i) {
    b.load(x.at(i));
    b.load(z.at(i));
    b.store(x.at(i));
  }
  for (std::uint64_t i = 0; i < N; ++i) {
    b.load(w.at(i));
    for (std::uint64_t j = 0; j < N; ++j) {
      b.load(A.at(i, j));
      b.load(x.at(j));
    }
    b.store(w.at(i));
  }
  return b.take();
}

std::vector<cpu::TraceRecord> gen_gesummv() {
  constexpr std::uint64_t N = 640;
  Layout l;
  TraceBuilder b;
  Arr2 A = alloc2(l, N, N), B = alloc2(l, N, N);
  Arr1 x = alloc1(l, N), y = alloc1(l, N), tmp = alloc1(l, N);
  for (std::uint64_t i = 0; i < N; ++i) {
    for (std::uint64_t j = 0; j < N; ++j) {
      b.load(A.at(i, j));
      b.load(B.at(i, j));
      b.load(x.at(j));
    }
    b.store(tmp.at(i));
    b.store(y.at(i));
  }
  return b.take();
}

std::vector<cpu::TraceRecord> gen_mvt() {
  constexpr std::uint64_t N = 900;
  Layout l;
  TraceBuilder b;
  Arr2 A = alloc2(l, N, N);
  Arr1 x1 = alloc1(l, N), x2 = alloc1(l, N), y1 = alloc1(l, N), y2 = alloc1(l, N);
  for (std::uint64_t i = 0; i < N; ++i) {
    b.load(x1.at(i));
    for (std::uint64_t j = 0; j < N; ++j) {
      b.load(A.at(i, j));
      b.load(y1.at(j));
    }
    b.store(x1.at(i));
  }
  for (std::uint64_t i = 0; i < N; ++i) {
    b.load(x2.at(i));
    for (std::uint64_t j = 0; j < N; ++j) {
      b.load(A.at(j, i));
      b.load(y2.at(j));
    }
    b.store(x2.at(i));
  }
  return b.take();
}

std::vector<cpu::TraceRecord> gen_syrk() {
  constexpr std::uint64_t N = 128, M = 128;
  Layout l;
  TraceBuilder b;
  Arr2 C = alloc2(l, N, N), A = alloc2(l, N, M);
  for (std::uint64_t i = 0; i < N; ++i) {
    for (std::uint64_t j = 0; j <= i; ++j) {
      b.load(C.at(i, j));
      b.store(C.at(i, j));
    }
    for (std::uint64_t k = 0; k < M; ++k) {
      b.load(A.at(i, k));
      for (std::uint64_t j = 0; j <= i; ++j) {
        b.load(A.at(j, k));
        b.load(C.at(i, j));
        b.store(C.at(i, j));
      }
    }
  }
  return b.take();
}

std::vector<cpu::TraceRecord> gen_syr2k() {
  constexpr std::uint64_t N = 104, M = 104;
  Layout l;
  TraceBuilder b;
  Arr2 C = alloc2(l, N, N), A = alloc2(l, N, M), B = alloc2(l, N, M);
  for (std::uint64_t i = 0; i < N; ++i) {
    for (std::uint64_t j = 0; j <= i; ++j) {
      b.load(C.at(i, j));
      b.store(C.at(i, j));
    }
    for (std::uint64_t k = 0; k < M; ++k) {
      for (std::uint64_t j = 0; j <= i; ++j) {
        b.load(A.at(j, k));
        b.load(B.at(i, k));
        b.load(B.at(j, k));
        b.load(A.at(i, k));
        b.load(C.at(i, j));
        b.store(C.at(i, j));
      }
    }
  }
  return b.take();
}

std::vector<cpu::TraceRecord> gen_symm() {
  constexpr std::uint64_t M = 112, N = 112;
  Layout l;
  TraceBuilder b;
  Arr2 C = alloc2(l, M, N), A = alloc2(l, M, M), B = alloc2(l, M, N);
  for (std::uint64_t i = 0; i < M; ++i) {
    for (std::uint64_t j = 0; j < N; ++j) {
      for (std::uint64_t k = 0; k < i; ++k) {
        b.load(A.at(i, k));
        b.load(B.at(i, j));
        b.load(C.at(k, j));
        b.store(C.at(k, j));
        b.load(B.at(k, j));
      }
      b.load(B.at(i, j));
      b.load(A.at(i, i));
      b.load(C.at(i, j));
      b.store(C.at(i, j));
    }
  }
  return b.take();
}

std::vector<cpu::TraceRecord> gen_trmm() {
  constexpr std::uint64_t M = 128, N = 128;
  Layout l;
  TraceBuilder b;
  Arr2 A = alloc2(l, M, M), B = alloc2(l, M, N);
  for (std::uint64_t i = 0; i < M; ++i) {
    for (std::uint64_t j = 0; j < N; ++j) {
      b.load(B.at(i, j));
      for (std::uint64_t k = i + 1; k < M; ++k) {
        b.load(A.at(k, i));
        b.load(B.at(k, j));
      }
      b.store(B.at(i, j));
    }
  }
  return b.take();
}

std::vector<cpu::TraceRecord> gen_2mm() {
  constexpr std::uint64_t NI = 96, NJ = 96, NK = 96, NL = 96;
  Layout l;
  TraceBuilder b;
  Arr2 tmp = alloc2(l, NI, NJ), A = alloc2(l, NI, NK), B = alloc2(l, NK, NJ);
  Arr2 C = alloc2(l, NJ, NL), D = alloc2(l, NI, NL);
  for (std::uint64_t i = 0; i < NI; ++i) {
    for (std::uint64_t j = 0; j < NJ; ++j) {
      for (std::uint64_t k = 0; k < NK; ++k) {
        b.load(A.at(i, k));
        b.load(B.at(k, j));
      }
      b.store(tmp.at(i, j));
    }
  }
  for (std::uint64_t i = 0; i < NI; ++i) {
    for (std::uint64_t j = 0; j < NL; ++j) {
      b.load(D.at(i, j));
      for (std::uint64_t k = 0; k < NJ; ++k) {
        b.load(tmp.at(i, k));
        b.load(C.at(k, j));
      }
      b.store(D.at(i, j));
    }
  }
  return b.take();
}

std::vector<cpu::TraceRecord> gen_3mm() {
  constexpr std::uint64_t N = 80;
  Layout l;
  TraceBuilder b;
  Arr2 A = alloc2(l, N, N), B = alloc2(l, N, N), C = alloc2(l, N, N), D = alloc2(l, N, N);
  Arr2 E = alloc2(l, N, N), F = alloc2(l, N, N), G = alloc2(l, N, N);
  auto mm = [&](const Arr2& dst, const Arr2& x, const Arr2& y) {
    for (std::uint64_t i = 0; i < N; ++i) {
      for (std::uint64_t j = 0; j < N; ++j) {
        for (std::uint64_t k = 0; k < N; ++k) {
          b.load(x.at(i, k));
          b.load(y.at(k, j));
        }
        b.store(dst.at(i, j));
      }
    }
  };
  mm(E, A, B);
  mm(F, C, D);
  mm(G, E, F);
  return b.take();
}

std::vector<cpu::TraceRecord> gen_atax() {
  constexpr std::uint64_t M = 880, N = 880;
  Layout l;
  TraceBuilder b;
  Arr2 A = alloc2(l, M, N);
  Arr1 x = alloc1(l, N), y = alloc1(l, N), tmp = alloc1(l, M);
  for (std::uint64_t i = 0; i < M; ++i) {
    for (std::uint64_t j = 0; j < N; ++j) {
      b.load(A.at(i, j));
      b.load(x.at(j));
    }
    b.store(tmp.at(i));
    for (std::uint64_t j = 0; j < N; ++j) {
      b.load(A.at(i, j));
      b.load(y.at(j));
      b.store(y.at(j));
    }
  }
  return b.take();
}

std::vector<cpu::TraceRecord> gen_bicg() {
  constexpr std::uint64_t M = 880, N = 880;
  Layout l;
  TraceBuilder b;
  Arr2 A = alloc2(l, N, M);
  Arr1 s = alloc1(l, M), q = alloc1(l, N), p = alloc1(l, M), r = alloc1(l, N);
  for (std::uint64_t i = 0; i < N; ++i) {
    b.load(r.at(i));
    for (std::uint64_t j = 0; j < M; ++j) {
      b.load(s.at(j));
      b.load(A.at(i, j));
      b.store(s.at(j));
      b.load(p.at(j));
    }
    b.store(q.at(i));
  }
  return b.take();
}

std::vector<cpu::TraceRecord> gen_doitgen() {
  constexpr std::uint64_t NR = 24, NQ = 24, NP = 64;
  Layout l;
  TraceBuilder b;
  Arr2 A = alloc2(l, NR * NQ, NP), C4 = alloc2(l, NP, NP);
  Arr1 sum = alloc1(l, NP);
  for (std::uint64_t r = 0; r < NR; ++r) {
    for (std::uint64_t q = 0; q < NQ; ++q) {
      for (std::uint64_t p = 0; p < NP; ++p) {
        for (std::uint64_t s = 0; s < NP; ++s) {
          b.load(A.at(r * NQ + q, s));
          b.load(C4.at(s, p));
        }
        b.store(sum.at(p));
      }
      for (std::uint64_t p = 0; p < NP; ++p) {
        b.load(sum.at(p));
        b.store(A.at(r * NQ + q, p));
      }
    }
  }
  return b.take();
}

// ---------------------------------------------------------------------------
// Data mining
// ---------------------------------------------------------------------------

std::vector<cpu::TraceRecord> gen_correlation() {
  constexpr std::uint64_t M = 96, N = 256;
  Layout l;
  TraceBuilder b;
  Arr2 data = alloc2(l, N, M), corr = alloc2(l, M, M);
  Arr1 mean_a = alloc1(l, M), stddev = alloc1(l, M);
  for (std::uint64_t j = 0; j < M; ++j) {
    for (std::uint64_t i = 0; i < N; ++i) b.load(data.at(i, j));
    b.store(mean_a.at(j));
  }
  for (std::uint64_t j = 0; j < M; ++j) {
    b.load(mean_a.at(j));
    for (std::uint64_t i = 0; i < N; ++i) b.load(data.at(i, j));
    b.store(stddev.at(j));
  }
  for (std::uint64_t i = 0; i < N; ++i) {
    for (std::uint64_t j = 0; j < M; ++j) {
      b.load(data.at(i, j));
      b.load(mean_a.at(j));
      b.load(stddev.at(j));
      b.store(data.at(i, j));
    }
  }
  for (std::uint64_t i = 0; i + 1 < M; ++i) {
    b.store(corr.at(i, i));
    for (std::uint64_t j = i + 1; j < M; ++j) {
      for (std::uint64_t k = 0; k < N; ++k) {
        b.load(data.at(k, i));
        b.load(data.at(k, j));
      }
      b.store(corr.at(i, j));
      b.store(corr.at(j, i));
    }
  }
  return b.take();
}

std::vector<cpu::TraceRecord> gen_covariance() {
  constexpr std::uint64_t M = 96, N = 256;
  Layout l;
  TraceBuilder b;
  Arr2 data = alloc2(l, N, M), cov = alloc2(l, M, M);
  Arr1 mean_a = alloc1(l, M);
  for (std::uint64_t j = 0; j < M; ++j) {
    for (std::uint64_t i = 0; i < N; ++i) b.load(data.at(i, j));
    b.store(mean_a.at(j));
  }
  for (std::uint64_t i = 0; i < N; ++i) {
    for (std::uint64_t j = 0; j < M; ++j) {
      b.load(data.at(i, j));
      b.load(mean_a.at(j));
      b.store(data.at(i, j));
    }
  }
  for (std::uint64_t i = 0; i < M; ++i) {
    for (std::uint64_t j = i; j < M; ++j) {
      for (std::uint64_t k = 0; k < N; ++k) {
        b.load(data.at(k, i));
        b.load(data.at(k, j));
      }
      b.store(cov.at(i, j));
      b.store(cov.at(j, i));
    }
  }
  return b.take();
}

// ---------------------------------------------------------------------------
// Solvers and decompositions
// ---------------------------------------------------------------------------

std::vector<cpu::TraceRecord> gen_trisolv() {
  constexpr std::uint64_t N = 900;
  Layout l;
  TraceBuilder b;
  Arr2 L = alloc2(l, N, N);
  Arr1 x = alloc1(l, N), bb = alloc1(l, N);
  for (std::uint64_t i = 0; i < N; ++i) {
    b.load(bb.at(i));
    for (std::uint64_t j = 0; j < i; ++j) {
      b.load(L.at(i, j));
      b.load(x.at(j));
    }
    b.load(L.at(i, i));
    b.store(x.at(i));
  }
  return b.take();
}

std::vector<cpu::TraceRecord> gen_cholesky() {
  constexpr std::uint64_t N = 144;
  Layout l;
  TraceBuilder b;
  Arr2 A = alloc2(l, N, N);
  for (std::uint64_t i = 0; i < N; ++i) {
    for (std::uint64_t j = 0; j < i; ++j) {
      b.load(A.at(i, j));
      for (std::uint64_t k = 0; k < j; ++k) {
        b.load(A.at(i, k));
        b.load(A.at(j, k));
      }
      b.load(A.at(j, j));
      b.store(A.at(i, j));
    }
    b.load(A.at(i, i));
    for (std::uint64_t k = 0; k < i; ++k) b.load(A.at(i, k));
    b.store(A.at(i, i));
  }
  return b.take();
}

std::vector<cpu::TraceRecord> gen_lu() {
  constexpr std::uint64_t N = 144;
  Layout l;
  TraceBuilder b;
  Arr2 A = alloc2(l, N, N);
  for (std::uint64_t i = 0; i < N; ++i) {
    for (std::uint64_t j = 0; j < i; ++j) {
      b.load(A.at(i, j));
      for (std::uint64_t k = 0; k < j; ++k) {
        b.load(A.at(i, k));
        b.load(A.at(k, j));
      }
      b.load(A.at(j, j));
      b.store(A.at(i, j));
    }
    for (std::uint64_t j = i; j < N; ++j) {
      b.load(A.at(i, j));
      for (std::uint64_t k = 0; k < i; ++k) {
        b.load(A.at(i, k));
        b.load(A.at(k, j));
      }
      b.store(A.at(i, j));
    }
  }
  return b.take();
}

std::vector<cpu::TraceRecord> gen_ludcmp() {
  constexpr std::uint64_t N = 144;
  Layout l;
  TraceBuilder b;
  Arr2 A = alloc2(l, N, N);
  Arr1 bv = alloc1(l, N), x = alloc1(l, N), y = alloc1(l, N);
  // LU factorization (same nest as lu) ...
  for (std::uint64_t i = 0; i < N; ++i) {
    for (std::uint64_t j = 0; j < i; ++j) {
      b.load(A.at(i, j));
      for (std::uint64_t k = 0; k < j; ++k) {
        b.load(A.at(i, k));
        b.load(A.at(k, j));
      }
      b.load(A.at(j, j));
      b.store(A.at(i, j));
    }
    for (std::uint64_t j = i; j < N; ++j) {
      b.load(A.at(i, j));
      for (std::uint64_t k = 0; k < i; ++k) {
        b.load(A.at(i, k));
        b.load(A.at(k, j));
      }
      b.store(A.at(i, j));
    }
  }
  // ... followed by the two triangular solves.
  for (std::uint64_t i = 0; i < N; ++i) {
    b.load(bv.at(i));
    for (std::uint64_t j = 0; j < i; ++j) {
      b.load(A.at(i, j));
      b.load(y.at(j));
    }
    b.store(y.at(i));
  }
  for (std::uint64_t ii = N; ii > 0; --ii) {
    const std::uint64_t i = ii - 1;
    b.load(y.at(i));
    for (std::uint64_t j = i + 1; j < N; ++j) {
      b.load(A.at(i, j));
      b.load(x.at(j));
    }
    b.load(A.at(i, i));
    b.store(x.at(i));
  }
  return b.take();
}

std::vector<cpu::TraceRecord> gen_durbin() {
  constexpr std::uint64_t N = 800;
  Layout l;
  TraceBuilder b;
  Arr1 r = alloc1(l, N), y = alloc1(l, N), z = alloc1(l, N);
  b.load(r.at(0));
  b.store(y.at(0));
  for (std::uint64_t k = 1; k < N; ++k) {
    b.load(r.at(k));
    for (std::uint64_t i = 0; i < k; ++i) {
      b.load(r.at(k - i - 1));
      b.load(y.at(i));
    }
    for (std::uint64_t i = 0; i < k; ++i) {
      b.load(y.at(i));
      b.load(y.at(k - i - 1));
      b.store(z.at(i));
    }
    for (std::uint64_t i = 0; i < k; ++i) {
      b.load(z.at(i));
      b.store(y.at(i));
    }
    b.store(y.at(k));
  }
  return b.take();
}

std::vector<cpu::TraceRecord> gen_gramschmidt() {
  constexpr std::uint64_t M = 120, N = 120;
  Layout l;
  TraceBuilder b;
  Arr2 A = alloc2(l, M, N), R = alloc2(l, N, N), Q = alloc2(l, M, N);
  for (std::uint64_t k = 0; k < N; ++k) {
    for (std::uint64_t i = 0; i < M; ++i) b.load(A.at(i, k));
    b.store(R.at(k, k));
    for (std::uint64_t i = 0; i < M; ++i) {
      b.load(A.at(i, k));
      b.load(R.at(k, k));
      b.store(Q.at(i, k));
    }
    for (std::uint64_t j = k + 1; j < N; ++j) {
      for (std::uint64_t i = 0; i < M; ++i) {
        b.load(Q.at(i, k));
        b.load(A.at(i, j));
      }
      b.store(R.at(k, j));
      for (std::uint64_t i = 0; i < M; ++i) {
        b.load(A.at(i, j));
        b.load(Q.at(i, k));
        b.load(R.at(k, j));
        b.store(A.at(i, j));
      }
    }
  }
  return b.take();
}

// ---------------------------------------------------------------------------
// Stencils and dynamic programming
// ---------------------------------------------------------------------------

std::vector<cpu::TraceRecord> gen_jacobi_1d() {
  constexpr std::uint64_t N = 100000, T = 4;
  Layout l;
  TraceBuilder b;
  Arr1 A = alloc1(l, N), B = alloc1(l, N);
  for (std::uint64_t t = 0; t < T; ++t) {
    for (std::uint64_t i = 1; i + 1 < N; ++i) {
      b.load(A.at(i - 1));
      b.load(A.at(i));
      b.load(A.at(i + 1));
      b.store(B.at(i));
    }
    for (std::uint64_t i = 1; i + 1 < N; ++i) {
      b.load(B.at(i - 1));
      b.load(B.at(i));
      b.load(B.at(i + 1));
      b.store(A.at(i));
    }
  }
  return b.take();
}

std::vector<cpu::TraceRecord> gen_jacobi_2d() {
  constexpr std::uint64_t N = 360, T = 2;
  Layout l;
  TraceBuilder b;
  Arr2 A = alloc2(l, N, N), B = alloc2(l, N, N);
  auto sweep = [&](const Arr2& src, const Arr2& dst) {
    for (std::uint64_t i = 1; i + 1 < N; ++i) {
      for (std::uint64_t j = 1; j + 1 < N; ++j) {
        b.load(src.at(i, j));
        b.load(src.at(i, j - 1));
        b.load(src.at(i, j + 1));
        b.load(src.at(i - 1, j));
        b.load(src.at(i + 1, j));
        b.store(dst.at(i, j));
      }
    }
  };
  for (std::uint64_t t = 0; t < T; ++t) {
    sweep(A, B);
    sweep(B, A);
  }
  return b.take();
}

std::vector<cpu::TraceRecord> gen_seidel_2d() {
  constexpr std::uint64_t N = 400, T = 2;
  Layout l;
  TraceBuilder b;
  Arr2 A = alloc2(l, N, N);
  for (std::uint64_t t = 0; t < T; ++t) {
    for (std::uint64_t i = 1; i + 1 < N; ++i) {
      for (std::uint64_t j = 1; j + 1 < N; ++j) {
        b.load(A.at(i - 1, j - 1));
        b.load(A.at(i - 1, j));
        b.load(A.at(i - 1, j + 1));
        b.load(A.at(i, j - 1));
        b.load(A.at(i, j));
        b.load(A.at(i, j + 1));
        b.load(A.at(i + 1, j - 1));
        b.load(A.at(i + 1, j));
        b.load(A.at(i + 1, j + 1));
        b.store(A.at(i, j));
      }
    }
  }
  return b.take();
}

std::vector<cpu::TraceRecord> gen_fdtd_2d() {
  constexpr std::uint64_t NX = 300, NY = 300, T = 2;
  Layout l;
  TraceBuilder b;
  Arr2 ex = alloc2(l, NX, NY), ey = alloc2(l, NX, NY), hz = alloc2(l, NX, NY);
  for (std::uint64_t t = 0; t < T; ++t) {
    for (std::uint64_t j = 0; j < NY; ++j) b.store(ey.at(0, j));
    for (std::uint64_t i = 1; i < NX; ++i) {
      for (std::uint64_t j = 0; j < NY; ++j) {
        b.load(ey.at(i, j));
        b.load(hz.at(i, j));
        b.load(hz.at(i - 1, j));
        b.store(ey.at(i, j));
      }
    }
    for (std::uint64_t i = 0; i < NX; ++i) {
      for (std::uint64_t j = 1; j < NY; ++j) {
        b.load(ex.at(i, j));
        b.load(hz.at(i, j));
        b.load(hz.at(i, j - 1));
        b.store(ex.at(i, j));
      }
    }
    for (std::uint64_t i = 0; i + 1 < NX; ++i) {
      for (std::uint64_t j = 0; j + 1 < NY; ++j) {
        b.load(hz.at(i, j));
        b.load(ex.at(i, j + 1));
        b.load(ex.at(i, j));
        b.load(ey.at(i + 1, j));
        b.load(ey.at(i, j));
        b.store(hz.at(i, j));
      }
    }
  }
  return b.take();
}

std::vector<cpu::TraceRecord> gen_heat_3d() {
  constexpr std::uint64_t N = 48, T = 2;
  Layout l;
  TraceBuilder b;
  Arr2 A = alloc2(l, N * N, N), B = alloc2(l, N * N, N);
  auto idx = [&](const Arr2& a, std::uint64_t i, std::uint64_t j, std::uint64_t k) {
    return a.at(i * N + j, k);
  };
  auto sweep = [&](const Arr2& src, const Arr2& dst) {
    for (std::uint64_t i = 1; i + 1 < N; ++i) {
      for (std::uint64_t j = 1; j + 1 < N; ++j) {
        for (std::uint64_t k = 1; k + 1 < N; ++k) {
          b.load(idx(src, i + 1, j, k));
          b.load(idx(src, i, j, k));
          b.load(idx(src, i - 1, j, k));
          b.load(idx(src, i, j + 1, k));
          b.load(idx(src, i, j - 1, k));
          b.load(idx(src, i, j, k + 1));
          b.load(idx(src, i, j, k - 1));
          b.store(idx(dst, i, j, k));
        }
      }
    }
  };
  for (std::uint64_t t = 0; t < T; ++t) {
    sweep(A, B);
    sweep(B, A);
  }
  return b.take();
}

std::vector<cpu::TraceRecord> gen_adi() {
  constexpr std::uint64_t N = 200, T = 2;
  Layout l;
  TraceBuilder b;
  Arr2 u = alloc2(l, N, N), v = alloc2(l, N, N), p = alloc2(l, N, N), q = alloc2(l, N, N);
  for (std::uint64_t t = 0; t < T; ++t) {
    // Column sweep.
    for (std::uint64_t i = 1; i + 1 < N; ++i) {
      b.store(v.at(0, i));
      b.store(p.at(i, 0));
      b.store(q.at(i, 0));
      for (std::uint64_t j = 1; j + 1 < N; ++j) {
        b.load(p.at(i, j - 1));
        b.load(q.at(i, j - 1));
        b.load(u.at(j, i - 1));
        b.load(u.at(j, i));
        b.load(u.at(j, i + 1));
        b.store(p.at(i, j));
        b.store(q.at(i, j));
      }
      b.store(v.at(N - 1, i));
      for (std::uint64_t jj = N - 1; jj > 0; --jj) {
        const std::uint64_t j = jj - 1;
        if (j == 0) break;
        b.load(p.at(i, j));
        b.load(v.at(j + 1, i));
        b.load(q.at(i, j));
        b.store(v.at(j, i));
      }
    }
    // Row sweep.
    for (std::uint64_t i = 1; i + 1 < N; ++i) {
      b.store(u.at(i, 0));
      b.store(p.at(i, 0));
      b.store(q.at(i, 0));
      for (std::uint64_t j = 1; j + 1 < N; ++j) {
        b.load(p.at(i, j - 1));
        b.load(q.at(i, j - 1));
        b.load(v.at(i - 1, j));
        b.load(v.at(i, j));
        b.load(v.at(i + 1, j));
        b.store(p.at(i, j));
        b.store(q.at(i, j));
      }
      b.store(u.at(i, N - 1));
      for (std::uint64_t jj = N - 1; jj > 0; --jj) {
        const std::uint64_t j = jj - 1;
        if (j == 0) break;
        b.load(p.at(i, j));
        b.load(u.at(i, j + 1));
        b.load(q.at(i, j));
        b.store(u.at(i, j));
      }
    }
  }
  return b.take();
}

std::vector<cpu::TraceRecord> gen_floyd_warshall() {
  constexpr std::uint64_t N = 100;
  Layout l;
  TraceBuilder b;
  Arr2 path = alloc2(l, N, N);
  for (std::uint64_t k = 0; k < N; ++k) {
    for (std::uint64_t i = 0; i < N; ++i) {
      for (std::uint64_t j = 0; j < N; ++j) {
        b.load(path.at(i, j));
        b.load(path.at(i, k));
        b.load(path.at(k, j));
        b.store(path.at(i, j));
      }
    }
  }
  return b.take();
}

constexpr std::array<PolybenchKernel, 28> kKernels{{
    {"correlation", gen_correlation},
    {"covariance", gen_covariance},
    {"2mm", gen_2mm},
    {"3mm", gen_3mm},
    {"atax", gen_atax},
    {"bicg", gen_bicg},
    {"doitgen", gen_doitgen},
    {"mvt", gen_mvt},
    {"gemm", gen_gemm},
    {"gemver", gen_gemver},
    {"gesummv", gen_gesummv},
    {"symm", gen_symm},
    {"syr2k", gen_syr2k},
    {"syrk", gen_syrk},
    {"trmm", gen_trmm},
    {"cholesky", gen_cholesky},
    {"durbin", gen_durbin},
    {"gramschmidt", gen_gramschmidt},
    {"lu", gen_lu},
    {"ludcmp", gen_ludcmp},
    {"trisolv", gen_trisolv},
    {"adi", gen_adi},
    {"fdtd-2d", gen_fdtd_2d},
    {"heat-3d", gen_heat_3d},
    {"jacobi-1d", gen_jacobi_1d},
    {"jacobi-2d", gen_jacobi_2d},
    {"seidel-2d", gen_seidel_2d},
    {"floyd-warshall", gen_floyd_warshall},
}};

constexpr std::array<std::string_view, 11> kFig13Names{
    "gemver",      "mvt",  "gesummv", "syrk",   "symm", "correlation",
    "covariance",  "trisolv", "gramschmidt", "gemm", "durbin",
};

}  // namespace

std::span<const PolybenchKernel> all_kernels() { return kKernels; }

std::span<const std::string_view> fig13_names() { return kFig13Names; }

std::size_t kernel_record_count(std::string_view name) {
  // Exact trace lengths of every kernel (the generators are deterministic
  // and parameterless). generate_kernel reserves this up front so the
  // builder never re-copies the multi-million-record vector while growing;
  // a test pins the table to the generators, so drift is a loud failure.
  struct KernelRecordCount {
    std::string_view name;
    std::size_t records;
  };
  static constexpr KernelRecordCount kRecordCounts[] = {
      {"correlation", 2491679},
      {"covariance", 2491584},
      {"2mm", 3566592},
      {"3mm", 3091200},
      {"atax", 3872880},
      {"bicg", 3099360},
      {"doitgen", 4829184},
      {"mvt", 3243600},
      {"gemm", 2847488},
      {"gemver", 5127200},
      {"gesummv", 1230080},
      {"symm", 3531136},
      {"syr2k", 3417960},
      {"syrk", 3203200},
      {"trmm", 2113536},
      {"cholesky", 1016160},
      {"durbin", 2238800},
      {"gramschmidt", 5205660},
      {"lu", 2021736},
      {"ludcmp", 2063640},
      {"trisolv", 811800},
      {"adi", 1728144},
      {"fdtd-2d", 2508612},
      {"heat-3d", 3114752},
      {"jacobi-1d", 3199936},
      {"jacobi-2d", 3075936},
      {"seidel-2d", 3168080},
      {"floyd-warshall", 4000000},
  };
  for (const KernelRecordCount& c : kRecordCounts) {
    if (c.name == name) return c.records;
  }
  return 0;
}

std::vector<cpu::TraceRecord> generate_kernel(std::string_view name) {
  for (const PolybenchKernel& k : kKernels) {
    if (k.name == name) {
      TraceBuilder::hint_next_reserve(kernel_record_count(name));
      return k.generate();
    }
  }
  EASYDRAM_EXPECTS(!"unknown PolyBench kernel name");
  return {};
}

}  // namespace easydram::workloads
