#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace easydram {

/// Thrown when a precondition, postcondition, or invariant is violated.
///
/// Contract checks stay enabled in release builds: the simulators in this
/// repository are deterministic, so a violated contract always indicates a
/// programming error worth a loud stop rather than silent corruption.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  throw ContractViolation(os.str());
}

}  // namespace detail

}  // namespace easydram

/// Precondition check (Core Guidelines I.5/I.6 style).
#define EASYDRAM_EXPECTS(cond)                                                   \
  do {                                                                           \
    if (!(cond)) ::easydram::detail::contract_fail("Expects", #cond, __FILE__, __LINE__); \
  } while (false)

/// Postcondition check (Core Guidelines I.7/I.8 style).
#define EASYDRAM_ENSURES(cond)                                                   \
  do {                                                                           \
    if (!(cond)) ::easydram::detail::contract_fail("Ensures", #cond, __FILE__, __LINE__); \
  } while (false)
