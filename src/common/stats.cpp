#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace easydram {

void Summary::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sum_ += x;
  ++count_;
}

double Summary::mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) {
    EASYDRAM_EXPECTS(x > 0.0);
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  EASYDRAM_EXPECTS(hi > lo);
  EASYDRAM_EXPECTS(buckets > 0);
}

void Histogram::add(double x) {
  const double span = hi_ - lo_;
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / span * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_low(std::size_t bucket) const {
  EASYDRAM_EXPECTS(bucket < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(bucket) / static_cast<double>(counts_.size());
}

}  // namespace easydram
