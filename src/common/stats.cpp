#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace easydram {

void Summary::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sum_ += x;
  ++count_;
}

double Summary::mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }

double geomean(std::span<const double> xs, GeomeanPolicy policy) {
  if (xs.empty() && policy == GeomeanPolicy::kThrow) {
    throw StatsError("geomean: empty input");
  }
  double log_sum = 0.0;
  std::size_t used = 0;
  for (double x : xs) {
    if (!(x > 0.0)) {  // Also catches NaN (all comparisons false).
      if (policy == GeomeanPolicy::kThrow) {
        throw StatsError("geomean: non-positive sample " + std::to_string(x));
      }
      continue;
    }
    log_sum += std::log(x);
    ++used;
  }
  if (used == 0) return 0.0;
  return std::exp(log_sum / static_cast<double>(used));
}

double mean(std::span<const double> xs) {
  if (xs.empty()) throw StatsError("mean: empty input");
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.empty()) throw StatsError("stddev: empty input");
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double sq = 0.0;
  for (double x : xs) sq += (x - m) * (x - m);
  return std::sqrt(sq / static_cast<double>(xs.size() - 1));
}

double percentile(std::span<const double> xs, double pct) {
  if (xs.empty()) throw StatsError("percentile: empty input");
  EASYDRAM_EXPECTS(pct >= 0.0 && pct <= 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = pct / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

double p50(std::span<const double> xs) { return percentile(xs, 50.0); }

double p95(std::span<const double> xs) { return percentile(xs, 95.0); }

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  EASYDRAM_EXPECTS(hi > lo);
  EASYDRAM_EXPECTS(buckets > 0);
}

void Histogram::add(double x) {
  if (!std::isfinite(x)) {
    ++rejected_;
    return;
  }
  const double span = hi_ - lo_;
  // Clamp in double space before the integer cast: converting a value whose
  // truncation does not fit std::ptrdiff_t is undefined behaviour.
  double pos = (x - lo_) / span * static_cast<double>(counts_.size());
  pos = std::clamp(pos, 0.0, static_cast<double>(counts_.size() - 1));
  ++counts_[static_cast<std::size_t>(pos)];
  ++total_;
}

double Histogram::bucket_low(std::size_t bucket) const {
  EASYDRAM_EXPECTS(bucket < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(bucket) / static_cast<double>(counts_.size());
}

}  // namespace easydram
