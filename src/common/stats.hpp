#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace easydram {

/// Thrown by statistics helpers on invalid input (e.g. a non-positive
/// sample fed to geomean). Unlike ContractViolation this is an expected,
/// catchable condition: benches can report "n/a" instead of dying.
class StatsError : public std::invalid_argument {
 public:
  explicit StatsError(const std::string& what) : std::invalid_argument(what) {}
};

/// Streaming summary of a series of samples: count, mean, min, max.
class Summary {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// What geomean does with a non-positive sample (for which log() is
/// undefined): throw a StatsError, or skip the sample and average the rest.
enum class GeomeanPolicy {
  kThrow,
  kSkipNonPositive,
};

// Empty-input policy, uniform across the free aggregation functions: an
// empty span throws StatsError. A statistic of nothing is not 0.0, and the
// old silent-zero behaviour let an accidentally empty sweep masquerade as
// a measured result. (Summary, the *streaming* accumulator, keeps its
// explicit count() so callers branch on emptiness themselves.)

/// Geometric mean of positive samples. Under kSkipNonPositive, non-positive
/// samples are skipped and 0 is returned when nothing (or nothing positive)
/// remains; under kThrow, an empty span or any non-positive sample throws.
double geomean(std::span<const double> xs,
               GeomeanPolicy policy = GeomeanPolicy::kThrow);

/// Arithmetic mean. Throws StatsError for an empty span.
double mean(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator). Throws StatsError for an
/// empty span; returns 0 for a single sample (the undefined n-1 case is
/// pinned to 0 so single-repetition runs report a spread of "none").
double stddev(std::span<const double> xs);

/// Percentile in [0, 100] by linear interpolation between closest ranks.
/// Throws StatsError for an empty span; the single element for a
/// one-element span.
double percentile(std::span<const double> xs, double pct);

/// Median (50th percentile).
double p50(std::span<const double> xs);

/// 95th percentile.
double p95(std::span<const double> xs);

/// Fixed-bucket histogram over [lo, hi); finite samples outside are clamped
/// into the first/last bucket, non-finite samples are rejected (counted in
/// rejected(), excluded from total()). Used by characterization studies and
/// tests.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t count_at(std::size_t bucket) const { return counts_.at(bucket); }
  std::size_t total() const { return total_; }
  std::size_t rejected() const { return rejected_; }
  double bucket_low(std::size_t bucket) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t rejected_ = 0;
};

}  // namespace easydram
