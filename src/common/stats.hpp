#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace easydram {

/// Streaming summary of a series of samples: count, mean, min, max.
class Summary {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Geometric mean of strictly positive samples. Returns 0 for an empty span.
double geomean(std::span<const double> xs);

/// Arithmetic mean. Returns 0 for an empty span.
double mean(std::span<const double> xs);

/// Fixed-bucket histogram over [lo, hi); samples outside are clamped into the
/// first/last bucket. Used by characterization studies and tests.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t count_at(std::size_t bucket) const { return counts_.at(bucket); }
  std::size_t total() const { return total_; }
  double bucket_low(std::size_t bucket) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace easydram
