#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace easydram {

/// Minimal aligned-column text table used by the benchmark harnesses to print
/// the rows/series of each paper table and figure.
class TextTable {
 public:
  /// Sets the header row; resets nothing else.
  void set_header(std::vector<std::string> header);

  /// Appends a data row. Rows may have fewer cells than the header.
  void add_row(std::vector<std::string> row);

  /// Renders the table with one space of padding and a rule under the header.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `v` with `digits` digits after the decimal point.
std::string fmt_fixed(double v, int digits);

}  // namespace easydram
