#pragma once

#include <array>
#include <cstdint>

namespace easydram {

/// SplitMix64: tiny, fast, full-period 64-bit mixer. Used both as a seeding
/// sequence and as a stateless hash for deterministic "physical" fields
/// (e.g. per-row cell strength), so the same (seed, key) always yields the
/// same value on every platform.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Stateless mix of a seed and up to three keys into a uniform 64-bit value.
constexpr std::uint64_t hash_mix(std::uint64_t seed, std::uint64_t a,
                                 std::uint64_t b = 0, std::uint64_t c = 0) {
  SplitMix64 sm(seed ^ (a * 0xA24BAED4963EE407ULL) ^ (b * 0x9FB21C651E98DF25ULL) ^
                (c * 0xD6E8FEB86659FD93ULL));
  return sm.next();
}

/// Uniform double in [0, 1) from a 64-bit value (53-bit mantissa method).
constexpr double to_unit_double(std::uint64_t x) {
  return static_cast<double>(x >> 11) * (1.0 / 9007199254740992.0);
}

/// xoshiro256**: the repository's sequential PRNG for workload generation.
/// Deterministic given the seed; never seeded from wall-clock time.
class Xoshiro256ss {
 public:
  explicit Xoshiro256ss(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    const __uint128_t m = static_cast<__uint128_t>(next()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  double next_double() { return to_unit_double(next()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace easydram
