#pragma once

#include <cstdint>

namespace easydram {

/// Typed failure of a memory request, carried end-to-end from the software
/// memory controller (tile::Response) through the completion machinery
/// (sys::CompletionRing) to the core model (cpu::Completion). The error
/// pipeline's graceful-degradation contract: a request that cannot be
/// served correctly fails with a typed error — never a silent wrong answer.
enum class RequestError : std::uint8_t {
  kNone = 0,
  /// Detected-uncorrectable data error that survived the bounded re-read
  /// retry budget (a hard fault, or a transient wider than SEC-DED can
  /// correct on a row whose spare budget is exhausted).
  kUncorrectable = 1,
};

}  // namespace easydram
