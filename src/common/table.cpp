#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace easydram {

void TextTable::set_header(std::vector<std::string> header) { header_ = std::move(header); }

void TextTable::add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) widths[i] = std::max(widths[i], row[i].size());
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << row[i];
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t rule = 0;
  for (std::size_t w : widths) rule += w + 2;
  os << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string fmt_fixed(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

}  // namespace easydram
