#pragma once

#include <cstdint>
#include <compare>

#include "common/contracts.hpp"

namespace easydram {

/// A point or span on a timeline, in picoseconds.
///
/// All device-level timing in the repository is integral picoseconds: DDR4
/// timing parameters are multiples of fractional nanoseconds (e.g. tCK =
/// 1.5 ns for DDR4-1333), and integer ps arithmetic keeps every simulator
/// bit-deterministic across platforms.
struct Picoseconds {
  std::int64_t count = 0;

  constexpr Picoseconds() = default;
  constexpr explicit Picoseconds(std::int64_t ps) : count(ps) {}

  constexpr auto operator<=>(const Picoseconds&) const = default;

  constexpr Picoseconds operator+(Picoseconds o) const { return Picoseconds{count + o.count}; }
  constexpr Picoseconds operator-(Picoseconds o) const { return Picoseconds{count - o.count}; }
  constexpr Picoseconds& operator+=(Picoseconds o) { count += o.count; return *this; }
  constexpr Picoseconds& operator-=(Picoseconds o) { count -= o.count; return *this; }
  constexpr Picoseconds operator*(std::int64_t k) const { return Picoseconds{count * k}; }

  constexpr double nanoseconds() const { return static_cast<double>(count) / 1e3; }
  constexpr double microseconds() const { return static_cast<double>(count) / 1e6; }
  constexpr double seconds() const { return static_cast<double>(count) / 1e12; }
};

namespace literals {
constexpr Picoseconds operator""_ps(unsigned long long v) { return Picoseconds{static_cast<std::int64_t>(v)}; }
constexpr Picoseconds operator""_ns(unsigned long long v) { return Picoseconds{static_cast<std::int64_t>(v) * 1000}; }
constexpr Picoseconds operator""_us(unsigned long long v) { return Picoseconds{static_cast<std::int64_t>(v) * 1000 * 1000}; }
constexpr Picoseconds operator""_ms(unsigned long long v) { return Picoseconds{static_cast<std::int64_t>(v) * 1000 * 1000 * 1000}; }
}  // namespace literals

/// A count of clock cycles in some clock domain (DRAM, SMC core, emulated
/// processor, FPGA). A strong type for the same reason as Picoseconds: a
/// raw `std::int64_t window_cycles` and a raw `std::int64_t window_ps` add
/// and compare silently, and that unit confusion is exactly what the
/// easydram-lint `raw-time-units` check bans from public headers. Cycles
/// never carries its clock — converting to real time goes through the
/// owning domain's Frequency.
struct Cycles {
  std::int64_t count = 0;

  constexpr Cycles() = default;
  constexpr explicit Cycles(std::int64_t c) : count(c) {}

  constexpr auto operator<=>(const Cycles&) const = default;

  constexpr Cycles operator+(Cycles o) const { return Cycles{count + o.count}; }
  constexpr Cycles operator-(Cycles o) const { return Cycles{count - o.count}; }
  constexpr Cycles& operator+=(Cycles o) { count += o.count; return *this; }
  constexpr Cycles& operator-=(Cycles o) { count -= o.count; return *this; }
  constexpr Cycles operator*(std::int64_t k) const { return Cycles{count * k}; }
};

/// A clock frequency in hertz. Converts between cycle counts and Picoseconds.
struct Frequency {
  std::int64_t hertz = 0;

  constexpr Frequency() = default;
  constexpr explicit Frequency(std::int64_t hz) : hertz(hz) {}

  constexpr auto operator<=>(const Frequency&) const = default;

  static constexpr Frequency megahertz(std::int64_t mhz) { return Frequency{mhz * 1'000'000}; }
  static constexpr Frequency gigahertz(std::int64_t ghz) { return Frequency{ghz * 1'000'000'000}; }

  /// Clock period. Exact only when 1e12 is divisible by `hertz`; all clock
  /// frequencies used in this repository (50/100/666.67 MHz, 1/1.43 GHz)
  /// are modelled through the cycle<->ps converters below instead, which
  /// round deterministically.
  constexpr Picoseconds period() const {
    EASYDRAM_EXPECTS(hertz > 0);
    return Picoseconds{1'000'000'000'000 / hertz};
  }

  /// Duration of `cycles` clock cycles, rounded to nearest picosecond.
  constexpr Picoseconds cycles_to_ps(std::int64_t cycles) const {
    EASYDRAM_EXPECTS(hertz > 0);
    // cycles / hertz seconds = cycles * 1e12 / hertz ps. 128-bit to avoid overflow.
    const __int128 num = static_cast<__int128>(cycles) * 1'000'000'000'000;
    return Picoseconds{static_cast<std::int64_t>((num + hertz / 2) / hertz)};
  }

  constexpr Picoseconds cycles_to_ps(Cycles c) const { return cycles_to_ps(c.count); }

  /// Number of whole cycles that have *started* by time `t` (floor).
  constexpr std::int64_t ps_to_cycles_floor(Picoseconds t) const {
    EASYDRAM_EXPECTS(hertz > 0);
    const __int128 num = static_cast<__int128>(t.count) * hertz;
    return static_cast<std::int64_t>(num / 1'000'000'000'000);
  }

  /// Number of cycles needed to cover duration `t` (ceiling). This is the
  /// conversion used when a latency expressed in real time must be charged
  /// to a clocked domain: a partial cycle still occupies a full cycle.
  constexpr std::int64_t ps_to_cycles_ceil(Picoseconds t) const {
    EASYDRAM_EXPECTS(hertz > 0);
    const __int128 num = static_cast<__int128>(t.count) * hertz;
    const __int128 den = 1'000'000'000'000;
    return static_cast<std::int64_t>((num + den - 1) / den);
  }
};

}  // namespace easydram
