#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "bender/program.hpp"
#include "common/units.hpp"
#include "dram/device.hpp"

namespace easydram::bender {

/// One captured readback line plus the reliability flag the device reported.
struct ReadbackEntry {
  std::array<std::uint8_t, 64> data{};
  bool reliable = true;
};

/// Outcome of executing one command batch.
struct ExecutionResult {
  /// Wall time the batch occupied on the DRAM interface. This is the value
  /// DRAM Bender reports back to the software memory controller and the
  /// quantity time scaling converts into emulated processor cycles.
  Picoseconds elapsed{};
  /// Captured read data, in program order (the readback buffer).
  std::vector<ReadbackEntry> readback;
  /// OR of all nominal-timing violations observed (diagnostics).
  std::uint32_t violations = 0;
  std::int64_t rowclone_attempts = 0;
  std::int64_t rowclone_successes = 0;
  std::int64_t commands_issued = 0;
};

/// Executes DRAM Bender programs against the DRAM device model.
///
/// The interpreter models the real engine's key property: once a batch
/// starts, commands and sleeps replay with cycle-exact spacing (one DDR
/// command slot per DRAM cycle), completely decoupled from the (slow)
/// software memory controller.
class Interpreter {
 public:
  explicit Interpreter(dram::DramDevice& device) : device_(&device) {}

  /// Runs `program` starting at device time `start` (which must be at or
  /// after the device's current time). Returns when the last instruction
  /// retires; `elapsed` covers start -> retirement of the final command
  /// slot, including trailing read-data latency of captured reads.
  ExecutionResult execute(const Program& program, Picoseconds start);

 private:
  dram::DramDevice* device_;
};

}  // namespace easydram::bender
