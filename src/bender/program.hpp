#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "bender/isa.hpp"
#include "common/units.hpp"
#include "dram/timing.hpp"
#include "dram/types.hpp"

namespace easydram::bender {

/// Capacity of the EasyTile command buffer in instructions. The software
/// memory controller accumulates at most this many instructions per batch
/// before it must call execute (flush_commands in EasyAPI terms).
inline constexpr std::size_t kCommandBufferCapacity = 16384;

/// A DRAM Bender program: instruction stream plus the write-data table
/// referenced by WR instructions. Built by the software memory controller,
/// transferred into the command buffer, and executed by the interpreter.
class Program {
 public:
  /// Appends a raw instruction. Throws ContractViolation when the command
  /// buffer capacity would be exceeded.
  void push(const Instruction& inst);

  /// Appends a DDR command with immediate address operands that waits for
  /// nominal timings (regular accesses).
  void ddr(dram::Command cmd, const dram::DramAddress& a, bool capture = false,
           std::uint32_t wdata_index = 0);

  /// Appends a DDR command issued exactly `min_gap` after the previous
  /// DDR command, ignoring nominal timings (DRAM techniques).
  void ddr_exact(dram::Command cmd, const dram::DramAddress& a,
                 Picoseconds min_gap, bool capture = false,
                 std::uint32_t wdata_index = 0);

  /// Appends SLEEP for `cycles` DRAM cycles (no-op when cycles == 0).
  void sleep(std::uint64_t cycles);

  /// Appends SLEEP long enough to cover `duration` at clock period `tck`.
  void sleep_at_least(Picoseconds duration, Picoseconds tck);

  void set_reg(std::uint32_t reg, std::uint64_t value);
  void add_reg(std::uint32_t reg, std::uint64_t delta);
  void loop_begin(std::uint64_t count);
  void loop_end();

  /// Registers a 64-byte write payload; returns its wdata index.
  std::uint32_t add_wdata(std::span<const std::uint8_t> data);

  std::span<const Instruction> instructions() const { return instructions_; }
  std::span<const std::array<std::uint8_t, 64>> wdata() const { return wdata_; }
  std::size_t size() const { return instructions_.size(); }
  bool empty() const { return instructions_.empty(); }
  void clear();

 private:
  std::vector<Instruction> instructions_;
  std::vector<std::array<std::uint8_t, 64>> wdata_;
  int open_loops_ = 0;
};

}  // namespace easydram::bender
