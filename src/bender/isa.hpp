#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "dram/types.hpp"

namespace easydram::bender {

/// DRAM Bender register file size. Registers hold row/column operands so a
/// compact program can sweep thousands of addresses (e.g. the tRCD profiler).
inline constexpr std::uint32_t kNumRegisters = 8;

/// Opcodes of the modelled DRAM Bender ISA.
///
/// The real DRAM Bender executes programs in an FPGA pipeline that issues
/// one DDR command (or idles) per DRAM cycle; SLEEP provides cycle-exact
/// inter-command delays and LOOP_BEGIN/LOOP_END give counted loops with
/// register arithmetic. This subset covers every program the paper's case
/// studies need.
enum class Opcode : std::uint8_t {
  kDdr,        ///< Issue a DDR command; occupies one DRAM cycle slot.
  kSleep,      ///< Idle for `imm` DRAM cycles.
  kSetReg,     ///< reg[a] = imm.
  kAddReg,     ///< reg[a] += imm (wrapping).
  kLoopBegin,  ///< Execute the loop body `imm` times; bodies may nest.
  kLoopEnd,    ///< Close the innermost loop.
  kEnd,        ///< Stop execution.
};

/// Operand source for a DDR instruction field: an immediate or a register.
struct Operand {
  std::uint32_t value = 0;
  bool from_register = false;

  static constexpr Operand imm(std::uint32_t v) { return Operand{v, false}; }
  static constexpr Operand reg(std::uint32_t r) { return Operand{r, true}; }
};

/// One DRAM Bender instruction (fixed-size encoding, like the real ISA).
struct Instruction {
  Opcode op = Opcode::kEnd;
  dram::Command cmd = dram::Command::kNop;  ///< kDdr only.
  Operand bank;                             ///< kDdr only.
  Operand row;                              ///< kDdr only.
  Operand col;                              ///< kDdr only.
  Operand rank;                             ///< kDdr only (multi-rank channels).
  /// kDdr+kWrite: index into the program's write-data table.
  std::uint32_t wdata_index = 0;
  /// kDdr+kRead: capture returned data into the readback buffer.
  bool capture = false;
  /// kDdr: when true the engine delays the command until the device's
  /// nominal timings allow it (the common case for regular accesses — in
  /// the real platform the SMC computes these delays and encodes them as
  /// SLEEPs; folding the computation into the engine keeps batches compact).
  /// When false the command issues exactly at the cursor, which is how
  /// DRAM techniques violate timings on purpose.
  bool respect_nominal = true;
  /// kDdr: minimum gap from the previous DDR command's issue time. Exact
  /// placement for techniques (e.g. a reduced-tRCD read sets min_gap =
  /// tRCD_reduced after its ACT with respect_nominal=false).
  Picoseconds min_gap{};
  /// kSleep: cycles; kSetReg/kAddReg: value; kLoopBegin: trip count.
  std::uint64_t imm = 0;
  /// kSetReg/kAddReg: destination register.
  std::uint32_t reg = 0;
};

}  // namespace easydram::bender
