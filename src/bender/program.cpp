#include "bender/program.hpp"

#include <cstring>

#include "common/contracts.hpp"

namespace easydram::bender {

void Program::push(const Instruction& inst) {
  EASYDRAM_EXPECTS(instructions_.size() < kCommandBufferCapacity);
  instructions_.push_back(inst);
}

void Program::ddr(dram::Command cmd, const dram::DramAddress& a, bool capture,
                  std::uint32_t wdata_index) {
  Instruction inst;
  inst.op = Opcode::kDdr;
  inst.cmd = cmd;
  inst.bank = Operand::imm(a.bank);
  inst.row = Operand::imm(a.row);
  inst.col = Operand::imm(a.col);
  inst.rank = Operand::imm(a.rank);
  inst.capture = capture;
  inst.wdata_index = wdata_index;
  push(inst);
}

void Program::ddr_exact(dram::Command cmd, const dram::DramAddress& a,
                        Picoseconds min_gap, bool capture,
                        std::uint32_t wdata_index) {
  EASYDRAM_EXPECTS(min_gap.count >= 0);
  Instruction inst;
  inst.op = Opcode::kDdr;
  inst.cmd = cmd;
  inst.bank = Operand::imm(a.bank);
  inst.row = Operand::imm(a.row);
  inst.col = Operand::imm(a.col);
  inst.rank = Operand::imm(a.rank);
  inst.capture = capture;
  inst.wdata_index = wdata_index;
  inst.respect_nominal = false;
  inst.min_gap = min_gap;
  push(inst);
}

void Program::sleep(std::uint64_t cycles) {
  if (cycles == 0) return;
  Instruction inst;
  inst.op = Opcode::kSleep;
  inst.imm = cycles;
  push(inst);
}

void Program::sleep_at_least(Picoseconds duration, Picoseconds tck) {
  EASYDRAM_EXPECTS(tck.count > 0);
  if (duration.count <= 0) return;
  const std::int64_t cycles = (duration.count + tck.count - 1) / tck.count;
  sleep(static_cast<std::uint64_t>(cycles));
}

void Program::set_reg(std::uint32_t reg, std::uint64_t value) {
  EASYDRAM_EXPECTS(reg < kNumRegisters);
  Instruction inst;
  inst.op = Opcode::kSetReg;
  inst.reg = reg;
  inst.imm = value;
  push(inst);
}

void Program::add_reg(std::uint32_t reg, std::uint64_t delta) {
  EASYDRAM_EXPECTS(reg < kNumRegisters);
  Instruction inst;
  inst.op = Opcode::kAddReg;
  inst.reg = reg;
  inst.imm = delta;
  push(inst);
}

void Program::loop_begin(std::uint64_t count) {
  Instruction inst;
  inst.op = Opcode::kLoopBegin;
  inst.imm = count;
  push(inst);
  ++open_loops_;
}

void Program::loop_end() {
  EASYDRAM_EXPECTS(open_loops_ > 0);
  Instruction inst;
  inst.op = Opcode::kLoopEnd;
  push(inst);
  --open_loops_;
}

std::uint32_t Program::add_wdata(std::span<const std::uint8_t> data) {
  EASYDRAM_EXPECTS(data.size() == 64);
  std::array<std::uint8_t, 64> line{};
  std::memcpy(line.data(), data.data(), 64);
  wdata_.push_back(line);
  return static_cast<std::uint32_t>(wdata_.size() - 1);
}

void Program::clear() {
  instructions_.clear();
  wdata_.clear();
  open_loops_ = 0;
}

}  // namespace easydram::bender
