#include "bender/interpreter.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace easydram::bender {

namespace {

struct LoopFrame {
  std::size_t body_start = 0;
  std::uint64_t remaining = 0;
};

std::uint32_t resolve(const Operand& op,
                      const std::array<std::uint64_t, kNumRegisters>& regs) {
  if (!op.from_register) return op.value;
  EASYDRAM_EXPECTS(op.value < kNumRegisters);
  return static_cast<std::uint32_t>(regs[op.value]);
}

/// Finds the instruction index just past the loop end matching the
/// kLoopBegin at `begin_idx` (used to skip zero-trip loops).
std::size_t skip_loop(std::span<const Instruction> insts, std::size_t begin_idx) {
  int depth = 0;
  for (std::size_t i = begin_idx; i < insts.size(); ++i) {
    if (insts[i].op == Opcode::kLoopBegin) ++depth;
    if (insts[i].op == Opcode::kLoopEnd) {
      --depth;
      if (depth == 0) return i + 1;
    }
  }
  EASYDRAM_EXPECTS(!"unterminated loop in bender program");
  return insts.size();
}

}  // namespace

ExecutionResult Interpreter::execute(const Program& program, Picoseconds start) {
  const Picoseconds tck = device_->timing().tCK;
  Picoseconds t = std::max(start, device_->now());
  const Picoseconds batch_start = t;
  Picoseconds last_data_end = t;
  Picoseconds last_cmd_issue = t - tck;  // So a first-command min_gap of tCK holds.

  ExecutionResult result;
  std::array<std::uint64_t, kNumRegisters> regs{};
  std::vector<LoopFrame> loops;
  const auto insts = program.instructions();

  std::size_t pc = 0;
  while (pc < insts.size()) {
    const Instruction& inst = insts[pc];
    switch (inst.op) {
      case Opcode::kEnd:
        pc = insts.size();
        break;

      case Opcode::kDdr: {
        dram::DramAddress addr{resolve(inst.bank, regs), resolve(inst.row, regs),
                               resolve(inst.col, regs)};
        addr.rank = resolve(inst.rank, regs);
        std::span<const std::uint8_t> wdata;
        if (inst.cmd == dram::Command::kWrite) {
          EASYDRAM_EXPECTS(inst.wdata_index < program.wdata().size());
          wdata = program.wdata()[inst.wdata_index];
        }
        // Command placement: exact commands issue min_gap after the previous
        // command; nominal commands are additionally delayed until the
        // device's timing parameters allow them.
        Picoseconds issue_at = std::max(t, last_cmd_issue + inst.min_gap);
        if (inst.respect_nominal) {
          issue_at = std::max(issue_at, device_->earliest_legal(inst.cmd, addr));
        }
        t = issue_at;
        const dram::IssueResult ir = device_->issue(inst.cmd, addr, t, wdata);
        last_cmd_issue = t;
        result.violations |= ir.violations;
        if (ir.rowclone_attempted) {
          ++result.rowclone_attempts;
          if (ir.rowclone_success) ++result.rowclone_successes;
        }
        if (inst.cmd == dram::Command::kRead) {
          last_data_end = std::max(last_data_end,
                                   t + device_->timing().read_data_latency());
          if (inst.capture) {
            // One allocation for a typical row-batch worth of lines
            // instead of doubling up from 1 (write-only batches still
            // allocate nothing).
            if (result.readback.capacity() == 0) result.readback.reserve(16);
            result.readback.push_back(ReadbackEntry{ir.data, ir.data_reliable});
          }
        }
        if (inst.cmd == dram::Command::kWrite) {
          last_data_end = std::max(last_data_end,
                                   t + device_->timing().write_data_latency());
        }
        if (inst.cmd == dram::Command::kRef) {
          last_data_end = std::max(last_data_end, t + device_->timing().tRFC);
        }
        ++result.commands_issued;
        t += tck;
        ++pc;
        break;
      }

      case Opcode::kSleep:
        t += Picoseconds{static_cast<std::int64_t>(inst.imm) * tck.count};
        ++pc;
        break;

      case Opcode::kSetReg:
        EASYDRAM_EXPECTS(inst.reg < kNumRegisters);
        regs[inst.reg] = inst.imm;
        t += tck;
        ++pc;
        break;

      case Opcode::kAddReg:
        EASYDRAM_EXPECTS(inst.reg < kNumRegisters);
        regs[inst.reg] += inst.imm;
        t += tck;
        ++pc;
        break;

      case Opcode::kLoopBegin:
        if (inst.imm == 0) {
          pc = skip_loop(insts, pc);
        } else {
          loops.push_back(LoopFrame{pc + 1, inst.imm});
          ++pc;
        }
        break;

      case Opcode::kLoopEnd:
        EASYDRAM_EXPECTS(!loops.empty());
        if (--loops.back().remaining > 0) {
          pc = loops.back().body_start;
        } else {
          loops.pop_back();
          ++pc;
        }
        break;
    }
  }

  result.elapsed = std::max(t, last_data_end) - batch_start;
  return result;
}

}  // namespace easydram::bender
