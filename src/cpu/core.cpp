#include "cpu/core.hpp"

#include <algorithm>

namespace easydram::cpu {

Core::Core(const CoreConfig& cfg, const CacheHierConfig& caches)
    : cfg_(cfg), l1_(caches.l1), l2_(caches.l2) {
  EASYDRAM_EXPECTS(cfg.issue_width > 0);
  EASYDRAM_EXPECTS(cfg.mlp > 0);
  EASYDRAM_EXPECTS(cfg.store_buffer > 0);
}

void Core::advance_for_instructions(std::uint32_t count) {
  result_.instructions += count;
  const std::uint64_t total = count + width_remainder_;
  cycle_ += static_cast<std::int64_t>(total / cfg_.issue_width);
  width_remainder_ = static_cast<std::uint32_t>(total % cfg_.issue_width);
}

void Core::evict_from_l2(std::uint64_t line, bool l2_dirty, MemoryBackend& mem) {
  // Inclusive hierarchy: back-invalidate the L1 copy; the freshest dirty
  // version (L1 over L2) is written back to memory.
  const Cache::FlushResult l1f = l1_.flush(line);
  if (l2_dirty || l1f.was_dirty) {
    reserve_store_slot(mem);
    store_slots_.push_back(mem.submit_write(line, cycle_));
    ++result_.mem_writes;
  }
}

bool Core::allocate_line(std::uint64_t line, MemoryBackend& mem,
                         std::uint64_t& mem_id) {
  bool from_memory = false;
  if (!l2_.probe(line)) {
    from_memory = true;
    const FillResult l2fill = l2_.fill(line);
    if (l2fill.evicted) evict_from_l2(l2fill.evicted_line, l2fill.evicted_dirty, mem);
    mem_id = mem.submit_read(line, cycle_);
    ++result_.mem_reads;
  }
  const FillResult l1fill = l1_.fill(line);
  if (l1fill.evicted && l1fill.evicted_dirty) {
    // Dirty L1 victim folds back into the (inclusive) L2.
    if (l2_.probe(l1fill.evicted_line)) {
      l2_.mark_dirty(l1fill.evicted_line);
    } else {
      reserve_store_slot(mem);
      store_slots_.push_back(mem.submit_write(l1fill.evicted_line, cycle_));
      ++result_.mem_writes;
    }
  }
  return from_memory;
}

void Core::wait_oldest_load(MemoryBackend& mem) {
  EASYDRAM_EXPECTS(!outstanding_loads_.empty());
  const Completion c = mem.wait(outstanding_loads_.front());
  outstanding_loads_.pop_front();
  cycle_ = std::max(cycle_, c.release_cycle);
}

void Core::reserve_store_slot(MemoryBackend& mem) {
  if (store_slots_.size() < cfg_.store_buffer) return;
  const Completion c = mem.wait(store_slots_.front());
  store_slots_.pop_front();
  cycle_ = std::max(cycle_, c.release_cycle);
}

void Core::drain_all(MemoryBackend& mem) {
  while (!outstanding_loads_.empty()) wait_oldest_load(mem);
  while (!store_slots_.empty()) {
    const Completion c = mem.wait(store_slots_.front());
    store_slots_.pop_front();
    cycle_ = std::max(cycle_, c.release_cycle);
  }
}

RunResult Core::run(TraceSource& trace, MemoryBackend& mem) {
  result_ = RunResult{};
  cycle_ = 0;
  width_remainder_ = 0;
  outstanding_loads_.clear();
  store_slots_.clear();

  TraceRecord rec;
  bool last_rowclone_ok = true;
  std::uint32_t current_stream = 0;
  mem.set_stream(current_stream);
  while (trace.next(rec, last_rowclone_ok)) {
    // Stream identity is sticky on the backend: every request this record
    // causes — including writebacks of lines another stream dirtied — is
    // attributed to the stream whose access is executing now.
    if (rec.stream != current_stream) {
      current_stream = rec.stream;
      mem.set_stream(current_stream);
    }
    advance_for_instructions(rec.gap_instructions + 1);
    const std::uint64_t line = rec.addr & ~std::uint64_t{63};

    switch (rec.op) {
      case Op::kLoad:
      case Op::kLoadDependent: {
        ++result_.loads;
        const bool dependent = cfg_.blocking_loads || rec.op == Op::kLoadDependent;
        if (l1_.access(line)) {
          if (dependent) cycle_ += cfg_.l1_latency;
          break;
        }
        ++result_.l1_misses;
        if (l2_.access(line)) {
          std::uint64_t unused = 0;
          allocate_line(line, mem, unused);
          if (dependent) cycle_ += cfg_.l2_latency;
          break;
        }
        ++result_.l2_misses;
        if (outstanding_loads_.size() >= cfg_.mlp) wait_oldest_load(mem);
        std::uint64_t id = 0;
        const bool from_mem = allocate_line(line, mem, id);
        EASYDRAM_ENSURES(from_mem);
        if (dependent) {
          const Completion c = mem.wait(id);
          cycle_ = std::max(cycle_, c.release_cycle + cfg_.fill_to_use);
        } else {
          outstanding_loads_.push_back(id);
        }
        break;
      }

      case Op::kStoreStream: {
        if (cfg_.write_streaming) {
          ++result_.stores;
          // Non-temporal full-line store: no allocation, no RFO. Any cached
          // copy is superseded wholesale (no writeback needed).
          l1_.flush(line);
          l2_.flush(line);
          reserve_store_slot(mem);
          store_slots_.push_back(mem.submit_write(line, cycle_));
          ++result_.mem_writes;
          break;
        }
        [[fallthrough]];  // Cores without streaming treat it as a store.
      }

      case Op::kStore: {
        ++result_.stores;
        if (l1_.access(line)) {
          l1_.mark_dirty(line);
          break;
        }
        ++result_.l1_misses;
        if (l2_.access(line)) {
          std::uint64_t unused = 0;
          allocate_line(line, mem, unused);
          l1_.mark_dirty(line);
          break;
        }
        ++result_.l2_misses;
        // Write-allocate: the read-for-ownership occupies a store-buffer
        // slot; the core stalls only when the buffer is full.
        reserve_store_slot(mem);
        std::uint64_t id = 0;
        const bool from_mem = allocate_line(line, mem, id);
        EASYDRAM_ENSURES(from_mem);
        l1_.mark_dirty(line);
        store_slots_.push_back(id);
        break;
      }

      case Op::kFlush: {
        ++result_.flushes;
        cycle_ += cfg_.flush_cost;
        const Cache::FlushResult f1 = l1_.flush(line);
        const Cache::FlushResult f2 = l2_.flush(line);
        if (f1.was_dirty || f2.was_dirty) {
          reserve_store_slot(mem);
          store_slots_.push_back(mem.submit_write(line, cycle_));
          ++result_.mem_writes;
        }
        break;
      }

      case Op::kRowClone: {
        ++result_.rowclones;
        cycle_ += cfg_.rowclone_trigger_cycles.count;
        const std::uint64_t id = mem.submit_rowclone(rec.addr, rec.addr2, cycle_);
        const Completion c = mem.wait(id);
        cycle_ = std::max(cycle_, c.release_cycle);
        last_rowclone_ok = c.ok;
        if (!c.ok) ++result_.rowclone_fallbacks;
        break;
      }

      case Op::kProfile: {
        const std::uint64_t id = mem.submit_profile(rec.addr, rec.profile_trcd, cycle_);
        const Completion c = mem.wait(id);
        cycle_ = std::max(cycle_, c.release_cycle);
        break;
      }

      case Op::kDrain:
        drain_all(mem);
        break;

      case Op::kMarker:
        drain_all(mem);
        result_.markers.push_back(cycle_);
        break;
    }
  }

  drain_all(mem);
  result_.cycles = cycle_;
  return result_;
}

}  // namespace easydram::cpu
