#pragma once

#include <cstdint>

#include "common/error.hpp"
#include "common/units.hpp"

namespace easydram::cpu {

/// Completion of a waited-on memory request.
struct Completion {
  /// Emulated processor cycle at which the response may be consumed (the
  /// time-scaling release tag).
  std::int64_t release_cycle = 0;
  /// RowClone: whether the in-DRAM operation succeeded (false requests a
  /// CPU fallback). Profiling: whether the reduced access was correct.
  /// Reads: false iff `error != kNone`.
  bool ok = true;
  /// Reads: the device's reliability verdict on the returned data; false
  /// means a reduced-tRCD access undercut the line's minimum and no
  /// nominal retry replaced the corrupt data.
  bool data_reliable = true;
  /// Typed failure of the request (common/error.hpp): graceful
  /// degradation — an uncorrectable data error fails the request visibly
  /// instead of returning a silent wrong answer.
  RequestError error = RequestError::kNone;
  /// Stream identity of the originating request (0 for single-stream
  /// traffic), round-tripped through the whole request path. Last member
  /// so pre-stream aggregate initializers keep their meaning.
  std::uint32_t stream = 0;
};

/// The memory system as seen by the core model. Implemented by the
/// EasyDRAM full system (sys/) and by the Ramulator-like baseline.
///
/// Submission is non-blocking: requests carry the core's current emulated
/// cycle and return an id. `wait` blocks (simulation-wise) until the
/// request's response exists and returns its release cycle. Writes are
/// posted; cores wait on them only at drain points.
class MemoryBackend {
 public:
  virtual ~MemoryBackend() = default;

  /// Sets the stream identity stamped onto subsequently submitted requests.
  /// Sticky until the next call; backends without per-stream accounting keep
  /// the default no-op. The core calls this when the trace's stream changes,
  /// so cache writebacks are attributed to the stream whose access evicted
  /// the line.
  virtual void set_stream(std::uint32_t /*stream*/) {}

  virtual std::uint64_t submit_read(std::uint64_t paddr, std::int64_t now) = 0;
  virtual std::uint64_t submit_write(std::uint64_t paddr, std::int64_t now) = 0;
  virtual std::uint64_t submit_rowclone(std::uint64_t src_paddr,
                                        std::uint64_t dst_paddr,
                                        std::int64_t now) = 0;
  virtual std::uint64_t submit_profile(std::uint64_t paddr, Picoseconds trcd,
                                       std::int64_t now) = 0;

  virtual Completion wait(std::uint64_t id) = 0;
};

}  // namespace easydram::cpu
