#pragma once

#include "cpu/core.hpp"

namespace easydram::cpu {

/// ARM Cortex A57 as on the NVIDIA Jetson Nano (§6): 1.43 GHz, 2-wide
/// out-of-order with modest memory-level parallelism.
inline CoreConfig cortex_a57_core() {
  CoreConfig c;
  c.emulated_clock = Frequency{1'430'000'000};
  c.issue_width = 2;
  c.mlp = 4;
  c.store_buffer = 24;
  c.l1_latency = 3;
  c.l2_latency = 18;
  c.fill_to_use = 6;
  // MMIO trigger + completion polling at GHz-class clocks: a handful of
  // uncached register accesses, each a platform round-trip costing
  // hundreds of processor cycles.
  c.rowclone_trigger_cycles = Cycles{2300};
  // A57 detects full-line store streams (memset/memcpy) and skips RFOs.
  c.write_streaming = true;
  return c;
}

/// The Jetson Nano's real cache hierarchy (L2 = 2 MiB), used by the Fig. 8
/// "real board" reference curve.
inline CacheHierConfig jetson_nano_caches() {
  CacheHierConfig h;
  h.l1 = CacheConfig{32 * 1024, 2, 64};
  h.l2 = CacheConfig{2 * 1024 * 1024, 16, 64};
  return h;
}

/// EasyDRAM's FPGA build of the same system: identical core model but a
/// 512 KiB L2 (§6 notes this difference explicitly).
inline CacheHierConfig easydram_caches() {
  CacheHierConfig h;
  h.l1 = CacheConfig{32 * 1024, 2, 64};
  h.l2 = CacheConfig{512 * 1024, 8, 64};
  return h;
}

/// The PiDRAM-style modelled system (§7.2): simple in-order core at 50 MHz
/// with blocking loads and a tiny store buffer. Used by the
/// No-Time-Scaling configuration.
inline CoreConfig pidram_inorder_core() {
  CoreConfig c;
  c.emulated_clock = Frequency::megahertz(50);
  c.issue_width = 1;
  c.mlp = 1;
  c.store_buffer = 2;
  c.l1_latency = 2;
  c.l2_latency = 12;
  c.fill_to_use = 2;
  c.blocking_loads = true;
  // The MMIO trigger: a handful of uncached stores; at 50 MHz the FPGA
  // interconnect round-trip is a few processor cycles.
  c.rowclone_trigger_cycles = Cycles{12};
  // The PiDRAM-style copy/init microbenchmark paths operate on flushed /
  // uncached buffers, so full-line stores go straight to memory.
  c.write_streaming = true;
  return c;
}

/// The §6 validation target: a BOOM-like core emulated at 1 GHz.
inline CoreConfig boom_1ghz_core() {
  CoreConfig c;
  c.emulated_clock = Frequency::gigahertz(1);
  c.issue_width = 2;
  c.mlp = 4;
  c.store_buffer = 16;
  c.l1_latency = 2;
  c.l2_latency = 14;
  c.fill_to_use = 4;
  c.write_streaming = true;
  return c;
}

}  // namespace easydram::cpu
