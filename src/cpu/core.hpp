#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/units.hpp"
#include "cpu/backend.hpp"
#include "cpu/cache.hpp"
#include "cpu/trace.hpp"

namespace easydram::cpu {

/// Core timing parameters.
///
/// The model is a trace-driven approximation of an out-of-order core:
/// non-memory instructions retire at `issue_width` per cycle; independent
/// load misses overlap up to `mlp` outstanding; stores retire into a
/// `store_buffer`-deep buffer and only stall the core when it fills;
/// dependent loads (pointer chases) expose their full latency.
struct CoreConfig {
  Frequency emulated_clock = Frequency::gigahertz(1);
  std::uint32_t issue_width = 2;
  std::uint32_t mlp = 4;
  std::uint32_t store_buffer = 16;
  std::int64_t l1_latency = 2;    ///< Dependent-load L1 hit cycles.
  std::int64_t l2_latency = 14;   ///< Dependent-load L2 hit cycles.
  std::int64_t fill_to_use = 4;   ///< Response release to dependent use.
  std::int64_t flush_cost = 4;    ///< Cycles to issue one cache-line flush.
  /// CPU-side cost of triggering one RowClone operation: uncached MMIO
  /// stores of the source/target addresses, the go bit, and completion
  /// polling (PiDRAM-style memory-mapped interface). Charged per kRowClone
  /// in addition to the memory system's service latency.
  Cycles rowclone_trigger_cycles{600};
  /// In-order pipeline: every load behaves as dependent (blocking).
  bool blocking_loads = false;
  /// Write-streaming (non-temporal full-line stores): kStoreStream skips
  /// the read-for-ownership and posts the line straight to memory.
  bool write_streaming = false;
};

/// Cache hierarchy configuration (L1D + unified L2, inclusive).
struct CacheHierConfig {
  CacheConfig l1{32 * 1024, 4, 64};
  CacheConfig l2{512 * 1024, 8, 64};
};

/// Counters produced by one run.
struct RunResult {
  std::int64_t cycles = 0;
  std::int64_t instructions = 0;
  std::int64_t loads = 0;
  std::int64_t stores = 0;
  std::int64_t l1_misses = 0;
  std::int64_t l2_misses = 0;
  std::int64_t mem_reads = 0;
  std::int64_t mem_writes = 0;
  std::int64_t rowclones = 0;
  std::int64_t rowclone_fallbacks = 0;
  std::int64_t flushes = 0;
  /// Cycle counts captured at kMarker records (measurement windows).
  std::vector<std::int64_t> markers;
};

/// Trace-driven core + cache hierarchy timing model. One instance models
/// one run: construct, call run(), read the result.
class Core {
 public:
  Core(const CoreConfig& cfg, const CacheHierConfig& caches);

  RunResult run(TraceSource& trace, MemoryBackend& mem);

  const Cache& l1() const { return l1_; }
  const Cache& l2() const { return l2_; }

 private:
  void advance_for_instructions(std::uint32_t count);
  /// Brings `line` into L1 (and L2), submitting writebacks for dirty
  /// victims; returns true when the line had to come from main memory, and
  /// then `mem_id` holds the backend request id.
  bool allocate_line(std::uint64_t line, MemoryBackend& mem, std::uint64_t& mem_id);
  void evict_from_l2(std::uint64_t line, bool l2_dirty, MemoryBackend& mem);
  void wait_oldest_load(MemoryBackend& mem);
  void reserve_store_slot(MemoryBackend& mem);
  void drain_all(MemoryBackend& mem);

  CoreConfig cfg_;
  Cache l1_;
  Cache l2_;

  std::int64_t cycle_ = 0;
  std::uint32_t width_remainder_ = 0;
  std::deque<std::uint64_t> outstanding_loads_;
  std::deque<std::uint64_t> store_slots_;
  RunResult result_;
};

}  // namespace easydram::cpu
