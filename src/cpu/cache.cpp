#include "cpu/cache.hpp"

#include <bit>

namespace easydram::cpu {

namespace {

bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

}  // namespace

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg) {
  EASYDRAM_EXPECTS(cfg.line_bytes > 0 && is_pow2(cfg.line_bytes));
  EASYDRAM_EXPECTS(cfg.ways > 0);
  EASYDRAM_EXPECTS(cfg.size_bytes % (static_cast<std::uint64_t>(cfg.ways) * cfg.line_bytes) == 0);
  num_sets_ = cfg.size_bytes / (static_cast<std::uint64_t>(cfg.ways) * cfg.line_bytes);
  EASYDRAM_EXPECTS(num_sets_ > 0 && is_pow2(num_sets_));
  // Both divisors are powers of two; shifts keep the per-access cost to a
  // couple of ALU ops (this is the hottest function in both simulators).
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(cfg.line_bytes));
  sets_shift_ = static_cast<std::uint32_t>(
      std::countr_zero(static_cast<std::uint64_t>(num_sets_)));
  ways_.assign(num_sets_ * cfg.ways, Way{});
}

std::size_t Cache::set_of(std::uint64_t line) const {
  return static_cast<std::size_t>((line >> line_shift_) & (num_sets_ - 1));
}

std::uint64_t Cache::tag_of(std::uint64_t line) const {
  return line >> (line_shift_ + sets_shift_);
}

std::uint64_t Cache::line_of(std::size_t set, std::uint64_t tag) const {
  return ((tag << sets_shift_) + set) << line_shift_;
}

bool Cache::access(std::uint64_t line) {
  EASYDRAM_EXPECTS(line % cfg_.line_bytes == 0);
  const std::size_t set = set_of(line);
  const std::uint64_t tag = tag_of(line);
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    Way& way = ways_[set * cfg_.ways + w];
    if (way.valid && way.tag == tag) {
      way.lru = ++lru_clock_;
      ++hits_;
      return true;
    }
  }
  ++misses_;
  return false;
}

bool Cache::probe(std::uint64_t line) const {
  EASYDRAM_EXPECTS(line % cfg_.line_bytes == 0);
  const std::size_t set = set_of(line);
  const std::uint64_t tag = tag_of(line);
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    const Way& way = ways_[set * cfg_.ways + w];
    if (way.valid && way.tag == tag) return true;
  }
  return false;
}

FillResult Cache::fill(std::uint64_t line) {
  EASYDRAM_EXPECTS(line % cfg_.line_bytes == 0);
  const std::size_t set = set_of(line);
  const std::uint64_t tag = tag_of(line);

  Way* victim = nullptr;
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    Way& way = ways_[set * cfg_.ways + w];
    if (way.valid && way.tag == tag) {
      // Already present (e.g. racing fills); just refresh LRU.
      way.lru = ++lru_clock_;
      return FillResult{};
    }
    if (!way.valid) {
      victim = &way;
    }
  }
  FillResult result;
  if (victim == nullptr) {
    victim = &ways_[set * cfg_.ways];
    for (std::uint32_t w = 1; w < cfg_.ways; ++w) {
      Way& way = ways_[set * cfg_.ways + w];
      if (way.lru < victim->lru) victim = &way;
    }
    result.evicted = true;
    result.evicted_dirty = victim->dirty;
    result.evicted_line = line_of(set, victim->tag);
  }
  victim->valid = true;
  victim->dirty = false;
  victim->tag = tag;
  victim->lru = ++lru_clock_;
  return result;
}

void Cache::mark_dirty(std::uint64_t line) {
  EASYDRAM_EXPECTS(line % cfg_.line_bytes == 0);
  const std::size_t set = set_of(line);
  const std::uint64_t tag = tag_of(line);
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    Way& way = ways_[set * cfg_.ways + w];
    if (way.valid && way.tag == tag) {
      way.dirty = true;
      return;
    }
  }
  EASYDRAM_EXPECTS(!"mark_dirty on a line that is not present");
}

Cache::FlushResult Cache::flush(std::uint64_t line) {
  EASYDRAM_EXPECTS(line % cfg_.line_bytes == 0);
  const std::size_t set = set_of(line);
  const std::uint64_t tag = tag_of(line);
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    Way& way = ways_[set * cfg_.ways + w];
    if (way.valid && way.tag == tag) {
      FlushResult r{true, way.dirty};
      way.valid = false;
      way.dirty = false;
      return r;
    }
  }
  return FlushResult{};
}

}  // namespace easydram::cpu
