#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/contracts.hpp"

namespace easydram::cpu {

/// Geometry of one cache level.
struct CacheConfig {
  std::uint64_t size_bytes = 32 * 1024;
  std::uint32_t ways = 4;
  std::uint32_t line_bytes = 64;
};

/// Outcome of allocating a line.
struct FillResult {
  bool evicted = false;
  bool evicted_dirty = false;
  std::uint64_t evicted_line = 0;  ///< Line base address.
};

/// A set-associative, write-back, write-allocate cache with LRU
/// replacement. Tracks tags and dirty bits only — the timing models in
/// this repository never need cached data contents.
class Cache {
 public:
  explicit Cache(const CacheConfig& cfg);

  const CacheConfig& config() const { return cfg_; }

  /// Hit check + LRU update. `line` must be line-aligned.
  bool access(std::uint64_t line);

  /// Hit check without LRU side effects.
  bool probe(std::uint64_t line) const;

  /// Allocates `line`, evicting the set's LRU entry if the set is full.
  FillResult fill(std::uint64_t line);

  /// Marks a present line dirty; precondition: the line is present.
  void mark_dirty(std::uint64_t line);

  /// Invalidates `line` if present; reports whether it was present/dirty.
  struct FlushResult {
    bool was_present = false;
    bool was_dirty = false;
  };
  FlushResult flush(std::uint64_t line);

  std::int64_t hits() const { return hits_; }
  std::int64_t misses() const { return misses_; }
  void reset_stats() { hits_ = misses_ = 0; }

 private:
  struct Way {
    std::uint64_t tag = 0;
    bool valid = false;
    bool dirty = false;
    std::uint64_t lru = 0;
  };

  std::size_t set_of(std::uint64_t line) const;
  std::uint64_t tag_of(std::uint64_t line) const;
  std::uint64_t line_of(std::size_t set, std::uint64_t tag) const;

  CacheConfig cfg_;
  std::size_t num_sets_;
  std::uint32_t line_shift_ = 0;  ///< log2(line_bytes).
  std::uint32_t sets_shift_ = 0;  ///< log2(num_sets_).
  std::vector<Way> ways_;  ///< num_sets_ x cfg_.ways, row-major.
  std::uint64_t lru_clock_ = 0;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

}  // namespace easydram::cpu
