#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/units.hpp"

namespace easydram::cpu {

/// Operations in a core execution trace.
enum class Op : std::uint8_t {
  kLoad,           ///< Load whose value feeds no address (overlappable).
  kLoadDependent,  ///< Load on the critical path (e.g. pointer chase).
  kStore,
  /// Full-cache-line store in a detected streaming pattern (memset/memcpy
  /// destinations). Cores with write-streaming support (e.g. Cortex A57)
  /// skip the read-for-ownership and post the line directly; others treat
  /// it as a plain store.
  kStoreStream,
  kFlush,     ///< Cache-line flush via the memory-mapped register (§7.1).
  kRowClone,  ///< Trigger an in-DRAM copy of addr -> addr2.
  kProfile,   ///< Issue a tRCD profiling request for addr.
  kDrain,     ///< Memory barrier: wait for all outstanding requests.
  kMarker,    ///< Snapshot the cycle counter into RunResult::markers.
};

/// One trace record: `gap_instructions` non-memory instructions execute
/// before the operation itself.
struct TraceRecord {
  Op op = Op::kLoad;
  std::uint32_t gap_instructions = 0;
  std::uint64_t addr = 0;
  std::uint64_t addr2 = 0;           ///< kRowClone destination.
  Picoseconds profile_trcd{};        ///< kProfile only.
  /// Traffic-stream identity for multi-tenant traces. The core forwards it
  /// to the memory backend so every memory request it causes (including
  /// cache writebacks, attributed to the evicting stream) carries it.
  std::uint32_t stream = 0;
};

/// Pull-based trace generator. `last_rowclone_ok` feeds back the outcome of
/// the most recent kRowClone so generators can emit CPU-fallback accesses,
/// exactly as the paper's software falls back to load/store copies.
class TraceSource {
 public:
  virtual ~TraceSource() = default;
  virtual bool next(TraceRecord& out, bool last_rowclone_ok) = 0;
};

/// A trace replayed from a pre-recorded vector (ignores feedback).
class VectorTrace final : public TraceSource {
 public:
  explicit VectorTrace(std::vector<TraceRecord> records)
      : records_(std::move(records)) {}

  bool next(TraceRecord& out, bool /*last_rowclone_ok*/) override {
    if (cursor_ >= records_.size()) return false;
    out = records_[cursor_++];
    return true;
  }

  void rewind() { cursor_ = 0; }
  std::size_t size() const { return records_.size(); }

 private:
  std::vector<TraceRecord> records_;
  std::size_t cursor_ = 0;
};

/// A trace replayed from a caller-owned span (ignores feedback). Use this
/// to run several simulators over one generated workload: the multi-
/// million-record kernels are expensive to copy, and the span borrows them
/// instead. The underlying storage must outlive the source.
class SpanTrace final : public TraceSource {
 public:
  explicit SpanTrace(std::span<const TraceRecord> records)
      : records_(records) {}

  bool next(TraceRecord& out, bool /*last_rowclone_ok*/) override {
    if (cursor_ >= records_.size()) return false;
    out = records_[cursor_++];
    return true;
  }

  void rewind() { cursor_ = 0; }
  std::size_t size() const { return records_.size(); }

 private:
  std::span<const TraceRecord> records_;
  std::size_t cursor_ = 0;
};

}  // namespace easydram::cpu
