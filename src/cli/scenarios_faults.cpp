// End-to-end error-pipeline scenarios: deterministic fault injection
// (dram/faults.hpp) driven through SEC-DED demand decoding, bounded
// re-read retries, patrol scrubbing, and PPR-style row retirement
// (smc/ecc.hpp). Each scenario reads back every line it planted faults
// under and checks the pipeline's ground-truth escape counter — a read
// acknowledged ok with wrong data — stays zero: errors are corrected,
// retried, retired, or failed with a typed error, never silently eaten.
// Fifth technique family of this repository (after RowClone,
// reduced-tRCD, the RowHammer mitigators, and retention-aware refresh),
// and the first that composes with all of them.

#include <algorithm>
#include <array>
#include <cstring>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "cli/measure.hpp"
#include "cli/scenario.hpp"
#include "cli/thread_pool.hpp"
#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "workloads/hammer.hpp"

namespace easydram::cli {
namespace {

using smc::mitigation::MitigationKind;

/// Emulated-processor cycles per refresh slot: how far `now` must advance
/// between submits for the pacing machinery to owe one more REF.
std::int64_t cycles_per_slot(const sys::SystemConfig& cfg) {
  return cfg.proc_domain.emulated_clock.ps_to_cycles_ceil(cfg.timing.tREFI);
}

/// The deterministic payload submit_write fabricates for `paddr` (same
/// derivation as EasyDramSystem::submit_write): scenarios replicate it to
/// aim planned stuck-at bits at cells whose stored value is known.
std::array<std::uint8_t, 64> demand_write_payload(std::uint64_t paddr) {
  std::array<std::uint8_t, 64> data{};
  SplitMix64 sm(paddr ^ 0xD47A);
  for (std::size_t w = 0; w < data.size(); w += 8) {
    const std::uint64_t v = sm.next();
    std::memcpy(data.data() + w, &v, 8);
  }
  return data;
}

/// (byte_in_line, bit) positions of word `word_idx` whose stored bit is 1:
/// forcing any of them to 0 guarantees every read differs from the data
/// the check bits protect (a stuck bit that matches the stored value would
/// never manifest).
std::vector<std::pair<std::uint32_t, std::uint32_t>> set_bits_of_word(
    const std::array<std::uint8_t, 64>& data, std::uint32_t word_idx) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
  for (std::uint32_t b = 0; b < 8; ++b) {
    const std::uint32_t byte = word_idx * 8 + b;
    for (std::uint32_t bit = 0; bit < 8; ++bit) {
      if ((data[byte] >> bit) & 1u) out.emplace_back(byte, bit);
    }
  }
  return out;
}

/// Error-pipeline accounting of one measured run.
struct PipelineOutcome {
  std::int64_t corrected = 0;
  std::int64_t uncorrectable = 0;
  std::int64_t scrub_reads = 0;
  std::int64_t retries = 0;
  std::int64_t retired = 0;
  std::int64_t escaped = 0;
  std::int64_t manifested = 0;      ///< Sticky flips the device manifested.
  std::int64_t faulty_served = 0;   ///< Reads the device altered (ground truth).
  std::int64_t reads = 0;           ///< Demand reads the scenario issued.
  std::int64_t failed_reads = 0;    ///< Typed kUncorrectable completions.
  std::int64_t unreliable_ok = 0;   ///< ok completions flagged data_reliable=false.
  double wall_us = 0;
};

void fill_stats(PipelineOutcome& o, sys::EasyDramSystem& sysm) {
  const smc::ApiStats s = sysm.smc_stats();
  o.corrected = s.ecc_corrected;
  o.uncorrectable = s.ecc_uncorrectable;
  o.scrub_reads = s.scrub_reads;
  o.retries = s.retries_issued;
  o.retired = s.rows_retired;
  o.escaped = s.ecc_escaped;
  for (std::uint32_t ch = 0; ch < sysm.num_channels(); ++ch) {
    if (const dram::FaultModel* fm = sysm.device(ch).fault_model()) {
      o.manifested += fm->faults_manifested();
      o.faulty_served += fm->faulty_reads_served();
    }
  }
  o.wall_us = sysm.wall().microseconds();
}

Json outcome_json(const PipelineOutcome& o) {
  Json j = Json::object();
  j["ecc_corrected"] = o.corrected;
  j["ecc_uncorrectable"] = o.uncorrectable;
  j["scrub_reads"] = o.scrub_reads;
  j["retries_issued"] = o.retries;
  j["rows_retired"] = o.retired;
  j["ecc_escaped"] = o.escaped;
  j["faults_manifested"] = o.manifested;
  j["faulty_reads_served"] = o.faulty_served;
  j["demand_reads"] = o.reads;
  j["failed_reads"] = o.failed_reads;
  j["unreliable_ok_reads"] = o.unreliable_ok;
  j["wall_us"] = o.wall_us;
  return j;
}

// --- fault_sweep ----------------------------------------------------------

/// Random-transient rates swept (per-read upset probability). Rate 0 keeps
/// only the planned faults, whose outcome is exactly predictable: the
/// single stuck bit is a CE on every read until the CE threshold retires
/// its row; the double stuck bit is a hard UE (typed error, immediate
/// retirement — the spare is fault-free, so later passes read clean); the
/// scheduled double-bit transient recovers on the first bounded retry.
constexpr double kFaultRates[] = {0.0, 0.02, 0.1, 0.3};
constexpr std::uint32_t kSweepLines = 40;
constexpr int kSweepPasses = 5;  ///< > ce_retire_threshold: the CE row retires.
constexpr std::uint32_t kSweepBank = 2;
constexpr std::uint32_t kSweepBaseRow = 64;
constexpr std::uint32_t kSweepCol = 3;
constexpr std::uint32_t kStuckSingleLine = 5;
constexpr std::uint32_t kStuckDoubleLine = 9;
constexpr std::uint32_t kTransientLine = 2;

sys::SystemConfig fault_sweep_config(std::uint64_t seed, double rate) {
  sys::SystemConfig cfg = sys::jetson_nano_time_scaling();
  cfg.variation.seed = seed;
  cfg.ecc.enabled = true;
  cfg.faults.enabled = true;
  cfg.faults.seed = hash_mix(seed, 0xFA017u);
  cfg.faults.transient_read_rate = rate;

  const auto mapper = smc::make_mapper(cfg.mapping, cfg.geometry);
  const std::uint32_t fbank = cfg.geometry.flat_bank(0, kSweepBank);
  {
    // One stuck bit -> a CE on every read (predictive retirement fodder).
    const dram::DramAddress a{kSweepBank, kSweepBaseRow + kStuckSingleLine,
                              kSweepCol};
    const auto bits = set_bits_of_word(demand_write_payload(mapper->to_physical(a)), 1);
    EASYDRAM_EXPECTS(!bits.empty());
    cfg.faults.plan.stuck.push_back(
        {fbank, a.row, a.col, bits[0].first, bits[0].second, 0});
  }
  {
    // Two stuck bits in one 64-bit word -> a hard (detected) UE.
    const dram::DramAddress a{kSweepBank, kSweepBaseRow + kStuckDoubleLine,
                              kSweepCol};
    const auto bits = set_bits_of_word(demand_write_payload(mapper->to_physical(a)), 2);
    EASYDRAM_EXPECTS(bits.size() >= 2);
    cfg.faults.plan.stuck.push_back(
        {fbank, a.row, a.col, bits[0].first, bits[0].second, 0});
    cfg.faults.plan.stuck.push_back(
        {fbank, a.row, a.col, bits[1].first, bits[1].second, 0});
  }
  {
    // Scheduled double-bit transient on the first read of its line: decodes
    // as a UE, then the bounded re-read observes clean data — the
    // transient/hard distinction the retry policy exists for.
    const dram::DramAddress a{kSweepBank, kSweepBaseRow + kTransientLine,
                              kSweepCol};
    cfg.faults.plan.transient.push_back({Picoseconds{0}, fbank, a.row, a.col,
                                         /*byte_in_line=*/28, /*xor_mask=*/0x3});
  }
  return cfg;
}

PipelineOutcome run_fault_sweep_cell(const sys::SystemConfig& cfg) {
  sys::EasyDramSystem sysm(cfg);
  const smc::AddressMapper& mapper = sysm.mapper();
  auto paddr_of = [&](std::uint32_t j) {
    return mapper.to_physical(
        dram::DramAddress{kSweepBank, kSweepBaseRow + j, kSweepCol});
  };

  PipelineOutcome o;
  std::int64_t now = 100;
  for (std::uint32_t j = 0; j < kSweepLines; ++j) {
    now += 200;
    sysm.wait(sysm.submit_write(paddr_of(j), now));
  }
  for (int pass = 0; pass < kSweepPasses; ++pass) {
    for (std::uint32_t j = 0; j < kSweepLines; ++j) {
      now += 400;
      const cpu::Completion c = sysm.wait(sysm.submit_read(paddr_of(j), now));
      ++o.reads;
      if (!c.ok) ++o.failed_reads;
      if (c.ok && !c.data_reliable) ++o.unreliable_ok;
    }
  }
  fill_stats(o, sysm);
  return o;
}

Json run_fault_sweep(const RunOptions& opts) {
  ThreadPool pool(opts.threads);
  const std::size_t n = std::size(kFaultRates);
  const auto all = parallel_map(
      pool, static_cast<std::size_t>(opts.iters) * n, [&](std::size_t task) {
        const auto rep = static_cast<int>(task / n);
        return run_fault_sweep_cell(
            fault_sweep_config(rep_seed(opts, rep), kFaultRates[task % n]));
      });

  TextTable t;
  t.set_header({"Rate", "CE", "UE", "retries", "retired", "failed reads",
                "escaped"});
  Json rows = Json::array();
  for (std::size_t i = 0; i < n; ++i) {
    const PipelineOutcome& o = all[i];  // Repetition 0 details.
    t.add_row({fmt_fixed(kFaultRates[i], 2), std::to_string(o.corrected),
               std::to_string(o.uncorrectable), std::to_string(o.retries),
               std::to_string(o.retired), std::to_string(o.failed_reads),
               std::to_string(o.escaped)});
    Json j = outcome_json(o);
    j["transient_read_rate"] = kFaultRates[i];
    rows.push_back(std::move(j));
  }

  // Headlines over every repetition and rate: no silent wrong answers, and
  // the planned-fault dynamics at rate 0 land exactly as designed.
  bool zero_escaped = true;
  bool planned_faults_handled = true;
  std::vector<double> escaped_per_rep;
  for (int rep = 0; rep < opts.iters; ++rep) {
    const std::size_t base = static_cast<std::size_t>(rep) * n;
    std::int64_t escapes = 0;
    for (std::size_t i = 0; i < n; ++i) escapes += all[base + i].escaped;
    zero_escaped = zero_escaped && escapes == 0;
    escaped_per_rep.push_back(static_cast<double>(escapes));
    const PipelineOutcome& clean = all[base];  // rate 0: planned faults only.
    planned_faults_handled = planned_faults_handled &&
                             clean.corrected == 4 && clean.uncorrectable == 1 &&
                             clean.retries == 3 && clean.retired == 2 &&
                             clean.failed_reads == 1;
  }

  if (opts.verbose) {
    t.print(std::cout);
    std::cout << "\nEvery read lands on a written (ECC-protected) line: faults\n"
                 "are corrected (CE), recovered by a bounded re-read (planned\n"
                 "transient), or detected and failed with a typed error after\n"
                 "retirement (double stuck bit). 'escaped' counts ok-acked\n"
                 "reads whose data mismatched the stored cells - it must be 0\n"
                 "at every rate.\n";
  }

  Json out = Json::object();
  out["rates"] = std::move(rows);
  out["read_passes"] = kSweepPasses;
  out["lines"] = static_cast<std::int64_t>(kSweepLines);
  out["zero_escaped_all_rates"] = zero_escaped;
  out["planned_faults_handled_exactly"] = planned_faults_handled;
  out["escaped_per_rep"] = rep_metric_json(escaped_per_rep);
  return out;
}

// --- ecc_vs_hammer --------------------------------------------------------

constexpr MitigationKind kHammerMitKinds[] = {MitigationKind::kNone,
                                              MitigationKind::kGraphene};
/// Victim disturbance count at which the fault model flips cells. The
/// unmitigated double-sided kernel exposes the middle victim 2x rounds and
/// the outer victims 1x rounds — both beyond the threshold — while
/// Graphene's targeted refreshes (threshold 128) reset the ground-truth
/// counters two decades earlier, so no victim ever accumulates 1024.
constexpr std::int64_t kHammerFlipThreshold = 1024;

sys::SystemConfig ecc_vs_hammer_config(std::uint64_t seed, MitigationKind mk) {
  sys::SystemConfig cfg = sys::jetson_nano_time_scaling();
  cfg.variation.seed = seed;
  cfg.track_row_hammer = true;
  cfg.mitigation.kind = mk;
  // Same stream seeding as the rowhammer scenarios: mixed so it never
  // aliases the chip's variation stream.
  cfg.mitigation.seed = hash_mix(seed, 0x4A77E12u);
  cfg.ecc.enabled = true;
  cfg.ecc.scrub = true;
  cfg.faults.enabled = true;
  cfg.faults.seed = hash_mix(seed, 0xFA017u);
  cfg.faults.hammer_flip_threshold = kHammerFlipThreshold;
  cfg.faults.hammer_flip_cells = 4;
  return cfg;
}

PipelineOutcome run_ecc_vs_hammer_cell(const sys::SystemConfig& cfg,
                                       const workloads::HammerParams& hp) {
  sys::EasyDramSystem sysm(cfg);
  const smc::AddressMapper& mapper = sysm.mapper();
  const std::vector<std::uint32_t> victims =
      workloads::hammer_victim_rows(hp, cfg.geometry);

  // Setup phase: protect every line of every victim row (flips land on
  // fault-model-chosen columns, so coverage must be full-row). Backdoor
  // writes plus explicit check-bit stores — the uncharged setup idiom.
  smc::ErrorPolicy* ep = sysm.error_policy(0);
  EASYDRAM_EXPECTS(ep != nullptr);
  const std::uint32_t fbank = cfg.geometry.flat_bank(hp.rank, hp.bank);
  for (const std::uint32_t row : victims) {
    for (std::uint32_t col = 0; col < cfg.geometry.cols_per_row(); ++col) {
      const dram::DramAddress a{hp.bank, row, col, hp.channel, hp.rank};
      const auto data = demand_write_payload(mapper.to_physical(a));
      sysm.device(0).backdoor_write(a, data);
      ep->note_write(fbank, row, col, data);
    }
  }

  // The attack, then a full read-back of every victim line.
  std::vector<cpu::TraceRecord> records = workloads::make_hammer_trace(hp, mapper);
  const cpu::RunResult res = [&] {
    cpu::VectorTrace trace(std::move(records));
    return sysm.run(trace);
  }();

  PipelineOutcome o;
  std::int64_t now = res.cycles + 1000;
  for (const std::uint32_t row : victims) {
    for (std::uint32_t col = 0; col < cfg.geometry.cols_per_row(); ++col) {
      const dram::DramAddress a{hp.bank, row, col, hp.channel, hp.rank};
      now += 400;
      const cpu::Completion c =
          sysm.wait(sysm.submit_read(mapper.to_physical(a), now));
      ++o.reads;
      if (!c.ok) ++o.failed_reads;
      if (c.ok && !c.data_reliable) ++o.unreliable_ok;
    }
  }
  fill_stats(o, sysm);
  return o;
}

Json run_ecc_vs_hammer(const RunOptions& opts) {
  workloads::HammerParams hp;
  hp.pattern = workloads::HammerPattern::kDoubleSided;

  ThreadPool pool(opts.threads);
  const std::size_t n = std::size(kHammerMitKinds);
  const auto all = parallel_map(
      pool, static_cast<std::size_t>(opts.iters) * n, [&](std::size_t task) {
        const auto rep = static_cast<int>(task / n);
        return run_ecc_vs_hammer_cell(
            ecc_vs_hammer_config(rep_seed(opts, rep), kHammerMitKinds[task % n]),
            hp);
      });

  TextTable t;
  t.set_header({"Mitigation", "flips manifested", "CE", "UE", "retired",
                "failed reads", "escaped"});
  Json rows = Json::array();
  for (std::size_t i = 0; i < n; ++i) {
    const PipelineOutcome& o = all[i];  // Repetition 0 details.
    t.add_row({std::string(smc::mitigation::to_string(kHammerMitKinds[i])),
               std::to_string(o.manifested), std::to_string(o.corrected),
               std::to_string(o.uncorrectable), std::to_string(o.retired),
               std::to_string(o.failed_reads), std::to_string(o.escaped)});
    Json j = outcome_json(o);
    j["mitigation"] = smc::mitigation::to_string(kHammerMitKinds[i]);
    rows.push_back(std::move(j));
  }

  bool zero_escaped = true;
  bool unmitigated_flips = true;   // The attack actually flips bits...
  bool graphene_prevents = true;   // ...and Graphene prevents all of them.
  std::vector<double> unmitigated_manifested_per_rep;
  for (int rep = 0; rep < opts.iters; ++rep) {
    const std::size_t base = static_cast<std::size_t>(rep) * n;
    zero_escaped =
        zero_escaped && all[base].escaped == 0 && all[base + 1].escaped == 0;
    unmitigated_flips = unmitigated_flips && all[base].manifested > 0;
    graphene_prevents = graphene_prevents && all[base + 1].manifested == 0;
    unmitigated_manifested_per_rep.push_back(
        static_cast<double>(all[base].manifested));
  }

  if (opts.verbose) {
    t.print(std::cout);
    std::cout << "\nUnmitigated, the double-sided kernel pushes every victim\n"
                 "past the flip threshold: ECC corrects the single-bit flips,\n"
                 "retires rows, and fails double-bit lines with typed errors\n"
                 "- never a silent wrong answer. Graphene resets the\n"
                 "ground-truth victim counters long before the threshold, so\n"
                 "no flip ever manifests: mitigation and ECC compose.\n";
  }

  Json out = Json::object();
  out["hammer_rounds"] = hp.rounds;
  out["flip_threshold"] = kHammerFlipThreshold;
  out["cells"] = std::move(rows);
  out["zero_escaped_all_cells"] = zero_escaped;
  out["unmitigated_attack_flips_bits"] = unmitigated_flips;
  out["graphene_prevents_all_flips"] = graphene_prevents;
  out["unmitigated_flips_per_rep"] =
      rep_metric_json(unmitigated_manifested_per_rep);
  return out;
}

// --- scrub_raidr ----------------------------------------------------------

constexpr std::uint32_t kScrubRows = 512;   ///< Written rows (8 per stripe).
constexpr std::uint32_t kScrubRowStride = 64;
constexpr int kScrubPasses = 5;
constexpr std::int64_t kScrubRoundsPerPass = 2;

/// The raidr_misbinning time-compressed chamber (64-slot refresh rounds,
/// retention rescaled to match) with the weakness probabilities raised so
/// the 512 written rows contain several weak rows, and the profiler
/// sampling stride at its sparsest: RAIDR overbins the stripes whose weak
/// rows it never sampled and stops refreshing them often enough. With
/// retention flips on, the decayed cells actually corrupt — the scrub-off
/// cell shows demand reads eating CEs and typed UE failures; the scrub-on
/// cell catches the decay during the (skipped) refresh slots' patrol
/// window, writes back corrected data, and retires uncorrectable rows
/// before demand traffic ever sees them.
sys::SystemConfig scrub_raidr_config(std::uint64_t seed, bool scrub) {
  using namespace easydram::literals;
  sys::SystemConfig cfg = sys::jetson_nano_time_scaling();
  cfg.variation.seed = seed;
  cfg.refresh = smc::RefreshKind::kRaidr;
  cfg.geometry.refresh_window_refs = 64;  // Round = 64 x tREFI ~ 499 us.
  cfg.variation.retention_base = 560_us;
  cfg.variation.retention_p_weakest = 6e-3;
  cfg.variation.retention_p_weak = 1.2e-2;
  cfg.track_retention = true;
  cfg.retention_profiler.sample_stride = 256;
  cfg.faults.enabled = true;
  cfg.faults.seed = hash_mix(seed, 0xFA017u);
  cfg.faults.retention_flips = true;
  cfg.ecc.enabled = true;
  cfg.ecc.scrub = scrub;
  cfg.ecc.scrub_lines_per_slot = 4;
  return cfg;
}

PipelineOutcome run_scrub_raidr_cell(const sys::SystemConfig& cfg) {
  sys::EasyDramSystem sysm(cfg);
  const smc::AddressMapper& mapper = sysm.mapper();
  auto paddr_of = [&](std::uint32_t i) {
    return mapper.to_physical(dram::DramAddress{0, i * kScrubRowStride, 0});
  };

  PipelineOutcome o;
  std::int64_t now = 100;
  for (std::uint32_t i = 0; i < kScrubRows; ++i) {
    now += 100;
    sysm.wait(sysm.submit_write(paddr_of(i), now));
  }
  // Each pass first idles across whole refresh rounds of emulated time —
  // skipped stripes outlive their weak rows' retention — then reads every
  // written line back.
  const std::int64_t pass_gap =
      kScrubRoundsPerPass * cfg.geometry.refresh_window_refs *
      cycles_per_slot(cfg);
  for (int pass = 0; pass < kScrubPasses; ++pass) {
    now += pass_gap;
    for (std::uint32_t i = 0; i < kScrubRows; ++i) {
      now += 50;
      const cpu::Completion c = sysm.wait(sysm.submit_read(paddr_of(i), now));
      ++o.reads;
      if (!c.ok) ++o.failed_reads;
      if (c.ok && !c.data_reliable) ++o.unreliable_ok;
    }
  }
  fill_stats(o, sysm);
  return o;
}

Json run_scrub_raidr(const RunOptions& opts) {
  ThreadPool pool(opts.threads);
  const std::size_t n = 2;  // scrub off, scrub on.
  const auto all = parallel_map(
      pool, static_cast<std::size_t>(opts.iters) * n, [&](std::size_t task) {
        const auto rep = static_cast<int>(task / n);
        return run_scrub_raidr_cell(
            scrub_raidr_config(rep_seed(opts, rep), task % n == 1));
      });

  TextTable t;
  t.set_header({"Scrub", "scrub reads", "CE", "UE", "retired", "failed reads",
                "escaped"});
  Json rows = Json::array();
  for (std::size_t i = 0; i < n; ++i) {
    const PipelineOutcome& o = all[i];  // Repetition 0 details.
    t.add_row({i == 0 ? "off" : "on", std::to_string(o.scrub_reads),
               std::to_string(o.corrected), std::to_string(o.uncorrectable),
               std::to_string(o.retired), std::to_string(o.failed_reads),
               std::to_string(o.escaped)});
    Json j = outcome_json(o);
    j["scrub"] = i == 1;
    rows.push_back(std::move(j));
  }

  bool zero_escaped = true;
  bool decay_observed = true;       // The chamber actually corrupts cells...
  bool scrub_shields_demand = true; // ...and scrubbing absorbs the damage.
  std::vector<double> demand_failures_avoided_per_rep;
  for (int rep = 0; rep < opts.iters; ++rep) {
    const std::size_t base = static_cast<std::size_t>(rep) * n;
    const PipelineOutcome& off = all[base];
    const PipelineOutcome& on = all[base + 1];
    zero_escaped = zero_escaped && off.escaped == 0 && on.escaped == 0;
    decay_observed = decay_observed && off.manifested > 0;
    scrub_shields_demand = scrub_shields_demand && on.scrub_reads > 0 &&
                           on.failed_reads <= off.failed_reads;
    demand_failures_avoided_per_rep.push_back(
        static_cast<double>(off.failed_reads - on.failed_reads));
  }

  if (opts.verbose) {
    t.print(std::cout);
    std::cout << "\nSparse profiling overbins stripes holding unsampled weak\n"
                 "rows; RAIDR then under-refreshes them and their cells decay\n"
                 "(sticky flips). Without scrubbing, demand reads absorb the\n"
                 "CEs and typed UE failures; the patrol scrubber - riding the\n"
                 "very refresh slots RAIDR skips - corrects and write-backs\n"
                 "decayed lines (and retires dead rows) before demand traffic\n"
                 "reaches them. Escapes must be zero either way.\n";
  }

  Json out = Json::object();
  out["window_refs"] = 64;
  out["rows_written"] = static_cast<std::int64_t>(kScrubRows);
  out["read_passes"] = kScrubPasses;
  out["cells"] = std::move(rows);
  out["zero_escaped_all_cells"] = zero_escaped;
  out["decay_observed_without_scrub"] = decay_observed;
  out["scrub_never_increases_demand_failures"] = scrub_shields_demand;
  out["demand_failures_avoided_per_rep"] =
      rep_metric_json(demand_failures_avoided_per_rep);
  return out;
}

}  // namespace

void register_faults_scenarios(ScenarioRegistry& r) {
  r.add({"fault_sweep",
         "Deterministic fault injection vs the full error pipeline",
         "EasyDRAM (DSN 2025), extension beyond §7-§8", &run_fault_sweep});
  r.add({"ecc_vs_hammer",
         "Hammer-induced bitflips under ECC, retirement, and Graphene",
         "EasyDRAM (DSN 2025), extension beyond §7-§8", &run_ecc_vs_hammer});
  r.add({"scrub_raidr",
         "Patrol scrub catching RAIDR-misbinned decay (time-compressed)",
         "EasyDRAM (DSN 2025), extension beyond §7-§8; RAIDR (ISCA 2012)",
         &run_scrub_raidr});
}

}  // namespace easydram::cli
