#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "cli/json.hpp"
#include "smc/addr_map.hpp"
#include "smc/scheduler.hpp"

namespace easydram::cli {

/// Options shared by every experiment scenario. Defaults reproduce the
/// paper-shape outputs of the original standalone benches: seed matches the
/// dram::VariationConfig default, one repetition, sequential execution, and
/// the paper's 1-channel/1-rank row-linear memory system.
struct RunOptions {
  std::uint64_t seed = 0x5AFA2125ULL;
  int iters = 1;    ///< Independent repetitions aggregated into the summary.
  int threads = 1;  ///< Host thread budget (sweep tasks + channel pump).
  /// Forced per-system channel-pump worker count (--pump-workers). 0 = split
  /// the --threads budget automatically (see split_thread_budget); either
  /// way results are bit-identical — the pump engine reproduces the serial
  /// schedule exactly at any worker count.
  unsigned pump_workers = 0;
  bool verbose = true;  ///< Print the human-readable tables to stdout.

  /// Memory-system shape (--channels/--ranks/--mapping). The paper
  /// figure/table scenarios always run the 1x1 defaults they were validated
  /// against; the memory-system scenarios (channel_scaling,
  /// rank_interleaving) honor these as sweep upper bounds / extra points.
  std::uint32_t channels = 1;
  std::uint32_t ranks = 1;
  smc::MappingKind mapping = smc::MappingKind::kLinear;

  /// Forced scheduling policy (--sched). Unset by default: scenarios keep
  /// their validated per-experiment policies and the envelope omits the
  /// key, so every pre-existing golden output is unchanged. When set, the
  /// qos_* scenarios restrict their policy sweeps to this policy and other
  /// scenarios that build stock systems honor it via SystemConfig::sched.
  std::optional<smc::SchedulerKind> sched;
};

/// Deterministic per-repetition seed stream. Repetition 0 keeps the
/// caller's seed so `--iters 1` (the default) reproduces the single-run
/// output; later repetitions draw statistically independent streams.
std::uint64_t rep_seed(const RunOptions& opts, int rep);

/// Aggregate of one headline metric across the run's repetitions: the
/// per-rep values plus mean/stddev/p50/p95. Every scenario folds at least
/// one such aggregate into its payload, so `--iters N` always contributes
/// to the JSON (per-sweep detail rows still describe repetition 0).
Json rep_metric_json(std::span<const double> per_rep);

/// One registered experiment: a figure/table reproducer or an ablation.
/// `run` executes the sweep under the given options and returns the
/// machine-readable result payload (it may also print tables when
/// opts.verbose). Scenarios are pure functions of RunOptions: a fixed
/// (seed, iters) pair yields an identical payload at any --threads value,
/// except where a scenario explicitly measures the host clock (fig14).
struct Scenario {
  std::string_view name;
  std::string_view summary;
  std::string_view paper_ref;
  Json (*run)(const RunOptions& opts);
};

/// Name-keyed registry of every scenario, populated at first use from the
/// per-module registration hooks (explicit calls, not static initializers,
/// so scenarios survive static-library dead stripping).
class ScenarioRegistry {
 public:
  static ScenarioRegistry& instance();

  void add(const Scenario& s);
  const Scenario* find(std::string_view name) const;
  std::span<const Scenario> all() const { return scenarios_; }

 private:
  ScenarioRegistry();

  std::vector<Scenario> scenarios_;  ///< Sorted by name.
};

/// Runs one scenario and wraps its payload in the standard envelope
/// (scenario, paper_ref, seed, iters, threads, results).
Json run_scenario(const Scenario& s, const RunOptions& opts);

/// Shared main() implementation for both the unified `easydram_cli` tool
/// and the thin per-figure bench binaries. `default_names` are the
/// scenarios to run when no `--scenario` flag is given (empty = require
/// one). Flags: --scenario NAME, --list, --seed N, --iters N, --threads N,
/// --out PATH, --quiet, --help.
int scenario_main(std::span<const std::string_view> default_names, int argc,
                  char** argv);
int scenario_main(std::string_view default_name, int argc, char** argv);

}  // namespace easydram::cli
