#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace easydram::cli {

/// Fixed-size worker pool for the experiment runner. Tasks are plain
/// void() callables; completion is observed through wait(). Simulator state
/// is never shared between tasks — each parallel_map task constructs its own
/// EasyDramSystem — so the pool needs no result plumbing of its own.
class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Runs fn(0) .. fn(n-1) across the pool and returns the results in index
/// order regardless of completion order, which is what keeps threaded
/// experiment sweeps deterministic. The first task exception (by index) is
/// rethrown in the caller after all tasks finish.
template <typename Fn>
auto parallel_map(ThreadPool& pool, std::size_t n, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  std::vector<R> results(n);
  std::vector<std::exception_ptr> errors(n);
  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([&results, &errors, &fn, i] {
      try {
        results[i] = fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  pool.wait();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return results;
}

}  // namespace easydram::cli
