// Memory-system scaling scenarios: throughput of the multi-channel /
// multi-rank subsystem under each address mapping. These are repository
// extensions beyond the paper's single-channel case study (§7.2); the
// 1-channel/1-rank row in every table is the paper's configuration.

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "cli/measure.hpp"
#include "cli/scenario.hpp"
#include "cli/thread_budget.hpp"
#include "cli/thread_pool.hpp"
#include "common/table.hpp"

namespace easydram::cli {
namespace {

constexpr smc::MappingKind kMappings[] = {
    smc::MappingKind::kLinear,
    smc::MappingKind::kLineInterleaved,
    smc::MappingKind::kChannelInterleaved,
};

/// Requests per microsecond of FPGA wall time for a burst of independent
/// reads driven straight into the memory backend (no core model in the
/// way): the bank/channel-parallel workload the scaling studies need. The
/// stride-64 burst touches consecutive cache lines, so the mapper's bit
/// placement alone decides how much channel/rank/bank parallelism the
/// subsystem can extract.
double read_burst_throughput(const sys::SystemConfig& cfg, int n_requests) {
  sys::EasyDramSystem sysm(cfg);
  std::vector<std::uint64_t> ids;
  ids.reserve(static_cast<std::size_t>(n_requests));
  for (int i = 0; i < n_requests; ++i) {
    ids.push_back(sysm.submit_read(static_cast<std::uint64_t>(i) * 64,
                                   /*now=*/100 + i));
  }
  for (const std::uint64_t id : ids) sysm.wait(id);
  return static_cast<double>(n_requests) / sysm.wall().microseconds();
}

sys::SystemConfig memsys_config(std::uint64_t seed, std::uint32_t channels,
                                std::uint32_t ranks, smc::MappingKind mapping,
                                unsigned pump_workers = 1) {
  sys::SystemConfig cfg = sys::jetson_nano_time_scaling();
  cfg.variation.seed = seed;
  cfg.geometry.channels = channels;
  cfg.geometry.ranks_per_channel = ranks;
  cfg.mapping = mapping;
  cfg.pump_workers = pump_workers;
  return cfg;
}

constexpr int kBurstRequests = 256;

// --- channel_scaling ------------------------------------------------------

/// Aggregate read throughput as the channel count grows, for every mapper.
/// Expected shape: channel-interleaved mapping scales near-linearly with
/// channels (consecutive lines spread across every channel's bus and
/// controller); linear mapping keeps the burst on one channel and cannot
/// scale.
Json run_channel_scaling(const RunOptions& opts) {
  std::vector<std::uint32_t> channel_counts{1, 2, 4};
  if (std::find(channel_counts.begin(), channel_counts.end(), opts.channels) ==
      channel_counts.end()) {
    channel_counts.push_back(opts.channels);
    std::sort(channel_counts.begin(), channel_counts.end());
  }

  const std::size_t n_mappings = std::size(kMappings);
  const std::size_t per_rep = channel_counts.size() * n_mappings;
  const std::size_t n_tasks = static_cast<std::size_t>(opts.iters) * per_rep;
  const ThreadBudget budget = split_thread_budget(
      opts.threads, opts.pump_workers, n_tasks, channel_counts.back());
  ThreadPool pool(budget.sweep_threads);
  const auto all = parallel_map(pool, n_tasks, [&](std::size_t task) {
    const std::size_t rep = task / per_rep;
    const std::size_t which = task % per_rep;
    const std::uint32_t channels = channel_counts[which / n_mappings];
    const smc::MappingKind mapping = kMappings[which % n_mappings];
    return read_burst_throughput(
        memsys_config(rep_seed(opts, static_cast<int>(rep)), channels,
                      opts.ranks, mapping, budget.pump_workers),
        kBurstRequests);
  });

  TextTable t;
  t.set_header({"Channels", "linear (req/us)", "line (req/us)",
                "channel (req/us)", "channel speedup vs 1ch"});
  Json rows = Json::array();
  const double base_channel_tp = all[n_mappings - 1];  // 1 channel, channel map.
  for (std::size_t ci = 0; ci < channel_counts.size(); ++ci) {
    const double lin = all[ci * n_mappings + 0];
    const double line = all[ci * n_mappings + 1];
    const double chan = all[ci * n_mappings + 2];
    t.add_row({std::to_string(channel_counts[ci]), fmt_fixed(lin, 2),
               fmt_fixed(line, 2), fmt_fixed(chan, 2),
               fmt_fixed(chan / base_channel_tp, 2) + "x"});
    Json j = Json::object();
    j["channels"] = static_cast<std::int64_t>(channel_counts[ci]);
    j["ranks"] = static_cast<std::int64_t>(opts.ranks);
    j["linear_req_per_us"] = lin;
    j["line_req_per_us"] = line;
    j["channel_req_per_us"] = chan;
    j["channel_speedup_vs_1ch"] = chan / base_channel_tp;
    rows.push_back(std::move(j));
  }

  // Per-repetition aggregate: does the widest channel-interleaved sweep
  // point beat single-channel on this repetition's synthetic chips?
  const std::size_t widest = channel_counts.size() - 1;
  std::vector<double> speedups;
  for (int rep = 0; rep < opts.iters; ++rep) {
    const std::size_t base = static_cast<std::size_t>(rep) * per_rep;
    speedups.push_back(all[base + widest * n_mappings + 2] /
                       all[base + n_mappings - 1]);
  }

  if (opts.verbose) {
    t.print(std::cout);
    std::cout << "\nExpected shape: the channel-interleaved mapping spreads\n"
                 "the burst across every channel's bus and software\n"
                 "controller, so throughput grows with the channel count;\n"
                 "the row-linear mapping pins the burst to channel 0 and\n"
                 "stays flat. 1 channel x 1 rank is the paper's §7.2 system.\n";
  }

  Json out = Json::object();
  out["requests"] = kBurstRequests;
  out["points"] = std::move(rows);
  out["widest_channel_speedup_per_rep"] = rep_metric_json(speedups);
  return out;
}

// --- rank_interleaving ----------------------------------------------------

/// Read throughput of 1 vs 2 (and --ranks) ranks per channel under every
/// mapper. Rank bits sit directly above the bank bits in the line- and
/// channel-interleaved layouts, so a burst alternates ranks; because one
/// software controller serves a channel's requests one batch at a time,
/// the visible effect is the tRTRS bus turnaround between ranks, not a
/// bank-pool win — the honest cost of rank interleaving under a serial
/// software MC.
Json run_rank_interleaving(const RunOptions& opts) {
  std::vector<std::uint32_t> rank_counts{1, 2};
  if (std::find(rank_counts.begin(), rank_counts.end(), opts.ranks) ==
      rank_counts.end()) {
    rank_counts.push_back(opts.ranks);
    std::sort(rank_counts.begin(), rank_counts.end());
  }

  const std::size_t n_mappings = std::size(kMappings);
  const std::size_t per_rep = rank_counts.size() * n_mappings;
  const std::size_t n_tasks = static_cast<std::size_t>(opts.iters) * per_rep;
  const ThreadBudget budget = split_thread_budget(opts.threads,
                                                  opts.pump_workers, n_tasks,
                                                  opts.channels);
  ThreadPool pool(budget.sweep_threads);
  const auto all = parallel_map(pool, n_tasks, [&](std::size_t task) {
    const std::size_t rep = task / per_rep;
    const std::size_t which = task % per_rep;
    const std::uint32_t ranks = rank_counts[which / n_mappings];
    const smc::MappingKind mapping = kMappings[which % n_mappings];
    return read_burst_throughput(
        memsys_config(rep_seed(opts, static_cast<int>(rep)), opts.channels,
                      ranks, mapping, budget.pump_workers),
        kBurstRequests);
  });

  TextTable t;
  t.set_header({"Ranks/channel", "linear (req/us)", "line (req/us)",
                "channel (req/us)"});
  Json rows = Json::array();
  for (std::size_t ri = 0; ri < rank_counts.size(); ++ri) {
    const double lin = all[ri * n_mappings + 0];
    const double line = all[ri * n_mappings + 1];
    const double chan = all[ri * n_mappings + 2];
    t.add_row({std::to_string(rank_counts[ri]), fmt_fixed(lin, 2),
               fmt_fixed(line, 2), fmt_fixed(chan, 2)});
    Json j = Json::object();
    j["ranks"] = static_cast<std::int64_t>(rank_counts[ri]);
    j["channels"] = static_cast<std::int64_t>(opts.channels);
    j["linear_req_per_us"] = lin;
    j["line_req_per_us"] = line;
    j["channel_req_per_us"] = chan;
    rows.push_back(std::move(j));
  }

  std::vector<double> line_ratio;
  for (int rep = 0; rep < opts.iters; ++rep) {
    const std::size_t base = static_cast<std::size_t>(rep) * per_rep;
    line_ratio.push_back(all[base + n_mappings + 1] / all[base + 1]);
  }

  if (opts.verbose) {
    t.print(std::cout);
    std::cout << "\nExpected shape: the linear mapping never leaves rank 0,\n"
                 "so its row is flat; the interleaved mappings alternate\n"
                 "ranks and pay the tRTRS bus turnaround on every switch.\n"
                 "A channel's software controller serves one command batch\n"
                 "at a time, so rank interleaving costs a little instead of\n"
                 "scaling — channels (one controller each) are the scaling\n"
                 "axis, which is exactly what channel_scaling shows.\n";
  }

  Json out = Json::object();
  out["requests"] = kBurstRequests;
  out["points"] = std::move(rows);
  out["line_2rank_speedup_per_rep"] = rep_metric_json(line_ratio);
  return out;
}

}  // namespace

void register_memsys_scenarios(ScenarioRegistry& r) {
  r.add({"channel_scaling",
         "Read-burst throughput vs channel count for each address mapping",
         "EasyDRAM (DSN 2025), extension beyond §7.2", &run_channel_scaling});
  r.add({"rank_interleaving",
         "Read-burst throughput of 1 vs 2 ranks/channel for each mapping",
         "EasyDRAM (DSN 2025), extension beyond §7.2", &run_rank_interleaving});
}

}  // namespace easydram::cli
