// Validation and ablation scenarios: the §6 time-scaling validation study
// and the DESIGN.md ablations (row-batch draining, scheduling policy,
// software vs hardware memory controller).

#include <cmath>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "cli/measure.hpp"
#include "cli/scenario.hpp"
#include "cli/thread_pool.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "smc/scheduler.hpp"
#include "workloads/lmbench.hpp"
#include "workloads/polybench.hpp"

namespace easydram::cli {
namespace {

// --- validation_timescale -------------------------------------------------

Json run_validation(const RunOptions& opts) {
  struct Entry {
    std::string name;
    std::vector<cpu::TraceRecord> (*polybench)() = nullptr;  // Null = lmbench.
  };
  std::vector<Entry> entries;
  for (const auto& kernel : workloads::all_kernels()) {
    entries.push_back({std::string(kernel.name), kernel.generate});
  }
  entries.push_back({"lmbench-lat-mem-rd", nullptr});

  struct Point {
    std::int64_t ref_cycles = 0;
    std::int64_t ts_cycles = 0;
    double err_pct = 0;
  };
  const std::size_t n = entries.size();
  ThreadPool pool(opts.threads);
  const auto all = parallel_map(
      pool, static_cast<std::size_t>(opts.iters) * n, [&](std::size_t task) {
        const std::size_t rep = task / n;
        const Entry& e = entries[task % n];
        const std::uint64_t seed = rep_seed(opts, static_cast<int>(rep));
        const std::vector<cpu::TraceRecord> records =
            e.polybench != nullptr ? e.polybench()
                                   : workloads::make_lmbench_chase(2 << 20, 4);

        sys::SystemConfig ts_cfg = sys::validation_time_scaling();
        ts_cfg.variation.seed = seed;
        sys::EasyDramSystem ts(ts_cfg);
        cpu::SpanTrace t1(records);
        const auto r_ts = ts.run(t1);

        sys::SystemConfig ref_cfg = sys::validation_reference();
        ref_cfg.variation.seed = seed;
        sys::EasyDramSystem ref(ref_cfg);
        cpu::SpanTrace t2(records);
        const auto r_ref = ref.run(t2);

        Point p;
        p.ref_cycles = r_ref.cycles;
        p.ts_cycles = r_ts.cycles;
        p.err_pct = 100.0 *
                    std::abs(static_cast<double>(r_ts.cycles - r_ref.cycles)) /
                    static_cast<double>(r_ref.cycles);
        return p;
      });

  TextTable t;
  t.set_header({"Workload", "Reference 1GHz (cycles)",
                "TS 100MHz->1GHz (cycles)", "Error (%)"});
  Summary err_summary;
  std::vector<double> errors;
  Json rows = Json::array();
  for (std::size_t i = 0; i < n; ++i) {
    const Point& p = all[i];  // Repetition 0.
    err_summary.add(p.err_pct);
    errors.push_back(p.err_pct);
    t.add_row({entries[i].name, std::to_string(p.ref_cycles),
               std::to_string(p.ts_cycles), fmt_fixed(p.err_pct, 4)});
    Json j = Json::object();
    j["workload"] = entries[i].name;
    j["reference_cycles"] = p.ref_cycles;
    j["time_scaled_cycles"] = p.ts_cycles;
    j["error_pct"] = p.err_pct;
    rows.push_back(std::move(j));
  }

  if (opts.verbose) {
    t.print(std::cout);
    std::cout << "\nAverage error: " << fmt_fixed(err_summary.mean(), 4)
              << "% (paper: <0.1%)\nMaximum error: "
              << fmt_fixed(err_summary.max(), 4) << "% (paper: <1%)\n";
  }

  Json out = Json::object();
  out["workloads"] = std::move(rows);
  Json summary = Json::object();
  summary["error_pct_mean"] = err_summary.mean();
  summary["error_pct_max"] = err_summary.max();
  summary["error_pct_p50"] = p50(errors);
  summary["error_pct_p95"] = p95(errors);
  summary["paper_bound_avg_pct"] = 0.1;
  summary["paper_bound_max_pct"] = 1.0;
  // Per-repetition aggregate: the worst-case error of each rep's chip.
  std::vector<double> rep_max;
  for (int rep = 0; rep < opts.iters; ++rep) {
    double worst = 0;
    for (std::size_t i = 0; i < n; ++i) {
      worst = std::max(worst, all[static_cast<std::size_t>(rep) * n + i].err_pct);
    }
    rep_max.push_back(worst);
  }
  summary["error_pct_max_per_rep"] = rep_metric_json(rep_max);
  out["summary"] = std::move(summary);
  return out;
}

// --- ablation_batch_limit -------------------------------------------------

Json run_batch_limit(const RunOptions& opts) {
  static constexpr std::size_t kLimits[] = {16, 4, 1};
  const std::size_t n = std::size(kLimits);
  ThreadPool pool(opts.threads);
  const auto all = parallel_map(
      pool, static_cast<std::size_t>(opts.iters) * n, [&](std::size_t task) {
        sys::SystemConfig cfg = sys::jetson_nano_time_scaling();
        cfg.variation.seed = rep_seed(opts, static_cast<int>(task / n));
        cfg.row_batch_limit = kLimits[task % n];
        return run_kernel_cycles(cfg, "gesummv").count;
      });

  TextTable t;
  t.set_header({"row_batch_limit", "cycles", "vs limit=16"});
  const auto base = static_cast<double>(all[0]);  // limit=16, repetition 0.
  Json rows = Json::array();
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t cycles = all[i];
    t.add_row({std::to_string(kLimits[i]), std::to_string(cycles),
               fmt_fixed(100.0 * (static_cast<double>(cycles) / base - 1.0), 1) +
                   "%"});
    Json j = Json::object();
    j["row_batch_limit"] = kLimits[i];
    j["cycles"] = cycles;
    j["overhead_vs_16_pct"] =
        100.0 * (static_cast<double>(cycles) / base - 1.0);
    rows.push_back(std::move(j));
  }
  if (opts.verbose) t.print(std::cout);

  Json out = Json::object();
  out["workload"] = "gesummv";
  out["limits"] = std::move(rows);
  // Per-repetition aggregate: overhead of limit=1 over limit=16.
  std::vector<double> overhead;
  for (int rep = 0; rep < opts.iters; ++rep) {
    const std::size_t b = static_cast<std::size_t>(rep) * n;
    overhead.push_back(100.0 * (static_cast<double>(all[b + 2]) /
                                    static_cast<double>(all[b]) -
                                1.0));
  }
  out["overhead_limit1_pct_per_rep"] = rep_metric_json(overhead);
  return out;
}

// --- ablation_scheduler ---------------------------------------------------

Json run_scheduler(const RunOptions& opts) {
  struct Policy {
    const char* name;
    std::unique_ptr<smc::Scheduler> (*make)();
  };
  static constexpr Policy kPolicies[] = {
      {"FCFS",
       [] { return std::unique_ptr<smc::Scheduler>(new smc::FcfsScheduler()); }},
      {"FR-FCFS",
       [] {
         return std::unique_ptr<smc::Scheduler>(new smc::FrfcfsScheduler());
       }},
      {"PAR-BS(8)",
       [] {
         return std::unique_ptr<smc::Scheduler>(new smc::BatchScheduler(8));
       }},
      {"BLISS(4)",
       [] {
         return std::unique_ptr<smc::Scheduler>(new smc::BlacklistScheduler(4));
       }},
  };
  const std::size_t n = std::size(kPolicies);
  ThreadPool pool(opts.threads);
  const auto all = parallel_map(
      pool, static_cast<std::size_t>(opts.iters) * n, [&](std::size_t task) {
        sys::SystemConfig cfg = sys::jetson_nano_time_scaling();
        cfg.variation.seed = rep_seed(opts, static_cast<int>(task / n));
        cfg.scheduler_factory = kPolicies[task % n].make;
        return run_kernel_cycles(cfg, "mvt").count;
      });

  TextTable t;
  t.set_header({"policy", "cycles"});
  Json rows = Json::array();
  for (std::size_t i = 0; i < n; ++i) {
    t.add_row({kPolicies[i].name, std::to_string(all[i])});
    Json j = Json::object();
    j["policy"] = kPolicies[i].name;
    j["cycles"] = all[i];
    rows.push_back(std::move(j));
  }
  if (opts.verbose) t.print(std::cout);

  Json out = Json::object();
  out["workload"] = "mvt";
  out["policies"] = std::move(rows);
  // Per-repetition aggregate: FCFS slowdown relative to FR-FCFS.
  std::vector<double> ratios;
  for (int rep = 0; rep < opts.iters; ++rep) {
    const std::size_t b = static_cast<std::size_t>(rep) * n;
    ratios.push_back(static_cast<double>(all[b]) /
                     static_cast<double>(all[b + 1]));
  }
  out["fcfs_over_frfcfs_per_rep"] = rep_metric_json(ratios);
  return out;
}

// --- ablation_hardware_mc -------------------------------------------------

Json run_hardware_mc(const RunOptions& opts) {
  ThreadPool pool(opts.threads);
  const auto all = parallel_map(
      pool, static_cast<std::size_t>(opts.iters) * 2, [&](std::size_t task) {
        sys::SystemConfig cfg = sys::jetson_nano_time_scaling();
        cfg.variation.seed = rep_seed(opts, static_cast<int>(task / 2));
        if (task % 2 == 1) {
          cfg.hardware_mc = true;
          cfg.mc_sched_latency = Cycles{8};
        }
        return run_kernel_cycles(cfg, "trisolv").count;
      });

  TextTable t;
  t.set_header({"controller", "cycles"});
  Json rows = Json::array();
  for (std::size_t i = 0; i < 2; ++i) {
    const char* name = i == 0 ? "software (SMC cycles charged)"
                              : "hardware (8-cycle pipeline)";
    t.add_row({name, std::to_string(all[i])});
    Json j = Json::object();
    j["controller"] = i == 0 ? "software" : "hardware";
    j["cycles"] = all[i];
    rows.push_back(std::move(j));
  }
  if (opts.verbose) t.print(std::cout);

  Json out = Json::object();
  out["workload"] = "trisolv";
  out["controllers"] = std::move(rows);
  // Per-repetition aggregate: software-over-hardware cycle ratio.
  std::vector<double> ratios;
  for (int rep = 0; rep < opts.iters; ++rep) {
    ratios.push_back(
        static_cast<double>(all[static_cast<std::size_t>(rep) * 2]) /
        static_cast<double>(all[static_cast<std::size_t>(rep) * 2 + 1]));
  }
  out["software_over_hardware_per_rep"] = rep_metric_json(ratios);
  return out;
}

}  // namespace

void register_validation_scenarios(ScenarioRegistry& r) {
  r.add({"validation_timescale",
         "Time-scaling validation: 28 PolyBench kernels + lmbench, error vs "
         "a 1 GHz reference",
         "EasyDRAM (DSN 2025), Section 6", &run_validation});
  r.add({"ablation_batch_limit",
         "Row-hit batch draining limit sweep (gesummv cycles)",
         "DESIGN.md ablation A1 (beyond the paper)", &run_batch_limit});
  r.add({"ablation_scheduler",
         "Scheduling policy comparison: FCFS/FR-FCFS/PAR-BS/BLISS (mvt)",
         "DESIGN.md ablation A2 (beyond the paper)", &run_scheduler});
  r.add({"ablation_hardware_mc",
         "Software vs fixed-function hardware memory controller (trisolv)",
         "DESIGN.md ablation A3 (beyond the paper)", &run_hardware_mc});
}

}  // namespace easydram::cli
