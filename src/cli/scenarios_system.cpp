// System-level scenarios: the quickstart smoke run, the Fig. 2 request
// breakdown, the Fig. 8 latency profile, the Fig. 14 simulation-speed
// study, and the Table 1 platform comparison.

#include <array>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "cli/measure.hpp"
#include "cli/scenario.hpp"
#include "cli/thread_pool.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "workloads/polybench.hpp"

namespace easydram::cli {
namespace {

sys::SystemConfig seeded_ts(std::uint64_t seed) {
  sys::SystemConfig cfg = sys::jetson_nano_time_scaling();
  cfg.variation.seed = seed;
  return cfg;
}

sys::SystemConfig seeded_nts(std::uint64_t seed) {
  sys::SystemConfig cfg = sys::pidram_no_time_scaling();
  cfg.variation.seed = seed;
  return cfg;
}

Json summary_json(std::span<const double> xs) {
  Json j = Json::object();
  j["mean"] = mean(xs);
  j["stddev"] = stddev(xs);
  j["p50"] = p50(xs);
  j["p95"] = p95(xs);
  return j;
}

// --- quickstart -----------------------------------------------------------

/// Tiny end-to-end smoke run (seconds, not minutes): one cold read served
/// through the full system plus a 64 KiB lmbench chase. This is the
/// scenario CI exercises to prove the binary works.
Json run_quickstart(const RunOptions& opts) {
  ThreadPool pool(opts.threads);
  struct Rep {
    std::int64_t read_latency = 0;
    double chase_cpl = 0;
  };
  const auto reps =
      parallel_map(pool, static_cast<std::size_t>(opts.iters), [&](std::size_t rep) {
        const std::uint64_t seed = rep_seed(opts, static_cast<int>(rep));
        sys::EasyDramSystem sysm(seeded_ts(seed));
        std::array<std::uint8_t, 64> line{};
        for (std::size_t i = 0; i < line.size(); ++i) {
          line[i] = static_cast<std::uint8_t>(i);
        }
        const std::uint64_t paddr = 2 * 8192;  // Bank 0, row 2.
        sysm.device().backdoor_write(sysm.api().get_addr_mapping(paddr), line);
        const std::uint64_t id = sysm.submit_read(paddr, /*now=*/100);
        Rep r;
        r.read_latency = sysm.wait(id).release_cycle - 100;
        r.chase_cpl = cycles_per_load(seeded_ts(seed), 64 * 1024, seed);
        return r;
      });

  std::vector<double> latencies, cpls;
  Json rep_list = Json::array();
  for (std::size_t i = 0; i < reps.size(); ++i) {
    latencies.push_back(static_cast<double>(reps[i].read_latency));
    cpls.push_back(reps[i].chase_cpl);
    Json j = Json::object();
    j["seed"] = static_cast<std::int64_t>(rep_seed(opts, static_cast<int>(i)));
    j["read_latency_cycles"] = reps[i].read_latency;
    j["chase_cycles_per_load"] = reps[i].chase_cpl;
    rep_list.push_back(std::move(j));
  }

  if (opts.verbose) {
    TextTable t;
    t.set_header({"rep", "read latency (cycles)", "64K chase (cycles/load)"});
    for (std::size_t i = 0; i < reps.size(); ++i) {
      t.add_row({std::to_string(i), std::to_string(reps[i].read_latency),
                 fmt_fixed(reps[i].chase_cpl, 2)});
    }
    t.print(std::cout);
  }

  Json out = Json::object();
  out["reps"] = std::move(rep_list);
  out["read_latency_cycles"] = rep_metric_json(latencies);
  out["chase_cycles_per_load"] = rep_metric_json(cpls);
  return out;
}

// --- fig2_breakdown -------------------------------------------------------

Json run_fig2(const RunOptions& opts) {
  struct Config {
    const char* name;
    double clock_hz;
  };
  static constexpr Config kConfigs[] = {
      {"Real system", 1.43e9},
      {"FPGA + RTL memory controller", 50e6},
      {"FPGA + software memory controller", 50e6},
      {"FPGA + software MC + time scaling", 1.43e9},
  };

  auto make_cfg = [](std::size_t which, std::uint64_t seed) {
    switch (which) {
      case 0: {
        // Real system: GHz-class processor, hardware memory controller.
        sys::SystemConfig real = seeded_ts(seed);
        real.mode = timescale::SystemMode::kReference;
        real.proc_domain = timescale::DomainConfig{Frequency{1'430'000'000},
                                                   Frequency{1'430'000'000}};
        return real;
      }
      case 1: {
        // FPGA + RTL MC: slow processor, hardware-speed MC (PiDRAM-like
        // platform before adding a software controller).
        sys::SystemConfig fpga_rtl = seeded_nts(seed);
        fpga_rtl.mode = timescale::SystemMode::kReference;
        fpga_rtl.proc_domain = timescale::DomainConfig{
            Frequency::megahertz(50), Frequency::megahertz(50)};
        fpga_rtl.core = cpu::pidram_inorder_core();
        fpga_rtl.hardware_mc = true;
        fpga_rtl.mc_sched_latency = Cycles{2};  // Two stages at 50 MHz.
        return fpga_rtl;
      }
      case 2: return seeded_nts(seed);  // FPGA + software MC, no scaling.
      default: return seeded_ts(seed);  // FPGA + software MC + scaling.
    }
  };

  ThreadPool pool(opts.threads);
  const std::size_t n = std::size(kConfigs);
  const auto tasks = static_cast<std::size_t>(opts.iters) * n;
  const auto all = parallel_map(pool, tasks, [&](std::size_t task) {
    const std::size_t rep = task / n;
    const std::size_t which = task % n;
    const std::uint64_t seed = rep_seed(opts, static_cast<int>(rep));
    return measure_request_breakdown(make_cfg(which, seed),
                                    kConfigs[which].clock_hz);
  });

  Json rows = Json::array();
  TextTable t;
  t.set_header({"Configuration", "Processing (ns)", "Scheduling (ns)",
                "Main memory (ns)"});
  for (std::size_t which = 0; which < n; ++which) {
    const RequestBreakdown& b = all[which];  // Repetition 0.
    t.add_row({kConfigs[which].name, fmt_fixed(b.processing_ns, 1),
               fmt_fixed(b.scheduling_ns, 1), fmt_fixed(b.memory_ns, 1)});
    Json j = Json::object();
    j["config"] = kConfigs[which].name;
    j["processing_ns"] = b.processing_ns;
    j["scheduling_ns"] = b.scheduling_ns;
    j["memory_ns"] = b.memory_ns;
    rows.push_back(std::move(j));
  }

  const RequestBreakdown& b1 = all[0];
  const RequestBreakdown& b2 = all[1];
  const RequestBreakdown& b3 = all[2];
  const RequestBreakdown& b4 = all[3];
  const bool memory_constant =
      std::abs(b1.memory_ns - b3.memory_ns) < 0.5 * b1.memory_ns;
  const bool smc_stretches_sched = b3.scheduling_ns > 3.0 * b2.scheduling_ns;
  const bool ts_restores =
      std::abs(b4.processing_ns - b1.processing_ns) < 0.2 * b1.processing_ns;

  if (opts.verbose) {
    t.print(std::cout);
    std::cout << "\nExpected shape (paper Fig. 2): FPGA configs stretch\n"
                 "processing; the software MC stretches scheduling; main\n"
                 "memory stays constant; time scaling restores the real\n"
                 "system's proportions on the emulated timeline.\n";
    std::cout << "\nChecks: memory-constant=" << (memory_constant ? "yes" : "NO")
              << " smc-stretches-scheduling="
              << (smc_stretches_sched ? "yes" : "NO")
              << " ts-restores-processing=" << (ts_restores ? "yes" : "NO")
              << "\n";
  }

  Json out = Json::object();
  out["configs"] = std::move(rows);
  Json checks = Json::object();
  checks["memory_constant"] = memory_constant;
  checks["smc_stretches_scheduling"] = smc_stretches_sched;
  checks["ts_restores_processing"] = ts_restores;
  out["checks"] = std::move(checks);
  // Per-repetition aggregate: do the Fig. 2 shape checks hold on every
  // repetition's synthetic chip?
  Json rep_checks = Json::array();
  bool all_pass = true;
  for (int rep = 0; rep < opts.iters; ++rep) {
    const std::size_t base = static_cast<std::size_t>(rep) * n;
    const RequestBreakdown& r1 = all[base];
    const RequestBreakdown& r2 = all[base + 1];
    const RequestBreakdown& r3 = all[base + 2];
    const RequestBreakdown& r4 = all[base + 3];
    const bool ok =
        std::abs(r1.memory_ns - r3.memory_ns) < 0.5 * r1.memory_ns &&
        r3.scheduling_ns > 3.0 * r2.scheduling_ns &&
        std::abs(r4.processing_ns - r1.processing_ns) < 0.2 * r1.processing_ns;
    all_pass = all_pass && ok;
    rep_checks.push_back(ok);
  }
  out["checks_per_rep"] = std::move(rep_checks);
  out["checks_all_reps_pass"] = all_pass;
  return out;
}

// --- fig8_latency_profile -------------------------------------------------

Json run_fig8(const RunOptions& opts) {
  std::vector<std::uint64_t> sizes;
  for (std::uint64_t kib = 1; kib <= 16 * 1024; kib *= 2) {
    sizes.push_back(kib * 1024);
  }

  struct Point {
    double nts = 0, ts = 0, a57 = 0;
  };
  ThreadPool pool(opts.threads);
  const std::size_t n = sizes.size();
  const auto all = parallel_map(
      pool, static_cast<std::size_t>(opts.iters) * n, [&](std::size_t task) {
        const std::size_t rep = task / n;
        const std::uint64_t bytes = sizes[task % n];
        const std::uint64_t seed = rep_seed(opts, static_cast<int>(rep));

        // Real board: A57 at 1.43 GHz with the Jetson Nano's 2 MiB L2,
        // served by a hardware memory controller (reference mode).
        sys::SystemConfig a57 = seeded_ts(seed);
        a57.mode = timescale::SystemMode::kReference;
        a57.proc_domain = timescale::DomainConfig{Frequency{1'430'000'000},
                                                  Frequency{1'430'000'000}};
        a57.caches = cpu::jetson_nano_caches();

        Point p;
        p.nts = cycles_per_load(seeded_nts(seed), bytes);
        p.ts = cycles_per_load(seeded_ts(seed), bytes);
        p.a57 = cycles_per_load(a57, bytes);
        return p;
      });

  TextTable t;
  t.set_header({"Size (KiB)", "EasyDRAM - No Time Scaling",
                "EasyDRAM - Time Scaling", "Cortex A57 (2 MiB L2)"});
  Json rows = Json::array();
  for (std::size_t i = 0; i < n; ++i) {
    const Point& p = all[i];  // Repetition 0.
    t.add_row({std::to_string(sizes[i] / 1024), fmt_fixed(p.nts, 1),
               fmt_fixed(p.ts, 1), fmt_fixed(p.a57, 1)});
    Json j = Json::object();
    j["bytes"] = sizes[i];
    j["no_time_scaling"] = p.nts;
    j["time_scaling"] = p.ts;
    j["cortex_a57"] = p.a57;
    rows.push_back(std::move(j));
  }

  if (opts.verbose) {
    t.print(std::cout);
    std::cout
        << "\nExpected shape (paper Fig. 8): the No-Time-Scaling curve\n"
           "shows a much lower main-memory plateau (few tens of cycles at\n"
           "50 MHz); Time Scaling tracks the Cortex A57 profile, with the\n"
           "L2->memory transition at 512 KiB instead of 2 MiB because the\n"
           "EasyDRAM build has a smaller L2 (noted in the paper).\n";
  }

  Json out = Json::object();
  out["points"] = std::move(rows);
  // Per-repetition aggregate: the time-scaled main-memory plateau (largest
  // buffer), the number the paper's Fig. 8 comparison hinges on.
  std::vector<double> plateau;
  for (int rep = 0; rep < opts.iters; ++rep) {
    plateau.push_back(all[static_cast<std::size_t>(rep) * n + (n - 1)].ts);
  }
  out["plateau_time_scaling_per_rep"] = rep_metric_json(plateau);
  return out;
}

// --- fig14_sim_speed ------------------------------------------------------

Json run_fig14(const RunOptions& opts) {
  const auto names = workloads::fig13_names();
  ThreadPool pool(opts.threads);
  const std::size_t n = names.size();
  const auto all = parallel_map(
      pool, static_cast<std::size_t>(opts.iters) * n, [&](std::size_t task) {
        const std::size_t rep = task / n;
        return measure_sim_speed(names[task % n],
                                 rep_seed(opts, static_cast<int>(rep)));
      });

  TextTable t;
  t.set_header({"Workload", "EasyDRAM (MHz)", "Ramulator 2.0 (MHz)", "Ratio"});
  Json rows = Json::array();
  std::vector<double> ratios;
  for (std::size_t i = 0; i < n; ++i) {
    const SimSpeed& s = all[i];  // Repetition 0.
    ratios.push_back(s.ratio);
    t.add_row({std::string(names[i]), fmt_fixed(s.easy_mhz, 2),
               fmt_fixed(s.ram_mhz, 2), fmt_fixed(s.ratio, 1) + "x"});
    Json j = Json::object();
    j["workload"] = names[i];
    j["easydram_mhz"] = s.easy_mhz;
    j["ramulator_mhz"] = s.ram_mhz;
    j["ratio"] = s.ratio;
    rows.push_back(std::move(j));
  }
  const double geo = geomean(ratios, GeomeanPolicy::kSkipNonPositive);
  t.add_row({"geomean", "", "", fmt_fixed(geo, 1) + "x"});

  if (opts.verbose) {
    t.print(std::cout);
    Summary s;
    for (double v : ratios) s.add(v);
    std::cout << "\nPaper: EasyDRAM averages 5.9x (max 20.3x) faster than\n"
                 "Ramulator 2.0, with the gap growing as memory intensity falls\n"
                 "(durbin, ~0.01 LLC MPKC, shows the maximum). Measured here:\n"
                 "avg " << fmt_fixed(s.mean(), 1) << "x, max "
              << fmt_fixed(s.max(), 1)
              << "x. Note: the Ramulator column depends on host CPU speed; the\n"
                 "EasyDRAM column is a deterministic model output. The host-\n"
                 "speed overhaul made this repository's Ramulator baseline\n"
                 "itself ~2.5x faster, so measured ratios here are smaller\n"
                 "than the paper's (and than pre-overhaul runs) by exactly\n"
                 "that baseline speedup — a host artifact, not a model change.\n";
  }

  Json out = Json::object();
  out["host_clock_dependent"] = true;  // Ramulator MHz reads the host clock.
  out["workloads"] = std::move(rows);
  out["ratio_geomean"] = geo;
  out["ratio"] = summary_json(ratios);
  // Per-repetition aggregate over the host-clock-dependent ratio geomean.
  std::vector<double> rep_geo;
  for (int rep = 0; rep < opts.iters; ++rep) {
    std::vector<double> rs;
    for (std::size_t i = 0; i < n; ++i) {
      rs.push_back(all[static_cast<std::size_t>(rep) * n + i].ratio);
    }
    rep_geo.push_back(geomean(rs, GeomeanPolicy::kSkipNonPositive));
  }
  out["ratio_geomean_per_rep"] = rep_metric_json(rep_geo);
  return out;
}

// --- table1_platforms -----------------------------------------------------

Json run_table1(const RunOptions& opts) {
  ThreadPool pool(opts.threads);
  const auto speeds = parallel_map(
      pool, static_cast<std::size_t>(opts.iters), [&](std::size_t rep) {
        const std::uint64_t seed = rep_seed(opts, static_cast<int>(rep));
        sys::EasyDramSystem sysm(seeded_ts(seed));
        auto records = workloads::generate_kernel("gemver");
        cpu::VectorTrace trace(std::move(records));
        const cpu::RunResult r = sysm.run(trace);
        return static_cast<double>(r.cycles) / sysm.wall().seconds();
      });
  const double speed_hz = speeds.front();

  if (opts.verbose) {
    TextTable t;
    t.set_header({"Platform", "Real DRAM", "Flexible MC", "Eval. CPU cycles/s",
                  "Accurate perf.", "Easily configurable"});
    t.add_row({"Commercial systems", "yes", "no", "billions", "yes", "no"});
    t.add_row({"Software simulators", "no", "yes (C/C++)", "~10K - ~1M", "yes",
               "yes"});
    t.add_row({"FPGA-based simulators", "no", "no", "~4M - ~100M", "yes", "yes"});
    t.add_row({"DRAM testing platforms", "DDR3/4", "no", "N/A", "no", "no"});
    t.add_row({"FPGA-based emulators", "DDR3/4", "HDL", "50M - 200M", "no",
               "yes"});
    t.add_row({"EasyDRAM (this repro)", "DDR4 (modelled)", "yes (C/C++)",
               fmt_fixed(speed_hz / 1e6, 1) + "M (measured)", "yes", "yes"});
    t.print(std::cout);
    std::cout << "\nPaper reports ~10M evaluated CPU cycles/s for EasyDRAM.\n"
              << "Measured here on gemver: " << fmt_fixed(speed_hz / 1e6, 2)
              << "M emulated cycles per modelled-FPGA second.\n";
  }

  Json out = Json::object();
  out["workload"] = "gemver";
  out["eval_cycles_per_second"] = speed_hz;
  out["eval_cycles_per_second_reps"] = rep_metric_json(speeds);
  out["paper_reference_cycles_per_second"] = 10e6;
  return out;
}

}  // namespace

void register_system_scenarios(ScenarioRegistry& r) {
  r.add({"quickstart",
         "2-second smoke run: one cold read + a 64 KiB pointer chase",
         "EasyDRAM (DSN 2025), Listing 1 shape", &run_quickstart});
  r.add({"fig2_breakdown",
         "Memory-request time breakdown across four system configurations",
         "EasyDRAM (DSN 2025), Fig. 2", &run_fig2});
  r.add({"fig8_latency_profile",
         "lmbench cycles-per-load profile over 1 KiB .. 16 MiB buffers",
         "EasyDRAM (DSN 2025), Fig. 8", &run_fig8});
  r.add({"fig14_sim_speed",
         "Simulation speed (MHz) of EasyDRAM vs the Ramulator-2.0 baseline",
         "EasyDRAM (DSN 2025), Fig. 14", &run_fig14});
  r.add({"table1_platforms",
         "Platform comparison with this reproduction's measured speed",
         "EasyDRAM (DSN 2025), Table 1", &run_table1});
}

}  // namespace easydram::cli
