// RowClone scenarios: the Fig. 10 (No Flush) and Fig. 11 (CLFLUSH)
// Copy/Init speedup sweeps and the §7.1 bank-interleaving ablation.

#include <iostream>
#include <string>
#include <vector>

#include "cli/measure.hpp"
#include "cli/scenario.hpp"
#include "cli/thread_pool.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "smc/rowclone_alloc.hpp"

namespace easydram::cli {
namespace {

std::vector<std::uint64_t> sweep_sizes() {
  std::vector<std::uint64_t> sizes;
  for (std::uint64_t bytes = 8 * 1024; bytes <= 16ull * 1024 * 1024;
       bytes *= 2) {
    sizes.push_back(bytes);
  }
  return sizes;
}

/// The Fig. 10/11 sweep: Copy and Init speedups over 8 KiB .. 16 MiB on the
/// three evaluation stacks (EasyDRAM No-Time-Scaling, EasyDRAM Time
/// Scaling, Ramulator-2.0-like).
Json rowclone_sweep(const RunOptions& opts, bool clflush) {
  const std::vector<std::uint64_t> sizes = sweep_sizes();
  const workloads::CopyInitParams::Kind kinds[] = {
      workloads::CopyInitParams::Kind::kCopy,
      workloads::CopyInitParams::Kind::kInit};

  struct Point {
    double nts = 0, ts = 0, ram = 0;
  };
  const std::size_t per_rep = 2 * sizes.size();
  ThreadPool pool(opts.threads);
  const auto all = parallel_map(
      pool, static_cast<std::size_t>(opts.iters) * per_rep,
      [&](std::size_t task) {
        const std::size_t rep = task / per_rep;
        const std::size_t in_rep = task % per_rep;
        const auto kind = kinds[in_rep / sizes.size()];
        const std::uint64_t bytes = sizes[in_rep % sizes.size()];
        const std::size_t rows = static_cast<std::size_t>(bytes / 8192);
        const std::uint64_t seed = rep_seed(opts, static_cast<int>(rep));

        sys::SystemConfig nts = sys::pidram_no_time_scaling();
        nts.variation.seed = seed;
        sys::SystemConfig ts = sys::jetson_nano_time_scaling();
        ts.variation.seed = seed;

        Point p;
        p.nts = copyinit_speedup_easydram(nts, kind, rows, clflush);
        p.ts = copyinit_speedup_easydram(ts, kind, rows, clflush);
        p.ram = copyinit_speedup_ramulator(kind, rows, clflush);
        return p;
      });

  Json out = Json::object();
  for (std::size_t k = 0; k < 2; ++k) {
    const bool is_copy = k == 0;
    TextTable t;
    t.set_header({"Size", "EasyDRAM - No Time Scaling",
                  "EasyDRAM - Time Scaling", "Ramulator 2.0"});
    Summary s_nts, s_ts, s_ram;
    Json rows = Json::array();
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const Point& p = all[k * sizes.size() + i];  // Repetition 0.
      s_nts.add(p.nts);
      s_ts.add(p.ts);
      s_ram.add(p.ram);
      t.add_row({fmt_size(sizes[i]), fmt_fixed(p.nts, 1) + "x",
                 fmt_fixed(p.ts, 2) + "x", fmt_fixed(p.ram, 1) + "x"});
      Json j = Json::object();
      j["bytes"] = sizes[i];
      j["no_time_scaling"] = p.nts;
      j["time_scaling"] = p.ts;
      j["ramulator"] = p.ram;
      rows.push_back(std::move(j));
    }
    t.add_row({"average", fmt_fixed(s_nts.mean(), 1) + "x",
               fmt_fixed(s_ts.mean(), 2) + "x", fmt_fixed(s_ram.mean(), 1) + "x"});
    t.add_row({"maximum", fmt_fixed(s_nts.max(), 1) + "x",
               fmt_fixed(s_ts.max(), 2) + "x", fmt_fixed(s_ram.max(), 1) + "x"});

    if (opts.verbose) {
      std::cout << (is_copy ? "(a) Copy\n" : "(b) Init\n");
      t.print(std::cout);
      std::cout << '\n';
    }

    Json kind_json = Json::object();
    kind_json["points"] = std::move(rows);
    Json avg = Json::object();
    avg["no_time_scaling"] = s_nts.mean();
    avg["time_scaling"] = s_ts.mean();
    avg["ramulator"] = s_ram.mean();
    kind_json["average"] = std::move(avg);
    Json mx = Json::object();
    mx["no_time_scaling"] = s_nts.max();
    mx["time_scaling"] = s_ts.max();
    mx["ramulator"] = s_ram.max();
    kind_json["maximum"] = std::move(mx);
    out[is_copy ? "copy" : "init"] = std::move(kind_json);
  }

  // Per-repetition aggregate: mean Time-Scaling speedup of each kind (the
  // paper's headline "avg" number), across the per-rep synthetic chips.
  for (std::size_t k = 0; k < 2; ++k) {
    std::vector<double> ts_mean;
    for (int rep = 0; rep < opts.iters; ++rep) {
      Summary s;
      for (std::size_t i = 0; i < sizes.size(); ++i) {
        s.add(all[static_cast<std::size_t>(rep) * per_rep + k * sizes.size() + i]
                  .ts);
      }
      ts_mean.push_back(s.mean());
    }
    out[k == 0 ? "copy_ts_mean_per_rep" : "init_ts_mean_per_rep"] =
        rep_metric_json(ts_mean);
  }

  if (opts.verbose) {
    if (!clflush) {
      std::cout
          << "Paper (Fig. 10) avg(max): Copy NoTS 306.7x(423.1x), TS 15.0x(17.4x),\n"
             "Ramulator 27.2x(33.0x); Init NoTS 36.7x(51.3x), TS 1.8x(2.0x),\n"
             "Ramulator 17.3x(21.0x). Shape to check: NoTS >> Ramulator > TS for\n"
             "Copy; the ~20x NoTS/TS skew; Ramulator Init >> TS Init (no fallback\n"
             "or per-operation software cost modeled in Ramulator).\n";
    } else {
      std::cout
          << "Paper (Fig. 11) avg(max): Copy TS 4.04x(6.62x), NoTS 3.1x(4.83x);\n"
             "Init degrades at small sizes (<=256KB TS, <=32KB NoTS) and improves\n"
             "with size. Shape to check: coherence flushes crush small-size\n"
             "benefits; speedups grow with data size.\n";
    }
  }
  return out;
}

Json run_fig10(const RunOptions& opts) { return rowclone_sweep(opts, false); }
Json run_fig11(const RunOptions& opts) { return rowclone_sweep(opts, true); }

// --- ablation_rowclone_interleaving ---------------------------------------

dram::VariationConfig strong_variation(std::uint64_t seed) {
  dram::VariationConfig v;
  v.seed = seed;
  v.min_trcd = Picoseconds{1000};
  v.max_trcd = Picoseconds{1001};
  v.rowclone_pair_success = 1.0;
  return v;
}

Json run_interleaving(const RunOptions& opts) {
  constexpr std::size_t kRows = 256;  // 2 MiB copy.
  struct Point {
    std::int64_t cycles = 0;
    double dram_busy_us = 0;
  };
  ThreadPool pool(opts.threads);
  const auto all = parallel_map(
      pool, static_cast<std::size_t>(opts.iters) * 2, [&](std::size_t task) {
        const bool interleaved = task % 2 == 1;
        const std::uint64_t seed =
            rep_seed(opts, static_cast<int>(task / 2));
        sys::SystemConfig cfg = sys::jetson_nano_time_scaling();
        cfg.variation = strong_variation(seed);
        sys::EasyDramSystem sysm(cfg);
        smc::RowClonePairTester tester(sysm.api(), 4);
        smc::RowCloneAllocator alloc(sysm.api(), sysm.clone_map(), tester);
        const auto plan = interleaved ? alloc.plan_copy_interleaved(kRows)
                                      : alloc.plan_copy(kRows);
        sysm.enable_rowclone();

        workloads::CopyInitParams params;
        params.kind = workloads::CopyInitParams::Kind::kCopy;
        params.use_rowclone = true;
        const smc::LinearMapper mapper(sysm.device().geometry());
        workloads::CopyInitTrace trace(params, mapper, plan, {});
        const cpu::RunResult r = sysm.run(trace);
        Point p;
        p.cycles = r.markers.size() >= 2 ? r.markers.back() - r.markers.front()
                                         : r.cycles;
        p.dram_busy_us = sysm.smc_stats().dram_busy.microseconds();
        return p;
      });

  TextTable t;
  t.set_header({"allocation", "cycles", "DRAM busy (us)"});
  Json rows = Json::array();
  for (std::size_t i = 0; i < 2; ++i) {
    const Point& p = all[i];  // Repetition 0.
    const char* name = i == 1 ? "bank-interleaved" : "bank-sequential";
    t.add_row({name, std::to_string(p.cycles), fmt_fixed(p.dram_busy_us, 1)});
    Json j = Json::object();
    j["allocation"] = name;
    j["cycles"] = p.cycles;
    j["dram_busy_us"] = p.dram_busy_us;
    rows.push_back(std::move(j));
  }
  if (opts.verbose) {
    t.print(std::cout);
    std::cout << "\n(The single-issue MMIO trigger serializes operations, so\n"
                 "interleaving mainly spreads activations; with a batched\n"
                 "trigger interface it would overlap in-DRAM copies.)\n";
  }

  Json out = Json::object();
  out["rows_copied"] = kRows;
  out["allocations"] = std::move(rows);
  // Per-repetition aggregate: sequential-over-interleaved cycle ratio.
  std::vector<double> ratios;
  for (int rep = 0; rep < opts.iters; ++rep) {
    const Point& seq = all[static_cast<std::size_t>(rep) * 2];
    const Point& inter = all[static_cast<std::size_t>(rep) * 2 + 1];
    ratios.push_back(static_cast<double>(seq.cycles) /
                     static_cast<double>(inter.cycles));
  }
  out["seq_over_interleaved_per_rep"] = rep_metric_json(ratios);
  return out;
}

}  // namespace

void register_rowclone_scenarios(ScenarioRegistry& r) {
  r.add({"fig10_rowclone_noflush",
         "RowClone Copy/Init speedup sweep, source data resident (No Flush)",
         "EasyDRAM (DSN 2025), Fig. 10", &run_fig10});
  r.add({"fig11_rowclone_clflush",
         "RowClone Copy/Init speedup sweep with coherence flushes (CLFLUSH)",
         "EasyDRAM (DSN 2025), Fig. 11", &run_fig11});
  r.add({"ablation_rowclone_interleaving",
         "RowClone bank interleaving vs sequential allocation (2 MiB copy)",
         "DESIGN.md ablation A4 (beyond the paper)", &run_interleaving});
}

}  // namespace easydram::cli
