#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "sys/system.hpp"
#include "workloads/copyinit.hpp"

namespace easydram::cli {

/// The v2 measurement contract's reduction of one timed repetition series
/// (see docs/bench.md): the first `warmup` samples are discarded (cold
/// caches, allocator growth, frequency ramp — systematic, not noise), and
/// the summary statistics describe the `measured` remainder. The median is
/// the headline (robust to one-sided noise spikes), `best` is kept for
/// continuity with the v1 best-of-N files, and `cv` (stddev / median) is
/// the stability score the CI gate thresholds.
struct RepStats {
  int warmup = 0;    ///< Samples discarded from the front.
  int measured = 0;  ///< Samples the statistics describe.
  double best = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double p95 = 0.0;
  double stddev = 0.0;
  double cv = 0.0;  ///< stddev / median; 0 when the median is 0.
};

/// Reduces `samples` (warmup series first, measured series after) under
/// the contract above. Throws StatsError when fewer than one measured
/// sample remains or when any sample is non-finite or negative — a bench
/// that produced NaN must fail loudly, not average it away.
RepStats reduce_reps(std::span<const double> samples, int warmup);

/// Prints a figure/table banner matching the paper artifact being
/// regenerated.
void banner(const std::string& title, const std::string& paper_ref);

/// Formats a byte size like the paper's x axes (8K ... 16M).
std::string fmt_size(std::uint64_t bytes);

/// Outcome of one Copy/Init measurement.
struct CopyInitResult {
  Cycles measured_cycles{};  ///< Between the two markers.
  std::int64_t rowclones = 0;
  std::int64_t fallbacks = 0;
};

/// Builds a fresh EasyDRAM system for `cfg`, prepares the RowClone
/// allocation plan (verification runs uncharged, as setup), pre-loads the
/// source/pattern rows, and runs one Copy or Init workload variant.
CopyInitResult run_copyinit_easydram(const sys::SystemConfig& cfg,
                                     workloads::CopyInitParams params,
                                     std::size_t rows, int verify_trials = 8);

/// Execution-time speedup of the RowClone variant over the CPU load/store
/// baseline on an EasyDRAM system (Figs. 10/11 measurement).
double copyinit_speedup_easydram(const sys::SystemConfig& cfg,
                                 workloads::CopyInitParams::Kind kind,
                                 std::size_t rows, bool clflush);

/// The same speedup on the Ramulator-2.0-like software simulator, with its
/// modelling gap (paper footnote 6): every RowClone pair succeeds.
double copyinit_speedup_ramulator(workloads::CopyInitParams::Kind kind,
                                  std::size_t rows, bool clflush);

/// Fig. 2 components of one dependent-load memory request.
struct RequestBreakdown {
  double processing_ns = 0;
  double scheduling_ns = 0;
  double memory_ns = 0;
};

/// One dependent load miss with a fixed instruction preamble, measured on
/// the given system configuration. Components: processing = preamble
/// instructions at the processor's clock; memory = DRAM-interface busy
/// time; scheduling = everything else in the request's latency.
RequestBreakdown measure_request_breakdown(const sys::SystemConfig& cfg,
                                           double clock_hz);

/// Average cycles per load of the lmbench pointer chase over a buffer of
/// `buffer_bytes` (Fig. 8 measurement). Pass count scales inversely with
/// the buffer so cold misses do not dominate small buffers.
double cycles_per_load(const sys::SystemConfig& cfg,
                       std::uint64_t buffer_bytes,
                       std::uint64_t chase_seed = 0x17B);

/// Execution cycles of one named PolyBench kernel on a fresh system.
Cycles run_kernel_cycles(const sys::SystemConfig& cfg,
                         std::string_view kernel);

/// Fig. 13 per-kernel result: tRCD-reduction speedup on EasyDRAM (Bloom-
/// directed, run to completion) and on the Ramulator-2.0-like baseline
/// (per-row profiled values), plus the kernel's memory intensity.
struct TrcdSpeedup {
  double easy = 0;
  double ram = 0;
  double mpkc = 0;  ///< L2 (LLC) misses per kilo-cycle, baseline run.
};

TrcdSpeedup measure_trcd_speedup(std::string_view kernel, std::uint64_t seed);

/// Fig. 14 per-kernel result. `ram_mhz` divides simulated cycles by *host*
/// wall-clock — the one measurement in this repository that reads a real
/// clock, so it is load-dependent and non-deterministic by design.
struct SimSpeed {
  double easy_mhz = 0;
  double ram_mhz = 0;
  double ratio = 0;
};

SimSpeed measure_sim_speed(std::string_view kernel, std::uint64_t seed);

}  // namespace easydram::cli
