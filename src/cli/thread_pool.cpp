#include "cli/thread_pool.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace easydram::cli {

ThreadPool::ThreadPool(int threads) {
  EASYDRAM_EXPECTS(threads >= 1);
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace easydram::cli
