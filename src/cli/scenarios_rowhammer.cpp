// RowHammer scenarios: bitflip-window exposure of aggressor access
// patterns under no mitigation, PARA, and the Graphene-style counter
// tracker, plus the throughput overhead mitigation costs a benign
// workload. Repository extensions beyond the paper's two technique
// families (§7 RowClone, §8 reduced-tRCD): the mitigation subsystem is the
// third "rapidly prototyped maintenance technique" the EasyDRAM pitch
// calls for, and it leans on the same EasyAPI/Bender machinery.

#include <iostream>
#include <string>
#include <vector>

#include "cli/measure.hpp"
#include "cli/scenario.hpp"
#include "cli/thread_pool.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "workloads/hammer.hpp"
#include "workloads/polybench.hpp"

namespace easydram::cli {
namespace {

using smc::mitigation::MitigationKind;

constexpr workloads::HammerPattern kPatterns[] = {
    workloads::HammerPattern::kSingleSided,
    workloads::HammerPattern::kDoubleSided,
    workloads::HammerPattern::kManySided,
};

/// Hammer iterations per kernel. At ~2 ACTs per round on the double-sided
/// victim this builds a four-digit unmitigated exposure in a run short
/// enough for CI, with both mitigations holding a >4x margin below it.
constexpr int kHammerRounds = 1200;

/// PolyBench prefix length and hammer-burst spacing of the blended mix.
constexpr std::size_t kBlendBackgroundRecords = 24000;
constexpr std::size_t kBlendBurstPeriod = 64;

/// The blend's background kernel: trisolv is the shortest PolyBench trace,
/// so the prefix is representative without dominating generation time.
constexpr std::string_view kBlendKernel = "trisolv";

sys::SystemConfig hammer_config(std::uint64_t seed, MitigationKind kind) {
  sys::SystemConfig cfg = sys::jetson_nano_time_scaling();
  cfg.variation.seed = seed;
  cfg.track_row_hammer = true;
  cfg.mitigation.kind = kind;
  // PARA's stream is seeded from the scenario RNG (mixed so it never
  // aliases the synthetic chip's variation stream): deterministic at any
  // --threads value, independent across repetitions.
  cfg.mitigation.seed = hash_mix(seed, 0x4A77E12u);
  return cfg;
}

/// One measured run: exposure, mitigation activity, throughput.
struct HammerOutcome {
  std::int64_t exposure = 0;
  std::int64_t acts_observed = 0;
  std::int64_t triggers = 0;
  std::int64_t neighbor_refreshes = 0;
  std::int64_t requests = 0;
  double wall_us = 0;
};

HammerOutcome run_trace(const sys::SystemConfig& cfg,
                        std::vector<cpu::TraceRecord> records) {
  sys::EasyDramSystem sysm(cfg);
  cpu::VectorTrace trace(std::move(records));
  sysm.run(trace);
  HammerOutcome o;
  o.exposure = sysm.max_hammer_exposure();
  const smc::mitigation::MitigationStats ms = sysm.mitigation_stats();
  o.acts_observed = ms.acts_observed;
  o.triggers = ms.triggers;
  o.neighbor_refreshes = ms.neighbor_refreshes;
  o.requests = sysm.smc_stats().requests_received;
  o.wall_us = sysm.wall().microseconds();
  return o;
}

/// The scenarios' hammer kernels are pure functions of the pattern (the
/// default geometry/mapping, kHammerRounds): generate each once and let
/// every (repetition, policy) run replay a copy.
workloads::HammerParams scenario_hammer_params(workloads::HammerPattern pattern) {
  workloads::HammerParams p;
  p.pattern = pattern;
  p.rounds = kHammerRounds;
  return p;
}

std::vector<cpu::TraceRecord> scenario_hammer_trace(
    workloads::HammerPattern pattern) {
  const sys::SystemConfig cfg = hammer_config(0, MitigationKind::kNone);
  const auto mapper = smc::make_mapper(cfg.mapping, cfg.geometry);
  return workloads::make_hammer_trace(scenario_hammer_params(pattern), *mapper);
}

Json outcome_json(const HammerOutcome& o) {
  Json j = Json::object();
  j["exposure"] = o.exposure;
  j["acts_observed"] = o.acts_observed;
  j["triggers"] = o.triggers;
  j["neighbor_refreshes"] = o.neighbor_refreshes;
  j["requests"] = o.requests;
  j["wall_us"] = o.wall_us;
  j["req_per_us"] = o.wall_us > 0 ? static_cast<double>(o.requests) / o.wall_us
                                  : 0.0;
  return j;
}

/// Shared body of the three per-policy scenarios: every aggressor pattern
/// under one mitigation kind. The headline number is `max_exposure` — the
/// worst bitflip-window exposure any pattern achieved — which the
/// mitigated scenarios must report strictly below the baseline's (pinned
/// by tests/test_mitigation.cpp).
Json run_rowhammer(const RunOptions& opts, MitigationKind kind) {
  std::vector<std::vector<cpu::TraceRecord>> traces;
  traces.reserve(std::size(kPatterns));
  for (const workloads::HammerPattern pattern : kPatterns) {
    traces.push_back(scenario_hammer_trace(pattern));
  }

  ThreadPool pool(opts.threads);
  const std::size_t n_patterns = std::size(kPatterns);
  const auto all = parallel_map(
      pool, static_cast<std::size_t>(opts.iters) * n_patterns,
      [&](std::size_t task) {
        const auto rep = static_cast<int>(task / n_patterns);
        return run_trace(hammer_config(rep_seed(opts, rep), kind),
                         traces[task % n_patterns]);
      });

  TextTable t;
  t.set_header({"Pattern", "exposure (acts)", "neighbor refreshes",
                "requests", "wall (us)", "req/us"});
  Json rows = Json::array();
  for (std::size_t pi = 0; pi < n_patterns; ++pi) {
    const HammerOutcome& o = all[pi];  // Repetition 0 details.
    t.add_row({std::string(workloads::to_string(kPatterns[pi])),
               std::to_string(o.exposure), std::to_string(o.neighbor_refreshes),
               std::to_string(o.requests), fmt_fixed(o.wall_us, 1),
               fmt_fixed(static_cast<double>(o.requests) / o.wall_us, 2)});
    Json j = outcome_json(o);
    j["pattern"] = workloads::to_string(kPatterns[pi]);
    rows.push_back(std::move(j));
  }

  // Headline: the worst exposure over EVERY pattern and repetition (PARA
  // is probabilistic per repetition seed, so a later rep can beat rep 0).
  std::vector<double> exposure_per_rep;
  std::int64_t max_exposure = 0;
  for (int rep = 0; rep < opts.iters; ++rep) {
    std::int64_t m = 0;
    for (std::size_t pi = 0; pi < n_patterns; ++pi) {
      m = std::max(m, all[static_cast<std::size_t>(rep) * n_patterns + pi].exposure);
    }
    exposure_per_rep.push_back(static_cast<double>(m));
    max_exposure = std::max(max_exposure, m);
  }

  if (opts.verbose) {
    t.print(std::cout);
    std::cout << "\nExposure = max activations any victim row absorbed\n"
                 "between two refreshes of that row (the number a RowHammer\n"
                 "threshold is compared against). Mitigated runs must land\n"
                 "far below the unmitigated baseline at a modest\n"
                 "neighbor-refresh cost.\n";
  }

  Json out = Json::object();
  out["mitigation"] = smc::mitigation::to_string(kind);
  out["hammer_rounds"] = kHammerRounds;
  out["patterns"] = std::move(rows);
  out["max_exposure"] = max_exposure;
  out["max_exposure_per_rep"] = rep_metric_json(exposure_per_rep);
  return out;
}

Json run_rowhammer_baseline(const RunOptions& opts) {
  return run_rowhammer(opts, MitigationKind::kNone);
}
Json run_rowhammer_para(const RunOptions& opts) {
  return run_rowhammer(opts, MitigationKind::kPara);
}
Json run_rowhammer_graphene(const RunOptions& opts) {
  return run_rowhammer(opts, MitigationKind::kGraphene);
}

// --- mitigation_overhead --------------------------------------------------

constexpr MitigationKind kKinds[] = {
    MitigationKind::kNone,
    MitigationKind::kPara,
    MitigationKind::kGraphene,
};

struct OverheadOutcome {
  HammerOutcome hammer;  ///< Pure double-sided hammer (worst case for cost).
  HammerOutcome blend;   ///< Hammer bursts inside a PolyBench prefix.
};

/// Wall-time cost of running each policy, on the pure attack loop and on
/// the blended attacker+application mix, against the unmitigated run of
/// the identical trace.
Json run_mitigation_overhead(const RunOptions& opts) {
  // Both traces are seed-independent (PolyBench generators are
  // parameterless, the hammer kernel is a pure function of the pattern);
  // build each once and let every (repetition, policy) run copy it.
  const std::vector<cpu::TraceRecord> hammer =
      scenario_hammer_trace(workloads::HammerPattern::kDoubleSided);
  const std::vector<cpu::TraceRecord> kernel =
      workloads::generate_kernel(kBlendKernel);
  const std::span<const cpu::TraceRecord> background(
      kernel.data(), std::min(kBlendBackgroundRecords, kernel.size()));
  const std::vector<cpu::TraceRecord> blend = [&] {
    const sys::SystemConfig cfg = hammer_config(0, MitigationKind::kNone);
    const auto mapper = smc::make_mapper(cfg.mapping, cfg.geometry);
    return workloads::make_hammer_blend(
        scenario_hammer_params(workloads::HammerPattern::kDoubleSided), *mapper,
        background, kBlendBurstPeriod);
  }();

  ThreadPool pool(opts.threads);
  const std::size_t n_kinds = std::size(kKinds);
  const auto all = parallel_map(
      pool, static_cast<std::size_t>(opts.iters) * n_kinds,
      [&](std::size_t task) {
        const auto rep = static_cast<int>(task / n_kinds);
        const MitigationKind kind = kKinds[task % n_kinds];
        const std::uint64_t seed = rep_seed(opts, rep);
        OverheadOutcome o;
        o.hammer = run_trace(hammer_config(seed, kind), hammer);
        o.blend = run_trace(hammer_config(seed, kind), blend);
        return o;
      });

  TextTable t;
  t.set_header({"Mitigation", "hammer exposure", "hammer overhead",
                "blend overhead", "neighbor refreshes"});
  Json rows = Json::array();
  const double base_hammer_us = all[0].hammer.wall_us;
  const double base_blend_us = all[0].blend.wall_us;
  for (std::size_t ki = 0; ki < n_kinds; ++ki) {
    const OverheadOutcome& o = all[ki];  // Repetition 0 details.
    const double hammer_over = o.hammer.wall_us / base_hammer_us - 1.0;
    const double blend_over = o.blend.wall_us / base_blend_us - 1.0;
    t.add_row({std::string(smc::mitigation::to_string(kKinds[ki])),
               std::to_string(o.hammer.exposure),
               fmt_fixed(hammer_over * 100.0, 2) + "%",
               fmt_fixed(blend_over * 100.0, 2) + "%",
               std::to_string(o.hammer.neighbor_refreshes +
                              o.blend.neighbor_refreshes)});
    Json j = Json::object();
    j["mitigation"] = smc::mitigation::to_string(kKinds[ki]);
    j["hammer"] = outcome_json(o.hammer);
    j["blend"] = outcome_json(o.blend);
    j["hammer_overhead_pct"] = hammer_over * 100.0;
    j["blend_overhead_pct"] = blend_over * 100.0;
    rows.push_back(std::move(j));
  }

  // Per-repetition aggregate: PARA's blended-workload overhead, the number
  // a deployment decision would hinge on.
  std::vector<double> para_blend_overhead;
  for (int rep = 0; rep < opts.iters; ++rep) {
    const std::size_t base = static_cast<std::size_t>(rep) * n_kinds;
    para_blend_overhead.push_back(
        (all[base + 1].blend.wall_us / all[base].blend.wall_us - 1.0) * 100.0);
  }

  if (opts.verbose) {
    t.print(std::cout);
    std::cout << "\nOverhead = extra FPGA wall time vs the unmitigated run\n"
                 "of the identical trace. The pure hammer loop is the\n"
                 "worst case (every ACT is observable attack traffic); the\n"
                 "blend shows what a benign application pays.\n";
  }

  Json out = Json::object();
  out["hammer_rounds"] = kHammerRounds;
  out["blend_kernel"] = kBlendKernel;
  out["blend_background_records"] =
      static_cast<std::int64_t>(background.size());
  out["blend_burst_period"] = static_cast<std::int64_t>(kBlendBurstPeriod);
  out["kinds"] = std::move(rows);
  out["para_blend_overhead_pct_per_rep"] = rep_metric_json(para_blend_overhead);
  return out;
}

}  // namespace

void register_rowhammer_scenarios(ScenarioRegistry& r) {
  r.add({"rowhammer_baseline",
         "Bitflip-window exposure of hammer patterns, no mitigation",
         "EasyDRAM (DSN 2025), extension beyond §7-§8",
         &run_rowhammer_baseline});
  r.add({"rowhammer_para",
         "Hammer exposure under the PARA probabilistic mitigator",
         "EasyDRAM (DSN 2025), extension beyond §7-§8", &run_rowhammer_para});
  r.add({"rowhammer_graphene",
         "Hammer exposure under the Graphene-style counter tracker",
         "EasyDRAM (DSN 2025), extension beyond §7-§8",
         &run_rowhammer_graphene});
  r.add({"mitigation_overhead",
         "Throughput cost of PARA/Graphene vs the unmitigated baseline",
         "EasyDRAM (DSN 2025), extension beyond §7-§8",
         &run_mitigation_overhead});
}

}  // namespace easydram::cli
