#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "cli/json.hpp"
#include "cli/scenario.hpp"

namespace easydram::cli {

/// Options of the host-performance harness (`easydram_cli --perf`). The
/// shared RunOptions supply the seed and the memory-system shape; the
/// harness-specific knobs bound how long a run takes so CI can use a short
/// budget while perf investigations use a long one.
struct PerfOptions {
  RunOptions run;
  int reps = 3;  ///< Measured repetitions per bench (median is the headline).
  /// Warmup repetitions run and timed before the measured ones but
  /// excluded from every statistic (cold caches, allocator growth — the
  /// systematic first-run cost the v2 contract discards; see docs/bench.md).
  int warmup = 1;
  /// Multiplier on the micro benches' iteration budgets. The
  /// scenario-wrapped benches (fig14_sim_speed, channel_scaling) always
  /// run their full scenario — a partial scenario would not measure the
  /// artifact the bench is named after; use --scenario to skip them when
  /// a short run matters more than coverage.
  double scale = 1.0;
  std::vector<std::string> only;  ///< Bench-name filter; empty = all.
};

/// One bench's timed outcome.
struct PerfBenchOutcome {
  std::string name;
  std::string summary;
  std::int64_t work_items = 0;  ///< Requests driven per rep (0 = untracked).
  /// One entry per repetition: the first `warmup` entries are the warmup
  /// runs, the rest are the measured series RepStats reduces.
  std::vector<double> host_seconds;
  int warmup = 0;      ///< Leading warmup entries in host_seconds.
  bool finite = true;  ///< All measurements were positive and finite.
  /// Bench-specific structured payload (null unless the bench provides
  /// one). channel_parallel_scaling reports its worker-count sweep here:
  /// timings at 1/2/4/8 pump workers, speedup-vs-1, and the `threads` /
  /// `host_cores` metadata that makes the numbers interpretable across
  /// machines.
  Json detail;
};

/// Runs the registered host-performance benches (micro read/write bursts,
/// fig14_sim_speed, channel_scaling) and returns their outcomes. Throws on
/// an unknown name in `opts.only`.
std::vector<PerfBenchOutcome> run_perf_benches(const PerfOptions& opts);

/// Wraps outcomes in the machine-readable BENCH_results.json document
/// (schema "easydram-bench-v2" — see docs/bench.md): every bench carries
/// the warmup-discarded RepStats reduction (median/p95/stddev/CV, best
/// kept for v1 continuity) and the document records host-core metadata so
/// tools/check_bench.py can skip cross-host median comparisons.
Json perf_results_json(const PerfOptions& opts,
                       const std::vector<PerfBenchOutcome>& outcomes);

/// Prints the human-readable summary table.
void print_perf_table(std::ostream& os,
                      const std::vector<PerfBenchOutcome>& outcomes);

/// Lists the registered perf benches (name + summary), one per line.
void list_perf_benches(std::ostream& os);

}  // namespace easydram::cli
