#include "cli/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "common/contracts.hpp"

namespace easydram::cli {

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_double(std::ostream& os, double d) {
  // Non-finite values are not representable in JSON; the stats layer
  // upstream rejects them, so reaching here means a scenario leaked one.
  if (!std::isfinite(d)) {
    os << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  // Round-trippable shortest-ish form: prefer %.15g when it round-trips.
  char short_buf[32];
  std::snprintf(short_buf, sizeof short_buf, "%.15g", d);
  if (std::strtod(short_buf, nullptr) == d) {
    os << short_buf;
  } else {
    os << buf;
  }
}

void pad(std::ostream& os, int depth) {
  for (int i = 0; i < 2 * depth; ++i) os << ' ';
}

}  // namespace

Json::Json(std::uint64_t u) {
  EASYDRAM_EXPECTS(u <= static_cast<std::uint64_t>(INT64_MAX));
  value_ = static_cast<std::int64_t>(u);
}

Json& Json::operator[](const std::string& key) {
  if (std::holds_alternative<std::nullptr_t>(value_)) value_ = Object{};
  EASYDRAM_EXPECTS(is_object());
  auto& obj = std::get<Object>(value_);
  for (auto& [k, v] : obj) {
    if (k == key) return v;
  }
  obj.emplace_back(key, Json());
  return obj.back().second;
}

void Json::push_back(Json v) {
  if (std::holds_alternative<std::nullptr_t>(value_)) value_ = Array{};
  EASYDRAM_EXPECTS(is_array());
  std::get<Array>(value_).push_back(std::move(v));
}

std::size_t Json::size() const {
  if (is_array()) return std::get<Array>(value_).size();
  if (is_object()) return std::get<Object>(value_).size();
  return 0;
}

void Json::dump(std::ostream& os, int indent) const {
  if (std::holds_alternative<std::nullptr_t>(value_)) {
    os << "null";
  } else if (const bool* b = std::get_if<bool>(&value_)) {
    os << (*b ? "true" : "false");
  } else if (const double* d = std::get_if<double>(&value_)) {
    write_double(os, *d);
  } else if (const std::int64_t* i = std::get_if<std::int64_t>(&value_)) {
    os << *i;
  } else if (const std::string* s = std::get_if<std::string>(&value_)) {
    write_escaped(os, *s);
  } else if (const Array* a = std::get_if<Array>(&value_)) {
    if (a->empty()) {
      os << "[]";
      return;
    }
    os << "[\n";
    for (std::size_t k = 0; k < a->size(); ++k) {
      pad(os, indent + 1);
      (*a)[k].dump(os, indent + 1);
      os << (k + 1 < a->size() ? ",\n" : "\n");
    }
    pad(os, indent);
    os << ']';
  } else if (const Object* o = std::get_if<Object>(&value_)) {
    if (o->empty()) {
      os << "{}";
      return;
    }
    os << "{\n";
    for (std::size_t k = 0; k < o->size(); ++k) {
      pad(os, indent + 1);
      write_escaped(os, (*o)[k].first);
      os << ": ";
      (*o)[k].second.dump(os, indent + 1);
      os << (k + 1 < o->size() ? ",\n" : "\n");
    }
    pad(os, indent);
    os << '}';
  }
}

std::string Json::dump_string() const {
  std::ostringstream os;
  dump(os);
  os << '\n';
  return os.str();
}

}  // namespace easydram::cli
