// Host-performance harness: times the throughput-sensitive paths of the
// simulator on the *host* clock. These are the only measurements in the
// repository (besides fig14's Ramulator column) that read a real clock —
// they quantify how fast the simulation itself runs, not anything the
// paper models, and they exist so every PR can diff BENCH_results.json
// against its predecessor.

#include "cli/perf.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <stdexcept>
#include <thread>

#include "cli/measure.hpp"
#include "common/contracts.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "sys/system.hpp"

namespace easydram::cli {
namespace {

std::int64_t scaled(const PerfOptions& opts, std::int64_t budget) {
  const auto n = static_cast<std::int64_t>(
      static_cast<double>(budget) * opts.scale);
  return std::max<std::int64_t>(n, 1);
}

sys::SystemConfig harness_config(const PerfOptions& opts) {
  sys::SystemConfig cfg = sys::jetson_nano_time_scaling();
  cfg.variation.seed = opts.run.seed;
  cfg.geometry.channels = opts.run.channels;
  cfg.geometry.ranks_per_channel = opts.run.ranks;
  cfg.mapping = opts.run.mapping;
  return cfg;
}

/// Drives `n` independent stride-64 requests straight into the memory
/// backend (no core model in the way) and waits for every completion —
/// the request-lifecycle hot path: submit, FIFO, request table, scheduler,
/// batch drain, response ring. Returns the requests driven.
std::int64_t micro_burst(const PerfOptions& opts, bool writes) {
  sys::EasyDramSystem sysm(harness_config(opts));
  const std::int64_t n = scaled(opts, 16384);
  std::vector<std::uint64_t> ids;
  ids.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const auto addr = static_cast<std::uint64_t>(i) * 64;
    const auto now = 100 + i;
    ids.push_back(writes ? sysm.submit_write(addr, now)
                         : sysm.submit_read(addr, now));
  }
  for (const std::uint64_t id : ids) sysm.wait(id);
  return n;
}

std::int64_t micro_read_burst(const PerfOptions& opts) {
  return micro_burst(opts, /*writes=*/false);
}

std::int64_t micro_write_burst(const PerfOptions& opts) {
  return micro_burst(opts, /*writes=*/true);
}

/// Dependent (pointer-chase-style) reads: one outstanding request at a
/// time, so per-request overhead — not batching — dominates. This is the
/// pattern the fig8/fig14 workloads drive through the core model.
std::int64_t micro_dependent_reads(const PerfOptions& opts) {
  sys::EasyDramSystem sysm(harness_config(opts));
  const std::int64_t n = scaled(opts, 4096);
  std::int64_t now = 100;
  for (std::int64_t i = 0; i < n; ++i) {
    // Stride one row (8 KiB) so every access opens a fresh row.
    const auto addr = static_cast<std::uint64_t>(i) * 8192;
    now = sysm.wait(sysm.submit_read(addr, now)).release_cycle + 1;
  }
  return n;
}

/// Scenario-wrapped benches: run the registered scenario quietly and time
/// the whole run. `fig14_sim_speed` is the paper's simulation-speed study
/// (EasyDRAM model + Ramulator baseline, PolyBench kernels end to end);
/// `channel_scaling` sweeps the multi-channel subsystem, where most pumped
/// channels are idle and the idle-channel fast path pays off.
std::int64_t scenario_bench(std::string_view name, const PerfOptions& opts,
                            std::uint32_t channels) {
  const Scenario* s = ScenarioRegistry::instance().find(name);
  EASYDRAM_EXPECTS(s != nullptr);
  RunOptions quiet = opts.run;
  quiet.verbose = false;
  quiet.iters = 1;
  quiet.threads = 1;
  quiet.channels = std::max(quiet.channels, channels);
  run_scenario(*s, quiet);
  return 0;
}

std::int64_t fig14_bench(const PerfOptions& opts) {
  return scenario_bench("fig14_sim_speed", opts, 1);
}

std::int64_t channel_scaling_bench(const PerfOptions& opts) {
  return scenario_bench("channel_scaling", opts, 8);
}

std::int64_t mitigation_overhead_bench(const PerfOptions& opts) {
  return scenario_bench("mitigation_overhead", opts, 1);
}

std::int64_t raidr_refresh_bench(const PerfOptions& opts) {
  return scenario_bench("raidr_baseline", opts, 1);
}

std::int64_t stream_sweep_bench(const PerfOptions& opts) {
  return scenario_bench("stream_sweep", opts, 1);
}

std::int64_t latency_sweep_bench(const PerfOptions& opts) {
  return scenario_bench("latency_sweep", opts, 1);
}

double now_seconds();

/// The channel-parallel scaling workload: an independent stride-64 read
/// burst over >= 8 channels with the channel-interleaved mapping, FIFOs
/// deep enough that the submit path rarely back-pressures — so the run is
/// dominated by long completion-drain phases, the shape the epoch
/// scheduler shards across pump workers.
sys::SystemConfig parallel_scaling_config(const PerfOptions& opts,
                                          unsigned workers) {
  sys::SystemConfig cfg = harness_config(opts);
  cfg.geometry.channels = std::max<std::uint32_t>(opts.run.channels, 8);
  cfg.mapping = smc::MappingKind::kChannelInterleaved;
  cfg.tile.incoming_fifo_depth = 512;
  cfg.pump_workers = workers;
  return cfg;
}

std::int64_t parallel_scaling_burst(const PerfOptions& opts, unsigned workers) {
  sys::EasyDramSystem sysm(parallel_scaling_config(opts, workers));
  const std::int64_t n = scaled(opts, 16384);
  std::vector<std::uint64_t> ids;
  ids.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    ids.push_back(
        sysm.submit_read(static_cast<std::uint64_t>(i) * 64, 100 + i));
  }
  for (const std::uint64_t id : ids) sysm.wait(id);
  return n;
}

std::int64_t channel_parallel_scaling_run(const PerfOptions& opts) {
  return parallel_scaling_burst(opts, 1);
}

/// Error-pipeline host overhead: a stride-64 write-then-read burst with
/// SEC-DED ECC and patrol scrub enabled. The write half exercises the
/// encoder (check-bit fabrication per line), the read half the decoder and
/// the CE/UE classification; patrol scrub rides every refresh slot the run
/// consumes. `detail` re-times the identical burst with the pipeline
/// disabled (the default-off path every other bench measures) and reports
/// the relative overhead docs/bench.md tracks.
std::int64_t ecc_rw_burst(const PerfOptions& opts, bool ecc,
                          Picoseconds* wall = nullptr) {
  sys::SystemConfig cfg = harness_config(opts);
  cfg.ecc.enabled = ecc;
  cfg.ecc.scrub = ecc;
  sys::EasyDramSystem sysm(cfg);
  const std::int64_t n = scaled(opts, 8192);
  std::vector<std::uint64_t> ids;
  ids.reserve(static_cast<std::size_t>(2 * n));
  for (std::int64_t i = 0; i < n; ++i) {
    ids.push_back(
        sysm.submit_write(static_cast<std::uint64_t>(i) * 64, 100 + i));
  }
  for (std::int64_t i = 0; i < n; ++i) {
    ids.push_back(
        sysm.submit_read(static_cast<std::uint64_t>(i) * 64, 100 + n + i));
  }
  for (const std::uint64_t id : ids) sysm.wait(id);
  if (wall != nullptr) *wall = sysm.wall();
  return 2 * n;
}

std::int64_t ecc_scrub_overhead_run(const PerfOptions& opts) {
  return ecc_rw_burst(opts, /*ecc=*/true);
}

Json ecc_scrub_overhead_detail(const PerfOptions& opts) {
  Json d = Json::object();
  d["requests"] = 2 * scaled(opts, 8192);
  double ecc_best = 0.0;
  double base_best = 0.0;
  for (const bool ecc : {true, false}) {
    Json secs = Json::array();
    double best = 0.0;
    for (int rep = 0; rep < opts.reps; ++rep) {
      const double t0 = now_seconds();
      ecc_rw_burst(opts, ecc);
      const double dt = now_seconds() - t0;
      secs.push_back(dt);
      if (best == 0.0 || dt < best) best = dt;
    }
    d[ecc ? "ecc_host_seconds_per_rep" : "baseline_host_seconds_per_rep"] =
        std::move(secs);
    d[ecc ? "ecc_host_seconds_best" : "baseline_host_seconds_best"] = best;
    (ecc ? ecc_best : base_best) = best;
  }
  d["overhead_percent"] =
      base_best > 0.0 ? (ecc_best - base_best) / base_best * 100.0 : 0.0;
  // Modeled (emulated-time) cost of the pipeline — deterministic, unlike
  // the host timings: the extra emulated cycles ECC charges and scrub
  // slots add to the same burst.
  Picoseconds ecc_wall{};
  Picoseconds base_wall{};
  ecc_rw_burst(opts, /*ecc=*/true, &ecc_wall);
  ecc_rw_burst(opts, /*ecc=*/false, &base_wall);
  d["ecc_emulated_ps"] = ecc_wall.count;
  d["baseline_emulated_ps"] = base_wall.count;
  d["emulated_overhead_percent"] =
      base_wall.count > 0
          ? static_cast<double>(ecc_wall.count - base_wall.count) /
                static_cast<double>(base_wall.count) * 100.0
          : 0.0;
  return d;
}

/// QoS-scheduler host overhead: the same 4-stream tagged read burst driven
/// through each scheduling policy. Stream-aware policies walk the request
/// table with per-stream bookkeeping (blacklists, service ranks, cluster
/// windows) on every pick, and per-stream latency tracking is on — this
/// bench prices that host-side cost against the stock FR-FCFS pick loop.
std::int64_t qos_sched_burst(const PerfOptions& opts,
                             smc::SchedulerKind kind) {
  sys::SystemConfig cfg = harness_config(opts);
  cfg.sched = kind;
  cfg.track_stream_latency = true;
  sys::EasyDramSystem sysm(cfg);
  const std::int64_t n = scaled(opts, 16384);
  std::vector<std::uint64_t> ids;
  ids.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    sysm.set_stream(static_cast<std::uint32_t>(i % 4));
    ids.push_back(
        sysm.submit_read(static_cast<std::uint64_t>(i) * 64, 100 + i));
  }
  for (const std::uint64_t id : ids) sysm.wait(id);
  return n;
}

std::int64_t qos_scheduler_overhead_run(const PerfOptions& opts) {
  // Headline timing: TCM, the policy with the most per-pick bookkeeping.
  return qos_sched_burst(opts, smc::SchedulerKind::kTcm);
}

Json qos_scheduler_overhead_detail(const PerfOptions& opts) {
  Json d = Json::object();
  d["requests"] = scaled(opts, 16384);
  d["streams"] = 4;
  double frfcfs_best = 0.0;
  Json points = Json::array();
  for (const smc::SchedulerKind kind :
       {smc::SchedulerKind::kFrfcfs, smc::SchedulerKind::kParbs,
        smc::SchedulerKind::kBliss, smc::SchedulerKind::kAtlas,
        smc::SchedulerKind::kTcm}) {
    Json secs = Json::array();
    double best = 0.0;
    for (int rep = 0; rep < opts.reps; ++rep) {
      const double t0 = now_seconds();
      qos_sched_burst(opts, kind);
      const double dt = now_seconds() - t0;
      secs.push_back(dt);
      if (best == 0.0 || dt < best) best = dt;
    }
    if (kind == smc::SchedulerKind::kFrfcfs) frfcfs_best = best;
    Json p = Json::object();
    p["sched"] = smc::to_string(kind);
    p["host_seconds_per_rep"] = std::move(secs);
    p["host_seconds_best"] = best;
    p["overhead_vs_frfcfs_percent"] =
        frfcfs_best > 0.0 ? (best - frfcfs_best) / frfcfs_best * 100.0 : 0.0;
    points.push_back(std::move(p));
  }
  d["points"] = std::move(points);
  return d;
}

/// Worker-count sweep for the scaling bench. The headline timing fields
/// cover the 1-worker run (comparable to every other bench); this payload
/// adds the 1/2/4/8-worker sweep with speedup-vs-1 plus the host metadata
/// (`threads`, `host_cores`) that decides whether a speedup is physically
/// possible on the measuring machine at all.
Json channel_parallel_scaling_detail(const PerfOptions& opts) {
  Json d = Json::object();
  d["threads"] = opts.run.threads;
  d["host_cores"] =
      static_cast<std::int64_t>(std::thread::hardware_concurrency());
  d["channels"] = static_cast<std::int64_t>(
      std::max<std::uint32_t>(opts.run.channels, 8));
  d["requests"] = scaled(opts, 16384);
  Json points = Json::array();
  double base_best = 0.0;
  for (const unsigned workers : {1u, 2u, 4u, 8u}) {
    Json secs = Json::array();
    double best = 0.0;
    for (int rep = 0; rep < opts.reps; ++rep) {
      const double t0 = now_seconds();
      parallel_scaling_burst(opts, workers);
      const double dt = now_seconds() - t0;
      secs.push_back(dt);
      if (best == 0.0 || dt < best) best = dt;
    }
    if (workers == 1) base_best = best;
    Json p = Json::object();
    p["workers"] = static_cast<std::int64_t>(workers);
    p["host_seconds_per_rep"] = std::move(secs);
    p["host_seconds_best"] = best;
    p["speedup_vs_1"] = best > 0.0 ? base_best / best : 0.0;
    points.push_back(std::move(p));
  }
  d["points"] = std::move(points);
  return d;
}

struct PerfBench {
  std::string_view name;
  std::string_view summary;
  std::int64_t (*run)(const PerfOptions&);
  /// Optional structured side-measurement attached to the bench's JSON as
  /// `detail` (null for benches without one).
  Json (*detail)(const PerfOptions&) = nullptr;
};

constexpr PerfBench kBenches[] = {
    {"micro_read_burst",
     "16384 independent stride-64 reads through submit/wait", &micro_read_burst},
    {"micro_write_burst",
     "16384 independent stride-64 writes through submit/wait",
     &micro_write_burst},
    {"micro_dependent_reads",
     "4096 dependent row-miss reads, one outstanding at a time",
     &micro_dependent_reads},
    {"fig14_sim_speed",
     "Full fig14_sim_speed scenario (PolyBench on EasyDRAM + Ramulator)",
     &fig14_bench},
    {"channel_scaling",
     "Full channel_scaling scenario at >= 8 channels", &channel_scaling_bench},
    {"channel_parallel_scaling",
     "8-channel interleaved burst at 1/2/4/8 channel-pump workers",
     &channel_parallel_scaling_run, &channel_parallel_scaling_detail},
    {"ecc_scrub_overhead",
     "Write+read burst with SEC-DED ECC and patrol scrub vs default-off",
     &ecc_scrub_overhead_run, &ecc_scrub_overhead_detail},
    {"mitigation_overhead",
     "Full mitigation_overhead scenario (hammer + blend under PARA/Graphene)",
     &mitigation_overhead_bench},
    {"raidr_refresh",
     "Full raidr_baseline scenario (REF savings of retention-aware refresh)",
     &raidr_refresh_bench},
    {"qos_scheduler_overhead",
     "4-stream tagged read burst under each QoS policy vs FR-FCFS",
     &qos_scheduler_overhead_run, &qos_scheduler_overhead_detail},
    {"stream_sweep",
     "Full stream_sweep scenario (STREAM kernels across 8 working sets)",
     &stream_sweep_bench},
    {"latency_sweep",
     "Full latency_sweep scenario (pointer chase across 8 working sets)",
     &latency_sweep_bench},
};

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::vector<PerfBenchOutcome> run_perf_benches(const PerfOptions& opts) {
  EASYDRAM_EXPECTS(opts.reps >= 1);
  EASYDRAM_EXPECTS(opts.warmup >= 0);
  for (const std::string& name : opts.only) {
    const bool known = std::any_of(
        std::begin(kBenches), std::end(kBenches),
        [&name](const PerfBench& b) { return b.name == name; });
    if (!known) throw std::runtime_error("unknown perf bench: " + name);
  }

  std::vector<PerfBenchOutcome> outcomes;
  for (const PerfBench& b : kBenches) {
    if (!opts.only.empty() &&
        std::find(opts.only.begin(), opts.only.end(), b.name) ==
            opts.only.end()) {
      continue;
    }
    PerfBenchOutcome o;
    o.name = std::string(b.name);
    o.summary = std::string(b.summary);
    o.warmup = opts.warmup;
    for (int rep = 0; rep < opts.warmup + opts.reps; ++rep) {
      const double t0 = now_seconds();
      o.work_items = b.run(opts);
      const double dt = now_seconds() - t0;
      o.host_seconds.push_back(dt);
      o.finite = o.finite && std::isfinite(dt) && dt > 0.0;
    }
    if (b.detail != nullptr) o.detail = b.detail(opts);
    outcomes.push_back(std::move(o));
  }
  return outcomes;
}

Json perf_results_json(const PerfOptions& opts,
                       const std::vector<PerfBenchOutcome>& outcomes) {
  Json doc = Json::object();
  doc["schema"] = "easydram-bench-v2";
  doc["generator"] = "easydram_cli --perf";
  doc["reps"] = opts.reps;
  doc["warmup_reps"] = opts.warmup;
  doc["scale"] = opts.scale;
  doc["seed"] = static_cast<std::int64_t>(opts.run.seed);
  doc["host_cores"] =
      static_cast<std::int64_t>(std::thread::hardware_concurrency());
  bool all_finite = true;

  Json benches = Json::array();
  for (const PerfBenchOutcome& o : outcomes) {
    Json j = Json::object();
    j["name"] = o.name;
    j["summary"] = o.summary;
    j["work_items"] = o.work_items;
    // The warmup series is recorded for transparency but excluded from
    // every statistic; host_seconds_per_rep keeps its v1 meaning (the
    // measured series only).
    const auto wu = static_cast<std::size_t>(
        std::min<std::size_t>(static_cast<std::size_t>(o.warmup),
                              o.host_seconds.size()));
    Json warm = Json::array();
    for (std::size_t i = 0; i < wu; ++i) warm.push_back(o.host_seconds[i]);
    j["warmup_host_seconds"] = std::move(warm);
    Json secs = Json::array();
    for (std::size_t i = wu; i < o.host_seconds.size(); ++i) {
      secs.push_back(o.host_seconds[i]);
    }
    j["host_seconds_per_rep"] = std::move(secs);
    if (o.finite && o.host_seconds.size() > wu) {
      const RepStats r = reduce_reps(o.host_seconds, static_cast<int>(wu));
      j["host_seconds_best"] = r.best;
      j["host_seconds_mean"] = r.mean;
      j["host_seconds_median"] = r.median;
      j["host_seconds_p95"] = r.p95;
      j["host_seconds_stddev"] = r.stddev;
      j["cv"] = r.cv;
      if (o.work_items > 0 && r.median > 0.0) {
        j["requests_per_second_median"] =
            static_cast<double>(o.work_items) / r.median;
      }
      if (o.work_items > 0 && r.best > 0.0) {
        j["requests_per_second_best"] =
            static_cast<double>(o.work_items) / r.best;
      }
    }
    if (o.detail.is_object()) j["detail"] = o.detail;
    j["finite"] = o.finite;
    all_finite = all_finite && o.finite;
    benches.push_back(std::move(j));
  }
  doc["benches"] = std::move(benches);
  // Crash-free and every measurement finite/positive. tools/check_bench.py
  // additionally validates the schema, thresholds each bench's CV, and
  // compares medians against a same-host baseline.
  doc["all_finite"] = all_finite;
  return doc;
}

void print_perf_table(std::ostream& os,
                      const std::vector<PerfBenchOutcome>& outcomes) {
  TextTable t;
  t.set_header(
      {"Bench", "median (s)", "best (s)", "cv", "reqs", "req/s (median)"});
  for (const PerfBenchOutcome& o : outcomes) {
    const auto wu = std::min<std::size_t>(static_cast<std::size_t>(o.warmup),
                                          o.host_seconds.size());
    if (!o.finite || o.host_seconds.size() <= wu) {
      t.add_row({o.name, "-", "-", "-",
                 o.work_items > 0 ? std::to_string(o.work_items) : "-", "-"});
      continue;
    }
    const RepStats r = reduce_reps(o.host_seconds, static_cast<int>(wu));
    const double rps =
        o.work_items > 0 && r.median > 0.0
            ? static_cast<double>(o.work_items) / r.median
            : 0.0;
    t.add_row({o.name, fmt_fixed(r.median, 4), fmt_fixed(r.best, 4),
               fmt_fixed(r.cv, 3),
               o.work_items > 0 ? std::to_string(o.work_items) : "-",
               rps > 0.0 ? fmt_fixed(rps, 0) : "-"});
  }
  t.print(os);
  os << "\nHost-clock measurements: load-dependent by design. Warmup reps\n"
        "are discarded; the median is the headline and cv = stddev/median\n"
        "is the stability score tools/check_bench.py thresholds. Cross-PR\n"
        "comparisons should use the same machine (see docs/bench.md).\n";
}

void list_perf_benches(std::ostream& os) {
  for (const PerfBench& b : kBenches) {
    os << b.name << "\n    " << b.summary << "\n";
  }
}

}  // namespace easydram::cli
