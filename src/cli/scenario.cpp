#include "cli/scenario.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>

#include "cli/measure.hpp"
#include "cli/perf.hpp"
#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace easydram::cli {

// Registration hooks, one per scenario translation unit (see the
// scenarios_*.cpp files). Called explicitly from the registry constructor
// so a static-library link cannot drop them.
void register_system_scenarios(ScenarioRegistry& r);
void register_rowclone_scenarios(ScenarioRegistry& r);
void register_trcd_scenarios(ScenarioRegistry& r);
void register_validation_scenarios(ScenarioRegistry& r);
void register_memsys_scenarios(ScenarioRegistry& r);
void register_rowhammer_scenarios(ScenarioRegistry& r);
void register_refresh_scenarios(ScenarioRegistry& r);
void register_faults_scenarios(ScenarioRegistry& r);
void register_qos_scenarios(ScenarioRegistry& r);
void register_streamsweep_scenarios(ScenarioRegistry& r);

std::uint64_t rep_seed(const RunOptions& opts, int rep) {
  EASYDRAM_EXPECTS(rep >= 0);
  return rep == 0 ? opts.seed
                  : hash_mix(opts.seed, static_cast<std::uint64_t>(rep));
}

Json rep_metric_json(std::span<const double> per_rep) {
  Json j = Json::object();
  Json values = Json::array();
  for (double v : per_rep) values.push_back(v);
  j["per_rep"] = std::move(values);
  j["mean"] = mean(per_rep);
  j["stddev"] = stddev(per_rep);
  j["p50"] = p50(per_rep);
  j["p95"] = p95(per_rep);
  return j;
}

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry registry;
  return registry;
}

ScenarioRegistry::ScenarioRegistry() {
  register_system_scenarios(*this);
  register_rowclone_scenarios(*this);
  register_trcd_scenarios(*this);
  register_validation_scenarios(*this);
  register_memsys_scenarios(*this);
  register_rowhammer_scenarios(*this);
  register_refresh_scenarios(*this);
  register_faults_scenarios(*this);
  register_qos_scenarios(*this);
  register_streamsweep_scenarios(*this);
  std::sort(scenarios_.begin(), scenarios_.end(),
            [](const Scenario& a, const Scenario& b) { return a.name < b.name; });
}

void ScenarioRegistry::add(const Scenario& s) {
  EASYDRAM_EXPECTS(s.run != nullptr && !s.name.empty());
  EASYDRAM_EXPECTS(find(s.name) == nullptr);
  scenarios_.push_back(s);
}

const Scenario* ScenarioRegistry::find(std::string_view name) const {
  for (const Scenario& s : scenarios_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

Json run_scenario(const Scenario& s, const RunOptions& opts) {
  if (opts.verbose) banner(std::string(s.summary), std::string(s.paper_ref));
  Json j = Json::object();
  j["scenario"] = s.name;
  j["paper_ref"] = s.paper_ref;
  j["seed"] = static_cast<std::int64_t>(opts.seed);
  j["iters"] = opts.iters;
  j["threads"] = opts.threads;
  j["channels"] = static_cast<std::int64_t>(opts.channels);
  j["ranks"] = static_cast<std::int64_t>(opts.ranks);
  j["mapping"] = smc::to_string(opts.mapping);
  // Only when forced: the key's absence keeps pre---sched run documents
  // (and their golden hashes) byte-identical.
  if (opts.sched.has_value()) j["sched"] = smc::to_string(*opts.sched);
  j["results"] = s.run(opts);
  return j;
}

namespace {

struct ParsedArgs {
  RunOptions opts;
  std::vector<std::string> scenarios;
  std::string out_path;
  bool list = false;
  bool help = false;
  bool perf = false;
  int perf_reps = 3;
  int perf_warmup = 1;
  double perf_scale = 1.0;
  std::string error;
};

std::optional<long long> parse_int(const char* text) {
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 0);
  if (end == text || *end != '\0') return std::nullopt;
  return v;
}

ParsedArgs parse_args(int argc, char** argv) {
  ParsedArgs a;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        a.error = "missing value for " + std::string(arg);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      a.help = true;
    } else if (arg == "--list") {
      a.list = true;
    } else if (arg == "--quiet" || arg == "-q") {
      a.opts.verbose = false;
    } else if (arg == "--scenario") {
      if (const char* v = value()) a.scenarios.emplace_back(v);
    } else if (arg == "--out") {
      if (const char* v = value()) a.out_path = v;
    } else if (arg == "--seed") {
      if (const char* v = value()) {
        char* end = nullptr;
        a.opts.seed = std::strtoull(v, &end, 0);
        if (end == v || *end != '\0') a.error = "bad --seed value";
      }
    } else if (arg == "--iters") {
      if (const char* v = value()) {
        const auto n = parse_int(v);
        if (!n || *n < 1 || *n > 1'000'000) {
          a.error = "bad --iters value (need 1 .. 1000000)";
        } else {
          a.opts.iters = static_cast<int>(*n);
        }
      }
    } else if (arg == "--threads") {
      if (const char* v = value()) {
        const auto n = parse_int(v);
        if (!n || *n < 1 || *n > 1024) a.error = "bad --threads value";
        else a.opts.threads = static_cast<int>(*n);
      }
    } else if (arg == "--pump-workers") {
      if (const char* v = value()) {
        const auto n = parse_int(v);
        if (!n || *n < 0 || *n > 64) {
          a.error = "bad --pump-workers value (need 0 .. 64)";
        } else {
          a.opts.pump_workers = static_cast<unsigned>(*n);
        }
      }
    } else if (arg == "--channels") {
      if (const char* v = value()) {
        const auto n = parse_int(v);
        if (!n || *n < 1 || *n > 64) a.error = "bad --channels value (need 1 .. 64)";
        else a.opts.channels = static_cast<std::uint32_t>(*n);
      }
    } else if (arg == "--ranks") {
      if (const char* v = value()) {
        const auto n = parse_int(v);
        if (!n || *n < 1 || *n > 16) a.error = "bad --ranks value (need 1 .. 16)";
        else a.opts.ranks = static_cast<std::uint32_t>(*n);
      }
    } else if (arg == "--mapping") {
      if (const char* v = value()) {
        const auto kind = smc::parse_mapping(v);
        if (!kind) {
          a.error = "bad --mapping value (linear | line | channel | bankpart)";
        } else {
          a.opts.mapping = *kind;
        }
      }
    } else if (arg == "--sched") {
      if (const char* v = value()) {
        const auto kind = smc::parse_scheduler(v);
        if (!kind) {
          a.error =
              "bad --sched value (auto | fcfs | frfcfs | parbs | bliss | "
              "atlas | tcm)";
        } else {
          a.opts.sched = *kind;
        }
      }
    } else if (arg == "--perf") {
      a.perf = true;
    } else if (arg == "--perf-reps") {
      if (const char* v = value()) {
        const auto n = parse_int(v);
        if (!n || *n < 1 || *n > 1000) a.error = "bad --perf-reps value";
        else a.perf_reps = static_cast<int>(*n);
      }
    } else if (arg == "--perf-warmup") {
      if (const char* v = value()) {
        const auto n = parse_int(v);
        if (!n || *n < 0 || *n > 100) {
          a.error = "bad --perf-warmup value (need 0 .. 100)";
        } else {
          a.perf_warmup = static_cast<int>(*n);
        }
      }
    } else if (arg == "--perf-scale") {
      if (const char* v = value()) {
        char* end = nullptr;
        const double s = std::strtod(v, &end);
        if (end == v || *end != '\0' || !(s > 0.0) || s > 1000.0) {
          a.error = "bad --perf-scale value (need 0 < scale <= 1000)";
        } else {
          a.perf_scale = s;
        }
      }
    } else {
      a.error = "unknown argument: " + std::string(arg);
    }
    if (!a.error.empty()) break;
  }
  return a;
}

void print_usage(std::ostream& os, const char* prog) {
  os << "Usage: " << prog
     << " [--scenario NAME]... [--list] [--seed N] [--iters N]\n"
        "       [--threads N] [--pump-workers N] [--channels N] [--ranks N]\n"
        "       [--mapping KIND] [--sched POLICY] [--perf] [--perf-reps N]\n"
        "       [--perf-warmup N] [--perf-scale X]\n"
        "       [--out results.json] [--quiet] [--help]\n\n"
        "Runs EasyDRAM experiment scenarios (paper figure/table reproducers\n"
        "and ablations) and emits machine-readable JSON summaries.\n\n"
        "  --scenario NAME  scenario to run (repeatable; see --list)\n"
        "  --list           list registered scenarios and exit\n"
        "  --seed N         base RNG seed for the synthetic DRAM chip\n"
        "  --iters N        independent repetitions (per-rep seed streams)\n"
        "  --threads N      host thread budget, split between sweep tasks\n"
        "                   and each system's channel-pump workers\n"
        "  --pump-workers N force N channel-pump workers per system\n"
        "                   (0 = split --threads automatically; results\n"
        "                   are bit-identical at any worker count)\n"
        "  --channels N     memory channels (memory-system scenarios)\n"
        "  --ranks N        ranks per channel (memory-system scenarios)\n"
        "  --mapping KIND   address mapping: linear | line | channel |\n"
        "                   bankpart (static per-tenant bank partitions)\n"
        "  --sched POLICY   force a scheduling policy: auto | fcfs | frfcfs\n"
        "                   | parbs | bliss | atlas | tcm (default: each\n"
        "                   scenario's validated policy; qos_* scenarios\n"
        "                   restrict their policy sweep to POLICY)\n"
        "  --perf           run the host-performance harness instead\n"
        "  --perf-reps N    measured repetitions per perf bench (default 3)\n"
        "  --perf-warmup N  warmup repetitions discarded before the measured\n"
        "                   ones (default 1; see docs/bench.md)\n"
        "  --perf-scale X   multiplier on the micro benches' iteration\n"
        "                   budgets (scenario benches always run whole)\n"
        "  --out PATH       write the JSON summary to PATH\n"
        "  --quiet          suppress the human-readable tables\n\n"
        "The paper scenarios always run the validated 1-channel/1-rank\n"
        "geometry; --channels/--ranks/--mapping shape the memory-system\n"
        "scenarios (channel_scaling, rank_interleaving).\n\n"
        "--perf times the simulator's host-side hot paths (micro read/write\n"
        "bursts plus the throughput-sensitive scenarios) and writes the\n"
        "BENCH_results.json perf-trajectory document to --out; with --perf,\n"
        "--scenario filters the perf benches by name.\n";
}

void print_list(std::ostream& os) {
  for (const Scenario& s : ScenarioRegistry::instance().all()) {
    os << s.name << "\n    " << s.summary << " [" << s.paper_ref << "]\n";
  }
}

}  // namespace

int scenario_main(std::span<const std::string_view> default_names, int argc,
                  char** argv) {
  const char* prog = argc > 0 ? argv[0] : "easydram_cli";
  ParsedArgs a = parse_args(argc, argv);
  if (!a.error.empty()) {
    std::cerr << prog << ": " << a.error << "\n";
    print_usage(std::cerr, prog);
    return 2;
  }
  if (a.help) {
    print_usage(std::cout, prog);
    std::cout << "\nScenarios:\n";
    print_list(std::cout);
    return 0;
  }
  if (a.list) {
    print_list(std::cout);
    if (a.perf) {
      std::cout << "\nPerf benches (--perf):\n";
      list_perf_benches(std::cout);
    }
    return 0;
  }

  if (a.perf) {
    PerfOptions popts;
    popts.run = a.opts;
    popts.reps = a.perf_reps;
    popts.warmup = a.perf_warmup;
    popts.scale = a.perf_scale;
    popts.only = a.scenarios;
    std::vector<PerfBenchOutcome> outcomes;
    try {
      outcomes = run_perf_benches(popts);
    } catch (const std::exception& e) {
      std::cerr << prog << ": " << e.what() << "\n";
      return 2;
    }
    if (a.opts.verbose) print_perf_table(std::cout, outcomes);
    if (!a.out_path.empty()) {
      std::ofstream out(a.out_path);
      if (!out) {
        std::cerr << prog << ": cannot open " << a.out_path
                  << " for writing\n";
        return 1;
      }
      out << perf_results_json(popts, outcomes).dump_string();
      if (a.opts.verbose) {
        std::cout << "\nWrote perf results to " << a.out_path << "\n";
      }
    }
    return 0;
  }

  std::vector<std::string> names(a.scenarios);
  if (names.empty()) {
    names.assign(default_names.begin(), default_names.end());
  }
  if (names.empty()) {
    std::cerr << prog << ": no --scenario given\n\n";
    print_usage(std::cerr, prog);
    std::cerr << "\nScenarios:\n";
    print_list(std::cerr);
    return 2;
  }

  std::vector<Json> run_docs;
  for (const std::string& name : names) {
    const Scenario* s = ScenarioRegistry::instance().find(name);
    if (s == nullptr) {
      std::cerr << prog << ": unknown scenario '" << name
                << "' (use --list)\n";
      return 2;
    }
    run_docs.push_back(run_scenario(*s, a.opts));
  }

  if (!a.out_path.empty()) {
    std::ofstream out(a.out_path);
    if (!out) {
      std::cerr << prog << ": cannot open " << a.out_path << " for writing\n";
      return 1;
    }
    // A single run is written as a bare object; multiple runs as a list,
    // so per-figure one-liners produce the simplest possible file.
    if (run_docs.size() == 1) {
      out << run_docs.front().dump_string();
    } else {
      Json doc = Json::array();
      for (Json& r : run_docs) doc.push_back(std::move(r));
      out << doc.dump_string();
    }
    if (a.opts.verbose) {
      std::cout << "\nWrote JSON summary to " << a.out_path << "\n";
    }
  }
  return 0;
}

int scenario_main(std::string_view default_name, int argc, char** argv) {
  return scenario_main(std::span<const std::string_view>(&default_name, 1),
                       argc, argv);
}

}  // namespace easydram::cli
