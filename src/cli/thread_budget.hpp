#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

namespace easydram::cli {

/// How one `--threads N` host budget is split between the two places the
/// CLI can spend host parallelism: the scenario-level parameter sweep
/// (independent system builds, ThreadPool) and each system's internal
/// channel-slice pump (sys::SystemConfig::pump_workers). Splitting one
/// budget instead of multiplying the two keeps `--threads 8` meaning
/// "about eight busy host threads", not 8 sweep tasks x 8 pump workers.
struct ThreadBudget {
  int sweep_threads = 1;
  unsigned pump_workers = 1;
};

/// Splits `threads` between sweep- and pump-level parallelism.
///
/// `forced_pump` (from `--pump-workers`) wins when nonzero: the sweep gets
/// whatever multiple of it still fits the budget. Otherwise the split is
/// sweep-first — independent sweep tasks scale embarrassingly, so they
/// absorb the budget up to the task count and only the leftover factor goes
/// to intra-system pump workers (capped at the widest channel count, past
/// which extra workers cannot shard anything).
///
/// The default `--threads 1` yields {1, 1}: the serial engines, and
/// therefore byte-identical output to every pre-parallel build. Any split
/// produces the same scenario results — the pump engine is bit-exact at
/// any worker count — so this division is purely a host-speed decision.
inline ThreadBudget split_thread_budget(int threads, unsigned forced_pump,
                                        std::size_t sweep_tasks,
                                        std::uint32_t max_channels) {
  ThreadBudget b;
  const int total = std::max(threads, 1);
  if (forced_pump > 0) {
    b.pump_workers = forced_pump;
    b.sweep_threads = std::max(total / static_cast<int>(forced_pump), 1);
    return b;
  }
  b.sweep_threads = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(total), std::max<std::size_t>(sweep_tasks, 1)));
  const unsigned leftover =
      static_cast<unsigned>(total / std::max(b.sweep_threads, 1));
  b.pump_workers = std::clamp(leftover, 1u, std::max(max_channels, 1u));
  return b;
}

}  // namespace easydram::cli
