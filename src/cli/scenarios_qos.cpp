// Multi-tenant QoS scenarios: mixed tenant traffic (latency-sensitive
// pointer chase, STREAM-style bandwidth hogs, a RowHammer adversary)
// interleaved into one N-stream request flow, measured per stream. These
// are repository extensions beyond the paper's single-tenant case studies:
// the software memory controller makes scheduling a C++ policy swap, so
// the QoS scheduler family (PAR-BS / BLISS / ATLAS / TCM) and static bank
// partitioning are exactly the kind of experiment EasyDRAM exists to make
// cheap.
//
// Every tenant's working set must be memory-resident for the scheduler to
// matter, so these scenarios scale the cache hierarchy down with the
// CI-sized footprints (real multi-tenant working sets dwarf any LLC).

#include <algorithm>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "cli/measure.hpp"
#include "cli/scenario.hpp"
#include "cli/thread_budget.hpp"
#include "cli/thread_pool.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "cpu/trace.hpp"
#include "sys/system.hpp"
#include "workloads/mixed.hpp"

namespace easydram::cli {
namespace {

using workloads::TenantKind;
using workloads::TenantSpec;

constexpr std::uint64_t kKiB = 1024;
constexpr std::uint64_t kTenantSpacing = 64 * 1024 * 1024;

/// One modeled-latency distribution (emulated processor cycles).
struct StreamLatency {
  std::int64_t requests = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

StreamLatency summarize(const std::vector<std::int64_t>& samples) {
  StreamLatency s;
  s.requests = static_cast<std::int64_t>(samples.size());
  if (samples.empty()) return s;
  std::vector<double> xs(samples.begin(), samples.end());
  // The drain order of the sample vector is engine-dependent; sorting
  // makes every reduction a pure function of the (invariant) multiset.
  std::sort(xs.begin(), xs.end());
  s.mean = mean(xs);
  s.p50 = percentile(xs, 50.0);
  s.p95 = percentile(xs, 95.0);
  s.p99 = percentile(xs, 99.0);
  return s;
}

/// Everything one trace run yields for the QoS studies.
struct QosRun {
  std::vector<StreamLatency> streams;
  smc::ApiStats stats;
  smc::mitigation::MitigationStats mitigation;
};

QosRun run_records(const sys::SystemConfig& cfg,
                   std::vector<cpu::TraceRecord> records,
                   std::size_t n_streams) {
  sys::EasyDramSystem sysm(cfg);
  cpu::VectorTrace trace(std::move(records));
  sysm.run(trace);
  QosRun r;
  const auto& samples = sysm.stream_latency_samples();
  static const std::vector<std::int64_t> kEmpty;
  r.streams.reserve(n_streams);
  for (std::size_t s = 0; s < n_streams; ++s) {
    r.streams.push_back(summarize(s < samples.size() ? samples[s] : kEmpty));
  }
  r.stats = sysm.smc_stats();
  r.mitigation = sysm.mitigation_stats();
  return r;
}

sys::SystemConfig qos_config(std::uint64_t seed, smc::SchedulerKind sched,
                             unsigned pump_workers,
                             smc::MappingKind mapping =
                                 smc::MappingKind::kLinear) {
  sys::SystemConfig cfg = sys::jetson_nano_time_scaling();
  cfg.variation.seed = seed;
  cfg.sched = sched;
  cfg.mapping = mapping;
  cfg.track_stream_latency = true;
  cfg.caches.l1 = {4 * 1024, 4, 64};
  cfg.caches.l2 = {16 * 1024, 8, 64};
  cfg.pump_workers = pump_workers;
  return cfg;
}

/// The policy sweep: the scenario's validated default list, unless --sched
/// forces a single policy.
std::vector<smc::SchedulerKind> sweep_policies(
    const RunOptions& opts, std::initializer_list<smc::SchedulerKind> defaults) {
  if (opts.sched.has_value()) return {*opts.sched};
  return defaults;
}

std::string policy_name(smc::SchedulerKind kind) {
  return std::string(smc::make_scheduler(kind)->name());
}

double ratio(double num, double den) { return den > 0.0 ? num / den : 0.0; }

/// max/min slowdown — 1.0 is perfectly fair, large is starvation.
double unfairness(std::span<const double> slowdowns) {
  double lo = 0.0;
  double hi = 0.0;
  for (const double s : slowdowns) {
    if (s <= 0.0) continue;
    if (lo == 0.0 || s < lo) lo = s;
    if (s > hi) hi = s;
  }
  return ratio(hi, lo);
}

Json stream_json(const TenantSpec& spec, const StreamLatency& lat,
                 double slowdown = 0.0) {
  Json j = Json::object();
  j["stream"] = static_cast<std::int64_t>(spec.stream);
  j["kind"] = workloads::to_string(spec.kind);
  j["requests"] = lat.requests;
  j["mean_cycles"] = lat.mean;
  j["p50_cycles"] = lat.p50;
  j["p95_cycles"] = lat.p95;
  j["p99_cycles"] = lat.p99;
  if (slowdown > 0.0) j["slowdown_vs_alone"] = slowdown;
  return j;
}

void add_sched_counters(Json& j, const smc::ApiStats& stats) {
  j["sched_picks"] = stats.sched_picks;
  j["sched_row_hits"] = stats.sched_row_hits;
  j["sched_row_conflicts"] = stats.sched_row_conflicts;
  j["sched_entries_scanned"] = stats.sched_entries_scanned;
}

// --- qos_mixed_tenants ----------------------------------------------------

std::vector<TenantSpec> four_tenants() {
  std::vector<TenantSpec> t(4);
  t[0].kind = TenantKind::kPointerChase;
  t[0].footprint_bytes = 32 * kKiB;
  t[1].kind = TenantKind::kStreamCopy;
  t[1].footprint_bytes = 64 * kKiB;
  t[2].kind = TenantKind::kStreamCopy;
  t[2].footprint_bytes = 64 * kKiB;
  t[3].kind = TenantKind::kHammer;
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i].stream = static_cast<std::uint32_t>(i);
    t[i].base_addr = i * kTenantSpacing;
  }
  return t;
}

/// Per-stream latency/fairness of the 4-tenant mix under each policy, with
/// slowdown-vs-alone from per-tenant solo runs on the identical system.
Json run_qos_mixed_tenants(const RunOptions& opts) {
  const std::vector<smc::SchedulerKind> policies = sweep_policies(
      opts, {smc::SchedulerKind::kFrfcfs, smc::SchedulerKind::kBliss,
             smc::SchedulerKind::kAtlas, smc::SchedulerKind::kTcm});
  const std::vector<TenantSpec> tenants = four_tenants();

  struct Task {
    QosRun mixed;
    std::vector<double> slowdown;  ///< Per tenant, mixed mean / solo mean.
  };
  const std::size_t per_rep = policies.size();
  const std::size_t n_tasks = static_cast<std::size_t>(opts.iters) * per_rep;
  const ThreadBudget budget =
      split_thread_budget(opts.threads, opts.pump_workers, n_tasks, 1);
  ThreadPool pool(budget.sweep_threads);
  const auto all = parallel_map(pool, n_tasks, [&](std::size_t task) {
    const std::size_t rep = task / per_rep;
    const smc::SchedulerKind policy = policies[task % per_rep];
    const sys::SystemConfig cfg =
        qos_config(rep_seed(opts, static_cast<int>(rep)), policy,
                   budget.pump_workers);
    const smc::LinearMapper mapper(cfg.geometry);
    workloads::MixedTrace mix = workloads::make_mixed_trace(tenants, mapper);

    Task t;
    t.mixed = run_records(cfg, std::move(mix.interleaved), tenants.size());
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      const QosRun solo = run_records(cfg, mix.solo[i], tenants.size());
      t.slowdown.push_back(ratio(t.mixed.streams[tenants[i].stream].mean,
                                 solo.streams[tenants[i].stream].mean));
    }
    return t;
  });

  TextTable table;
  table.set_header({"Policy", "chase p50", "chase p95", "chase p99",
                    "chase slowdown", "max slowdown", "unfairness"});
  Json rows = Json::array();
  for (std::size_t pi = 0; pi < policies.size(); ++pi) {
    const Task& t = all[pi];  // Repetition 0 provides the detail rows.
    const double unfair = unfairness(t.slowdown);
    table.add_row({policy_name(policies[pi]),
                   fmt_fixed(t.mixed.streams[0].p50, 0),
                   fmt_fixed(t.mixed.streams[0].p95, 0),
                   fmt_fixed(t.mixed.streams[0].p99, 0),
                   fmt_fixed(t.slowdown[0], 2) + "x",
                   fmt_fixed(*std::max_element(t.slowdown.begin(),
                                               t.slowdown.end()),
                             2) +
                       "x",
                   fmt_fixed(unfair, 2)});
    Json j = Json::object();
    j["policy"] = policy_name(policies[pi]);
    j["sched"] = smc::to_string(policies[pi]);
    Json streams = Json::array();
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      streams.push_back(stream_json(tenants[i],
                                    t.mixed.streams[tenants[i].stream],
                                    t.slowdown[i]));
    }
    j["streams"] = std::move(streams);
    j["unfairness_max_over_min"] = unfair;
    add_sched_counters(j, t.mixed.stats);
    rows.push_back(std::move(j));
  }

  // Per-repetition aggregate: unfairness under the sweep's first policy
  // (FR-FCFS by default — the baseline the QoS policies are judged against).
  std::vector<double> unfair_rep;
  for (int rep = 0; rep < opts.iters; ++rep) {
    unfair_rep.push_back(
        unfairness(all[static_cast<std::size_t>(rep) * per_rep].slowdown));
  }

  if (opts.verbose) {
    table.print(std::cout);
    std::cout << "\nExpected shape: FR-FCFS serves the copy tenants' row-hit\n"
                 "trains first, so the pointer chase (one dependent miss at a\n"
                 "time) eats the queueing delay — its slowdown and the\n"
                 "max/min unfairness are the baseline's worst numbers. The\n"
                 "QoS policies cap (BLISS), rank (ATLAS), or cluster (TCM)\n"
                 "the hogs and pull the chase's tail latency back down.\n";
  }

  Json out = Json::object();
  Json tj = Json::array();
  for (const TenantSpec& spec : tenants) {
    Json j = Json::object();
    j["stream"] = static_cast<std::int64_t>(spec.stream);
    j["kind"] = workloads::to_string(spec.kind);
    j["footprint_bytes"] = static_cast<std::int64_t>(spec.footprint_bytes);
    j["passes"] = spec.passes;
    tj.push_back(std::move(j));
  }
  out["tenants"] = std::move(tj);
  out["policies"] = std::move(rows);
  out["baseline_unfairness_per_rep"] = rep_metric_json(unfair_rep);
  return out;
}

// --- qos_tenant_scaling ---------------------------------------------------

std::vector<TenantSpec> scaling_tenants(std::size_t n) {
  std::vector<TenantSpec> t(n);
  t[0].kind = TenantKind::kPointerChase;
  t[0].footprint_bytes = 32 * kKiB;
  for (std::size_t i = 1; i < n; ++i) {
    t[i].kind = TenantKind::kStreamCopy;
    t[i].footprint_bytes = 32 * kKiB;
  }
  for (std::size_t i = 0; i < n; ++i) {
    t[i].stream = static_cast<std::uint32_t>(i);
    t[i].base_addr = i * kTenantSpacing;
  }
  return t;
}

/// Victim (pointer-chase) tail latency as the hog count grows, FR-FCFS vs
/// BLISS. No solo baselines — the axis is the tenant count, and the
/// per-stream mean spread stands in for fairness.
Json run_qos_tenant_scaling(const RunOptions& opts) {
  const std::vector<smc::SchedulerKind> policies = sweep_policies(
      opts, {smc::SchedulerKind::kFrfcfs, smc::SchedulerKind::kBliss});
  const std::size_t counts[] = {2, 4, 8};

  const std::size_t per_rep = std::size(counts) * policies.size();
  const std::size_t n_tasks = static_cast<std::size_t>(opts.iters) * per_rep;
  const ThreadBudget budget =
      split_thread_budget(opts.threads, opts.pump_workers, n_tasks, 1);
  ThreadPool pool(budget.sweep_threads);
  const auto all = parallel_map(pool, n_tasks, [&](std::size_t task) {
    const std::size_t rep = task / per_rep;
    const std::size_t which = task % per_rep;
    const std::size_t n = counts[which / policies.size()];
    const smc::SchedulerKind policy = policies[which % policies.size()];
    const sys::SystemConfig cfg =
        qos_config(rep_seed(opts, static_cast<int>(rep)), policy,
                   budget.pump_workers);
    const smc::LinearMapper mapper(cfg.geometry);
    workloads::MixedTrace mix =
        workloads::make_mixed_trace(scaling_tenants(n), mapper);
    return run_records(cfg, std::move(mix.interleaved), n);
  });

  TextTable table;
  table.set_header(
      {"Tenants", "Policy", "chase p95", "chase mean", "mean spread"});
  Json rows = Json::array();
  for (std::size_t ci = 0; ci < std::size(counts); ++ci) {
    for (std::size_t pi = 0; pi < policies.size(); ++pi) {
      const QosRun& r = all[ci * policies.size() + pi];
      double lo = 0.0;
      double hi = 0.0;
      for (const StreamLatency& s : r.streams) {
        if (s.mean <= 0.0) continue;
        if (lo == 0.0 || s.mean < lo) lo = s.mean;
        if (s.mean > hi) hi = s.mean;
      }
      const double spread = ratio(hi, lo);
      table.add_row({std::to_string(counts[ci]), policy_name(policies[pi]),
                     fmt_fixed(r.streams[0].p95, 0),
                     fmt_fixed(r.streams[0].mean, 0), fmt_fixed(spread, 2)});
      Json j = Json::object();
      j["tenants"] = static_cast<std::int64_t>(counts[ci]);
      j["policy"] = policy_name(policies[pi]);
      j["sched"] = smc::to_string(policies[pi]);
      j["victim_p95_cycles"] = r.streams[0].p95;
      j["victim_mean_cycles"] = r.streams[0].mean;
      j["stream_mean_spread"] = spread;
      add_sched_counters(j, r.stats);
      rows.push_back(std::move(j));
    }
  }

  // Per-rep aggregate: victim p95 at the widest mix, last policy relative
  // to first (BLISS / FR-FCFS by default; 1.0 for a forced single policy).
  std::vector<double> tail_ratio;
  for (int rep = 0; rep < opts.iters; ++rep) {
    const std::size_t base = static_cast<std::size_t>(rep) * per_rep +
                             (std::size(counts) - 1) * policies.size();
    tail_ratio.push_back(ratio(all[base + policies.size() - 1].streams[0].p95,
                               all[base].streams[0].p95));
  }

  if (opts.verbose) {
    table.print(std::cout);
    std::cout << "\nExpected shape: under FR-FCFS the victim's tail grows\n"
                 "with every added hog (more row-hit trains to lose to);\n"
                 "BLISS blacklists each hog after a bounded streak, so the\n"
                 "victim's p95 grows far more slowly with the tenant count.\n";
  }

  Json out = Json::object();
  out["points"] = std::move(rows);
  out["widest_tail_ratio_last_over_first_policy_per_rep"] =
      rep_metric_json(tail_ratio);
  return out;
}

// --- qos_mitigation -------------------------------------------------------

std::vector<TenantSpec> victim_adversary_tenants() {
  std::vector<TenantSpec> t(2);
  t[0].kind = TenantKind::kPointerChase;
  t[0].footprint_bytes = 32 * kKiB;
  t[1].kind = TenantKind::kHammer;
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i].stream = static_cast<std::uint32_t>(i);
    t[i].base_addr = i * kTenantSpacing;
  }
  return t;
}

/// Who pays for RowHammer mitigation in a multi-tenant mix: a chase victim
/// against a hammer adversary, PARA off/on, FR-FCFS vs BLISS. PARA's
/// targeted refreshes are triggered by the adversary's ACT storm but are
/// served by the shared controller — the question is whether the victim's
/// latency absorbs them.
Json run_qos_mitigation(const RunOptions& opts) {
  const std::vector<smc::SchedulerKind> policies = sweep_policies(
      opts, {smc::SchedulerKind::kFrfcfs, smc::SchedulerKind::kBliss});
  const std::vector<TenantSpec> tenants = victim_adversary_tenants();
  const bool para_points[] = {false, true};

  struct Task {
    QosRun mixed;
    double victim_slowdown = 0.0;
  };
  const std::size_t per_rep = std::size(para_points) * policies.size();
  const std::size_t n_tasks = static_cast<std::size_t>(opts.iters) * per_rep;
  const ThreadBudget budget =
      split_thread_budget(opts.threads, opts.pump_workers, n_tasks, 1);
  ThreadPool pool(budget.sweep_threads);
  const auto all = parallel_map(pool, n_tasks, [&](std::size_t task) {
    const std::size_t rep = task / per_rep;
    const std::size_t which = task % per_rep;
    const bool para = para_points[which / policies.size()];
    const smc::SchedulerKind policy = policies[which % policies.size()];
    sys::SystemConfig cfg =
        qos_config(rep_seed(opts, static_cast<int>(rep)), policy,
                   budget.pump_workers);
    if (para) {
      cfg.mitigation.kind = smc::mitigation::MitigationKind::kPara;
      cfg.mitigation.seed = rep_seed(opts, static_cast<int>(rep));
    }
    const smc::LinearMapper mapper(cfg.geometry);
    workloads::MixedTrace mix = workloads::make_mixed_trace(tenants, mapper);
    Task t;
    t.mixed = run_records(cfg, std::move(mix.interleaved), tenants.size());
    const QosRun solo = run_records(cfg, mix.solo[0], tenants.size());
    t.victim_slowdown =
        ratio(t.mixed.streams[0].mean, solo.streams[0].mean);
    return t;
  });

  TextTable table;
  table.set_header({"Mitigation", "Policy", "victim p95", "victim slowdown",
                    "adversary mean", "victim refreshes"});
  Json rows = Json::array();
  for (std::size_t mi = 0; mi < std::size(para_points); ++mi) {
    for (std::size_t pi = 0; pi < policies.size(); ++pi) {
      const Task& t = all[mi * policies.size() + pi];
      table.add_row(
          {para_points[mi] ? "PARA" : "none", policy_name(policies[pi]),
           fmt_fixed(t.mixed.streams[0].p95, 0),
           fmt_fixed(t.victim_slowdown, 2) + "x",
           fmt_fixed(t.mixed.streams[1].mean, 0),
           std::to_string(t.mixed.mitigation.neighbor_refreshes)});
      Json j = Json::object();
      j["mitigation"] = para_points[mi] ? "para" : "none";
      j["policy"] = policy_name(policies[pi]);
      j["sched"] = smc::to_string(policies[pi]);
      j["victim"] = stream_json(tenants[0], t.mixed.streams[0],
                                t.victim_slowdown);
      j["adversary"] = stream_json(tenants[1], t.mixed.streams[1]);
      j["neighbor_refreshes"] = t.mixed.mitigation.neighbor_refreshes;
      j["mitigation_triggers"] = t.mixed.mitigation.triggers;
      add_sched_counters(j, t.mixed.stats);
      rows.push_back(std::move(j));
    }
  }

  std::vector<double> para_tax;
  for (int rep = 0; rep < opts.iters; ++rep) {
    const std::size_t base = static_cast<std::size_t>(rep) * per_rep;
    // Victim p95 with PARA over without, under the first policy.
    para_tax.push_back(ratio(all[base + policies.size()].mixed.streams[0].p95,
                             all[base].mixed.streams[0].p95));
  }

  if (opts.verbose) {
    table.print(std::cout);
    std::cout << "\nExpected shape: the adversary's ACT storm triggers PARA's\n"
                 "targeted refreshes, which queue at the shared controller\n"
                 "like any other work — the victim's tail absorbs part of\n"
                 "that tax under FR-FCFS. A QoS policy that already bounds\n"
                 "the adversary's service keeps the victim's p95 flatter\n"
                 "when mitigation turns on.\n";
  }

  Json out = Json::object();
  out["points"] = std::move(rows);
  out["victim_para_tax_first_policy_per_rep"] = rep_metric_json(para_tax);
  return out;
}

// --- qos_bank_partition ---------------------------------------------------

/// Scheduler-free isolation: the same 4-tenant mix under the
/// line-interleaved mapping (tenants share every bank) vs static bank
/// partitioning (each tenant's slice owns a quarter of the banks), both
/// under plain FR-FCFS. Partitioning makes cross-tenant row conflicts
/// structurally impossible — visible in the victim's tail and in the
/// controller's row-conflict counter.
Json run_qos_bank_partition(const RunOptions& opts) {
  const smc::SchedulerKind policy =
      sweep_policies(opts, {smc::SchedulerKind::kFrfcfs}).front();
  const smc::MappingKind mappings[] = {smc::MappingKind::kLineInterleaved,
                                       smc::MappingKind::kBankPartition};

  // Place each tenant at the base of its own quarter of the physical
  // space: under bankpart that is exactly one bank partition; under the
  // line mapping the same addresses stripe over every bank (the contended
  // baseline).
  const dram::Geometry geo;  // The paper's 1x1 default, as qos_config uses.
  const std::uint64_t quarter = geo.capacity_bytes() / 4;
  std::vector<TenantSpec> tenants(4);
  tenants[0].kind = TenantKind::kPointerChase;
  tenants[0].footprint_bytes = 32 * kKiB;
  for (std::size_t i = 1; i < tenants.size(); ++i) {
    tenants[i].kind = TenantKind::kStreamCopy;
    tenants[i].footprint_bytes = 64 * kKiB;
  }
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    tenants[i].stream = static_cast<std::uint32_t>(i);
    tenants[i].base_addr = i * quarter;
  }

  const std::size_t per_rep = std::size(mappings);
  const std::size_t n_tasks = static_cast<std::size_t>(opts.iters) * per_rep;
  const ThreadBudget budget =
      split_thread_budget(opts.threads, opts.pump_workers, n_tasks, 1);
  ThreadPool pool(budget.sweep_threads);
  const auto all = parallel_map(pool, n_tasks, [&](std::size_t task) {
    const std::size_t rep = task / per_rep;
    const smc::MappingKind mapping = mappings[task % per_rep];
    sys::SystemConfig cfg =
        qos_config(rep_seed(opts, static_cast<int>(rep)), policy,
                   budget.pump_workers, mapping);
    const auto mapper =
        smc::make_mapper(mapping, cfg.geometry, cfg.bank_partitions);
    workloads::MixedTrace mix = workloads::make_mixed_trace(tenants, *mapper);
    return run_records(cfg, std::move(mix.interleaved), tenants.size());
  });

  TextTable table;
  table.set_header({"Mapping", "chase p50", "chase p95", "row hits",
                    "row conflicts"});
  Json rows = Json::array();
  for (std::size_t mi = 0; mi < std::size(mappings); ++mi) {
    const QosRun& r = all[mi];
    table.add_row({std::string(smc::to_string(mappings[mi])),
                   fmt_fixed(r.streams[0].p50, 0),
                   fmt_fixed(r.streams[0].p95, 0),
                   std::to_string(r.stats.sched_row_hits),
                   std::to_string(r.stats.sched_row_conflicts)});
    Json j = Json::object();
    j["mapping"] = smc::to_string(mappings[mi]);
    j["policy"] = policy_name(policy);
    Json streams = Json::array();
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      streams.push_back(stream_json(tenants[i], r.streams[i]));
    }
    j["streams"] = std::move(streams);
    add_sched_counters(j, r.stats);
    rows.push_back(std::move(j));
  }

  std::vector<double> isolation;
  for (int rep = 0; rep < opts.iters; ++rep) {
    const std::size_t base = static_cast<std::size_t>(rep) * per_rep;
    isolation.push_back(
        ratio(all[base].streams[0].p95, all[base + 1].streams[0].p95));
  }

  if (opts.verbose) {
    table.print(std::cout);
    std::cout << "\nExpected shape: line interleaving strews every tenant\n"
                 "over every bank, so the hogs keep closing the rows the\n"
                 "chase is about to need; bank partitioning pins each tenant\n"
                 "to its own banks, cutting cross-tenant row conflicts to\n"
                 "zero by construction — no scheduler cooperation needed.\n";
  }

  Json out = Json::object();
  out["partitions"] = static_cast<std::int64_t>(4);
  out["points"] = std::move(rows);
  out["victim_p95_line_over_bankpart_per_rep"] = rep_metric_json(isolation);
  return out;
}

}  // namespace

void register_qos_scenarios(ScenarioRegistry& r) {
  r.add({"qos_mixed_tenants",
         "4-tenant mixed traffic: per-stream tails and fairness per policy",
         "EasyDRAM (DSN 2025), extension: multi-tenant QoS",
         &run_qos_mixed_tenants});
  r.add({"qos_tenant_scaling",
         "Victim tail latency at 2/4/8 tenants, FR-FCFS vs BLISS",
         "EasyDRAM (DSN 2025), extension: multi-tenant QoS",
         &run_qos_tenant_scaling});
  r.add({"qos_mitigation",
         "Chase victim vs hammer adversary with PARA off/on per policy",
         "EasyDRAM (DSN 2025), extension: multi-tenant QoS",
         &run_qos_mitigation});
  r.add({"qos_bank_partition",
         "Tenant isolation: line-interleaved vs static bank partitions",
         "EasyDRAM (DSN 2025), extension: multi-tenant QoS",
         &run_qos_bank_partition});
}

}  // namespace easydram::cli
