// tRCD characterization scenarios: the Fig. 12 minimum-reliable-tRCD
// heatmap and the Fig. 13 tRCD-reduction speedup study.

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "cli/measure.hpp"
#include "cli/scenario.hpp"
#include "cli/thread_pool.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "smc/trcd_profiler.hpp"
#include "workloads/polybench.hpp"

namespace easydram::cli {
namespace {

// --- fig12_trcd_heatmap ---------------------------------------------------

constexpr std::uint32_t kRows = 4096;
constexpr std::uint32_t kRowsPerGroup = 64;
constexpr std::uint32_t kSampleLines = 24;  // Per test value, per row.
constexpr std::uint32_t kChunkRows = 256;   // Rows profiled per pool task.

struct ChunkResult {
  std::vector<double> min_trcd_ns;  // One entry per row in the chunk.
  std::int64_t strong = 0;
  std::int64_t lines_tested = 0;
};

ChunkResult profile_chunk(std::uint64_t seed, std::uint32_t bank,
                          std::uint32_t row_lo, std::uint32_t row_hi) {
  sys::SystemConfig cfg = sys::jetson_nano_time_scaling();
  cfg.variation.seed = seed;
  sys::EasyDramSystem sysm(cfg);
  // The profiler sweep: nominal is 13.5 ns; test down in DRAM-clock steps.
  smc::TrcdProfiler profiler(
      sysm.api(), {Picoseconds{12000}, Picoseconds{10500}, Picoseconds{9000},
                   Picoseconds{7500}});
  ChunkResult out;
  out.min_trcd_ns.reserve(row_hi - row_lo);
  for (std::uint32_t row = row_lo; row < row_hi; ++row) {
    // Classification at the 9.0 ns threshold scans every line (exact);
    // the heatmap value uses a sampled sweep (display only).
    if (profiler.row_reliable_at(bank, row, Picoseconds{9000})) ++out.strong;
    out.min_trcd_ns.push_back(
        profiler.profile_row(bank, row, kSampleLines).min_reliable.nanoseconds());
  }
  out.lines_tested = profiler.lines_tested();
  return out;
}

struct BankStats {
  std::vector<std::string> heatmap;  // 8 lines of 8 block-average symbols.
  std::int64_t strong = 0;
  std::int64_t below_nominal = 0;
  std::int64_t weak_total = 0;
  std::int64_t weak_with_weak_neighbour = 0;
  double min_ns = 0, max_ns = 0;
};

BankStats summarize_bank(const std::vector<double>& min_trcd,
                         std::int64_t strong) {
  BankStats b;
  b.strong = strong;
  for (std::uint32_t gblock = 0; gblock < kRows / kRowsPerGroup; gblock += 8) {
    std::string line;
    for (std::uint32_t rblock = 0; rblock < kRowsPerGroup; rblock += 8) {
      double sum = 0;
      for (std::uint32_t g = gblock; g < gblock + 8; ++g) {
        for (std::uint32_t r = rblock; r < rblock + 8; ++r) {
          // Fixed 8x8 block scan order, independent of thread count; feeds
          // a coarse character heatmap only.
          // NOLINT-easydram-next-line(float-accumulation-order)
          sum += min_trcd[g * kRowsPerGroup + r];
        }
      }
      const double avg = sum / 64.0;
      line += avg <= 9.0 ? '.' : avg <= 9.75 ? ':' : avg <= 10.25 ? '*' : '#';
    }
    b.heatmap.push_back(std::move(line));
  }

  Summary values;
  for (std::uint32_t row = 0; row < kRows; ++row) {
    values.add(min_trcd[row]);
    if (min_trcd[row] < 13.5) ++b.below_nominal;
    if (min_trcd[row] > 9.0) {
      ++b.weak_total;
      if (row + 1 < kRows && min_trcd[row + 1] > 9.0) {
        ++b.weak_with_weak_neighbour;
      }
    }
  }
  b.min_ns = values.min();
  b.max_ns = values.max();
  return b;
}

Json run_fig12(const RunOptions& opts) {
  constexpr std::uint32_t kBanks = 2;
  constexpr std::size_t kChunksPerBank = kRows / kChunkRows;
  const std::size_t per_rep = kBanks * kChunksPerBank;

  ThreadPool pool(opts.threads);
  const auto chunks = parallel_map(
      pool, static_cast<std::size_t>(opts.iters) * per_rep,
      [&](std::size_t task) {
        const std::size_t rep = task / per_rep;
        const std::size_t in_rep = task % per_rep;
        const auto bank = static_cast<std::uint32_t>(in_rep / kChunksPerBank);
        const auto chunk = static_cast<std::uint32_t>(in_rep % kChunksPerBank);
        return profile_chunk(rep_seed(opts, static_cast<int>(rep)), bank,
                             chunk * kChunkRows, (chunk + 1) * kChunkRows);
      });

  // Count repetition 0 only, matching the heatmaps/stats below (each
  // repetition characterizes the same number of lines).
  std::int64_t lines_tested = 0;
  for (std::size_t i = 0; i < per_rep; ++i) lines_tested += chunks[i].lines_tested;

  Json banks = Json::array();
  for (std::uint32_t bank = 0; bank < kBanks; ++bank) {
    // Reassemble repetition 0's full per-row vector from its chunks.
    std::vector<double> min_trcd;
    min_trcd.reserve(kRows);
    std::int64_t strong = 0;
    for (std::size_t chunk = 0; chunk < kChunksPerBank; ++chunk) {
      const ChunkResult& c = chunks[bank * kChunksPerBank + chunk];
      min_trcd.insert(min_trcd.end(), c.min_trcd_ns.begin(),
                      c.min_trcd_ns.end());
      strong += c.strong;
    }
    const BankStats b = summarize_bank(min_trcd, strong);

    if (opts.verbose) {
      std::cout << "Bank " << bank + 1
                << " — heatmap (rows x groups, 8x8 block averages; columns =\n"
                   "Row ID 0..63, rows = Group ID 0..63; symbols: '.' <=9.0ns,\n"
                   "':' <=9.75ns, '*' <=10.25ns, '#' >10.25ns)\n";
      for (const std::string& line : b.heatmap) {
        std::cout << "  " << line << '\n';
      }
      std::cout << "  rows below nominal 13.5ns: " << b.below_nominal << "/"
                << kRows << "  strong (<=9.0ns): "
                << fmt_fixed(100.0 * static_cast<double>(b.strong) / kRows, 1)
                << "% (paper: 84.5% of lines)\n  measured range: ["
                << fmt_fixed(b.min_ns, 2) << ", " << fmt_fixed(b.max_ns, 2)
                << "] ns (paper colorbar: 9.0-10.5 ns)\n  weak-row clustering: "
                << fmt_fixed(
                       100.0 * static_cast<double>(b.weak_with_weak_neighbour) /
                           static_cast<double>(
                               std::max<std::int64_t>(b.weak_total, 1)),
                       1)
                << "% of weak rows have a weak successor (base rate "
                << fmt_fixed(100.0 * static_cast<double>(b.weak_total) / kRows, 1)
                << "%)\n\n";
    }

    Json j = Json::object();
    j["bank"] = static_cast<std::int64_t>(bank);
    Json heatmap = Json::array();
    for (const std::string& line : b.heatmap) heatmap.push_back(line);
    j["heatmap"] = std::move(heatmap);
    j["rows"] = static_cast<std::int64_t>(kRows);
    j["rows_below_nominal"] = b.below_nominal;
    j["strong_fraction"] = static_cast<double>(b.strong) / kRows;
    j["min_trcd_ns"] = b.min_ns;
    j["max_trcd_ns"] = b.max_ns;
    j["weak_fraction"] = static_cast<double>(b.weak_total) / kRows;
    j["weak_clustering"] =
        static_cast<double>(b.weak_with_weak_neighbour) /
        static_cast<double>(std::max<std::int64_t>(b.weak_total, 1));
    banks.push_back(std::move(j));
  }

  if (opts.verbose) {
    std::cout << "Lines characterized: " << lines_tested << "\n";
  }

  Json out = Json::object();
  out["banks"] = std::move(banks);
  out["lines_tested"] = lines_tested;
  out["paper_strong_fraction"] = 0.845;
  // Per-repetition aggregate: bank-0 strong fraction of each rep's chip.
  std::vector<double> strong_frac;
  for (int rep = 0; rep < opts.iters; ++rep) {
    std::int64_t strong = 0;
    for (std::size_t chunk = 0; chunk < kChunksPerBank; ++chunk) {
      strong += chunks[static_cast<std::size_t>(rep) * per_rep + chunk].strong;
    }
    strong_frac.push_back(static_cast<double>(strong) / kRows);
  }
  out["strong_fraction_bank0_per_rep"] = rep_metric_json(strong_frac);
  return out;
}

// --- fig13_trcd_speedup ---------------------------------------------------

Json run_fig13(const RunOptions& opts) {
  const auto names = workloads::fig13_names();
  const std::size_t n = names.size();

  ThreadPool pool(opts.threads);
  const auto all = parallel_map(
      pool, static_cast<std::size_t>(opts.iters) * n, [&](std::size_t task) {
        const std::size_t rep = task / n;
        return measure_trcd_speedup(names[task % n],
                                    rep_seed(opts, static_cast<int>(rep)));
      });

  TextTable t;
  t.set_header({"Workload", "EasyDRAM", "Ramulator 2.0", "(EasyDRAM MPKC)"});
  std::vector<double> easy_speedups, ram_speedups, easy_pct;
  Json rows = Json::array();
  for (std::size_t i = 0; i < n; ++i) {
    const TrcdSpeedup& s = all[i];  // Repetition 0.
    easy_speedups.push_back(s.easy);
    ram_speedups.push_back(s.ram);
    easy_pct.push_back((s.easy - 1.0) * 100.0);
    t.add_row({std::string(names[i]), fmt_fixed((s.easy - 1.0) * 100.0, 2) + "%",
               fmt_fixed((s.ram - 1.0) * 100.0, 2) + "%",
               fmt_fixed(s.mpkc, 2)});
    Json j = Json::object();
    j["workload"] = names[i];
    j["easydram_speedup"] = s.easy;
    j["ramulator_speedup"] = s.ram;
    j["mpkc"] = s.mpkc;
    rows.push_back(std::move(j));
  }
  const double easy_geo = geomean(easy_speedups, GeomeanPolicy::kSkipNonPositive);
  const double ram_geo = geomean(ram_speedups, GeomeanPolicy::kSkipNonPositive);
  t.add_row({"geomean", fmt_fixed((easy_geo - 1.0) * 100.0, 2) + "%",
             fmt_fixed((ram_geo - 1.0) * 100.0, 2) + "%", ""});

  if (opts.verbose) {
    t.print(std::cout);
    Summary easy_sum, ram_sum;
    for (double v : easy_speedups) easy_sum.add((v - 1.0) * 100.0);
    for (double v : ram_speedups) ram_sum.add((v - 1.0) * 100.0);
    std::cout << "\nEasyDRAM avg(max): " << fmt_fixed(easy_sum.mean(), 2)
              << "%(" << fmt_fixed(easy_sum.max(), 2)
              << "%)  — paper: 2.75%(9.76%)\n"
              << "Ramulator avg(max): " << fmt_fixed(ram_sum.mean(), 2) << "%("
              << fmt_fixed(ram_sum.max(), 2) << "%)  — paper: 2.58%(7.04%)\n"
              << "(Workloads are not memory-intensive — paper reports 2.2 LLC\n"
              << "misses per kilo-cycle on average — so single-digit gains are\n"
              << "the expected shape.)\n";
  }

  Json out = Json::object();
  out["workloads"] = std::move(rows);
  Json summary = Json::object();
  summary["easydram_geomean"] = easy_geo;
  summary["ramulator_geomean"] = ram_geo;
  summary["easydram_pct_mean"] = mean(easy_pct);
  summary["easydram_pct_stddev"] = stddev(easy_pct);
  summary["easydram_pct_p50"] = p50(easy_pct);
  summary["easydram_pct_p95"] = p95(easy_pct);
  // Per-repetition aggregate: the EasyDRAM speedup geomean of each rep's
  // synthetic chip.
  std::vector<double> rep_geo;
  for (int rep = 0; rep < opts.iters; ++rep) {
    std::vector<double> xs;
    for (std::size_t i = 0; i < n; ++i) {
      xs.push_back(all[static_cast<std::size_t>(rep) * n + i].easy);
    }
    rep_geo.push_back(geomean(xs, GeomeanPolicy::kSkipNonPositive));
  }
  summary["easydram_geomean_per_rep"] = rep_metric_json(rep_geo);
  out["summary"] = std::move(summary);
  return out;
}

}  // namespace

void register_trcd_scenarios(ScenarioRegistry& r) {
  r.add({"fig12_trcd_heatmap",
         "Minimum reliable tRCD heatmap over the first two banks",
         "EasyDRAM (DSN 2025), Fig. 12", &run_fig12});
  r.add({"fig13_trcd_speedup",
         "tRCD-reduction speedup across the PolyBench kernel subset",
         "EasyDRAM (DSN 2025), Fig. 13", &run_fig13});
}

}  // namespace easydram::cli
