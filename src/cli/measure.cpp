#include "cli/measure.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <vector>

#include "common/stats.hpp"
#include "ramulator/ramulator.hpp"
#include "smc/rowclone_alloc.hpp"
#include "smc/trcd_profiler.hpp"
#include "workloads/builder.hpp"
#include "workloads/lmbench.hpp"
#include "workloads/polybench.hpp"

namespace easydram::cli {

void banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n=== " << title << " ===\n"
            << "Reproduces: " << paper_ref << "\n\n";
}

std::string fmt_size(std::uint64_t bytes) {
  if (bytes >= (1u << 20)) return std::to_string(bytes >> 20) + "M";
  return std::to_string(bytes >> 10) + "K";
}

RepStats reduce_reps(std::span<const double> samples, int warmup) {
  if (warmup < 0) throw StatsError("reduce_reps: negative warmup");
  if (static_cast<std::size_t>(warmup) >= samples.size()) {
    throw StatsError("reduce_reps: no measured samples after warmup");
  }
  for (const double s : samples) {
    if (!std::isfinite(s) || s < 0.0) {
      throw StatsError("reduce_reps: non-finite or negative sample");
    }
  }
  const std::span<const double> measured = samples.subspan(
      static_cast<std::size_t>(warmup));

  RepStats r;
  r.warmup = warmup;
  r.measured = static_cast<int>(measured.size());
  r.best = *std::min_element(measured.begin(), measured.end());
  r.mean = mean(measured);
  r.median = p50(measured);
  r.p95 = p95(measured);
  r.stddev = stddev(measured);
  r.cv = r.median > 0.0 ? r.stddev / r.median : 0.0;
  return r;
}

CopyInitResult run_copyinit_easydram(const sys::SystemConfig& cfg,
                                     workloads::CopyInitParams params,
                                     std::size_t rows, int verify_trials) {
  sys::EasyDramSystem sysm(cfg);
  smc::RowClonePairTester tester(sysm.api(), verify_trials);
  smc::RowCloneAllocator alloc(sysm.api(), sysm.clone_map(), tester);

  std::vector<smc::CopyPlanEntry> copy_plan;
  std::vector<smc::InitPlanEntry> init_plan;
  if (params.kind == workloads::CopyInitParams::Kind::kCopy) {
    copy_plan = alloc.plan_copy(rows);
  } else {
    init_plan = alloc.plan_init(rows);
    // Pattern rows are initialized once at setup (uncharged): write the
    // init pattern into each reserved source row.
    std::vector<std::uint8_t> pattern(sysm.device().geometry().row_bytes, 0xA5);
    for (const auto& e : init_plan) {
      sysm.device().backdoor_write_row(e.pattern_src.bank, e.pattern_src.row,
                                       pattern);
    }
  }
  if (params.use_rowclone) sysm.enable_rowclone();

  const smc::LinearMapper mapper(sysm.device().geometry());
  workloads::CopyInitTrace trace(params, mapper, std::move(copy_plan),
                                 std::move(init_plan));
  const cpu::RunResult r = sysm.run(trace);

  CopyInitResult out;
  out.rowclones = r.rowclones;
  out.fallbacks = r.rowclone_fallbacks;
  if (r.markers.size() >= 2) {
    out.measured_cycles = Cycles{r.markers.back() - r.markers.front()};
  } else {
    out.measured_cycles = Cycles{r.cycles};
  }
  return out;
}

double copyinit_speedup_easydram(const sys::SystemConfig& cfg,
                                 workloads::CopyInitParams::Kind kind,
                                 std::size_t rows, bool clflush) {
  workloads::CopyInitParams base;
  base.kind = kind;
  base.use_rowclone = false;
  base.clflush = clflush;
  const CopyInitResult cpu = run_copyinit_easydram(cfg, base, rows);

  workloads::CopyInitParams rc = base;
  rc.use_rowclone = true;
  const CopyInitResult rowclone = run_copyinit_easydram(cfg, rc, rows);

  return static_cast<double>(cpu.measured_cycles.count) /
         static_cast<double>(rowclone.measured_cycles.count);
}

double copyinit_speedup_ramulator(workloads::CopyInitParams::Kind kind,
                                  std::size_t rows, bool clflush) {
  // Ramulator 2.0's modelling gap (paper footnote 6): all pairs clone.
  std::vector<smc::CopyPlanEntry> copy_plan;
  std::vector<smc::InitPlanEntry> init_plan;
  for (std::size_t i = 0; i < rows; ++i) {
    if (kind == workloads::CopyInitParams::Kind::kCopy) {
      smc::CopyPlanEntry e;
      e.src = smc::RowRef{0, static_cast<std::uint32_t>(2 * i)};
      e.dst = smc::RowRef{0, static_cast<std::uint32_t>(2 * i + 1)};
      e.use_rowclone = true;
      copy_plan.push_back(e);
    } else {
      smc::InitPlanEntry e;
      e.dst = smc::RowRef{0, static_cast<std::uint32_t>(i)};
      e.pattern_src = smc::RowRef{0, 32767};
      e.use_rowclone = true;
      init_plan.push_back(e);
    }
  }
  const dram::Geometry geo;
  const smc::LinearMapper mapper(geo);

  auto run = [&](bool use_rowclone) {
    workloads::CopyInitParams p;
    p.kind = kind;
    p.use_rowclone = use_rowclone;
    p.clflush = clflush;
    workloads::CopyInitTrace trace(p, mapper, copy_plan, init_plan);
    ramulator::RamulatorSim sim{ramulator::RamulatorConfig{}};
    const auto stats = sim.run(trace);
    if (stats.markers.size() >= 2) {
      return stats.markers.back() - stats.markers.front();
    }
    return stats.cycles;
  };
  return static_cast<double>(run(false)) / static_cast<double>(run(true));
}

RequestBreakdown measure_request_breakdown(const sys::SystemConfig& cfg,
                                           double clock_hz) {
  sys::EasyDramSystem sysm(cfg);
  workloads::TraceBuilder b;
  constexpr int kPreamble = 100;
  b.compute(kPreamble);
  b.load_dependent(8192);
  cpu::VectorTrace trace(b.take());
  const cpu::RunResult r = sysm.run(trace);

  const double total_ns = static_cast<double>(r.cycles) / clock_hz * 1e9;
  const double processing_ns =
      static_cast<double>(kPreamble) /
      static_cast<double>(cfg.core.issue_width) / clock_hz * 1e9;
  const double memory_ns = sysm.smc_stats().dram_busy.nanoseconds();
  RequestBreakdown out;
  out.processing_ns = processing_ns;
  out.memory_ns = memory_ns;
  out.scheduling_ns = std::max(0.0, total_ns - processing_ns - memory_ns);
  return out;
}

double cycles_per_load(const sys::SystemConfig& cfg,
                       std::uint64_t buffer_bytes, std::uint64_t chase_seed) {
  sys::EasyDramSystem sysm(cfg);
  // Scale passes so cold misses do not dominate small buffers.
  const int passes = static_cast<int>(
      std::clamp<std::uint64_t>((8ull << 20) / buffer_bytes, 4, 128));
  auto records = workloads::make_lmbench_chase(buffer_bytes, passes,
                                               /*base_addr=*/0, chase_seed);
  cpu::VectorTrace trace(std::move(records));
  const cpu::RunResult r = sysm.run(trace);
  return static_cast<double>(r.cycles) / static_cast<double>(r.loads);
}

Cycles run_kernel_cycles(const sys::SystemConfig& cfg,
                         std::string_view kernel) {
  sys::EasyDramSystem sysm(cfg);
  auto records = workloads::generate_kernel(kernel);
  cpu::VectorTrace trace(std::move(records));
  return Cycles{sysm.run(trace).cycles};
}

namespace {

/// Rows per bank the workload's footprint can touch under the line-
/// interleaved mapping (footprint striped across all banks).
std::uint32_t footprint_rows_per_bank(const std::vector<cpu::TraceRecord>& trace,
                                      const dram::Geometry& geo) {
  std::uint64_t max_addr = 0;
  for (const auto& r : trace) max_addr = std::max(max_addr, r.addr);
  const std::uint64_t lines = max_addr / 64 + 1;
  const std::uint64_t per_bank = lines / geo.num_banks() + 1;
  return static_cast<std::uint32_t>(per_bank / geo.cols_per_row() + 2);
}

}  // namespace

TrcdSpeedup measure_trcd_speedup(std::string_view kernel, std::uint64_t seed) {
  const dram::Geometry geo;
  const auto trace_records = workloads::generate_kernel(kernel);
  const std::uint32_t rows = footprint_rows_per_bank(trace_records, geo);
  std::vector<std::uint32_t> banks(geo.num_banks());
  for (std::uint32_t b = 0; b < geo.num_banks(); ++b) banks[b] = b;

  // --- EasyDRAM: baseline vs Bloom-directed reduction, run to completion.
  auto make_cfg = [seed] {
    sys::SystemConfig cfg = sys::jetson_nano_time_scaling();
    cfg.mapping = smc::MappingKind::kLineInterleaved;
    cfg.variation.seed = seed;
    return cfg;
  };
  sys::EasyDramSystem base(make_cfg());
  cpu::SpanTrace t_base(trace_records);
  const auto r_base = base.run(t_base);

  sys::EasyDramSystem reduced(make_cfg());
  reduced.characterize_and_install_weak_rows(banks, rows, Picoseconds{9000},
                                             1 << 17, 4);
  cpu::SpanTrace t_red(trace_records);
  const auto r_red = reduced.run(t_red);

  TrcdSpeedup out;
  out.easy =
      static_cast<double>(r_base.cycles) / static_cast<double>(r_red.cycles);
  out.mpkc = 1000.0 * static_cast<double>(r_base.l2_misses) /
             static_cast<double>(r_base.cycles);

  // --- Ramulator: nominal vs profiled per-row tRCD (ground truth from
  // the same characterization; 500 M-instruction window).
  ramulator::RamulatorConfig rcfg;
  ramulator::RamulatorSim sim_base(rcfg);
  cpu::SpanTrace t_ram1(trace_records);
  const auto s_base = sim_base.run(t_ram1);

  ramulator::RamulatorConfig rcfg_red = rcfg;
  dram::VariationConfig vcfg;
  vcfg.seed = seed;
  const dram::VariationModel variation(geo, vcfg);
  rcfg_red.trcd_of = [&variation](std::uint32_t bank, std::uint32_t row) {
    return variation.row_min_trcd(bank, row) <= Picoseconds{9000}
               ? Picoseconds{9000}
               : Picoseconds{13500};
  };
  ramulator::RamulatorSim sim_red(rcfg_red);
  cpu::SpanTrace t_ram2(trace_records);
  const auto s_red = sim_red.run(t_ram2);
  out.ram =
      static_cast<double>(s_base.cycles) / static_cast<double>(s_red.cycles);
  return out;
}

SimSpeed measure_sim_speed(std::string_view kernel, std::uint64_t seed) {
  const auto records = workloads::generate_kernel(kernel);

  sys::SystemConfig cfg = sys::jetson_nano_time_scaling();
  cfg.variation.seed = seed;
  sys::EasyDramSystem sysm(cfg);
  cpu::SpanTrace t1(records);
  const auto r = sysm.run(t1);

  SimSpeed out;
  out.easy_mhz =
      static_cast<double>(r.cycles) / sysm.wall().seconds() / 1e6;

  ramulator::RamulatorSim sim{ramulator::RamulatorConfig{}};
  cpu::SpanTrace t2(records);
  const auto host_start = std::chrono::steady_clock::now();
  const auto s = sim.run(t2);
  const double host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    host_start)
          .count();
  out.ram_mhz = static_cast<double>(s.cycles) / host_seconds / 1e6;
  out.ratio = out.easy_mhz / out.ram_mhz;
  return out;
}

}  // namespace easydram::cli
