// Working-set characterization scenarios: STREAM bandwidth kernels and a
// dependent-load pointer chase, each swept across ~8 working-set sizes
// spanning the modelled hierarchy's L1 -> LLC -> DRAM transitions. These
// are the es989-exemplar-style bandwidth-vs-size / latency-vs-size curves,
// run entirely on emulated time — every number is a pure function of the
// configuration, so both scenarios are golden-hashed and bit-identical at
// any host parallelism.
//
// Like the qos_* scenarios, the cache hierarchy is scaled down (8 KiB L1,
// 64 KiB L2) so the whole sweep spans L1-resident to DRAM-bound footprints
// at CI-sized traces. The bandwidth sweep additionally runs the core in
// its in-order (blocking-load) configuration: the out-of-order model
// retires cache-hitting independent loads for free, which would make the
// L1 and L2 plateaus indistinguishable — exposing each level's service
// latency in the sustained rate is exactly what the curve is for.

#include <algorithm>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "cli/measure.hpp"
#include "cli/scenario.hpp"
#include "cli/thread_budget.hpp"
#include "cli/thread_pool.hpp"
#include "common/table.hpp"
#include "cpu/trace.hpp"
#include "sys/system.hpp"
#include "workloads/streamsweep.hpp"

namespace easydram::cli {
namespace {

using workloads::LatencySweepParams;
using workloads::StreamKernel;
using workloads::StreamSweepParams;

constexpr std::uint64_t kSweepL1Bytes = 8 * 1024;
constexpr std::uint64_t kSweepL2Bytes = 64 * 1024;
/// Checkpoint indices into sweep_working_sets: comfortably L1-resident
/// (l1/2), past L1 but comfortably L2-resident (l2/2), and far past L2
/// (8*l2) — the three plateaus the monotonicity contract compares.
constexpr std::size_t kL1Point = 0;
constexpr std::size_t kL2Point = 3;
constexpr std::size_t kDramPoint = 7;

/// Measured passes scale inversely with the footprint so small working
/// sets amortize their cold start over more traffic while DRAM-bound
/// points stay CI-cheap; one warm pass primes the caches outside the
/// measured window either way.
int measured_passes_for(std::uint64_t working_set_bytes) {
  const std::uint64_t p = (128 * 1024) / working_set_bytes;
  return static_cast<int>(std::clamp<std::uint64_t>(p, 2, 32));
}

sys::SystemConfig sweep_config(const RunOptions& opts, std::uint64_t seed,
                               unsigned pump_workers, bool blocking_loads) {
  sys::SystemConfig cfg = sys::jetson_nano_time_scaling();
  cfg.variation.seed = seed;
  cfg.caches.l1 = {kSweepL1Bytes, 4, 64};
  cfg.caches.l2 = {kSweepL2Bytes, 8, 64};
  cfg.core.blocking_loads = blocking_loads;
  if (opts.sched.has_value()) cfg.sched = *opts.sched;
  cfg.pump_workers = pump_workers;
  return cfg;
}

/// One marker-bounded trace run: the cycles between the two markers plus
/// the whole-run counters.
struct TraceRun {
  std::int64_t measured_cycles = 0;
  cpu::RunResult run;
};

TraceRun run_trace(const sys::SystemConfig& cfg,
                   std::vector<cpu::TraceRecord> records) {
  sys::EasyDramSystem sysm(cfg);
  cpu::VectorTrace trace(std::move(records));
  TraceRun t;
  t.run = sysm.run(trace);
  EASYDRAM_EXPECTS(t.run.markers.size() == 2);
  t.measured_cycles = t.run.markers[1] - t.run.markers[0];
  return t;
}

double per_kilocycle(std::uint64_t units, std::int64_t cycles) {
  return cycles > 0
             ? static_cast<double>(units) * 1000.0 / static_cast<double>(cycles)
             : 0.0;
}

// --- stream_sweep ---------------------------------------------------------

struct StreamPoint {
  StreamSweepParams params;
  TraceRun t;
  std::uint64_t measured_bytes = 0;
  double bytes_per_kcycle = 0.0;
};

Json run_stream_sweep(const RunOptions& opts) {
  const std::vector<std::uint64_t> sizes =
      workloads::sweep_working_sets(kSweepL1Bytes, kSweepL2Bytes);
  const auto kernels = std::size(workloads::kAllStreamKernels);

  const std::size_t per_rep = kernels * sizes.size();
  const std::size_t n_tasks = static_cast<std::size_t>(opts.iters) * per_rep;
  const ThreadBudget budget =
      split_thread_budget(opts.threads, opts.pump_workers, n_tasks, 1);
  ThreadPool pool(budget.sweep_threads);
  const auto all = parallel_map(pool, n_tasks, [&](std::size_t task) {
    const std::size_t rep = task / per_rep;
    const std::size_t which = task % per_rep;
    StreamPoint pt;
    pt.params.kernel = workloads::kAllStreamKernels[which / sizes.size()];
    pt.params.working_set_bytes = sizes[which % sizes.size()];
    pt.params.measured_passes =
        measured_passes_for(pt.params.working_set_bytes);
    const sys::SystemConfig cfg =
        sweep_config(opts, rep_seed(opts, static_cast<int>(rep)),
                     budget.pump_workers, /*blocking_loads=*/true);
    pt.t = run_trace(cfg, workloads::make_stream_trace(pt.params));
    pt.measured_bytes =
        workloads::stream_bytes_per_pass(pt.params) *
        static_cast<std::uint64_t>(pt.params.measured_passes);
    pt.bytes_per_kcycle = per_kilocycle(pt.measured_bytes, pt.t.measured_cycles);
    return pt;
  });

  // Repetition 0 provides the detail rows (rows = sizes, columns = kernels).
  TextTable table;
  table.set_header({"Working set", "copy B/kc", "scale B/kc", "add B/kc",
                    "triad B/kc"});
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    std::vector<std::string> row{fmt_size(sizes[si])};
    for (std::size_t ki = 0; ki < kernels; ++ki) {
      row.push_back(fmt_fixed(all[ki * sizes.size() + si].bytes_per_kcycle, 1));
    }
    table.add_row(row);
  }

  bool monotone = true;
  Json kernel_rows = Json::array();
  for (std::size_t ki = 0; ki < kernels; ++ki) {
    const StreamPoint* pts = &all[ki * sizes.size()];
    Json j = Json::object();
    j["kernel"] = workloads::to_string(workloads::kAllStreamKernels[ki]);
    j["arrays"] = static_cast<std::int64_t>(
        workloads::stream_array_count(workloads::kAllStreamKernels[ki]));
    Json points = Json::array();
    for (std::size_t si = 0; si < sizes.size(); ++si) {
      const StreamPoint& pt = pts[si];
      Json p = Json::object();
      p["working_set_bytes"] =
          static_cast<std::int64_t>(pt.params.working_set_bytes);
      p["lines_per_array"] =
          static_cast<std::int64_t>(workloads::stream_lines_per_array(pt.params));
      p["measured_passes"] = pt.params.measured_passes;
      p["measured_bytes"] = static_cast<std::int64_t>(pt.measured_bytes);
      p["measured_cycles"] = pt.t.measured_cycles;
      p["bytes_per_kcycle"] = pt.bytes_per_kcycle;
      p["l1_misses"] = pt.t.run.l1_misses;
      p["l2_misses"] = pt.t.run.l2_misses;
      points.push_back(std::move(p));
    }
    j["points"] = std::move(points);
    const double l1 = pts[kL1Point].bytes_per_kcycle;
    const double l2 = pts[kL2Point].bytes_per_kcycle;
    const double dram = pts[kDramPoint].bytes_per_kcycle;
    const bool k_monotone = l1 > l2 && l2 > dram;
    monotone = monotone && k_monotone;
    j["monotone_bandwidth_drop"] = k_monotone;
    j["l1_over_l2_bandwidth"] = l2 > 0.0 ? l1 / l2 : 0.0;
    j["l2_over_dram_bandwidth"] = dram > 0.0 ? l2 / dram : 0.0;
    kernel_rows.push_back(std::move(j));
  }

  // Per-repetition aggregate: the copy kernel's L1-over-DRAM bandwidth
  // ratio — the whole-curve compression the hierarchy buys.
  std::vector<double> ratio_rep;
  for (int rep = 0; rep < opts.iters; ++rep) {
    const StreamPoint* pts = &all[static_cast<std::size_t>(rep) * per_rep];
    const double dram = pts[kDramPoint].bytes_per_kcycle;
    ratio_rep.push_back(dram > 0.0 ? pts[kL1Point].bytes_per_kcycle / dram
                                   : 0.0);
  }

  if (opts.verbose) {
    table.print(std::cout);
    std::cout << "\nExpected shape: each kernel's sustained rate is flat while\n"
                 "the arrays fit a level, then drops at every capacity wall —\n"
                 "L1-resident points stream at hit speed, the L2 plateau pays\n"
                 "the L2 service latency per line, and past the LLC every\n"
                 "pass goes to DRAM (plus writeback traffic). The in-order\n"
                 "core configuration makes each level's latency visible in\n"
                 "the rate; see docs/scenarios.md.\n";
  }

  Json out = Json::object();
  out["l1_bytes"] = static_cast<std::int64_t>(kSweepL1Bytes);
  out["l2_bytes"] = static_cast<std::int64_t>(kSweepL2Bytes);
  Json sj = Json::array();
  for (const std::uint64_t s : sizes) {
    sj.push_back(static_cast<std::int64_t>(s));
  }
  out["working_set_bytes"] = std::move(sj);
  out["kernels"] = std::move(kernel_rows);
  out["monotone_bandwidth_drop_all_kernels"] = monotone;
  out["copy_l1_over_dram_bandwidth_per_rep"] = rep_metric_json(ratio_rep);
  return out;
}

// --- latency_sweep --------------------------------------------------------

struct LatencyPoint {
  LatencySweepParams params;
  TraceRun t;
  std::uint64_t measured_loads = 0;
  double cycles_per_load = 0.0;
};

Json run_latency_sweep(const RunOptions& opts) {
  const std::vector<std::uint64_t> sizes =
      workloads::sweep_working_sets(kSweepL1Bytes, kSweepL2Bytes);

  const std::size_t per_rep = sizes.size();
  const std::size_t n_tasks = static_cast<std::size_t>(opts.iters) * per_rep;
  const ThreadBudget budget =
      split_thread_budget(opts.threads, opts.pump_workers, n_tasks, 1);
  ThreadPool pool(budget.sweep_threads);
  const auto all = parallel_map(pool, n_tasks, [&](std::size_t task) {
    const std::size_t rep = task / per_rep;
    LatencyPoint pt;
    pt.params.working_set_bytes = sizes[task % per_rep];
    pt.params.measured_passes =
        measured_passes_for(pt.params.working_set_bytes);
    // The chase permutation is part of the workload, not the chip: its
    // seed stays fixed across repetitions (like lmbench's), while the
    // chip's variation seed follows the rep stream.
    const sys::SystemConfig cfg =
        sweep_config(opts, rep_seed(opts, static_cast<int>(rep)),
                     budget.pump_workers, /*blocking_loads=*/false);
    pt.t = run_trace(cfg, workloads::make_latency_trace(pt.params));
    pt.measured_loads =
        workloads::latency_loads_per_pass(pt.params) *
        static_cast<std::uint64_t>(pt.params.measured_passes);
    pt.cycles_per_load =
        pt.measured_loads > 0
            ? static_cast<double>(pt.t.measured_cycles) /
                  static_cast<double>(pt.measured_loads)
            : 0.0;
    return pt;
  });

  TextTable table;
  table.set_header({"Working set", "loads", "cycles/load"});
  Json points = Json::array();
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    const LatencyPoint& pt = all[si];
    table.add_row({fmt_size(sizes[si]),
                   std::to_string(pt.measured_loads),
                   fmt_fixed(pt.cycles_per_load, 2)});
    Json p = Json::object();
    p["working_set_bytes"] =
        static_cast<std::int64_t>(pt.params.working_set_bytes);
    p["lines"] = static_cast<std::int64_t>(
        workloads::latency_loads_per_pass(pt.params));
    p["measured_passes"] = pt.params.measured_passes;
    p["measured_loads"] = static_cast<std::int64_t>(pt.measured_loads);
    p["measured_cycles"] = pt.t.measured_cycles;
    p["cycles_per_load"] = pt.cycles_per_load;
    p["l2_misses"] = pt.t.run.l2_misses;
    points.push_back(std::move(p));
  }

  const double l1 = all[kL1Point].cycles_per_load;
  const double l2 = all[kL2Point].cycles_per_load;
  const double dram = all[kDramPoint].cycles_per_load;
  const bool monotone = l1 < l2 && l2 < dram;

  std::vector<double> ratio_rep;
  for (int rep = 0; rep < opts.iters; ++rep) {
    const LatencyPoint* pts = &all[static_cast<std::size_t>(rep) * per_rep];
    ratio_rep.push_back(pts[kL1Point].cycles_per_load > 0.0
                            ? pts[kDramPoint].cycles_per_load /
                                  pts[kL1Point].cycles_per_load
                            : 0.0);
  }

  if (opts.verbose) {
    table.print(std::cout);
    std::cout << "\nExpected shape: the chase's single-cycle permutation makes\n"
                 "every load depend on the previous one, so cycles/load is the\n"
                 "exposed latency of whichever level holds the working set —\n"
                 "the L1 hit time, then the L2 service latency, then the full\n"
                 "DRAM round trip (row misses dominating, since the chase\n"
                 "order strews lines across rows).\n";
  }

  Json out = Json::object();
  out["l1_bytes"] = static_cast<std::int64_t>(kSweepL1Bytes);
  out["l2_bytes"] = static_cast<std::int64_t>(kSweepL2Bytes);
  out["points"] = std::move(points);
  out["monotone_latency_rise"] = monotone;
  out["dram_over_l1_latency_per_rep"] = rep_metric_json(ratio_rep);
  return out;
}

}  // namespace

void register_streamsweep_scenarios(ScenarioRegistry& r) {
  r.add({"stream_sweep",
         "STREAM copy/scale/add/triad bandwidth across L1/LLC/DRAM sizes",
         "EasyDRAM (DSN 2025), extension: workload characterization",
         &run_stream_sweep});
  r.add({"latency_sweep",
         "Dependent-load pointer-chase latency across L1/LLC/DRAM sizes",
         "EasyDRAM (DSN 2025), extension: workload characterization",
         &run_latency_sweep});
}

}  // namespace easydram::cli
