// Retention-aware refresh (RAIDR-style) scenarios: REF-issue savings of
// the skipping policy on a benign workload, the savings' sensitivity to
// the chip's retention weakness, the interplay with the RowHammer
// mitigators (skipped stripes stop resetting victim counters), and the
// misbinning risk of an incomplete retention-profiling pass, checked
// against the device's retention ground truth. Fourth technique family of
// this repository (after RowClone, reduced-tRCD, and the RowHammer
// mitigators), exercising the refresh pacing machinery from the opposite
// direction to the mitigators' *extra* refreshes.

#include <iostream>
#include <string>
#include <vector>

#include "cli/measure.hpp"
#include "cli/scenario.hpp"
#include "cli/thread_pool.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "workloads/hammer.hpp"

namespace easydram::cli {
namespace {

using smc::RefreshKind;
using smc::mitigation::MitigationKind;

/// The refresh-stress trace: memory-light but time-rich. Refresh pacing is
/// paced by *emulated* time (one slot per tREFI), so the subject here is
/// how many tREFI slots a run spans, not its bandwidth: each dependent
/// row-miss load executes after a long non-memory gap, and 320 records
/// span ~5 ms of emulated time — ~630 refresh slots, enough for a stable
/// measured skip rate (the phase-spread schedule skips at the steady-state
/// rate from slot 0) and, in the time-compressed misbinning chamber, ~10
/// full refresh rounds.
constexpr std::size_t kStressRecords = 320;
constexpr std::uint32_t kStressGapInstructions = 22000;

std::vector<cpu::TraceRecord> refresh_stress_trace() {
  std::vector<cpu::TraceRecord> records;
  records.reserve(kStressRecords);
  for (std::size_t i = 0; i < kStressRecords; ++i) {
    cpu::TraceRecord r;
    r.op = cpu::Op::kLoadDependent;
    r.gap_instructions = kStressGapInstructions;
    r.addr = static_cast<std::uint64_t>(i) * 8192;  // One fresh row each.
    records.push_back(r);
  }
  return records;
}

sys::SystemConfig refresh_config(std::uint64_t seed, RefreshKind kind) {
  sys::SystemConfig cfg = sys::jetson_nano_time_scaling();
  cfg.variation.seed = seed;
  cfg.refresh = kind;
  return cfg;
}

/// One measured run: refresh activity, optional hammer/retention ground
/// truth, throughput.
struct RefreshOutcome {
  std::int64_t issued = 0;
  std::int64_t skipped = 0;
  std::int64_t slots = 0;
  std::int64_t requests = 0;
  double wall_us = 0;
  std::int64_t exposure = 0;
  std::int64_t neighbor_refreshes = 0;
  std::int64_t violations = 0;
  double overshoot_us = 0;
  smc::RaidrBinStats bins{};
};

RefreshOutcome run_trace(const sys::SystemConfig& cfg,
                         std::vector<cpu::TraceRecord> records) {
  sys::EasyDramSystem sysm(cfg);
  cpu::VectorTrace trace(std::move(records));
  sysm.run(trace);
  RefreshOutcome o;
  const smc::ApiStats s = sysm.smc_stats();
  o.issued = s.refreshes_issued;
  o.skipped = s.refreshes_skipped;
  o.slots = sysm.refresh_slots_consumed();
  o.requests = s.requests_received;
  o.wall_us = sysm.wall().microseconds();
  o.exposure = sysm.max_hammer_exposure();
  o.neighbor_refreshes = sysm.mitigation_stats().neighbor_refreshes;
  o.violations = sysm.retention_violations();
  o.overshoot_us = sysm.max_retention_overshoot().microseconds();
  o.bins = sysm.refresh_bin_stats();
  return o;
}

double reduction_pct(const RefreshOutcome& o) {
  return o.slots > 0
             ? 100.0 * static_cast<double>(o.skipped) / static_cast<double>(o.slots)
             : 0.0;
}

Json outcome_json(const RefreshOutcome& o, const dram::TimingParams& t) {
  Json j = Json::object();
  j["refreshes_issued"] = o.issued;
  j["refreshes_skipped"] = o.skipped;
  j["refresh_slots"] = o.slots;
  j["ref_reduction_pct"] = reduction_pct(o);
  // Command-slot/energy proxy: every skipped REF returns one tRFC of
  // all-bank busy time (and the refresh energy a REF burns) to the rank.
  j["refresh_busy_saved_us"] = Picoseconds{t.tRFC.count * o.skipped}.microseconds();
  j["requests"] = o.requests;
  j["wall_us"] = o.wall_us;
  return j;
}

Json bins_json(const smc::RaidrBinStats& b) {
  Json j = Json::object();
  j["stripes_total"] = b.stripes_total;
  j["stripes_x1"] = b.stripes_x1;
  j["stripes_x2"] = b.stripes_x2;
  j["stripes_x4"] = b.stripes_x4;
  j["rows_profiled"] = b.rows_profiled;
  j["issue_fraction_predicted"] = b.issue_fraction;
  return j;
}

// --- raidr_baseline -------------------------------------------------------

constexpr RefreshKind kRefreshKinds[] = {RefreshKind::kAllRows,
                                         RefreshKind::kRaidr};

/// The headline savings run: the identical benign trace under the all-rows
/// regime and under RAIDR. The all-rows run must skip nothing; the RAIDR
/// run's measured reduction must track the profiled binning's predicted
/// issue fraction (the classic ~60-75% REF reduction).
Json run_raidr_baseline(const RunOptions& opts) {
  const std::vector<cpu::TraceRecord> trace = refresh_stress_trace();

  ThreadPool pool(opts.threads);
  const std::size_t n_kinds = std::size(kRefreshKinds);
  const auto all = parallel_map(
      pool, static_cast<std::size_t>(opts.iters) * n_kinds,
      [&](std::size_t task) {
        const auto rep = static_cast<int>(task / n_kinds);
        return run_trace(
            refresh_config(rep_seed(opts, rep), kRefreshKinds[task % n_kinds]),
            trace);
      });

  const dram::TimingParams timing = dram::ddr4_1333();
  TextTable t;
  t.set_header({"Refresh", "REF issued", "REF skipped", "reduction",
                "busy saved (us)", "wall (us)"});
  Json rows = Json::array();
  for (std::size_t ki = 0; ki < n_kinds; ++ki) {
    const RefreshOutcome& o = all[ki];  // Repetition 0 details.
    t.add_row({std::string(smc::to_string(kRefreshKinds[ki])),
               std::to_string(o.issued), std::to_string(o.skipped),
               fmt_fixed(reduction_pct(o), 1) + "%",
               fmt_fixed(Picoseconds{timing.tRFC.count * o.skipped}.microseconds(), 1),
               fmt_fixed(o.wall_us, 1)});
    Json j = outcome_json(o, timing);
    j["refresh"] = smc::to_string(kRefreshKinds[ki]);
    if (kRefreshKinds[ki] == RefreshKind::kRaidr) j["bins"] = bins_json(o.bins);
    rows.push_back(std::move(j));
  }

  std::vector<double> reduction_per_rep;
  for (int rep = 0; rep < opts.iters; ++rep) {
    reduction_per_rep.push_back(
        reduction_pct(all[static_cast<std::size_t>(rep) * n_kinds + 1]));
  }

  if (opts.verbose) {
    t.print(std::cout);
    std::cout << "\nRAIDR bins refresh stripes by their weakest row's modeled\n"
                 "retention (64/128/256 ms classes) and skips REF slots whose\n"
                 "stripe is not yet due. Reduction = skipped / total slots;\n"
                 "busy saved = skipped REFs x tRFC returned to the rank.\n";
  }

  Json out = Json::object();
  out["workload"] = "refresh_stress";
  out["stress_records"] = static_cast<std::int64_t>(kStressRecords);
  out["kinds"] = std::move(rows);
  out["ref_reduction_pct_per_rep"] = rep_metric_json(reduction_per_rep);
  return out;
}

// --- raidr_savings --------------------------------------------------------

/// Scale factors on the retention-weakness probabilities: 0 = an ideal
/// all-strong chip (maximum savings), 1 = the calibrated default, larger =
/// leakier chips whose weak stripes erode the savings.
constexpr double kWeaknessFactors[] = {0.0, 1.0, 8.0, 64.0};

Json run_raidr_savings(const RunOptions& opts) {
  const std::vector<cpu::TraceRecord> trace = refresh_stress_trace();

  ThreadPool pool(opts.threads);
  const std::size_t n = std::size(kWeaknessFactors);
  const auto all = parallel_map(
      pool, static_cast<std::size_t>(opts.iters) * n, [&](std::size_t task) {
        const auto rep = static_cast<int>(task / n);
        const double f = kWeaknessFactors[task % n];
        sys::SystemConfig cfg =
            refresh_config(rep_seed(opts, rep), RefreshKind::kRaidr);
        cfg.variation.retention_p_weakest *= f;
        cfg.variation.retention_p_weak *= f;
        return run_trace(cfg, trace);
      });

  const dram::TimingParams timing = dram::ddr4_1333();
  TextTable t;
  t.set_header({"Weakness x", "x1 stripes", "x2 stripes", "x4 stripes",
                "predicted issue", "measured reduction"});
  Json rows = Json::array();
  for (std::size_t i = 0; i < n; ++i) {
    const RefreshOutcome& o = all[i];  // Repetition 0 details.
    t.add_row({fmt_fixed(kWeaknessFactors[i], 0),
               std::to_string(o.bins.stripes_x1), std::to_string(o.bins.stripes_x2),
               std::to_string(o.bins.stripes_x4),
               fmt_fixed(o.bins.issue_fraction * 100.0, 1) + "%",
               fmt_fixed(reduction_pct(o), 1) + "%"});
    Json j = outcome_json(o, timing);
    j["weakness_factor"] = kWeaknessFactors[i];
    j["bins"] = bins_json(o.bins);
    rows.push_back(std::move(j));
  }

  std::vector<double> default_reduction_per_rep;
  for (int rep = 0; rep < opts.iters; ++rep) {
    default_reduction_per_rep.push_back(
        reduction_pct(all[static_cast<std::size_t>(rep) * n + 1]));
  }

  if (opts.verbose) {
    t.print(std::cout);
    std::cout << "\nMeasured reduction should track 100% - predicted issue\n"
                 "fraction; a leakier chip (more x1/x2 stripes) erodes the\n"
                 "savings toward zero.\n";
  }

  Json out = Json::object();
  out["workload"] = "refresh_stress";
  out["points"] = std::move(rows);
  out["default_reduction_pct_per_rep"] =
      rep_metric_json(default_reduction_per_rep);
  return out;
}

// --- raidr_vs_mitigation --------------------------------------------------

constexpr MitigationKind kMitKinds[] = {
    MitigationKind::kNone,
    MitigationKind::kPara,
    MitigationKind::kGraphene,
};

/// Interplay with the RowHammer mitigators on a double-sided hammer loop:
/// a skipped stripe's victim counters keep accumulating (periodic REFs no
/// longer reset them), so unmitigated exposure under RAIDR is at least the
/// all-rows exposure, while the targeted-refresh mitigators — which do not
/// depend on the periodic stripe sweep — still bound it.
Json run_raidr_vs_mitigation(const RunOptions& opts) {
  workloads::HammerParams hp;
  hp.pattern = workloads::HammerPattern::kDoubleSided;
  const std::vector<cpu::TraceRecord> trace = [&] {
    const sys::SystemConfig cfg = refresh_config(0, RefreshKind::kAllRows);
    const auto mapper = smc::make_mapper(cfg.mapping, cfg.geometry);
    std::vector<cpu::TraceRecord> t = workloads::make_hammer_trace(hp, *mapper);
    // Stretch the attack over ~2.7 ms of emulated time so the run crosses
    // the victim stripe's REF slot (row 1030 -> stripe 257, slot 257 at
    // ~2 ms): under all_rows that slot resets the victim counters mid-run;
    // under RAIDR the stripe's (strong) bin skips round 0 and the full
    // exposure accumulates.
    for (cpu::TraceRecord& r : t) r.gap_instructions = 1300;
    return t;
  }();

  ThreadPool pool(opts.threads);
  const std::size_t n_ref = std::size(kRefreshKinds);
  const std::size_t n_mit = std::size(kMitKinds);
  const std::size_t n = n_ref * n_mit;
  const auto all = parallel_map(
      pool, static_cast<std::size_t>(opts.iters) * n, [&](std::size_t task) {
        const auto rep = static_cast<int>(task / n);
        const std::size_t cell = task % n;
        const std::uint64_t seed = rep_seed(opts, rep);
        sys::SystemConfig cfg =
            refresh_config(seed, kRefreshKinds[cell / n_mit]);
        cfg.track_row_hammer = true;
        cfg.mitigation.kind = kMitKinds[cell % n_mit];
        // Same PARA stream seeding as the rowhammer scenarios: mixed so it
        // never aliases the chip's variation stream, deterministic at any
        // --threads value.
        cfg.mitigation.seed = hash_mix(seed, 0x4A77E12u);
        return run_trace(cfg, trace);
      });

  const dram::TimingParams timing = dram::ddr4_1333();
  TextTable t;
  t.set_header({"Refresh", "Mitigation", "exposure", "neighbor refreshes",
                "REF issued", "REF skipped"});
  Json rows = Json::array();
  for (std::size_t cell = 0; cell < n; ++cell) {
    const RefreshOutcome& o = all[cell];  // Repetition 0 details.
    const RefreshKind rk = kRefreshKinds[cell / n_mit];
    const MitigationKind mk = kMitKinds[cell % n_mit];
    t.add_row({std::string(smc::to_string(rk)),
               std::string(smc::mitigation::to_string(mk)),
               std::to_string(o.exposure), std::to_string(o.neighbor_refreshes),
               std::to_string(o.issued), std::to_string(o.skipped)});
    Json j = outcome_json(o, timing);
    j["refresh"] = smc::to_string(rk);
    j["mitigation"] = smc::mitigation::to_string(mk);
    j["exposure"] = o.exposure;
    j["neighbor_refreshes"] = o.neighbor_refreshes;
    rows.push_back(std::move(j));
  }

  // Headline per repetition: the worst mitigated exposure under RAIDR —
  // the number that must stay far below the unmitigated baselines for the
  // two subsystems to compose safely.
  std::vector<double> mitigated_raidr_per_rep;
  bool raidr_never_lowers_exposure = true;
  for (int rep = 0; rep < opts.iters; ++rep) {
    const std::size_t base = static_cast<std::size_t>(rep) * n;
    const std::int64_t none_all = all[base + 0].exposure;
    const std::int64_t none_raidr = all[base + n_mit].exposure;
    raidr_never_lowers_exposure =
        raidr_never_lowers_exposure && none_raidr >= none_all;
    std::int64_t worst = 0;
    for (std::size_t mi = 1; mi < n_mit; ++mi) {
      worst = std::max(worst, all[base + n_mit + mi].exposure);
    }
    mitigated_raidr_per_rep.push_back(static_cast<double>(worst));
  }

  if (opts.verbose) {
    t.print(std::cout);
    std::cout << "\nSkipping stripes removes some periodic victim-counter\n"
                 "resets, so unmitigated exposure under raidr must be >= the\n"
                 "all_rows exposure; PARA/Graphene bound it either way because\n"
                 "their targeted refreshes are ACT-driven, not stripe-driven.\n";
  }

  Json out = Json::object();
  out["hammer_rounds"] = hp.rounds;
  out["cells"] = std::move(rows);
  out["raidr_never_lowers_unmitigated_exposure"] = raidr_never_lowers_exposure;
  out["mitigated_raidr_exposure_per_rep"] =
      rep_metric_json(mitigated_raidr_per_rep);
  return out;
}

// --- raidr_misbinning -----------------------------------------------------

/// Profiler sampling strides: 1 = exhaustive (no misbinning possible), 256
/// = one row in 256 sampled (weak rows almost surely missed).
constexpr std::uint32_t kStrides[] = {1, 4, 16, 64, 256};

/// Time-compressed retention chamber: 64 REF slots cover the array (~500 us
/// per round at the default tREFI), with the retention model rescaled to
/// match, so a millisecond-scale emulated run spans many full refresh
/// rounds and under-refreshed stripes actually overshoot their retention.
sys::SystemConfig misbinning_config(std::uint64_t seed, std::uint32_t stride) {
  using namespace easydram::literals;
  sys::SystemConfig cfg = refresh_config(seed, RefreshKind::kRaidr);
  cfg.geometry.refresh_window_refs = 64;  // Round = 64 x tREFI ~ 499 us.
  // Base retention bin just above the compressed round duration (the same
  // ~12% margin real tREFW keeps below the 64 ms retention floor).
  cfg.variation.retention_base = 560_us;
  // A stripe is now 512 rows x 16 banks = 8192 rows: scale the per-row
  // weakness probabilities down so the stripe-level bin mix keeps a
  // dominant strongest bin with a visible weak minority (~8% of stripes
  // in x1, ~25% in x2 at these values).
  cfg.variation.retention_p_weakest = 1e-5;
  cfg.variation.retention_p_weak = 4e-5;
  cfg.track_retention = true;
  cfg.retention_profiler.sample_stride = stride;
  return cfg;
}

Json run_raidr_misbinning(const RunOptions& opts) {
  const std::vector<cpu::TraceRecord> trace = refresh_stress_trace();

  ThreadPool pool(opts.threads);
  const std::size_t n = std::size(kStrides);
  const auto all = parallel_map(
      pool, static_cast<std::size_t>(opts.iters) * n, [&](std::size_t task) {
        const auto rep = static_cast<int>(task / n);
        return run_trace(
            misbinning_config(rep_seed(opts, rep), kStrides[task % n]), trace);
      });

  const dram::TimingParams timing = dram::ddr4_1333();
  TextTable t;
  t.set_header({"Stride", "rows profiled", "x1/x2/x4 stripes", "REF reduction",
                "violations", "worst overshoot (us)"});
  Json rows = Json::array();
  for (std::size_t i = 0; i < n; ++i) {
    const RefreshOutcome& o = all[i];  // Repetition 0 details.
    t.add_row({std::to_string(kStrides[i]), std::to_string(o.bins.rows_profiled),
               std::to_string(o.bins.stripes_x1) + "/" +
                   std::to_string(o.bins.stripes_x2) + "/" +
                   std::to_string(o.bins.stripes_x4),
               fmt_fixed(reduction_pct(o), 1) + "%",
               std::to_string(o.violations), fmt_fixed(o.overshoot_us, 1)});
    Json j = outcome_json(o, timing);
    j["sample_stride"] = static_cast<std::int64_t>(kStrides[i]);
    j["bins"] = bins_json(o.bins);
    j["retention_violations"] = o.violations;
    j["max_retention_overshoot_us"] = o.overshoot_us;
    rows.push_back(std::move(j));
  }

  // Per-repetition: exhaustive profiling must never violate retention; the
  // sparsest profile's violation count is the risk headline.
  std::vector<double> sparse_violations_per_rep;
  bool exhaustive_always_safe = true;
  for (int rep = 0; rep < opts.iters; ++rep) {
    const std::size_t base = static_cast<std::size_t>(rep) * n;
    exhaustive_always_safe =
        exhaustive_always_safe && all[base].violations == 0;
    sparse_violations_per_rep.push_back(
        static_cast<double>(all[base + n - 1].violations));
  }

  if (opts.verbose) {
    t.print(std::cout);
    std::cout << "\nViolations = issued REFs whose stripe went unrefreshed\n"
                 "longer than its weakest row's modeled retention (device\n"
                 "ground truth). Exhaustive profiling (stride 1) must report\n"
                 "zero; sparse profiles miss weak rows, overbin their\n"
                 "stripes, and accumulate violations.\n";
  }

  Json out = Json::object();
  out["workload"] = "refresh_stress";
  out["window_refs"] = 64;
  out["points"] = std::move(rows);
  out["exhaustive_always_safe"] = exhaustive_always_safe;
  out["sparse_violations_per_rep"] = rep_metric_json(sparse_violations_per_rep);
  return out;
}

}  // namespace

void register_refresh_scenarios(ScenarioRegistry& r) {
  r.add({"raidr_baseline",
         "REF-issue reduction of retention-aware refresh on a benign trace",
         "EasyDRAM (DSN 2025), extension beyond §7-§8; RAIDR (ISCA 2012)",
         &run_raidr_baseline});
  r.add({"raidr_savings",
         "Refresh savings vs retention-weakness of the synthetic chip",
         "EasyDRAM (DSN 2025), extension beyond §7-§8; RAIDR (ISCA 2012)",
         &run_raidr_savings});
  r.add({"raidr_vs_mitigation",
         "Skipped-stripe hammer exposure with and without PARA/Graphene",
         "EasyDRAM (DSN 2025), extension beyond §7-§8; RAIDR (ISCA 2012)",
         &run_raidr_vs_mitigation});
  r.add({"raidr_misbinning",
         "Retention violations from sparse profiling (time-compressed)",
         "EasyDRAM (DSN 2025), extension beyond §7-§8; RAIDR (ISCA 2012)",
         &run_raidr_misbinning});
}

}  // namespace easydram::cli
