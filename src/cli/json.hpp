#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace easydram::cli {

/// Minimal ordered JSON document builder for the experiment runner's
/// machine-readable summaries. Insertion order of object keys is preserved
/// so emitted files diff cleanly across runs; no parsing is provided (the
/// repository only ever writes JSON).
class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() : value_(nullptr) {}
  Json(bool b) : value_(b) {}  // NOLINT(google-explicit-constructor)
  Json(double d) : value_(d) {}  // NOLINT(google-explicit-constructor)
  Json(std::int64_t i) : value_(i) {}  // NOLINT(google-explicit-constructor)
  Json(int i) : value_(static_cast<std::int64_t>(i)) {}  // NOLINT(google-explicit-constructor)
  Json(std::uint64_t u);  // NOLINT(google-explicit-constructor)
  Json(std::string s) : value_(std::move(s)) {}  // NOLINT(google-explicit-constructor)
  Json(std::string_view s) : value_(std::string(s)) {}  // NOLINT(google-explicit-constructor)
  Json(const char* s) : value_(std::string(s)) {}  // NOLINT(google-explicit-constructor)

  static Json object() { return Json(Object{}); }
  static Json array() { return Json(Array{}); }

  bool is_object() const { return std::holds_alternative<Object>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }

  /// Object access: returns the value for `key`, inserting a null member if
  /// absent. The Json must be (or become) an object.
  Json& operator[](const std::string& key);

  /// Array append. The Json must be (or become) an array.
  void push_back(Json v);

  std::size_t size() const;

  /// Serializes pretty-printed with 2-space indentation; `indent` is the
  /// nesting depth the value starts at (used by the recursion).
  void dump(std::ostream& os, int indent = 0) const;
  std::string dump_string() const;

 private:
  explicit Json(Object o) : value_(std::move(o)) {}
  explicit Json(Array a) : value_(std::move(a)) {}

  std::variant<std::nullptr_t, bool, double, std::int64_t, std::string, Array,
               Object>
      value_;
};

}  // namespace easydram::cli
