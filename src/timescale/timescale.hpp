#pragma once

#include <cstdint>

#include "common/contracts.hpp"
#include "common/units.hpp"

namespace easydram::timescale {

/// Clock configuration of one emulation domain (§4.3): the physical FPGA
/// clock the component's logic actually runs at, and the clock frequency it
/// is emulated to have in the modeled system.
struct DomainConfig {
  Frequency fpga_clock = Frequency::megahertz(100);
  Frequency emulated_clock = Frequency::gigahertz(1);
};

/// Time-scaling mode of a system build.
enum class Mode : std::uint8_t {
  kTimeScaling,    ///< Full §4.3 machinery: counters, clock gating, tags.
  kNoTimeScaling,  ///< FPGA wall time is the truth (PiDRAM-style emulation).
};

/// The three time-scaling counters of Fig. 5 plus critical-mode state.
///
/// Units: `global` counts FPGA clock cycles since power-on; `proc` and `mc`
/// count *emulated processor* cycles. Invariants enforced:
///  * all counters are monotonically non-decreasing;
///  * while the SMC is in critical mode, the processor counter never
///    advances past the memory-controller counter (the SMC "locks" it);
///  * the MC counter never falls behind the processor counter when the SMC
///    finishes a scheduling step (responses cannot be released in the past).
class Counters {
 public:
  std::int64_t global() const { return global_; }
  std::int64_t proc() const { return proc_; }
  std::int64_t mc() const { return mc_; }
  bool critical() const { return critical_; }

  /// Advances the global (FPGA) cycle counter.
  void advance_global(std::int64_t cycles) {
    EASYDRAM_EXPECTS(cycles >= 0);
    global_ += cycles;
  }

  /// Advances the processor-domain emulation point. While in critical mode
  /// the advance is clamped so proc never exceeds mc; the clamped amount is
  /// returned (callers use it to know how far the processors actually ran).
  std::int64_t advance_proc(std::int64_t cycles) {
    EASYDRAM_EXPECTS(cycles >= 0);
    std::int64_t granted = cycles;
    if (critical_ && proc_ + granted > mc_) granted = mc_ > proc_ ? mc_ - proc_ : 0;
    proc_ += granted;
    return granted;
  }

  /// Enters critical mode (Fig. 5(c)): locks the processor counter at or
  /// below the MC counter. On entry the MC counter snaps up to the
  /// processor counter: the SMC starts servicing *now*, not in the past.
  void enter_critical() {
    critical_ = true;
    if (mc_ < proc_) mc_ = proc_;
  }

  /// Leaves critical mode (all requests responded). The processor counter
  /// resynchronises with the MC counter: the stall window has been fully
  /// accounted and normal execution resumes.
  void exit_critical() {
    EASYDRAM_EXPECTS(critical_);
    critical_ = false;
    if (proc_ < mc_) proc_ = mc_;
  }

  /// Advances the memory-controller emulation point by `cycles` emulated
  /// processor cycles (Fig. 5 steps 5 and 11).
  void advance_mc(std::int64_t cycles) {
    EASYDRAM_EXPECTS(cycles >= 0);
    mc_ += cycles;
  }

 private:
  std::int64_t global_ = 0;
  std::int64_t proc_ = 0;
  std::int64_t mc_ = 0;
  bool critical_ = false;
};

/// Converts durations between a domain's emulated timeline and real time.
class Scaler {
 public:
  explicit Scaler(DomainConfig cfg) : cfg_(cfg) {
    EASYDRAM_EXPECTS(cfg.fpga_clock.hertz > 0);
    EASYDRAM_EXPECTS(cfg.emulated_clock.hertz > 0);
  }

  const DomainConfig& config() const { return cfg_; }

  /// Emulated cycles that elapse in the domain during real duration `t`
  /// (e.g. DRAM Bender reports 75 ns; at 1 GHz emulated clock this is 75
  /// emulated cycles). Rounds up: a partial cycle still stalls a full one.
  Cycles real_to_emulated_cycles(Picoseconds t) const {
    return Cycles{cfg_.emulated_clock.ps_to_cycles_ceil(t)};
  }

  /// Emulated-timeline duration of `cycles` domain cycles.
  Picoseconds emulated_cycles_to_time(std::int64_t cycles) const {
    return cfg_.emulated_clock.cycles_to_ps(cycles);
  }

  /// FPGA wall time the domain needs to execute `cycles` of its own logic.
  Picoseconds fpga_time_for_cycles(std::int64_t cycles) const {
    return cfg_.fpga_clock.cycles_to_ps(cycles);
  }

 private:
  DomainConfig cfg_;
};

}  // namespace easydram::timescale
