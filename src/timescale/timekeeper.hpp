#pragma once

#include <cstdint>

#include "common/contracts.hpp"
#include "common/units.hpp"
#include "timescale/timescale.hpp"

namespace easydram::timescale {

/// Evaluation mode of a full-system build.
enum class SystemMode : std::uint8_t {
  /// §4.3 time scaling: emulated-processor-cycle timeline is the truth;
  /// the SMC's software slowness is hidden behind the configured hardware
  /// memory-controller scheduling latency.
  kTimeScaling,
  /// PiDRAM-style emulation: FPGA wall time is the truth; the processor
  /// experiences the SMC's software latency directly.
  kNoTimeScaling,
  /// The §6 validation reference: a hardware (RTL) memory controller at the
  /// target clock making the same scheduling decisions — no time-scaling
  /// machinery, no request-visibility quantization.
  kReference,
};

/// Owns the dual timeline of an EasyDRAM system: the FPGA wall clock and
/// the time-scaling counters (Fig. 5), and performs every mode-dependent
/// conversion in one place.
///
/// Wall-clock accounting feeds the simulation-speed study (Fig. 14) and is
/// the source of truth in kNoTimeScaling mode. The emulated timeline
/// (processor cycles) is the source of truth in kTimeScaling/kReference.
class TimeKeeper {
 public:
  /// `hardware_mc` models a fixed-function RTL memory controller: request
  /// servicing costs only the configured `mc_sched_latency` pipeline
  /// latency, never the software controller's cycle count (used by the
  /// Fig. 2 "FPGA + RTL memory controller" configuration).
  TimeKeeper(SystemMode mode, DomainConfig proc_domain, Frequency smc_core_clock,
             Cycles mc_sched_latency, bool hardware_mc = false)
      : mode_(mode),
        proc_scaler_(proc_domain),
        smc_core_clock_(smc_core_clock),
        mc_sched_latency_(mc_sched_latency),
        hardware_mc_(hardware_mc) {
    EASYDRAM_EXPECTS(smc_core_clock.hertz > 0);
    EASYDRAM_EXPECTS(mc_sched_latency.count >= 0);
  }

  SystemMode mode() const { return mode_; }
  const Scaler& proc_scaler() const { return proc_scaler_; }
  Counters& counters() { return counters_; }
  const Counters& counters() const { return counters_; }
  Cycles mc_sched_latency() const { return mc_sched_latency_; }

  // --- FPGA wall clock -----------------------------------------------------

  Picoseconds wall() const { return wall_; }

  void advance_wall(Picoseconds d) {
    EASYDRAM_EXPECTS(d.count >= 0);
    wall_ += d;
    // The global counter mirrors the wall clock in FPGA cycles.
    const std::int64_t target =
        proc_scaler_.config().fpga_clock.ps_to_cycles_floor(wall_);
    if (target > counters_.global()) {
      counters_.advance_global(target - counters_.global());
    }
  }

  /// Advances the wall clock to `target` if it lies ahead (no-op otherwise).
  void advance_wall_to(Picoseconds target) {
    if (target > wall_) advance_wall(target - wall_);
  }

  /// Charges `core_cycles` of software-memory-controller execution against
  /// the wall clock only (background work: polling, critical-mode entry and
  /// exit — it overlaps processor execution in the modeled system).
  void account_smc_cycles(Cycles core_cycles) {
    EASYDRAM_EXPECTS(core_cycles.count >= 0);
    advance_wall(smc_core_clock_.cycles_to_ps(core_cycles));
  }

  /// Charges `core_cycles` of *request-servicing* SMC execution: under time
  /// scaling the controller program's cycle count is re-interpreted at the
  /// emulated system clock and advances the MC counter 1:1 (§4.3 — "the
  /// duration spent on scheduling a memory request is converted to the
  /// number of emulation cycles at the emulated system's clock frequency").
  /// This is exactly what makes the §6 reference system — the same
  /// controller in RTL at the target clock — report matching times.
  void account_mc_service_cycles(Cycles core_cycles) {
    EASYDRAM_EXPECTS(core_cycles.count >= 0);
    if (hardware_mc_) return;  // RTL controllers pipeline at clock speed.
    if (mode_ != SystemMode::kNoTimeScaling) counters_.advance_mc(core_cycles.count);
  }

  /// Charges processor execution of `proc_cycles` emulated cycles: the
  /// processor logic runs one emulated cycle per FPGA cycle of its domain.
  void account_proc_cycles(Cycles proc_cycles) {
    EASYDRAM_EXPECTS(proc_cycles.count >= 0);
    advance_wall(proc_scaler_.config().fpga_clock.cycles_to_ps(proc_cycles));
  }

  // --- Emulated timeline ---------------------------------------------------

  /// The processor-cycle equivalent of the current wall time (the
  /// no-time-scaling notion of "now": a 50 MHz FPGA processor simply counts
  /// its own cycles).
  Cycles wall_as_proc_cycles() const {
    return Cycles{proc_scaler_.config().fpga_clock.ps_to_cycles_floor(wall_)};
  }

  /// One hardware-MC-equivalent scheduling decision: time scaling charges
  /// the configured scheduling latency to the emulated MC domain.
  void account_schedule_decision() {
    if (mode_ != SystemMode::kNoTimeScaling) {
      counters_.advance_mc(mc_sched_latency_.count);
    }
  }

  /// DRAM Bender executed a batch occupying `elapsed` of real DRAM time.
  /// The wall clock always advances; under time scaling the MC counter
  /// additionally advances by the emulated-processor-cycle equivalent
  /// (Fig. 5 steps 4-5).
  void account_batch(Picoseconds elapsed) {
    EASYDRAM_EXPECTS(elapsed.count >= 0);
    advance_wall(elapsed);
    if (mode_ != SystemMode::kNoTimeScaling) {
      counters_.advance_mc(proc_scaler_.real_to_emulated_cycles(elapsed).count);
    }
  }

  /// Release tag for a response finalized now (Fig. 5 step 10): the
  /// processor may not consume the response before this cycle.
  std::int64_t response_release_tag() const {
    if (mode_ == SystemMode::kNoTimeScaling) return wall_as_proc_cycles().count;
    return counters_.mc();
  }

  /// Emulated-system time "now" (drives refresh obligations).
  Picoseconds emulated_now() const {
    if (mode_ == SystemMode::kNoTimeScaling) return wall_;
    const std::int64_t cycles = counters_.mc() > counters_.proc() ? counters_.mc()
                                                                  : counters_.proc();
    return proc_scaler_.emulated_cycles_to_time(cycles);
  }

  /// Whether a request issued at `issue_proc_cycle` (tag) / `arrival_wall`
  /// is already visible to the SMC. Time scaling delays visibility until
  /// the MC emulation point has caught up (footnote 2 of the paper). The
  /// reference hardware controller obeys the same rule — a controller
  /// cannot see a request before its emulated issue time — so the two
  /// modes make identical scheduling decisions, which is what the §6
  /// validation demonstrates.
  bool request_visible(std::int64_t issue_proc_cycle, Picoseconds arrival_wall) const {
    switch (mode_) {
      case SystemMode::kTimeScaling:
      case SystemMode::kReference:
        return issue_proc_cycle <= counters_.mc() || !counters_.critical();
      case SystemMode::kNoTimeScaling:
        return arrival_wall <= wall_;
    }
    return true;
  }

  /// Lets the emulated MC point advance over an idle gap so that a "future"
  /// request becomes visible (no work exists before it).
  void skip_idle_until_proc_cycle(std::int64_t cycle) {
    if (mode_ == SystemMode::kNoTimeScaling) {
      const Picoseconds target = proc_scaler_.config().fpga_clock.cycles_to_ps(cycle);
      if (target > wall_) advance_wall(target - wall_);
    } else {
      if (cycle > counters_.mc()) counters_.advance_mc(cycle - counters_.mc());
    }
  }

 private:
  SystemMode mode_;
  Scaler proc_scaler_;
  Frequency smc_core_clock_;
  Cycles mc_sched_latency_;
  bool hardware_mc_;
  Counters counters_;
  Picoseconds wall_{};
};

}  // namespace easydram::timescale
