#pragma once

#include "common/units.hpp"

namespace easydram::dram {

/// DDR4 timing parameters, all in picoseconds.
///
/// Field names follow JESD79-4. The presets below round to the vendor
/// datasheet values the paper cites (nominal tRCD of the tested Micron
/// EDY4016A module is 13.5 ns).
struct TimingParams {
  Picoseconds tCK{};     ///< DRAM clock period.
  Picoseconds tRCD{};    ///< ACT to internal RD/WR delay.
  Picoseconds tRP{};     ///< PRE to ACT delay.
  Picoseconds tRAS{};    ///< ACT to PRE minimum.
  Picoseconds tRC{};     ///< ACT to ACT (same bank) minimum.
  Picoseconds tCL{};     ///< RD to first data (CAS latency).
  Picoseconds tCWL{};    ///< WR to first data.
  Picoseconds tBL{};     ///< Data burst duration (BL8 = 4 tCK).
  Picoseconds tWR{};     ///< End of write data to PRE.
  Picoseconds tRTP{};    ///< RD to PRE.
  Picoseconds tWTR_S{};  ///< Write burst end to RD, different bank group.
  Picoseconds tWTR_L{};  ///< Write burst end to RD, same bank group.
  Picoseconds tCCD_S{};  ///< Column to column, different bank group.
  Picoseconds tCCD_L{};  ///< Column to column, same bank group.
  Picoseconds tRRD_S{};  ///< ACT to ACT, different bank group.
  Picoseconds tRRD_L{};  ///< ACT to ACT, same bank group.
  Picoseconds tFAW{};    ///< Four-activate window.
  Picoseconds tRFC{};    ///< Refresh cycle time.
  Picoseconds tREFI{};   ///< Average refresh interval.
  /// Rank-to-rank data-bus switch time: extra bus turnaround charged when
  /// consecutive column bursts on one channel come from different ranks.
  /// Irrelevant (never charged) with a single rank.
  Picoseconds tRTRS{};

  /// Read latency from RD command to last data beat on the bus.
  constexpr Picoseconds read_data_latency() const { return tCL + tBL; }
  /// Write latency from WR command to last data beat.
  constexpr Picoseconds write_data_latency() const { return tCWL + tBL; }
};

/// DDR4-1333-class timings (the paper's case-study module runs at
/// 1333 MT/s; tCK = 1.5 ns). tRCD/tCL/tRP = 13.5 ns match the cited
/// datasheet nominal.
constexpr TimingParams ddr4_1333() {
  using namespace easydram::literals;
  TimingParams t;
  t.tCK = 1500_ps;
  t.tRCD = 13500_ps;
  t.tRP = 13500_ps;
  t.tRAS = 36000_ps;
  t.tRC = 49500_ps;
  t.tCL = 13500_ps;
  t.tCWL = 12000_ps;
  t.tBL = 6000_ps;      // 4 tCK
  t.tWR = 15000_ps;
  t.tRTP = 7500_ps;
  t.tWTR_S = 3750_ps;
  t.tWTR_L = 7500_ps;
  t.tCCD_S = 6000_ps;   // 4 tCK
  t.tCCD_L = 7500_ps;   // 5 tCK
  t.tRRD_S = 6000_ps;
  t.tRRD_L = 7500_ps;
  t.tFAW = 30000_ps;
  t.tRFC = 260000_ps;   // 4 Gb device
  t.tREFI = 7800000_ps;
  t.tRTRS = 3000_ps;    // 2 tCK
  return t;
}

/// DDR4-2400-class timings, used by configuration-sweep tests.
constexpr TimingParams ddr4_2400() {
  using namespace easydram::literals;
  TimingParams t;
  t.tCK = 833_ps;
  t.tRCD = 13320_ps;
  t.tRP = 13320_ps;
  t.tRAS = 32000_ps;
  t.tRC = 45320_ps;
  t.tCL = 13320_ps;
  t.tCWL = 10000_ps;
  t.tBL = 3332_ps;
  t.tWR = 15000_ps;
  t.tRTP = 7500_ps;
  t.tWTR_S = 2500_ps;
  t.tWTR_L = 7500_ps;
  t.tCCD_S = 3332_ps;
  t.tCCD_L = 5000_ps;
  t.tRRD_S = 3300_ps;
  t.tRRD_L = 4900_ps;
  t.tFAW = 21000_ps;
  t.tRFC = 260000_ps;
  t.tREFI = 7800000_ps;
  t.tRTRS = 1666_ps;    // 2 tCK
  return t;
}

}  // namespace easydram::dram
