#include "dram/faults.hpp"

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace easydram::dram {

namespace {

// Distinct salts partition the fault namespace out of the scenario seed so
// no fault stream aliases the variation model, PARA, or each other.
constexpr std::uint64_t kRetentionSalt = 0xFA01'7E7E'0001ull;
constexpr std::uint64_t kHammerSalt = 0xFA01'7E7E'0002ull;
constexpr std::uint64_t kRandomSalt = 0xFA01'7E7E'0003ull;

}  // namespace

FaultModel::FaultModel(const Geometry& geo, const FaultConfig& cfg)
    : geo_(geo), cfg_(cfg) {
  for (std::uint32_t i = 0; i < cfg_.plan.stuck.size(); ++i) {
    const StuckAtFault& f = cfg_.plan.stuck[i];
    EASYDRAM_EXPECTS(f.fbank < geo_.banks_per_channel() &&
                     f.row < geo_.rows_per_bank && f.col < geo_.cols_per_row() &&
                     f.byte_in_line < 64 && f.bit < 8 && f.value <= 1);
    stuck_by_line_[line_key(f.fbank, f.row, f.col)].push_back(i);
  }
  for (std::uint32_t i = 0; i < cfg_.plan.transient.size(); ++i) {
    const TransientFault& f = cfg_.plan.transient[i];
    EASYDRAM_EXPECTS(f.fbank < geo_.banks_per_channel() &&
                     f.row < geo_.rows_per_bank && f.col < geo_.cols_per_row() &&
                     f.byte_in_line < 64);
    transient_by_line_[line_key(f.fbank, f.row, f.col)].push_back(i);
  }
  transient_consumed_.assign(cfg_.plan.transient.size(), false);
}

std::uint64_t FaultModel::line_key(std::uint32_t fbank, std::uint32_t row,
                                   std::uint32_t col) const {
  return (static_cast<std::uint64_t>(fbank) * geo_.rows_per_bank + row) *
             geo_.cols_per_row() +
         col;
}

void FaultModel::manifest_sticky(std::uint32_t fbank, std::uint32_t row,
                                 std::uint32_t col, std::uint64_t stream_seed,
                                 double double_bit_fraction) {
  const std::uint64_t key = line_key(fbank, row, col);
  // A line already carrying sticky flips never accumulates more: capped at
  // a 1-or-2-bit fault per line, SEC-DED always classifies it exactly (no
  // 3+-bit word can alias a valid codeword into a silent miscorrection).
  if (overlay_.find(key) != overlay_.end()) return;
  Xoshiro256ss rng(stream_seed);
  auto& mask = overlay_[key];
  mask.fill(0);
  const std::uint32_t word = static_cast<std::uint32_t>(rng.next_below(8));
  const std::uint32_t b1 = static_cast<std::uint32_t>(rng.next_below(64));
  mask[word * 8 + b1 / 8] ^= static_cast<std::uint8_t>(1u << (b1 % 8));
  if (rng.next_double() < double_bit_fraction) {
    std::uint32_t b2 = static_cast<std::uint32_t>(rng.next_below(63));
    if (b2 >= b1) ++b2;  // distinct bit, still uniform
    mask[word * 8 + b2 / 8] ^= static_cast<std::uint8_t>(1u << (b2 % 8));
  }
  ++faults_manifested_;
}

bool FaultModel::apply_read(const FaultReadContext& ctx,
                            std::span<std::uint8_t> data) {
  EASYDRAM_EXPECTS(data.size() == 64);
  bool altered = false;
  const std::uint64_t key = line_key(ctx.fbank, ctx.row, ctx.col);

  // Retention trigger: the row's stripe went unrefreshed past this row's
  // modeled retention — manifest a sticky decay flip, once per line per
  // refresh epoch (the epoch marker is the stripe's last-REF slot, so a
  // REF of the stripe re-arms the trigger while the decayed value itself
  // persists until rewritten).
  if (cfg_.retention_flips && ctx.retention_valid) {
    const std::int64_t elapsed =
        ctx.at.count - ctx.stripe_last_ref_slot * ctx.trefi.count;
    if (elapsed > ctx.row_retention.count) {
      auto it = retention_epoch_.find(key);
      if (it == retention_epoch_.end() ||
          it->second != ctx.stripe_last_ref_slot) {
        retention_epoch_[key] = ctx.stripe_last_ref_slot;
        const std::uint64_t epoch_bits = static_cast<std::uint64_t>(
            ctx.stripe_last_ref_slot & 0xFFFF'FFFFll);
        manifest_sticky(
            ctx.fbank, ctx.row, ctx.col,
            hash_mix(cfg_.seed ^ kRetentionSalt, ctx.fbank, ctx.row,
                     (static_cast<std::uint64_t>(ctx.col) << 32) | epoch_bits),
            cfg_.retention_double_bit_fraction);
      }
    }
  }

  // Sticky overlay (decayed/disturbed charge).
  if (!overlay_.empty()) {
    const auto it = overlay_.find(key);
    if (it != overlay_.end()) {
      for (std::size_t i = 0; i < 64; ++i) data[i] ^= it->second[i];
      altered = true;
    }
  }

  // Planned stuck-at cells: forced on every read.
  if (!stuck_by_line_.empty()) {
    const auto it = stuck_by_line_.find(key);
    if (it != stuck_by_line_.end()) {
      for (const std::uint32_t idx : it->second) {
        const StuckAtFault& f = cfg_.plan.stuck[idx];
        const std::uint8_t bit = static_cast<std::uint8_t>(1u << f.bit);
        const std::uint8_t before = data[f.byte_in_line];
        if (f.value != 0) {
          data[f.byte_in_line] = static_cast<std::uint8_t>(before | bit);
        } else {
          data[f.byte_in_line] = static_cast<std::uint8_t>(before & ~bit);
        }
        altered |= data[f.byte_in_line] != before;
      }
    }
  }

  // Planned scheduled transients: one read each, then gone.
  if (!transient_by_line_.empty()) {
    const auto it = transient_by_line_.find(key);
    if (it != transient_by_line_.end()) {
      for (const std::uint32_t idx : it->second) {
        const TransientFault& f = cfg_.plan.transient[idx];
        if (transient_consumed_[idx] || ctx.at < f.at) continue;
        transient_consumed_[idx] = true;
        data[f.byte_in_line] ^= f.xor_mask;
        altered = true;
      }
    }
  }

  // Random transient upsets, keyed by the channel-local read sequence so
  // the draw order is the emulated command order at any worker count. A
  // read already altered by sticky/planned faults is exempt — stacking a
  // random flip onto a faulted word could reach 3 flipped bits, which
  // SEC-DED may silently miscorrect (see manifest_sticky); each read's
  // draw has its own stream key, so the exemption shifts no other draw.
  if (cfg_.transient_read_rate > 0.0) {
    Xoshiro256ss rng(hash_mix(cfg_.seed ^ kRandomSalt,
                              static_cast<std::uint64_t>(read_seq_++)));
    if (!altered && rng.next_double() < cfg_.transient_read_rate) {
      const std::uint32_t word = static_cast<std::uint32_t>(rng.next_below(8));
      const std::uint32_t b1 = static_cast<std::uint32_t>(rng.next_below(64));
      data[word * 8 + b1 / 8] ^= static_cast<std::uint8_t>(1u << (b1 % 8));
      if (rng.next_double() < cfg_.transient_double_bit_fraction) {
        std::uint32_t b2 = static_cast<std::uint32_t>(rng.next_below(63));
        if (b2 >= b1) ++b2;
        data[word * 8 + b2 / 8] ^= static_cast<std::uint8_t>(1u << (b2 % 8));
      }
      altered = true;
    }
  }

  if (altered) ++faulty_reads_served_;
  return altered;
}

void FaultModel::on_write(std::uint32_t fbank, std::uint32_t row,
                          std::uint32_t col, std::int64_t epoch) {
  const std::uint64_t key = line_key(fbank, row, col);
  overlay_.erase(key);
  // Fresh charge: suppress retention re-manifestation until the stripe's
  // next refresh epoch.
  if (cfg_.retention_flips) retention_epoch_[key] = epoch;
}

void FaultModel::on_hammer_act(std::uint32_t fbank, std::uint32_t row,
                               std::int64_t count) {
  if (cfg_.hammer_flip_threshold <= 0 || count != cfg_.hammer_flip_threshold) {
    return;
  }
  // The victim's disturbance count just crossed the flip threshold: its
  // weakest cells lose their value. Each crossing (the counter resets when
  // the row is activated or refreshed) draws a fresh epoch.
  const std::uint64_t row_key =
      static_cast<std::uint64_t>(fbank) * geo_.rows_per_bank + row;
  const std::int64_t epoch = ++hammer_epochs_[row_key];
  Xoshiro256ss rng(hash_mix(cfg_.seed ^ kHammerSalt, fbank, row,
                            static_cast<std::uint64_t>(epoch)));
  for (std::uint32_t i = 0; i < cfg_.hammer_flip_cells; ++i) {
    const std::uint32_t col =
        static_cast<std::uint32_t>(rng.next_below(geo_.cols_per_row()));
    manifest_sticky(fbank, row, col, rng.next(), cfg_.hammer_double_bit_fraction);
  }
}

}  // namespace easydram::dram
