#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "dram/geometry.hpp"

namespace easydram::dram {

/// Configuration of the synthetic process-variation model.
///
/// The paper characterizes a real Micron DDR4 module (Fig. 12): every row
/// operates below the nominal tRCD of 13.5 ns, 84.5 % of cache lines are
/// "strong" (reliable at <= 9.0 ns) and weak lines cluster spatially. We have
/// no real chip, so this model synthesizes a deterministic per-row minimum
/// reliable tRCD field with the same statistics: a hash-seeded, spatially
/// smoothed noise field shaped so the strong fraction matches the paper.
struct VariationConfig {
  std::uint64_t seed = 0x5AFA2125;

  /// Lower bound of the min-reliable-tRCD field.
  Picoseconds min_trcd{8000};
  /// Upper bound of the field (must stay below nominal tRCD: the paper
  /// observes that *all* rows work below the 13.5 ns nominal).
  Picoseconds max_trcd{10600};
  /// Shaping exponent: larger values skew the field toward min_trcd,
  /// raising the strong fraction. Calibrated so P(row <= 9.0 ns) ~ 0.845.
  double shape = 3.05;
  /// Per-cache-line downward jitter from the row value (the row's minimum
  /// reliable tRCD is the max over its lines).
  Picoseconds line_jitter{800};

  /// Probability that an intra-subarray (src, dst) row pair supports
  /// reliable RowClone. The paper does not report the measured fraction;
  /// its Init speedups (36.7x NoTS / 1.8x TS, both fallback-sensitive)
  /// imply only ~1% of fixed-source pairs fall back.
  double rowclone_pair_success = 0.99;

  // --- Retention-time model (RAIDR-style refresh skipping) -----------------
  //
  // Deterministic per-row retention time, seeded from the same `seed` as
  // the tRCD field (distinct hash salts, so the two fields are
  // independent). Real DRAM retention is strongly bimodal: almost every
  // cell retains for seconds, and a tiny leaky population sits near the
  // 64 ms JEDEC floor. RAIDR's measured distribution (Liu+, ISCA'12) puts
  // ~1e-3 of rows below 256 ms in a 32 GiB pool; the class probabilities
  // below reproduce that shape so a 64-row refresh stripe lands in the
  // 256 ms bin ~87% of the time, which is what yields the classic ~70%
  // REF reduction.

  /// Base retention bin — the guaranteed JEDEC refresh window (64 ms). Row
  /// retention classes are expressed as multiples of this value, so
  /// time-compressed scenarios can shrink the whole model coherently.
  Picoseconds retention_base{64'000'000'000};
  /// Probability a row retains only [1, 2) x retention_base (the weakest
  /// class: must be refreshed every window).
  double retention_p_weakest = 0.00015;
  /// Probability a row retains only [2, 4) x retention_base.
  double retention_p_weak = 0.0013;
  /// All other rows are strong: retention uniform in [4, 16) x
  /// retention_base.
};

/// Deterministic synthetic DRAM process variation: per-line minimum reliable
/// tRCD and per-pair RowClone feasibility. All queries are pure functions of
/// (seed, coordinates) so that "the chip" behaves identically across runs,
/// which is what makes the paper's 1000-trial clonability test meaningful.
///
/// `bank` arguments accept the per-channel flat index (rank * num_banks +
/// bank), so every rank of a multi-rank channel gets its own variation
/// field; rank 0 coincides with the historical single-rank indices. Each
/// channel owns a separately seeded model.
class VariationModel {
 public:
  VariationModel(const Geometry& geo, const VariationConfig& cfg)
      : geo_(geo), cfg_(cfg) {}

  const VariationConfig& config() const { return cfg_; }

  /// Minimum tRCD (ps) at which every cache line of `row` reads reliably.
  Picoseconds row_min_trcd(std::uint32_t bank, std::uint32_t row) const;

  /// Minimum reliable tRCD of one cache line. Never exceeds the row value;
  /// at least one line per row equals the row value.
  Picoseconds line_min_trcd(std::uint32_t bank, std::uint32_t row,
                            std::uint32_t col) const;

  /// Whether a RowClone from `src_row` to `dst_row` inside `bank` reliably
  /// copies data. Always false across subarray boundaries (FPM RowClone is
  /// an intra-subarray operation).
  bool rowclone_pair_ok(std::uint32_t bank, std::uint32_t src_row,
                        std::uint32_t dst_row) const;

  /// Retention time of `row` (ps): how long its weakest cell holds data
  /// after a refresh/activation before it may decay. A pure function of
  /// (seed, bank, row) — always >= cfg_.retention_base, drawn from the
  /// three-class model described in VariationConfig. `bank` is the
  /// per-channel flat index, like every other query on this model.
  Picoseconds row_retention(std::uint32_t bank, std::uint32_t row) const;

 private:
  /// Smooth noise in [0,1] over the bank's (row-in-group, group) plane;
  /// bilinear interpolation of a hashed lattice makes weak regions cluster.
  double smooth_noise(std::uint32_t bank, std::uint32_t row) const;

  Geometry geo_;
  VariationConfig cfg_;
  /// Direct-mapped memo of row_min_trcd (a pure function of the seed and
  /// the row coordinate, but pow()-heavy): row opens dominate both
  /// simulators' hot paths and revisit the same rows constantly. Fixed
  /// footprint so the many short-lived devices of a sweep pay no per-bank
  /// allocation; a colliding coordinate simply recomputes.
  struct RowTrcdSlot {
    std::uint64_t key = ~0ull;  ///< bank << 32 | row; ~0 = empty.
    std::int64_t ps = 0;
  };
  static constexpr std::size_t kRowTrcdCacheSize = 4096;  ///< Power of two.
  mutable std::vector<RowTrcdSlot> row_trcd_cache_;
};

}  // namespace easydram::dram
