#pragma once

#include <cstdint>
#include <string_view>

namespace easydram::dram {

/// DDR4 commands modelled by the device. SREF/PDE power states are out of
/// scope for the paper's experiments and are not modelled.
enum class Command : std::uint8_t {
  kAct,   ///< Activate: open a row in a bank.
  kPre,   ///< Precharge: close the open row of one bank.
  kPreAll,///< Precharge all banks in the rank.
  kRead,  ///< Column read (BL8, one 64-byte cache line).
  kWrite, ///< Column write (BL8, one 64-byte cache line).
  kRef,   ///< All-bank auto refresh.
  kNop,   ///< Deselect / timing filler.
};

std::string_view to_string(Command c);

/// A fully decoded DRAM coordinate. `bank` is the flat bank index
/// (bank_group * banks_per_group + bank_in_group); `col` addresses one
/// 64-byte column burst within the row.
struct DramAddress {
  std::uint32_t bank = 0;
  std::uint32_t row = 0;
  std::uint32_t col = 0;

  bool operator==(const DramAddress&) const = default;
};

}  // namespace easydram::dram
