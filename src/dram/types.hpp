#pragma once

#include <cstdint>
#include <string_view>

namespace easydram::dram {

/// DDR4 commands modelled by the device. SREF/PDE power states are out of
/// scope for the paper's experiments and are not modelled.
enum class Command : std::uint8_t {
  kAct,   ///< Activate: open a row in a bank.
  kPre,   ///< Precharge: close the open row of one bank.
  kPreAll,///< Precharge all banks in the rank.
  kRead,  ///< Column read (BL8, one 64-byte cache line).
  kWrite, ///< Column write (BL8, one 64-byte cache line).
  kRef,   ///< All-bank auto refresh.
  kNop,   ///< Deselect / timing filler.
};

std::string_view to_string(Command c);

/// A fully decoded DRAM coordinate. `bank` is the flat bank index within
/// its rank (bank_group * banks_per_group + bank_in_group); `col` addresses
/// one 64-byte column burst within the row. `channel` selects the memory
/// channel and `rank` the rank within it; they default to 0 and trail the
/// original fields so single-channel/single-rank aggregate initializers
/// (`DramAddress{bank, row, col}`) keep their pre-multi-channel meaning.
struct DramAddress {
  std::uint32_t bank = 0;
  std::uint32_t row = 0;
  std::uint32_t col = 0;
  std::uint32_t channel = 0;
  std::uint32_t rank = 0;

  bool operator==(const DramAddress&) const = default;
};

/// Packs the row-identifying coordinates (channel, rank, bank, row) into one
/// comparable key. Schedulers and the weak-row Bloom filter use this as the
/// row-hit / row-lookup key; with channel == rank == 0 it reduces to the
/// historical `(bank << 32) | row` encoding.
constexpr std::uint64_t row_key(const DramAddress& a) {
  return (static_cast<std::uint64_t>(a.channel) << 54) |
         (static_cast<std::uint64_t>(a.rank) << 48) |
         (static_cast<std::uint64_t>(a.bank) << 32) | a.row;
}

}  // namespace easydram::dram
