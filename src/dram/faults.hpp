#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"
#include "dram/geometry.hpp"

namespace easydram::dram {

/// One permanently faulty cell: every read of the containing line sees
/// `bit` of byte `byte_in_line` forced to `value`. The stored data is
/// untouched, so a PPR-style remap to a spare row genuinely escapes the
/// fault. Coordinates use the per-channel flat bank index.
struct StuckAtFault {
  std::uint32_t fbank = 0;
  std::uint32_t row = 0;
  std::uint32_t col = 0;
  std::uint32_t byte_in_line = 0;  ///< 0..63
  std::uint32_t bit = 0;           ///< 0..7
  std::uint32_t value = 1;         ///< 0 or 1
};

/// One scheduled transient upset: the first read of (fbank, row, col) at or
/// after `at` (absolute emulated picoseconds) sees `xor_mask` applied to
/// `byte_in_line` — on that read only. The stored data is untouched, so a
/// bounded re-read retry observes clean data (the transient/hard
/// distinction the controller's retry policy keys on).
struct TransientFault {
  Picoseconds at{};
  std::uint32_t fbank = 0;
  std::uint32_t row = 0;
  std::uint32_t col = 0;
  std::uint32_t byte_in_line = 0;
  std::uint8_t xor_mask = 1;
};

/// Scenario/CLI-injectable fault plan for controlled experiments.
struct FaultPlan {
  std::vector<StuckAtFault> stuck;
  std::vector<TransientFault> transient;
};

/// Configuration of the deterministic fault-manifestation model. Default
/// construction disables everything: a system built without touching this
/// struct is bit-identical to one predating the fault pipeline.
struct FaultConfig {
  bool enabled = false;

  /// Base seed of every fault draw. Scenarios pass their scenario seed;
  /// EasyDramSystem mixes the channel index in (like the variation model)
  /// so channels fault independently and any --threads / --pump-workers
  /// value replays the same draws.
  std::uint64_t seed = 0x5AFA2125;

  /// Per-read probability of a random transient upset (the fault_sweep
  /// axis): an affected read gets one flipped bit — or a double-bit flip
  /// in the same 64-bit word with probability
  /// `transient_double_bit_fraction` — applied to this read only.
  double transient_read_rate = 0.0;
  double transient_double_bit_fraction = 0.15;

  /// Hammer-induced flips: when a victim row's ground-truth disturbance
  /// counter (DramDevice hammer accounting — requires
  /// SystemConfig::track_row_hammer) crosses this threshold, up to
  /// `hammer_flip_cells` lines of the victim row acquire sticky flips.
  /// 0 disables the trigger.
  std::int64_t hammer_flip_threshold = 0;
  std::uint32_t hammer_flip_cells = 2;
  double hammer_double_bit_fraction = 0.25;

  /// Retention flips: a read whose row went unrefreshed longer than its
  /// modeled retention time (requires SystemConfig::track_retention for
  /// the stripe bookkeeping) acquires a sticky flip, once per line per
  /// refresh epoch. Decayed cells keep their wrong value across later
  /// REFs — only a write (or a scrub write-back) restores them.
  bool retention_flips = false;
  double retention_double_bit_fraction = 0.1;

  FaultPlan plan;
};

/// Ground-truth context the device hands to FaultModel::apply_read.
struct FaultReadContext {
  Picoseconds at{};  ///< Absolute emulated time of the read.
  std::uint32_t rank = 0;
  std::uint32_t fbank = 0;
  std::uint32_t row = 0;
  std::uint32_t col = 0;
  /// Retention ground truth; valid only when the device tracks retention.
  bool retention_valid = false;
  std::int64_t stripe_last_ref_slot = 0;  ///< Epoch marker for this row's stripe.
  Picoseconds trefi{};
  Picoseconds row_retention{};
};

/// Deterministic fault manifestation for one channel. Owned by the
/// channel's DramDevice and driven from its (single-threaded) command
/// path, so every draw happens in emulated-time order regardless of the
/// host thread count. All randomness is Xoshiro streams keyed from
/// `FaultConfig::seed` via hash_mix with distinct salts — never from any
/// other entropy source (enforced by the `fault-injection-seeding` lint
/// check).
///
/// Manifested hammer/retention flips are *sticky*: they model decayed
/// charge, so they persist across refreshes (a REF restores the wrong
/// value) and are cleared only by a write to the line (fresh data, fresh
/// charge) — which is what makes patrol scrubbing's corrected write-back
/// effective. Stuck-at faults are forced on every read; scheduled and
/// random transients apply to a single read.
class FaultModel {
 public:
  FaultModel(const Geometry& geo, const FaultConfig& cfg);

  const FaultConfig& config() const { return cfg_; }

  /// Applies every manifested fault to a 64-byte line being read at
  /// ctx.at. Returns true when at least one bit was altered.
  bool apply_read(const FaultReadContext& ctx, std::span<std::uint8_t> data);

  /// A write stores fresh data with full charge: sticky flips on the line
  /// are cleared and retention re-manifestation is suppressed until the
  /// stripe's next refresh epoch (`epoch` = the stripe's last-REF slot
  /// marker at write time; pass 0 when retention is untracked).
  void on_write(std::uint32_t fbank, std::uint32_t row, std::uint32_t col,
                std::int64_t epoch);

  /// Hammer ground-truth hook: the device reports every victim-counter
  /// value it bumps; crossing the configured threshold manifests sticky
  /// flips in the victim row.
  void on_hammer_act(std::uint32_t fbank, std::uint32_t row, std::int64_t count);

  /// Sticky flips manifested so far (hammer + retention cells).
  std::int64_t faults_manifested() const { return faults_manifested_; }
  /// Reads that returned at least one altered bit — the "served corrupt
  /// data" ground truth an unprotected (no-ECC) system silently eats.
  std::int64_t faulty_reads_served() const { return faulty_reads_served_; }

 private:
  std::uint64_t line_key(std::uint32_t fbank, std::uint32_t row,
                         std::uint32_t col) const;

  /// Adds a 1-or-2-bit flip (both bits inside one 64-bit word, so SEC-DED
  /// sees a clean CE/UE) to the line's sticky overlay. Lines that already
  /// carry overlay bits are skipped: manifested flips never stack into
  /// 3+-bit words that could alias a valid codeword.
  void manifest_sticky(std::uint32_t fbank, std::uint32_t row, std::uint32_t col,
                       std::uint64_t stream_seed, double double_bit_fraction);

  Geometry geo_;
  FaultConfig cfg_;

  /// Sticky per-line XOR overlay (decayed/disturbed charge). Lookup and
  /// erase only — never iterated.
  std::unordered_map<std::uint64_t, std::array<std::uint8_t, 64>> overlay_;

  /// Per-line retention epoch already manifested (or suppressed by a
  /// write); missing = never.
  std::unordered_map<std::uint64_t, std::int64_t> retention_epoch_;

  /// Per-row count of hammer threshold crossings (distinct draw per epoch).
  std::unordered_map<std::uint64_t, std::int64_t> hammer_epochs_;

  /// Plan lookup: line key -> indices into cfg_.plan.
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> stuck_by_line_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> transient_by_line_;
  std::vector<bool> transient_consumed_;

  /// Read-order counter keying the random-transient stream (per channel,
  /// advanced only while the rate is nonzero).
  std::int64_t read_seq_ = 0;

  std::int64_t faults_manifested_ = 0;
  std::int64_t faulty_reads_served_ = 0;
};

}  // namespace easydram::dram
