#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"
#include "dram/faults.hpp"
#include "dram/geometry.hpp"
#include "dram/timing.hpp"
#include "dram/types.hpp"
#include "dram/variation.hpp"

namespace easydram::dram {

/// Nominal-timing violations detected when a command is issued. DRAM
/// techniques violate timings *on purpose*, so a violation never rejects a
/// command; it selects the behavioural model (e.g. reduced-tRCD reads may
/// corrupt data, an early-PRE/early-ACT pattern triggers RowClone) and is
/// reported so tests and strict controllers can assert legality.
enum Violation : std::uint32_t {
  kNone = 0,
  kBankNotIdle = 1u << 0,    ///< ACT on a bank with an open row.
  kBankNotActive = 1u << 1,  ///< RD/WR/PRE on an idle bank.
  kTrcd = 1u << 2,
  kTrp = 1u << 3,
  kTras = 1u << 4,
  kTrc = 1u << 5,
  kTccd = 1u << 6,
  kTrrd = 1u << 7,
  kTfaw = 1u << 8,
  kTwr = 1u << 9,
  kTrtp = 1u << 10,
  kTwtr = 1u << 11,
  kTrfc = 1u << 12,
  kRefreshNotIdle = 1u << 13,  ///< REF with an open bank.
  kBusConflict = 1u << 14,     ///< Data bus occupied by an earlier burst.
  kClToShort = 1u << 15,       ///< RD before the previous burst completed.
};

/// Result of issuing one command.
struct IssueResult {
  std::uint32_t violations = kNone;
  /// Data returned by kRead. Valid (possibly corrupted) even under timing
  /// violations, mirroring a real chip that always returns *something*.
  std::array<std::uint8_t, 64> data{};
  bool has_data = false;
  /// kRead only: false when the access used an effective tRCD below the
  /// line's minimum reliable value and returned corrupted data.
  bool data_reliable = true;
  /// ACT only: this activate completed an ACT->PRE->ACT RowClone pattern.
  bool rowclone_attempted = false;
  /// Whether the attempted RowClone copied the source row correctly.
  bool rowclone_success = false;
};

/// Behavioural + timing model of one DDR4 *channel* — one or more ranks
/// sharing a command/data bus — with process variation.
///
/// Commands carry absolute issue timestamps (integral picoseconds) and a
/// rank coordinate in their DramAddress; the caller (DRAM Bender's
/// interpreter, or a test) owns the timeline. Bank and rank-level timing
/// state (tFAW window, tRRD, tWTR, refresh) is tracked per rank; the data
/// bus is shared across ranks and consecutive bursts from different ranks
/// pay the tRTRS switch penalty. With the default single-rank geometry all
/// of this reduces exactly to the original one-rank model.
///
/// The device checks nominal timings, reports violations, and models the
/// out-of-spec behaviours the paper's techniques rely on:
///
///  * A read whose ACT->RD distance is below the nominal tRCD succeeds iff
///    the distance is at least the line's minimum reliable tRCD (per the
///    VariationModel); otherwise the returned data AND the stored row are
///    deterministically corrupted (the sense amplifier latches and restores
///    the wrong value).
///  * The command pattern ACT(src) -> early PRE -> early ACT(dst) attempts a
///    Fast-Parallel-Mode RowClone: if the pair is clonable (same subarray
///    and the variation model agrees), dst's row buffer and cells take src's
///    content; otherwise dst is deterministically corrupted.
///
/// Units: every time in this interface is integral Picoseconds on the
/// caller's absolute timeline. Thread-safety: none — a device belongs to
/// one channel's (single-threaded) controller loop; concurrent sweeps own
/// one device per task.
class DramDevice {
 public:
  DramDevice(const Geometry& geo, const TimingParams& timing,
             const VariationConfig& variation);

  /// The construction-time shape/timing/variation (never change after).
  const Geometry& geometry() const { return geo_; }
  const TimingParams& timing() const { return timing_; }
  const VariationModel& variation() const { return variation_; }

  /// Ranks on this channel (== geometry().ranks_per_channel).
  std::uint32_t num_ranks() const { return geo_.ranks_per_channel; }

  /// Issues `c` at absolute time `at` (Picoseconds). Preconditions:
  /// at >= now() (time is non-decreasing across calls), `a` within the
  /// geometry, `wdata` holds exactly 64 bytes for kWrite (ignored
  /// otherwise). `a.rank` selects the rank; `a.channel` is ignored (a
  /// device *is* one channel). Never rejects a command — out-of-spec
  /// issue selects the behavioural model and reports violations.
  IssueResult issue(Command c, const DramAddress& a, Picoseconds at,
                    std::span<const std::uint8_t> wdata = {});

  /// Earliest absolute time (Picoseconds, >= now()) at which `c` could be
  /// issued to `a` without violating any *nominal* timing parameter.
  /// Schedulers use this to compose legal command sequences; techniques
  /// ignore it deliberately. Precondition: `a` within the geometry.
  Picoseconds earliest_legal(Command c, const DramAddress& a) const;

  /// Open row of `bank` in `rank`, if any. Preconditions: bank <
  /// Geometry::num_banks(), rank < num_ranks().
  std::optional<std::uint32_t> open_row(std::uint32_t bank,
                                        std::uint32_t rank = 0) const;

  /// Time of the last issued command (the device clock high-water mark,
  /// Picoseconds). Advances only with command activity — idle emulated
  /// time does not move it.
  Picoseconds now() const { return now_; }

  /// Number of refresh *slots* (one per tREFI, per rank) the controller
  /// should have consumed by `at` to keep every row refreshed
  /// (at / tREFI). `at` is absolute picoseconds on the emulated timeline.
  /// A slot is consumed by either issuing a REF or explicitly skipping it
  /// (skip_refresh); pacing therefore compares this against
  /// refresh_slots(), not refreshes_issued().
  std::int64_t refreshes_due(Picoseconds at) const;
  /// REF commands actually issued to `rank`. Precondition: rank < num_ranks().
  std::int64_t refreshes_issued(std::uint32_t rank = 0) const;
  /// Refresh slots consumed by `rank`: refreshes issued plus refreshes
  /// skipped. This is the round-robin position — REF slot n targets stripe
  /// n mod Geometry::refresh_window_refs — so the stripe schedule stays
  /// aligned when a retention-aware policy skips slots. Equal to
  /// refreshes_issued() when nothing ever skips.
  std::int64_t refresh_slots(std::uint32_t rank = 0) const;
  /// Consumes one refresh slot of `rank` without issuing a REF: the
  /// round-robin position advances, no timing state changes, no victim
  /// counters reset, and the skipped stripe's retention clock keeps
  /// running. Called by a retention-aware refresh policy in place of a
  /// REF; has no cost on any timeline.
  void skip_refresh(std::uint32_t rank = 0);

  /// Test/initialization backdoor: reads or writes one stored cache line
  /// without timing or state effects. Unwritten cells read as zero.
  /// Preconditions: `a` within the geometry; `data`/`out` spans exactly
  /// 64 bytes.
  void backdoor_write(const DramAddress& a, std::span<const std::uint8_t> data);
  void backdoor_read(const DramAddress& a, std::span<std::uint8_t> out) const;
  /// Copies a whole row (used by test fixtures). Precondition: `data`
  /// spans exactly Geometry::row_bytes.
  void backdoor_write_row(std::uint32_t bank, std::uint32_t row,
                          std::span<const std::uint8_t> data,
                          std::uint32_t rank = 0);

  /// Statistics: total commands issued per command kind, over all ranks.
  std::int64_t commands_issued(Command c) const;

  // --- RowHammer exposure accounting ---------------------------------------
  //
  // Ground-truth disturbance bookkeeping, independent of any mitigation
  // policy running in the controller: every ACT of row R charges one
  // disturbance to each physically adjacent row (Geometry::neighbor_rows);
  // a victim's counter resets when the victim itself is activated (any ACT
  // restores the row, including a mitigator's targeted neighbor refresh)
  // or when a periodic REF's stripe reaches it (REF number n refreshes the
  // n-mod-8192-th rows_per_bank/8192-row stripe of every bank in the
  // rank). The *bitflip-window exposure* is the maximum counter value any
  // victim ever reached — the quantity a RowHammer threshold would be
  // compared against. Off by default (zero hot-path cost beyond a branch).

  /// Enables/disables the accounting; toggling resets all counters.
  void set_hammer_tracking(bool on);
  bool hammer_tracking() const { return hammer_tracking_; }
  /// Max disturbance count (ACTs) any victim row reached between two
  /// refreshes of that row, over the whole run so far.
  std::int64_t max_hammer_exposure() const { return hammer_max_exposure_; }
  /// Current (not yet refresh-reset) disturbance count of one row.
  /// Precondition: the coordinate is within the geometry; 0 while
  /// tracking is off.
  std::int64_t hammer_count(std::uint32_t bank, std::uint32_t row,
                            std::uint32_t rank = 0) const;

  // --- Retention ground truth ----------------------------------------------
  //
  // Independent check on any refresh-skipping policy running in the
  // controller: every *issued* REF measures how long its stripe went
  // unrefreshed and compares the gap against the stripe's minimum modeled
  // retention time (min of VariationModel::row_retention over every row of
  // the stripe in every bank of the rank). A gap exceeding the minimum
  // means a correctly modeled leaky cell *could* have decayed — a
  // retention violation, the quantity the misbinning-risk scenario sweeps.
  //
  // Gaps are measured in refresh-slot space — (slots elapsed) x tREFI —
  // not on the device command clock, which only advances with command
  // activity and would under-count idle stretches. Slot pacing ties slots
  // to the emulated timeline (one per tREFI), so this is the wall gap a
  // real chip's cells would see, and it is exactly deterministic. At
  // power-on every stripe counts as just refreshed one full window before
  // its first slot. Off by default; like hammer tracking it costs one
  // branch on the REF path when off.

  // --- Fault manifestation -------------------------------------------------
  //
  // Optional deterministic fault model (dram/faults.hpp) converting the
  // ground-truth signals above into per-word bitflips on the read path.
  // Hammer-triggered flips need hammer tracking on; retention flips need
  // retention tracking on (they read the stripe bookkeeping). Off by
  // default: without an installed model the read/write paths are
  // bit-identical to a device predating the fault pipeline.

  /// Installs (or, with a disabled config, removes) the fault model. The
  /// caller pre-mixes the channel index into cfg.seed.
  void install_fault_model(const FaultConfig& cfg);
  const FaultModel* fault_model() const { return fault_model_.get(); }

  /// Emulated-time reference for fault manifestation. The device's own
  /// command timeline only advances with DRAM busy time and lags far
  /// behind emulated time on sparse traffic, but FaultReadContext::at is
  /// contractually *absolute emulated* time (scheduled transients and
  /// retention-elapsed checks depend on it) — so the batch driver
  /// (EasyApi::flush_commands) publishes emulated-now here before every
  /// batch and read commands stamp faults with max(command time, clock).
  void set_fault_clock(Picoseconds emulated_now) { fault_clock_ = emulated_now; }

  /// Reads one stored line as the pipeline would see it — sticky fault
  /// overlay, stuck-at cells, and due transients applied at emulated time
  /// `at` — without touching any timing state. The patrol scrubber's read
  /// path. Preconditions: `a` within the geometry, `out` spans 64 bytes.
  void scrub_read(const DramAddress& a, Picoseconds at,
                  std::span<std::uint8_t> out);
  /// Stores corrected data and clears the line's sticky flips (a write
  /// restores full charge). The patrol scrubber's write-back path.
  void scrub_writeback(const DramAddress& a, std::span<const std::uint8_t> data);

  void set_retention_tracking(bool on);
  bool retention_tracking() const { return retention_tracking_; }
  /// Issued REFs whose stripe gap exceeded the stripe's minimum retention.
  std::int64_t retention_violations() const { return retention_violations_; }
  /// Worst overshoot observed: max over violations of (gap - min
  /// retention). Zero when no violation occurred.
  Picoseconds max_retention_overshoot() const { return retention_overshoot_; }
  /// Minimum modeled retention over every row of `stripe` across every
  /// bank of `rank` (cached after first query). Preconditions: retention
  /// tracking enabled, stripe < Geometry::refresh_window_refs.
  Picoseconds stripe_min_retention(std::uint32_t rank, std::uint32_t stripe) const;

 private:
  struct BankState {
    bool active = false;
    std::uint32_t row = 0;
    Picoseconds act_time;       ///< When the current/most recent ACT was issued.
    Picoseconds pre_time;       ///< When the most recent PRE was issued.
    Picoseconds last_rd;        ///< Most recent RD command time.
    Picoseconds last_wr;        ///< Most recent WR command time.
    Picoseconds wr_data_end;    ///< End of the most recent write burst.
    Picoseconds rd_data_end;    ///< End of the most recent read burst.
    // RowClone detection: set when the bank saw ACT(row) then an early PRE.
    bool early_pre_pending = false;
    std::uint32_t early_pre_row = 0;
    Picoseconds early_pre_at;
  };

  /// Timing state one rank carries independently of its siblings.
  struct RankState {
    std::deque<Picoseconds> act_window;          ///< Last ACT times (tFAW).
    std::vector<Picoseconds> last_act_in_group;  ///< Per bank group (tRRD_L).
    Picoseconds last_act_any;
    std::vector<Picoseconds> last_col_in_group;  ///< Per bank group (tCCD_L).
    Picoseconds last_col_any;
    Picoseconds last_wr_data_end_any;            ///< For tWTR.
    std::vector<Picoseconds> wr_data_end_in_group;
    Picoseconds ref_busy_until;
    std::int64_t refreshes_issued = 0;
    /// Refresh slots consumed (issued + skipped): the round-robin stripe
    /// position. Stays equal to refreshes_issued under the default
    /// all-rows refresh regime.
    std::int64_t refresh_slots = 0;
  };

  using RowData = std::array<std::uint8_t, 8192>;

  /// Per-channel flat bank index; rank 0 coincides with the historical
  /// single-rank indices (and with the VariationModel's bank namespace).
  std::uint32_t flat(const DramAddress& a) const {
    return geo_.flat_bank(a.rank, a.bank);
  }

  RowData& row_data(std::uint32_t fbank, std::uint32_t row);
  const RowData* row_data_if_present(std::uint32_t fbank, std::uint32_t row) const;

  void corrupt_line(std::uint32_t fbank, std::uint32_t row, std::uint32_t col,
                    std::uint64_t salt);
  void corrupt_row(std::uint32_t fbank, std::uint32_t row, std::uint64_t salt);

  /// Data-bus availability for a burst from `rank`: crossing ranks adds the
  /// tRTRS turnaround on top of the previous burst's occupancy.
  Picoseconds bus_free_for(std::uint32_t rank) const;

  Picoseconds earliest_act(const DramAddress& a) const;
  Picoseconds earliest_rdwr(const DramAddress& a, bool is_write) const;
  Picoseconds earliest_pre(const DramAddress& a) const;

  /// RowHammer accounting hooks (no-ops unless tracking is enabled).
  void note_hammer_act(std::uint32_t fbank, std::uint32_t row);
  void note_hammer_refresh(std::uint32_t rank, std::int64_t ref_slot);

  /// Retention accounting hook for one issued REF (tracking must be on).
  void note_retention_refresh(std::uint32_t rank, std::int64_t ref_slot);

  /// Ground-truth context for one fault-model read of (rank, fbank, row).
  FaultReadContext fault_context(std::uint32_t rank, std::uint32_t fbank,
                                 std::uint32_t row, std::uint32_t col,
                                 Picoseconds at) const;
  /// The row's stripe epoch marker (last-REF slot; 0 when untracked).
  std::int64_t retention_epoch_of(std::uint32_t rank, std::uint32_t row) const;

  Geometry geo_;
  TimingParams timing_;
  VariationModel variation_;

  std::vector<BankState> banks_;  ///< Indexed by flat (rank, bank).
  // Sparse storage: per-flat-bank vector of lazily allocated rows.
  std::vector<std::vector<std::unique_ptr<RowData>>> store_;

  std::vector<RankState> ranks_;

  // Channel-level state: one data bus shared by every rank.
  Picoseconds data_bus_free_;
  std::uint32_t last_bus_rank_ = 0;

  Picoseconds now_;
  std::array<std::int64_t, 7> cmd_counts_{};

  // RowHammer exposure accounting (sparse: only disturbed rows hold a
  // counter). Indexed by flat (rank, bank); empty while tracking is off.
  bool hammer_tracking_ = false;
  std::vector<std::unordered_map<std::uint32_t, std::int64_t>> hammer_counts_;
  std::int64_t hammer_max_exposure_ = 0;

  // Retention ground truth (empty while tracking is off). Indexed
  // [rank * refresh_window_refs + stripe]; last-REF *slot* numbers start
  // at stripe - window (the power-on convention above) and min-retention
  // slots are filled lazily (-1 = not yet computed).
  bool retention_tracking_ = false;
  std::vector<std::int64_t> stripe_last_ref_slot_;
  mutable std::vector<std::int64_t> stripe_min_retention_;
  std::int64_t retention_violations_ = 0;
  Picoseconds retention_overshoot_{};

  // Deterministic fault manifestation (null unless installed).
  Picoseconds fault_clock_{};
  std::unique_ptr<FaultModel> fault_model_;
};

}  // namespace easydram::dram
