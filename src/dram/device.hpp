#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"
#include "dram/geometry.hpp"
#include "dram/timing.hpp"
#include "dram/types.hpp"
#include "dram/variation.hpp"

namespace easydram::dram {

/// REF commands per retention window (JESD79-4: 8192 auto-refresh commands
/// cover the whole array every tREFW = 64 ms). Each REF therefore refreshes
/// a rows_per_bank/8192 stripe of every bank; the RowHammer exposure
/// accounting and the Graphene-style tracker both key their reset schedule
/// off this constant.
inline constexpr std::int64_t kRefsPerRetentionWindow = 8192;

/// Nominal-timing violations detected when a command is issued. DRAM
/// techniques violate timings *on purpose*, so a violation never rejects a
/// command; it selects the behavioural model (e.g. reduced-tRCD reads may
/// corrupt data, an early-PRE/early-ACT pattern triggers RowClone) and is
/// reported so tests and strict controllers can assert legality.
enum Violation : std::uint32_t {
  kNone = 0,
  kBankNotIdle = 1u << 0,    ///< ACT on a bank with an open row.
  kBankNotActive = 1u << 1,  ///< RD/WR/PRE on an idle bank.
  kTrcd = 1u << 2,
  kTrp = 1u << 3,
  kTras = 1u << 4,
  kTrc = 1u << 5,
  kTccd = 1u << 6,
  kTrrd = 1u << 7,
  kTfaw = 1u << 8,
  kTwr = 1u << 9,
  kTrtp = 1u << 10,
  kTwtr = 1u << 11,
  kTrfc = 1u << 12,
  kRefreshNotIdle = 1u << 13,  ///< REF with an open bank.
  kBusConflict = 1u << 14,     ///< Data bus occupied by an earlier burst.
  kClToShort = 1u << 15,       ///< RD before the previous burst completed.
};

/// Result of issuing one command.
struct IssueResult {
  std::uint32_t violations = kNone;
  /// Data returned by kRead. Valid (possibly corrupted) even under timing
  /// violations, mirroring a real chip that always returns *something*.
  std::array<std::uint8_t, 64> data{};
  bool has_data = false;
  /// kRead only: false when the access used an effective tRCD below the
  /// line's minimum reliable value and returned corrupted data.
  bool data_reliable = true;
  /// ACT only: this activate completed an ACT->PRE->ACT RowClone pattern.
  bool rowclone_attempted = false;
  /// Whether the attempted RowClone copied the source row correctly.
  bool rowclone_success = false;
};

/// Behavioural + timing model of one DDR4 *channel* — one or more ranks
/// sharing a command/data bus — with process variation.
///
/// Commands carry absolute issue timestamps (integral picoseconds) and a
/// rank coordinate in their DramAddress; the caller (DRAM Bender's
/// interpreter, or a test) owns the timeline. Bank and rank-level timing
/// state (tFAW window, tRRD, tWTR, refresh) is tracked per rank; the data
/// bus is shared across ranks and consecutive bursts from different ranks
/// pay the tRTRS switch penalty. With the default single-rank geometry all
/// of this reduces exactly to the original one-rank model.
///
/// The device checks nominal timings, reports violations, and models the
/// out-of-spec behaviours the paper's techniques rely on:
///
///  * A read whose ACT->RD distance is below the nominal tRCD succeeds iff
///    the distance is at least the line's minimum reliable tRCD (per the
///    VariationModel); otherwise the returned data AND the stored row are
///    deterministically corrupted (the sense amplifier latches and restores
///    the wrong value).
///  * The command pattern ACT(src) -> early PRE -> early ACT(dst) attempts a
///    Fast-Parallel-Mode RowClone: if the pair is clonable (same subarray
///    and the variation model agrees), dst's row buffer and cells take src's
///    content; otherwise dst is deterministically corrupted.
class DramDevice {
 public:
  DramDevice(const Geometry& geo, const TimingParams& timing,
             const VariationConfig& variation);

  const Geometry& geometry() const { return geo_; }
  const TimingParams& timing() const { return timing_; }
  const VariationModel& variation() const { return variation_; }

  std::uint32_t num_ranks() const { return geo_.ranks_per_channel; }

  /// Issues `c` at absolute time `at`. Time must be non-decreasing across
  /// calls. `wdata` must hold 64 bytes for kWrite and is ignored otherwise.
  /// `a.rank` selects the rank; `a.channel` is ignored (a device *is* one
  /// channel).
  IssueResult issue(Command c, const DramAddress& a, Picoseconds at,
                    std::span<const std::uint8_t> wdata = {});

  /// Earliest time at which `c` could be issued to `a` without violating
  /// any *nominal* timing parameter. Schedulers use this to compose legal
  /// command sequences; techniques ignore it deliberately.
  Picoseconds earliest_legal(Command c, const DramAddress& a) const;

  /// Open row of `bank` in `rank`, if any.
  std::optional<std::uint32_t> open_row(std::uint32_t bank,
                                        std::uint32_t rank = 0) const;

  /// Time of the last issued command (the device clock high-water mark).
  Picoseconds now() const { return now_; }

  /// Number of REF commands the controller should have issued *per rank* by
  /// `at` to keep every row refreshed (at / tREFI).
  std::int64_t refreshes_due(Picoseconds at) const;
  std::int64_t refreshes_issued(std::uint32_t rank = 0) const;

  /// Test/initialization backdoor: reads or writes stored cells without
  /// timing or state effects. Unwritten cells read as zero.
  void backdoor_write(const DramAddress& a, std::span<const std::uint8_t> data);
  void backdoor_read(const DramAddress& a, std::span<std::uint8_t> out) const;
  /// Copies a whole row (used by test fixtures).
  void backdoor_write_row(std::uint32_t bank, std::uint32_t row,
                          std::span<const std::uint8_t> data,
                          std::uint32_t rank = 0);

  /// Statistics: total commands issued per command kind.
  std::int64_t commands_issued(Command c) const;

  // --- RowHammer exposure accounting ---------------------------------------
  //
  // Ground-truth disturbance bookkeeping, independent of any mitigation
  // policy running in the controller: every ACT of row R charges one
  // disturbance to each physically adjacent row (Geometry::neighbor_rows);
  // a victim's counter resets when the victim itself is activated (any ACT
  // restores the row, including a mitigator's targeted neighbor refresh)
  // or when a periodic REF's stripe reaches it (REF number n refreshes the
  // n-mod-8192-th rows_per_bank/8192-row stripe of every bank in the
  // rank). The *bitflip-window exposure* is the maximum counter value any
  // victim ever reached — the quantity a RowHammer threshold would be
  // compared against. Off by default (zero hot-path cost beyond a branch).

  void set_hammer_tracking(bool on);
  bool hammer_tracking() const { return hammer_tracking_; }
  /// Max disturbance count any victim row reached between two refreshes of
  /// that row, over the whole run so far.
  std::int64_t max_hammer_exposure() const { return hammer_max_exposure_; }
  /// Current (not yet refresh-reset) disturbance count of one row.
  std::int64_t hammer_count(std::uint32_t bank, std::uint32_t row,
                            std::uint32_t rank = 0) const;

 private:
  struct BankState {
    bool active = false;
    std::uint32_t row = 0;
    Picoseconds act_time;       ///< When the current/most recent ACT was issued.
    Picoseconds pre_time;       ///< When the most recent PRE was issued.
    Picoseconds last_rd;        ///< Most recent RD command time.
    Picoseconds last_wr;        ///< Most recent WR command time.
    Picoseconds wr_data_end;    ///< End of the most recent write burst.
    Picoseconds rd_data_end;    ///< End of the most recent read burst.
    // RowClone detection: set when the bank saw ACT(row) then an early PRE.
    bool early_pre_pending = false;
    std::uint32_t early_pre_row = 0;
    Picoseconds early_pre_at;
  };

  /// Timing state one rank carries independently of its siblings.
  struct RankState {
    std::deque<Picoseconds> act_window;          ///< Last ACT times (tFAW).
    std::vector<Picoseconds> last_act_in_group;  ///< Per bank group (tRRD_L).
    Picoseconds last_act_any;
    std::vector<Picoseconds> last_col_in_group;  ///< Per bank group (tCCD_L).
    Picoseconds last_col_any;
    Picoseconds last_wr_data_end_any;            ///< For tWTR.
    std::vector<Picoseconds> wr_data_end_in_group;
    Picoseconds ref_busy_until;
    std::int64_t refreshes_issued = 0;
  };

  using RowData = std::array<std::uint8_t, 8192>;

  /// Per-channel flat bank index; rank 0 coincides with the historical
  /// single-rank indices (and with the VariationModel's bank namespace).
  std::uint32_t flat(const DramAddress& a) const {
    return geo_.flat_bank(a.rank, a.bank);
  }

  RowData& row_data(std::uint32_t fbank, std::uint32_t row);
  const RowData* row_data_if_present(std::uint32_t fbank, std::uint32_t row) const;

  void corrupt_line(std::uint32_t fbank, std::uint32_t row, std::uint32_t col,
                    std::uint64_t salt);
  void corrupt_row(std::uint32_t fbank, std::uint32_t row, std::uint64_t salt);

  /// Data-bus availability for a burst from `rank`: crossing ranks adds the
  /// tRTRS turnaround on top of the previous burst's occupancy.
  Picoseconds bus_free_for(std::uint32_t rank) const;

  Picoseconds earliest_act(const DramAddress& a) const;
  Picoseconds earliest_rdwr(const DramAddress& a, bool is_write) const;
  Picoseconds earliest_pre(const DramAddress& a) const;

  /// RowHammer accounting hooks (no-ops unless tracking is enabled).
  void note_hammer_act(std::uint32_t fbank, std::uint32_t row);
  void note_hammer_refresh(std::uint32_t rank, std::int64_t ref_index);

  Geometry geo_;
  TimingParams timing_;
  VariationModel variation_;

  std::vector<BankState> banks_;  ///< Indexed by flat (rank, bank).
  // Sparse storage: per-flat-bank vector of lazily allocated rows.
  std::vector<std::vector<std::unique_ptr<RowData>>> store_;

  std::vector<RankState> ranks_;

  // Channel-level state: one data bus shared by every rank.
  Picoseconds data_bus_free_;
  std::uint32_t last_bus_rank_ = 0;

  Picoseconds now_;
  std::array<std::int64_t, 7> cmd_counts_{};

  // RowHammer exposure accounting (sparse: only disturbed rows hold a
  // counter). Indexed by flat (rank, bank); empty while tracking is off.
  bool hammer_tracking_ = false;
  std::vector<std::unordered_map<std::uint32_t, std::int64_t>> hammer_counts_;
  std::int64_t hammer_max_exposure_ = 0;
};

}  // namespace easydram::dram
