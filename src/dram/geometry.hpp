#pragma once

#include <array>
#include <cstdint>

#include "common/contracts.hpp"
#include "dram/types.hpp"

namespace easydram::dram {

/// REF commands per retention window (JESD79-4: 8192 auto-refresh commands
/// cover the whole array every tREFW = 64 ms). Each REF therefore refreshes
/// a rows_per_bank/8192 stripe of every bank; the RowHammer exposure
/// accounting, the Graphene-style tracker, and the RAIDR refresh policy all
/// key their stripe/window arithmetic off this value (the default of
/// Geometry::refresh_window_refs).
inline constexpr std::int64_t kRefsPerRetentionWindow = 8192;

/// Physical organization of the modelled memory system.
///
/// The defaults match the paper's case-study memory system (§7.2): a single
/// channel, single rank of DDR4 with 4 bank groups x 4 banks and 32 K rows
/// per bank; a row holds 8 KiB at rank level and a column access moves one
/// 64-byte cache line. Rows are grouped into subarrays of 512 rows, the
/// granularity at which RowClone (an intra-subarray operation) can move data.
///
/// `channels`/`ranks_per_channel` generalize the address space to
/// channels x ranks x banks; per-bank quantities (`num_banks`,
/// `rows_per_bank`, ...) always describe ONE rank, so existing single-rank
/// code keeps its meaning unchanged.
struct Geometry {
  std::uint32_t channels = 1;
  std::uint32_t ranks_per_channel = 1;
  std::uint32_t bank_groups = 4;
  std::uint32_t banks_per_group = 4;
  std::uint32_t rows_per_bank = 32768;
  std::uint32_t row_bytes = 8192;
  std::uint32_t col_bytes = 64;
  std::uint32_t rows_per_subarray = 512;
  /// REF commands that cover the whole array once (one retention window,
  /// nominally tREFW = 64 ms). REF number n refreshes the round-robin
  /// stripe n mod refresh_window_refs of every bank in the rank. The JEDEC
  /// value is 8192; tests and time-compressed retention scenarios shrink it
  /// so a whole window fits in a millisecond-scale emulated run.
  std::uint32_t refresh_window_refs =
      static_cast<std::uint32_t>(kRefsPerRetentionWindow);

  /// Banks in one rank.
  constexpr std::uint32_t num_banks() const { return bank_groups * banks_per_group; }
  /// Banks in one channel (across its ranks).
  constexpr std::uint32_t banks_per_channel() const {
    return num_banks() * ranks_per_channel;
  }
  /// Banks in the whole system.
  constexpr std::uint32_t total_banks() const {
    return banks_per_channel() * channels;
  }
  constexpr std::uint32_t cols_per_row() const { return row_bytes / col_bytes; }
  constexpr std::uint32_t subarrays_per_bank() const {
    return rows_per_bank / rows_per_subarray;
  }
  constexpr std::uint64_t rank_capacity_bytes() const {
    return static_cast<std::uint64_t>(num_banks()) * rows_per_bank * row_bytes;
  }
  constexpr std::uint64_t channel_capacity_bytes() const {
    return rank_capacity_bytes() * ranks_per_channel;
  }
  /// Total addressable capacity across every channel and rank.
  constexpr std::uint64_t capacity_bytes() const {
    return channel_capacity_bytes() * channels;
  }

  constexpr std::uint32_t bank_group_of(std::uint32_t bank) const {
    return bank / banks_per_group;
  }
  constexpr std::uint32_t subarray_of(std::uint32_t row) const {
    return row / rows_per_subarray;
  }
  constexpr bool same_subarray(std::uint32_t row_a, std::uint32_t row_b) const {
    return subarray_of(row_a) == subarray_of(row_b);
  }

  /// Physically adjacent rows of `row` inside its subarray: the RowHammer
  /// victim set of an aggressor (and, symmetrically, the rows a targeted
  /// neighbor refresh must touch). Subarray edges have one neighbor — the
  /// sense-amplifier stripe between subarrays isolates the wordline
  /// coupling, so adjacency never crosses a subarray boundary.
  struct NeighborRows {
    std::array<std::uint32_t, 2> rows{};
    std::uint32_t count = 0;
  };
  constexpr NeighborRows neighbor_rows(std::uint32_t row) const {
    NeighborRows n;
    if (row > 0 && same_subarray(row - 1, row)) n.rows[n.count++] = row - 1;
    if (row + 1 < rows_per_bank && same_subarray(row, row + 1)) {
      n.rows[n.count++] = row + 1;
    }
    return n;
  }

  /// Rows of one refresh stripe in every bank: REF number n refreshes rows
  /// [stripe * refresh_stripe_rows(), ...) where stripe = n mod
  /// refresh_window_refs. 4 rows for the default 32 K-row / 8192-REF shape.
  constexpr std::uint32_t refresh_stripe_rows() const {
    return (rows_per_bank + refresh_window_refs - 1) / refresh_window_refs;
  }
  /// Refresh stripe (round-robin position within the window) REF slot
  /// number `slot` targets. Slots count both issued and skipped refresh
  /// opportunities, so the mapping is stable under a skipping policy.
  constexpr std::uint32_t refresh_stripe_of_slot(std::int64_t slot) const {
    return static_cast<std::uint32_t>(slot % refresh_window_refs);
  }
  /// Stripe containing `row` — the inverse of refresh_stripe_of_slot for
  /// reasoning about when a given row's victims are reset.
  constexpr std::uint32_t refresh_stripe_of_row(std::uint32_t row) const {
    return row / refresh_stripe_rows();
  }

  /// Flattens (rank, bank-in-rank) to a per-channel bank index; the
  /// per-channel device and the process-variation model index bank state
  /// this way so rank 0 coincides with the historical single-rank indices.
  constexpr std::uint32_t flat_bank(std::uint32_t rank, std::uint32_t bank) const {
    return rank * num_banks() + bank;
  }

  /// Flattens a full address to a system-wide bank index (used as the
  /// RowClone-map key namespace; equals `bank` for the 1x1 default).
  constexpr std::uint32_t system_bank(const DramAddress& a) const {
    return (a.channel * ranks_per_channel + a.rank) * num_banks() + a.bank;
  }

  /// Validates an address against this geometry.
  constexpr bool contains(const DramAddress& a) const {
    return a.channel < channels && a.rank < ranks_per_channel &&
           a.bank < num_banks() && a.row < rows_per_bank && a.col < cols_per_row();
  }
};

}  // namespace easydram::dram
