#include "dram/variation.hpp"

#include <cmath>

namespace easydram::dram {

namespace {

constexpr std::uint32_t kRowsPerGroup = 64;  // Fig. 12 heatmap granularity.
constexpr std::uint32_t kLatticeStep = 8;

double lattice_value(std::uint64_t seed, std::uint32_t bank, std::uint32_t u,
                     std::uint32_t v) {
  return to_unit_double(hash_mix(seed, bank, u, v));
}

}  // namespace

double VariationModel::smooth_noise(std::uint32_t bank, std::uint32_t row) const {
  // Map the row to 2D physical-layout-like coordinates: position within its
  // 64-row group (x) and the group index (y), then bilinearly interpolate a
  // hashed lattice with 8-unit spacing so that weak areas span contiguous
  // regions of rows and groups, as in the paper's heatmap.
  const std::uint32_t x = row % kRowsPerGroup;
  const std::uint32_t y = row / kRowsPerGroup;
  const std::uint32_t x0 = x / kLatticeStep;
  const std::uint32_t y0 = y / kLatticeStep;
  const double fx = static_cast<double>(x % kLatticeStep) / kLatticeStep;
  const double fy = static_cast<double>(y % kLatticeStep) / kLatticeStep;

  const double v00 = lattice_value(cfg_.seed, bank, x0, y0);
  const double v10 = lattice_value(cfg_.seed, bank, x0 + 1, y0);
  const double v01 = lattice_value(cfg_.seed, bank, x0, y0 + 1);
  const double v11 = lattice_value(cfg_.seed, bank, x0 + 1, y0 + 1);

  const double top = v00 * (1.0 - fx) + v10 * fx;
  const double bot = v01 * (1.0 - fx) + v11 * fx;
  return top * (1.0 - fy) + bot * fy;
}

Picoseconds VariationModel::row_min_trcd(std::uint32_t bank, std::uint32_t row) const {
  EASYDRAM_EXPECTS(bank < geo_.banks_per_channel() && row < geo_.rows_per_bank);
  if (row_trcd_cache_.empty()) row_trcd_cache_.resize(kRowTrcdCacheSize);
  const std::uint64_t key = (static_cast<std::uint64_t>(bank) << 32) | row;
  // Spread consecutive rows and banks over the table; power-of-two mask.
  const std::size_t slot_idx =
      static_cast<std::size_t>((row + bank * 0x9E3779B9ull)) &
      (kRowTrcdCacheSize - 1);
  RowTrcdSlot& slot = row_trcd_cache_[slot_idx];
  if (slot.key == key) return Picoseconds{slot.ps};
  const double n = smooth_noise(bank, row);
  const double shaped = std::pow(n, cfg_.shape);
  const double span = static_cast<double>(cfg_.max_trcd.count - cfg_.min_trcd.count);
  const std::int64_t ps =
      cfg_.min_trcd.count + static_cast<std::int64_t>(shaped * span);
  slot.key = key;
  slot.ps = ps;
  return Picoseconds{ps};
}

Picoseconds VariationModel::line_min_trcd(std::uint32_t bank, std::uint32_t row,
                                          std::uint32_t col) const {
  EASYDRAM_EXPECTS(bank < geo_.banks_per_channel() && row < geo_.rows_per_bank &&
                   col < geo_.cols_per_row());
  const Picoseconds row_value = row_min_trcd(bank, row);
  // One deterministic "anchor" line per row carries the row's full value so
  // the row minimum is exactly the max over its lines.
  const std::uint32_t anchor =
      static_cast<std::uint32_t>(hash_mix(cfg_.seed ^ 0xA11C4, bank, row) %
                                 geo_.cols_per_row());
  if (col == anchor) return row_value;
  const double u = to_unit_double(hash_mix(cfg_.seed ^ 0x11E5, bank, row, col));
  return Picoseconds{row_value.count -
                     static_cast<std::int64_t>(u * static_cast<double>(cfg_.line_jitter.count))};
}

Picoseconds VariationModel::row_retention(std::uint32_t bank,
                                          std::uint32_t row) const {
  EASYDRAM_EXPECTS(bank < geo_.banks_per_channel() && row < geo_.rows_per_bank);
  const double cls = to_unit_double(hash_mix(cfg_.seed ^ 0x4E7E4710, bank, row));
  const double pos = to_unit_double(hash_mix(cfg_.seed ^ 0x4E7E4711, bank, row));
  const double base = static_cast<double>(cfg_.retention_base.count);
  // Class boundaries in multiples of the base window: weakest [1, 2),
  // weak [2, 4), strong [4, 16).
  double lo = 4.0, hi = 16.0;
  if (cls < cfg_.retention_p_weakest) {
    lo = 1.0;
    hi = 2.0;
  } else if (cls < cfg_.retention_p_weakest + cfg_.retention_p_weak) {
    lo = 2.0;
    hi = 4.0;
  }
  return Picoseconds{
      static_cast<std::int64_t>(base * (lo + pos * (hi - lo)))};
}

bool VariationModel::rowclone_pair_ok(std::uint32_t bank, std::uint32_t src_row,
                                      std::uint32_t dst_row) const {
  if (!geo_.same_subarray(src_row, dst_row)) return false;
  if (src_row == dst_row) return true;
  const double u =
      to_unit_double(hash_mix(cfg_.seed ^ 0xC10E, bank, src_row, dst_row));
  return u < cfg_.rowclone_pair_success;
}

}  // namespace easydram::dram
