#include "dram/device.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/rng.hpp"

namespace easydram::dram {

namespace {

constexpr Picoseconds kNegInf{std::numeric_limits<std::int64_t>::min() / 4};

/// ACT->PRE gaps below this fraction of tRAS count as an "early precharge",
/// the first half of the FPM RowClone ACT->PRE->ACT pattern. Real chips need
/// the gap to be a handful of tCK; half of tRAS separates that cleanly from
/// legal operation.
constexpr double kRowClonePreFraction = 0.5;
/// PRE->ACT gaps below this fraction of tRP complete the RowClone pattern.
constexpr double kRowCloneActFraction = 0.5;

Picoseconds max_ps(std::initializer_list<Picoseconds> xs) {
  Picoseconds m = kNegInf;
  for (Picoseconds x : xs) m = std::max(m, x);
  return m;
}

}  // namespace

std::string_view to_string(Command c) {
  switch (c) {
    case Command::kAct: return "ACT";
    case Command::kPre: return "PRE";
    case Command::kPreAll: return "PREA";
    case Command::kRead: return "RD";
    case Command::kWrite: return "WR";
    case Command::kRef: return "REF";
    case Command::kNop: return "NOP";
  }
  return "?";
}

DramDevice::DramDevice(const Geometry& geo, const TimingParams& timing,
                       const VariationConfig& variation)
    : geo_(geo),
      timing_(timing),
      variation_(geo, variation),
      banks_(geo.banks_per_channel()),
      store_(geo.banks_per_channel()),
      ranks_(geo.ranks_per_channel),
      data_bus_free_(kNegInf),
      now_(Picoseconds{0}) {
  for (auto& b : banks_) {
    b.act_time = b.pre_time = b.last_rd = b.last_wr = kNegInf;
    b.wr_data_end = b.rd_data_end = b.early_pre_at = kNegInf;
  }
  for (auto& r : ranks_) {
    r.last_act_in_group.assign(geo.bank_groups, kNegInf);
    r.last_act_any = kNegInf;
    r.last_col_in_group.assign(geo.bank_groups, kNegInf);
    r.last_col_any = kNegInf;
    r.last_wr_data_end_any = kNegInf;
    r.wr_data_end_in_group.assign(geo.bank_groups, kNegInf);
    r.ref_busy_until = kNegInf;
  }
}

DramDevice::RowData& DramDevice::row_data(std::uint32_t fbank, std::uint32_t row) {
  auto& bank_store = store_[fbank];
  if (bank_store.empty()) bank_store.resize(geo_.rows_per_bank);
  auto& slot = bank_store[row];
  if (!slot) {
    slot = std::make_unique<RowData>();
    slot->fill(0);
  }
  return *slot;
}

const DramDevice::RowData* DramDevice::row_data_if_present(std::uint32_t fbank,
                                                           std::uint32_t row) const {
  const auto& bank_store = store_[fbank];
  if (bank_store.empty() || !bank_store[row]) return nullptr;
  return bank_store[row].get();
}

void DramDevice::corrupt_line(std::uint32_t fbank, std::uint32_t row,
                              std::uint32_t col, std::uint64_t salt) {
  RowData& rd = row_data(fbank, row);
  SplitMix64 sm(hash_mix(variation_.config().seed ^ 0xBADBADBAD, fbank, row,
                         (static_cast<std::uint64_t>(col) << 32) | salt));
  // Flip a deterministic set of bits across the 64-byte line. Weak-tRCD
  // failures in real chips flip a few bits per line; eight flips is enough
  // for any data-comparison test to detect the failure reliably.
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t r = sm.next();
    const std::uint32_t byte = col * geo_.col_bytes + static_cast<std::uint32_t>(r % 64);
    rd[byte] ^= static_cast<std::uint8_t>(1u << ((r >> 8) % 8));
  }
}

void DramDevice::corrupt_row(std::uint32_t fbank, std::uint32_t row, std::uint64_t salt) {
  for (std::uint32_t col = 0; col < geo_.cols_per_row(); ++col) {
    corrupt_line(fbank, row, col, salt ^ 0x517EC10E);
  }
}

Picoseconds DramDevice::bus_free_for(std::uint32_t rank) const {
  if (data_bus_free_ == kNegInf || rank == last_bus_rank_) return data_bus_free_;
  return data_bus_free_ + timing_.tRTRS;
}

Picoseconds DramDevice::earliest_act(const DramAddress& a) const {
  const BankState& b = banks_[flat(a)];
  const RankState& r = ranks_[a.rank];
  Picoseconds t = max_ps({b.pre_time + timing_.tRP, b.act_time + timing_.tRC,
                          r.last_act_in_group[geo_.bank_group_of(a.bank)] + timing_.tRRD_L,
                          r.last_act_any + timing_.tRRD_S, r.ref_busy_until});
  if (r.act_window.size() >= 4) t = std::max(t, r.act_window.front() + timing_.tFAW);
  return std::max(t, now_);
}

Picoseconds DramDevice::earliest_rdwr(const DramAddress& a, bool is_write) const {
  const BankState& b = banks_[flat(a)];
  const RankState& r = ranks_[a.rank];
  const std::uint32_t group = geo_.bank_group_of(a.bank);
  // ref_busy_until: column commands are as illegal during tRFC as ACTs —
  // the rank's internal refresh owns every bank. Nominal schedules never
  // hit this bound (post-refresh reads must re-ACT first, which already
  // waits), but it keeps earliest_legal honest for direct column probes.
  Picoseconds t = max_ps({b.act_time + timing_.tRCD,
                          r.last_col_in_group[group] + timing_.tCCD_L,
                          r.last_col_any + timing_.tCCD_S, r.ref_busy_until});
  if (!is_write) {
    t = max_ps({t, r.wr_data_end_in_group[group] + timing_.tWTR_L,
                r.last_wr_data_end_any + timing_.tWTR_S,
                bus_free_for(a.rank) - timing_.tCL});
  } else {
    t = std::max(t, bus_free_for(a.rank) - timing_.tCWL);
  }
  return std::max(t, now_);
}

Picoseconds DramDevice::earliest_pre(const DramAddress& a) const {
  const BankState& b = banks_[flat(a)];
  return std::max(max_ps({b.act_time + timing_.tRAS, b.last_rd + timing_.tRTP,
                          b.wr_data_end + timing_.tWR}),
                  now_);
}

Picoseconds DramDevice::earliest_legal(Command c, const DramAddress& a) const {
  switch (c) {
    case Command::kAct:
      return earliest_act(a);
    case Command::kRead:
      return earliest_rdwr(a, /*is_write=*/false);
    case Command::kWrite:
      return earliest_rdwr(a, /*is_write=*/true);
    case Command::kPre:
      return earliest_pre(a);
    case Command::kPreAll: {
      Picoseconds t = now_;
      for (std::uint32_t bank = 0; bank < geo_.num_banks(); ++bank) {
        DramAddress ba = a;
        ba.bank = bank;
        if (banks_[flat(ba)].active) t = std::max(t, earliest_pre(ba));
      }
      return t;
    }
    case Command::kRef: {
      const RankState& r = ranks_[a.rank];
      Picoseconds t = std::max(now_, r.ref_busy_until);
      for (std::uint32_t bank = 0; bank < geo_.num_banks(); ++bank) {
        t = std::max(t, banks_[geo_.flat_bank(a.rank, bank)].pre_time + timing_.tRP);
      }
      return t;
    }
    case Command::kNop:
      return now_;
  }
  return now_;
}

std::optional<std::uint32_t> DramDevice::open_row(std::uint32_t bank,
                                                  std::uint32_t rank) const {
  EASYDRAM_EXPECTS(rank < ranks_.size() && bank < geo_.num_banks());
  const BankState& b = banks_[geo_.flat_bank(rank, bank)];
  if (!b.active) return std::nullopt;
  return b.row;
}

std::int64_t DramDevice::refreshes_due(Picoseconds at) const {
  return at.count / timing_.tREFI.count;
}

std::int64_t DramDevice::refreshes_issued(std::uint32_t rank) const {
  EASYDRAM_EXPECTS(rank < ranks_.size());
  return ranks_[rank].refreshes_issued;
}

std::int64_t DramDevice::refresh_slots(std::uint32_t rank) const {
  EASYDRAM_EXPECTS(rank < ranks_.size());
  return ranks_[rank].refresh_slots;
}

void DramDevice::skip_refresh(std::uint32_t rank) {
  EASYDRAM_EXPECTS(rank < ranks_.size());
  // The skipped stripe is NOT refreshed: victim counters keep
  // accumulating and the stripe's retention clock keeps running — only
  // the round-robin position advances.
  ++ranks_[rank].refresh_slots;
}

IssueResult DramDevice::issue(Command c, const DramAddress& a, Picoseconds at,
                              std::span<const std::uint8_t> wdata) {
  EASYDRAM_EXPECTS(at >= now_);
  EASYDRAM_EXPECTS(a.rank < ranks_.size());
  IssueResult res;
  now_ = at;
  ++cmd_counts_[static_cast<std::size_t>(c)];

  switch (c) {
    case Command::kNop:
      return res;

    case Command::kAct: {
      EASYDRAM_EXPECTS(a.bank < geo_.num_banks() && a.row < geo_.rows_per_bank);
      const std::uint32_t fbank = flat(a);
      BankState& b = banks_[fbank];
      RankState& r = ranks_[a.rank];
      if (b.active) res.violations |= kBankNotIdle;
      if (at < b.pre_time + timing_.tRP) res.violations |= kTrp;
      if (at < b.act_time + timing_.tRC) res.violations |= kTrc;
      const std::uint32_t group = geo_.bank_group_of(a.bank);
      if (at < r.last_act_in_group[group] + timing_.tRRD_L) res.violations |= kTrrd;
      if (at < r.last_act_any + timing_.tRRD_S) res.violations |= kTrrd;
      if (r.act_window.size() >= 4 && at < r.act_window.front() + timing_.tFAW) {
        res.violations |= kTfaw;
      }
      if (at < r.ref_busy_until) res.violations |= kTrfc;

      // RowClone: this ACT completes ACT(src) -> early PRE -> early ACT(dst).
      if (b.early_pre_pending) {
        const Picoseconds gap = at - b.early_pre_at;
        const auto threshold = Picoseconds{static_cast<std::int64_t>(
            kRowCloneActFraction * static_cast<double>(timing_.tRP.count))};
        if (gap < threshold) {
          res.rowclone_attempted = true;
          const std::uint32_t src = b.early_pre_row;
          const std::uint32_t dst = a.row;
          res.rowclone_success = variation_.rowclone_pair_ok(fbank, src, dst);
          if (res.rowclone_success) {
            if (src != dst) {
              const RowData* src_data = row_data_if_present(fbank, src);
              RowData& dst_data = row_data(fbank, dst);
              if (src_data != nullptr) {
                dst_data = *src_data;
              } else {
                dst_data.fill(0);
              }
            }
          } else {
            corrupt_row(fbank, dst, static_cast<std::uint64_t>(at.count));
          }
        }
        b.early_pre_pending = false;
      }

      b.active = true;
      b.row = a.row;
      b.act_time = at;
      b.last_rd = b.last_wr = kNegInf;
      b.wr_data_end = b.rd_data_end = kNegInf;
      r.last_act_in_group[group] = at;
      r.last_act_any = at;
      r.act_window.push_back(at);
      while (r.act_window.size() > 4) r.act_window.pop_front();
      if (hammer_tracking_) note_hammer_act(fbank, a.row);
      return res;
    }

    case Command::kPre: {
      EASYDRAM_EXPECTS(a.bank < geo_.num_banks());
      BankState& b = banks_[flat(a)];
      if (!b.active) {
        res.violations |= kBankNotActive;
        return res;
      }
      if (at < b.act_time + timing_.tRAS) res.violations |= kTras;
      if (at < b.last_rd + timing_.tRTP) res.violations |= kTrtp;
      if (at < b.wr_data_end + timing_.tWR) res.violations |= kTwr;

      const Picoseconds act_to_pre = at - b.act_time;
      const auto early_threshold = Picoseconds{static_cast<std::int64_t>(
          kRowClonePreFraction * static_cast<double>(timing_.tRAS.count))};
      if (act_to_pre < early_threshold) {
        b.early_pre_pending = true;
        b.early_pre_row = b.row;
        b.early_pre_at = at;
      } else {
        b.early_pre_pending = false;
      }
      b.active = false;
      b.pre_time = at;
      return res;
    }

    case Command::kPreAll: {
      for (std::uint32_t bank = 0; bank < geo_.num_banks(); ++bank) {
        BankState& b = banks_[geo_.flat_bank(a.rank, bank)];
        if (!b.active) continue;
        if (at < b.act_time + timing_.tRAS) res.violations |= kTras;
        if (at < b.last_rd + timing_.tRTP) res.violations |= kTrtp;
        if (at < b.wr_data_end + timing_.tWR) res.violations |= kTwr;
        b.active = false;
        b.pre_time = at;
        b.early_pre_pending = false;
      }
      return res;
    }

    case Command::kRead: {
      EASYDRAM_EXPECTS(a.bank < geo_.num_banks() && a.row < geo_.rows_per_bank &&
                       a.col < geo_.cols_per_row());
      const std::uint32_t fbank = flat(a);
      BankState& b = banks_[fbank];
      RankState& r = ranks_[a.rank];
      res.has_data = true;
      if (!b.active || b.row != a.row) {
        // Reading a closed (or different) row returns garbage.
        res.violations |= kBankNotActive;
        res.data_reliable = false;
        SplitMix64 sm(hash_mix(0xDEAD, fbank, a.row, a.col));
        for (auto& byte : res.data) byte = static_cast<std::uint8_t>(sm.next());
        return res;
      }
      const std::uint32_t group = geo_.bank_group_of(a.bank);
      if (at < r.last_col_in_group[group] + timing_.tCCD_L) res.violations |= kTccd;
      if (at < r.last_col_any + timing_.tCCD_S) res.violations |= kTccd;
      if (at < r.wr_data_end_in_group[group] + timing_.tWTR_L) res.violations |= kTwtr;
      if (at < r.last_wr_data_end_any + timing_.tWTR_S) res.violations |= kTwtr;
      if (at < r.ref_busy_until) res.violations |= kTrfc;
      if (at + timing_.tCL < bus_free_for(a.rank)) res.violations |= kBusConflict;

      const Picoseconds effective_trcd = at - b.act_time;
      if (effective_trcd < timing_.tRCD) res.violations |= kTrcd;
      res.data_reliable =
          effective_trcd >= variation_.line_min_trcd(fbank, a.row, a.col);
      if (!res.data_reliable) {
        // The sense amplifier latched a wrong value; it is both returned and
        // restored into the cells.
        corrupt_line(fbank, a.row, a.col, static_cast<std::uint64_t>(at.count));
      }
      const RowData* rd = row_data_if_present(fbank, a.row);
      if (rd != nullptr) {
        std::memcpy(res.data.data(), rd->data() + a.col * geo_.col_bytes, 64);
      } else {
        res.data.fill(0);
      }
      if (fault_model_ != nullptr) {
        fault_model_->apply_read(
            fault_context(a.rank, fbank, a.row, a.col, std::max(at, fault_clock_)),
            res.data);
      }

      b.last_rd = at;
      b.rd_data_end = at + timing_.read_data_latency();
      r.last_col_in_group[group] = at;
      r.last_col_any = at;
      data_bus_free_ = std::max(data_bus_free_, at + timing_.read_data_latency());
      last_bus_rank_ = a.rank;
      return res;
    }

    case Command::kWrite: {
      EASYDRAM_EXPECTS(a.bank < geo_.num_banks() && a.row < geo_.rows_per_bank &&
                       a.col < geo_.cols_per_row());
      EASYDRAM_EXPECTS(wdata.size() == 64);
      const std::uint32_t fbank = flat(a);
      BankState& b = banks_[fbank];
      RankState& r = ranks_[a.rank];
      if (!b.active || b.row != a.row) {
        res.violations |= kBankNotActive;
        return res;  // Write to a closed row is dropped.
      }
      const std::uint32_t group = geo_.bank_group_of(a.bank);
      if (at < r.last_col_in_group[group] + timing_.tCCD_L) res.violations |= kTccd;
      if (at < r.last_col_any + timing_.tCCD_S) res.violations |= kTccd;
      if (at - b.act_time < timing_.tRCD) res.violations |= kTrcd;
      if (at < r.ref_busy_until) res.violations |= kTrfc;
      if (at + timing_.tCWL < bus_free_for(a.rank)) res.violations |= kBusConflict;

      RowData& rd = row_data(fbank, a.row);
      std::memcpy(rd.data() + a.col * geo_.col_bytes, wdata.data(), 64);
      if (fault_model_ != nullptr) {
        fault_model_->on_write(fbank, a.row, a.col,
                               retention_epoch_of(a.rank, a.row));
      }

      b.last_wr = at;
      b.wr_data_end = at + timing_.write_data_latency();
      r.wr_data_end_in_group[group] = b.wr_data_end;
      r.last_wr_data_end_any = b.wr_data_end;
      r.last_col_in_group[group] = at;
      r.last_col_any = at;
      data_bus_free_ = std::max(data_bus_free_, b.wr_data_end);
      last_bus_rank_ = a.rank;
      return res;
    }

    case Command::kRef: {
      RankState& r = ranks_[a.rank];
      for (std::uint32_t bank = 0; bank < geo_.num_banks(); ++bank) {
        BankState& b = banks_[geo_.flat_bank(a.rank, bank)];
        if (b.active) res.violations |= kRefreshNotIdle;
        if (at < b.pre_time + timing_.tRP) res.violations |= kTrp;
        // Post-refresh bank state is explicit: the internal refresh takes
        // over every bank of the rank, so each one leaves the tRFC window
        // precharged regardless of what it held before (a REF issued over
        // an open row is still flagged above, but cannot leave the model
        // half-open). pre_time lands tRP before the window closes, so
        // earliest ACT == ref_busy_until exactly as without this clamp.
        b.active = false;
        b.early_pre_pending = false;
        b.pre_time = at + timing_.tRFC - timing_.tRP;
      }
      // The refresh's internal activations dominate any recent host ACTs
      // (tRFC >> tFAW): post-refresh tFAW accounting starts from a clean
      // window, so a mitigator-injected REF can never inherit stale
      // entries that mis-flag (or mis-delay) its follow-up activations.
      r.act_window.clear();
      if (at < r.ref_busy_until) res.violations |= kTrfc;
      r.ref_busy_until = at + timing_.tRFC;
      // The stripe this REF targets is set by the slot position (issued +
      // skipped), so a retention-aware policy skipping slots keeps the
      // round-robin aligned with what a real device's internal counter —
      // which advances per REF *opportunity* in the policy's schedule —
      // would target.
      if (hammer_tracking_) note_hammer_refresh(a.rank, r.refresh_slots);
      if (retention_tracking_) note_retention_refresh(a.rank, r.refresh_slots);
      ++r.refresh_slots;
      ++r.refreshes_issued;
      return res;
    }
  }
  return res;
}

void DramDevice::backdoor_write(const DramAddress& a,
                                std::span<const std::uint8_t> data) {
  EASYDRAM_EXPECTS(a.rank < ranks_.size() && a.bank < geo_.num_banks() &&
                   a.row < geo_.rows_per_bank && a.col < geo_.cols_per_row());
  EASYDRAM_EXPECTS(data.size() == 64);
  RowData& rd = row_data(flat(a), a.row);
  std::memcpy(rd.data() + a.col * geo_.col_bytes, data.data(), 64);
}

void DramDevice::backdoor_read(const DramAddress& a,
                               std::span<std::uint8_t> out) const {
  EASYDRAM_EXPECTS(a.rank < ranks_.size() && a.bank < geo_.num_banks() &&
                   a.row < geo_.rows_per_bank && a.col < geo_.cols_per_row());
  EASYDRAM_EXPECTS(out.size() == 64);
  const RowData* rd = row_data_if_present(flat(a), a.row);
  if (rd != nullptr) {
    std::memcpy(out.data(), rd->data() + a.col * geo_.col_bytes, 64);
  } else {
    std::fill(out.begin(), out.end(), std::uint8_t{0});
  }
}

void DramDevice::backdoor_write_row(std::uint32_t bank, std::uint32_t row,
                                    std::span<const std::uint8_t> data,
                                    std::uint32_t rank) {
  EASYDRAM_EXPECTS(rank < ranks_.size() && bank < geo_.num_banks() &&
                   row < geo_.rows_per_bank);
  EASYDRAM_EXPECTS(data.size() == geo_.row_bytes);
  RowData& rd = row_data(geo_.flat_bank(rank, bank), row);
  std::memcpy(rd.data(), data.data(), geo_.row_bytes);
}

std::int64_t DramDevice::commands_issued(Command c) const {
  return cmd_counts_[static_cast<std::size_t>(c)];
}

void DramDevice::install_fault_model(const FaultConfig& cfg) {
  fault_model_ = cfg.enabled ? std::make_unique<FaultModel>(geo_, cfg) : nullptr;
}

std::int64_t DramDevice::retention_epoch_of(std::uint32_t rank,
                                            std::uint32_t row) const {
  if (!retention_tracking_) return 0;
  const std::uint32_t stripe = geo_.refresh_stripe_of_row(row);
  if (stripe >= geo_.refresh_window_refs) return 0;
  return stripe_last_ref_slot_[rank * geo_.refresh_window_refs + stripe];
}

FaultReadContext DramDevice::fault_context(std::uint32_t rank,
                                           std::uint32_t fbank,
                                           std::uint32_t row, std::uint32_t col,
                                           Picoseconds at) const {
  FaultReadContext ctx;
  ctx.at = at;
  ctx.rank = rank;
  ctx.fbank = fbank;
  ctx.row = row;
  ctx.col = col;
  // Retention ground truth is filled only when both the device tracks
  // stripes and the model wants it (row_retention is a hashed field — not
  // free on a hot path that may never read it).
  if (retention_tracking_ && fault_model_ != nullptr &&
      fault_model_->config().retention_flips) {
    ctx.retention_valid = true;
    ctx.stripe_last_ref_slot = retention_epoch_of(rank, row);
    ctx.trefi = timing_.tREFI;
    ctx.row_retention = variation_.row_retention(fbank, row);
  }
  return ctx;
}

void DramDevice::scrub_read(const DramAddress& a, Picoseconds at,
                            std::span<std::uint8_t> out) {
  EASYDRAM_EXPECTS(a.rank < ranks_.size() && a.bank < geo_.num_banks() &&
                   a.row < geo_.rows_per_bank && a.col < geo_.cols_per_row());
  EASYDRAM_EXPECTS(out.size() == 64);
  backdoor_read(a, out);
  const std::uint32_t fbank = flat(a);
  if (fault_model_ != nullptr) {
    fault_model_->apply_read(fault_context(a.rank, fbank, a.row, a.col, at), out);
  }
}

void DramDevice::scrub_writeback(const DramAddress& a,
                                 std::span<const std::uint8_t> data) {
  EASYDRAM_EXPECTS(data.size() == 64);
  backdoor_write(a, data);
  if (fault_model_ != nullptr) {
    fault_model_->on_write(flat(a), a.row, a.col,
                           retention_epoch_of(a.rank, a.row));
  }
}

void DramDevice::set_hammer_tracking(bool on) {
  hammer_tracking_ = on;
  hammer_counts_.assign(on ? geo_.banks_per_channel() : 0, {});
  hammer_max_exposure_ = 0;
}

std::int64_t DramDevice::hammer_count(std::uint32_t bank, std::uint32_t row,
                                      std::uint32_t rank) const {
  EASYDRAM_EXPECTS(rank < ranks_.size() && bank < geo_.num_banks() &&
                   row < geo_.rows_per_bank);
  if (!hammer_tracking_) return 0;
  const auto& counts = hammer_counts_[geo_.flat_bank(rank, bank)];
  const auto it = counts.find(row);
  return it == counts.end() ? 0 : it->second;
}

void DramDevice::note_hammer_act(std::uint32_t fbank, std::uint32_t row) {
  auto& counts = hammer_counts_[fbank];
  // Opening a row fully restores its cells: the activated row stops being
  // a victim of its neighbors' earlier activity.
  counts.erase(row);
  const Geometry::NeighborRows n = geo_.neighbor_rows(row);
  for (std::uint32_t i = 0; i < n.count; ++i) {
    const std::int64_t c = ++counts[n.rows[i]];
    hammer_max_exposure_ = std::max(hammer_max_exposure_, c);
    if (fault_model_ != nullptr) fault_model_->on_hammer_act(fbank, n.rows[i], c);
  }
}

void DramDevice::note_hammer_refresh(std::uint32_t rank, std::int64_t ref_slot) {
  // REF slot n refreshes one refresh_stripe_rows() stripe of every bank in
  // the rank (round-robin over the retention window), so only runs long
  // enough to genuinely re-visit a row ever reset its victim counter this
  // way — short runs keep accumulating, exactly like real tREFW exposure.
  // Keyed by the *slot* (issued + skipped), so a skipping refresh policy
  // leaves exactly the skipped stripes' victims accumulating.
  const std::uint32_t stripe_rows = geo_.refresh_stripe_rows();
  const std::uint32_t first = geo_.refresh_stripe_of_slot(ref_slot) * stripe_rows;
  for (std::uint32_t bank = 0; bank < geo_.num_banks(); ++bank) {
    auto& counts = hammer_counts_[geo_.flat_bank(rank, bank)];
    for (std::uint32_t row = first;
         row < std::min(first + stripe_rows, geo_.rows_per_bank); ++row) {
      counts.erase(row);
    }
  }
}

void DramDevice::set_retention_tracking(bool on) {
  retention_tracking_ = on;
  const std::size_t slots =
      on ? static_cast<std::size_t>(ranks_.size()) * geo_.refresh_window_refs
         : 0;
  stripe_last_ref_slot_.assign(slots, 0);
  for (std::size_t i = 0; i < slots; ++i) {
    // Power-on: stripe s counts as last refreshed at virtual slot
    // s - window, i.e. exactly one full round before its first slot, so
    // an undisturbed all-rows schedule measures gap == one window.
    const auto stripe = static_cast<std::int64_t>(i % geo_.refresh_window_refs);
    stripe_last_ref_slot_[i] = stripe - geo_.refresh_window_refs;
  }
  stripe_min_retention_.assign(slots, -1);
  retention_violations_ = 0;
  retention_overshoot_ = Picoseconds{};
}

Picoseconds DramDevice::stripe_min_retention(std::uint32_t rank,
                                             std::uint32_t stripe) const {
  EASYDRAM_EXPECTS(retention_tracking_ && rank < ranks_.size() &&
                   stripe < geo_.refresh_window_refs);
  const std::size_t idx = rank * geo_.refresh_window_refs + stripe;
  if (stripe_min_retention_[idx] >= 0) {
    return Picoseconds{stripe_min_retention_[idx]};
  }
  const std::uint32_t stripe_rows = geo_.refresh_stripe_rows();
  const std::uint32_t first = stripe * stripe_rows;
  const std::uint32_t last = std::min(first + stripe_rows, geo_.rows_per_bank);
  std::int64_t min_ps = std::numeric_limits<std::int64_t>::max();
  for (std::uint32_t bank = 0; bank < geo_.num_banks(); ++bank) {
    const std::uint32_t fbank = geo_.flat_bank(rank, bank);
    for (std::uint32_t row = first; row < last; ++row) {
      min_ps = std::min(min_ps, variation_.row_retention(fbank, row).count);
    }
  }
  stripe_min_retention_[idx] = min_ps;
  return Picoseconds{min_ps};
}

void DramDevice::note_retention_refresh(std::uint32_t rank, std::int64_t ref_slot) {
  const std::uint32_t stripe = geo_.refresh_stripe_of_slot(ref_slot);
  const std::size_t idx = rank * geo_.refresh_window_refs + stripe;
  const std::int64_t gap_slots = ref_slot - stripe_last_ref_slot_[idx];
  stripe_last_ref_slot_[idx] = ref_slot;
  const Picoseconds gap{gap_slots * timing_.tREFI.count};
  const Picoseconds min_ret = stripe_min_retention(rank, stripe);
  if (gap > min_ret) {
    ++retention_violations_;
    retention_overshoot_ = std::max(retention_overshoot_, gap - min_ret);
  }
}

}  // namespace easydram::dram
