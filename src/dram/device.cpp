#include "dram/device.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/rng.hpp"

namespace easydram::dram {

namespace {

constexpr Picoseconds kNegInf{std::numeric_limits<std::int64_t>::min() / 4};

/// ACT->PRE gaps below this fraction of tRAS count as an "early precharge",
/// the first half of the FPM RowClone ACT->PRE->ACT pattern. Real chips need
/// the gap to be a handful of tCK; half of tRAS separates that cleanly from
/// legal operation.
constexpr double kRowClonePreFraction = 0.5;
/// PRE->ACT gaps below this fraction of tRP complete the RowClone pattern.
constexpr double kRowCloneActFraction = 0.5;

Picoseconds max_ps(std::initializer_list<Picoseconds> xs) {
  Picoseconds m = kNegInf;
  for (Picoseconds x : xs) m = std::max(m, x);
  return m;
}

}  // namespace

std::string_view to_string(Command c) {
  switch (c) {
    case Command::kAct: return "ACT";
    case Command::kPre: return "PRE";
    case Command::kPreAll: return "PREA";
    case Command::kRead: return "RD";
    case Command::kWrite: return "WR";
    case Command::kRef: return "REF";
    case Command::kNop: return "NOP";
  }
  return "?";
}

DramDevice::DramDevice(const Geometry& geo, const TimingParams& timing,
                       const VariationConfig& variation)
    : geo_(geo),
      timing_(timing),
      variation_(geo, variation),
      banks_(geo.num_banks()),
      store_(geo.num_banks()),
      last_act_in_group_(geo.bank_groups, kNegInf),
      last_act_any_(kNegInf),
      last_col_in_group_(geo.bank_groups, kNegInf),
      last_col_any_(kNegInf),
      last_wr_data_end_any_(kNegInf),
      wr_data_end_in_group_(geo.bank_groups, kNegInf),
      data_bus_free_(kNegInf),
      ref_busy_until_(kNegInf),
      now_(Picoseconds{0}) {
  for (auto& b : banks_) {
    b.act_time = b.pre_time = b.last_rd = b.last_wr = kNegInf;
    b.wr_data_end = b.rd_data_end = b.early_pre_at = kNegInf;
  }
}

DramDevice::RowData& DramDevice::row_data(std::uint32_t bank, std::uint32_t row) {
  auto& bank_store = store_[bank];
  if (bank_store.empty()) bank_store.resize(geo_.rows_per_bank);
  auto& slot = bank_store[row];
  if (!slot) {
    slot = std::make_unique<RowData>();
    slot->fill(0);
  }
  return *slot;
}

const DramDevice::RowData* DramDevice::row_data_if_present(std::uint32_t bank,
                                                           std::uint32_t row) const {
  const auto& bank_store = store_[bank];
  if (bank_store.empty() || !bank_store[row]) return nullptr;
  return bank_store[row].get();
}

void DramDevice::corrupt_line(std::uint32_t bank, std::uint32_t row,
                              std::uint32_t col, std::uint64_t salt) {
  RowData& rd = row_data(bank, row);
  SplitMix64 sm(hash_mix(variation_.config().seed ^ 0xBADBADBAD, bank, row,
                         (static_cast<std::uint64_t>(col) << 32) | salt));
  // Flip a deterministic set of bits across the 64-byte line. Weak-tRCD
  // failures in real chips flip a few bits per line; eight flips is enough
  // for any data-comparison test to detect the failure reliably.
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t r = sm.next();
    const std::uint32_t byte = col * geo_.col_bytes + static_cast<std::uint32_t>(r % 64);
    rd[byte] ^= static_cast<std::uint8_t>(1u << ((r >> 8) % 8));
  }
}

void DramDevice::corrupt_row(std::uint32_t bank, std::uint32_t row, std::uint64_t salt) {
  for (std::uint32_t col = 0; col < geo_.cols_per_row(); ++col) {
    corrupt_line(bank, row, col, salt ^ 0x517EC10E);
  }
}

Picoseconds DramDevice::earliest_act(std::uint32_t bank) const {
  const BankState& b = banks_[bank];
  Picoseconds t = max_ps({b.pre_time + timing_.tRP, b.act_time + timing_.tRC,
                          last_act_in_group_[geo_.bank_group_of(bank)] + timing_.tRRD_L,
                          last_act_any_ + timing_.tRRD_S, ref_busy_until_});
  if (act_window_.size() >= 4) t = std::max(t, act_window_.front() + timing_.tFAW);
  return std::max(t, now_);
}

Picoseconds DramDevice::earliest_rdwr(std::uint32_t bank, bool is_write) const {
  const BankState& b = banks_[bank];
  const std::uint32_t group = geo_.bank_group_of(bank);
  Picoseconds t = max_ps({b.act_time + timing_.tRCD,
                          last_col_in_group_[group] + timing_.tCCD_L,
                          last_col_any_ + timing_.tCCD_S});
  if (!is_write) {
    t = max_ps({t, wr_data_end_in_group_[group] + timing_.tWTR_L,
                last_wr_data_end_any_ + timing_.tWTR_S,
                data_bus_free_ - timing_.tCL});
  } else {
    t = std::max(t, data_bus_free_ - timing_.tCWL);
  }
  return std::max(t, now_);
}

Picoseconds DramDevice::earliest_pre(std::uint32_t bank) const {
  const BankState& b = banks_[bank];
  return std::max(max_ps({b.act_time + timing_.tRAS, b.last_rd + timing_.tRTP,
                          b.wr_data_end + timing_.tWR}),
                  now_);
}

Picoseconds DramDevice::earliest_legal(Command c, const DramAddress& a) const {
  switch (c) {
    case Command::kAct:
      return earliest_act(a.bank);
    case Command::kRead:
      return earliest_rdwr(a.bank, /*is_write=*/false);
    case Command::kWrite:
      return earliest_rdwr(a.bank, /*is_write=*/true);
    case Command::kPre:
      return earliest_pre(a.bank);
    case Command::kPreAll: {
      Picoseconds t = now_;
      for (std::uint32_t bank = 0; bank < geo_.num_banks(); ++bank) {
        if (banks_[bank].active) t = std::max(t, earliest_pre(bank));
      }
      return t;
    }
    case Command::kRef: {
      Picoseconds t = std::max(now_, ref_busy_until_);
      for (const BankState& b : banks_) t = std::max(t, b.pre_time + timing_.tRP);
      return t;
    }
    case Command::kNop:
      return now_;
  }
  return now_;
}

std::optional<std::uint32_t> DramDevice::open_row(std::uint32_t bank) const {
  EASYDRAM_EXPECTS(bank < banks_.size());
  if (!banks_[bank].active) return std::nullopt;
  return banks_[bank].row;
}

std::int64_t DramDevice::refreshes_due(Picoseconds at) const {
  return at.count / timing_.tREFI.count;
}

IssueResult DramDevice::issue(Command c, const DramAddress& a, Picoseconds at,
                              std::span<const std::uint8_t> wdata) {
  EASYDRAM_EXPECTS(at >= now_);
  IssueResult res;
  now_ = at;
  ++cmd_counts_[static_cast<std::size_t>(c)];

  switch (c) {
    case Command::kNop:
      return res;

    case Command::kAct: {
      EASYDRAM_EXPECTS(a.bank < geo_.num_banks() && a.row < geo_.rows_per_bank);
      BankState& b = banks_[a.bank];
      if (b.active) res.violations |= kBankNotIdle;
      if (at < b.pre_time + timing_.tRP) res.violations |= kTrp;
      if (at < b.act_time + timing_.tRC) res.violations |= kTrc;
      const std::uint32_t group = geo_.bank_group_of(a.bank);
      if (at < last_act_in_group_[group] + timing_.tRRD_L) res.violations |= kTrrd;
      if (at < last_act_any_ + timing_.tRRD_S) res.violations |= kTrrd;
      if (act_window_.size() >= 4 && at < act_window_.front() + timing_.tFAW) {
        res.violations |= kTfaw;
      }
      if (at < ref_busy_until_) res.violations |= kTrfc;

      // RowClone: this ACT completes ACT(src) -> early PRE -> early ACT(dst).
      if (b.early_pre_pending) {
        const Picoseconds gap = at - b.early_pre_at;
        const auto threshold = Picoseconds{static_cast<std::int64_t>(
            kRowCloneActFraction * static_cast<double>(timing_.tRP.count))};
        if (gap < threshold) {
          res.rowclone_attempted = true;
          const std::uint32_t src = b.early_pre_row;
          const std::uint32_t dst = a.row;
          res.rowclone_success = variation_.rowclone_pair_ok(a.bank, src, dst);
          if (res.rowclone_success) {
            if (src != dst) {
              const RowData* src_data = row_data_if_present(a.bank, src);
              RowData& dst_data = row_data(a.bank, dst);
              if (src_data != nullptr) {
                dst_data = *src_data;
              } else {
                dst_data.fill(0);
              }
            }
          } else {
            corrupt_row(a.bank, dst, static_cast<std::uint64_t>(at.count));
          }
        }
        b.early_pre_pending = false;
      }

      b.active = true;
      b.row = a.row;
      b.act_time = at;
      b.last_rd = b.last_wr = kNegInf;
      b.wr_data_end = b.rd_data_end = kNegInf;
      last_act_in_group_[group] = at;
      last_act_any_ = at;
      act_window_.push_back(at);
      while (act_window_.size() > 4) act_window_.pop_front();
      return res;
    }

    case Command::kPre: {
      EASYDRAM_EXPECTS(a.bank < geo_.num_banks());
      BankState& b = banks_[a.bank];
      if (!b.active) {
        res.violations |= kBankNotActive;
        return res;
      }
      if (at < b.act_time + timing_.tRAS) res.violations |= kTras;
      if (at < b.last_rd + timing_.tRTP) res.violations |= kTrtp;
      if (at < b.wr_data_end + timing_.tWR) res.violations |= kTwr;

      const Picoseconds act_to_pre = at - b.act_time;
      const auto early_threshold = Picoseconds{static_cast<std::int64_t>(
          kRowClonePreFraction * static_cast<double>(timing_.tRAS.count))};
      if (act_to_pre < early_threshold) {
        b.early_pre_pending = true;
        b.early_pre_row = b.row;
        b.early_pre_at = at;
      } else {
        b.early_pre_pending = false;
      }
      b.active = false;
      b.pre_time = at;
      return res;
    }

    case Command::kPreAll: {
      for (std::uint32_t bank = 0; bank < geo_.num_banks(); ++bank) {
        BankState& b = banks_[bank];
        if (!b.active) continue;
        if (at < b.act_time + timing_.tRAS) res.violations |= kTras;
        if (at < b.last_rd + timing_.tRTP) res.violations |= kTrtp;
        if (at < b.wr_data_end + timing_.tWR) res.violations |= kTwr;
        b.active = false;
        b.pre_time = at;
        b.early_pre_pending = false;
      }
      return res;
    }

    case Command::kRead: {
      EASYDRAM_EXPECTS(geo_.contains(a));
      BankState& b = banks_[a.bank];
      res.has_data = true;
      if (!b.active || b.row != a.row) {
        // Reading a closed (or different) row returns garbage.
        res.violations |= kBankNotActive;
        res.data_reliable = false;
        SplitMix64 sm(hash_mix(0xDEAD, a.bank, a.row, a.col));
        for (auto& byte : res.data) byte = static_cast<std::uint8_t>(sm.next());
        return res;
      }
      const std::uint32_t group = geo_.bank_group_of(a.bank);
      if (at < last_col_in_group_[group] + timing_.tCCD_L) res.violations |= kTccd;
      if (at < last_col_any_ + timing_.tCCD_S) res.violations |= kTccd;
      if (at < wr_data_end_in_group_[group] + timing_.tWTR_L) res.violations |= kTwtr;
      if (at < last_wr_data_end_any_ + timing_.tWTR_S) res.violations |= kTwtr;
      if (at + timing_.tCL < data_bus_free_) res.violations |= kBusConflict;

      const Picoseconds effective_trcd = at - b.act_time;
      if (effective_trcd < timing_.tRCD) res.violations |= kTrcd;
      res.data_reliable =
          effective_trcd >= variation_.line_min_trcd(a.bank, a.row, a.col);
      if (!res.data_reliable) {
        // The sense amplifier latched a wrong value; it is both returned and
        // restored into the cells.
        corrupt_line(a.bank, a.row, a.col, static_cast<std::uint64_t>(at.count));
      }
      const RowData* rd = row_data_if_present(a.bank, a.row);
      if (rd != nullptr) {
        std::memcpy(res.data.data(), rd->data() + a.col * geo_.col_bytes, 64);
      } else {
        res.data.fill(0);
      }

      b.last_rd = at;
      b.rd_data_end = at + timing_.read_data_latency();
      last_col_in_group_[group] = at;
      last_col_any_ = at;
      data_bus_free_ = std::max(data_bus_free_, at + timing_.read_data_latency());
      return res;
    }

    case Command::kWrite: {
      EASYDRAM_EXPECTS(geo_.contains(a));
      EASYDRAM_EXPECTS(wdata.size() == 64);
      BankState& b = banks_[a.bank];
      if (!b.active || b.row != a.row) {
        res.violations |= kBankNotActive;
        return res;  // Write to a closed row is dropped.
      }
      const std::uint32_t group = geo_.bank_group_of(a.bank);
      if (at < last_col_in_group_[group] + timing_.tCCD_L) res.violations |= kTccd;
      if (at < last_col_any_ + timing_.tCCD_S) res.violations |= kTccd;
      if (at - b.act_time < timing_.tRCD) res.violations |= kTrcd;
      if (at + timing_.tCWL < data_bus_free_) res.violations |= kBusConflict;

      RowData& rd = row_data(a.bank, a.row);
      std::memcpy(rd.data() + a.col * geo_.col_bytes, wdata.data(), 64);

      b.last_wr = at;
      b.wr_data_end = at + timing_.write_data_latency();
      wr_data_end_in_group_[group] = b.wr_data_end;
      last_wr_data_end_any_ = b.wr_data_end;
      last_col_in_group_[group] = at;
      last_col_any_ = at;
      data_bus_free_ = std::max(data_bus_free_, b.wr_data_end);
      return res;
    }

    case Command::kRef: {
      for (const BankState& b : banks_) {
        if (b.active) res.violations |= kRefreshNotIdle;
        if (at < b.pre_time + timing_.tRP) res.violations |= kTrp;
      }
      if (at < ref_busy_until_) res.violations |= kTrfc;
      ref_busy_until_ = at + timing_.tRFC;
      ++refreshes_issued_;
      return res;
    }
  }
  return res;
}

void DramDevice::backdoor_write(const DramAddress& a,
                                std::span<const std::uint8_t> data) {
  EASYDRAM_EXPECTS(geo_.contains(a));
  EASYDRAM_EXPECTS(data.size() == 64);
  RowData& rd = row_data(a.bank, a.row);
  std::memcpy(rd.data() + a.col * geo_.col_bytes, data.data(), 64);
}

void DramDevice::backdoor_read(const DramAddress& a,
                               std::span<std::uint8_t> out) const {
  EASYDRAM_EXPECTS(geo_.contains(a));
  EASYDRAM_EXPECTS(out.size() == 64);
  const RowData* rd = row_data_if_present(a.bank, a.row);
  if (rd != nullptr) {
    std::memcpy(out.data(), rd->data() + a.col * geo_.col_bytes, 64);
  } else {
    std::fill(out.begin(), out.end(), std::uint8_t{0});
  }
}

void DramDevice::backdoor_write_row(std::uint32_t bank, std::uint32_t row,
                                    std::span<const std::uint8_t> data) {
  EASYDRAM_EXPECTS(bank < geo_.num_banks() && row < geo_.rows_per_bank);
  EASYDRAM_EXPECTS(data.size() == geo_.row_bytes);
  RowData& rd = row_data(bank, row);
  std::memcpy(rd.data(), data.data(), geo_.row_bytes);
}

std::int64_t DramDevice::commands_issued(Command c) const {
  return cmd_counts_[static_cast<std::size_t>(c)];
}

}  // namespace easydram::dram
