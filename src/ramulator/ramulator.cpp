#include "ramulator/ramulator.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace easydram::ramulator {

namespace {
constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
}

RamulatorSim::RamulatorSim(const RamulatorConfig& cfg)
    : cfg_(cfg), banks_(cfg.geometry.num_banks()) {
  next_ref_ = cfg_.timing.tREFI;
}

dram::DramAddress RamulatorSim::map(std::uint64_t paddr) const {
  const auto& geo = cfg_.geometry;
  const std::uint64_t line = (paddr / 64) % (geo.capacity_bytes() / 64);
  dram::DramAddress a;
  a.bank = static_cast<std::uint32_t>(line % geo.num_banks());
  const std::uint64_t upper = line / geo.num_banks();
  a.col = static_cast<std::uint32_t>(upper % geo.cols_per_row());
  a.row = static_cast<std::uint32_t>((upper / geo.cols_per_row()) % geo.rows_per_bank);
  return a;
}

std::size_t RamulatorSim::pick_frfcfs(const std::vector<MemRequest>& queue) const {
  std::size_t oldest = kNpos;
  std::size_t oldest_hit = kNpos;
  for (std::size_t i = 0; i < queue.size(); ++i) {
    const MemRequest& r = queue[i];
    if (oldest == kNpos || r.seq < queue[oldest].seq) oldest = i;
    const BankState& b = banks_[r.addr.bank];
    const bool hit = !r.is_rowclone && b.open && b.row == r.addr.row;
    if (hit && (oldest_hit == kNpos || r.seq < queue[oldest_hit].seq)) oldest_hit = i;
  }
  return oldest_hit != kNpos ? oldest_hit : oldest;
}

bool RamulatorSim::try_advance_request(MemRequest& req, Picoseconds now, bool& done,
                                       Picoseconds& block_until) {
  const dram::TimingParams& t = cfg_.timing;
  BankState& b = banks_[req.addr.bank];
  done = false;

  if (req.is_rowclone) {
    if (b.open) {
      if (now < b.pre_ok) {
        block_until = b.pre_ok;
        return false;
      }
      b.open = false;
      b.act_ok = std::max(b.act_ok, now + t.tRP);
      return true;
    }
    if (now < b.act_ok || now < rank_busy_until_) {
      block_until = std::max(b.act_ok, rank_busy_until_);
      return false;
    }
    // Idealized in-DRAM copy: ACT->PRE->ACT plus full restore + precharge.
    const Picoseconds finish = now + t.tCK * 2 + t.tRAS + t.tRP;
    b.act_ok = std::max(b.act_ok, finish);
    push_completion(finish + cfg_.rowclone_overhead, req.id);
    ++stats_.rowclones;
    done = true;
    return true;
  }

  if (b.open && b.row == req.addr.row) {
    if (now < b.col_ok) {
      block_until = b.col_ok;
      return false;
    }
    const Picoseconds lead = req.is_write ? t.tCWL : t.tCL;
    if (now + lead < bus_free_) {
      block_until = bus_free_ - lead;
      return false;
    }
    const Picoseconds data_end = now + lead + t.tBL;
    bus_free_ = data_end;
    b.col_ok = now + t.tCCD_L;
    b.pre_ok = std::max(b.pre_ok, req.is_write ? data_end + t.tWR : now + t.tRTP);
    if (!req.is_write) push_completion(data_end, req.id);
    ++stats_.row_hits;
    done = true;
    return true;
  }

  if (b.open) {
    if (now < b.pre_ok) {
      block_until = b.pre_ok;
      return false;
    }
    b.open = false;
    b.act_ok = std::max(b.act_ok, now + t.tRP);
    return true;
  }

  // Closed bank: activate.
  if (now < b.act_ok || now < rank_busy_until_) {
    block_until = std::max(b.act_ok, rank_busy_until_);
    return false;
  }
  if (act_window_.size() >= 4 && now < act_window_.front() + t.tFAW) {
    block_until = act_window_.front() + t.tFAW;
    return false;
  }
  if (!act_window_.empty() && now < act_window_.back() + t.tRRD_S) {
    block_until = act_window_.back() + t.tRRD_S;
    return false;
  }
  b.open = true;
  b.row = req.addr.row;
  const Picoseconds trcd =
      cfg_.trcd_of ? cfg_.trcd_of(req.addr.bank, req.addr.row) : t.tRCD;
  b.col_ok = now + trcd;
  b.pre_ok = now + t.tRAS;
  b.act_ok = now + t.tRC;
  act_window_.push_back(now);
  while (act_window_.size() > 4) act_window_.erase(act_window_.begin());
  ++stats_.row_misses;
  return true;
}

bool RamulatorSim::issue_one_command(Picoseconds now) {
  // Event-driven short circuit: a failed attempt records when its first
  // blocking condition clears; until then (and absent invalidating
  // events) re-attempting is provably futile.
  if (issue_retry_valid_ && now < issue_retry_at_) return false;
  issue_retry_valid_ = false;

  const dram::TimingParams& t = cfg_.timing;
  if (now < last_cmd_ + t.tCK) return fail_until(last_cmd_ + t.tCK);

  // Refresh has priority when due: close banks, then refresh the rank.
  // While `now >= next_ref_` holds, this branch is taken on every attempt,
  // so its blocking time alone bounds the retry.
  if (now >= next_ref_) {
    for (BankState& b : banks_) {
      if (!b.open) continue;
      if (now < b.pre_ok) return fail_until(b.pre_ok);
      b.open = false;
      b.act_ok = std::max(b.act_ok, now + t.tRP);
      last_cmd_ = now;
      invalidate_issue_cache();
      return true;
    }
    if (now < rank_busy_until_) return fail_until(rank_busy_until_);
    rank_busy_until_ = now + t.tRFC;
    next_ref_ += t.tREFI;
    last_cmd_ = now;
    invalidate_issue_cache();
    return true;
  }

  // Write drain when reads are absent or writes pile up.
  const bool drain_writes =
      read_queue_.empty() || write_queue_.size() >= cfg_.write_queue_depth - 4;
  auto& queue = drain_writes && !write_queue_.empty() ? write_queue_ : read_queue_;
  if (queue.empty()) return fail_until(next_ref_);

  // The FR-FCFS pick only depends on queue contents and bank open-row
  // state, both invariant since the last issued command / enqueue — reuse
  // the memoized pick on the (dominant) cycles where nothing could issue.
  const bool picking_writes = &queue == &write_queue_;
  if (cached_pick_ == kNpos || cached_pick_write_ != picking_writes) {
    cached_pick_ = pick_frfcfs(queue);
    cached_pick_write_ = picking_writes;
  }
  const std::size_t pick = cached_pick_;
  EASYDRAM_ENSURES(pick != kNpos);
  bool done = false;
  Picoseconds block_until{};
  if (!try_advance_request(queue[pick], now, done, block_until)) {
    // The pick unblocks at block_until; a refresh becoming due preempts it.
    return fail_until(std::min(block_until, next_ref_));
  }
  invalidate_issue_cache();
  if (done) queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(pick));
  last_cmd_ = now;
  return true;
}

void RamulatorSim::tick_memory(Picoseconds now) {
  // One command slot per DRAM cycle; a CPU tick is shorter than tCK, so a
  // single attempt per CPU tick saturates the command bus.
  issue_one_command(now);
}

RamStats RamulatorSim::run(cpu::TraceSource& trace) {
  stats_ = RamStats{};
  cpu::Cache llc(cfg_.llc);

  std::int64_t cycle = 0;
  std::uint64_t next_id = 1;
  // Outstanding reads/rowclones/profiles; each gets exactly one
  // completion, and stall_on_id is zeroed when its completion is
  // harvested, so a count replaces the old per-request unordered_set.
  std::size_t inflight = 0;
  std::int64_t stall_until = 0;
  std::uint64_t stall_on_id = 0;

  cpu::TraceRecord rec;
  bool have_rec = false;
  std::uint32_t gap_left = 0;
  bool trace_done = false;

  const auto enqueue_read = [&, this](const dram::DramAddress& a) {
    MemRequest r;
    r.id = next_id++;
    r.addr = a;
    r.seq = seq_++;
    read_queue_.push_back(r);
    invalidate_issue_cache();
    ++inflight;
    ++stats_.mem_reads;
    return r.id;
  };
  const auto enqueue_write = [&, this](const dram::DramAddress& a) {
    MemRequest r;
    r.id = next_id++;
    r.addr = a;
    r.is_write = true;
    r.seq = seq_++;
    write_queue_.push_back(r);
    invalidate_issue_cache();
    ++stats_.mem_writes;
  };

  // Exact incremental form of cpu_clock.cycles_to_ps(cycle): with
  // t(c) = floor((c * 1e12 + hz/2) / hz), consecutive values differ by
  // step_q or step_q + 1 depending on the running remainder — no 128-bit
  // multiply/divide per simulated cycle.
  const std::int64_t hz = cfg_.cpu_clock.hertz;
  EASYDRAM_EXPECTS(hz > 0);
  const std::int64_t step_q = 1'000'000'000'000 / hz;
  const std::int64_t step_r = 1'000'000'000'000 % hz;
  std::int64_t now_ps = 0;
  std::int64_t now_rem = hz / 2;

  int idle_guard = 0;
  while (true) {
    const Picoseconds now{now_ps};
    tick_memory(now);

    // Harvest ready completions (skipped until the earliest can be due).
    if (!completions_.empty() && earliest_completion_ <= now) {
      Picoseconds earliest{kNever};
      for (std::size_t i = 0; i < completions_.size();) {
        if (completions_[i].first <= now) {
          --inflight;
          if (stall_on_id == completions_[i].second) stall_on_id = 0;
          completions_[i] = completions_.back();
          completions_.pop_back();
        } else {
          if (completions_[i].first < earliest) earliest = completions_[i].first;
          ++i;
        }
      }
      earliest_completion_ = earliest;
    }

    bool progressed = false;
    // True when the retire stage is blocked on something only a *memory
    // event* can clear (full queue / MSHRs, a drain, or trace exhaustion)
    // — as opposed to a stall_until deadline, which expires with time.
    bool resource_blocked = false;
    std::uint32_t budget = cfg_.retire_width;
    while (budget > 0) {
      if (cycle < stall_until) break;
      if (stall_on_id != 0) break;

      if (!have_rec) {
        if (trace_done || stats_.instructions >= cfg_.max_instructions) {
          trace_done = true;
          resource_blocked = true;
          break;
        }
        have_rec = trace.next(rec, /*last_rowclone_ok=*/true);
        if (!have_rec) {
          trace_done = true;
          resource_blocked = true;
          break;
        }
        gap_left = rec.gap_instructions;
      }

      if (gap_left > 0) {
        const std::uint32_t spend = std::min(budget, gap_left);
        gap_left -= spend;
        budget -= spend;
        stats_.instructions += spend;
        progressed = true;
        continue;
      }

      const std::uint64_t line = rec.addr & ~std::uint64_t{63};
      bool consumed = true;
      switch (rec.op) {
        case cpu::Op::kLoad:
        case cpu::Op::kLoadDependent: {
          ++stats_.loads;
          if (llc.access(line)) {
            if (rec.op == cpu::Op::kLoadDependent) stall_until = cycle + cfg_.llc_latency;
            break;
          }
          ++stats_.llc_misses;
          if (inflight >= cfg_.mshrs ||
              read_queue_.size() >= cfg_.read_queue_depth ||
              write_queue_.size() >= cfg_.write_queue_depth) {
            --stats_.loads;
            --stats_.llc_misses;
            consumed = false;
            break;
          }
          const cpu::FillResult fill = llc.fill(line);
          if (fill.evicted && fill.evicted_dirty) enqueue_write(map(fill.evicted_line));
          const std::uint64_t id = enqueue_read(map(line));
          if (rec.op == cpu::Op::kLoadDependent) stall_on_id = id;
          break;
        }

        case cpu::Op::kStoreStream:  // The simple core has no streaming mode.
        case cpu::Op::kStore: {
          ++stats_.stores;
          if (llc.access(line)) {
            llc.mark_dirty(line);
            break;
          }
          ++stats_.llc_misses;
          if (inflight >= cfg_.mshrs ||
              read_queue_.size() >= cfg_.read_queue_depth ||
              write_queue_.size() >= cfg_.write_queue_depth) {
            --stats_.stores;
            --stats_.llc_misses;
            consumed = false;
            break;
          }
          const cpu::FillResult fill = llc.fill(line);
          if (fill.evicted && fill.evicted_dirty) enqueue_write(map(fill.evicted_line));
          enqueue_read(map(line));  // RFO, non-blocking.
          llc.mark_dirty(line);
          break;
        }

        case cpu::Op::kFlush: {
          if (write_queue_.size() >= cfg_.write_queue_depth) {
            consumed = false;
            break;
          }
          const cpu::Cache::FlushResult f = llc.flush(line);
          if (f.was_dirty) enqueue_write(map(line));
          break;
        }

        case cpu::Op::kRowClone: {
          if (read_queue_.size() >= cfg_.read_queue_depth) {
            consumed = false;
            break;
          }
          MemRequest r;
          r.id = next_id++;
          r.addr = map(rec.addr2 & ~std::uint64_t{63});
          r.is_rowclone = true;
          r.seq = seq_++;
          read_queue_.push_back(r);
          invalidate_issue_cache();
          ++inflight;
          stall_on_id = r.id;
          break;
        }

        case cpu::Op::kProfile: {
          // Served as a nominal read in the baseline.
          if (inflight >= cfg_.mshrs ||
              read_queue_.size() >= cfg_.read_queue_depth) {
            consumed = false;
            break;
          }
          stall_on_id = enqueue_read(map(line));
          break;
        }

        case cpu::Op::kDrain: {
          if (inflight != 0 || !write_queue_.empty()) {
            consumed = false;
            break;
          }
          break;
        }

        case cpu::Op::kMarker:
          if (inflight != 0 || !write_queue_.empty()) {
            consumed = false;
            break;
          }
          stats_.markers.push_back(cycle);
          break;
      }

      if (!consumed) {
        resource_blocked = true;
        break;
      }
      ++stats_.instructions;
      --budget;
      have_rec = false;
      progressed = true;
    }

    ++cycle;
    now_ps += step_q;
    now_rem += step_r;
    if (now_rem >= hz) {
      now_rem -= hz;
      ++now_ps;
    }

    const auto run_finished = [&] {
      const bool memory_idle = inflight == 0 && read_queue_.empty() &&
                               write_queue_.empty() && completions_.empty();
      return trace_done && !have_rec && memory_idle && stall_on_id == 0 &&
             cycle >= stall_until;
    };
    if (run_finished()) break;

    // Fast-forward across provably inert stretches. When this cycle
    // retired nothing, the run is not finished (checked above), the
    // retire stage is still blocked *at the incremented cycle* (a
    // stall_until deadline may have just expired — then no skip), and the
    // memory side is blocked with a known retry horizon, every cycle
    // until the earliest of {issue retry, completion, stall release} is a
    // no-op: the retire stage can only be unblocked by one of those
    // events (stall_until elapsing, a completion clearing stall_on_id /
    // MSHRs / drains, or a command issuing to free queue space). Lands on
    // exactly the first cycle where an event can fire — and the finished
    // check re-runs there before the next body executes — so the
    // simulated timeline is bit-identical to single-stepping.
    if (!progressed && issue_retry_valid_ &&
        (stall_on_id != 0 || cycle < stall_until || resource_blocked)) {
      const auto first_cycle_at = [this](Picoseconds x) {
        std::int64_t c = cfg_.cpu_clock.ps_to_cycles_floor(x);
        while (cfg_.cpu_clock.cycles_to_ps(c) < x) ++c;
        while (c > 0 && cfg_.cpu_clock.cycles_to_ps(c - 1) >= x) --c;
        return c;
      };
      std::int64_t target = first_cycle_at(issue_retry_at_);
      if (!completions_.empty()) {
        target = std::min(target, first_cycle_at(earliest_completion_));
      }
      if (cycle < stall_until) target = std::min(target, stall_until);
      if (target > cycle) {
        cycle = target;
        now_ps = cfg_.cpu_clock.cycles_to_ps(cycle).count;
        const __int128 num =
            static_cast<__int128>(cycle) * 1'000'000'000'000 + hz / 2;
        now_rem = static_cast<std::int64_t>(num % hz);
        // A stall_until-bounded skip can land exactly on the finish line;
        // single-stepping would break here without running another body.
        if (run_finished()) break;
      }
    }

    // Livelock guard: tolerate long stalls (memory latency, drains) but
    // abort if nothing moves for an implausible stretch.
    if (progressed || !completions_.empty()) {
      idle_guard = 0;
    } else {
      EASYDRAM_EXPECTS(++idle_guard < 10'000'000);
    }
  }

  stats_.cycles = cycle;
  return stats_;
}

}  // namespace easydram::ramulator
