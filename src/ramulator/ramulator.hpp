#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/units.hpp"
#include "cpu/cache.hpp"
#include "cpu/trace.hpp"
#include "dram/geometry.hpp"
#include "dram/timing.hpp"

namespace easydram::ramulator {

/// Configuration of the Ramulator-2.0-like baseline simulator.
///
/// The paper compares EasyDRAM against Ramulator 2.0 configured with "a
/// simple out-of-order core and a last-level cache" (footnote 5). This
/// module reimplements that setup from scratch as a cycle-stepped,
/// trace-driven simulator with its own DDR4 command-level memory
/// controller. Deliberate modelling gaps match the paper's description of
/// Ramulator: RowClone operations are idealized (every pair succeeds, no
/// software-controller overhead) and the core model differs from
/// EasyDRAM's (footnote 6 and §7.2 observation 5).
struct RamulatorConfig {
  Frequency cpu_clock{3'200'000'000};
  std::uint32_t retire_width = 4;
  std::uint32_t mshrs = 8;
  cpu::CacheConfig llc{512 * 1024, 8, 64};
  std::int64_t llc_latency = 20;  ///< CPU cycles, dependent-load exposure.

  dram::Geometry geometry{};
  dram::TimingParams timing = dram::ddr4_1333();

  /// Simulation window: the paper simulates 500 M instructions per trace.
  std::int64_t max_instructions = 500'000'000;

  /// Per-row tRCD override (profiled values, §8.3); empty = nominal.
  std::function<Picoseconds(std::uint32_t bank, std::uint32_t row)> trcd_of;

  /// Fixed per-RowClone request-path overhead (trigger, controller
  /// processing) added to the in-DRAM operation time. RowClone itself is
  /// idealized — every pair succeeds — matching the paper's description of
  /// the Ramulator 2.0 setup.
  Picoseconds rowclone_overhead{150'000};

  std::size_t read_queue_depth = 32;
  std::size_t write_queue_depth = 32;
};

/// Results of one simulation.
struct RamStats {
  std::int64_t cycles = 0;
  std::int64_t instructions = 0;
  std::int64_t loads = 0;
  std::int64_t stores = 0;
  std::int64_t llc_misses = 0;
  std::int64_t mem_reads = 0;
  std::int64_t mem_writes = 0;
  std::int64_t row_hits = 0;
  std::int64_t row_misses = 0;
  std::int64_t rowclones = 0;
  std::vector<std::int64_t> markers;
};

/// The cycle-stepped baseline simulator. One instance = one run.
class RamulatorSim {
 public:
  explicit RamulatorSim(const RamulatorConfig& cfg);

  RamStats run(cpu::TraceSource& trace);

 private:
  struct MemRequest {
    std::uint64_t id = 0;
    dram::DramAddress addr;
    bool is_write = false;
    bool is_rowclone = false;
    std::uint32_t rowclone_dst = 0;
    std::uint64_t seq = 0;
  };

  struct BankState {
    bool open = false;
    std::uint32_t row = 0;
    Picoseconds act_ok{};   ///< Earliest next ACT.
    Picoseconds col_ok{};   ///< Earliest next RD/WR.
    Picoseconds pre_ok{};   ///< Earliest next PRE.
  };

  dram::DramAddress map(std::uint64_t paddr) const;
  /// Attempts to issue one DRAM command; returns true if one was issued.
  /// On failure records when the attempt can next succeed (issue_retry_at_)
  /// so intervening ticks cost one compare.
  bool issue_one_command(Picoseconds now);
  /// FR-FCFS pick over a queue; returns index or npos.
  std::size_t pick_frfcfs(const std::vector<MemRequest>& queue) const;
  /// On failure sets `block_until` to the earliest time the *first failing
  /// check* clears (later checks may then block again — the caller simply
  /// retries there, a few attempts per command instead of every cycle).
  bool try_advance_request(MemRequest& req, Picoseconds now, bool& done,
                           Picoseconds& block_until);
  void tick_memory(Picoseconds now);
  /// Drops the pick memo and the issue-retry horizon: called whenever a
  /// command issues or a request is enqueued (the only events that change
  /// what or when the controller can issue).
  void invalidate_issue_cache() {
    cached_pick_ = static_cast<std::size_t>(-1);
    issue_retry_valid_ = false;
  }
  bool fail_until(Picoseconds at) {
    issue_retry_at_ = at;
    issue_retry_valid_ = true;
    return false;
  }
  /// Records a completion and keeps earliest_completion_ current.
  void push_completion(Picoseconds ready, std::uint64_t id) {
    completions_.emplace_back(ready, id);
    if (ready < earliest_completion_) earliest_completion_ = ready;
  }

  RamulatorConfig cfg_;
  std::vector<BankState> banks_;
  std::vector<MemRequest> read_queue_;
  std::vector<MemRequest> write_queue_;
  std::vector<std::pair<Picoseconds, std::uint64_t>> completions_;  ///< (ready, id)
  /// FR-FCFS pick memoization: queue contents and bank states only change
  /// when a command issues or a request is enqueued, so between those
  /// events the pick is invariant and the per-cycle scan can be skipped.
  /// kNpos (invalid) after any such event.
  std::size_t cached_pick_ = static_cast<std::size_t>(-1);
  bool cached_pick_write_ = false;
  /// Earliest time the next issue attempt can differ from the last failed
  /// one (valid while no command issued / nothing enqueued since). Lets
  /// the run loop fast-forward blocked stretches in one step.
  Picoseconds issue_retry_at_{};
  bool issue_retry_valid_ = false;
  static constexpr std::int64_t kNever = INT64_MAX;
  /// Earliest pending completion time; the per-cycle harvest scan is
  /// skipped until the clock reaches it.
  Picoseconds earliest_completion_{kNever};
  std::vector<Picoseconds> act_window_;
  Picoseconds last_cmd_{};
  Picoseconds bus_free_{};
  Picoseconds rank_busy_until_{};
  Picoseconds next_ref_{};
  std::uint64_t seq_ = 0;
  RamStats stats_;
};

}  // namespace easydram::ramulator
