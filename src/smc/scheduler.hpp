#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "smc/bank_state.hpp"
#include "smc/request_table.hpp"

namespace easydram::smc {

/// Per-stream service bookkeeping the controller maintains alongside the
/// request table. Streams are dense small integers (tenant ids); the table
/// grows on first sight of a stream and is never trimmed, so accumulated
/// service survives idle phases — exactly what ATLAS-style long-term
/// ranking needs.
class StreamTable {
 public:
  void note_arrival(std::uint32_t stream) { ++grow(stream).arrivals; }

  /// Records `amount` units of attained service (served requests) for
  /// `stream`.
  void note_service(std::uint32_t stream, std::uint64_t amount = 1) {
    Entry& e = grow(stream);
    e.served += amount;
    e.attained_service += amount;
  }

  std::uint64_t arrivals(std::uint32_t stream) const {
    return stream < entries_.size() ? entries_[stream].arrivals : 0;
  }
  std::uint64_t served(std::uint32_t stream) const {
    return stream < entries_.size() ? entries_[stream].served : 0;
  }
  std::uint64_t attained_service(std::uint32_t stream) const {
    return stream < entries_.size() ? entries_[stream].attained_service : 0;
  }

  /// One past the highest stream id observed so far.
  std::size_t size() const { return entries_.size(); }

  void clear() { entries_.clear(); }

 private:
  struct Entry {
    std::uint64_t arrivals = 0;
    std::uint64_t served = 0;
    std::uint64_t attained_service = 0;
  };

  Entry& grow(std::uint32_t stream) {
    if (stream >= entries_.size()) entries_.resize(stream + 1);
    return entries_[stream];
  }

  std::vector<Entry> entries_;
};

/// Everything a scheduling policy may consult for one decision, bundled so
/// the `pick` signature stops growing as policies get richer. `streams` is
/// nullable: callers without per-stream bookkeeping (unit tests, benches)
/// pass nullptr and stream-aware policies degrade to their single-source
/// behavior.
struct PickContext {
  const RequestTable& table;
  const BankStateView& banks;
  const StreamTable* streams = nullptr;
};

/// A memory-request scheduling policy (Table 2: FCFS::schedule,
/// FRFCFS::schedule). Returns the table index to serve next, or nullopt for
/// an empty table. `scanned_entries` reports how many table entries the
/// policy examined so the cycle meter can charge a realistic software cost.
///
/// `pick` is non-const on purpose: stateful policies (PAR-BS batch
/// boundaries, BLISS streaks/blacklists, TCM cluster windows) update their
/// bookkeeping as part of the decision, exactly like their
/// software-memory-controller implementations. Row-hit comparisons must key
/// on the full (channel, rank, bank) bank coordinate — see dram::row_key.
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual std::optional<std::size_t> pick(const PickContext& ctx,
                                          std::size_t& scanned_entries) = 0;
  virtual std::string_view name() const = 0;
};

/// First come, first served: always the oldest request.
class FcfsScheduler final : public Scheduler {
 public:
  std::optional<std::size_t> pick(const PickContext& ctx,
                                  std::size_t& scanned_entries) override;
  std::string_view name() const override { return "FCFS"; }
};

/// First ready, first come, first served: the oldest row-buffer-hit request
/// if one exists, otherwise the oldest request.
class FrfcfsScheduler final : public Scheduler {
 public:
  std::optional<std::size_t> pick(const PickContext& ctx,
                                  std::size_t& scanned_entries) override;
  std::string_view name() const override { return "FR-FCFS"; }
};

/// PAR-BS-style batch scheduler (Mutlu & Moscibroda, ISCA'08, simplified):
/// requests are grouped into arrival batches of `batch_size`; the current
/// batch is fully served (row hits first within it) before any younger
/// request, bounding worst-case queueing delay. Because batch membership is
/// pure arrival order, no stream can starve another across a batch boundary
/// — the fairness property test_qos.cpp pins.
class BatchScheduler final : public Scheduler {
 public:
  explicit BatchScheduler(std::size_t batch_size = 8);

  std::optional<std::size_t> pick(const PickContext& ctx,
                                  std::size_t& scanned_entries) override;
  std::string_view name() const override { return "PAR-BS"; }

 private:
  std::size_t batch_size_;
  std::uint64_t batch_boundary_ = 0;  ///< First seq of the next batch.
};

/// BLISS-style blacklisting scheduler (Subramanian et al., ICCD'14).
///
/// With two or more distinct streams outstanding, the policy blacklists a
/// stream after `streak_limit` consecutive picks served from it; while
/// blacklisted, a stream's requests lose FR-FCFS priority to every
/// non-blacklisted request, restoring fairness at near-FR-FCFS throughput.
/// Blacklists clear every `clear_interval` picks (the paper's clearing
/// interval, counted in scheduling decisions rather than cycles so the
/// behavior is identical at any time-scaling factor).
///
/// With a single stream (or no stream metadata) there is nobody to favor
/// over the hog, so the policy falls back to the original single-source
/// simplification: a *row-hit streak* longer than `streak_limit` is broken
/// by serving the oldest request. Single-stream decisions are bit-identical
/// to the pre-stream-identity implementation, which the golden scenario
/// hashes pin.
class BlacklistScheduler final : public Scheduler {
 public:
  explicit BlacklistScheduler(int streak_limit = 4,
                              std::uint64_t clear_interval = 128);

  std::optional<std::size_t> pick(const PickContext& ctx,
                                  std::size_t& scanned_entries) override;
  std::string_view name() const override { return "BLISS"; }

  /// Whether `stream` is currently blacklisted (test/diagnostic hook).
  bool blacklisted(std::uint32_t stream) const {
    return stream < blacklist_.size() && blacklist_[stream];
  }

 private:
  std::optional<std::size_t> pick_single_source(const PickContext& ctx);
  std::optional<std::size_t> pick_multi_stream(const PickContext& ctx);

  int streak_limit_;
  std::uint64_t clear_interval_;

  // Single-source mode: bounded row-hit streak. `has_last_row_` (not a
  // row-key sentinel) marks "no previous pick" so a legitimate row key —
  // including ~0 — can never alias it.
  int row_streak_ = 0;
  bool has_last_row_ = false;
  std::uint64_t last_row_key_ = 0;

  // Multi-stream mode: per-stream serve streaks and blacklist flags.
  int stream_streak_ = 0;
  bool has_last_stream_ = false;
  std::uint32_t last_stream_ = 0;
  std::uint64_t picks_since_clear_ = 0;
  std::vector<bool> blacklist_;
};

/// ATLAS-style scheduler (Kim et al., HPCA'10, simplified): streams are
/// ranked by long-term attained service (least attained service first, ties
/// to the lower stream id), and the scheduler serves FR-FCFS within the
/// highest-ranked stream that has an outstanding request. A stream that has
/// consumed lots of bandwidth is automatically outranked by lighter
/// streams, so latency-sensitive tenants pull ahead without explicit
/// classification. Without stream metadata it degrades to plain FR-FCFS.
class AtlasScheduler final : public Scheduler {
 public:
  std::optional<std::size_t> pick(const PickContext& ctx,
                                  std::size_t& scanned_entries) override;
  std::string_view name() const override { return "ATLAS"; }
};

/// TCM-style scheduler (Kim et al., MICRO'10, simplified): every
/// `window_size` picks, streams are classified by their served-request
/// share over the window into a latency-sensitive cluster (at or below the
/// fair share) and a bandwidth-heavy cluster (above it). Latency-cluster
/// requests strictly outrank bandwidth-cluster requests; within the
/// bandwidth cluster a rotating priority offset (the paper's "insertion
/// shuffle") rotates which hog goes first each window so hogs interfere
/// with each other fairly. FR-FCFS orders requests within a cluster.
class TcmScheduler final : public Scheduler {
 public:
  explicit TcmScheduler(std::uint64_t window_size = 64);

  std::optional<std::size_t> pick(const PickContext& ctx,
                                  std::size_t& scanned_entries) override;
  std::string_view name() const override { return "TCM"; }

  /// Whether `stream` is currently in the bandwidth-heavy cluster
  /// (test/diagnostic hook).
  bool bandwidth_cluster(std::uint32_t stream) const {
    return stream < bandwidth_.size() && bandwidth_[stream];
  }

 private:
  void roll_window();

  std::uint64_t window_size_;
  std::uint64_t picks_in_window_ = 0;
  std::uint64_t shuffle_offset_ = 0;
  std::vector<std::uint64_t> served_in_window_;
  std::vector<bool> bandwidth_;
};

/// Registry of the built-in scheduling policies, addressable from
/// `SystemConfig` and the CLI's `--sched` flag. kAuto preserves the legacy
/// `use_frfcfs` selection.
enum class SchedulerKind : std::uint8_t {
  kAuto,
  kFcfs,
  kFrfcfs,
  kParbs,
  kBliss,
  kAtlas,
  kTcm,
};

/// CLI token for `kind` ("auto", "fcfs", "frfcfs", "parbs", "bliss",
/// "atlas", "tcm").
std::string_view to_string(SchedulerKind kind);

/// Parses a CLI token into a SchedulerKind; nullopt for unknown tokens.
std::optional<SchedulerKind> parse_scheduler(std::string_view token);

/// Instantiates `kind` with its default parameters (kAuto yields FR-FCFS,
/// the legacy default).
std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind);

}  // namespace easydram::smc
