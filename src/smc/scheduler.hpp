#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string_view>

#include "smc/bank_state.hpp"
#include "smc/request_table.hpp"

namespace easydram::smc {

/// A memory-request scheduling policy (Table 2: FCFS::schedule,
/// FRFCFS::schedule). Returns the table index to serve next, or nullopt for
/// an empty table. `scanned_entries` reports how many table entries the
/// policy examined so the cycle meter can charge a realistic software cost.
///
/// `pick` is non-const on purpose: stateful policies (PAR-BS batch
/// boundaries, BLISS streaks) update their bookkeeping as part of the
/// decision, exactly like their software-memory-controller implementations.
/// Row-hit comparisons must key on the full (channel, rank, bank) bank
/// coordinate — see dram::row_key.
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual std::optional<std::size_t> pick(const RequestTable& table,
                                          const BankStateView& banks,
                                          std::size_t& scanned_entries) = 0;
  virtual std::string_view name() const = 0;
};

/// First come, first served: always the oldest request.
class FcfsScheduler final : public Scheduler {
 public:
  std::optional<std::size_t> pick(const RequestTable& table, const BankStateView& banks,
                                  std::size_t& scanned_entries) override;
  std::string_view name() const override { return "FCFS"; }
};

/// First ready, first come, first served: the oldest row-buffer-hit request
/// if one exists, otherwise the oldest request.
class FrfcfsScheduler final : public Scheduler {
 public:
  std::optional<std::size_t> pick(const RequestTable& table, const BankStateView& banks,
                                  std::size_t& scanned_entries) override;
  std::string_view name() const override { return "FR-FCFS"; }
};

/// PAR-BS-style batch scheduler (Mutlu & Moscibroda, ISCA'08, simplified for
/// a single request source): requests are grouped into arrival batches of
/// `batch_size`; the current batch is fully served (row hits first within
/// it) before any younger request, bounding worst-case queueing delay.
class BatchScheduler final : public Scheduler {
 public:
  explicit BatchScheduler(std::size_t batch_size = 8);

  std::optional<std::size_t> pick(const RequestTable& table, const BankStateView& banks,
                                  std::size_t& scanned_entries) override;
  std::string_view name() const override { return "PAR-BS"; }

 private:
  std::size_t batch_size_;
  std::uint64_t batch_boundary_ = 0;  ///< First seq of the next batch.
};

/// BLISS-style blacklisting scheduler (Subramanian et al., ICCD'14,
/// simplified): a source streaming row hits is "blacklisted" after
/// `streak_limit` consecutive same-row picks; while blacklisted, the oldest
/// request wins regardless of row state, restoring fairness at near-FR-FCFS
/// throughput. With a single source the observable effect is a bounded
/// row-hit streak.
class BlacklistScheduler final : public Scheduler {
 public:
  explicit BlacklistScheduler(int streak_limit = 4);

  std::optional<std::size_t> pick(const RequestTable& table, const BankStateView& banks,
                                  std::size_t& scanned_entries) override;
  std::string_view name() const override { return "BLISS"; }

 private:
  int streak_limit_;
  int streak_ = 0;
  std::uint64_t last_row_key_ = ~0ull;
};

}  // namespace easydram::smc
