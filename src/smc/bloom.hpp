#pragma once

#include <cstdint>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace easydram::smc {

/// Bloom filter over DRAM row identifiers, used (as in RAIDR) to track weak
/// rows for the tRCD-reduction technique (§8.2). Weak rows are the *keys*,
/// so a false positive merely costs performance (a strong row accessed with
/// nominal tRCD), never correctness.
class BloomFilter {
 public:
  /// `bits` is rounded up to a multiple of 64. `hashes` classic k.
  BloomFilter(std::size_t bits, std::size_t hashes, std::uint64_t seed = 0xB100F)
      : words_((bits + 63) / 64, 0), hashes_(hashes), seed_(seed) {
    EASYDRAM_EXPECTS(bits > 0);
    EASYDRAM_EXPECTS(hashes > 0 && hashes <= 16);
  }

  void insert(std::uint64_t key) {
    for (std::size_t i = 0; i < hashes_; ++i) {
      const std::uint64_t bit = bit_index(key, i);
      words_[bit / 64] |= (1ULL << (bit % 64));
    }
    ++inserted_;
  }

  /// True when the key *may* be present (no false negatives).
  bool maybe_contains(std::uint64_t key) const {
    for (std::size_t i = 0; i < hashes_; ++i) {
      const std::uint64_t bit = bit_index(key, i);
      if ((words_[bit / 64] & (1ULL << (bit % 64))) == 0) return false;
    }
    return true;
  }

  /// Unions another filter's bits into this one (same geometry/seed
  /// required — e.g. per-channel weak-row filters merged into the one
  /// filter every channel's controller consults). Keeps the no-false-
  /// negative guarantee over the union of inserted keys.
  void merge(const BloomFilter& other) {
    EASYDRAM_EXPECTS(words_.size() == other.words_.size());
    EASYDRAM_EXPECTS(hashes_ == other.hashes_ && seed_ == other.seed_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
    inserted_ += other.inserted_;
  }

  std::size_t size_bits() const { return words_.size() * 64; }
  std::size_t inserted_keys() const { return inserted_; }

  /// Serialized filter contents: what the host "loads into the SMC before
  /// emulation begins" (§8.2).
  const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  std::uint64_t bit_index(std::uint64_t key, std::size_t i) const {
    return hash_mix(seed_, key, i) % (words_.size() * 64);
  }

  std::vector<std::uint64_t> words_;
  std::size_t hashes_;
  std::uint64_t seed_;
  std::size_t inserted_ = 0;
};

}  // namespace easydram::smc
