#include "smc/controller.hpp"

#include <cstring>

#include "common/rng.hpp"
#include "smc/ecc.hpp"

namespace easydram::smc {

namespace {

/// Deterministic data pattern for profiling requests: a line-unique pattern
/// so any corrupted bit is detected by comparison.
std::array<std::uint8_t, 64> profile_pattern(std::uint64_t paddr) {
  std::array<std::uint8_t, 64> p{};
  SplitMix64 sm(paddr ^ 0x0F11E5ULL);
  for (auto& b : p) b = static_cast<std::uint8_t>(sm.next());
  return p;
}

}  // namespace

MemoryController::MemoryController(ControllerOptions options)
    : options_(std::move(options)), table_(options_.request_table_capacity) {
  if (!options_.scheduler) options_.scheduler = std::make_unique<FrfcfsScheduler>();
}

bool MemoryController::step(EasyApi& api) {
  bool worked = false;

  // (i) Transfer newly visible requests from the hardware FIFO into the
  // software request table (Fig. 6 steps 4-5).
  while (!api.req_empty() && !table_.full()) {
    if (!api.keeper().counters().critical()) api.set_scheduling_state(true);
    tile::Request req = api.receive_request();
    TableEntry entry;
    entry.dram_addr = api.get_addr_mapping(req.paddr);
    entry.request = std::move(req);
    api.charge(api.tile().meter().costs().table_insert);
    streams_.note_arrival(entry.request.stream_id);
    table_.insert(std::move(entry));
    worked = true;
  }

  if (table_.empty()) {
    if (api.keeper().counters().critical()) api.set_scheduling_state(false);
    return worked;
  }

  // (ii) Make a scheduling decision. The api itself is the scheduler's
  // bank-state view (one virtual call per scanned entry, no closures).
  std::size_t scanned = 0;
  const PickContext ctx{table_, api, &streams_};
  const auto pick = options_.scheduler->pick(ctx, scanned);
  api.charge(api.tile().meter().costs().schedule_scan_entry *
             static_cast<std::int64_t>(scanned));
  EASYDRAM_ENSURES(pick.has_value());

  // Scheduler counters are host-side bookkeeping only (no timeline charge):
  // the modeled cost of the decision is already the scan charge above. The
  // hit/conflict verdict is taken against the bank state the policy saw,
  // before serving mutates it.
  ApiStats& stats = api.stats_mutable();
  ++stats.sched_picks;
  stats.sched_entries_scanned += scanned;
  {
    const dram::DramAddress& a = table_.at(*pick).dram_addr;
    const auto open = api.open_row(a);
    if (open.has_value()) {
      if (*open == a.row) {
        ++stats.sched_row_hits;
      } else {
        ++stats.sched_row_conflicts;
      }
    }
  }

  TableEntry entry = table_.remove(*pick);
  api.note_service_start(entry.request.issue_proc_cycle);
  api.refresh_if_due();
  serve(api, std::move(entry));
  flush_mitigation(api);
  return true;
}

void MemoryController::on_act(const dram::DramAddress& a) {
  if (options_.mitigator == nullptr || injecting_mitigation_) return;
  options_.mitigator->on_activate(a, pending_victims_);
}

void MemoryController::on_refresh(std::uint32_t rank) {
  if (options_.mitigator != nullptr) options_.mitigator->on_refresh(rank);
}

void MemoryController::on_refresh_skipped(std::uint32_t rank) {
  if (options_.mitigator != nullptr) {
    options_.mitigator->on_refresh_skipped(rank);
  }
}

void MemoryController::flush_mitigation(EasyApi& api) {
  if (pending_victims_.empty()) return;
  injecting_mitigation_ = true;
  // Targeted neighbor refresh: open the victim row long enough for a full
  // restore, then close it. Built and charged like any other batch — the
  // program construction and DRAM occupancy ARE the mitigation overhead.
  for (const dram::DramAddress& v : pending_victims_) {
    api.close_row(v.bank, v.rank);
    api.ddr_activate(v.bank, v.row, v.rank);
    api.ddr_wait(api.timing().tRAS);
    api.ddr_precharge(v.bank, v.rank);
  }
  api.flush_commands();
  pending_victims_.clear();
  injecting_mitigation_ = false;
}

void MemoryController::serve(EasyApi& api, TableEntry entry) {
  switch (entry.request.kind) {
    case tile::RequestKind::kRead:
    case tile::RequestKind::kWrite:
      serve_column_batch(api, std::move(entry));
      break;
    case tile::RequestKind::kRowClone:
      serve_rowclone(api, entry);
      break;
    case tile::RequestKind::kProfileTrcd:
      serve_profile(api, entry);
      break;
  }
}

Picoseconds MemoryController::trcd_for(const dram::DramAddress& a,
                                       const EasyApi& api) const {
  if (options_.weak_rows == nullptr) return api.timing().tRCD;
  if (options_.weak_rows->maybe_contains(dram::row_key(a))) return api.timing().tRCD;
  return options_.reduced_trcd;
}

void MemoryController::serve_column_batch(EasyApi& api, TableEntry first) {
  const dram::DramAddress target = first.dram_addr;

  // Drain further column requests to the same row into this batch: the
  // row opens once and the remaining accesses are back-to-back column
  // commands — write streaming / row-hit read draining. One pass over the
  // arrival-ordered table, unlinking matches in place (the traversal order
  // is the arrival order the old index scan produced).
  std::vector<TableEntry>& batch = batch_scratch_;
  batch.clear();
  batch.push_back(std::move(first));
  for (std::size_t slot = table_.first();
       slot != RequestTable::kNull && batch.size() < options_.row_batch_limit;) {
    const TableEntry& e = table_.at(slot);
    const std::size_t next = table_.next(slot);
    const bool column_op = e.request.kind == tile::RequestKind::kRead ||
                           e.request.kind == tile::RequestKind::kWrite;
    if (column_op && dram::row_key(e.dram_addr) == dram::row_key(target)) {
      api.charge(api.tile().meter().costs().schedule_scan_entry);
      batch.push_back(table_.remove(slot));
    }
    slot = next;
  }

  // Open the row once, choosing the tRCD per the weak-row filter. The
  // lookup overlaps the previous batch's execution on the Bender engine.
  if (options_.weak_rows != nullptr) {
    api.charge_overlapped(api.tile().meter().costs().bloom_check);
  }
  ErrorPolicy* const ep = api.error_policy();
  const bool ecc_on = ep != nullptr && ep->config().enabled;

  const Picoseconds trcd = trcd_for(target, api);
  bool first_access = true;
  for (const TableEntry& e : batch) {
    if (e.request.kind == tile::RequestKind::kRead) {
      if (first_access && trcd < api.timing().tRCD) {
        api.read_sequence_reduced(e.dram_addr, trcd);
      } else {
        api.read_sequence(e.dram_addr);
      }
    } else {
      api.write_sequence(e.dram_addr, e.request.wdata);
      if (ecc_on) {
        // ECC encode on the write path: the check bits are keyed by the
        // physical (post-retirement-remap) location the data lands on.
        const dram::DramAddress& a = e.dram_addr;
        const std::uint32_t fbank = api.geometry().flat_bank(a.rank, a.bank);
        api.charge(api.tile().meter().costs().command_push);
        ep->note_write(fbank, ep->retirement().remap(fbank, a.row), a.col,
                       e.request.wdata);
      }
    }
    first_access = false;
  }
  api.flush_commands();

  // Capture this batch's readbacks before the error pipeline runs: a retry
  // is a fresh flush_commands, which invalidates the readback buffer.
  rdback_scratch_.clear();
  for (const TableEntry& e : batch) {
    if (e.request.kind != tile::RequestKind::kRead) continue;
    EASYDRAM_ENSURES(!api.rdback_empty());
    rdback_scratch_.push_back(api.rdback_cacheline());
  }

  // Responses: data for reads (in batch order), acks for writes — posted
  // from the processor's perspective, but the ack lets drains/barriers
  // (and the system engine) observe completion.
  std::size_t rd = 0;
  for (const TableEntry& e : batch) {
    streams_.note_service(e.request.stream_id);
    tile::Response resp;
    resp.id = e.request.id;
    resp.stream_id = e.request.stream_id;
    if (e.request.kind == tile::RequestKind::kRead) {
      bender::ReadbackEntry& rb = rdback_scratch_[rd++];
      if (ecc_on) {
        resp.error = serve_read_ecc(api, *ep, e.dram_addr, rb);
        resp.ok = resp.error == RequestError::kNone;
      }
      resp.has_data = true;
      resp.data = rb.data;
      resp.data_reliable = rb.reliable;
    }
    api.enqueue_response(resp);
  }
}

RequestError MemoryController::serve_read_ecc(EasyApi& api, ErrorPolicy& ep,
                                              const dram::DramAddress& addr,
                                              bender::ReadbackEntry& rb) {
  ApiStats& stats = api.stats_mutable();
  const std::uint32_t fbank = api.geometry().flat_bank(addr.rank, addr.bank);

  // CE bookkeeping: count the correction and retire the row once its CE
  // total crosses the threshold (predictive retirement — get the data out
  // before the row degrades into a UE).
  const auto on_corrected = [&](std::uint32_t prow) {
    ++stats.ecc_corrected;
    if (ep.note_ce(fbank, prow)) {
      if (ep.retire_row(addr.rank, addr.bank, prow, api.device_for_setup())) {
        ++stats.rows_retired;
      }
    }
  };

  // The decode itself: one charge per line, against the physical
  // (post-remap) location the check bits are keyed by.
  const auto decode = [&]() {
    api.charge(api.tile().meter().costs().command_push);
    const std::uint32_t prow = ep.retirement().remap(fbank, addr.row);
    const EccStatus st = ep.decode_line(fbank, prow, addr.col, rb.data);
    if (st == EccStatus::kCorrected) on_corrected(prow);
    return st;
  };

  EccStatus st = decode();

  // Bounded re-read: a UE may be a transient upset (clean on retry); an
  // unreliable read means the reduced-tRCD gamble lost and the nominal
  // retry fetches trustworthy data. Retries run at nominal timing.
  for (std::uint32_t attempt = 0;
       (st == EccStatus::kUncorrectable || !rb.reliable) &&
       attempt < ep.config().max_retries;
       ++attempt) {
    ++stats.retries_issued;
    api.read_sequence(addr);
    api.flush_commands();
    EASYDRAM_ENSURES(!api.rdback_empty());
    rb = api.rdback_cacheline();
    st = decode();
  }

  if (st == EccStatus::kUncorrectable || !rb.reliable) {
    // Hard fault: the stored data is gone. Retire the row so future
    // traffic lands on a spare (budget permitting) and fail THIS request
    // with a typed error — graceful degradation, never a silent wrong
    // answer.
    ++stats.ecc_uncorrectable;
    const std::uint32_t prow = ep.retirement().remap(fbank, addr.row);
    if (!ep.retirement().budget_exhausted(fbank)) {
      if (ep.retire_row(addr.rank, addr.bank, prow, api.device_for_setup())) {
        ++stats.rows_retired;
      }
    }
    return RequestError::kUncorrectable;
  }

  // Escape verification against the device's stored cells: a read
  // acknowledged ok whose (post-correction) data diverges from ground
  // truth is a silent escape — the count the pipeline exists to zero.
  // Unprotected (never-written) lines carry no check bits, so the pipeline
  // makes no claim about them; their ground truth is the device's
  // faulty_reads_served counter, not an ECC escape. Without an installed
  // fault model no read can ever diverge from the stored bytes, so the
  // audit (a backdoor line compare per read) is skipped entirely.
  if (api.device_for_setup().fault_model() != nullptr) {
    dram::DramAddress pa = addr;
    pa.row = ep.retirement().remap(fbank, addr.row);
    if (ep.line_protected(fbank, pa.row, pa.col)) {
      std::array<std::uint8_t, 64> truth{};
      api.device_for_setup().backdoor_read(pa, truth);
      if (std::memcmp(truth.data(), rb.data.data(), 64) != 0) {
        ++stats.ecc_escaped;
      }
    }
  }
  return RequestError::kNone;
}

void MemoryController::serve_rowclone(EasyApi& api, const TableEntry& entry) {
  const dram::DramAddress src = entry.dram_addr;
  const dram::DramAddress dst = api.get_addr_mapping(entry.request.paddr2);

  streams_.note_service(entry.request.stream_id);
  tile::Response resp;
  resp.id = entry.request.id;
  resp.stream_id = entry.request.stream_id;
  // RowClone is an intra-bank operation: the pair must share the full
  // (channel, rank, bank) coordinate. The clone map is keyed by the
  // system-wide bank index so ranks/channels never alias.
  const bool same_bank = src.channel == dst.channel && src.rank == dst.rank &&
                         src.bank == dst.bank;
  const bool known_clonable =
      options_.clonable != nullptr && same_bank &&
      options_.clonable->clonable(api.geometry().system_bank(src), src.row,
                                  dst.row);
  if (!known_clonable) {
    // Unverified or failing pair: tell the processor to fall back to
    // load/store copy (§7.1, "Source and Target Row Allocation").
    resp.ok = false;
    api.enqueue_response(resp);
    return;
  }

  api.rowclone(src.bank, src.row, dst.row, src.rank);
  const auto exec = api.flush_commands();
  resp.ok = exec.rowclone_attempts == exec.rowclone_successes;
  api.enqueue_response(resp);
}

void MemoryController::serve_profile(EasyApi& api, const TableEntry& entry) {
  const dram::DramAddress& a = entry.dram_addr;
  const auto pattern = profile_pattern(entry.request.paddr);

  // Step 1: initialize the target cache line with a known pattern.
  api.close_row(a.bank, a.rank);
  api.write_sequence(a, pattern);
  api.close_row(a.bank, a.rank);
  api.flush_commands();

  // Step 2: access it with the requested tRCD.
  api.read_sequence_reduced(a, entry.request.profile_trcd);
  api.close_row(a.bank, a.rank);
  api.flush_commands();

  // Step 3: report whether the reduced access returned correct data.
  EASYDRAM_ENSURES(!api.rdback_empty());
  const auto rb = api.rdback_cacheline();
  streams_.note_service(entry.request.stream_id);
  tile::Response resp;
  resp.id = entry.request.id;
  resp.stream_id = entry.request.stream_id;
  resp.ok = std::memcmp(rb.data.data(), pattern.data(), 64) == 0;
  api.enqueue_response(resp);
}

bool SimpleReadController::step(EasyApi& api) {
  // Listing 1: wait for a request, serve it, respond.
  if (api.req_empty()) return false;
  api.set_scheduling_state(true);
  tile::Request req = api.receive_request();
  api.note_service_start(req.issue_proc_cycle);
  api.refresh_if_due();
  const dram::DramAddress addr = api.get_addr_mapping(req.paddr);
  EASYDRAM_EXPECTS(req.kind == tile::RequestKind::kRead);
  api.read_sequence(addr);
  api.flush_commands();
  tile::Response resp;
  resp.id = req.id;
  resp.stream_id = req.stream_id;
  resp.has_data = true;
  resp.data = api.rdback_cacheline().data;
  api.enqueue_response(resp);
  api.set_scheduling_state(false);
  return true;
}

}  // namespace easydram::smc
