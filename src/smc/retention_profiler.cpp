#include "smc/retention_profiler.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>

#include "common/contracts.hpp"

namespace easydram::smc {

namespace {

void count_bin(RaidrBinStats& s, std::uint32_t m) {
  ++s.stripes_total;
  if (m >= 4) {
    ++s.stripes_x4;
  } else if (m == 2) {
    ++s.stripes_x2;
  } else {
    ++s.stripes_x1;
  }
}

void finish_stats(RaidrBinStats& s, const RaidrBinning& b) {
  // Multipliers are powers of two <= 128, so each 1/m is an exact multiple
  // of 1/128. Summing the scaled integer numerators keeps the accumulation
  // exact (and iteration-order independent); the single final division
  // rounds once, exactly as the naive double sum would.
  std::int64_t acc_128ths = 0;
  for (const std::uint8_t m : b.multipliers) acc_128ths += 128 / m;
  s.issue_fraction = b.multipliers.empty()
                         ? 1.0
                         : static_cast<double>(acc_128ths) /
                               (128.0 * static_cast<double>(b.multipliers.size()));
}

}  // namespace

RaidrBinning profile_retention_bins(const dram::DramDevice& device,
                                    const RetentionProfilerOptions& opts,
                                    RaidrBinStats* stats) {
  // max_multiplier is capped at 128 (the largest power of two a
  // RaidrBinning's uint8 multiplier can hold after doubling).
  EASYDRAM_EXPECTS(opts.max_multiplier >= 1 && opts.max_multiplier <= 128 &&
                   opts.sample_stride >= 1);
  const dram::Geometry& geo = device.geometry();
  const dram::VariationModel& variation = device.variation();
  Picoseconds window = opts.window;
  if (window.count == 0) {
    window = Picoseconds{device.timing().tREFI.count *
                         static_cast<std::int64_t>(geo.refresh_window_refs)};
  }
  EASYDRAM_EXPECTS(window.count > 0);

  RaidrBinning b;
  b.window_refs = geo.refresh_window_refs;
  b.ranks = geo.ranks_per_channel;
  b.multipliers.resize(static_cast<std::size_t>(b.ranks) * b.window_refs);

  RaidrBinStats local{};
  const std::uint32_t stripe_rows = geo.refresh_stripe_rows();
  for (std::uint32_t rank = 0; rank < b.ranks; ++rank) {
    for (std::uint32_t stripe = 0; stripe < b.window_refs; ++stripe) {
      const std::uint32_t first = stripe * stripe_rows;
      const std::uint32_t last =
          std::min(first + stripe_rows, geo.rows_per_bank);
      // Weakest *sampled* row over every bank of the rank. The stride
      // walks the (bank-major) flat sample index so a stride above the
      // stripe's row count still samples some rows of most banks.
      std::int64_t min_ps = std::numeric_limits<std::int64_t>::max();
      std::uint32_t sample = 0;
      for (std::uint32_t bank = 0; bank < geo.num_banks(); ++bank) {
        const std::uint32_t fbank = geo.flat_bank(rank, bank);
        for (std::uint32_t row = first; row < last; ++row, ++sample) {
          if (sample % opts.sample_stride != 0) continue;
          min_ps =
              std::min(min_ps, variation.row_retention(fbank, row).count);
          ++local.rows_profiled;
        }
      }
      // An unsampled stripe (stride larger than the stripe) must stay at
      // the conservative multiplier.
      std::uint32_t m = 1;
      if (min_ps != std::numeric_limits<std::int64_t>::max()) {
        const std::int64_t budget = min_ps - opts.guard_band.count;
        while (m * 2 <= opts.max_multiplier &&
               static_cast<std::int64_t>(m) * 2 * window.count <= budget) {
          m *= 2;
        }
      }
      b.multipliers[static_cast<std::size_t>(rank) * b.window_refs + stripe] =
          static_cast<std::uint8_t>(m);
      count_bin(local, m);
    }
  }
  finish_stats(local, b);
  if (stats != nullptr) *stats = local;
  return b;
}

RaidrBinStats summarize_binning(const RaidrBinning& binning) {
  RaidrBinStats s{};
  for (const std::uint8_t m : binning.multipliers) count_bin(s, m);
  finish_stats(s, binning);
  return s;
}

}  // namespace easydram::smc
