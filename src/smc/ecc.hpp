#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"
#include "dram/device.hpp"
#include "dram/geometry.hpp"

namespace easydram::smc {

struct ApiStats;

/// Outcome of decoding one protected word (or, as a worst-over-words
/// summary, one cache line).
enum class EccStatus : std::uint8_t {
  kOk = 0,           ///< Syndrome clean — data accepted as stored.
  kCorrected = 1,    ///< Single-bit error corrected (CE).
  kUncorrectable = 2 ///< Detected-uncorrectable error (UE).
};

/// SEC-DED Hamming(72,64): 64 data bits protected by 7 Hamming check bits
/// plus an overall even-parity bit. Corrects any single-bit error and
/// detects any double-bit error; like the real code, 3+ flipped bits in
/// one word can alias a correctable pattern (the fault model therefore
/// never stacks manifested flips past two bits per word — see
/// FaultModel::manifest_sticky).
class EccCodec {
 public:
  /// Check byte for `word`: bits 0..6 Hamming checks, bit 7 overall parity.
  static std::uint8_t encode(std::uint64_t word);

  struct Decode {
    EccStatus status = EccStatus::kOk;
    std::uint64_t data = 0;  ///< Corrected word (unchanged unless CE).
  };
  static Decode decode(std::uint64_t word, std::uint8_t check);
};

/// Controller-level error-handling knobs. Default-off: a system built
/// without touching this struct has no ECC path, no scrubber, and no
/// retirement machinery constructed at all.
struct EccConfig {
  bool enabled = false;

  /// Patrol scrub: piggybacks on the refresh-slot round-robin — every slot
  /// consumed for a rank (issued *or* skipped by a retention-aware policy,
  /// which is what lets scrub catch misbinned rows RAIDR stopped
  /// refreshing) scrubs up to `scrub_lines_per_slot` ECC-protected lines
  /// of that slot's stripe, correcting CEs in place (write-back) and
  /// retiring rows with UEs.
  bool scrub = false;
  std::uint32_t scrub_lines_per_slot = 2;

  /// Bounded re-read retries after a demand UE (distinguishes transient
  /// upsets, which read clean on retry, from hard faults, which do not).
  std::uint32_t max_retries = 2;

  /// A row accumulating this many CEs is retired (PPR-style remap to a
  /// spare row) before it degrades into a UE.
  std::uint32_t ce_retire_threshold = 4;

  /// Spare rows reserved at the top of every bank for retirement remaps.
  /// When a bank's budget is exhausted the system degrades gracefully:
  /// hard UEs fail the request with a typed error, never a silent wrong
  /// answer.
  std::uint32_t spare_rows_per_bank = 4;
};

/// Per-bank PPR-style row retirement: retired rows remap to spare rows
/// reserved at the top of the bank. Per channel, system-owned (survives
/// controller rebuilds, like the mitigators and refresh policies).
class RowRetirementMap {
 public:
  RowRetirementMap(const dram::Geometry& geo, std::uint32_t spare_rows_per_bank);

  /// Follows the remap chain (a retired spare remaps again) to the row
  /// that actually holds the data. Identity for unretired rows.
  std::uint32_t remap(std::uint32_t fbank, std::uint32_t row) const;
  bool is_retired(std::uint32_t fbank, std::uint32_t row) const;

  /// Assigns the bank's next spare row to `row`. nullopt when the budget
  /// is exhausted or `row` is already retired.
  std::optional<std::uint32_t> retire(std::uint32_t fbank, std::uint32_t row);

  /// CE bookkeeping: bumps the row's corrected-error count and returns it.
  std::int64_t note_ce(std::uint32_t fbank, std::uint32_t row);

  std::int64_t rows_retired() const { return rows_retired_; }
  bool budget_exhausted(std::uint32_t fbank) const;

 private:
  std::uint64_t key(std::uint32_t fbank, std::uint32_t row) const;

  dram::Geometry geo_;
  std::uint32_t spare_rows_per_bank_;
  std::unordered_map<std::uint64_t, std::uint32_t> remap_;     // lookup only
  std::unordered_map<std::uint64_t, std::int64_t> ce_counts_;  // lookup only
  std::vector<std::uint32_t> spares_used_;  ///< Per flat bank.
  std::int64_t rows_retired_ = 0;
};

/// One channel's error-handling state: the ECC check-bit side store, the
/// retirement map, and the patrol-scrub cursor machinery. System-owned per
/// channel; controllers and the channel's EasyApi borrow non-owning
/// pointers (the "controllers are disposable; policies are not" rule).
///
/// Check bits are written by the controller's write path and *kept* across
/// retirement migration, so data whose stored value diverged from what was
/// written (e.g. a reduced-tRCD read that corrupted the row) stays
/// detectable — recomputing checks over corrupt data would launder it.
class ErrorPolicy {
 public:
  ErrorPolicy(const dram::Geometry& geo, const EccConfig& cfg);

  const EccConfig& config() const { return cfg_; }
  RowRetirementMap& retirement() { return retirement_; }
  const RowRetirementMap& retirement() const { return retirement_; }

  /// Write path: (re)computes and stores the line's check bits.
  void note_write(std::uint32_t fbank, std::uint32_t row, std::uint32_t col,
                  std::span<const std::uint8_t> data);
  bool line_protected(std::uint32_t fbank, std::uint32_t row,
                      std::uint32_t col) const;

  /// Read path: decodes `data` (64 bytes) against the stored check bits,
  /// correcting single-bit words in place. Unprotected (never written)
  /// lines decode as kOk. Returns the worst per-word status.
  EccStatus decode_line(std::uint32_t fbank, std::uint32_t row,
                        std::uint32_t col, std::span<std::uint8_t> data) const;

  /// CE bookkeeping; true when the row just crossed the retirement
  /// threshold (and should be retired by the caller).
  bool note_ce(std::uint32_t fbank, std::uint32_t row);

  /// Retires (fbank, row) and migrates its data to the spare: every
  /// protected column is copied through the correction path (CE words
  /// fixed, UE words copied verbatim with their original check bits so
  /// the loss stays detectable). Returns the spare row, or nullopt when
  /// the bank's budget is exhausted.
  std::optional<std::uint32_t> retire_row(std::uint32_t rank, std::uint32_t bank,
                                          std::uint32_t row,
                                          dram::DramDevice& dev);

  /// Patrol scrub for one consumed refresh slot of `rank`: scrubs up to
  /// scrub_lines_per_slot protected lines of the slot's stripe (resuming
  /// a per-stripe cursor), correcting CEs via write-back and retiring
  /// rows with UEs. `now` is the emulated time of the slot.
  void scrub_on_slot(std::uint32_t rank, std::int64_t slot, Picoseconds now,
                     dram::DramDevice& dev, ApiStats& stats);

 private:
  /// One row's check-bit store: a presence bitmap over columns plus the
  /// per-line check bytes (one per 64-bit word), allocated lazily the
  /// first time a line of the row is written. Direct indexing keeps the
  /// per-request cost flat — the ECC path runs on every read and write of
  /// an ECC-on system, so a node-based map here dominates the simulator's
  /// hot path (measured ~3.5x on the micro burst before this layout).
  struct RowChecks {
    std::vector<std::uint64_t> present;           ///< (cols + 63) / 64 words.
    std::vector<std::array<std::uint8_t, 8>> ck;  ///< One entry per column.
  };

  std::uint64_t line_key(std::uint32_t fbank, std::uint32_t row,
                         std::uint32_t col) const;
  const RowChecks* row_checks(std::uint32_t fbank, std::uint32_t row) const;
  RowChecks& ensure_row(std::uint32_t fbank, std::uint32_t row);
  bool col_present(const RowChecks& rc, std::uint32_t col) const;

  dram::Geometry geo_;
  EccConfig cfg_;
  RowRetirementMap retirement_;
  /// Check-bit side store indexed [fbank][row]; the inner row vector is
  /// allocated on a bank's first protected write, keeping construction
  /// O(banks). The line-key order (fbank, row, col) the scrub cursor walks
  /// is preserved by iterating banks, rows, and column bits ascending.
  std::vector<std::vector<std::unique_ptr<RowChecks>>> banks_;
  std::int64_t protected_lines_ = 0;
  /// Per (rank * window + stripe): next line key the scrub cursor visits.
  std::vector<std::uint64_t> scrub_cursor_;
};

}  // namespace easydram::smc
