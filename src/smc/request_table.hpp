#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/contracts.hpp"
#include "dram/types.hpp"
#include "tile/request.hpp"

namespace easydram::smc {

/// A request staged in programmable-core memory, with its decoded DRAM
/// address and arrival order (for FCFS age comparisons).
struct TableEntry {
  tile::Request request;
  dram::DramAddress dram_addr;
  std::uint64_t arrival_seq = 0;
};

/// The software request table (§4.4 step 5): a fixed-capacity scratchpad
/// structure the SMC moves requests into before scheduling them.
///
/// Storage is slot-based: entries occupy fixed slots recycled through a
/// free list, and an intrusive doubly-linked list threads the occupied
/// slots in arrival order. insert/remove are O(1) with no element
/// shifting; traversal (first()/next()) visits entries oldest-first,
/// which is the order the schedulers' age comparisons and the
/// controller's same-row batch drain depend on. Slot indices are stable
/// for an entry's lifetime: the value a scheduler returns from pick() can
/// be passed to at()/remove() without any shifting caveats.
class RequestTable {
 public:
  /// Sentinel slot index: end of the arrival-ordered traversal.
  static constexpr std::size_t kNull = static_cast<std::size_t>(-1);

  explicit RequestTable(std::size_t capacity)
      : capacity_(capacity), slots_(capacity) {
    EASYDRAM_EXPECTS(capacity > 0);
    free_.reserve(capacity);
    for (std::size_t i = capacity; i-- > 0;) free_.push_back(i);
  }

  bool empty() const { return size_ == 0; }
  bool full() const { return size_ >= capacity_; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }

  /// Stages an entry, stamping its arrival sequence number; returns the
  /// slot it was placed in.
  std::size_t insert(TableEntry entry) {
    EASYDRAM_EXPECTS(!full());
    const std::size_t slot = free_.back();
    free_.pop_back();
    Slot& s = slots_[slot];
    s.entry = std::move(entry);
    s.entry.arrival_seq = next_seq_++;
    s.occupied = true;
    s.prev = tail_;
    s.next = kNull;
    if (tail_ != kNull) {
      slots_[tail_].next = slot;
    } else {
      head_ = slot;
    }
    tail_ = slot;
    ++size_;
    return slot;
  }

  const TableEntry& at(std::size_t slot) const {
    EASYDRAM_EXPECTS(slot < slots_.size() && slots_[slot].occupied);
    return slots_[slot].entry;
  }

  TableEntry remove(std::size_t slot) {
    EASYDRAM_EXPECTS(slot < slots_.size() && slots_[slot].occupied);
    Slot& s = slots_[slot];
    if (s.prev != kNull) slots_[s.prev].next = s.next; else head_ = s.next;
    if (s.next != kNull) slots_[s.next].prev = s.prev; else tail_ = s.prev;
    s.occupied = false;
    free_.push_back(slot);
    --size_;
    return std::move(s.entry);
  }

  /// Oldest occupied slot (head of the arrival-ordered list), kNull when
  /// empty. Because arrival sequence numbers are assigned monotonically,
  /// this is always the entry with the minimum arrival_seq.
  std::size_t first() const { return head_; }

  /// Next-younger occupied slot after `slot` in arrival order, kNull at
  /// the end.
  std::size_t next(std::size_t slot) const {
    EASYDRAM_EXPECTS(slot < slots_.size() && slots_[slot].occupied);
    return slots_[slot].next;
  }

 private:
  struct Slot {
    TableEntry entry;
    std::size_t prev = kNull;
    std::size_t next = kNull;
    bool occupied = false;
  };

  std::size_t capacity_;
  std::uint64_t next_seq_ = 0;
  std::size_t size_ = 0;
  std::size_t head_ = kNull;
  std::size_t tail_ = kNull;
  std::vector<Slot> slots_;
  std::vector<std::size_t> free_;  ///< Back of the vector is handed out next.
};

}  // namespace easydram::smc
