#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/contracts.hpp"
#include "dram/types.hpp"
#include "tile/request.hpp"

namespace easydram::smc {

/// A request staged in programmable-core memory, with its decoded DRAM
/// address and arrival order (for FCFS age comparisons).
struct TableEntry {
  tile::Request request;
  dram::DramAddress dram_addr;
  std::uint64_t arrival_seq = 0;
};

/// The software request table (§4.4 step 5): a fixed-capacity scratchpad
/// structure the SMC moves requests into before scheduling them.
class RequestTable {
 public:
  explicit RequestTable(std::size_t capacity) : capacity_(capacity) {
    EASYDRAM_EXPECTS(capacity > 0);
    entries_.reserve(capacity);
  }

  bool empty() const { return entries_.empty(); }
  bool full() const { return entries_.size() >= capacity_; }
  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }

  void insert(TableEntry entry) {
    EASYDRAM_EXPECTS(!full());
    entry.arrival_seq = next_seq_++;
    entries_.push_back(std::move(entry));
  }

  const TableEntry& at(std::size_t i) const {
    EASYDRAM_EXPECTS(i < entries_.size());
    return entries_[i];
  }

  TableEntry remove(std::size_t i) {
    EASYDRAM_EXPECTS(i < entries_.size());
    TableEntry e = std::move(entries_[i]);
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
    return e;
  }

 private:
  std::size_t capacity_;
  std::uint64_t next_seq_ = 0;
  std::vector<TableEntry> entries_;
};

}  // namespace easydram::smc
