#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

namespace easydram::smc {

/// Verified RowClone pair knowledge (§7.1, "Mapping Problem"): records which
/// (bank, src row, dst row) pairs passed the 1000-operation clonability
/// test. The controller consults it at request time; the allocator fills it
/// during setup. Unknown pairs are treated as not clonable — the safe
/// default that triggers the CPU fallback.
///
/// `bank` is a system-wide flat bank index (Geometry::system_bank) so one
/// shared map serves every channel and rank; for the default 1x1 geometry
/// it equals the plain per-rank bank index.
class RowCloneMap {
 public:
  void record(std::uint32_t bank, std::uint32_t src_row, std::uint32_t dst_row,
              bool clonable) {
    pairs_[key(bank, src_row, dst_row)] = clonable;
  }

  std::optional<bool> known(std::uint32_t bank, std::uint32_t src_row,
                            std::uint32_t dst_row) const {
    const auto it = pairs_.find(key(bank, src_row, dst_row));
    if (it == pairs_.end()) return std::nullopt;
    return it->second;
  }

  bool clonable(std::uint32_t bank, std::uint32_t src_row,
                std::uint32_t dst_row) const {
    return known(bank, src_row, dst_row).value_or(false);
  }

  std::size_t size() const { return pairs_.size(); }

 private:
  static std::uint64_t key(std::uint32_t bank, std::uint32_t src, std::uint32_t dst) {
    return (static_cast<std::uint64_t>(bank) << 48) |
           (static_cast<std::uint64_t>(src) << 24) | dst;
  }

  std::unordered_map<std::uint64_t, bool> pairs_;
};

}  // namespace easydram::smc
