#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_map>

namespace easydram::smc {

/// Verified RowClone pair knowledge (§7.1, "Mapping Problem"): records which
/// (bank, src row, dst row) pairs passed the 1000-operation clonability
/// test. The controller consults it at request time; the allocator fills it
/// during setup. Unknown pairs are treated as not clonable — the safe
/// default that triggers the CPU fallback.
///
/// `bank` is a system-wide flat bank index (Geometry::system_bank) so one
/// shared map serves every channel and rank; for the default 1x1 geometry
/// it equals the plain per-rank bank index.
///
/// The map key carries the full (bank, src, dst) coordinate exactly — the
/// earlier `src << 24 | dst` packing silently aliased row indices ≥ 2^24
/// into each other and into the bank field, so two distinct pairs could
/// share one clonability verdict.
class RowCloneMap {
 public:
  void record(std::uint32_t bank, std::uint32_t src_row, std::uint32_t dst_row,
              bool clonable) {
    pairs_[key(bank, src_row, dst_row)] = clonable;
  }

  std::optional<bool> known(std::uint32_t bank, std::uint32_t src_row,
                            std::uint32_t dst_row) const {
    const auto it = pairs_.find(key(bank, src_row, dst_row));
    if (it == pairs_.end()) return std::nullopt;
    return it->second;
  }

  bool clonable(std::uint32_t bank, std::uint32_t src_row,
                std::uint32_t dst_row) const {
    return known(bank, src_row, dst_row).value_or(false);
  }

  std::size_t size() const { return pairs_.size(); }

 private:
  /// Lossless pair key: bank in the high word, the two full 32-bit row
  /// indices below it. Distinct (bank, src, dst) triples never collide.
  struct PairKey {
    std::uint64_t bank_src;  ///< bank << 32 | src_row
    std::uint64_t dst;

    bool operator==(const PairKey&) const = default;
  };

  struct PairKeyHash {
    std::size_t operator()(const PairKey& k) const {
      // splitmix64-style finalizer over both words: cheap, and every input
      // bit diffuses into the hash (unordered_map pow-2/prime bucketing
      // sees high entropy in the low bits either way).
      std::uint64_t x = k.bank_src ^ (k.dst * 0x9E3779B97F4A7C15ull);
      x ^= x >> 30;
      x *= 0xBF58476D1CE4E5B9ull;
      x ^= x >> 27;
      x *= 0x94D049BB133111EBull;
      x ^= x >> 31;
      return static_cast<std::size_t>(x);
    }
  };

  static PairKey key(std::uint32_t bank, std::uint32_t src, std::uint32_t dst) {
    return PairKey{(static_cast<std::uint64_t>(bank) << 32) | src, dst};
  }

  std::unordered_map<PairKey, bool, PairKeyHash> pairs_;
};

}  // namespace easydram::smc
