#pragma once

#include <cstdint>
#include <vector>

#include "smc/easyapi.hpp"
#include "smc/rowclone_map.hpp"

namespace easydram::smc {

/// A bank/row coordinate (column-free), the granularity RowClone works at.
struct RowRef {
  std::uint32_t bank = 0;
  std::uint32_t row = 0;

  bool operator==(const RowRef&) const = default;
};

/// Runs the PiDRAM-style clonability verification (§7.1, "Mapping
/// Problem"): a pair is clonable iff `trials` RowClone copy operations from
/// src to dst all reproduce the source data exactly.
class RowClonePairTester {
 public:
  /// `trials` defaults to the paper's 1000; the modelled chip is
  /// deterministic, so tests and benches may lower it to save time.
  RowClonePairTester(EasyApi& api, int trials = 1000);

  /// Tests one pair and records the verdict in `map`.
  bool test(std::uint32_t bank, std::uint32_t src_row, std::uint32_t dst_row,
            RowCloneMap& map);

  std::int64_t trials_run() const { return trials_run_; }

 private:
  /// One trial: write a pattern to src, RowClone, read dst back, compare.
  bool one_trial(std::uint32_t bank, std::uint32_t src_row, std::uint32_t dst_row,
                 std::uint64_t salt);

  EasyApi* api_;
  int trials_;
  std::int64_t trials_run_ = 0;
};

/// A bulk copy plan: per source row, the verified destination row, or a
/// CPU fallback marker.
struct CopyPlanEntry {
  RowRef src;
  RowRef dst;
  bool use_rowclone = false;
};

/// A bulk initialization plan: per destination row, the reserved
/// same-subarray source (pattern) row, or a CPU fallback marker.
struct InitPlanEntry {
  RowRef dst;
  RowRef pattern_src;
  bool use_rowclone = false;
};

/// The data allocation algorithm of §7.1: reserves whole DRAM rows
/// (alignment), sizes regions in row multiples (granularity), keeps pairs
/// within one subarray (mapping), and plans CPU fallbacks where
/// verification fails. Allocation walks banks row-linearly; destination
/// candidates are probed within the source's subarray.
class RowCloneAllocator {
 public:
  RowCloneAllocator(EasyApi& api, RowCloneMap& map, RowClonePairTester& tester);

  /// Plans an N-row bulk copy. Sources occupy the next free rows; for each
  /// source the allocator verifies up to `max_candidates` same-subarray
  /// destinations and falls back to CPU copy when none passes.
  std::vector<CopyPlanEntry> plan_copy(std::size_t n_rows, int max_candidates = 8);

  /// Like plan_copy, but distributes consecutive logical rows round-robin
  /// across all banks — the bank-interleaving optimization §7.1 leaves as
  /// future work. RowClone operations to different banks can then overlap
  /// at the DRAM, improving bulk-copy throughput. Pairs still stay within
  /// one subarray (the FPM constraint is per-pair, not per-operation-set).
  /// Do not mix with plan_copy/plan_init on the same allocator instance.
  std::vector<CopyPlanEntry> plan_copy_interleaved(std::size_t n_rows,
                                                   int max_candidates = 8);

  /// Plans an N-row bulk initialization: one pattern source row is
  /// reserved per subarray; a destination whose pair with its subarray's
  /// pattern row fails verification falls back to CPU stores.
  std::vector<InitPlanEntry> plan_init(std::size_t n_rows);

  /// Rows handed out so far (allocation cursor).
  std::uint64_t rows_allocated() const { return cursor_; }

 private:
  RowRef row_at(std::uint64_t linear_index) const;
  /// Reserves and returns the subarray's pattern row (first row of the
  /// subarray), creating it on first use.
  RowRef pattern_row_for(const RowRef& dst);

  /// Next free row of `bank` under interleaved allocation (skips reserved
  /// pattern rows).
  RowRef next_row_in_bank(std::uint32_t bank);

  EasyApi* api_;
  RowCloneMap* map_;
  RowClonePairTester* tester_;
  std::uint64_t cursor_ = 0;
  std::vector<std::uint64_t> bank_cursors_;
  std::vector<std::int32_t> pattern_rows_;  ///< per (bank, subarray), -1 = none.
};

}  // namespace easydram::smc
