#pragma once

#include <cstdint>
#include <optional>

#include "dram/types.hpp"

namespace easydram::smc {

/// View of DRAM bank state a scheduling policy may consult.
///
/// This is a lightweight abstract interface rather than a std::function:
/// `open_row` sits on the scheduler hot path (one query per scanned table
/// entry), so the query must be a plain virtual dispatch with no closure
/// allocation or type-erased call overhead. EasyApi implements it directly;
/// tests and benches provide small fakes.
class BankStateView {
 public:
  /// Open row of the bank addressed by `a` (row/col are ignored; channel
  /// and rank select the bank together with `a.bank`), or nullopt when the
  /// bank is precharged.
  virtual std::optional<std::uint32_t> open_row(const dram::DramAddress& a) const = 0;

 protected:
  ~BankStateView() = default;  ///< Never owned/deleted through the interface.
};

}  // namespace easydram::smc
