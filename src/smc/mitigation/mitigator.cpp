#include "smc/mitigation/mitigator.hpp"

#include "smc/mitigation/graphene.hpp"
#include "smc/mitigation/para.hpp"

namespace easydram::smc::mitigation {

std::string_view to_string(MitigationKind kind) {
  switch (kind) {
    case MitigationKind::kNone: return "none";
    case MitigationKind::kPara: return "para";
    case MitigationKind::kGraphene: return "graphene";
  }
  return "?";
}

std::optional<MitigationKind> parse_mitigation(std::string_view name) {
  if (name == "none") return MitigationKind::kNone;
  if (name == "para") return MitigationKind::kPara;
  if (name == "graphene") return MitigationKind::kGraphene;
  return std::nullopt;
}

std::unique_ptr<RowHammerMitigator> make_mitigator(const MitigationConfig& cfg,
                                                   const dram::Geometry& geo,
                                                   std::uint32_t channel) {
  switch (cfg.kind) {
    case MitigationKind::kNone:
      return nullptr;
    case MitigationKind::kPara:
      return std::make_unique<ParaMitigator>(cfg, geo, channel);
    case MitigationKind::kGraphene:
      return std::make_unique<GrapheneMitigator>(cfg, geo);
  }
  return nullptr;
}

}  // namespace easydram::smc::mitigation
