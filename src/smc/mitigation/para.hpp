#pragma once

#include "common/rng.hpp"
#include "smc/mitigation/mitigator.hpp"

namespace easydram::smc::mitigation {

/// PARA — probabilistic adjacent-row activation (Kim et al., ISCA 2014).
///
/// Stateless beyond its RNG: every observed ACT independently triggers,
/// with probability p, a targeted refresh of ONE uniformly chosen adjacent
/// row. No tables, no per-row state; the exposure bound is probabilistic
/// (the chance a victim survives N aggressor activations unrefreshed decays
/// as (1 - p/2)^N).
class ParaMitigator final : public RowHammerMitigator {
 public:
  ParaMitigator(const MitigationConfig& cfg, const dram::Geometry& geo,
                std::uint32_t channel);

  void on_activate(const dram::DramAddress& a,
                   std::vector<dram::DramAddress>& victims) override;
  void on_refresh(std::uint32_t rank) override;
  std::string_view name() const override { return "PARA"; }

 private:
  dram::Geometry geo_;
  double probability_;
  Xoshiro256ss rng_;
};

}  // namespace easydram::smc::mitigation
