#include "smc/mitigation/para.hpp"

#include "common/contracts.hpp"

namespace easydram::smc::mitigation {

ParaMitigator::ParaMitigator(const MitigationConfig& cfg,
                             const dram::Geometry& geo, std::uint32_t channel)
    : geo_(geo),
      probability_(cfg.para_probability),
      rng_(hash_mix(cfg.seed, channel, 0x9A7A)) {
  EASYDRAM_EXPECTS(probability_ >= 0.0 && probability_ <= 1.0);
}

void ParaMitigator::on_activate(const dram::DramAddress& a,
                                std::vector<dram::DramAddress>& victims) {
  ++stats_.acts_observed;
  // One RNG draw per ACT keeps the stream a pure function of the observed
  // command sequence; the neighbor pick only draws when it has a choice.
  if (rng_.next_double() >= probability_) return;
  const dram::Geometry::NeighborRows n = geo_.neighbor_rows(a.row);
  if (n.count == 0) return;
  const std::uint32_t pick =
      n.count == 1 ? 0u : static_cast<std::uint32_t>(rng_.next_below(n.count));
  dram::DramAddress victim = a;
  victim.row = n.rows[pick];
  victim.col = 0;
  victims.push_back(victim);
  ++stats_.triggers;
  ++stats_.neighbor_refreshes;
}

void ParaMitigator::on_refresh(std::uint32_t /*rank*/) {
  // PARA carries no refresh-window state: nothing to reset.
}

}  // namespace easydram::smc::mitigation
