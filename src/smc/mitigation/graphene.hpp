#pragma once

#include <vector>

#include "smc/mitigation/mitigator.hpp"

namespace easydram::smc::mitigation {

/// Graphene-style counter tracker (Park et al., MICRO 2020, simplified):
/// one Misra-Gries frequent-items summary per bank estimates each row's
/// activation count within the current refresh window. An entry crossing
/// the threshold refreshes BOTH neighbors of the aggressor and re-arms its
/// counter; tables reset when a full retention window's worth of refresh
/// slots (Geometry::refresh_window_refs per rank, counting slots a
/// retention-aware policy skipped as well as REFs issued) has elapsed,
/// matching the wall-time window the threshold is defined over.
///
/// The Misra-Gries summary guarantees any row activated more than
/// (window activations) / (table_rows + 1) times holds an entry — the
/// classic space/precision trade the hardware proposal makes. The flip
/// side is the coverage limit every counter table has: an attack cycling
/// MORE distinct aggressor rows per bank than table_rows keeps each one
/// at the spillover floor (evicted, re-adopted, re-armed) and never
/// triggers, so `graphene_table_rows` must exceed the widest many-sided
/// pattern the deployment cares about; tests/test_mitigation.cpp pins
/// both sides of that boundary.
class GrapheneMitigator final : public RowHammerMitigator {
 public:
  GrapheneMitigator(const MitigationConfig& cfg, const dram::Geometry& geo);

  void on_activate(const dram::DramAddress& a,
                   std::vector<dram::DramAddress>& victims) override;
  void on_refresh(std::uint32_t rank) override;
  void on_refresh_skipped(std::uint32_t rank) override;
  std::string_view name() const override { return "Graphene"; }

  /// Test introspection: estimated count tracked for (rank, bank, row), or
  /// 0 when the row holds no entry.
  std::int64_t tracked_count(std::uint32_t bank, std::uint32_t row,
                             std::uint32_t rank = 0) const;

 private:
  struct Entry {
    std::uint32_t row = 0;
    std::int64_t count = 0;
    /// Count value at the last trigger (or at insertion/adoption, where
    /// the row is indistinguishable from the spillover noise floor): a
    /// further `threshold` activations above this baseline re-trigger.
    /// Counts never reset mid-window, preserving the Misra-Gries
    /// invariant (every entry count >= spill) — resetting to 0 would make
    /// a just-triggered entry the adoption victim and, once spill itself
    /// exceeded the threshold, degenerate into a trigger per ACT.
    std::int64_t armed_at = 0;
  };
  /// One bank's summary: up to table_rows entries plus the shared
  /// spillover counter every untracked row is charged to.
  struct Table {
    std::vector<Entry> entries;
    std::int64_t spill = 0;
  };

  void trigger(Entry& entry, const dram::DramAddress& a,
               std::vector<dram::DramAddress>& victims);

  /// One refresh slot (issued REF or policy-skipped) of `rank` elapsed;
  /// resets the rank's tables once a whole window of slots has passed.
  void note_refresh_slot(std::uint32_t rank);

  dram::Geometry geo_;
  std::int64_t threshold_;
  std::size_t table_rows_;
  std::vector<Table> tables_;  ///< Indexed by flat (rank, bank).
  /// Per rank: refresh slots seen (issued + skipped), for window resets.
  std::vector<std::int64_t> slots_seen_;
};

}  // namespace easydram::smc::mitigation
