#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "dram/geometry.hpp"
#include "dram/types.hpp"

namespace easydram::smc::mitigation {

/// Aggregate statistics of one mitigator instance (one memory channel).
struct MitigationStats {
  std::int64_t acts_observed = 0;       ///< ACT commands fed to the policy.
  std::int64_t triggers = 0;            ///< Decisions that selected victims.
  std::int64_t neighbor_refreshes = 0;  ///< Victim rows queued for refresh.
  std::int64_t window_resets = 0;       ///< Refresh-window state resets.
};

/// A RowHammer mitigation policy running inside the software memory
/// controller. The controller feeds it every ACT its command stream issues
/// (via smc::ActSink); the policy appends the victim rows it wants
/// refreshed to `victims`, and the controller injects one targeted-refresh
/// Bender program (ACT victim, tRAS restore, PRE) per victim right after
/// the batch that triggered it — charged to the emulated timeline like any
/// other controller work, which is exactly the overhead the
/// mitigation_overhead scenario measures.
///
/// Policies must be deterministic functions of (construction config,
/// observed command stream): the scenario runner relies on bit-identical
/// results at any --threads value.
class RowHammerMitigator {
 public:
  virtual ~RowHammerMitigator() = default;

  /// One observed row activation. Mitigation-injected refreshes are NOT
  /// observed (the controller suppresses them), matching the usual hardware
  /// formulation where the mitigation unit watches demand traffic.
  virtual void on_activate(const dram::DramAddress& a,
                           std::vector<dram::DramAddress>& victims) = 0;

  /// One periodic auto-refresh (REF) issued to `rank`. Policies that reset
  /// per-refresh-window state (Graphene) hook this; stateless policies
  /// (PARA) ignore it.
  virtual void on_refresh(std::uint32_t rank) = 0;

  /// One refresh slot of `rank` a retention-aware refresh policy elected
  /// to skip (see smc::RefreshPolicy). No REF reached the device, but the
  /// slot still marks one tREFI of wall time — policies whose window
  /// state models the *retention window* (Graphene) must count it, or a
  /// skipping regime would stretch their windows by the skip ratio.
  /// Default no-op: never called under the all-rows regime.
  virtual void on_refresh_skipped(std::uint32_t /*rank*/) {}

  virtual std::string_view name() const = 0;

  const MitigationStats& stats() const { return stats_; }

 protected:
  MitigationStats stats_;
};

/// The shipped policy family.
enum class MitigationKind : std::uint8_t {
  kNone,
  kPara,      ///< Probabilistic adjacent-row activation (Kim+, ISCA'14).
  kGraphene,  ///< Misra-Gries top-k counter tracker (Park+, MICRO'20 style).
};

std::string_view to_string(MitigationKind kind);
std::optional<MitigationKind> parse_mitigation(std::string_view name);

/// Configuration shared by the policy family (sys::SystemConfig carries one).
struct MitigationConfig {
  MitigationKind kind = MitigationKind::kNone;

  /// PARA: per-ACT probability of refreshing one adjacent row. The default
  /// bounds worst-case exposure around a few hundred activations — far
  /// under contemporary HCfirst thresholds — at ~1.6% extra activations.
  double para_probability = 1.0 / 64.0;
  /// PARA RNG stream seed; mixed with the channel index so channels draw
  /// independent streams. Seeded from the scenario RNG, never from time.
  std::uint64_t seed = 0x0DDC0FFEEULL;

  /// Graphene: estimated activation count at which an aggressor's
  /// neighbors are refreshed (and its counter re-armed). Worst-case victim
  /// exposure is ~2x this (a victim flanked by two aggressors triggering
  /// out of phase); real HCfirst thresholds sit orders of magnitude above.
  std::int64_t graphene_threshold = 128;
  /// Graphene: tracked (row, counter) entries per bank. The Misra-Gries
  /// detection guarantee only covers attacks with at most this many
  /// aggressor rows per bank (a wider round-robin keeps every aggressor
  /// below the tracking floor — the real proposal sizes k to
  /// window-activations/threshold for exactly this reason); 32 covers
  /// many-sided patterns far beyond the shipped workload family at 384
  /// bytes per bank.
  std::size_t graphene_table_rows = 32;
};

/// Builds the configured policy for one channel (nullptr for kNone).
std::unique_ptr<RowHammerMitigator> make_mitigator(const MitigationConfig& cfg,
                                                   const dram::Geometry& geo,
                                                   std::uint32_t channel);

}  // namespace easydram::smc::mitigation
