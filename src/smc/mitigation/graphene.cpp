#include "smc/mitigation/graphene.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace easydram::smc::mitigation {

GrapheneMitigator::GrapheneMitigator(const MitigationConfig& cfg,
                                     const dram::Geometry& geo)
    : geo_(geo),
      threshold_(cfg.graphene_threshold),
      table_rows_(cfg.graphene_table_rows),
      tables_(geo.banks_per_channel()),
      slots_seen_(geo.ranks_per_channel, 0) {
  EASYDRAM_EXPECTS(threshold_ > 0);
  EASYDRAM_EXPECTS(table_rows_ > 0);
}

void GrapheneMitigator::trigger(Entry& entry, const dram::DramAddress& a,
                                std::vector<dram::DramAddress>& victims) {
  const dram::Geometry::NeighborRows n = geo_.neighbor_rows(entry.row);
  for (std::uint32_t i = 0; i < n.count; ++i) {
    dram::DramAddress victim = a;
    victim.row = n.rows[i];
    victim.col = 0;
    victims.push_back(victim);
    ++stats_.neighbor_refreshes;
  }
  ++stats_.triggers;
  // Re-arm: the refreshed neighbors can absorb another full threshold's
  // worth of disturbance from this aggressor before the next trigger.
  entry.armed_at = entry.count;
}

void GrapheneMitigator::on_activate(const dram::DramAddress& a,
                                    std::vector<dram::DramAddress>& victims) {
  ++stats_.acts_observed;
  Table& t = tables_[geo_.flat_bank(a.rank, a.bank)];

  for (Entry& e : t.entries) {
    if (e.row == a.row) {
      if (++e.count - e.armed_at >= threshold_) trigger(e, a, victims);
      return;
    }
  }
  if (t.entries.size() < table_rows_) {
    // A fresh entry starts at spill + 1: the row may have been charged to
    // the spillover counter before earning a slot (Misra-Gries
    // overestimates, never underestimates a tracked row). It arms at the
    // spill floor — everything below that is indistinguishable noise.
    t.entries.push_back(Entry{a.row, t.spill + 1, t.spill});
    if (t.entries.back().count - t.entries.back().armed_at >= threshold_) {
      trigger(t.entries.back(), a, victims);
    }
    return;
  }
  // Table full: charge the spillover counter; once it overtakes the
  // smallest entry, that entry's row can no longer be distinguished from
  // the untracked mass — adopt the new row in its place, armed at the
  // floor (an adopted row must earn a full threshold of further
  // activations before it can trigger).
  ++t.spill;
  auto min_it = std::min_element(
      t.entries.begin(), t.entries.end(),
      [](const Entry& x, const Entry& y) { return x.count < y.count; });
  if (t.spill > min_it->count) {
    min_it->row = a.row;
    // spill + 1, like insertion: the floor plus the ACT that just
    // happened (counts must never underestimate a tracked row).
    min_it->count = t.spill + 1;
    min_it->armed_at = t.spill;
  }
}

void GrapheneMitigator::note_refresh_slot(std::uint32_t rank) {
  EASYDRAM_EXPECTS(rank < slots_seen_.size());
  // Counters estimate activations per retention window: reset when the
  // rank's refresh-slot sequence completes one (refresh_window_refs slots
  // = tREFW of wall time), not on every tREFI tick — a tREFI window is
  // far too short for any threshold the policy would realistically use.
  // Slots, not issued REFs: under a retention-aware skipping policy the
  // issued-REF count advances slower than the wall clock, and a window
  // keyed off it would stretch by the skip ratio.
  if (++slots_seen_[rank] % geo_.refresh_window_refs != 0) return;
  for (std::uint32_t bank = 0; bank < geo_.num_banks(); ++bank) {
    Table& t = tables_[geo_.flat_bank(rank, bank)];
    t.entries.clear();
    t.spill = 0;
  }
  ++stats_.window_resets;
}

void GrapheneMitigator::on_refresh(std::uint32_t rank) {
  note_refresh_slot(rank);
}

void GrapheneMitigator::on_refresh_skipped(std::uint32_t rank) {
  note_refresh_slot(rank);
}

std::int64_t GrapheneMitigator::tracked_count(std::uint32_t bank,
                                              std::uint32_t row,
                                              std::uint32_t rank) const {
  const Table& t = tables_[geo_.flat_bank(rank, bank)];
  for (const Entry& e : t.entries) {
    if (e.row == row) return e.count;
  }
  return 0;
}

}  // namespace easydram::smc::mitigation
