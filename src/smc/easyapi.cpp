#include "smc/easyapi.hpp"

#include <algorithm>

#include "smc/ecc.hpp"
#include "smc/refresh_policy.hpp"

namespace easydram::smc {

EasyApi::EasyApi(tile::EasyTile& tile, dram::DramDevice& device,
                 const AddressMapper& mapper, timescale::TimeKeeper& keeper,
                 std::uint32_t channel)
    : tile_(&tile),
      device_(&device),
      mapper_(&mapper),
      keeper_(&keeper),
      channel_(channel),
      interpreter_(device),
      pending_row_(device.geometry().banks_per_channel()) {}

void EasyApi::sync_meter() {
  keeper_->account_smc_cycles(tile_->meter().take());
}

void EasyApi::charge_service(Cycles core_cycles) {
  if (setup_mode_) return;
  tile_->meter().charge(core_cycles);
  keeper_->account_mc_service_cycles(core_cycles);
}

void EasyApi::charge_background(Cycles core_cycles) {
  if (setup_mode_) return;
  tile_->meter().charge(core_cycles);
}

bool EasyApi::req_empty() {
  charge_background(tile_->meter().costs().poll_iteration);
  sync_meter();
  auto& fifo = tile_->incoming();
  if (fifo.empty()) return true;
  const tile::Request& head = fifo.front();
  return !keeper_->request_visible(head.issue_proc_cycle, head.arrival_wall);
}

tile::Request EasyApi::receive_request() {
  // The MC cannot work on a request before it exists: snap the MC
  // emulation point to the arrival tag first, then charge the transfer
  // work on top. This keeps the time-scaled and reference systems
  // cycle-aligned regardless of how far the MC point lagged while idle.
  if (keeper_->mode() != timescale::SystemMode::kNoTimeScaling &&
      !tile_->incoming().empty()) {
    auto& counters = keeper_->counters();
    const std::int64_t tag = tile_->incoming().front().issue_proc_cycle;
    if (tag > counters.mc()) counters.advance_mc(tag - counters.mc());
  }
  charge_service(tile_->meter().costs().receive_request);
  sync_meter();
  ++stats_.requests_received;
  return tile_->incoming().pop();
}

void EasyApi::enqueue_response(tile::Response r) {
  charge_service(tile_->meter().costs().enqueue_response);
  sync_meter();
  r.release_proc_cycle = keeper_->response_release_tag();
  tile_->outgoing().push(std::move(r));
  ++stats_.responses_sent;
}

void EasyApi::set_scheduling_state(bool critical) {
  charge_background(tile_->meter().costs().timescale_update);
  auto& counters = keeper_->counters();
  if (critical && !counters.critical()) {
    counters.enter_critical();
  } else if (!critical && counters.critical()) {
    counters.exit_critical();
  }
}

void EasyApi::note_service_start(std::int64_t issue_proc_cycle) {
  charge_service(tile_->meter().costs().timescale_update);
  if (keeper_->mode() != timescale::SystemMode::kNoTimeScaling) {
    auto& counters = keeper_->counters();
    if (issue_proc_cycle > counters.mc()) {
      counters.advance_mc(issue_proc_cycle - counters.mc());
    }
  }
  keeper_->account_schedule_decision();
}

std::optional<std::uint32_t> EasyApi::open_row(std::uint32_t bank,
                                               std::uint32_t rank) const {
  return effective_open_row(bank, rank);
}

std::optional<std::uint32_t> EasyApi::effective_open_row(std::uint32_t bank,
                                                         std::uint32_t rank) const {
  const std::uint32_t idx = flat(rank, bank);
  EASYDRAM_EXPECTS(idx < pending_row_.size());
  if (pending_row_[idx].has_value()) return *pending_row_[idx];
  return device_->open_row(bank, rank);
}

void EasyApi::set_pending_row(std::uint32_t bank, std::uint32_t rank,
                              std::optional<std::uint32_t> row) {
  pending_row_[flat(rank, bank)] = row;
}

dram::DramAddress EasyApi::get_addr_mapping(std::uint64_t paddr) {
  charge_service(tile_->meter().costs().address_map);
  return mapper_->to_dram(paddr);
}

void EasyApi::ddr_activate(std::uint32_t bank, std::uint32_t row,
                           std::uint32_t rank) {
  charge_service(tile_->meter().costs().command_push);
  const dram::DramAddress a{bank, row, 0, channel_, rank};
  program_.ddr(dram::Command::kAct, a);
  set_pending_row(bank, rank, row);
  if (act_sink_ != nullptr && !setup_mode_) act_sink_->on_act(a);
}

void EasyApi::ddr_precharge(std::uint32_t bank, std::uint32_t rank) {
  charge_service(tile_->meter().costs().command_push);
  program_.ddr(dram::Command::kPre, dram::DramAddress{bank, 0, 0, channel_, rank});
  set_pending_row(bank, rank, std::nullopt);
}

void EasyApi::ddr_read(const dram::DramAddress& a, bool capture) {
  charge_service(tile_->meter().costs().command_push);
  program_.ddr(dram::Command::kRead, a, capture);
}

void EasyApi::ddr_write(const dram::DramAddress& a,
                        std::span<const std::uint8_t> data) {
  charge_service(tile_->meter().costs().command_push);
  const std::uint32_t idx = program_.add_wdata(data);
  program_.ddr(dram::Command::kWrite, a, false, idx);
}

void EasyApi::ddr_refresh(std::uint32_t rank) {
  charge_service(tile_->meter().costs().command_push);
  program_.ddr(dram::Command::kRef, dram::DramAddress{0, 0, 0, channel_, rank});
  if (act_sink_ != nullptr) act_sink_->on_refresh(rank);
}

void EasyApi::ddr_exact(dram::Command cmd, const dram::DramAddress& a,
                        Picoseconds gap, bool capture) {
  charge_service(tile_->meter().costs().command_push);
  program_.ddr_exact(cmd, a, gap, capture);
  if (cmd == dram::Command::kAct) {
    set_pending_row(a.bank, a.rank, a.row);
    if (act_sink_ != nullptr && !setup_mode_) act_sink_->on_act(a);
  }
  if (cmd == dram::Command::kPre) set_pending_row(a.bank, a.rank, std::nullopt);
}

void EasyApi::ddr_wait(Picoseconds duration) {
  charge_service(tile_->meter().costs().command_push);
  program_.sleep_at_least(duration, device_->timing().tCK);
}

dram::DramAddress EasyApi::remap_retired(const dram::DramAddress& a) const {
  if (error_policy_ == nullptr) return a;
  dram::DramAddress r = a;
  // PPR-style remap: a retired row's traffic lands on its spare. Modeled
  // at zero marginal cost, like the in-DRAM fuse remap it stands in for.
  r.row = error_policy_->retirement().remap(flat(a.rank, a.bank), a.row);
  return r;
}

void EasyApi::read_sequence(const dram::DramAddress& addr) {
  const dram::DramAddress a = remap_retired(addr);
  const auto open = effective_open_row(a.bank, a.rank);
  if (!open || *open != a.row) {
    if (open) ddr_precharge(a.bank, a.rank);
    ddr_activate(a.bank, a.row, a.rank);
  }
  ddr_read(a, /*capture=*/true);
}

void EasyApi::read_sequence_reduced(const dram::DramAddress& addr,
                                    Picoseconds trcd) {
  const dram::DramAddress a = remap_retired(addr);
  const auto open = effective_open_row(a.bank, a.rank);
  if (open && *open == a.row) {
    // Row already open: tRCD does not apply; a plain read suffices.
    ddr_read(a, /*capture=*/true);
    return;
  }
  if (open) ddr_precharge(a.bank, a.rank);
  ddr_activate(a.bank, a.row, a.rank);
  // The read issues exactly `trcd` after the ACT, violating the nominal
  // parameter on purpose.
  charge_service(tile_->meter().costs().command_push);
  program_.ddr_exact(dram::Command::kRead, a, trcd, /*capture=*/true);
}

void EasyApi::write_sequence(const dram::DramAddress& addr,
                             std::span<const std::uint8_t> data) {
  const dram::DramAddress a = remap_retired(addr);
  const auto open = effective_open_row(a.bank, a.rank);
  if (!open || *open != a.row) {
    if (open) ddr_precharge(a.bank, a.rank);
    ddr_activate(a.bank, a.row, a.rank);
  }
  ddr_write(a, data);
}

void EasyApi::rowclone(std::uint32_t bank, std::uint32_t src_row,
                       std::uint32_t dst_row, std::uint32_t rank) {
  close_row(bank, rank);
  const Picoseconds two_tck = device_->timing().tCK * 2;
  ddr_activate(bank, src_row, rank);
  // Early precharge and immediate re-activation: the FPM RowClone pattern.
  ddr_exact(dram::Command::kPre, dram::DramAddress{bank, 0, 0, channel_, rank},
            two_tck);
  ddr_exact(dram::Command::kAct,
            dram::DramAddress{bank, dst_row, 0, channel_, rank}, two_tck);
  // Let the destination row fully restore, then close the bank.
  ddr_wait(device_->timing().tRAS);
  ddr_precharge(bank, rank);
}

void EasyApi::close_row(std::uint32_t bank, std::uint32_t rank) {
  if (effective_open_row(bank, rank)) ddr_precharge(bank, rank);
}

bender::ExecutionResult EasyApi::flush_commands(bool charge) {
  if (setup_mode_) charge = false;
  charge_service(tile_->meter().costs().batch_kickoff);
  if (charge) {
    sync_meter();
  } else {
    // Setup-phase batches (characterization, pair verification, catch-up
    // refreshes) discard their core-cycle cost so it cannot leak into a
    // later charged sync.
    tile_->meter().take();
  }
  // Fault manifestation is keyed to absolute emulated time, which the
  // device's command timeline does not track (it lags on sparse traffic).
  device_->set_fault_clock(keeper_->emulated_now());
  bender::ExecutionResult result = interpreter_.execute(program_, device_->now());
  ++stats_.batches_executed;
  stats_.commands_executed += result.commands_issued;
  stats_.rowclone_attempts += result.rowclone_attempts;
  stats_.rowclone_successes += result.rowclone_successes;
  stats_.violations_seen |= result.violations;
  if (charge) {
    keeper_->account_batch(result.elapsed);
    stats_.dram_busy += result.elapsed;
    charge_service(tile_->meter().costs().readback_line *
                   static_cast<std::int64_t>(result.readback.size()));
  }
  // Steal the readback buffer (no caller reads it off the returned
  // ExecutionResult; they consume lines through rdback_cacheline()).
  readback_ = std::move(result.readback);
  rdback_cursor_ = 0;
  program_.clear();
  for (auto& p : pending_row_) p.reset();
  return result;
}

bender::ReadbackEntry EasyApi::rdback_cacheline() {
  EASYDRAM_EXPECTS(!rdback_empty());
  return readback_[rdback_cursor_++];
}

void EasyApi::refresh_rank_if_due(std::uint32_t rank) {
  const dram::TimingParams& t = device_->timing();
  // Converge: charged refreshes advance the emulated timeline, which can
  // make one more refresh due; tRFC << tREFI guarantees termination
  // (skipped slots advance the slot count without advancing time, so they
  // strictly approach `due` too).
  for (int guard = 0; guard < 1'000'000; ++guard) {
    const Picoseconds now = keeper_->emulated_now();
    const std::int64_t due = device_->refreshes_due(now);
    const std::int64_t slot = device_->refresh_slots(rank);
    if (slot >= due) return;
    if (refresh_policy_ != nullptr && !refresh_policy_->should_issue(rank, slot)) {
      // Skipped slot: the round-robin position advances, nothing issues,
      // and no timeline is charged — the command-slot/energy saving the
      // RAIDR scenarios measure. The policy decision itself is treated as
      // free, like the hardware refresh counter it replaces.
      device_->skip_refresh(rank);
      ++stats_.refreshes_skipped;
      // Window-tracking observers (Graphene) still need the slot's tREFI
      // of retention-window time even though no REF issued.
      if (act_sink_ != nullptr) act_sink_->on_refresh_skipped(rank);
      // Patrol scrub rides the slot whether or not the REF issued — a
      // skipped stripe is exactly where a misbinned row decays, so scrub
      // coverage must compose with RAIDR's skipping.
      scrub_slot(rank, slot, now);
      continue;
    }
    const bool last = slot + 1 == due;
    // Only a refresh whose tRFC window overlaps "now" can delay current
    // requests; earlier catch-up refreshes overlapped compute phases and
    // run in setup mode (uncharged).
    const bool in_flight = last && (now.count % t.tREFI.count) < t.tRFC.count;
    EASYDRAM_EXPECTS(program_.empty());
    const bool was_setup = setup_mode_;
    if (!in_flight) setup_mode_ = true;
    for (std::uint32_t bank = 0; bank < device_->geometry().num_banks(); ++bank) {
      close_row(bank, rank);
    }
    ddr_refresh(rank);
    flush_commands(/*charge=*/in_flight);
    setup_mode_ = was_setup;
    ++stats_.refreshes_issued;
    scrub_slot(rank, slot, now);
  }
  EASYDRAM_EXPECTS(!"refresh catch-up failed to converge");
}

void EasyApi::scrub_slot(std::uint32_t rank, std::int64_t slot, Picoseconds now) {
  if (error_policy_ == nullptr) return;
  const std::int64_t before = stats_.scrub_reads;
  error_policy_->scrub_on_slot(rank, slot, now, *device_, stats_);
  const std::int64_t scrubbed = stats_.scrub_reads - before;
  if (scrubbed > 0) {
    // Scrub reads ride idle refresh-adjacent cycles: programmable-core
    // time only, never demand-request latency.
    charge_background(tile_->meter().costs().poll_iteration * scrubbed);
  }
}

void EasyApi::refresh_if_due() {
  for (std::uint32_t rank = 0; rank < device_->num_ranks(); ++rank) {
    refresh_rank_if_due(rank);
  }
}

}  // namespace easydram::smc
