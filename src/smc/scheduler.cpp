#include "smc/scheduler.hpp"

#include <algorithm>

namespace easydram::smc {

std::optional<std::size_t> FcfsScheduler::pick(const RequestTable& table,
                                               const BankStateView& /*banks*/,
                                               std::size_t& scanned_entries) {
  scanned_entries = table.empty() ? 0 : 1;
  if (table.empty()) return std::nullopt;
  std::size_t best = 0;
  for (std::size_t i = 1; i < table.size(); ++i) {
    ++scanned_entries;
    if (table.at(i).arrival_seq < table.at(best).arrival_seq) best = i;
  }
  return best;
}

namespace {

/// Oldest row-buffer-hit entry among those with arrival_seq < limit, else
/// the oldest such entry; kNoLimit disables the age cut.
constexpr std::uint64_t kNoLimit = ~0ull;

bool is_row_hit(const BankStateView& banks, const dram::DramAddress& a) {
  const auto open = banks.open_row(a);
  return open.has_value() && *open == a.row;
}

std::optional<std::size_t> frfcfs_pick_below(const RequestTable& table,
                                             const BankStateView& banks,
                                             std::uint64_t seq_limit) {
  std::optional<std::size_t> oldest_hit;
  std::optional<std::size_t> oldest;
  for (std::size_t i = 0; i < table.size(); ++i) {
    const TableEntry& e = table.at(i);
    if (e.arrival_seq >= seq_limit) continue;
    if (!oldest || e.arrival_seq < table.at(*oldest).arrival_seq) oldest = i;
    if (is_row_hit(banks, e.dram_addr) &&
        (!oldest_hit || e.arrival_seq < table.at(*oldest_hit).arrival_seq)) {
      oldest_hit = i;
    }
  }
  return oldest_hit ? oldest_hit : oldest;
}

}  // namespace

std::optional<std::size_t> FrfcfsScheduler::pick(const RequestTable& table,
                                                 const BankStateView& banks,
                                                 std::size_t& scanned_entries) {
  scanned_entries = table.size();
  if (table.empty()) return std::nullopt;

  std::optional<std::size_t> oldest_hit;
  std::size_t oldest = 0;
  for (std::size_t i = 0; i < table.size(); ++i) {
    const TableEntry& e = table.at(i);
    if (e.arrival_seq < table.at(oldest).arrival_seq) oldest = i;
    if (is_row_hit(banks, e.dram_addr) &&
        (!oldest_hit || e.arrival_seq < table.at(*oldest_hit).arrival_seq)) {
      oldest_hit = i;
    }
  }
  return oldest_hit ? *oldest_hit : oldest;
}

BatchScheduler::BatchScheduler(std::size_t batch_size) : batch_size_(batch_size) {
  EASYDRAM_EXPECTS(batch_size > 0);
}

std::optional<std::size_t> BatchScheduler::pick(const RequestTable& table,
                                                const BankStateView& banks,
                                                std::size_t& scanned_entries) {
  scanned_entries = table.size();
  if (table.empty()) return std::nullopt;

  // Serve FR-FCFS *within* the current batch; open a new batch only when
  // the current one is fully drained.
  auto in_batch = frfcfs_pick_below(table, banks, batch_boundary_);
  if (!in_batch) {
    // Current batch drained: the next batch covers the next batch_size_
    // arrivals starting from the oldest outstanding request.
    std::uint64_t oldest_seq = kNoLimit;
    for (std::size_t i = 0; i < table.size(); ++i) {
      oldest_seq = std::min(oldest_seq, table.at(i).arrival_seq);
    }
    batch_boundary_ = oldest_seq + batch_size_;
    in_batch = frfcfs_pick_below(table, banks, batch_boundary_);
  }
  return in_batch;
}

BlacklistScheduler::BlacklistScheduler(int streak_limit)
    : streak_limit_(streak_limit) {
  EASYDRAM_EXPECTS(streak_limit > 0);
}

std::optional<std::size_t> BlacklistScheduler::pick(const RequestTable& table,
                                                    const BankStateView& banks,
                                                    std::size_t& scanned_entries) {
  scanned_entries = table.size();
  if (table.empty()) return std::nullopt;

  std::optional<std::size_t> choice;
  if (streak_ < streak_limit_) {
    choice = frfcfs_pick_below(table, banks, kNoLimit);
  } else {
    // Blacklisted: break the streak with the oldest request.
    std::size_t oldest = 0;
    for (std::size_t i = 1; i < table.size(); ++i) {
      if (table.at(i).arrival_seq < table.at(oldest).arrival_seq) oldest = i;
    }
    choice = oldest;
  }

  const std::uint64_t row_key = dram::row_key(table.at(*choice).dram_addr);
  streak_ = row_key == last_row_key_ ? streak_ + 1 : 1;
  last_row_key_ = row_key;
  return choice;
}

}  // namespace easydram::smc
