#include "smc/scheduler.hpp"

namespace easydram::smc {

std::optional<std::size_t> FcfsScheduler::pick(const RequestTable& table,
                                               const BankStateView& /*banks*/,
                                               std::size_t& scanned_entries) {
  // The modeled SMC program walks its whole table to find the oldest
  // entry; the host gets it for free as the head of the arrival list.
  scanned_entries = table.size();
  if (table.empty()) return std::nullopt;
  return table.first();
}

namespace {

/// Oldest row-buffer-hit entry among those with arrival_seq < limit, else
/// the oldest such entry; kNoLimit disables the age cut.
constexpr std::uint64_t kNoLimit = ~0ull;

bool is_row_hit(const BankStateView& banks, const dram::DramAddress& a) {
  const auto open = banks.open_row(a);
  return open.has_value() && *open == a.row;
}

std::optional<std::size_t> frfcfs_pick_below(const RequestTable& table,
                                             const BankStateView& banks,
                                             std::uint64_t seq_limit) {
  // Traversal is oldest-first, so the first in-limit entry is the oldest
  // and the first row hit found is the oldest row hit; entries at or past
  // the limit form a suffix of the list and end the walk.
  std::optional<std::size_t> oldest;
  for (std::size_t s = table.first(); s != RequestTable::kNull;
       s = table.next(s)) {
    const TableEntry& e = table.at(s);
    if (e.arrival_seq >= seq_limit) break;
    if (!oldest) oldest = s;
    if (is_row_hit(banks, e.dram_addr)) return s;
  }
  return oldest;
}

}  // namespace

std::optional<std::size_t> FrfcfsScheduler::pick(const RequestTable& table,
                                                 const BankStateView& banks,
                                                 std::size_t& scanned_entries) {
  scanned_entries = table.size();
  if (table.empty()) return std::nullopt;
  return frfcfs_pick_below(table, banks, kNoLimit);
}

BatchScheduler::BatchScheduler(std::size_t batch_size) : batch_size_(batch_size) {
  EASYDRAM_EXPECTS(batch_size > 0);
}

std::optional<std::size_t> BatchScheduler::pick(const RequestTable& table,
                                                const BankStateView& banks,
                                                std::size_t& scanned_entries) {
  scanned_entries = table.size();
  if (table.empty()) return std::nullopt;

  // Serve FR-FCFS *within* the current batch; open a new batch only when
  // the current one is fully drained.
  auto in_batch = frfcfs_pick_below(table, banks, batch_boundary_);
  if (!in_batch) {
    // Current batch drained: the next batch covers the next batch_size_
    // arrivals starting from the oldest outstanding request.
    batch_boundary_ = table.at(table.first()).arrival_seq + batch_size_;
    in_batch = frfcfs_pick_below(table, banks, batch_boundary_);
  }
  return in_batch;
}

BlacklistScheduler::BlacklistScheduler(int streak_limit)
    : streak_limit_(streak_limit) {
  EASYDRAM_EXPECTS(streak_limit > 0);
}

std::optional<std::size_t> BlacklistScheduler::pick(const RequestTable& table,
                                                    const BankStateView& banks,
                                                    std::size_t& scanned_entries) {
  scanned_entries = table.size();
  if (table.empty()) return std::nullopt;

  std::optional<std::size_t> choice;
  if (streak_ < streak_limit_) {
    choice = frfcfs_pick_below(table, banks, kNoLimit);
  } else {
    // Blacklisted: break the streak with the oldest request.
    choice = table.first();
  }

  const std::uint64_t row_key = dram::row_key(table.at(*choice).dram_addr);
  streak_ = row_key == last_row_key_ ? streak_ + 1 : 1;
  last_row_key_ = row_key;
  return choice;
}

}  // namespace easydram::smc
