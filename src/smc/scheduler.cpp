#include "smc/scheduler.hpp"

#include <algorithm>

namespace easydram::smc {

std::optional<std::size_t> FcfsScheduler::pick(const PickContext& ctx,
                                               std::size_t& scanned_entries) {
  // The modeled SMC program walks its whole table to find the oldest
  // entry; the host gets it for free as the head of the arrival list.
  scanned_entries = ctx.table.size();
  if (ctx.table.empty()) return std::nullopt;
  return ctx.table.first();
}

namespace {

/// Oldest row-buffer-hit entry among those with arrival_seq < limit, else
/// the oldest such entry; kNoLimit disables the age cut.
constexpr std::uint64_t kNoLimit = ~0ull;

bool is_row_hit(const BankStateView& banks, const dram::DramAddress& a) {
  const auto open = banks.open_row(a);
  return open.has_value() && *open == a.row;
}

std::optional<std::size_t> frfcfs_pick_below(const RequestTable& table,
                                             const BankStateView& banks,
                                             std::uint64_t seq_limit) {
  // Traversal is oldest-first, so the first in-limit entry is the oldest
  // and the first row hit found is the oldest row hit; entries at or past
  // the limit form a suffix of the list and end the walk.
  std::optional<std::size_t> oldest;
  for (std::size_t s = table.first(); s != RequestTable::kNull;
       s = table.next(s)) {
    const TableEntry& e = table.at(s);
    if (e.arrival_seq >= seq_limit) break;
    if (!oldest) oldest = s;
    if (is_row_hit(banks, e.dram_addr)) return s;
  }
  return oldest;
}

/// FR-FCFS restricted to entries whose stream satisfies `pred`: the oldest
/// row hit among them, else the oldest; nullopt when no entry qualifies.
template <typename StreamPredicate>
std::optional<std::size_t> frfcfs_pick_if(const RequestTable& table,
                                          const BankStateView& banks,
                                          StreamPredicate pred) {
  std::optional<std::size_t> oldest;
  for (std::size_t s = table.first(); s != RequestTable::kNull;
       s = table.next(s)) {
    const TableEntry& e = table.at(s);
    if (!pred(e.request.stream_id)) continue;
    if (!oldest) oldest = s;
    if (is_row_hit(banks, e.dram_addr)) return s;
  }
  return oldest;
}

/// Distinct stream ids outstanding in `table`, ascending. The table is
/// small (tens of slots), so a sorted scratch vector beats any set.
std::vector<std::uint32_t> distinct_streams(const RequestTable& table) {
  std::vector<std::uint32_t> streams;
  for (std::size_t s = table.first(); s != RequestTable::kNull;
       s = table.next(s)) {
    streams.push_back(table.at(s).request.stream_id);
  }
  std::sort(streams.begin(), streams.end());
  streams.erase(std::unique(streams.begin(), streams.end()), streams.end());
  return streams;
}

}  // namespace

std::optional<std::size_t> FrfcfsScheduler::pick(const PickContext& ctx,
                                                 std::size_t& scanned_entries) {
  scanned_entries = ctx.table.size();
  if (ctx.table.empty()) return std::nullopt;
  return frfcfs_pick_below(ctx.table, ctx.banks, kNoLimit);
}

BatchScheduler::BatchScheduler(std::size_t batch_size) : batch_size_(batch_size) {
  EASYDRAM_EXPECTS(batch_size > 0);
}

std::optional<std::size_t> BatchScheduler::pick(const PickContext& ctx,
                                                std::size_t& scanned_entries) {
  const RequestTable& table = ctx.table;
  scanned_entries = table.size();
  if (table.empty()) return std::nullopt;

  // Serve FR-FCFS *within* the current batch; open a new batch only when
  // the current one is fully drained.
  auto in_batch = frfcfs_pick_below(table, ctx.banks, batch_boundary_);
  if (!in_batch) {
    // Current batch drained: the next batch covers the next batch_size_
    // arrivals starting from the oldest outstanding request.
    batch_boundary_ = table.at(table.first()).arrival_seq + batch_size_;
    in_batch = frfcfs_pick_below(table, ctx.banks, batch_boundary_);
  }
  return in_batch;
}

BlacklistScheduler::BlacklistScheduler(int streak_limit,
                                       std::uint64_t clear_interval)
    : streak_limit_(streak_limit), clear_interval_(clear_interval) {
  EASYDRAM_EXPECTS(streak_limit > 0);
  EASYDRAM_EXPECTS(clear_interval > 0);
}

std::optional<std::size_t> BlacklistScheduler::pick(
    const PickContext& ctx, std::size_t& scanned_entries) {
  scanned_entries = ctx.table.size();
  if (ctx.table.empty()) return std::nullopt;

  // Per-stream blacklisting needs at least two streams to arbitrate
  // between; a single-stream table uses the original bounded-row-streak
  // simplification so legacy single-source traffic sees identical
  // decisions.
  if (distinct_streams(ctx.table).size() >= 2) return pick_multi_stream(ctx);
  return pick_single_source(ctx);
}

std::optional<std::size_t> BlacklistScheduler::pick_single_source(
    const PickContext& ctx) {
  std::optional<std::size_t> choice;
  if (row_streak_ < streak_limit_) {
    choice = frfcfs_pick_below(ctx.table, ctx.banks, kNoLimit);
  } else {
    // Streak limit reached: break it with the oldest request.
    choice = ctx.table.first();
  }

  const std::uint64_t row_key = dram::row_key(ctx.table.at(*choice).dram_addr);
  row_streak_ = has_last_row_ && row_key == last_row_key_ ? row_streak_ + 1 : 1;
  has_last_row_ = true;
  last_row_key_ = row_key;
  return choice;
}

std::optional<std::size_t> BlacklistScheduler::pick_multi_stream(
    const PickContext& ctx) {
  // Clearing interval: periodically forgive everyone so a blacklisted
  // stream is not starved forever (counted in picks, not cycles, to stay
  // invariant under time scaling).
  if (picks_since_clear_ >= clear_interval_) {
    std::fill(blacklist_.begin(), blacklist_.end(), false);
    picks_since_clear_ = 0;
    stream_streak_ = 0;
    has_last_stream_ = false;
  }

  // Non-blacklisted requests outrank blacklisted ones; within a rank class
  // FR-FCFS applies. When every outstanding stream is blacklisted there is
  // nothing to protect, so plain FR-FCFS decides.
  auto choice = frfcfs_pick_if(ctx.table, ctx.banks, [this](std::uint32_t s) {
    return !blacklisted(s);
  });
  if (!choice) choice = frfcfs_pick_below(ctx.table, ctx.banks, kNoLimit);

  const std::uint32_t stream = ctx.table.at(*choice).request.stream_id;
  stream_streak_ =
      has_last_stream_ && stream == last_stream_ ? stream_streak_ + 1 : 1;
  has_last_stream_ = true;
  last_stream_ = stream;
  if (stream_streak_ >= streak_limit_) {
    if (stream >= blacklist_.size()) blacklist_.resize(stream + 1, false);
    blacklist_[stream] = true;
    stream_streak_ = 0;
    has_last_stream_ = false;
  }
  ++picks_since_clear_;
  return choice;
}

std::optional<std::size_t> AtlasScheduler::pick(const PickContext& ctx,
                                                std::size_t& scanned_entries) {
  scanned_entries = ctx.table.size();
  if (ctx.table.empty()) return std::nullopt;
  if (ctx.streams == nullptr) {
    return frfcfs_pick_below(ctx.table, ctx.banks, kNoLimit);
  }

  // Rank outstanding streams by long-term attained service, least first
  // (ties to the lower stream id), and serve FR-FCFS within the winner.
  const std::vector<std::uint32_t> present = distinct_streams(ctx.table);
  std::uint32_t best = present.front();
  std::uint64_t best_service = ctx.streams->attained_service(best);
  for (const std::uint32_t s : present) {
    const std::uint64_t service = ctx.streams->attained_service(s);
    if (service < best_service) {
      best = s;
      best_service = service;
    }
  }
  return frfcfs_pick_if(ctx.table, ctx.banks,
                        [best](std::uint32_t s) { return s == best; });
}

TcmScheduler::TcmScheduler(std::uint64_t window_size)
    : window_size_(window_size) {
  EASYDRAM_EXPECTS(window_size > 0);
}

void TcmScheduler::roll_window() {
  // Classify by served share over the closing window: streams above the
  // fair share (window / active streams) join the bandwidth-heavy cluster,
  // everyone else is latency-sensitive. A lone stream can never exceed its
  // own fair share, so single-stream traffic stays latency-classified and
  // the policy degenerates to plain FR-FCFS.
  std::uint64_t active = 0;
  for (const std::uint64_t served : served_in_window_) {
    if (served > 0) ++active;
  }
  bandwidth_.assign(served_in_window_.size(), false);
  if (active > 0) {
    const std::uint64_t fair_share = picks_in_window_ / active;
    for (std::size_t s = 0; s < served_in_window_.size(); ++s) {
      bandwidth_[s] = served_in_window_[s] > fair_share;
    }
  }
  std::fill(served_in_window_.begin(), served_in_window_.end(), 0);
  picks_in_window_ = 0;
  ++shuffle_offset_;  // Rotate which bandwidth hog goes first next window.
}

std::optional<std::size_t> TcmScheduler::pick(const PickContext& ctx,
                                              std::size_t& scanned_entries) {
  scanned_entries = ctx.table.size();
  if (ctx.table.empty()) return std::nullopt;
  if (picks_in_window_ >= window_size_) roll_window();

  // Latency cluster strictly first.
  auto choice = frfcfs_pick_if(ctx.table, ctx.banks, [this](std::uint32_t s) {
    return !bandwidth_cluster(s);
  });
  if (!choice) {
    // Only bandwidth-heavy streams outstanding: the shuffle offset picks
    // which of them owns top priority this window.
    const std::vector<std::uint32_t> present = distinct_streams(ctx.table);
    const std::uint32_t first =
        present[static_cast<std::size_t>(shuffle_offset_ % present.size())];
    choice = frfcfs_pick_if(ctx.table, ctx.banks,
                            [first](std::uint32_t s) { return s == first; });
    if (!choice) choice = frfcfs_pick_below(ctx.table, ctx.banks, kNoLimit);
  }

  const std::uint32_t stream = ctx.table.at(*choice).request.stream_id;
  if (stream >= served_in_window_.size()) {
    served_in_window_.resize(stream + 1, 0);
  }
  ++served_in_window_[stream];
  ++picks_in_window_;
  return choice;
}

std::string_view to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kAuto: return "auto";
    case SchedulerKind::kFcfs: return "fcfs";
    case SchedulerKind::kFrfcfs: return "frfcfs";
    case SchedulerKind::kParbs: return "parbs";
    case SchedulerKind::kBliss: return "bliss";
    case SchedulerKind::kAtlas: return "atlas";
    case SchedulerKind::kTcm: return "tcm";
  }
  return "auto";
}

std::optional<SchedulerKind> parse_scheduler(std::string_view token) {
  for (const SchedulerKind kind :
       {SchedulerKind::kAuto, SchedulerKind::kFcfs, SchedulerKind::kFrfcfs,
        SchedulerKind::kParbs, SchedulerKind::kBliss, SchedulerKind::kAtlas,
        SchedulerKind::kTcm}) {
    if (token == to_string(kind)) return kind;
  }
  return std::nullopt;
}

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFcfs: return std::make_unique<FcfsScheduler>();
    case SchedulerKind::kAuto:
    case SchedulerKind::kFrfcfs: return std::make_unique<FrfcfsScheduler>();
    case SchedulerKind::kParbs: return std::make_unique<BatchScheduler>();
    case SchedulerKind::kBliss: return std::make_unique<BlacklistScheduler>();
    case SchedulerKind::kAtlas: return std::make_unique<AtlasScheduler>();
    case SchedulerKind::kTcm: return std::make_unique<TcmScheduler>();
  }
  return std::make_unique<FrfcfsScheduler>();
}

}  // namespace easydram::smc
