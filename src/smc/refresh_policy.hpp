#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "common/units.hpp"
#include "dram/geometry.hpp"

namespace easydram::smc {

/// Per-(rank, stripe) refresh-interval multipliers: stripe s of rank r must
/// be refreshed at least every `multiplier(r, s)` retention windows. A
/// multiplier of 1 is the JEDEC default (refresh every window); RAIDR bins
/// use powers of two (1, 2, 4 ~ 64/128/256 ms at the nominal window).
/// Built by profile_retention_bins and consumed by RaidrRefreshPolicy.
struct RaidrBinning {
  std::uint32_t window_refs = 0;  ///< Stripes per rank (one REF slot each).
  std::uint32_t ranks = 0;
  /// Indexed [rank * window_refs + stripe].
  std::vector<std::uint8_t> multipliers;

  std::uint32_t multiplier(std::uint32_t rank, std::uint32_t stripe) const {
    return multipliers[static_cast<std::size_t>(rank) * window_refs + stripe];
  }
};

/// Histogram of a binning, for reporting: how many stripes landed in each
/// multiplier bin, and the steady-state fraction of REF slots that issue.
struct RaidrBinStats {
  std::int64_t stripes_total = 0;
  std::int64_t stripes_x1 = 0;  ///< Multiplier 1 (refresh every window).
  std::int64_t stripes_x2 = 0;
  std::int64_t stripes_x4 = 0;
  std::int64_t rows_profiled = 0;
  /// Steady-state fraction of refresh slots that issue a REF: the mean of
  /// 1/multiplier over stripes. 1.0 for an all-x1 binning; the REF
  /// *reduction* is 1 - issue_fraction.
  double issue_fraction = 1.0;
};

/// Per-channel refresh-skipping decision, consulted by EasyApi once per
/// refresh slot (one per tREFI per rank). Implementations must be
/// deterministic pure functions of (construction state, rank, slot): the
/// scenario runner relies on bit-identical results at any --threads value,
/// and a slot's decision may be re-evaluated after a controller rebuild.
/// Instances are owned by the system layer and must outlive the EasyApi
/// they are installed on; they are not thread-safe and belong to their
/// channel's (single-threaded) controller loop.
class RefreshPolicy {
 public:
  virtual ~RefreshPolicy() = default;

  /// Whether REF slot `slot` of `rank` issues a real REF (true) or is
  /// skipped (false). `slot` counts every refresh opportunity since
  /// power-on — issued or skipped — so `slot % window_refs` is the
  /// round-robin stripe the REF would target.
  virtual bool should_issue(std::uint32_t rank, std::int64_t slot) = 0;

  virtual std::string_view name() const = 0;
};

/// The default regime: every slot issues. Behaviour (and every timeline)
/// is bit-identical to running with no policy installed at all.
class AllRowsRefreshPolicy final : public RefreshPolicy {
 public:
  bool should_issue(std::uint32_t, std::int64_t) override { return true; }
  std::string_view name() const override { return "all_rows"; }
};

/// RAIDR-style retention-aware refresh (Liu+, ISCA'12): stripes binned by
/// their weakest row's retention time are refreshed every 1, 2, or 4
/// windows instead of every window. The schedule phase-spreads each bin —
/// stripe s with multiplier m issues on rounds congruent to s mod m — so
/// skipping starts in round 0 (steady-state savings from the first slot)
/// and each stripe still gets its first REF within m windows of power-on,
/// inside its retention budget.
class RaidrRefreshPolicy final : public RefreshPolicy {
 public:
  explicit RaidrRefreshPolicy(RaidrBinning binning);

  bool should_issue(std::uint32_t rank, std::int64_t slot) override;
  std::string_view name() const override { return "raidr"; }

  const RaidrBinning& binning() const { return binning_; }

 private:
  RaidrBinning binning_;
};

/// The shipped refresh-policy family (sys::SystemConfig selects one).
enum class RefreshKind : std::uint8_t {
  kAllRows,  ///< JEDEC default: one REF per tREFI per rank, no skipping.
  kRaidr,    ///< Retention-aware skipping over profiled bins.
};

std::string_view to_string(RefreshKind kind);
std::optional<RefreshKind> parse_refresh(std::string_view name);

}  // namespace easydram::smc
