#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "bender/interpreter.hpp"
#include "bender/program.hpp"
#include "common/units.hpp"
#include "dram/device.hpp"
#include "smc/addr_map.hpp"
#include "smc/bank_state.hpp"
#include "tile/request.hpp"
#include "tile/tile.hpp"
#include "timescale/timekeeper.hpp"

namespace easydram::smc {

class RefreshPolicy;
class ErrorPolicy;

/// Aggregate statistics of one EasyAPI instance.
struct ApiStats {
  std::int64_t requests_received = 0;
  std::int64_t responses_sent = 0;
  std::int64_t batches_executed = 0;
  std::int64_t commands_executed = 0;
  std::int64_t rowclone_attempts = 0;
  std::int64_t rowclone_successes = 0;
  /// REF commands actually sent to the device by refresh_if_due().
  std::int64_t refreshes_issued = 0;
  /// Refresh slots the installed RefreshPolicy elected to skip (0 under
  /// the default all-rows regime). refreshes_issued + refreshes_skipped
  /// equals the refresh slots the pacing machinery consumed.
  std::int64_t refreshes_skipped = 0;
  std::uint32_t violations_seen = 0;
  /// Total DRAM-interface busy time of timeline-charged batches.
  Picoseconds dram_busy{};

  // --- Error pipeline (all zero unless SystemConfig::ecc is enabled) -------
  /// Corrected single-bit errors (CE), demand reads + patrol scrub.
  std::int64_t ecc_corrected = 0;
  /// Detected-uncorrectable errors (UE) after the retry budget.
  std::int64_t ecc_uncorrectable = 0;
  /// Lines read by the patrol scrubber.
  std::int64_t scrub_reads = 0;
  /// Bounded re-reads issued after a demand UE or an unreliable read.
  std::int64_t retries_issued = 0;
  /// Rows retired into the PPR-style spare-row remap.
  std::int64_t rows_retired = 0;
  /// Reads acknowledged ok whose data mismatched the device's ground
  /// truth — the silent-corruption count the pipeline exists to zero.
  std::int64_t ecc_escaped = 0;

  // --- Scheduler counters (host-side bookkeeping, never charged) -----------
  /// Scheduling decisions the policy made (one per served table pick).
  std::int64_t sched_picks = 0;
  /// Picks whose target bank held the requested row open.
  std::int64_t sched_row_hits = 0;
  /// Picks whose target bank held a *different* row open (a precharged
  /// bank counts as neither hit nor conflict).
  std::int64_t sched_row_conflicts = 0;
  /// Table entries examined across all decisions (the quantity the cycle
  /// meter charges schedule_scan_entry for).
  std::int64_t sched_entries_scanned = 0;
};

/// Observer of the DDR command stream an EasyApi instance builds. The
/// RowHammer mitigation path hangs off this: the controller registers
/// itself as the sink, sees every ACT the batch builder queues (plus every
/// periodic REF), and injects targeted neighbor refreshes in response.
/// Setup-mode batches (characterization, catch-up refreshes) never fire
/// `on_act` — offline phases are not demand traffic. `on_refresh` fires
/// for every queued REF, charged or not, because refresh-window bookkeeping
/// tracks the device's real refresh sequence.
class ActSink {
 public:
  virtual void on_act(const dram::DramAddress& a) = 0;
  virtual void on_refresh(std::uint32_t rank) = 0;
  /// A refresh slot the installed RefreshPolicy skipped (refresh_if_due
  /// consumed it without queueing a REF). Lets window-tracking observers
  /// keep retention-window time even though no command issued; defaults
  /// to a no-op and never fires under the all-rows regime.
  virtual void on_refresh_skipped(std::uint32_t /*rank*/) {}

 protected:
  ~ActSink() = default;  ///< Never owned/deleted through the interface.
};

/// EasyAPI (§5.2, Table 2): the high-level C++ interface software memory
/// controllers program against. It wraps the tile's hardware FIFOs, the
/// DRAM Bender command buffer, the readback buffer, and the time-scaling
/// registers, charging the programmable core's cycle costs for every
/// operation so the No-Time-Scaling configuration faithfully suffers the
/// software controller's slowness.
///
/// One EasyApi instance fronts one memory *channel* (one device, one tile,
/// one controller); multi-channel systems own one per channel. Bank-level
/// operations take the bank index within a rank plus a trailing rank
/// argument that defaults to 0, so single-rank controller code is unchanged.
/// EasyApi implements BankStateView so scheduling policies can query open
/// rows through a plain virtual call with no closure indirection.
///
/// Units: `core_cycles` arguments are programmable-core cycles (the
/// EasyTile's 100 MHz clock); `Picoseconds` arguments are device-timeline
/// durations; `issue_proc_cycle` tags are emulated-processor cycles.
/// Thread-safety: none — an EasyApi belongs to its channel's
/// (single-threaded) controller loop, like everything it fronts.
class EasyApi final : public BankStateView {
 public:
  EasyApi(tile::EasyTile& tile, dram::DramDevice& device,
          const AddressMapper& mapper, timescale::TimeKeeper& keeper,
          std::uint32_t channel = 0);

  /// Channel this instance fronts (tags the addresses it builds).
  std::uint32_t channel() const { return channel_; }

  // --- Hardware abstraction library (Table 2, top) -------------------------

  /// True when no *visible* request is pending. Under time scaling a request
  /// becomes visible once the MC emulation point reaches its issue tag
  /// (footnote 2); polling charges one loop-iteration cost.
  bool req_empty();

  /// Moves the request at the head of the hardware FIFO to the scratchpad.
  tile::Request receive_request();

  /// Tags `r` with the release cycle (Fig. 5 step 10) and pushes it to the
  /// outgoing FIFO.
  void enqueue_response(tile::Response r);

  /// Critical-mode register (Table 2: set_scheduling_state).
  void set_scheduling_state(bool critical);

  /// Marks the start of servicing the request tagged `issue_proc_cycle`:
  /// the MC emulation point snaps forward to the tag (service cannot begin
  /// before the request exists) and one hardware-MC scheduling latency is
  /// charged to the emulated timeline.
  void note_service_start(std::int64_t issue_proc_cycle);

  /// Charges `core_cycles` of bespoke request-servicing controller logic
  /// (technique code): accrues on the programmable core AND, under time
  /// scaling, on the emulated MC timeline.
  void charge(Cycles core_cycles) { charge_service(core_cycles); }

  /// Charges controller work that overlaps DRAM Bender execution (e.g. the
  /// Bloom-filter lookup for the *next* row activation performed while the
  /// previous batch replays): programmable-core time only, never request
  /// latency.
  void charge_overlapped(Cycles core_cycles) {
    charge_background(core_cycles);
  }

  /// Registers (or clears, with nullptr) the command-stream observer. The
  /// sink must outlive this EasyApi or be cleared before destruction.
  void set_act_sink(ActSink* sink) { act_sink_ = sink; }

  /// Installs (or clears, with nullptr) the refresh-skipping policy
  /// consulted once per refresh slot by refresh_if_due(). Null behaves
  /// exactly like AllRowsRefreshPolicy — every slot issues — at zero cost
  /// on the pacing path. Non-owning: the policy (owned per-channel by the
  /// system layer) must outlive this EasyApi or be cleared first.
  void set_refresh_policy(RefreshPolicy* policy) { refresh_policy_ = policy; }
  RefreshPolicy* refresh_policy() const { return refresh_policy_; }

  /// Installs (or clears) the channel's error policy (smc/ecc.hpp). Two
  /// effects on this EasyApi: the sequence builders remap retired rows to
  /// their spares, and refresh_if_due() drives the patrol scrubber once
  /// per consumed slot (issued or skipped — scrub composes with RAIDR).
  /// Non-owning, system-owned, must outlive this EasyApi or be cleared.
  void set_error_policy(ErrorPolicy* policy) { error_policy_ = policy; }
  ErrorPolicy* error_policy() const { return error_policy_; }

  /// Setup mode: API calls cost nothing on any timeline and batches execute
  /// uncharged. Used by offline phases the paper performs before emulation
  /// begins: DRAM characterization, RowClone pair verification, catch-up
  /// refreshes that overlap compute.
  void set_setup_mode(bool on) { setup_mode_ = on; }
  bool setup_mode() const { return setup_mode_; }

  /// Row currently open in `bank` of `rank`, accounting for commands
  /// already queued in the (unflushed) batch.
  std::optional<std::uint32_t> open_row(std::uint32_t bank,
                                        std::uint32_t rank = 0) const;

  /// BankStateView: the scheduler-facing open-row query (channel is
  /// ignored — each channel's scheduler sees its own EasyApi).
  std::optional<std::uint32_t> open_row(const dram::DramAddress& a) const override {
    return open_row(a.bank, a.rank);
  }

  // --- Address translation --------------------------------------------------

  dram::DramAddress get_addr_mapping(std::uint64_t paddr);

  // --- Command batch construction (Table 2: ddr_*) --------------------------

  /// Queue one DDR command into the current batch (nothing reaches the
  /// device until flush_commands). Addresses must lie within the
  /// geometry; `data` spans exactly 64 bytes. Each call charges one
  /// command-push cost on the programmable core.
  void ddr_activate(std::uint32_t bank, std::uint32_t row, std::uint32_t rank = 0);
  void ddr_precharge(std::uint32_t bank, std::uint32_t rank = 0);
  void ddr_read(const dram::DramAddress& a, bool capture = true);
  void ddr_write(const dram::DramAddress& a, std::span<const std::uint8_t> data);
  void ddr_refresh(std::uint32_t rank = 0);
  /// Technique escape hatch: issue exactly `gap` (Picoseconds) after the
  /// previous command, nominal spacing be damned.
  void ddr_exact(dram::Command cmd, const dram::DramAddress& a, Picoseconds gap,
                 bool capture = false);
  /// Queue an idle wait of at least `duration` (Picoseconds, rounded up
  /// to whole DRAM clocks).
  void ddr_wait(Picoseconds duration);

  // --- High-level sequences (software library, Table 2 bottom) -------------

  /// Opens the row if needed (precharging any conflicting row) and reads
  /// one cache line; leaves the row open (open-page policy).
  void read_sequence(const dram::DramAddress& a);

  /// Like read_sequence but forces a fresh activation and issues the read
  /// exactly `trcd` after the ACT — the §8 reduced-latency access.
  void read_sequence_reduced(const dram::DramAddress& a, Picoseconds trcd);

  /// Opens the row if needed and writes one cache line; leaves it open.
  void write_sequence(const dram::DramAddress& a, std::span<const std::uint8_t> data);

  /// FPM RowClone (§7): ACT(src) -> early PRE -> early ACT(dst), then a
  /// nominal precharge. Both rows must be in `bank` of `rank`.
  void rowclone(std::uint32_t bank, std::uint32_t src_row, std::uint32_t dst_row,
                std::uint32_t rank = 0);

  /// Precharges `bank` of `rank` if it has an open row.
  void close_row(std::uint32_t bank, std::uint32_t rank = 0);

  // --- Execution -------------------------------------------------------------

  /// Transfers the accumulated batch to DRAM Bender and executes it
  /// (Table 2: flush_commands). Returns Bender's report. When `charge` is
  /// false the batch runs for device-state maintenance only and does not
  /// advance any timeline (used for catch-up refreshes that overlap
  /// compute phases).
  bender::ExecutionResult flush_commands(bool charge = true);

  /// Commands queued in the unflushed batch.
  std::size_t batch_size() const { return program_.size(); }

  /// Readback buffer access (Table 2: rdback_cacheline). Precondition for
  /// rdback_cacheline: !rdback_empty(); entries come back in batch order
  /// and are invalidated by the next flush_commands.
  bool rdback_empty() const { return rdback_cursor_ >= readback_.size(); }
  bender::ReadbackEntry rdback_cacheline();

  // --- Maintenance -----------------------------------------------------------

  /// Consumes any refresh slots the emulated timeline owes (one per tREFI
  /// per rank): each slot either issues a REF or — when the installed
  /// RefreshPolicy declines it — advances the device's round-robin
  /// position for free (DramDevice::skip_refresh; a skipped slot costs
  /// nothing on any timeline, which is the entire benefit of
  /// retention-aware refresh). Catch-up refreshes that would have
  /// overlapped processor compute phases keep DRAM state fresh without
  /// charging the timeline; a refresh still in flight "now" is charged,
  /// delaying the current request as in a real controller.
  void refresh_if_due();

  // --- Introspection ---------------------------------------------------------

  /// Borrowed views of the channel's fixed collaborators (valid for this
  /// EasyApi's lifetime; all times in them are Picoseconds).
  const dram::TimingParams& timing() const { return device_->timing(); }
  const dram::Geometry& geometry() const { return device_->geometry(); }
  const AddressMapper& mapper() const { return *mapper_; }
  timescale::TimeKeeper& keeper() { return *keeper_; }
  tile::EasyTile& tile() { return *tile_; }
  /// Running totals since construction (see ApiStats field docs).
  const ApiStats& stats() const { return stats_; }
  /// Mutable stats access for the controller's error-pipeline counters
  /// (CE/UE classification and retries happen above this layer).
  ApiStats& stats_mutable() { return stats_; }
  /// Direct device access for setup phases (characterization fixtures);
  /// demand-path code must go through the batch interface instead.
  dram::DramDevice& device_for_setup() { return *device_; }

 private:
  /// Converts accumulated programmable-core cycles into wall time. Called
  /// before any operation that reads the wall clock (release tags, batch
  /// execution) so the No-Time-Scaling timeline sees the SMC's software
  /// latency as it accrues, not after the fact.
  void sync_meter();

  /// Request-servicing work: programmable-core cycles + emulated MC cycles.
  void charge_service(Cycles core_cycles);
  /// Background work (polling, mode flips): programmable-core cycles only.
  void charge_background(Cycles core_cycles);

  /// Catch-up/in-flight refresh convergence for one rank.
  void refresh_rank_if_due(std::uint32_t rank);

  /// Retirement remap applied by the high-level sequence builders (identity
  /// when no error policy is installed).
  dram::DramAddress remap_retired(const dram::DramAddress& a) const;

  /// Drives the patrol scrubber for one consumed refresh slot and charges
  /// the background cost of the lines it read.
  void scrub_slot(std::uint32_t rank, std::int64_t slot, Picoseconds now);

  std::uint32_t flat(std::uint32_t rank, std::uint32_t bank) const {
    return device_->geometry().flat_bank(rank, bank);
  }

  /// Effective open row seen by batch-building code: commands queued in the
  /// current batch override device state.
  std::optional<std::uint32_t> effective_open_row(std::uint32_t bank,
                                                  std::uint32_t rank) const;
  void set_pending_row(std::uint32_t bank, std::uint32_t rank,
                       std::optional<std::uint32_t> row);

  tile::EasyTile* tile_;
  dram::DramDevice* device_;
  const AddressMapper* mapper_;
  timescale::TimeKeeper* keeper_;
  std::uint32_t channel_ = 0;

  bender::Program program_;
  bender::Interpreter interpreter_;
  std::vector<bender::ReadbackEntry> readback_;
  std::size_t rdback_cursor_ = 0;

  // flat (rank, bank) -> row queued to be open at the end of the current
  // batch; the wrapped optional distinguishes "no change" (outer nullopt)
  // from "will be closed" (inner nullopt).
  std::vector<std::optional<std::optional<std::uint32_t>>> pending_row_;

  bool setup_mode_ = false;
  ActSink* act_sink_ = nullptr;
  RefreshPolicy* refresh_policy_ = nullptr;
  ErrorPolicy* error_policy_ = nullptr;
  ApiStats stats_;
};

}  // namespace easydram::smc
