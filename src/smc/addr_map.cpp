#include "smc/addr_map.hpp"

#include "common/contracts.hpp"

namespace easydram::smc {

dram::DramAddress LinearMapper::to_dram(std::uint64_t paddr) const {
  EASYDRAM_EXPECTS(paddr % 64 == 0);
  EASYDRAM_EXPECTS(paddr < geo_.capacity_bytes());
  const std::uint64_t line = paddr / geo_.col_bytes;
  const std::uint64_t cols = geo_.cols_per_row();
  dram::DramAddress a;
  a.col = static_cast<std::uint32_t>(line % cols);
  const std::uint64_t row_linear = line / cols;
  a.row = static_cast<std::uint32_t>(row_linear % geo_.rows_per_bank);
  a.bank = static_cast<std::uint32_t>(row_linear / geo_.rows_per_bank);
  return a;
}

std::uint64_t LinearMapper::to_physical(const dram::DramAddress& a) const {
  EASYDRAM_EXPECTS(geo_.contains(a));
  const std::uint64_t row_linear =
      static_cast<std::uint64_t>(a.bank) * geo_.rows_per_bank + a.row;
  return (row_linear * geo_.cols_per_row() + a.col) * geo_.col_bytes;
}

dram::DramAddress LineInterleavedMapper::to_dram(std::uint64_t paddr) const {
  EASYDRAM_EXPECTS(paddr % 64 == 0);
  EASYDRAM_EXPECTS(paddr < geo_.capacity_bytes());
  const std::uint64_t line = paddr / geo_.col_bytes;
  dram::DramAddress a;
  a.bank = static_cast<std::uint32_t>(line % geo_.num_banks());
  const std::uint64_t upper = line / geo_.num_banks();
  a.col = static_cast<std::uint32_t>(upper % geo_.cols_per_row());
  a.row = static_cast<std::uint32_t>(upper / geo_.cols_per_row());
  return a;
}

std::uint64_t LineInterleavedMapper::to_physical(const dram::DramAddress& a) const {
  EASYDRAM_EXPECTS(geo_.contains(a));
  const std::uint64_t upper =
      static_cast<std::uint64_t>(a.row) * geo_.cols_per_row() + a.col;
  return (upper * geo_.num_banks() + a.bank) * geo_.col_bytes;
}

}  // namespace easydram::smc
