#include "smc/addr_map.hpp"

#include "common/contracts.hpp"

namespace easydram::smc {

dram::DramAddress LinearMapper::to_dram(std::uint64_t paddr) const {
  EASYDRAM_EXPECTS(paddr % 64 == 0);
  EASYDRAM_EXPECTS(paddr < geo_.capacity_bytes());
  const std::uint64_t line = paddr / geo_.col_bytes;
  const std::uint64_t cols = geo_.cols_per_row();
  dram::DramAddress a;
  a.col = static_cast<std::uint32_t>(line % cols);
  const std::uint64_t row_linear = line / cols;
  a.row = static_cast<std::uint32_t>(row_linear % geo_.rows_per_bank);
  const std::uint64_t bank_linear = row_linear / geo_.rows_per_bank;
  a.bank = static_cast<std::uint32_t>(bank_linear % geo_.num_banks());
  const std::uint64_t rank_linear = bank_linear / geo_.num_banks();
  a.rank = static_cast<std::uint32_t>(rank_linear % geo_.ranks_per_channel);
  a.channel = static_cast<std::uint32_t>(rank_linear / geo_.ranks_per_channel);
  return a;
}

std::uint64_t LinearMapper::to_physical(const dram::DramAddress& a) const {
  EASYDRAM_EXPECTS(geo_.contains(a));
  const std::uint64_t bank_linear =
      (static_cast<std::uint64_t>(a.channel) * geo_.ranks_per_channel + a.rank) *
          geo_.num_banks() +
      a.bank;
  const std::uint64_t row_linear = bank_linear * geo_.rows_per_bank + a.row;
  return (row_linear * geo_.cols_per_row() + a.col) * geo_.col_bytes;
}

dram::DramAddress LineInterleavedMapper::to_dram(std::uint64_t paddr) const {
  EASYDRAM_EXPECTS(paddr % 64 == 0);
  EASYDRAM_EXPECTS(paddr < geo_.capacity_bytes());
  const std::uint64_t line = paddr / geo_.col_bytes;
  dram::DramAddress a;
  a.bank = static_cast<std::uint32_t>(line % geo_.num_banks());
  std::uint64_t upper = line / geo_.num_banks();
  a.rank = static_cast<std::uint32_t>(upper % geo_.ranks_per_channel);
  upper /= geo_.ranks_per_channel;
  a.col = static_cast<std::uint32_t>(upper % geo_.cols_per_row());
  upper /= geo_.cols_per_row();
  a.row = static_cast<std::uint32_t>(upper % geo_.rows_per_bank);
  a.channel = static_cast<std::uint32_t>(upper / geo_.rows_per_bank);
  return a;
}

std::uint64_t LineInterleavedMapper::to_physical(const dram::DramAddress& a) const {
  EASYDRAM_EXPECTS(geo_.contains(a));
  std::uint64_t upper =
      static_cast<std::uint64_t>(a.channel) * geo_.rows_per_bank + a.row;
  upper = upper * geo_.cols_per_row() + a.col;
  upper = upper * geo_.ranks_per_channel + a.rank;
  return (upper * geo_.num_banks() + a.bank) * geo_.col_bytes;
}

dram::DramAddress ChannelInterleavedMapper::to_dram(std::uint64_t paddr) const {
  EASYDRAM_EXPECTS(paddr % 64 == 0);
  EASYDRAM_EXPECTS(paddr < geo_.capacity_bytes());
  const std::uint64_t line = paddr / geo_.col_bytes;
  dram::DramAddress a;
  a.channel = static_cast<std::uint32_t>(line % geo_.channels);
  std::uint64_t upper = line / geo_.channels;
  a.bank = static_cast<std::uint32_t>(upper % geo_.num_banks());
  upper /= geo_.num_banks();
  a.rank = static_cast<std::uint32_t>(upper % geo_.ranks_per_channel);
  upper /= geo_.ranks_per_channel;
  a.col = static_cast<std::uint32_t>(upper % geo_.cols_per_row());
  a.row = static_cast<std::uint32_t>(upper / geo_.cols_per_row());
  return a;
}

std::uint64_t ChannelInterleavedMapper::to_physical(const dram::DramAddress& a) const {
  EASYDRAM_EXPECTS(geo_.contains(a));
  std::uint64_t upper =
      static_cast<std::uint64_t>(a.row) * geo_.cols_per_row() + a.col;
  upper = upper * geo_.ranks_per_channel + a.rank;
  upper = upper * geo_.num_banks() + a.bank;
  return (upper * geo_.channels + a.channel) * geo_.col_bytes;
}

BankPartitionMapper::BankPartitionMapper(const dram::Geometry& geo,
                                         unsigned partitions)
    : geo_(geo), partitions_(partitions) {
  EASYDRAM_EXPECTS(partitions >= 1);
  EASYDRAM_EXPECTS(geo.num_banks() % partitions == 0);
  banks_per_partition_ = geo.num_banks() / partitions;
  partition_bytes_ = geo.capacity_bytes() / partitions;
}

dram::DramAddress BankPartitionMapper::to_dram(std::uint64_t paddr) const {
  EASYDRAM_EXPECTS(paddr % 64 == 0);
  EASYDRAM_EXPECTS(paddr < geo_.capacity_bytes());
  const std::uint64_t partition = paddr / partition_bytes_;
  const std::uint64_t line = (paddr % partition_bytes_) / geo_.col_bytes;
  dram::DramAddress a;
  a.bank = static_cast<std::uint32_t>(partition * banks_per_partition_ +
                                      line % banks_per_partition_);
  std::uint64_t upper = line / banks_per_partition_;
  a.rank = static_cast<std::uint32_t>(upper % geo_.ranks_per_channel);
  upper /= geo_.ranks_per_channel;
  a.col = static_cast<std::uint32_t>(upper % geo_.cols_per_row());
  upper /= geo_.cols_per_row();
  a.row = static_cast<std::uint32_t>(upper % geo_.rows_per_bank);
  a.channel = static_cast<std::uint32_t>(upper / geo_.rows_per_bank);
  return a;
}

std::uint64_t BankPartitionMapper::to_physical(const dram::DramAddress& a) const {
  EASYDRAM_EXPECTS(geo_.contains(a));
  const std::uint64_t partition = a.bank / banks_per_partition_;
  const std::uint64_t bank_in = a.bank % banks_per_partition_;
  std::uint64_t upper =
      static_cast<std::uint64_t>(a.channel) * geo_.rows_per_bank + a.row;
  upper = upper * geo_.cols_per_row() + a.col;
  upper = upper * geo_.ranks_per_channel + a.rank;
  const std::uint64_t line = upper * banks_per_partition_ + bank_in;
  return partition * partition_bytes_ + line * geo_.col_bytes;
}

std::string_view to_string(MappingKind kind) {
  switch (kind) {
    case MappingKind::kLinear: return "linear";
    case MappingKind::kLineInterleaved: return "line";
    case MappingKind::kChannelInterleaved: return "channel";
    case MappingKind::kBankPartition: return "bankpart";
  }
  return "?";
}

std::optional<MappingKind> parse_mapping(std::string_view name) {
  if (name == "linear") return MappingKind::kLinear;
  if (name == "line" || name == "line-interleaved") {
    return MappingKind::kLineInterleaved;
  }
  if (name == "channel" || name == "channel-interleaved") {
    return MappingKind::kChannelInterleaved;
  }
  if (name == "bankpart" || name == "bank-partition") {
    return MappingKind::kBankPartition;
  }
  return std::nullopt;
}

std::unique_ptr<AddressMapper> make_mapper(MappingKind kind,
                                           const dram::Geometry& geo,
                                           unsigned partitions) {
  switch (kind) {
    case MappingKind::kLinear: return std::make_unique<LinearMapper>(geo);
    case MappingKind::kLineInterleaved:
      return std::make_unique<LineInterleavedMapper>(geo);
    case MappingKind::kChannelInterleaved:
      return std::make_unique<ChannelInterleavedMapper>(geo);
    case MappingKind::kBankPartition:
      return std::make_unique<BankPartitionMapper>(geo, partitions);
  }
  EASYDRAM_EXPECTS(!"unknown MappingKind");
  return nullptr;
}

}  // namespace easydram::smc
