#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "dram/device.hpp"
#include "smc/refresh_policy.hpp"

namespace easydram::smc {

/// Options of the offline retention-profiling pass.
struct RetentionProfilerOptions {
  /// Duration of one full refresh round (tREFI x Geometry::
  /// refresh_window_refs — the real pass period of the round-robin). A
  /// stripe may be placed in bin m only when m x window <= its measured
  /// minimum retention minus the guard band. 0 = derive from the device's
  /// timing and geometry.
  Picoseconds window{0};
  /// Largest allowed refresh-interval multiplier; bins are powers of two
  /// up to this (1, 2, 4 by default — RAIDR's 64/128/256 ms bins).
  /// Precondition: 1 <= max_multiplier <= 128 (RaidrBinning stores
  /// multipliers as uint8).
  std::uint32_t max_multiplier = 4;
  /// Safety margin subtracted from every measured retention time before
  /// binning (models profiling at elevated temperature / voltage stress).
  Picoseconds guard_band{0};
  /// Profile every k-th row of a stripe (1 = exhaustive). A stride above 1
  /// models an incomplete profiling pass: unsampled weak rows can land
  /// their stripe in a too-slow bin — the misbinning risk the
  /// raidr_misbinning scenario sweeps against the device's retention
  /// ground truth.
  std::uint32_t sample_stride = 1;
};

/// Offline retention characterization (the pass RAIDR performs once at
/// boot): reads the modeled per-row retention field of `device` — the
/// equivalent of the disable-refresh-and-test measurement the paper's
/// platform would run as a setup phase, uncharged on any timeline — and
/// bins every refresh stripe of every rank by its weakest sampled row.
/// Deterministic: a pure function of (device variation seed, options).
/// `stats`, when non-null, receives the bin histogram of this binning.
RaidrBinning profile_retention_bins(const dram::DramDevice& device,
                                    const RetentionProfilerOptions& opts,
                                    RaidrBinStats* stats = nullptr);

/// Histogram + steady-state issue fraction of an existing binning.
RaidrBinStats summarize_binning(const RaidrBinning& binning);

}  // namespace easydram::smc
