#include "smc/trcd_profiler.hpp"

#include <algorithm>
#include <cstring>

#include "common/rng.hpp"

namespace easydram::smc {

namespace {

std::array<std::uint8_t, 64> line_pattern(std::uint32_t bank, std::uint32_t row,
                                          std::uint32_t col) {
  std::array<std::uint8_t, 64> p{};
  SplitMix64 sm(hash_mix(0x9A77E12, bank, row, col));
  for (auto& b : p) b = static_cast<std::uint8_t>(sm.next());
  return p;
}

}  // namespace

TrcdProfiler::TrcdProfiler(EasyApi& api, std::vector<Picoseconds> test_values)
    : api_(&api), test_values_(std::move(test_values)) {
  EASYDRAM_EXPECTS(!test_values_.empty());
  EASYDRAM_EXPECTS(std::is_sorted(test_values_.rbegin(), test_values_.rend()));
}

void TrcdProfiler::init_row_pattern(std::uint32_t bank, std::uint32_t row,
                                    std::span<const std::uint32_t> cols,
                                    std::uint32_t rank) {
  api_->close_row(bank, rank);
  for (const std::uint32_t col : cols) {
    api_->write_sequence(
        dram::DramAddress{bank, row, col, api_->channel(), rank},
        line_pattern(bank, row, col));
  }
  api_->close_row(bank, rank);
  api_->flush_commands(/*charge=*/false);
}

bool TrcdProfiler::row_reliable_at(std::uint32_t bank, std::uint32_t row,
                                   Picoseconds trcd, std::uint32_t lines_to_test,
                                   std::uint32_t rank) {
  // Characterization is an offline setup phase (§8.1): no timeline charges.
  const bool was_setup = api_->setup_mode();
  api_->set_setup_mode(true);
  const auto& geo = api_->geometry();
  const std::uint32_t n =
      lines_to_test == 0 ? geo.cols_per_row()
                         : std::min(lines_to_test, geo.cols_per_row());

  std::vector<std::uint32_t> cols;
  cols.reserve(n);
  if (n == geo.cols_per_row()) {
    for (std::uint32_t c = 0; c < n; ++c) cols.push_back(c);
  } else {
    // Deterministic spread when sampling.
    for (std::uint32_t i = 0; i < n; ++i) {
      cols.push_back(static_cast<std::uint32_t>(
          hash_mix(0x5A39, bank, row, i) % geo.cols_per_row()));
    }
  }

  // Step 1: initialize sampled lines with known patterns.
  init_row_pattern(bank, row, cols, rank);

  // Step 2: access each line with the reduced tRCD. Every test needs its
  // own activation — tRCD only applies to the first access after ACT.
  for (const std::uint32_t col : cols) {
    api_->read_sequence_reduced(
        dram::DramAddress{bank, row, col, api_->channel(), rank}, trcd);
    api_->close_row(bank, rank);
  }
  api_->flush_commands(/*charge=*/false);

  // Step 3: compare.
  bool all_ok = true;
  for (const std::uint32_t col : cols) {
    EASYDRAM_ENSURES(!api_->rdback_empty());
    const auto rb = api_->rdback_cacheline();
    const auto expect = line_pattern(bank, row, col);
    if (std::memcmp(rb.data.data(), expect.data(), 64) != 0) all_ok = false;
    ++lines_tested_;
  }
  api_->set_setup_mode(was_setup);
  return all_ok;
}

RowProfile TrcdProfiler::profile_row(std::uint32_t bank, std::uint32_t row,
                                     std::uint32_t lines_to_test,
                                     std::uint32_t rank) {
  RowProfile result{bank, row, test_values_.front()};
  for (const Picoseconds v : test_values_) {
    if (!row_reliable_at(bank, row, v, lines_to_test, rank)) break;
    result.min_reliable = v;
  }
  return result;
}

BloomFilter build_weak_row_filter(EasyApi& api, std::span<const std::uint32_t> banks,
                                  std::uint32_t rows_per_bank, Picoseconds threshold,
                                  std::size_t filter_bits, std::size_t hashes,
                                  WeakRowFilterStats* stats,
                                  std::uint32_t lines_per_row) {
  BloomFilter filter(filter_bits, hashes);
  TrcdProfiler profiler(api, {threshold});
  WeakRowFilterStats local{};
  // Every rank of the channel is profiled: the controller keys lookups by
  // the full (channel, rank, bank, row), so an unprofiled rank would read
  // as uniformly strong and be silently corrupted by reduced-tRCD opens.
  const std::uint32_t ranks = api.geometry().ranks_per_channel;
  for (std::uint32_t rank = 0; rank < ranks; ++rank) {
    for (const std::uint32_t bank : banks) {
      for (std::uint32_t row = 0; row < rows_per_bank; ++row) {
        ++local.rows_profiled;
        if (!profiler.row_reliable_at(bank, row, threshold, lines_per_row,
                                      rank)) {
          ++local.weak_rows;
          filter.insert(dram::row_key(
              dram::DramAddress{bank, row, 0, api.channel(), rank}));
        }
      }
    }
  }
  local.weak_fraction = local.rows_profiled == 0
                            ? 0.0
                            : static_cast<double>(local.weak_rows) /
                                  static_cast<double>(local.rows_profiled);
  if (stats != nullptr) *stats = local;
  return filter;
}

}  // namespace easydram::smc
