#include "smc/rowclone_alloc.hpp"

#include <cstring>

#include "common/rng.hpp"

namespace easydram::smc {

namespace {

/// Deterministic per-trial verification pattern.
std::array<std::uint8_t, 64> trial_pattern(std::uint64_t salt) {
  std::array<std::uint8_t, 64> p{};
  SplitMix64 sm(salt ^ 0x7E57DA7AULL);
  for (auto& b : p) b = static_cast<std::uint8_t>(sm.next());
  return p;
}

constexpr int kSampleLinesPerTrial = 8;

}  // namespace

RowClonePairTester::RowClonePairTester(EasyApi& api, int trials)
    : api_(&api), trials_(trials) {
  EASYDRAM_EXPECTS(trials > 0);
}

bool RowClonePairTester::one_trial(std::uint32_t bank, std::uint32_t src_row,
                                   std::uint32_t dst_row, std::uint64_t salt) {
  // Verification is an offline setup phase (§7.1): no timeline charges.
  const bool was_setup = api_->setup_mode();
  api_->set_setup_mode(true);
  const auto& geo = api_->geometry();
  const auto pattern = trial_pattern(salt);

  // Sample columns spread deterministically across the row.
  std::array<std::uint32_t, kSampleLinesPerTrial> cols{};
  for (int i = 0; i < kSampleLinesPerTrial; ++i) {
    cols[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>(
        hash_mix(salt, bank, src_row, static_cast<std::uint64_t>(i)) %
        geo.cols_per_row());
  }

  // Write the pattern into the source row's sampled lines.
  for (const std::uint32_t col : cols) {
    api_->write_sequence(dram::DramAddress{bank, src_row, col}, pattern);
  }
  api_->close_row(bank);
  api_->flush_commands(/*charge=*/false);

  // Perform the RowClone copy operation.
  api_->rowclone(bank, src_row, dst_row);
  api_->flush_commands(/*charge=*/false);

  // Read the destination back and compare.
  for (const std::uint32_t col : cols) {
    api_->read_sequence(dram::DramAddress{bank, dst_row, col});
  }
  api_->close_row(bank);
  api_->flush_commands(/*charge=*/false);

  bool all_match = true;
  for (int i = 0; i < kSampleLinesPerTrial; ++i) {
    EASYDRAM_ENSURES(!api_->rdback_empty());
    const auto rb = api_->rdback_cacheline();
    if (std::memcmp(rb.data.data(), pattern.data(), 64) != 0) all_match = false;
  }
  api_->set_setup_mode(was_setup);
  return all_match;
}

bool RowClonePairTester::test(std::uint32_t bank, std::uint32_t src_row,
                              std::uint32_t dst_row, RowCloneMap& map) {
  // The map's namespace is the system-wide bank index (the key the
  // controller queries with), so verdicts recorded through a non-zero
  // channel's api land on that channel's keys. The tester itself drives
  // rank 0 of its api's channel.
  const std::uint32_t sys_bank = api_->geometry().system_bank(
      dram::DramAddress{bank, 0, 0, api_->channel(), 0});
  if (const auto known = map.known(sys_bank, src_row, dst_row)) return *known;
  bool clonable = true;
  for (int t = 0; t < trials_; ++t) {
    ++trials_run_;
    if (!one_trial(bank, src_row, dst_row, static_cast<std::uint64_t>(t))) {
      clonable = false;
      break;  // One failure disqualifies the pair.
    }
  }
  map.record(sys_bank, src_row, dst_row, clonable);
  return clonable;
}

RowCloneAllocator::RowCloneAllocator(EasyApi& api, RowCloneMap& map,
                                     RowClonePairTester& tester)
    : api_(&api), map_(&map), tester_(&tester) {
  const auto& geo = api.geometry();
  bank_cursors_.assign(geo.num_banks(), 0);
  pattern_rows_.assign(
      static_cast<std::size_t>(geo.num_banks()) * geo.subarrays_per_bank(), -1);
}

RowRef RowCloneAllocator::next_row_in_bank(std::uint32_t bank) {
  const auto& geo = api_->geometry();
  const std::uint64_t usable = geo.rows_per_subarray - 1;
  const std::uint64_t local = bank_cursors_[bank]++;
  const std::uint64_t subarray = local / usable;
  EASYDRAM_EXPECTS(subarray < geo.subarrays_per_bank());
  return RowRef{bank, static_cast<std::uint32_t>(subarray * geo.rows_per_subarray +
                                                 local % usable)};
}

RowRef RowCloneAllocator::row_at(std::uint64_t linear_index) const {
  const auto& geo = api_->geometry();
  // The last row of every subarray is reserved for init pattern rows.
  const std::uint64_t usable = geo.rows_per_subarray - 1;
  const std::uint64_t subarray = linear_index / usable;
  const std::uint64_t within = linear_index % usable;
  const std::uint64_t bank = subarray / geo.subarrays_per_bank();
  const std::uint64_t sa_in_bank = subarray % geo.subarrays_per_bank();
  EASYDRAM_EXPECTS(bank < geo.num_banks());
  return RowRef{static_cast<std::uint32_t>(bank),
                static_cast<std::uint32_t>(sa_in_bank * geo.rows_per_subarray + within)};
}

RowRef RowCloneAllocator::pattern_row_for(const RowRef& dst) {
  const auto& geo = api_->geometry();
  const std::uint32_t sa = geo.subarray_of(dst.row);
  const std::size_t key = static_cast<std::size_t>(dst.bank) *
                              geo.subarrays_per_bank() + sa;
  if (pattern_rows_[key] < 0) {
    pattern_rows_[key] =
        static_cast<std::int32_t>((sa + 1) * geo.rows_per_subarray - 1);
  }
  return RowRef{dst.bank, static_cast<std::uint32_t>(pattern_rows_[key])};
}

std::vector<CopyPlanEntry> RowCloneAllocator::plan_copy(std::size_t n_rows,
                                                        int max_candidates) {
  EASYDRAM_EXPECTS(max_candidates > 0);
  const auto& geo = api_->geometry();
  std::vector<CopyPlanEntry> plan;
  plan.reserve(n_rows);

  for (std::size_t i = 0; i < n_rows; ++i) {
    CopyPlanEntry entry;
    entry.src = row_at(cursor_++);
    const std::uint32_t src_subarray = geo.subarray_of(entry.src.row);

    // Probe same-subarray destination candidates in allocation order.
    bool found = false;
    for (int c = 0; c < max_candidates; ++c) {
      const RowRef cand = row_at(cursor_);
      const bool same = cand.bank == entry.src.bank &&
                        geo.subarray_of(cand.row) == src_subarray;
      if (!same) break;  // Subarray exhausted: no in-subarray room left.
      ++cursor_;         // The candidate row is consumed (used or wasted).
      if (tester_->test(cand.bank, entry.src.row, cand.row, *map_)) {
        entry.dst = cand;
        entry.use_rowclone = true;
        found = true;
        break;
      }
    }
    if (!found) {
      // No verified destination: place the target row anyway and fall back
      // to CPU copy for this row.
      entry.dst = row_at(cursor_++);
      entry.use_rowclone = false;
    }
    plan.push_back(entry);
  }
  return plan;
}

std::vector<CopyPlanEntry> RowCloneAllocator::plan_copy_interleaved(
    std::size_t n_rows, int max_candidates) {
  EASYDRAM_EXPECTS(max_candidates > 0);
  const auto& geo = api_->geometry();
  std::vector<CopyPlanEntry> plan;
  plan.reserve(n_rows);

  for (std::size_t i = 0; i < n_rows; ++i) {
    const std::uint32_t bank = static_cast<std::uint32_t>(i % geo.num_banks());
    CopyPlanEntry entry;
    entry.src = next_row_in_bank(bank);
    const std::uint32_t src_subarray = geo.subarray_of(entry.src.row);

    bool found = false;
    for (int c = 0; c < max_candidates; ++c) {
      const RowRef cand = next_row_in_bank(bank);
      if (geo.subarray_of(cand.row) != src_subarray) break;  // Next subarray.
      if (tester_->test(bank, entry.src.row, cand.row, *map_)) {
        entry.dst = cand;
        entry.use_rowclone = true;
        found = true;
        break;
      }
    }
    if (!found) {
      entry.dst = next_row_in_bank(bank);
      entry.use_rowclone = false;
    }
    plan.push_back(entry);
  }
  return plan;
}

std::vector<InitPlanEntry> RowCloneAllocator::plan_init(std::size_t n_rows) {
  std::vector<InitPlanEntry> plan;
  plan.reserve(n_rows);
  for (std::size_t i = 0; i < n_rows; ++i) {
    InitPlanEntry entry;
    entry.dst = row_at(cursor_++);
    entry.pattern_src = pattern_row_for(entry.dst);
    entry.use_rowclone =
        tester_->test(entry.dst.bank, entry.pattern_src.row, entry.dst.row, *map_);
    plan.push_back(entry);
  }
  return plan;
}

}  // namespace easydram::smc
