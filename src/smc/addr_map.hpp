#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "dram/geometry.hpp"
#include "dram/types.hpp"

namespace easydram::smc {

/// Physical-to-DRAM address translation (EasyAPI's mapper family, §7.1).
///
/// Mappers are invertible so that both the processor-side allocation code
/// and the software memory controller can convert between a physical
/// address and a <channel, rank, bank, row, column> coordinate, as the
/// paper requires for solving RowClone's alignment problem. Every mapper
/// covers the full multi-channel capacity of its geometry; with the default
/// 1-channel/1-rank geometry each reduces exactly to its original
/// single-rank bit layout.
class AddressMapper {
 public:
  virtual ~AddressMapper() = default;

  /// Maps the physical address of a 64-byte-aligned cache line.
  virtual dram::DramAddress to_dram(std::uint64_t paddr) const = 0;

  /// Inverse of to_dram (returns the line's base physical address).
  virtual std::uint64_t to_physical(const dram::DramAddress& a) const = 0;

  virtual const dram::Geometry& geometry() const = 0;

  virtual std::string_view name() const = 0;
};

/// Row-linear mapping: consecutive physical 8 KiB blocks are consecutive
/// rows of the same bank; banks follow each other, then ranks, then
/// channels (channel bits at the top — consecutive capacity blocks stay on
/// one channel). Keeps DRAM rows (and whole subarrays) physically
/// contiguous, which is the allocator-friendly layout the RowClone case
/// study uses.
class LinearMapper final : public AddressMapper {
 public:
  explicit LinearMapper(const dram::Geometry& geo) : geo_(geo) {}

  dram::DramAddress to_dram(std::uint64_t paddr) const override;
  std::uint64_t to_physical(const dram::DramAddress& a) const override;
  const dram::Geometry& geometry() const override { return geo_; }
  std::string_view name() const override { return "linear"; }

 private:
  dram::Geometry geo_;
};

/// Line-interleaved mapping: consecutive cache lines stripe across the
/// banks of one channel (bank bits just above the line offset, rank bits
/// above them), the conventional layout for bank-level parallelism within a
/// channel; channel bits sit at the top. Used by the scheduler-focused
/// experiments.
class LineInterleavedMapper final : public AddressMapper {
 public:
  explicit LineInterleavedMapper(const dram::Geometry& geo) : geo_(geo) {}

  dram::DramAddress to_dram(std::uint64_t paddr) const override;
  std::uint64_t to_physical(const dram::DramAddress& a) const override;
  const dram::Geometry& geometry() const override { return geo_; }
  std::string_view name() const override { return "line"; }

 private:
  dram::Geometry geo_;
};

/// Channel-interleaved mapping: channel bits directly above the line offset
/// (consecutive cache lines hit consecutive channels), then bank and rank
/// bits — the conventional high-bandwidth layout that spreads any streaming
/// footprint across every channel's bus.
class ChannelInterleavedMapper final : public AddressMapper {
 public:
  explicit ChannelInterleavedMapper(const dram::Geometry& geo) : geo_(geo) {}

  dram::DramAddress to_dram(std::uint64_t paddr) const override;
  std::uint64_t to_physical(const dram::DramAddress& a) const override;
  const dram::Geometry& geometry() const override { return geo_; }
  std::string_view name() const override { return "channel"; }

 private:
  dram::Geometry geo_;
};

/// Static bank partitioning: the physical space splits into `partitions`
/// equal slices, each owning a disjoint set of banks in every rank and
/// channel. Within a slice consecutive cache lines stripe across the
/// slice's own banks (then ranks, columns, rows, channels — the
/// LineInterleaved order). Place each tenant's footprint in its own slice
/// and no stream can close another's row buffers: bank conflicts between
/// tenants become structurally impossible, the classic software QoS knob
/// that needs no scheduler cooperation.
class BankPartitionMapper final : public AddressMapper {
 public:
  BankPartitionMapper(const dram::Geometry& geo, unsigned partitions);

  dram::DramAddress to_dram(std::uint64_t paddr) const override;
  std::uint64_t to_physical(const dram::DramAddress& a) const override;
  const dram::Geometry& geometry() const override { return geo_; }
  std::string_view name() const override { return "bankpart"; }

  unsigned partitions() const { return partitions_; }
  /// Base physical address of partition `p` — hand each tenant its slice.
  std::uint64_t partition_base(unsigned p) const {
    return static_cast<std::uint64_t>(p) * partition_bytes_;
  }
  std::uint64_t partition_bytes() const { return partition_bytes_; }

 private:
  dram::Geometry geo_;
  unsigned partitions_;
  std::uint32_t banks_per_partition_;
  std::uint64_t partition_bytes_;
};

/// The mapper family by name (SystemConfig::mapping, the CLI's --mapping).
enum class MappingKind : std::uint8_t {
  kLinear,
  kLineInterleaved,
  kChannelInterleaved,
  kBankPartition,
};

std::string_view to_string(MappingKind kind);
std::optional<MappingKind> parse_mapping(std::string_view name);
/// `partitions` applies to kBankPartition only (must divide the per-rank
/// bank count); the other mappings ignore it.
std::unique_ptr<AddressMapper> make_mapper(MappingKind kind,
                                           const dram::Geometry& geo,
                                           unsigned partitions = 4);

}  // namespace easydram::smc
