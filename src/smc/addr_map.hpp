#pragma once

#include <cstdint>
#include <memory>

#include "dram/geometry.hpp"
#include "dram/types.hpp"

namespace easydram::smc {

/// Physical-to-DRAM address translation (EasyAPI's mapper family, §7.1).
///
/// Mappers are invertible so that both the processor-side allocation code
/// and the software memory controller can convert between a physical
/// address and a <bank, row, column> triplet, as the paper requires for
/// solving RowClone's alignment problem.
class AddressMapper {
 public:
  virtual ~AddressMapper() = default;

  /// Maps the physical address of a 64-byte-aligned cache line.
  virtual dram::DramAddress to_dram(std::uint64_t paddr) const = 0;

  /// Inverse of to_dram (returns the line's base physical address).
  virtual std::uint64_t to_physical(const dram::DramAddress& a) const = 0;

  virtual const dram::Geometry& geometry() const = 0;
};

/// Row-linear mapping: consecutive physical 8 KiB blocks are consecutive
/// rows of the same bank; banks follow each other. Keeps DRAM rows (and
/// whole subarrays) physically contiguous, which is the allocator-friendly
/// layout the RowClone case study uses.
class LinearMapper final : public AddressMapper {
 public:
  explicit LinearMapper(const dram::Geometry& geo) : geo_(geo) {}

  dram::DramAddress to_dram(std::uint64_t paddr) const override;
  std::uint64_t to_physical(const dram::DramAddress& a) const override;
  const dram::Geometry& geometry() const override { return geo_; }

 private:
  dram::Geometry geo_;
};

/// Line-interleaved mapping: consecutive cache lines stripe across banks
/// (bank bits just above the line offset), the conventional layout for
/// bank-level parallelism. Used by the scheduler-focused experiments.
class LineInterleavedMapper final : public AddressMapper {
 public:
  explicit LineInterleavedMapper(const dram::Geometry& geo) : geo_(geo) {}

  dram::DramAddress to_dram(std::uint64_t paddr) const override;
  std::uint64_t to_physical(const dram::DramAddress& a) const override;
  const dram::Geometry& geometry() const override { return geo_; }

 private:
  dram::Geometry geo_;
};

}  // namespace easydram::smc
