#include "smc/ecc.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/contracts.hpp"
#include "smc/easyapi.hpp"

namespace easydram::smc {

namespace {

// Hamming(72,64) layout: codeword positions 1..71, check bits at the
// power-of-two positions {1,2,4,8,16,32,64}, data bits at the remaining 64
// positions in ascending order. Check bit j covers every position with bit
// j set; the 8th stored bit is overall even parity over all 72 bits.

struct CodecTables {
  std::array<std::uint8_t, 64> data_pos{};   // data bit -> codeword position
  std::array<std::int8_t, 72> pos_to_data{}; // codeword position -> data bit
  std::array<std::uint64_t, 7> check_mask{}; // data-bit mask per check bit
};

constexpr CodecTables make_tables() {
  CodecTables t{};
  for (auto& p : t.pos_to_data) p = -1;
  int bit = 0;
  for (int pos = 1; pos < 72 && bit < 64; ++pos) {
    if ((pos & (pos - 1)) == 0) continue;  // power of two: check-bit seat
    t.data_pos[static_cast<std::size_t>(bit)] = static_cast<std::uint8_t>(pos);
    t.pos_to_data[static_cast<std::size_t>(pos)] = static_cast<std::int8_t>(bit);
    for (int j = 0; j < 7; ++j) {
      if ((pos >> j) & 1) t.check_mask[static_cast<std::size_t>(j)] |= 1ull << bit;
    }
    ++bit;
  }
  return t;
}

constexpr CodecTables kTables = make_tables();

/// Parity of every byte value (bit 0 only).
constexpr std::array<std::uint8_t, 256> make_parity_table() {
  std::array<std::uint8_t, 256> t{};
  for (int v = 0; v < 256; ++v) {
    t[static_cast<std::size_t>(v)] =
        static_cast<std::uint8_t>(std::popcount(static_cast<unsigned>(v)) & 1);
  }
  return t;
}

constexpr std::array<std::uint8_t, 256> kParity = make_parity_table();

/// Check-byte contribution of data byte `p` holding value `v`. SEC-DED is
/// GF(2)-linear, so a word's full check byte (7 Hamming bits + overall
/// parity) is the XOR of eight per-byte contributions. The tables keep
/// per-bit popcounts off the hot path entirely — `std::popcount` lowers to
/// a library call on baseline x86-64, and the 9 masked popcounts per word
/// dominated the ECC-on micro burst before this (the 2 KiB of tables stay
/// cache-resident instead).
constexpr std::array<std::array<std::uint8_t, 256>, 8> make_byte_checks() {
  std::array<std::array<std::uint8_t, 256>, 8> t{};
  constexpr CodecTables tables = make_tables();
  for (int p = 0; p < 8; ++p) {
    for (int v = 0; v < 256; ++v) {
      const std::uint64_t w = static_cast<std::uint64_t>(v) << (8 * p);
      std::uint8_t c = 0;
      for (int j = 0; j < 7; ++j) {
        if (std::popcount(w & tables.check_mask[static_cast<std::size_t>(j)]) &
            1) {
          c |= static_cast<std::uint8_t>(1u << j);
        }
      }
      // Overall-parity contribution: the word's own bits plus the parity
      // of this byte's 7-bit check contribution (parity is XOR-linear, so
      // contributions compose exactly like the check bits themselves).
      if ((std::popcount(w) + std::popcount(static_cast<unsigned>(c))) & 1) {
        c |= 0x80;
      }
      t[static_cast<std::size_t>(p)][static_cast<std::size_t>(v)] = c;
    }
  }
  return t;
}

constexpr std::array<std::array<std::uint8_t, 256>, 8> kByteChecks =
    make_byte_checks();

/// Full stored check byte of `word`: bits 0..6 Hamming, bit 7 overall
/// parity — one table load and XOR per data byte.
std::uint8_t full_checks(std::uint64_t word) {
  std::uint8_t c = 0;
  for (int p = 0; p < 8; ++p) {
    c ^= kByteChecks[static_cast<std::size_t>(p)]
                    [static_cast<std::uint8_t>(word >> (8 * p))];
  }
  return c;
}

std::uint64_t load_word(std::span<const std::uint8_t> data, std::uint32_t w) {
  std::uint64_t x = 0;
  std::memcpy(&x, data.data() + w * 8, 8);
  return x;
}

void store_word(std::span<std::uint8_t> data, std::uint32_t w, std::uint64_t x) {
  std::memcpy(data.data() + w * 8, &x, 8);
}

}  // namespace

std::uint8_t EccCodec::encode(std::uint64_t word) { return full_checks(word); }

EccCodec::Decode EccCodec::decode(std::uint64_t word, std::uint8_t check) {
  Decode d{EccStatus::kOk, word};
  const std::uint8_t enc = full_checks(word);
  const std::uint8_t syndrome = static_cast<std::uint8_t>((enc ^ check) & 0x7F);
  // parity(word) folds out of the encoded byte (bit 7 is parity(word) ^
  // parity(enc & 0x7F)); parity_odd is then parity(word) ^ parity(check).
  const std::uint8_t parity_word =
      static_cast<std::uint8_t>((enc >> 7) ^ kParity[enc & 0x7F]);
  const bool parity_odd = (parity_word ^ kParity[check]) != 0;
  if (syndrome == 0 && !parity_odd) return d;
  if (parity_odd) {
    // Odd number of flips — assume one (the SEC guarantee).
    if (syndrome == 0) {
      d.status = EccStatus::kCorrected;  // The parity bit itself flipped.
      return d;
    }
    if (syndrome < 72) {
      const std::int8_t bit = kTables.pos_to_data[syndrome];
      if (bit >= 0) d.data = word ^ (1ull << bit);
      d.status = EccStatus::kCorrected;  // Data or check-bit flip fixed.
      return d;
    }
    d.status = EccStatus::kUncorrectable;  // Syndrome outside the codeword.
    return d;
  }
  d.status = EccStatus::kUncorrectable;  // Even number of flips >= 2.
  return d;
}

RowRetirementMap::RowRetirementMap(const dram::Geometry& geo,
                                   std::uint32_t spare_rows_per_bank)
    : geo_(geo),
      spare_rows_per_bank_(spare_rows_per_bank),
      spares_used_(geo.banks_per_channel(), 0) {
  EASYDRAM_EXPECTS(spare_rows_per_bank < geo.rows_per_bank);
}

std::uint64_t RowRetirementMap::key(std::uint32_t fbank, std::uint32_t row) const {
  return static_cast<std::uint64_t>(fbank) * geo_.rows_per_bank + row;
}

std::uint32_t RowRetirementMap::remap(std::uint32_t fbank, std::uint32_t row) const {
  if (remap_.empty()) return row;
  std::uint32_t cur = row;
  // Chain depth is bounded by the spare budget (each hop consumed a spare).
  for (std::uint32_t hops = 0; hops <= spare_rows_per_bank_; ++hops) {
    const auto it = remap_.find(key(fbank, cur));
    if (it == remap_.end()) return cur;
    cur = it->second;
  }
  return cur;
}

bool RowRetirementMap::is_retired(std::uint32_t fbank, std::uint32_t row) const {
  return remap_.find(key(fbank, row)) != remap_.end();
}

bool RowRetirementMap::budget_exhausted(std::uint32_t fbank) const {
  return spares_used_[fbank] >= spare_rows_per_bank_;
}

std::optional<std::uint32_t> RowRetirementMap::retire(std::uint32_t fbank,
                                                      std::uint32_t row) {
  if (is_retired(fbank, row) || budget_exhausted(fbank)) return std::nullopt;
  const std::uint32_t spare =
      geo_.rows_per_bank - spare_rows_per_bank_ + spares_used_[fbank];
  ++spares_used_[fbank];
  remap_[key(fbank, row)] = spare;
  ++rows_retired_;
  return spare;
}

std::int64_t RowRetirementMap::note_ce(std::uint32_t fbank, std::uint32_t row) {
  return ++ce_counts_[key(fbank, row)];
}

ErrorPolicy::ErrorPolicy(const dram::Geometry& geo, const EccConfig& cfg)
    : geo_(geo),
      cfg_(cfg),
      retirement_(geo, cfg.spare_rows_per_bank),
      banks_(geo.banks_per_channel()),
      scrub_cursor_(static_cast<std::size_t>(geo.ranks_per_channel) *
                        geo.refresh_window_refs,
                    0) {}

std::uint64_t ErrorPolicy::line_key(std::uint32_t fbank, std::uint32_t row,
                                    std::uint32_t col) const {
  return (static_cast<std::uint64_t>(fbank) * geo_.rows_per_bank + row) *
             geo_.cols_per_row() +
         col;
}

const ErrorPolicy::RowChecks* ErrorPolicy::row_checks(std::uint32_t fbank,
                                                      std::uint32_t row) const {
  const auto& bank = banks_[fbank];
  return bank.empty() ? nullptr : bank[row].get();
}

ErrorPolicy::RowChecks& ErrorPolicy::ensure_row(std::uint32_t fbank,
                                                std::uint32_t row) {
  auto& bank = banks_[fbank];
  if (bank.empty()) bank.resize(geo_.rows_per_bank);
  auto& slot = bank[row];
  if (slot == nullptr) {
    slot = std::make_unique<RowChecks>();
    slot->present.resize((geo_.cols_per_row() + 63) / 64, 0);
    slot->ck.resize(geo_.cols_per_row());
  }
  return *slot;
}

bool ErrorPolicy::col_present(const RowChecks& rc, std::uint32_t col) const {
  return (rc.present[col / 64] >> (col % 64)) & 1u;
}

void ErrorPolicy::note_write(std::uint32_t fbank, std::uint32_t row,
                             std::uint32_t col,
                             std::span<const std::uint8_t> data) {
  EASYDRAM_EXPECTS(data.size() == 64);
  RowChecks& rc = ensure_row(fbank, row);
  if (!col_present(rc, col)) {
    rc.present[col / 64] |= 1ull << (col % 64);
    ++protected_lines_;
  }
  for (std::uint32_t w = 0; w < 8; ++w) {
    rc.ck[col][w] = EccCodec::encode(load_word(data, w));
  }
}

bool ErrorPolicy::line_protected(std::uint32_t fbank, std::uint32_t row,
                                 std::uint32_t col) const {
  const RowChecks* rc = row_checks(fbank, row);
  return rc != nullptr && col_present(*rc, col);
}

EccStatus ErrorPolicy::decode_line(std::uint32_t fbank, std::uint32_t row,
                                   std::uint32_t col,
                                   std::span<std::uint8_t> data) const {
  EASYDRAM_EXPECTS(data.size() == 64);
  const RowChecks* rc = row_checks(fbank, row);
  if (rc == nullptr || !col_present(*rc, col)) return EccStatus::kOk;
  EccStatus worst = EccStatus::kOk;
  for (std::uint32_t w = 0; w < 8; ++w) {
    const EccCodec::Decode d = EccCodec::decode(load_word(data, w), rc->ck[col][w]);
    if (d.status == EccStatus::kCorrected) store_word(data, w, d.data);
    if (d.status > worst) worst = d.status;
  }
  return worst;
}

bool ErrorPolicy::note_ce(std::uint32_t fbank, std::uint32_t row) {
  const std::int64_t count = retirement_.note_ce(fbank, row);
  return count == static_cast<std::int64_t>(cfg_.ce_retire_threshold) &&
         !retirement_.is_retired(fbank, row) &&
         !retirement_.budget_exhausted(fbank);
}

std::optional<std::uint32_t> ErrorPolicy::retire_row(std::uint32_t rank,
                                                     std::uint32_t bank,
                                                     std::uint32_t row,
                                                     dram::DramDevice& dev) {
  const std::uint32_t fbank = geo_.flat_bank(rank, bank);
  const auto spare = retirement_.retire(fbank, row);
  if (!spare) return std::nullopt;
  // Migrate every protected column through the correction path. The check
  // bits move verbatim: a word that decodes UE is copied as-is and stays
  // detectable at the spare location (real PPR cannot resurrect lost data
  // either — it surfaces as a typed error until the line is rewritten).
  std::array<std::uint8_t, 64> buf;
  RowChecks* const old_rc = banks_[fbank].empty()
                                ? nullptr
                                : banks_[fbank][row].get();
  if (old_rc == nullptr) return spare;
  for (std::uint32_t col = 0; col < geo_.cols_per_row(); ++col) {
    if (!col_present(*old_rc, col)) continue;
    const dram::DramAddress src{bank, row, col, 0, rank};
    const dram::DramAddress dst{bank, *spare, col, 0, rank};
    dev.backdoor_read(src, buf);
    for (std::uint32_t w = 0; w < 8; ++w) {
      const EccCodec::Decode d =
          EccCodec::decode(load_word(buf, w), old_rc->ck[col][w]);
      if (d.status == EccStatus::kCorrected) store_word(buf, w, d.data);
    }
    dev.backdoor_write(dst, buf);
    RowChecks& new_rc = ensure_row(fbank, *spare);
    if (!col_present(new_rc, col)) {
      new_rc.present[col / 64] |= 1ull << (col % 64);
      ++protected_lines_;
    }
    new_rc.ck[col] = old_rc->ck[col];
    old_rc->present[col / 64] &= ~(1ull << (col % 64));
    --protected_lines_;
  }
  return spare;
}

void ErrorPolicy::scrub_on_slot(std::uint32_t rank, std::int64_t slot,
                                Picoseconds now, dram::DramDevice& dev,
                                ApiStats& stats) {
  if (!cfg_.scrub || protected_lines_ == 0) return;
  const std::uint32_t stripe = geo_.refresh_stripe_of_slot(slot);
  const std::uint32_t stripe_rows = geo_.refresh_stripe_rows();
  const std::uint32_t first_row = stripe * stripe_rows;
  if (first_row >= geo_.rows_per_bank) return;
  const std::uint32_t last_row =
      std::min(first_row + stripe_rows, geo_.rows_per_bank);
  const std::size_t cursor_idx =
      static_cast<std::size_t>(rank) * geo_.refresh_window_refs + stripe;
  std::uint64_t cursor = scrub_cursor_[cursor_idx];

  // Collect up to the budget of protected lines in this slot's stripe,
  // resuming at the cursor and wrapping once — collected first because
  // processing (retirement migration) mutates the check-bit map.
  std::array<std::uint64_t, 64> targets;
  std::uint32_t taken = 0;
  const std::uint32_t budget = std::min(
      cfg_.scrub_lines_per_slot, static_cast<std::uint32_t>(targets.size()));
  for (int pass = 0; pass < 2 && taken < budget; ++pass) {
    for (std::uint32_t bank = 0; bank < geo_.num_banks() && taken < budget;
         ++bank) {
      const std::uint32_t fbank = geo_.flat_bank(rank, bank);
      const std::uint64_t lo = line_key(fbank, first_row, 0);
      const std::uint64_t hi = line_key(fbank, last_row, 0);
      const std::uint64_t start = pass == 0 ? std::max(lo, cursor) : lo;
      const std::uint64_t end = pass == 0 ? hi : std::min(hi, cursor);
      // Walk rows then column bits in ascending order — the same
      // (fbank, row, col) line-key order the ordered-map store used to
      // give the cursor.
      for (std::uint32_t row = first_row; row < last_row && taken < budget;
           ++row) {
        const RowChecks* rc = row_checks(fbank, row);
        if (rc == nullptr) continue;
        const std::uint64_t row_base = line_key(fbank, row, 0);
        for (std::size_t w = 0; w < rc->present.size() && taken < budget;
             ++w) {
          std::uint64_t bits = rc->present[w];
          while (bits != 0 && taken < budget) {
            const int b = std::countr_zero(bits);
            bits &= bits - 1;
            const std::uint64_t k = row_base + w * 64 +
                                    static_cast<std::uint64_t>(b);
            if (k >= start && k < end) targets[taken++] = k;
          }
        }
      }
    }
  }
  if (taken > 0) scrub_cursor_[cursor_idx] = targets[taken - 1] + 1;

  std::array<std::uint8_t, 64> buf;
  for (std::uint32_t i = 0; i < taken; ++i) {
    const std::uint64_t k = targets[i];
    const std::uint32_t col = static_cast<std::uint32_t>(k % geo_.cols_per_row());
    const std::uint64_t rk = k / geo_.cols_per_row();
    const std::uint32_t row = static_cast<std::uint32_t>(rk % geo_.rows_per_bank);
    const std::uint32_t fbank = static_cast<std::uint32_t>(rk / geo_.rows_per_bank);
    const std::uint32_t bank = fbank % geo_.num_banks();
    const dram::DramAddress a{bank, row, col, 0, rank};
    dev.scrub_read(a, now, buf);
    ++stats.scrub_reads;
    const EccStatus st = decode_line(fbank, row, col, buf);
    if (st == EccStatus::kOk) continue;
    if (st == EccStatus::kCorrected) {
      ++stats.ecc_corrected;
      dev.scrub_writeback(a, buf);  // Restore full charge on the fixed line.
      if (note_ce(fbank, row)) {
        if (retire_row(rank, bank, row, dev)) ++stats.rows_retired;
      }
      continue;
    }
    // Detected-uncorrectable under scrub: retire the row so future writes
    // land on a healthy spare; the lost data stays typed-detectable.
    ++stats.ecc_uncorrectable;
    if (!retirement_.is_retired(fbank, row)) {
      if (retire_row(rank, bank, row, dev)) ++stats.rows_retired;
    }
  }
}

}  // namespace easydram::smc
