#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/units.hpp"
#include "smc/bloom.hpp"
#include "smc/easyapi.hpp"

namespace easydram::smc {

/// Result of profiling one DRAM row.
struct RowProfile {
  std::uint32_t bank = 0;
  std::uint32_t row = 0;
  /// Smallest tested tRCD at which every examined cache line of the row
  /// read back correctly.
  Picoseconds min_reliable{};
};

/// Offline DRAM characterization for the tRCD-reduction study (§8.1): for
/// each row, initialize lines with a known pattern, access them under a
/// reduced tRCD, and compare. Runs through EasyAPI against the real (here:
/// modelled) chip; batches execute uncharged because the paper performs
/// characterization before emulation begins.
class TrcdProfiler {
 public:
  /// `test_values` must be sorted descending (first = most conservative).
  TrcdProfiler(EasyApi& api, std::vector<Picoseconds> test_values);

  /// True iff all examined lines of the row read correctly at `trcd`.
  /// `lines_to_test` == 0 tests every cache line of the row. `rank`
  /// selects the rank within the api's channel.
  bool row_reliable_at(std::uint32_t bank, std::uint32_t row, Picoseconds trcd,
                       std::uint32_t lines_to_test = 0, std::uint32_t rank = 0);

  /// Sweeps the test values and returns the row's minimum reliable value
  /// (the most conservative value when even that fails, which the modelled
  /// chip — like the paper's — never produces below nominal).
  RowProfile profile_row(std::uint32_t bank, std::uint32_t row,
                         std::uint32_t lines_to_test = 0, std::uint32_t rank = 0);

  std::int64_t lines_tested() const { return lines_tested_; }

 private:
  void init_row_pattern(std::uint32_t bank, std::uint32_t row,
                        std::span<const std::uint32_t> cols, std::uint32_t rank);

  EasyApi* api_;
  std::vector<Picoseconds> test_values_;
  std::int64_t lines_tested_ = 0;
};

/// Statistics of a weak-row filter build.
struct WeakRowFilterStats {
  std::int64_t rows_profiled = 0;
  std::int64_t weak_rows = 0;
  double weak_fraction = 0.0;
};

/// Profiles `rows_per_bank` rows of each listed bank — on *every* rank of
/// the api's channel, so no rank is opened with a reduced tRCD unprofiled —
/// at `threshold` and builds the RAIDR-style Bloom filter of weak rows
/// (§8.2). Keys are dram::row_key values, matching
/// MemoryController::trcd_for; for the default 1x1 geometry this is the
/// historical (b << 32) | r encoding.
BloomFilter build_weak_row_filter(EasyApi& api, std::span<const std::uint32_t> banks,
                                  std::uint32_t rows_per_bank, Picoseconds threshold,
                                  std::size_t filter_bits, std::size_t hashes,
                                  WeakRowFilterStats* stats = nullptr,
                                  std::uint32_t lines_per_row = 0);

}  // namespace easydram::smc
