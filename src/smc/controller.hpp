#pragma once

#include <cstdint>
#include <memory>

#include <vector>

#include "smc/bloom.hpp"
#include "smc/easyapi.hpp"
#include "smc/mitigation/mitigator.hpp"
#include "smc/request_table.hpp"
#include "smc/rowclone_map.hpp"
#include "smc/scheduler.hpp"

namespace easydram::smc {

/// A software memory controller: a C++ program executed by the programmable
/// core. `step` is one iteration of the §4.4 main loop — check for new
/// requests, make a scheduling decision, handle DRAM responses.
class Controller {
 public:
  virtual ~Controller() = default;

  /// Runs one main-loop iteration; returns true when any request made
  /// progress (the system engine uses this to detect idleness).
  virtual bool step(EasyApi& api) = 0;

  /// True when no buffered work remains inside the controller.
  virtual bool idle() const = 0;
};

/// Options of the full-featured controller.
struct ControllerOptions {
  /// Scheduling policy; defaults to FR-FCFS when null.
  std::unique_ptr<Scheduler> scheduler;
  std::size_t request_table_capacity = 32;

  /// tRCD reduction (§8): when `weak_rows` is set, rows absent from the
  /// filter are accessed with `reduced_trcd`; rows (possibly falsely)
  /// flagged weak use the nominal value.
  const BloomFilter* weak_rows = nullptr;
  Picoseconds reduced_trcd{9000};

  /// RowClone (§7): when set, kRowClone requests whose pair is verified
  /// clonable run in DRAM; others get a fallback response (ok = false).
  const RowCloneMap* clonable = nullptr;

  /// Row-hit drain limit: after the scheduler picks a request, up to this
  /// many further buffered requests targeting the *same DRAM row* join the
  /// same command batch (column accesses back to back). This is how a real
  /// controller streams writes and row-hit reads; without it every request
  /// would pay the full software-loop latency.
  std::size_t row_batch_limit = 16;

  /// RowHammer mitigation policy (null = unmitigated). Non-owning: the
  /// policy must outlive the controller. The system layer owns one
  /// instance per channel precisely so policy state (Graphene tables,
  /// PARA's RNG position) and accumulated stats survive controller
  /// rebuilds (enable_rowclone, install_weak_row_filter). The controller
  /// feeds it every demand ACT (wire the controller as the EasyApi's
  /// ActSink) and injects the targeted neighbor refreshes it requests as
  /// charged Bender batches right after the triggering request's batch.
  mitigation::RowHammerMitigator* mitigator = nullptr;
};

/// The reference software memory controller shipped with EasyDRAM: request
/// transfer, FR-FCFS/FCFS scheduling, open-page policy, refresh
/// maintenance, and the RowClone / reduced-tRCD / profiling request paths.
class MemoryController final : public Controller, public ActSink {
 public:
  explicit MemoryController(ControllerOptions options);

  bool step(EasyApi& api) override;
  bool idle() const override { return table_.empty(); }

  const RequestTable& table() const { return table_; }

  /// Per-stream arrival/service bookkeeping (fed to stream-aware
  /// schedulers through PickContext).
  const StreamTable& streams() const { return streams_; }

  /// Installed mitigation policy, if any (owned by the caller; the
  /// system layer aggregates its stats across channels).
  const mitigation::RowHammerMitigator* mitigator() const {
    return options_.mitigator;
  }

  /// ActSink: observes this controller's own command stream. Demand ACTs
  /// feed the mitigation policy; the victim refreshes the policy requests
  /// are collected here and injected by the next flush_mitigation().
  /// Issued and skipped refresh slots are both forwarded so the policy's
  /// retention-window clock keeps wall pace under a skipping regime.
  void on_act(const dram::DramAddress& a) override;
  void on_refresh(std::uint32_t rank) override;
  void on_refresh_skipped(std::uint32_t rank) override;

 private:
  /// Injects one targeted-refresh program per collected victim row and
  /// flushes it (charged — mitigation work delays real requests).
  void flush_mitigation(EasyApi& api);
  void serve(EasyApi& api, TableEntry entry);
  /// Serves `first` plus every same-row column request drained with it.
  void serve_column_batch(EasyApi& api, TableEntry first);
  void serve_rowclone(EasyApi& api, const TableEntry& entry);
  void serve_profile(EasyApi& api, const TableEntry& entry);

  /// Error pipeline for one demand read (api.error_policy() enabled):
  /// SEC-DED decode + CE bookkeeping, bounded nominal-timing retries for
  /// UEs and unreliable reads, retirement of hard-faulted rows, and escape
  /// verification. Mutates `rb` to the data the response should carry;
  /// returns the typed verdict.
  RequestError serve_read_ecc(EasyApi& api, ErrorPolicy& ep,
                              const dram::DramAddress& addr,
                              bender::ReadbackEntry& rb);

  /// Chooses the tRCD for opening the row addressed by `a` per the Bloom
  /// filter (keyed by dram::row_key, so distinct ranks/channels never
  /// alias).
  Picoseconds trcd_for(const dram::DramAddress& a, const EasyApi& api) const;

  ControllerOptions options_;
  RequestTable table_;
  /// Per-stream arrival and attained-service counters; ATLAS/TCM/BLISS
  /// consult them via PickContext.
  StreamTable streams_;
  /// Scratch for serve_column_batch, reused across batches so the hot
  /// path never allocates.
  std::vector<TableEntry> batch_scratch_;
  /// Readbacks of the current column batch, captured before the error
  /// pipeline's retry flushes invalidate the api's readback buffer.
  std::vector<bender::ReadbackEntry> rdback_scratch_;

  /// Victim rows the mitigator asked to refresh, pending injection.
  std::vector<dram::DramAddress> pending_victims_;
  /// True while the injected refresh batch itself is being built: its
  /// ACTs must not re-enter the policy (the device's ground-truth exposure
  /// accounting still sees them and resets the victims' counters).
  bool injecting_mitigation_ = false;
};

/// The minimal Listing-1 controller: serves read requests one at a time,
/// no scheduling policy, no techniques. Used by the quickstart example and
/// as the simplest possible template for new controllers.
class SimpleReadController final : public Controller {
 public:
  bool step(EasyApi& api) override;
  bool idle() const override { return true; }
};

}  // namespace easydram::smc
