#include "smc/refresh_policy.hpp"

#include "common/contracts.hpp"

namespace easydram::smc {

RaidrRefreshPolicy::RaidrRefreshPolicy(RaidrBinning binning)
    : binning_(std::move(binning)) {
  EASYDRAM_EXPECTS(binning_.window_refs > 0 && binning_.ranks > 0);
  EASYDRAM_EXPECTS(binning_.multipliers.size() ==
                   static_cast<std::size_t>(binning_.ranks) *
                       binning_.window_refs);
  for (const std::uint8_t m : binning_.multipliers) {
    EASYDRAM_EXPECTS(m >= 1);
  }
}

bool RaidrRefreshPolicy::should_issue(std::uint32_t rank, std::int64_t slot) {
  EASYDRAM_EXPECTS(rank < binning_.ranks && slot >= 0);
  const auto stripe = static_cast<std::uint32_t>(slot % binning_.window_refs);
  const std::int64_t round = slot / binning_.window_refs;
  const std::uint32_t m = binning_.multiplier(rank, stripe);
  // Phase-spread: stripe s issues on rounds congruent to s mod m, so each
  // round refreshes ~1/m of the m-bin instead of all of it every m-th
  // round (which would leave round 0 with zero savings and round m-1 with
  // a refresh burst).
  return round % m == stripe % m;
}

std::string_view to_string(RefreshKind kind) {
  switch (kind) {
    case RefreshKind::kAllRows: return "all_rows";
    case RefreshKind::kRaidr: return "raidr";
  }
  return "?";
}

std::optional<RefreshKind> parse_refresh(std::string_view name) {
  if (name == "all_rows" || name == "all") return RefreshKind::kAllRows;
  if (name == "raidr") return RefreshKind::kRaidr;
  return std::nullopt;
}

}  // namespace easydram::smc
