#include "sys/system.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace easydram::sys {

SystemConfig jetson_nano_time_scaling() {
  SystemConfig cfg;  // Defaults already model this target.
  return cfg;
}

SystemConfig pidram_no_time_scaling() {
  SystemConfig cfg;
  cfg.mode = timescale::SystemMode::kNoTimeScaling;
  cfg.core = cpu::pidram_inorder_core();
  cfg.caches = cpu::easydram_caches();
  // In the PiDRAM-style build the processor's FPGA clock *is* its clock.
  cfg.proc_domain = timescale::DomainConfig{Frequency::megahertz(50),
                                            Frequency::megahertz(50)};
  return cfg;
}

SystemConfig validation_time_scaling() {
  SystemConfig cfg;
  cfg.core = cpu::boom_1ghz_core();
  cfg.proc_domain = timescale::DomainConfig{Frequency::megahertz(100),
                                            Frequency::gigahertz(1)};
  return cfg;
}

SystemConfig validation_reference() {
  SystemConfig cfg = validation_time_scaling();
  cfg.mode = timescale::SystemMode::kReference;
  // The reference RTL system runs everything at the 1 GHz target clock.
  cfg.proc_domain = timescale::DomainConfig{Frequency::gigahertz(1),
                                            Frequency::gigahertz(1)};
  return cfg;
}

EasyDramSystem::EasyDramSystem(const SystemConfig& cfg)
    : cfg_(cfg),
      device_(cfg.geometry, cfg.timing, cfg.variation),
      tile_(cfg.tile),
      mapper_(cfg.line_interleaved_mapping
                  ? static_cast<std::unique_ptr<smc::AddressMapper>>(
                        std::make_unique<smc::LineInterleavedMapper>(cfg.geometry))
                  : std::make_unique<smc::LinearMapper>(cfg.geometry)),
      keeper_(cfg.mode, cfg.proc_domain, cfg.tile.core_clock,
              cfg.mc_sched_latency_cycles, cfg.hardware_mc),
      api_(tile_, device_, *mapper_, keeper_) {
  EASYDRAM_EXPECTS(cfg.core.emulated_clock == cfg.proc_domain.emulated_clock);
  rebuild_controller();
}

void EasyDramSystem::rebuild_controller() {
  EASYDRAM_EXPECTS(!controller_ || controller_->idle());
  smc::ControllerOptions options;
  if (cfg_.scheduler_factory) {
    options.scheduler = cfg_.scheduler_factory();
    EASYDRAM_EXPECTS(options.scheduler != nullptr);
  } else if (cfg_.use_frfcfs) {
    options.scheduler = std::make_unique<smc::FrfcfsScheduler>();
  } else {
    options.scheduler = std::make_unique<smc::FcfsScheduler>();
  }
  options.reduced_trcd = cfg_.reduced_trcd;
  options.row_batch_limit = cfg_.row_batch_limit;
  options.weak_rows = weak_rows_ ? &*weak_rows_ : nullptr;
  options.clonable = rowclone_enabled_ ? &clone_map_ : nullptr;
  controller_ = std::make_unique<smc::MemoryController>(std::move(options));
}

void EasyDramSystem::enable_rowclone() {
  rowclone_enabled_ = true;
  rebuild_controller();
}

void EasyDramSystem::install_weak_row_filter(smc::BloomFilter filter) {
  weak_rows_ = std::move(filter);
  rebuild_controller();
}

void EasyDramSystem::account_cpu_progress(std::int64_t now) {
  if (now <= last_cpu_cycle_) return;
  if (cfg_.mode == timescale::SystemMode::kNoTimeScaling) {
    // Without time scaling the processor's cycle count *is* the wall clock
    // at its FPGA frequency: stall cycles already elapsed as SMC/DRAM wall
    // time, so the wall is synchronized, never double-charged.
    keeper_.advance_wall_to(cfg_.proc_domain.fpga_clock.cycles_to_ps(now));
  } else {
    // Under time scaling every emulated cycle — including the replayed
    // stall windows of Fig. 5(e) — executes on the processor's FPGA clock.
    keeper_.account_proc_cycles(now - last_cpu_cycle_);
  }
  last_cpu_cycle_ = now;
}

void EasyDramSystem::drain_outgoing() {
  auto& fifo = tile_.outgoing();
  while (!fifo.empty()) {
    tile::Response resp = fifo.pop();
    completed_.emplace(resp.id, std::move(resp));
  }
}

bool EasyDramSystem::pump_once() {
  const bool worked = controller_->step(api_);
  keeper_.account_smc_cycles(tile_.meter().take());
  drain_outgoing();
  if (!worked) {
    // Only future-tagged requests remain: let the emulation point skip the
    // idle gap so the head request becomes visible.
    if (!tile_.incoming().empty()) {
      keeper_.skip_idle_until_proc_cycle(tile_.incoming().front().issue_proc_cycle);
    }
  }
  return worked;
}

void EasyDramSystem::pump_until_fifo_has_room() {
  int guard = 0;
  while (tile_.incoming().full()) {
    pump_once();
    EASYDRAM_EXPECTS(++guard < 1'000'000);
  }
}

std::uint64_t EasyDramSystem::submit(tile::Request req, std::int64_t now) {
  account_cpu_progress(now);
  pump_until_fifo_has_room();
  req.id = next_id_++;
  req.issue_proc_cycle = now;
  req.arrival_wall = keeper_.wall();
  const std::uint64_t id = req.id;
  tile_.incoming().push(std::move(req));
  return id;
}

std::uint64_t EasyDramSystem::submit_read(std::uint64_t paddr, std::int64_t now) {
  tile::Request req;
  req.kind = tile::RequestKind::kRead;
  req.paddr = paddr;
  return submit(std::move(req), now);
}

std::uint64_t EasyDramSystem::submit_write(std::uint64_t paddr, std::int64_t now) {
  tile::Request req;
  req.kind = tile::RequestKind::kWrite;
  req.paddr = paddr;
  // The timing models carry no data; fabricate a deterministic payload so
  // DRAM contents evolve benignly.
  SplitMix64 sm(paddr ^ 0xD47A);
  for (auto& b : req.wdata) b = static_cast<std::uint8_t>(sm.next());
  return submit(std::move(req), now);
}

std::uint64_t EasyDramSystem::submit_rowclone(std::uint64_t src_paddr,
                                              std::uint64_t dst_paddr,
                                              std::int64_t now) {
  tile::Request req;
  req.kind = tile::RequestKind::kRowClone;
  req.paddr = src_paddr;
  req.paddr2 = dst_paddr;
  return submit(std::move(req), now);
}

std::uint64_t EasyDramSystem::submit_profile(std::uint64_t paddr, Picoseconds trcd,
                                             std::int64_t now) {
  tile::Request req;
  req.kind = tile::RequestKind::kProfileTrcd;
  req.paddr = paddr;
  req.profile_trcd = trcd;
  return submit(std::move(req), now);
}

cpu::Completion EasyDramSystem::wait(std::uint64_t id) {
  int guard = 0;
  while (!completed_.contains(id)) {
    pump_once();
    EASYDRAM_EXPECTS(++guard < 100'000'000);
  }
  const auto it = completed_.find(id);
  cpu::Completion c{it->second.release_proc_cycle, it->second.ok};
  completed_.erase(it);
  return c;
}

cpu::RunResult EasyDramSystem::run(cpu::TraceSource& trace) {
  cpu::Core core(cfg_.core, cfg_.caches);
  cpu::RunResult result = core.run(trace, *this);

  // Process any remaining posted writes and reconcile the wall clock with
  // the core's final cycle count.
  account_cpu_progress(result.cycles);
  int guard = 0;
  while (!tile_.incoming().empty() || !controller_->idle()) {
    pump_once();
    EASYDRAM_EXPECTS(++guard < 100'000'000);
  }
  // Let the controller observe its empty table and leave critical mode,
  // resynchronising the time-scaling counters (Fig. 5(f)).
  while (keeper_.counters().critical()) {
    pump_once();
    EASYDRAM_EXPECTS(++guard < 100'000'000);
  }
  drain_outgoing();
  completed_.clear();  // Unconsumed posted-write acks.
  return result;
}

}  // namespace easydram::sys
