#include "sys/system.hpp"

#include <algorithm>
#include <cstring>

#include "common/rng.hpp"
#include "sys/epoch.hpp"

namespace easydram::sys {

SystemConfig jetson_nano_time_scaling() {
  SystemConfig cfg;  // Defaults already model this target.
  return cfg;
}

SystemConfig pidram_no_time_scaling() {
  SystemConfig cfg;
  cfg.mode = timescale::SystemMode::kNoTimeScaling;
  cfg.core = cpu::pidram_inorder_core();
  cfg.caches = cpu::easydram_caches();
  // In the PiDRAM-style build the processor's FPGA clock *is* its clock.
  cfg.proc_domain = timescale::DomainConfig{Frequency::megahertz(50),
                                            Frequency::megahertz(50)};
  return cfg;
}

SystemConfig validation_time_scaling() {
  SystemConfig cfg;
  cfg.core = cpu::boom_1ghz_core();
  cfg.proc_domain = timescale::DomainConfig{Frequency::megahertz(100),
                                            Frequency::gigahertz(1)};
  return cfg;
}

SystemConfig validation_reference() {
  SystemConfig cfg = validation_time_scaling();
  cfg.mode = timescale::SystemMode::kReference;
  // The reference RTL system runs everything at the 1 GHz target clock.
  cfg.proc_domain = timescale::DomainConfig{Frequency::gigahertz(1),
                                            Frequency::gigahertz(1)};
  return cfg;
}

namespace {

/// Per-channel chip seed: channel 0 keeps the configured seed (so the 1x1
/// default reproduces the original synthetic chip bit for bit); further
/// channels model physically distinct modules.
dram::VariationConfig channel_variation(const SystemConfig& cfg,
                                        std::uint32_t channel) {
  dram::VariationConfig v = cfg.variation;
  if (channel != 0) v.seed = hash_mix(v.seed, channel);
  return v;
}

}  // namespace

EasyDramSystem::ChannelSlice::ChannelSlice(const SystemConfig& cfg,
                                           const smc::AddressMapper& mapper,
                                           std::uint32_t channel)
    : device(cfg.geometry, cfg.timing, channel_variation(cfg, channel)),
      tile(cfg.tile),
      keeper(cfg.mode, cfg.proc_domain, cfg.tile.core_clock,
             cfg.mc_sched_latency, cfg.hardware_mc),
      api(tile, device, mapper, keeper, channel) {}

EasyDramSystem::EasyDramSystem(const SystemConfig& cfg)
    : cfg_(cfg),
      mapper_(smc::make_mapper(cfg.mapping, cfg.geometry, cfg.bank_partitions)) {
  EASYDRAM_EXPECTS(cfg.core.emulated_clock == cfg.proc_domain.emulated_clock);
  EASYDRAM_EXPECTS(cfg.geometry.channels >= 1);
  EASYDRAM_EXPECTS(cfg.geometry.ranks_per_channel >= 1);
  channels_.reserve(cfg.geometry.channels);
  mitigators_.reserve(cfg.geometry.channels);
  refresh_policies_.reserve(cfg.geometry.channels);
  error_policies_.reserve(cfg.geometry.channels);
  for (std::uint32_t ch = 0; ch < cfg.geometry.channels; ++ch) {
    channels_.push_back(std::make_unique<ChannelSlice>(cfg_, *mapper_, ch));
    ChannelSlice& slice = *channels_.back();
    if (cfg_.track_row_hammer) slice.device.set_hammer_tracking(true);
    if (cfg_.track_retention) slice.device.set_retention_tracking(true);
    if (cfg_.faults.enabled) {
      // The fault model reads the ground-truth bookkeeping its triggers
      // need, so those trackers come on with it.
      if (cfg_.faults.hammer_flip_threshold > 0) {
        slice.device.set_hammer_tracking(true);
      }
      if (cfg_.faults.retention_flips) slice.device.set_retention_tracking(true);
      dram::FaultConfig f = cfg_.faults;
      if (ch != 0) f.seed = hash_mix(f.seed, ch);
      slice.device.install_fault_model(f);
    }
    if (cfg_.ecc.enabled) {
      error_policies_.push_back(
          std::make_unique<smc::ErrorPolicy>(cfg_.geometry, cfg_.ecc));
    } else {
      error_policies_.push_back(nullptr);
    }
    slice.api.set_error_policy(error_policies_.back().get());
    mitigators_.push_back(
        smc::mitigation::make_mitigator(cfg_.mitigation, cfg_.geometry, ch));
    // Retention-aware refresh: profile this channel's (independently
    // seeded) chip once at power-on and install the binning. An offline
    // setup pass, so it charges no timeline — matching how the weak-row
    // and RowClone characterizations run before emulation begins.
    if (cfg_.refresh == smc::RefreshKind::kRaidr) {
      smc::RaidrBinStats stats{};
      refresh_policies_.push_back(std::make_unique<smc::RaidrRefreshPolicy>(
          smc::profile_retention_bins(slice.device, cfg_.retention_profiler,
                                      &stats)));
      refresh_bin_stats_.push_back(stats);
    } else {
      refresh_policies_.push_back(nullptr);
    }
    slice.api.set_refresh_policy(refresh_policies_.back().get());
  }
  rebuild_controllers();
  // The parallel pump engine is worth building only when there is more
  // than one slice to shard; the serial engine remains the reference
  // implementation (and the default). Any worker count yields bit-identical
  // observable state, so clamping is purely a host-resource decision.
  const unsigned workers = std::min(
      std::max(cfg_.pump_workers, 1u), static_cast<unsigned>(channels_.size()));
  if (workers > 1) epoch_ = std::make_unique<EpochScheduler>(*this, workers);
}

EasyDramSystem::~EasyDramSystem() = default;

smc::EasyApi& EasyDramSystem::api(std::uint32_t channel) {
  EASYDRAM_EXPECTS(channel < channels_.size());
  return channels_[channel]->api;
}

dram::DramDevice& EasyDramSystem::device(std::uint32_t channel) {
  EASYDRAM_EXPECTS(channel < channels_.size());
  return channels_[channel]->device;
}

smc::ErrorPolicy* EasyDramSystem::error_policy(std::uint32_t channel) {
  EASYDRAM_EXPECTS(channel < error_policies_.size());
  return error_policies_[channel].get();
}

const timescale::TimeKeeper& EasyDramSystem::keeper(std::uint32_t channel) const {
  EASYDRAM_EXPECTS(channel < channels_.size());
  return channels_[channel]->keeper;
}

Picoseconds EasyDramSystem::wall() const {
  Picoseconds w{};
  for (const auto& ch : channels_) w = std::max(w, ch->keeper.wall());
  return w;
}

smc::ApiStats EasyDramSystem::smc_stats() const {
  smc::ApiStats total;
  for (const auto& ch : channels_) {
    const smc::ApiStats& s = ch->api.stats();
    total.requests_received += s.requests_received;
    total.responses_sent += s.responses_sent;
    total.batches_executed += s.batches_executed;
    total.commands_executed += s.commands_executed;
    total.rowclone_attempts += s.rowclone_attempts;
    total.rowclone_successes += s.rowclone_successes;
    total.refreshes_issued += s.refreshes_issued;
    total.refreshes_skipped += s.refreshes_skipped;
    total.violations_seen |= s.violations_seen;
    total.dram_busy += s.dram_busy;
    total.ecc_corrected += s.ecc_corrected;
    total.ecc_uncorrectable += s.ecc_uncorrectable;
    total.scrub_reads += s.scrub_reads;
    total.retries_issued += s.retries_issued;
    total.rows_retired += s.rows_retired;
    total.ecc_escaped += s.ecc_escaped;
    total.sched_picks += s.sched_picks;
    total.sched_row_hits += s.sched_row_hits;
    total.sched_row_conflicts += s.sched_row_conflicts;
    total.sched_entries_scanned += s.sched_entries_scanned;
  }
  return total;
}

smc::mitigation::MitigationStats EasyDramSystem::mitigation_stats() const {
  smc::mitigation::MitigationStats total;
  for (const auto& m : mitigators_) {
    if (m == nullptr) continue;
    const smc::mitigation::MitigationStats& s = m->stats();
    total.acts_observed += s.acts_observed;
    total.triggers += s.triggers;
    total.neighbor_refreshes += s.neighbor_refreshes;
    total.window_resets += s.window_resets;
  }
  return total;
}

std::int64_t EasyDramSystem::max_hammer_exposure() const {
  std::int64_t m = 0;
  for (const auto& ch : channels_) {
    m = std::max(m, ch->device.max_hammer_exposure());
  }
  return m;
}

smc::RaidrBinStats EasyDramSystem::refresh_bin_stats() const {
  smc::RaidrBinStats total{};
  double issue_acc = 0.0;
  for (const smc::RaidrBinStats& s : refresh_bin_stats_) {
    total.stripes_total += s.stripes_total;
    total.stripes_x1 += s.stripes_x1;
    total.stripes_x2 += s.stripes_x2;
    total.stripes_x4 += s.stripes_x4;
    total.rows_profiled += s.rows_profiled;
    // Per-channel vector order is fixed at construction, so this sum is
    // reproducible at any thread count.
    // NOLINT-easydram-next-line(float-accumulation-order)
    issue_acc += s.issue_fraction * static_cast<double>(s.stripes_total);
  }
  if (total.stripes_total > 0) {
    total.issue_fraction = issue_acc / static_cast<double>(total.stripes_total);
  }
  return total;
}

std::int64_t EasyDramSystem::refresh_slots_consumed() const {
  std::int64_t total = 0;
  for (const auto& ch : channels_) {
    for (std::uint32_t rank = 0; rank < ch->device.num_ranks(); ++rank) {
      total += ch->device.refresh_slots(rank);
    }
  }
  return total;
}

std::int64_t EasyDramSystem::retention_violations() const {
  std::int64_t total = 0;
  for (const auto& ch : channels_) total += ch->device.retention_violations();
  return total;
}

Picoseconds EasyDramSystem::max_retention_overshoot() const {
  Picoseconds m{};
  for (const auto& ch : channels_) {
    m = std::max(m, ch->device.max_retention_overshoot());
  }
  return m;
}

void EasyDramSystem::rebuild_controllers() {
  for (std::uint32_t idx = 0; idx < channels_.size(); ++idx) {
    ChannelSlice& ch = *channels_[idx];
    EASYDRAM_EXPECTS(!ch.controller || ch.controller->idle());
    smc::ControllerOptions options;
    if (cfg_.scheduler_factory) {
      options.scheduler = cfg_.scheduler_factory();
      EASYDRAM_EXPECTS(options.scheduler != nullptr);
    } else if (cfg_.sched != smc::SchedulerKind::kAuto) {
      options.scheduler = smc::make_scheduler(cfg_.sched);
    } else if (cfg_.use_frfcfs) {
      options.scheduler = std::make_unique<smc::FrfcfsScheduler>();
    } else {
      options.scheduler = std::make_unique<smc::FcfsScheduler>();
    }
    options.reduced_trcd = cfg_.reduced_trcd;
    options.row_batch_limit = cfg_.row_batch_limit;
    options.weak_rows = weak_rows_ ? &*weak_rows_ : nullptr;
    options.clonable = rowclone_enabled_ ? &clone_map_ : nullptr;
    // The policy instance persists across rebuilds (it lives in
    // mitigators_): a mid-run enable_rowclone/install_weak_row_filter must
    // neither rewind PARA's RNG stream nor zero the accumulated stats.
    options.mitigator = mitigators_[idx].get();
    auto controller = std::make_unique<smc::MemoryController>(std::move(options));
    // The controller observes its own command stream: ACTs feed the
    // mitigation policy. Without a policy the sink stays unset (zero
    // virtual-call cost on the batch-building path).
    ch.api.set_act_sink(mitigators_[idx] != nullptr ? controller.get() : nullptr);
    ch.controller = std::move(controller);
  }
}

void EasyDramSystem::enable_rowclone() {
  rowclone_enabled_ = true;
  rebuild_controllers();
}

void EasyDramSystem::install_weak_row_filter(smc::BloomFilter filter) {
  weak_rows_ = std::move(filter);
  rebuild_controllers();
}

smc::WeakRowFilterStats EasyDramSystem::characterize_and_install_weak_rows(
    std::span<const std::uint32_t> banks, std::uint32_t rows_per_bank,
    Picoseconds threshold, std::size_t filter_bits, std::size_t hashes,
    std::uint32_t lines_per_row) {
  smc::WeakRowFilterStats total{};
  std::optional<smc::BloomFilter> merged;
  for (auto& ch : channels_) {
    smc::WeakRowFilterStats s{};
    smc::BloomFilter f = smc::build_weak_row_filter(
        ch->api, banks, rows_per_bank, threshold, filter_bits, hashes, &s,
        lines_per_row);
    total.rows_profiled += s.rows_profiled;
    total.weak_rows += s.weak_rows;
    if (!merged) {
      merged = std::move(f);
    } else {
      merged->merge(f);
    }
  }
  total.weak_fraction = total.rows_profiled == 0
                            ? 0.0
                            : static_cast<double>(total.weak_rows) /
                                  static_cast<double>(total.rows_profiled);
  install_weak_row_filter(std::move(*merged));
  return total;
}

void EasyDramSystem::account_cpu_progress(std::int64_t now) {
  if (now <= last_cpu_cycle_) return;
  for (auto& ch : channels_) {
    if (cfg_.mode == timescale::SystemMode::kNoTimeScaling) {
      // Without time scaling the processor's cycle count *is* the wall clock
      // at its FPGA frequency: stall cycles already elapsed as SMC/DRAM wall
      // time, so the wall is synchronized, never double-charged.
      ch->keeper.advance_wall_to(cfg_.proc_domain.fpga_clock.cycles_to_ps(now));
    } else {
      // Under time scaling every emulated cycle — including the replayed
      // stall windows of Fig. 5(e) — executes on the processor's FPGA clock.
      ch->keeper.account_proc_cycles(Cycles{now - last_cpu_cycle_});
    }
  }
  last_cpu_cycle_ = now;
}

void EasyDramSystem::drain_outgoing() {
  for (auto& ch : channels_) {
    auto& fifo = ch->tile.outgoing();
    while (!fifo.empty()) {
      // The system engine only tracks completion metadata; the 64-byte
      // payload stays in the ring slot and is never copied out.
      const tile::Response& resp = fifo.front();
      completed_.put(resp.id, resp.release_proc_cycle, resp.ok, resp.error,
                     resp.data_reliable);
      record_latency(resp.id, resp.stream_id, resp.release_proc_cycle);
      fifo.drop();
    }
  }
}

void EasyDramSystem::record_latency(std::uint64_t id, std::uint32_t stream,
                                    std::int64_t release_proc_cycle) {
  if (!cfg_.track_stream_latency) return;
  if (stream >= stream_samples_.size()) stream_samples_.resize(stream + 1);
  stream_samples_[stream].push_back(release_proc_cycle -
                                    completed_.issue_proc_cycle(id));
}

bool EasyDramSystem::step_channel(ChannelSlice& ch) {
  // Fast path for provably idle channels: with nothing staged, nothing
  // arriving, and no critical-mode exit pending, a full controller step
  // reduces to one charged poll iteration — apply exactly that charge
  // and skip the scheduler machinery. (The poll charge is modeled SMC
  // spin time, so it must happen either way to keep timelines
  // bit-identical; in setup mode the step would not charge it either.)
  tile::EasyTile& tile = ch.tile;
  if (ch.controller->idle() && tile.incoming().empty() &&
      tile.outgoing().empty() && !ch.keeper.counters().critical() &&
      tile.meter().pending().count == 0) {
    if (!ch.api.setup_mode()) {
      tile.meter().charge(tile.meter().costs().poll_iteration);
      ch.keeper.account_smc_cycles(tile.meter().take());
    }
    return false;
  }
  const bool worked = ch.controller->step(ch.api);
  ch.keeper.account_smc_cycles(tile.meter().take());
  if (!worked) {
    // Only future-tagged requests remain on this channel: let its
    // emulation point skip the idle gap so the head request becomes
    // visible.
    if (!tile.incoming().empty()) {
      ch.keeper.skip_idle_until_proc_cycle(
          tile.incoming().front().issue_proc_cycle);
    }
  }
  return worked;
}

bool EasyDramSystem::pump_once() {
  bool any_worked = false;
  for (auto& ch : channels_) {
    any_worked = step_channel(*ch) || any_worked;
  }
  drain_outgoing();
  return any_worked;
}

void EasyDramSystem::pump_until_fifo_has_room(std::uint32_t channel) {
  if (epoch_) {
    epoch_->run_phase(PumpPhase{PumpGoal::kFifoRoom, channel, 0, 1'000'000});
    return;
  }
  pump_until(
      [this, channel] { return !channels_[channel]->tile.incoming().full(); },
      1'000'000);
}

std::uint64_t EasyDramSystem::submit(tile::Request req, std::uint32_t channel,
                                     std::int64_t now) {
  account_cpu_progress(now);
  pump_until_fifo_has_room(channel);
  ChannelSlice& ch = *channels_[channel];
  req.id = next_id_++;
  req.stream_id = current_stream_;
  req.issue_proc_cycle = now;
  req.arrival_wall = ch.keeper.wall();
  const std::uint64_t id = req.id;
  // Record the routing decision: only this channel's slice can ever
  // complete the id, which is what lets wait() become a per-channel goal.
  // Stream and issue cycle ride along for per-stream latency accounting.
  completed_.note_pending(id, channel, req.stream_id, now);
  ch.tile.incoming().push(std::move(req));
  return id;
}

std::uint32_t EasyDramSystem::channel_of(std::uint64_t paddr) const {
  // Channel routing is a hardware address decode, not controller software:
  // it costs nothing on any timeline (and nothing on the host with one
  // channel).
  if (channels_.size() == 1) return 0;
  return mapper_->to_dram(paddr).channel;
}

std::uint64_t EasyDramSystem::submit_read(std::uint64_t paddr, std::int64_t now) {
  tile::Request req;
  req.kind = tile::RequestKind::kRead;
  req.paddr = paddr;
  return submit(std::move(req), channel_of(paddr), now);
}

std::uint64_t EasyDramSystem::submit_write(std::uint64_t paddr, std::int64_t now) {
  tile::Request req;
  req.kind = tile::RequestKind::kWrite;
  req.paddr = paddr;
  // The timing models carry no data; fabricate a deterministic payload so
  // DRAM contents evolve benignly. Eight RNG draws fill the line a word at
  // a time — nothing downstream ever inspects these bytes.
  SplitMix64 sm(paddr ^ 0xD47A);
  for (std::size_t w = 0; w < req.wdata.size(); w += 8) {
    const std::uint64_t v = sm.next();
    std::memcpy(req.wdata.data() + w, &v, 8);
  }
  return submit(std::move(req), channel_of(paddr), now);
}

std::uint64_t EasyDramSystem::submit_rowclone(std::uint64_t src_paddr,
                                              std::uint64_t dst_paddr,
                                              std::int64_t now) {
  tile::Request req;
  req.kind = tile::RequestKind::kRowClone;
  req.paddr = src_paddr;
  req.paddr2 = dst_paddr;
  // Routed by the source row's channel; a cross-channel pair is rejected by
  // the controller's same-bank check and falls back to CPU copy.
  return submit(std::move(req), channel_of(src_paddr), now);
}

std::uint64_t EasyDramSystem::submit_profile(std::uint64_t paddr, Picoseconds trcd,
                                             std::int64_t now) {
  tile::Request req;
  req.kind = tile::RequestKind::kProfileTrcd;
  req.paddr = paddr;
  req.profile_trcd = trcd;
  return submit(std::move(req), channel_of(paddr), now);
}

cpu::Completion EasyDramSystem::wait(std::uint64_t id) {
  if (epoch_) {
    if (!completed_.ready(id)) {
      epoch_->run_phase(
          PumpPhase{PumpGoal::kCompletion, completed_.channel(id), id});
    }
  } else {
    pump_until([this, id] { return completed_.ready(id); });
  }
  cpu::Completion c;
  c.release_cycle = completed_.release_proc_cycle(id);
  c.stream = completed_.stream(id);
  c.ok = completed_.ok(id);
  c.data_reliable = completed_.data_reliable(id);
  c.error = completed_.error(id);
  completed_.consume(id);
  return c;
}

bool EasyDramSystem::all_idle() const {
  for (const auto& ch : channels_) {
    if (!ch->tile.incoming().empty() || !ch->controller->idle()) return false;
  }
  return true;
}

cpu::RunResult EasyDramSystem::run(cpu::TraceSource& trace) {
  cpu::Core core(cfg_.core, cfg_.caches);
  cpu::RunResult result = core.run(trace, *this);

  // Process any remaining posted writes and reconcile the wall clock with
  // the core's final cycle count. Each drain phase gets its own full pump
  // budget (they previously shared one guard, halving the second phase's).
  account_cpu_progress(result.cycles);
  if (epoch_) {
    epoch_->run_phase(PumpPhase{PumpGoal::kAllIdle});
    // Let every controller observe its empty table and leave critical
    // mode, resynchronising the time-scaling counters (Fig. 5(f)).
    epoch_->run_phase(PumpPhase{PumpGoal::kExitCritical});
  } else {
    pump_until([this] { return all_idle(); });
    // Let every controller observe its empty table and leave critical mode,
    // resynchronising the time-scaling counters (Fig. 5(f)).
    pump_until([this] {
      for (const auto& ch : channels_) {
        if (ch->keeper.counters().critical()) return false;
      }
      return true;
    });
  }
  drain_outgoing();
  completed_.clear();  // Unconsumed posted-write acks.
  return result;
}

}  // namespace easydram::sys
