#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>

#include "cpu/backend.hpp"
#include "cpu/core.hpp"
#include "cpu/presets.hpp"
#include "dram/device.hpp"
#include "smc/bloom.hpp"
#include "smc/controller.hpp"
#include "smc/easyapi.hpp"
#include "smc/rowclone_map.hpp"
#include "tile/tile.hpp"
#include "timescale/timekeeper.hpp"

namespace easydram::sys {

/// Full-system configuration. The defaults model the paper's baseline: an
/// A57-like processor (Jetson Nano target) time-scaled from a 100 MHz FPGA
/// clock, EasyTile with a 100 MHz programmable core, and a single rank of
/// DDR4-1333.
struct SystemConfig {
  timescale::SystemMode mode = timescale::SystemMode::kTimeScaling;
  timescale::DomainConfig proc_domain{Frequency::megahertz(100),
                                      Frequency{1'430'000'000}};
  /// Additional fixed hardware scheduling latency per request, in emulated
  /// processor cycles, on top of the SMC program's own (cycle-counted)
  /// scheduling time. The paper's modeled controller *is* the SMC program
  /// re-clocked at the system frequency, so the default is 0; raise it to
  /// model an MC with extra pipeline stages.
  std::int64_t mc_sched_latency_cycles = 0;

  /// Model a fixed-function RTL memory controller instead: requests cost
  /// only `mc_sched_latency_cycles`, never the SMC program's cycle count
  /// (the Fig. 2 "FPGA + RTL memory controller" configuration).
  bool hardware_mc = false;

  cpu::CoreConfig core = cpu::cortex_a57_core();
  cpu::CacheHierConfig caches = cpu::easydram_caches();

  dram::Geometry geometry{};
  dram::TimingParams timing = dram::ddr4_1333();
  dram::VariationConfig variation{};

  tile::TileConfig tile{};
  bool use_frfcfs = true;
  bool line_interleaved_mapping = false;
  Picoseconds reduced_trcd{9000};
  /// Row-hit drain limit of the stock controller (see ControllerOptions).
  std::size_t row_batch_limit = 16;

  /// Optional custom scheduling policy. When set it overrides `use_frfcfs`;
  /// called once per controller build (see examples/custom_scheduler.cpp).
  std::function<std::unique_ptr<smc::Scheduler>()> scheduler_factory;
};

/// Convenience presets matching the paper's evaluated configurations.
SystemConfig jetson_nano_time_scaling();
SystemConfig pidram_no_time_scaling();
SystemConfig validation_time_scaling();  ///< §6: 100 MHz scaled to 1 GHz.
SystemConfig validation_reference();     ///< §6: direct 1 GHz RTL reference.

/// The assembled EasyDRAM system (Fig. 7): processor model ⇄ memory bus ⇄
/// EasyTile (programmable core running a software memory controller, DRAM
/// Bender) ⇄ DRAM device, glued by the time-scaling machinery.
///
/// Implements cpu::MemoryBackend so any core model / trace can run on it.
/// One instance models one power-on: construct, (optionally) run setup
/// phases such as characterization or RowClone allocation through `api()`,
/// then call run().
class EasyDramSystem final : public cpu::MemoryBackend {
 public:
  explicit EasyDramSystem(const SystemConfig& cfg);

  // --- Setup-phase access ---------------------------------------------------

  smc::EasyApi& api() { return api_; }
  dram::DramDevice& device() { return device_; }
  smc::RowCloneMap& clone_map() { return clone_map_; }
  const SystemConfig& config() const { return cfg_; }
  const timescale::TimeKeeper& keeper() const { return keeper_; }

  /// Enables the RowClone request path: kRowClone requests whose pair is
  /// verified in clone_map() run in DRAM, others get fallback responses.
  void enable_rowclone();

  /// Installs the weak-row Bloom filter, turning on reduced-tRCD accesses
  /// for rows not flagged weak.
  void install_weak_row_filter(smc::BloomFilter filter);

  // --- cpu::MemoryBackend ---------------------------------------------------

  std::uint64_t submit_read(std::uint64_t paddr, std::int64_t now) override;
  std::uint64_t submit_write(std::uint64_t paddr, std::int64_t now) override;
  std::uint64_t submit_rowclone(std::uint64_t src_paddr, std::uint64_t dst_paddr,
                                std::int64_t now) override;
  std::uint64_t submit_profile(std::uint64_t paddr, Picoseconds trcd,
                               std::int64_t now) override;
  cpu::Completion wait(std::uint64_t id) override;

  // --- Whole-workload execution ----------------------------------------------

  /// Runs `trace` on a fresh core built from the configuration, drains all
  /// outstanding work, and reconciles the wall clock.
  cpu::RunResult run(cpu::TraceSource& trace);

  // --- Results ----------------------------------------------------------------

  /// FPGA wall time consumed so far (drives the Fig. 14 simulation-speed
  /// study and the No-Time-Scaling timeline).
  Picoseconds wall() const { return keeper_.wall(); }
  const smc::ApiStats& smc_stats() const { return api_.stats(); }

 private:
  std::uint64_t submit(tile::Request req, std::int64_t now);
  /// Runs SMC iterations until the FIFO has room.
  void pump_until_fifo_has_room();
  bool pump_once();
  void drain_outgoing();
  void account_cpu_progress(std::int64_t now);
  void rebuild_controller();

  SystemConfig cfg_;
  dram::DramDevice device_;
  tile::EasyTile tile_;
  std::unique_ptr<smc::AddressMapper> mapper_;
  timescale::TimeKeeper keeper_;
  smc::EasyApi api_;
  smc::RowCloneMap clone_map_;
  std::optional<smc::BloomFilter> weak_rows_;
  bool rowclone_enabled_ = false;
  std::unique_ptr<smc::Controller> controller_;

  std::uint64_t next_id_ = 1;
  std::int64_t last_cpu_cycle_ = 0;
  std::unordered_map<std::uint64_t, tile::Response> completed_;
};

}  // namespace easydram::sys
