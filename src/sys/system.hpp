#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "cpu/backend.hpp"
#include "cpu/core.hpp"
#include "cpu/presets.hpp"
#include "dram/device.hpp"
#include "dram/faults.hpp"
#include "smc/bloom.hpp"
#include "smc/controller.hpp"
#include "smc/easyapi.hpp"
#include "smc/ecc.hpp"
#include "smc/mitigation/mitigator.hpp"
#include "smc/refresh_policy.hpp"
#include "smc/retention_profiler.hpp"
#include "smc/rowclone_map.hpp"
#include "smc/trcd_profiler.hpp"
#include "sys/completion.hpp"
#include "tile/tile.hpp"
#include "timescale/timekeeper.hpp"

namespace easydram::sys {

class EpochScheduler;

/// Full-system configuration. The defaults model the paper's baseline: an
/// A57-like processor (Jetson Nano target) time-scaled from a 100 MHz FPGA
/// clock, EasyTile with a 100 MHz programmable core, and a single channel,
/// single rank of DDR4-1333. Raise `geometry.channels` /
/// `geometry.ranks_per_channel` and pick a `mapping` to study
/// channel/rank-level parallelism.
struct SystemConfig {
  timescale::SystemMode mode = timescale::SystemMode::kTimeScaling;
  timescale::DomainConfig proc_domain{Frequency::megahertz(100),
                                      Frequency{1'430'000'000}};
  /// Additional fixed hardware scheduling latency per request, in emulated
  /// processor cycles, on top of the SMC program's own (cycle-counted)
  /// scheduling time. The paper's modeled controller *is* the SMC program
  /// re-clocked at the system frequency, so the default is 0; raise it to
  /// model an MC with extra pipeline stages.
  Cycles mc_sched_latency{};

  /// Model a fixed-function RTL memory controller instead: requests cost
  /// only `mc_sched_latency`, never the SMC program's cycle count
  /// (the Fig. 2 "FPGA + RTL memory controller" configuration).
  bool hardware_mc = false;

  cpu::CoreConfig core = cpu::cortex_a57_core();
  cpu::CacheHierConfig caches = cpu::easydram_caches();

  dram::Geometry geometry{};
  dram::TimingParams timing = dram::ddr4_1333();
  dram::VariationConfig variation{};

  tile::TileConfig tile{};
  bool use_frfcfs = true;
  /// Scheduling policy by registry kind (see smc::SchedulerKind / the CLI's
  /// --sched flag). kAuto defers to the legacy `use_frfcfs` switch;
  /// `scheduler_factory` (below) overrides both.
  smc::SchedulerKind sched = smc::SchedulerKind::kAuto;
  /// Physical-to-DRAM address mapping (see smc::MappingKind): row-linear by
  /// default; line-interleaved stripes lines across banks;
  /// channel-interleaved stripes lines across channels.
  smc::MappingKind mapping = smc::MappingKind::kLinear;
  /// Partition count of the kBankPartition mapping (ignored by the other
  /// mappings): the physical space splits into this many equal slices, each
  /// owning a disjoint set of banks. Give each tenant its own slice and no
  /// stream can ever close another's row buffer.
  unsigned bank_partitions = 4;
  Picoseconds reduced_trcd{9000};
  /// Row-hit drain limit of the stock controller (see ControllerOptions).
  std::size_t row_batch_limit = 16;

  /// Optional custom scheduling policy. When set it overrides `use_frfcfs`;
  /// called once per controller build — i.e. once per channel (see
  /// examples/custom_scheduler.cpp).
  std::function<std::unique_ptr<smc::Scheduler>()> scheduler_factory;

  /// RowHammer mitigation policy each channel's controller runs (kNone by
  /// default). Channels get independent policy instances; PARA's RNG
  /// stream is `mitigation.seed` mixed with the channel index, so a fixed
  /// seed yields bit-identical runs at any host parallelism.
  smc::mitigation::MitigationConfig mitigation{};

  /// Enables the DRAM devices' ground-truth RowHammer exposure accounting
  /// (see DramDevice::max_hammer_exposure). Off by default: the rowhammer
  /// scenarios turn it on; it adds per-ACT bookkeeping the paper-figure
  /// scenarios never read.
  bool track_row_hammer = false;

  /// Refresh regime each channel's refresh pacing runs (kAllRows by
  /// default — bit-identical to every pre-RAIDR run). kRaidr profiles each
  /// channel's retention field at construction (an uncharged setup phase,
  /// like the paper's offline characterization passes) with
  /// `retention_profiler` options and installs a per-channel
  /// RaidrRefreshPolicy; channels profile independently because they are
  /// physically distinct modules.
  smc::RefreshKind refresh = smc::RefreshKind::kAllRows;
  smc::RetentionProfilerOptions retention_profiler{};

  /// Enables the devices' ground-truth retention-violation accounting
  /// (see DramDevice::retention_violations). Off by default; the
  /// raidr_misbinning scenario turns it on.
  bool track_retention = false;

  /// Deterministic fault injection (dram/faults.hpp), off by default — a
  /// system that never touches this runs bit-identical to one predating
  /// the fault pipeline. Channels get independent fault streams
  /// (`faults.seed` mixed with the channel index, like the variation and
  /// mitigation seeds), so injection is worker-count-invariant. Enabling
  /// hammer-triggered flips auto-enables hammer tracking; retention flips
  /// auto-enable retention tracking (the model reads their bookkeeping).
  dram::FaultConfig faults{};

  /// Controller error pipeline (smc/ecc.hpp): SEC-DED on the read/write
  /// path, patrol scrub piggybacked on refresh slots, bounded retries, and
  /// PPR-style row retirement. Off by default; independent of `faults`
  /// (ECC can run on a fault-free device and vice versa — escapes are only
  /// *interesting* with both on).
  smc::EccConfig ecc{};

  /// Records every completed request's modeled latency (release minus
  /// issue processor cycle) into a per-stream sample vector (see
  /// EasyDramSystem::stream_latency_samples). Off by default — the samples
  /// cost memory proportional to the request count and single-stream
  /// scenarios never read them.
  bool track_stream_latency = false;

  /// Worker threads pumping the channel slices (clamped to the channel
  /// count; 0 and 1 both mean the serial engine). Any value produces
  /// bit-identical observable state — the epoch scheduler reproduces the
  /// serial round-robin schedule exactly (see docs/ARCHITECTURE.md,
  /// "Parallel pump") — so this is purely a host-speed knob.
  unsigned pump_workers = 1;
};

/// Convenience presets matching the paper's evaluated configurations.
SystemConfig jetson_nano_time_scaling();
SystemConfig pidram_no_time_scaling();
SystemConfig validation_time_scaling();  ///< §6: 100 MHz scaled to 1 GHz.
SystemConfig validation_reference();     ///< §6: direct 1 GHz RTL reference.

/// The assembled EasyDRAM system (Fig. 7): processor model ⇄ memory bus ⇄
/// per-channel EasyTiles (each with a programmable core running its own
/// software memory controller and DRAM Bender engine) ⇄ per-channel DRAM
/// devices, glued by the time-scaling machinery.
///
/// Each channel is an independent slice — device, tile, controller, and its
/// own TimeKeeper — because real channels have independent buses and their
/// memory activity overlaps in time. Processor progress is mirrored into
/// every channel's keeper; the system wall clock is the maximum over
/// channels (the slowest channel finishes last). Requests are routed to
/// their channel by the address mapper's channel bits. With one channel
/// this collapses to a single keeper driven exactly as before.
///
/// Implements cpu::MemoryBackend so any core model / trace can run on it.
/// One instance models one power-on: construct, (optionally) run setup
/// phases such as characterization or RowClone allocation through `api()`,
/// then call run().
///
/// Units: `paddr` arguments are byte addresses in the mapped physical
/// space; `now` arguments are emulated-processor cycles; returned times
/// are Picoseconds of FPGA wall. Thread-safety: one system is driven by
/// one thread; with `pump_workers > 1` it internally shards channel
/// slices across an epoch-synchronized pool, but the public API remains
/// single-caller. Parameter sweeps build one system per task.
class EasyDramSystem final : public cpu::MemoryBackend {
 public:
  explicit EasyDramSystem(const SystemConfig& cfg);
  ~EasyDramSystem() override;

  // --- Setup-phase access ---------------------------------------------------

  std::uint32_t num_channels() const {
    return static_cast<std::uint32_t>(channels_.size());
  }

  /// Channel 0's interfaces (the whole system for the default geometry).
  smc::EasyApi& api() { return api(0); }
  dram::DramDevice& device() { return device(0); }

  smc::EasyApi& api(std::uint32_t channel);
  dram::DramDevice& device(std::uint32_t channel);

  /// Channel's error-pipeline state (null unless `ecc.enabled`). Exposed
  /// for tests and scenario instrumentation (retirement-map inspection).
  smc::ErrorPolicy* error_policy(std::uint32_t channel);

  smc::RowCloneMap& clone_map() { return clone_map_; }
  const SystemConfig& config() const { return cfg_; }
  const smc::AddressMapper& mapper() const { return *mapper_; }
  /// Channel 0's timeline (identical to every other channel's until
  /// channel-local memory activity diverges).
  const timescale::TimeKeeper& keeper() const { return keeper(0); }
  const timescale::TimeKeeper& keeper(std::uint32_t channel) const;

  /// Enables the RowClone request path: kRowClone requests whose pair is
  /// verified in clone_map() run in DRAM, others get fallback responses.
  void enable_rowclone();

  /// Installs the weak-row Bloom filter, turning on reduced-tRCD accesses
  /// for rows not flagged weak. Every channel's controller consults this
  /// one filter, so it must cover every channel's weak rows — on
  /// multi-channel systems build it with
  /// characterize_and_install_weak_rows() rather than a single channel's
  /// smc::build_weak_row_filter.
  void install_weak_row_filter(smc::BloomFilter filter);

  /// Profiles every channel (all ranks) at `threshold`, merges the
  /// per-channel weak-row filters, installs the union, and returns the
  /// aggregate characterization statistics. On a single-channel system
  /// this is exactly smc::build_weak_row_filter + install_weak_row_filter.
  smc::WeakRowFilterStats characterize_and_install_weak_rows(
      std::span<const std::uint32_t> banks, std::uint32_t rows_per_bank,
      Picoseconds threshold, std::size_t filter_bits, std::size_t hashes,
      std::uint32_t lines_per_row = 0);

  // --- cpu::MemoryBackend ---------------------------------------------------

  /// Submit one request at emulated-processor cycle `now` (must be
  /// non-decreasing across calls) and return its completion id; wait(id)
  /// pumps the controllers until that id completes and consumes it (each
  /// id is waitable exactly once). submit_profile's `trcd` is the
  /// Picoseconds ACT->RD spacing to test.
  /// Sets the stream identity stamped onto subsequently submitted requests
  /// (sticky; the core calls this when its trace's stream changes).
  void set_stream(std::uint32_t stream) override { current_stream_ = stream; }

  std::uint64_t submit_read(std::uint64_t paddr, std::int64_t now) override;
  std::uint64_t submit_write(std::uint64_t paddr, std::int64_t now) override;
  std::uint64_t submit_rowclone(std::uint64_t src_paddr, std::uint64_t dst_paddr,
                                std::int64_t now) override;
  std::uint64_t submit_profile(std::uint64_t paddr, Picoseconds trcd,
                               std::int64_t now) override;
  cpu::Completion wait(std::uint64_t id) override;

  // --- Whole-workload execution ----------------------------------------------

  /// Runs `trace` on a fresh core built from the configuration, drains all
  /// outstanding work, and reconciles the wall clock.
  cpu::RunResult run(cpu::TraceSource& trace);

  // --- Results ----------------------------------------------------------------

  /// FPGA wall time consumed so far: the maximum over the per-channel
  /// timelines (drives the Fig. 14 simulation-speed study and the
  /// No-Time-Scaling timeline).
  Picoseconds wall() const;
  /// Aggregate SMC statistics summed over every channel's EasyApi.
  smc::ApiStats smc_stats() const;
  /// Aggregate RowHammer mitigation statistics summed over every channel's
  /// policy instance (all zero when mitigation is kNone).
  smc::mitigation::MitigationStats mitigation_stats() const;
  /// System-wide bitflip-window exposure: the maximum over every channel
  /// device (0 unless `track_row_hammer` was set).
  std::int64_t max_hammer_exposure() const;
  /// Aggregate RAIDR bin histogram summed over every channel's profiled
  /// binning (all-zero, issue_fraction 1.0, when `refresh` is kAllRows).
  smc::RaidrBinStats refresh_bin_stats() const;
  /// Refresh slots consumed across every channel and rank (issued +
  /// skipped; equals smc_stats().refreshes_issued + refreshes_skipped once
  /// the run has drained).
  std::int64_t refresh_slots_consumed() const;
  /// Ground-truth retention violations summed over every channel device
  /// (0 unless `track_retention` was set).
  std::int64_t retention_violations() const;
  /// Worst retention overshoot over every channel device.
  Picoseconds max_retention_overshoot() const;
  /// Per-stream modeled-latency samples (emulated processor cycles, one per
  /// completed request, indexed by stream id), recorded in completion-drain
  /// order when `track_stream_latency` is set. Sort before computing
  /// percentiles: the drain order is engine-dependent even though the
  /// sample multiset is bit-identical at any worker count.
  const std::vector<std::vector<std::int64_t>>& stream_latency_samples() const {
    return stream_samples_;
  }

 private:
  /// One memory channel: device + tile + timeline + API + controller.
  struct ChannelSlice {
    ChannelSlice(const SystemConfig& cfg, const smc::AddressMapper& mapper,
                 std::uint32_t channel);

    dram::DramDevice device;
    tile::EasyTile tile;
    timescale::TimeKeeper keeper;
    smc::EasyApi api;
    std::unique_ptr<smc::Controller> controller;
  };

  std::uint64_t submit(tile::Request req, std::uint32_t channel, std::int64_t now);
  /// Channel the line at `paddr` decodes to; skips the mapper entirely on
  /// single-channel systems (the per-request submit hot path).
  std::uint32_t channel_of(std::uint64_t paddr) const;
  /// Runs SMC iterations until `channel`'s FIFO has room.
  void pump_until_fifo_has_room(std::uint32_t channel);
  /// One main-loop iteration of `ch`'s controller: the idle fast path (one
  /// poll-iteration charge) or one controller step plus idle-skip. Returns
  /// whether the controller did real work. Touches only `ch`'s slice — the
  /// unit the epoch scheduler shards across workers.
  bool step_channel(ChannelSlice& ch);
  /// One main-loop iteration of every channel's controller (round-robin).
  bool pump_once();
  /// Pumps until `done()` holds. Every call gets its own full iteration
  /// budget — callers that chain drain phases must not share one guard.
  template <typename DonePred>
  void pump_until(DonePred done, int budget = 100'000'000) {
    int guard = 0;
    while (!done()) {
      pump_once();
      EASYDRAM_EXPECTS(++guard < budget);
    }
  }
  void drain_outgoing();
  /// Appends the completed id's modeled latency to its stream's sample
  /// vector (no-op unless cfg_.track_stream_latency). Must run before the
  /// id is consumed — it reads the issue cycle off the completion slot.
  void record_latency(std::uint64_t id, std::uint32_t stream,
                      std::int64_t release_proc_cycle);
  void account_cpu_progress(std::int64_t now);
  void rebuild_controllers();
  bool all_idle() const;

  SystemConfig cfg_;
  std::unique_ptr<smc::AddressMapper> mapper_;
  std::vector<std::unique_ptr<ChannelSlice>> channels_;
  /// Per-channel mitigation policies (entries null for kNone). Owned here
  /// — NOT by the controllers — so policy state and stats survive
  /// controller rebuilds (enable_rowclone, install_weak_row_filter).
  std::vector<std::unique_ptr<smc::mitigation::RowHammerMitigator>> mitigators_;
  /// Per-channel refresh policies (entries null for kAllRows — EasyApi's
  /// null policy IS the all-rows regime, at zero pacing cost). Owned here
  /// for the same rebuild-survival reason as the mitigators; installed on
  /// each channel's EasyApi at construction.
  std::vector<std::unique_ptr<smc::RefreshPolicy>> refresh_policies_;
  /// Per-channel error policies (entries null unless cfg.ecc.enabled).
  /// Owned here — check-bit store, CE counts, and retirement maps must
  /// survive controller rebuilds, like the mitigators.
  std::vector<std::unique_ptr<smc::ErrorPolicy>> error_policies_;
  /// Bin histograms recorded when construction profiled each channel
  /// (empty for kAllRows).
  std::vector<smc::RaidrBinStats> refresh_bin_stats_;
  smc::RowCloneMap clone_map_;
  std::optional<smc::BloomFilter> weak_rows_;
  bool rowclone_enabled_ = false;

  std::uint64_t next_id_ = 1;
  std::int64_t last_cpu_cycle_ = 0;
  /// Stream identity stamped onto submitted requests (set_stream).
  std::uint32_t current_stream_ = 0;
  /// Per-stream latency samples (empty unless track_stream_latency).
  std::vector<std::vector<std::int64_t>> stream_samples_;
  /// Responses drained from the tiles, keyed by the dense request id
  /// stream (the core waits approximately in order; see CompletionRing).
  /// Workers never write it directly — they buffer completions per slice
  /// and the scheduler merges at the phase barrier.
  CompletionRing completed_;  // SLICE-SHARED(phase barrier)

  friend class EpochScheduler;
  /// Parallel pump engine; null for the serial engine (pump_workers <= 1
  /// or a single channel). Declared last so worker threads are joined
  /// before any state they reference is destroyed.
  std::unique_ptr<EpochScheduler> epoch_;
};

}  // namespace easydram::sys
