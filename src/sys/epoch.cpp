#include "sys/epoch.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "sys/system.hpp"

namespace easydram::sys {
namespace {

/// Iterations the coordinator pumps serially before waking the pool. Any
/// value produces bit-identical output (the serial loop and the sharded
/// continuation compute the same schedule); this only decides which phases
/// are long enough to amortize a worker rendezvous. The per-submit FIFO
/// back-pressure phases are typically a handful of iterations and stay
/// serial; the drain/completion phases of batched workloads run long and
/// get sharded.
constexpr int kSerialPrefix = 64;

/// Bounded spin (in yield slices) at the phase-start/phase-end barriers
/// before parking on the condvar: phases arrive back to back on the
/// submit/wait path, so the next one usually shows up within the window.
constexpr int kSpinIters = 256;

}  // namespace

EpochScheduler::EpochScheduler(EasyDramSystem& sys, unsigned workers)
    : sys_(sys),
      workers_(workers),
      exact_smc_clock_(1'000'000'000'000 % sys.cfg_.tile.core_clock.hertz == 0),
      state_(sys.channels_.size()),
      drained_(sys.channels_.size()) {
  EASYDRAM_EXPECTS(workers_ >= 2);
  EASYDRAM_EXPECTS(workers_ <= sys.channels_.size());
}

EpochScheduler::~EpochScheduler() {
  stop_.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    cv_start_.notify_all();
  }
  for (std::thread& t : pool_) t.join();
}

void EpochScheduler::ensure_pool() {
  if (!pool_.empty()) return;
  pool_.reserve(workers_ - 1);
  for (unsigned w = 1; w < workers_; ++w) {
    pool_.emplace_back([this, w] { worker_loop(w); });
  }
}

bool EpochScheduler::phase_done(const PumpPhase& phase) {
  switch (phase.goal) {
    case PumpGoal::kFifoRoom:
      return !sys_.channels_[phase.channel]->tile.incoming().full();
    case PumpGoal::kCompletion:
      return sys_.completed_.ready(phase.id);
    case PumpGoal::kAllIdle:
      return sys_.all_idle();
    case PumpGoal::kExitCritical:
      for (const auto& ch : sys_.channels_) {
        if (ch->keeper.counters().critical()) return false;
      }
      return true;
  }
  return true;
}

bool EpochScheduler::channel_pred_holds(const PumpPhase& phase,
                                        std::uint32_t channel,
                                        bool saw_completion) {
  EasyDramSystem::ChannelSlice& slice = *sys_.channels_[channel];
  switch (phase.goal) {
    case PumpGoal::kFifoRoom:
      return channel != phase.channel || !slice.tile.incoming().full();
    case PumpGoal::kCompletion:
      return channel != phase.channel || saw_completion;
    case PumpGoal::kAllIdle:
      return slice.tile.incoming().empty() && slice.controller->idle();
    case PumpGoal::kExitCritical:
      return !slice.keeper.counters().critical();
  }
  return true;
}

bool EpochScheduler::channel_is_quiescent(std::uint32_t channel) {
  EasyDramSystem::ChannelSlice& slice = *sys_.channels_[channel];
  return slice.controller->idle() && slice.tile.incoming().empty() &&
         slice.tile.outgoing().empty() &&
         !slice.keeper.counters().critical() &&
         slice.tile.meter().pending().count == 0;
}

void EpochScheduler::bulk_idle_charge(std::uint32_t channel,
                                      std::int64_t iterations) {
  if (iterations <= 0) return;
  EasyDramSystem::ChannelSlice& slice = *sys_.channels_[channel];
  if (slice.api.setup_mode()) return;  // Setup-mode polls charge nothing.
  // n quiescent iterations charge exactly n poll costs. With an exact SMC
  // clock (1e12 % hertz == 0; guarded by the caller) cycles_to_ps is
  // linear, so one merged charge lands the wall clock — and its derived
  // global-counter mirror, which is a pure floor of the wall — on the very
  // picosecond the serial per-iteration schedule reaches.
  tile::CycleMeter& meter = slice.tile.meter();
  meter.charge(meter.costs().poll_iteration * iterations);
  slice.keeper.account_smc_cycles(meter.take());
}

void EpochScheduler::run_phase(const PumpPhase& phase) {
  // Serial prefix: exactly the serial engine's pump_until loop. Short
  // phases finish here without ever waking the pool.
  int iterations = 0;
  while (!phase_done(phase)) {
    if (iterations >= kSerialPrefix) {
      run_parallel(phase, iterations);
      return;
    }
    sys_.pump_once();
    EASYDRAM_EXPECTS(++iterations < phase.budget);
  }
}

void EpochScheduler::run_parallel(const PumpPhase& phase, int start) {
  ensure_pool();
  // Seed the per-channel view: every channel has executed `start` serial
  // iterations; a channel whose predicate already holds gets t_pred =
  // start. At least one predicate is still false (phase_done was false
  // when the prefix gave up), so i* >= start + 1 and the seeds can never
  // raise max t_c above its serial value.
  for (std::size_t c = 0; c < state_.size(); ++c) {
    state_[c].progress.store(start, std::memory_order_relaxed);
    const bool holds =
        channel_pred_holds(phase, static_cast<std::uint32_t>(c), false);
    state_[c].t_pred.store(holds ? start : -1, std::memory_order_relaxed);
  }
  abort_.store(false, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    phase_ = phase;
    running_.store(static_cast<int>(pool_.size()), std::memory_order_relaxed);
    // Release-publish the phase inputs; workers acquire via seq_.
    seq_.fetch_add(1, std::memory_order_release);
    cv_start_.notify_all();
  }

  std::exception_ptr error;
  try {
    pump_block(0, phase);  // The coordinator is worker 0.
  } catch (...) {
    abort_.store(true, std::memory_order_relaxed);
    error = std::current_exception();
  }

  // Phase-end barrier: spin briefly (workers finish nearly together), then
  // park until the last worker checks out.
  for (int spin = 0;
       running_.load(std::memory_order_acquire) != 0 && spin < kSpinIters;
       ++spin) {
    std::this_thread::yield();
  }
  if (running_.load(std::memory_order_acquire) != 0) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [this] {
      return running_.load(std::memory_order_acquire) == 0;
    });
  }

  // Merge the slice-local completion buffers into the ring. put() is
  // id-keyed, so any merge order yields the same ring state; channel order
  // keeps the walk deterministic anyway.
  for (auto& buffer : drained_) {
    for (const DrainedCompletion& d : buffer) {
      sys_.completed_.put(d.id, d.release_proc_cycle, d.ok, d.error,
                          d.data_reliable);
      sys_.record_latency(d.id, d.stream, d.release_proc_cycle);
    }
    buffer.clear();
  }

  if (!error && !errors_.empty()) error = errors_.front();
  errors_.clear();
  if (error) std::rethrow_exception(error);
}

void EpochScheduler::worker_loop(unsigned worker) {
  std::uint64_t seen = 0;
  for (;;) {
    bool have_phase = false;
    for (int spin = 0; spin < kSpinIters; ++spin) {
      if (stop_.load(std::memory_order_relaxed)) return;
      if (seq_.load(std::memory_order_acquire) != seen) {
        have_phase = true;
        break;
      }
      std::this_thread::yield();
    }
    if (!have_phase) {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_start_.wait(lock, [&] {
        return stop_.load(std::memory_order_relaxed) ||
               seq_.load(std::memory_order_acquire) != seen;
      });
      if (stop_.load(std::memory_order_relaxed)) return;
    }
    seen = seq_.load(std::memory_order_acquire);
    const PumpPhase phase = phase_;  // Published by the seq_ bump.
    try {
      pump_block(worker, phase);
    } catch (...) {
      abort_.store(true, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(mutex_);
      errors_.push_back(std::current_exception());
    }
    if (running_.fetch_sub(1) == 1) {
      std::lock_guard<std::mutex> lock(mutex_);
      cv_done_.notify_one();
    }
  }
}

void EpochScheduler::pump_block(unsigned worker, const PumpPhase& phase) {
  const std::size_t n = state_.size();
  const std::size_t first = n * worker / workers_;
  const std::size_t last = n * (worker + 1) / workers_;

  struct Local {
    std::uint32_t ch = 0;
    std::int64_t prog = 0;
    bool done = false;
    bool saw_completion = false;
  };
  std::vector<Local> mine;
  mine.reserve(last - first);
  for (std::size_t c = first; c < last; ++c) {
    Local l;
    l.ch = static_cast<std::uint32_t>(c);
    l.prog = state_[c].progress.load(std::memory_order_relaxed);
    l.done = state_[c].t_pred.load(std::memory_order_relaxed) >= 0;
    mine.push_back(l);
  }

  for (;;) {
    if (abort_.load(std::memory_order_relaxed)) return;
    // Chasing bound L = max_c (done_c ? t_c : progress_c + 1): a lower
    // bound on i* at all times (an unsatisfied channel needs at least one
    // more iteration), and exactly i* once every predicate holds. Relaxed
    // loads only ever under-estimate, which is conservative.
    std::int64_t bound = 0;
    bool all_done = true;
    for (std::size_t c = 0; c < n; ++c) {
      const std::int64_t t = state_[c].t_pred.load(std::memory_order_relaxed);
      if (t >= 0) {
        bound = std::max(bound, t);
      } else {
        all_done = false;
        bound = std::max(
            bound, state_[c].progress.load(std::memory_order_relaxed) + 1);
      }
    }

    bool advanced = false;
    for (Local& l : mine) {
      ChannelState& cs = state_[l.ch];
      EasyDramSystem::ChannelSlice& slice = *sys_.channels_[l.ch];
      // A channel without its predicate may always run one more iteration
      // (its own t_c, and therefore i*, lies strictly ahead); a satisfied
      // channel may only chase up to the current bound.
      while (!l.done || l.prog < bound) {
        if (abort_.load(std::memory_order_relaxed)) return;
        if (l.done && exact_smc_clock_ && channel_is_quiescent(l.ch)) {
          // Nothing can reach this channel for the rest of the phase:
          // collapse the remaining poll-only iterations into one charge.
          bulk_idle_charge(l.ch, bound - l.prog);
          l.prog = bound;
          cs.progress.store(l.prog, std::memory_order_relaxed);
          advanced = true;
          break;
        }
        sys_.step_channel(slice);
        // Drain our own channel's responses into the slice-local buffer
        // (publication happens at the phase barrier). This keeps the
        // outgoing FIFO empty at each iteration boundary, exactly as the
        // serial engine's end-of-iteration drain does.
        auto& fifo = slice.tile.outgoing();
        while (!fifo.empty()) {
          const tile::Response& resp = fifo.front();
          drained_[l.ch].push_back({resp.id, resp.release_proc_cycle,
                                    resp.stream_id, resp.ok, resp.data_reliable,
                                    resp.error});
          if (phase.goal == PumpGoal::kCompletion && l.ch == phase.channel &&
              resp.id == phase.id) {
            l.saw_completion = true;
          }
          fifo.drop();
        }
        ++l.prog;
        cs.progress.store(l.prog, std::memory_order_relaxed);
        advanced = true;
        if (!l.done) {
          if (channel_pred_holds(phase, l.ch, l.saw_completion)) {
            l.done = true;
            cs.t_pred.store(l.prog, std::memory_order_relaxed);
          } else {
            // Same generosity as the serial pump_until guard.
            EASYDRAM_EXPECTS(l.prog < phase.budget);
          }
        }
        if (l.done && l.prog >= bound) break;
      }
    }

    if (all_done) {
      bool topped = true;
      for (const Local& l : mine) {
        if (l.prog < bound) {
          topped = false;
          break;
        }
      }
      if (topped) return;  // bound == i*: this block matches the serial count.
    }
    if (!advanced) std::this_thread::yield();
  }
}

}  // namespace easydram::sys
