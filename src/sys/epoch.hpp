#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace easydram::sys {

class EasyDramSystem;

/// Goal of one pump phase: the four done-predicates the serial engine ever
/// pumps toward, each of which decomposes into per-channel predicates that
/// are channel-local and monotone for the duration of the phase. That
/// decomposition is what makes the parallel pump bit-identical to the
/// serial one — see docs/ARCHITECTURE.md, "Parallel pump".
enum class PumpGoal : std::uint8_t {
  kFifoRoom,      ///< `channel`'s incoming FIFO has room (submit back-pressure).
  kCompletion,    ///< Request `id` completed on `channel` (wait()).
  kAllIdle,       ///< Every channel: incoming empty + controller idle (drain).
  kExitCritical,  ///< Every channel has left critical mode (reconcile).
};

struct PumpPhase {
  PumpGoal goal = PumpGoal::kAllIdle;
  std::uint32_t channel = 0;  ///< kFifoRoom / kCompletion target channel.
  std::uint64_t id = 0;       ///< kCompletion target request id.
  int budget = 100'000'000;   ///< Iteration guard (mirrors pump_until's).
};

/// Epoch/barrier scheduler that shards a system's channel slices across a
/// worker pool while keeping observable state bit-identical to the serial
/// round-robin pump at any worker count.
///
/// How a phase runs. The serial engine's `pump_until(done)` executes full
/// round-robin iterations (every channel steps once per iteration) and
/// stops before iteration i* + 1, where i* is the first iteration count
/// after which `done` holds. Because every done-predicate splits into
/// per-channel monotone predicates, i* = max over channels of t_c, where
/// t_c is the first iteration after which channel c's predicate holds. The
/// parallel engine therefore lets each worker pump its own channels
/// independently — recording t_c when its predicate first holds — under a
/// chasing bound L = max_c (done_c ? t_c : progress_c + 1), which is a
/// lower bound on i* at all times. Once every channel's predicate holds,
/// L == i* and every channel tops up to exactly i* iterations, i.e. the
/// precise iteration count the serial engine would have executed. Channel
/// state only ever couples through the completion ring (merged at the
/// phase barrier, id-keyed and therefore order-independent) and the
/// wall-clock max (reduced by the coordinator after the barrier), so the
/// per-channel timelines are bit-identical to the serial schedule.
///
/// Short phases (the per-submit FIFO back-pressure path) never pay a
/// worker rendezvous: the coordinator pumps the first kSerialPrefix
/// iterations itself with the exact serial loop and only hands off to the
/// pool when a phase turns out to be long enough to amortize the barrier.
///
/// Thread-safety: run_phase() is called by the owning system's driving
/// thread only; workers touch exclusively their own channels' slices
/// between the phase-start and phase-end barriers.
class EpochScheduler {
 public:
  /// `workers` counts the caller too: W workers = the driving thread plus
  /// W-1 pool threads (spawned lazily on the first long phase).
  EpochScheduler(EasyDramSystem& sys, unsigned workers);
  ~EpochScheduler();

  EpochScheduler(const EpochScheduler&) = delete;
  EpochScheduler& operator=(const EpochScheduler&) = delete;

  /// Runs one pump phase to completion (including the serial prefix) and
  /// merges worker-drained completions into the system's completion ring.
  /// Rethrows the first worker exception (e.g. a budget ContractViolation).
  void run_phase(const PumpPhase& phase);

  unsigned workers() const { return workers_; }

 private:
  /// Completion metadata a worker drained from its own channel's outgoing
  /// FIFO, published to the ring only at the phase-end barrier.
  struct DrainedCompletion {
    std::uint64_t id = 0;
    std::int64_t release_proc_cycle = 0;
    std::uint32_t stream = 0;
    bool ok = true;
    bool data_reliable = true;
    RequestError error = RequestError::kNone;
  };

  /// Cross-worker view of one channel's phase progress. Cache-line sized so
  /// neighbouring channels' owners do not false-share.
  struct alignas(64) ChannelState {
    std::atomic<std::int64_t> progress{0};  ///< Iterations executed.
    std::atomic<std::int64_t> t_pred{-1};   ///< First iteration pred held; -1 = not yet.
  };

  void ensure_pool();
  void worker_loop(unsigned worker);
  void run_parallel(const PumpPhase& phase, int start);
  void pump_block(unsigned worker, const PumpPhase& phase);
  bool phase_done(const PumpPhase& phase);
  bool channel_pred_holds(const PumpPhase& phase, std::uint32_t channel,
                          bool saw_completion);
  bool channel_is_quiescent(std::uint32_t channel);
  void bulk_idle_charge(std::uint32_t channel, std::int64_t iterations);

  EasyDramSystem& sys_;
  unsigned workers_;
  /// Whether the SMC core clock divides a second exactly in picoseconds —
  /// the condition under which n poll charges collapse into one bulk
  /// charge without moving the wall clock by even a picosecond.
  bool exact_smc_clock_;

  std::vector<ChannelState> state_;
  /// Per-channel slice-local completion buffers. A channel's owner appends
  /// during the phase; the coordinator merges after the phase-end barrier.
  std::vector<std::vector<DrainedCompletion>> drained_;

  // Phase hand-off. The coordinator seeds state_/phase_ and then bumps
  // seq_ (release); workers observe the bump (acquire) either in a short
  // spin or under the mutex, so all phase inputs happen-before their reads.
  std::mutex mutex_;                     // SLICE-SHARED(phase barrier)
  std::condition_variable cv_start_;     // SLICE-SHARED(phase barrier)
  std::condition_variable cv_done_;      // SLICE-SHARED(phase barrier)
  PumpPhase phase_{};                    // SLICE-SHARED(published via seq_)
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<int> running_{0};
  std::atomic<bool> abort_{false};
  std::atomic<bool> stop_{false};
  std::vector<std::exception_ptr> errors_;  // SLICE-SHARED(mutex_)
  std::vector<std::thread> pool_;
};

}  // namespace easydram::sys
