#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace easydram::sys {

/// Completion store for the system engine's request lifecycle, replacing a
/// per-request `unordered_map<id, Response>`.
///
/// Request ids are handed out densely (1, 2, 3, ...) and every request
/// produces exactly one completion, so the outstanding window maps onto a
/// ring indexed by `id - base_id`. The core consumes completions
/// approximately in issue order; out-of-order takes leave a consumed hole
/// that is reclaimed when the window's head catches up. put/ready/take are
/// O(1) with no hashing and no per-request allocation (the ring grows
/// geometrically to the workload's maximum outstanding window and is then
/// reused).
class CompletionRing {
 public:
  explicit CompletionRing(std::uint64_t first_id = 1)
      : base_id_(first_id), slots_(kInitialCapacity) {}

  bool ready(std::uint64_t id) const {
    if (id < base_id_ || id - base_id_ >= window_) return false;
    return slot(id).state == State::kReady;
  }

  /// Registers `id` as submitted-but-not-completed and records the channel
  /// it was routed to, the issuing stream, and the issue-time processor
  /// cycle. The channel is what lets a wait() on a still-pending id be
  /// decomposed into a per-channel pump goal: only `channel`'s slice can
  /// ever produce this completion. Stream and issue cycle ride along so a
  /// completion can be attributed (and its modeled latency computed)
  /// without looking the request back up.
  void note_pending(std::uint64_t id, std::uint32_t channel,
                    std::uint32_t stream = 0, std::int64_t issue_proc_cycle = 0) {
    EASYDRAM_EXPECTS(id >= base_id_);
    const std::uint64_t off = id - base_id_;
    if (off >= slots_.size()) grow(off + 1);
    if (off >= window_) window_ = off + 1;
    Slot& s = slot(id);
    EASYDRAM_EXPECTS(s.state == State::kEmpty);
    s.channel = channel;
    s.stream = stream;
    s.issue_proc_cycle = issue_proc_cycle;
    s.state = State::kPending;
  }

  bool pending(std::uint64_t id) const {
    if (id < base_id_ || id - base_id_ >= window_) return false;
    return slot(id).state == State::kPending;
  }

  /// Channel a pending id was routed to (valid until the id is consumed).
  std::uint32_t channel(std::uint64_t id) const {
    EASYDRAM_EXPECTS(pending(id) || ready(id));
    return slot(id).channel;
  }

  /// Stream the request was issued by (valid until the id is consumed).
  std::uint32_t stream(std::uint64_t id) const {
    EASYDRAM_EXPECTS(pending(id) || ready(id));
    return slot(id).stream;
  }

  /// Emulated processor cycle the request was issued at (valid until the
  /// id is consumed); release - issue is the request's modeled latency.
  std::int64_t issue_proc_cycle(std::uint64_t id) const {
    EASYDRAM_EXPECTS(pending(id) || ready(id));
    return slot(id).issue_proc_cycle;
  }

  /// Records the completion of `id`. Ids at or above the base may arrive
  /// in any order; each id completes exactly once. `error` and
  /// `data_reliable` carry the error pipeline's typed verdict.
  void put(std::uint64_t id, std::int64_t release_proc_cycle, bool ok,
           RequestError error = RequestError::kNone, bool data_reliable = true) {
    EASYDRAM_EXPECTS(id >= base_id_);
    const std::uint64_t off = id - base_id_;
    if (off >= slots_.size()) grow(off + 1);
    if (off >= window_) window_ = off + 1;
    Slot& s = slot(id);
    EASYDRAM_EXPECTS(s.state == State::kEmpty || s.state == State::kPending);
    s.release_proc_cycle = release_proc_cycle;
    s.ok = ok;
    s.error = error;
    s.data_reliable = data_reliable;
    s.state = State::kReady;
  }

  std::int64_t release_proc_cycle(std::uint64_t id) const {
    EASYDRAM_EXPECTS(ready(id));
    return slot(id).release_proc_cycle;
  }

  bool ok(std::uint64_t id) const {
    EASYDRAM_EXPECTS(ready(id));
    return slot(id).ok;
  }

  /// Typed failure recorded for `id` (kNone for successful completions).
  RequestError error(std::uint64_t id) const {
    EASYDRAM_EXPECTS(ready(id));
    return slot(id).error;
  }

  /// Device reliability verdict recorded for `id`.
  bool data_reliable(std::uint64_t id) const {
    EASYDRAM_EXPECTS(ready(id));
    return slot(id).data_reliable;
  }

  /// Consumes `id` (which must be ready) and reclaims the consumed prefix
  /// of the window — the dominant in-order-wait pattern keeps the window
  /// at the workload's outstanding-request depth.
  void consume(std::uint64_t id) {
    EASYDRAM_EXPECTS(ready(id));
    slot(id).state = State::kConsumed;
    while (window_ > 0 && slots_[head_].state == State::kConsumed) {
      slots_[head_].state = State::kEmpty;
      head_ = head_ + 1 == slots_.size() ? 0 : head_ + 1;
      ++base_id_;
      --window_;
    }
  }

  /// Discards every stored completion (consumed or not) and fast-forwards
  /// the base past the current window, e.g. unconsumed posted-write acks
  /// at the end of a workload.
  void clear() {
    for (std::uint64_t i = 0; i < window_; ++i) {
      slots_[index(i)].state = State::kEmpty;
    }
    base_id_ += window_;
    head_ = 0;
    window_ = 0;
  }

  std::uint64_t window() const { return window_; }

 private:
  enum class State : std::uint8_t { kEmpty, kPending, kReady, kConsumed };

  struct Slot {
    std::int64_t release_proc_cycle = 0;
    std::int64_t issue_proc_cycle = 0;
    std::uint32_t channel = 0;
    std::uint32_t stream = 0;
    State state = State::kEmpty;
    bool ok = true;
    bool data_reliable = true;
    RequestError error = RequestError::kNone;
  };

  static constexpr std::size_t kInitialCapacity = 64;

  std::size_t index(std::uint64_t off) const {
    const std::size_t i = head_ + static_cast<std::size_t>(off);
    return i < slots_.size() ? i : i - slots_.size();
  }
  Slot& slot(std::uint64_t id) { return slots_[index(id - base_id_)]; }
  const Slot& slot(std::uint64_t id) const {
    return slots_[index(id - base_id_)];
  }

  void grow(std::uint64_t need) {
    std::size_t cap = slots_.size();
    while (cap < need) cap *= 2;
    std::vector<Slot> bigger(cap);
    for (std::uint64_t i = 0; i < window_; ++i) bigger[i] = slots_[index(i)];
    slots_ = std::move(bigger);
    head_ = 0;
  }

  std::uint64_t base_id_;          ///< Id stored at slots_[head_].
  std::uint64_t window_ = 0;       ///< Ids covered: [base_id_, base_id_+window_).
  std::size_t head_ = 0;
  std::vector<Slot> slots_;
};

}  // namespace easydram::sys
