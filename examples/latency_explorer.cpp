// DRAM access latency reduction end-to-end (§8): characterize part of the
// module with the tRCD profiler, build the RAIDR-style weak-row Bloom
// filter, install it into the software memory controller, and measure the
// effect on a pointer-chase microbenchmark and a PolyBench kernel.

#include <iostream>

#include "smc/trcd_profiler.hpp"
#include "sys/system.hpp"
#include "workloads/lmbench.hpp"
#include "workloads/polybench.hpp"

using namespace easydram;

int main() {
  std::cout << "tRCD latency explorer\n=====================\n\n";

  // 1) Characterize: profile rows of every bank at the 9.0 ns threshold.
  sys::SystemConfig cfg = sys::jetson_nano_time_scaling();
  cfg.mapping = smc::MappingKind::kLineInterleaved;
  sys::EasyDramSystem sysm(cfg);

  const dram::Geometry geo = sysm.device().geometry();
  std::vector<std::uint32_t> banks(geo.num_banks());
  for (std::uint32_t b = 0; b < geo.num_banks(); ++b) banks[b] = b;

  smc::WeakRowFilterStats stats;
  auto filter = smc::build_weak_row_filter(sysm.api(), banks,
                                           /*rows_per_bank=*/64,
                                           Picoseconds{9000}, 1 << 16, 4, &stats);
  std::cout << "Profiled " << stats.rows_profiled << " rows: "
            << stats.weak_rows << " weak ("
            << 100.0 * stats.weak_fraction << "%; paper: ~15.5% of lines)\n"
            << "Bloom filter: " << filter.size_bits() << " bits, "
            << filter.inserted_keys() << " keys\n\n";

  // 2) Baseline run, then install the filter and rerun.
  auto chase = workloads::make_lmbench_chase(2 << 20, 8);

  sys::EasyDramSystem baseline(cfg);
  cpu::VectorTrace t1(chase);
  const auto r1 = baseline.run(t1);

  sysm.install_weak_row_filter(std::move(filter));
  cpu::VectorTrace t2(chase);
  const auto r2 = sysm.run(t2);

  std::cout << "Pointer chase (2 MiB): nominal "
            << static_cast<double>(r1.cycles) / static_cast<double>(r1.loads)
            << " cycles/load, reduced-tRCD "
            << static_cast<double>(r2.cycles) / static_cast<double>(r2.loads)
            << " cycles/load -> "
            << 100.0 * (1.0 - static_cast<double>(r2.cycles) /
                                  static_cast<double>(r1.cycles))
            << "% faster\n";

  // 3) A full workload, as in Fig. 13.
  auto kernel = workloads::generate_kernel("mvt");
  sys::EasyDramSystem k_base(cfg);
  cpu::VectorTrace t3(kernel);
  const auto r3 = k_base.run(t3);

  sys::EasyDramSystem k_red(cfg);
  auto filter2 = smc::build_weak_row_filter(k_red.api(), banks, 64,
                                            Picoseconds{9000}, 1 << 16, 4);
  k_red.install_weak_row_filter(std::move(filter2));
  cpu::VectorTrace t4(kernel);
  const auto r4 = k_red.run(t4);

  std::cout << "mvt kernel: " << r3.cycles << " -> " << r4.cycles
            << " cycles (speedup "
            << 100.0 * (static_cast<double>(r3.cycles) /
                            static_cast<double>(r4.cycles) -
                        1.0)
            << "%; paper Fig. 13 reports low single digits)\n";
  return 0;
}
