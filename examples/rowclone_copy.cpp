// RowClone end-to-end (§7): allocate rows under the four FPM constraints,
// verify clonable pairs with the PiDRAM-style repeated-copy test, copy a
// 512 KiB array in DRAM, check the data actually moved, and compare the
// measured execution time against the CPU load/store baseline.

#include <cstring>
#include <iostream>

#include "smc/rowclone_alloc.hpp"
#include "sys/system.hpp"
#include "workloads/copyinit.hpp"

using namespace easydram;

int main() {
  std::cout << "RowClone in-DRAM copy example\n=============================\n\n";
  constexpr std::size_t kRows = 64;  // 512 KiB.

  sys::EasyDramSystem sysm(sys::jetson_nano_time_scaling());

  // 1) Allocation: source rows plus verified same-subarray destinations.
  smc::RowClonePairTester tester(sysm.api(), /*trials=*/16);
  smc::RowCloneAllocator alloc(sysm.api(), sysm.clone_map(), tester);
  const auto plan = alloc.plan_copy(kRows);
  int verified = 0;
  for (const auto& e : plan) verified += e.use_rowclone ? 1 : 0;
  std::cout << "Allocated " << kRows << " row pairs; " << verified
            << " verified clonable (" << tester.trials_run()
            << " verification trials run)\n";

  // 2) Fill the source rows with recognizable data (the No-Flush setting:
  //    source data is already resident in DRAM).
  std::vector<std::uint8_t> row_data(8192);
  for (std::size_t r = 0; r < plan.size(); ++r) {
    for (std::size_t i = 0; i < row_data.size(); ++i) {
      row_data[i] = static_cast<std::uint8_t>(r * 31 + i);
    }
    sysm.device().backdoor_write_row(plan[r].src.bank, plan[r].src.row, row_data);
  }

  // 3) Run the copy through the full system.
  sysm.enable_rowclone();
  workloads::CopyInitParams params;
  params.kind = workloads::CopyInitParams::Kind::kCopy;
  params.use_rowclone = true;
  const smc::LinearMapper mapper(sysm.device().geometry());
  workloads::CopyInitTrace trace(params, mapper, plan, {});
  const cpu::RunResult rc = sysm.run(trace);

  // 4) Verify the destination rows hold the source data.
  int rows_correct = 0;
  std::vector<std::uint8_t> out(8192);
  for (std::size_t r = 0; r < plan.size(); ++r) {
    if (!plan[r].use_rowclone) continue;  // CPU fallback carries no data here.
    bool ok = true;
    for (std::uint32_t col = 0; col < 128 && ok; ++col) {
      std::array<std::uint8_t, 64> got{};
      sysm.device().backdoor_read({plan[r].dst.bank, plan[r].dst.row, col}, got);
      for (std::size_t i = 0; i < 64; ++i) {
        if (got[i] != static_cast<std::uint8_t>(r * 31 + col * 64 + i)) ok = false;
      }
    }
    rows_correct += ok ? 1 : 0;
  }
  std::cout << "In-DRAM copies with bit-exact data: " << rows_correct << "/"
            << verified << "\n";

  // 5) CPU baseline for comparison.
  sys::EasyDramSystem base(sys::jetson_nano_time_scaling());
  workloads::CopyInitParams cpu_params = params;
  cpu_params.use_rowclone = false;
  workloads::CopyInitTrace cpu_trace(cpu_params, mapper, plan, {});
  const cpu::RunResult rcpu = base.run(cpu_trace);

  const auto window = [](const cpu::RunResult& r) {
    return r.markers.size() >= 2 ? r.markers.back() - r.markers.front() : r.cycles;
  };
  std::cout << "RowClone copy: " << window(rc) << " cycles; CPU copy: "
            << window(rcpu) << " cycles; speedup "
            << static_cast<double>(window(rcpu)) / static_cast<double>(window(rc))
            << "x (paper Fig. 10 reports ~13x at this size with time scaling)\n";
  return 0;
}
