// Extending EasyDRAM with a new scheduling policy: implement a scheduler in
// ~20 lines of C++, plug it into the software memory controller, and
// compare it against the stock FR-FCFS policy on a bank-parallel workload.
// This is the paper's core usability claim — memory-controller changes are
// ordinary C++ against EasyAPI, no HDL involved.

#include <iostream>

#include "sys/system.hpp"
#include "workloads/builder.hpp"

using namespace easydram;

namespace {

/// A deliberately row-buffer-blind policy: strict arrival order, ignoring
/// open rows (plain FCFS written as a user extension).
class StrictArrivalOrder final : public smc::Scheduler {
 public:
  std::optional<std::size_t> pick(const smc::PickContext& ctx,
                                  std::size_t& scanned) override {
    const smc::RequestTable& table = ctx.table;
    scanned = table.size();
    std::optional<std::size_t> oldest;
    for (std::size_t slot = table.first(); slot != smc::RequestTable::kNull;
         slot = table.next(slot)) {
      if (!oldest.has_value() ||
          table.at(slot).arrival_seq < table.at(*oldest).arrival_seq) {
        oldest = slot;
      }
    }
    return oldest;
  }

  std::string_view name() const override { return "StrictArrivalOrder"; }
};

std::int64_t run_with(const sys::SystemConfig& cfg) {
  sys::EasyDramSystem sysm(cfg);
  // Two conflicting rows in one bank, accesses interleaved: a row-buffer-
  // aware policy drains the open row's requests before switching; a blind
  // one ping-pongs between rows and pays PRE+ACT on nearly every access.
  workloads::TraceBuilder b;
  const std::uint64_t row_a = 0;               // Bank 0, row 0.
  const std::uint64_t row_b = 8192;            // Bank 0, row 1.
  for (int rep = 0; rep < 4000; ++rep) {
    const std::uint64_t col = static_cast<std::uint64_t>(rep % 128) * 64;
    b.load(row_a + col);
    b.load(row_b + col);
  }
  cpu::VectorTrace trace(b.take());
  return sysm.run(trace).cycles;
}

}  // namespace

int main() {
  std::cout << "Custom scheduler example\n========================\n\n";

  sys::SystemConfig frfcfs = sys::jetson_nano_time_scaling();
  const std::int64_t cycles_frfcfs = run_with(frfcfs);

  sys::SystemConfig custom = sys::jetson_nano_time_scaling();
  custom.scheduler_factory = [] {
    return std::make_unique<StrictArrivalOrder>();
  };
  const std::int64_t cycles_custom = run_with(custom);

  std::cout << "FR-FCFS:            " << cycles_frfcfs << " cycles\n"
            << "StrictArrivalOrder: " << cycles_custom << " cycles\n"
            << "FR-FCFS advantage:  "
            << 100.0 * (static_cast<double>(cycles_custom) /
                            static_cast<double>(cycles_frfcfs) -
                        1.0)
            << "% — row-buffer locality matters, and swapping the policy\n"
               "took one C++ class and one config line.\n";
  return 0;
}
