// Quickstart: assemble an EasyDRAM system, run the paper's Listing-1-style
// software memory controller against the modelled DDR4 chip, and serve a
// few read requests end-to-end — first through the full-system backend,
// then hand-driving the SMC loop so the EasyAPI surface is visible.

#include <cstring>
#include <iostream>

#include "smc/controller.hpp"
#include "sys/system.hpp"

using namespace easydram;

int main() {
  std::cout << "EasyDRAM quickstart\n===================\n\n";

  // --- Part 1: the full system as a memory backend --------------------------
  // Default configuration: A57-class processor time-scaled from a 100 MHz
  // FPGA clock, FR-FCFS software memory controller, DDR4-1333.
  sys::EasyDramSystem sysm(sys::jetson_nano_time_scaling());

  // Put recognizable data into DRAM through the test backdoor.
  std::array<std::uint8_t, 64> line{};
  for (std::size_t i = 0; i < 64; ++i) line[i] = static_cast<std::uint8_t>(i);
  const std::uint64_t paddr = 2 * 8192;  // Bank 0, row 2 (linear mapping).
  sysm.device().backdoor_write(sysm.api().get_addr_mapping(paddr), line);

  // Issue a read at emulated processor cycle 100 and wait for the response.
  const std::uint64_t id = sysm.submit_read(paddr, /*now=*/100);
  const cpu::Completion done = sysm.wait(id);
  std::cout << "Read of paddr 0x" << std::hex << paddr << std::dec
            << " completed: issued at cycle 100, release tag "
            << done.release_cycle << " -> latency "
            << done.release_cycle - 100 << " emulated cycles ("
            << (done.release_cycle - 100) / 1.43 << " ns at 1.43 GHz)\n\n";

  // --- Part 2: the Listing-1 controller, hand-driven ------------------------
  // The same C++ program a user writes for the real platform: wait for a
  // request, translate the address, issue DRAM commands through DRAM
  // Bender, return the data.
  sys::EasyDramSystem sys2(sys::jetson_nano_time_scaling());
  sys2.device().backdoor_write(sys2.api().get_addr_mapping(4096), line);

  smc::SimpleReadController controller;  // Listing 1.
  tile::Request req;
  req.id = 1;
  req.kind = tile::RequestKind::kRead;
  req.paddr = 4096;
  req.issue_proc_cycle = 0;
  sys2.api().tile().incoming().push(req);

  while (sys2.api().tile().outgoing().empty()) controller.step(sys2.api());
  const tile::Response resp = sys2.api().tile().outgoing().pop();

  std::cout << "Listing-1 controller served request " << resp.id
            << "; data correct: "
            << (std::memcmp(resp.data.data(), line.data(), 64) == 0 ? "yes" : "no")
            << "; release tag " << resp.release_proc_cycle << "\n";
  std::cout << "DRAM commands issued so far: ACT="
            << sys2.device().commands_issued(dram::Command::kAct)
            << " RD=" << sys2.device().commands_issued(dram::Command::kRead)
            << "\n";
  return 0;
}
