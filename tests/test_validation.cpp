#include <gtest/gtest.h>

#include "sys/system.hpp"
#include "workloads/lmbench.hpp"
#include "workloads/polybench.hpp"

namespace easydram::sys {
namespace {

/// Miniature §6 validation: the time-scaled 100 MHz system and the 1 GHz
/// RTL reference must report near-identical execution times. The full
/// 28-workload sweep lives in bench_validation; these tests gate a fast
/// subset so regressions surface in CI time.
class ValidationTest : public ::testing::TestWithParam<std::string_view> {};

TEST_P(ValidationTest, TimeScalingTracksReference) {
  auto trace_records = workloads::generate_kernel(GetParam());
  // Clip long kernels for test speed; the bench runs them in full.
  if (trace_records.size() > 400'000) trace_records.resize(400'000);

  EasyDramSystem ts(validation_time_scaling());
  cpu::VectorTrace t1(trace_records);
  const auto r_ts = ts.run(t1);

  EasyDramSystem ref(validation_reference());
  cpu::VectorTrace t2(trace_records);
  const auto r_ref = ref.run(t2);

  ASSERT_GT(r_ref.cycles, 0);
  const double err = std::abs(static_cast<double>(r_ts.cycles - r_ref.cycles)) /
                     static_cast<double>(r_ref.cycles);
  EXPECT_LT(err, 0.01) << "TS " << r_ts.cycles << " vs ref " << r_ref.cycles;
}

INSTANTIATE_TEST_SUITE_P(Kernels, ValidationTest,
                         ::testing::Values("durbin", "trisolv", "gesummv",
                                           "floyd-warshall"));

TEST(ValidationLatency, LmbenchProfileOrdering) {
  // L1-resident chases are fast; DRAM-sized chases approach the modeled
  // memory latency. Sanity-gates the Fig. 8 bench.
  auto run_size = [](std::uint64_t bytes) {
    EasyDramSystem sysm(jetson_nano_time_scaling());
    // Enough passes that cold misses do not dominate small buffers.
    const int passes =
        static_cast<int>(std::clamp<std::uint64_t>((4 << 20) / bytes, 4, 64));
    auto recs = workloads::make_lmbench_chase(bytes, passes);
    cpu::VectorTrace t(std::move(recs));
    const auto r = sysm.run(t);
    return static_cast<double>(r.cycles) / static_cast<double>(r.loads);
  };

  const double l1 = run_size(16 * 1024);        // Fits in 32 KiB L1.
  const double l2 = run_size(256 * 1024);       // Fits in 512 KiB L2.
  const double mem = run_size(4 * 1024 * 1024); // DRAM.
  EXPECT_LT(l1, l2);
  EXPECT_LT(l2, mem);
  EXPECT_GT(mem, 50.0);   // GHz-class processor sees long memory latency...
  EXPECT_LT(mem, 400.0);  // ...but not absurdly long.
  EXPECT_LT(l1, 10.0);
}

}  // namespace
}  // namespace easydram::sys
