#include <gtest/gtest.h>

#include "ramulator/ramulator.hpp"
#include "workloads/builder.hpp"

namespace easydram::ramulator {
namespace {

using namespace easydram::literals;

RamulatorConfig small_cfg() {
  RamulatorConfig cfg;
  cfg.llc = cpu::CacheConfig{16 * 1024, 4, 64};  // Small LLC for miss tests.
  return cfg;
}

TEST(RamulatorTest, PureComputeRetiresAtWidth) {
  RamulatorSim sim(small_cfg());
  workloads::TraceBuilder b;
  b.compute(4000);
  b.load(0);  // Single access carrying the gap.
  cpu::VectorTrace t(b.take());
  const RamStats s = sim.run(t);
  EXPECT_EQ(s.instructions, 4003);
  // 4-wide retire: at least 1000 cycles, and memory adds a bounded tail.
  EXPECT_GE(s.cycles, 1000);
  EXPECT_LE(s.cycles, 3000);
}

TEST(RamulatorTest, LlcHitsAvoidMemory) {
  RamulatorSim sim(small_cfg());
  workloads::TraceBuilder b;
  for (int rep = 0; rep < 10; ++rep) {
    for (int i = 0; i < 8; ++i) b.load(static_cast<std::uint64_t>(i) * 64);
  }
  cpu::VectorTrace t(b.take());
  const RamStats s = sim.run(t);
  EXPECT_EQ(s.mem_reads, 8);  // Only cold misses.
  EXPECT_EQ(s.loads, 80);
}

TEST(RamulatorTest, DependentLoadsExposeDramLatency) {
  RamulatorSim sim(small_cfg());
  workloads::TraceBuilder b;
  // 128 KiB stride: same bank, a new row each time (line-interleaved map),
  // so every access pays the full PRE+ACT+RD path.
  for (int i = 0; i < 20; ++i) {
    b.load_dependent(static_cast<std::uint64_t>(i) * 128 * 1024);
  }
  cpu::VectorTrace t(b.take());
  const RamStats s = sim.run(t);
  // Each row-miss access: >= tRCD+tCL+tBL ~ 33 ns ~ 105 CPU cycles at 3.2 GHz.
  EXPECT_GE(s.cycles, 20 * 100);
  EXPECT_EQ(s.llc_misses, 20);
  EXPECT_GE(s.row_misses, 20);
}

TEST(RamulatorTest, RowHitsAreCounted) {
  RamulatorSim sim(small_cfg());
  workloads::TraceBuilder b;
  // Sequential lines within one DRAM row of one bank: line-interleaved
  // mapping sends consecutive lines to different banks, so use stride
  // 16*64 to stay in bank 0 and walk its columns.
  for (int i = 0; i < 32; ++i) {
    b.load_dependent(static_cast<std::uint64_t>(i) * 16 * 64);
  }
  cpu::VectorTrace t(b.take());
  const RamStats s = sim.run(t);
  EXPECT_GT(s.row_hits, 20);
}

TEST(RamulatorTest, RowCloneIsIdealized) {
  RamulatorSim sim(small_cfg());
  workloads::TraceBuilder b;
  for (int i = 0; i < 10; ++i) {
    b.rowclone(static_cast<std::uint64_t>(2 * i) * 8192,
               static_cast<std::uint64_t>(2 * i + 1) * 8192);
  }
  cpu::VectorTrace t(b.take());
  const RamStats s = sim.run(t);
  EXPECT_EQ(s.rowclones, 10);
  // Each idealized clone costs ~2 tCK + tRAS + tRP plus the fixed
  // request-path overhead (~350 ns total); ten clones finish in ~3.5 us.
  EXPECT_LT(s.cycles, 20'000);
}

TEST(RamulatorTest, InstructionCapStopsSimulation) {
  RamulatorConfig cfg = small_cfg();
  cfg.max_instructions = 1000;
  RamulatorSim sim(cfg);
  workloads::TraceBuilder b;
  for (int i = 0; i < 10000; ++i) b.load(static_cast<std::uint64_t>(i % 8) * 64);
  cpu::VectorTrace t(b.take());
  const RamStats s = sim.run(t);
  EXPECT_LE(s.instructions, 1005);
}

TEST(RamulatorTest, Deterministic) {
  auto once = [] {
    RamulatorSim sim(small_cfg());
    workloads::TraceBuilder b;
    for (int i = 0; i < 500; ++i) {
      b.load(static_cast<std::uint64_t>(i) * 512);
      b.store(static_cast<std::uint64_t>(i) * 512 + 64);
    }
    cpu::VectorTrace t(b.take());
    return sim.run(t).cycles;
  };
  EXPECT_EQ(once(), once());
}

TEST(RamulatorTest, MarkersCaptured) {
  RamulatorSim sim(small_cfg());
  std::vector<cpu::TraceRecord> recs;
  cpu::TraceRecord m;
  m.op = cpu::Op::kMarker;
  recs.push_back(m);
  cpu::TraceRecord l;
  l.op = cpu::Op::kLoadDependent;
  l.addr = 4096;
  recs.push_back(l);
  recs.push_back(m);
  cpu::VectorTrace t(std::move(recs));
  const RamStats s = sim.run(t);
  ASSERT_EQ(s.markers.size(), 2u);
  EXPECT_GT(s.markers[1], s.markers[0]);
}

TEST(RamulatorTest, ReducedTrcdSpeedsUpRowMisses) {
  workloads::TraceBuilder b;
  for (int i = 0; i < 400; ++i) {
    b.load_dependent(static_cast<std::uint64_t>(i) * 4096);
  }
  const auto recs = b.take();

  RamulatorSim nominal(small_cfg());
  cpu::VectorTrace t1(recs);
  const RamStats s1 = nominal.run(t1);

  RamulatorConfig fast_cfg = small_cfg();
  fast_cfg.trcd_of = [](std::uint32_t, std::uint32_t) { return 9_ns; };
  RamulatorSim fast(fast_cfg);
  cpu::VectorTrace t2(recs);
  const RamStats s2 = fast.run(t2);

  EXPECT_LT(s2.cycles, s1.cycles);
}

TEST(RamulatorTest, WritebacksHappenUnderCapacityPressure) {
  RamulatorSim sim(small_cfg());
  workloads::TraceBuilder b;
  for (int i = 0; i < 2000; ++i) b.store(static_cast<std::uint64_t>(i) * 64);
  cpu::VectorTrace t(b.take());
  const RamStats s = sim.run(t);
  EXPECT_GT(s.mem_writes, 100);
}

}  // namespace
}  // namespace easydram::ramulator
