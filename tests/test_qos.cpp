// Multi-tenant QoS: stream identity end-to-end, the stream-aware scheduler
// family (PAR-BS / BLISS / ATLAS / TCM), static bank partitioning, and the
// mixed-tenant trace builder. Companion of docs/ARCHITECTURE.md's "QoS &
// multi-tenant traffic" chapter.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "smc/addr_map.hpp"
#include "smc/request_table.hpp"
#include "smc/scheduler.hpp"
#include "sys/system.hpp"
#include "workloads/mixed.hpp"

namespace easydram {
namespace {

using smc::BankStateView;
using smc::BlacklistScheduler;
using smc::PickContext;
using smc::RequestTable;
using smc::StreamTable;
using smc::TableEntry;

/// Bank-state fake over the full DRAM coordinate (the schedulers key row
/// hits on channel/rank/bank, so the lambda sees the whole address).
struct AddrBanks final : BankStateView {
  explicit AddrBanks(
      std::function<std::optional<std::uint32_t>(const dram::DramAddress&)> f)
      : fn(std::move(f)) {}
  std::optional<std::uint32_t> open_row(
      const dram::DramAddress& a) const override {
    return fn(a);
  }
  std::function<std::optional<std::uint32_t>(const dram::DramAddress&)> fn;
};

TableEntry entry(std::uint32_t stream, std::uint32_t bank, std::uint32_t row) {
  TableEntry e;
  e.request.stream_id = stream;
  e.dram_addr = dram::DramAddress{bank, row, 0};
  return e;
}

/// Banks fake with exactly `row` open in `bank` (everything else closed).
AddrBanks open_row_banks(std::uint32_t bank, std::uint32_t row) {
  return AddrBanks(
      [bank, row](const dram::DramAddress& a) -> std::optional<std::uint32_t> {
        if (a.bank == bank) return row;
        return std::nullopt;
      });
}

// --------------------------------------------------------------------------
// StreamTable
// --------------------------------------------------------------------------

TEST(StreamTableTest, GrowsOnDemandAndAccumulates) {
  StreamTable st;
  EXPECT_EQ(st.size(), 0u);
  EXPECT_EQ(st.arrivals(7), 0u);  // Unknown streams read as zero.
  st.note_arrival(2);
  st.note_service(2);
  st.note_service(2, 3);
  EXPECT_EQ(st.size(), 3u);
  EXPECT_EQ(st.arrivals(2), 1u);
  EXPECT_EQ(st.served(2), 4u);
  EXPECT_EQ(st.attained_service(2), 4u);
  EXPECT_EQ(st.served(0), 0u);
  st.clear();
  EXPECT_EQ(st.size(), 0u);
}

// --------------------------------------------------------------------------
// PAR-BS: batch boundaries are stream-blind, so no stream can starve
// another past one batch.
// --------------------------------------------------------------------------

TEST(QosSchedulerTest, ParbsServesStarvedStreamWithinItsBatch) {
  RequestTable t(16);
  t.insert(entry(0, 0, 99));                                // Miss, seq 0.
  for (int i = 0; i < 10; ++i) t.insert(entry(1, 1, 20));   // Hit train.
  AddrBanks banks = open_row_banks(1, 20);
  smc::BatchScheduler parbs(4);
  std::size_t scanned = 0;

  // Drain until stream 0's request is served; everything served before it
  // must belong to its own batch (arrival_seq < 4) — the hog's younger
  // row hits cannot jump the boundary.
  std::vector<std::uint64_t> served_before;
  for (int i = 0; i < 11; ++i) {
    const auto pick = parbs.pick({t, banks}, scanned).value();
    const TableEntry& e = t.at(pick);
    if (e.request.stream_id == 0) break;
    served_before.push_back(e.arrival_seq);
    t.remove(pick);
  }
  ASSERT_LT(served_before.size(), 10u);  // It was served eventually.
  for (const std::uint64_t seq : served_before) EXPECT_LT(seq, 4u);
}

// --------------------------------------------------------------------------
// BLISS: per-stream blacklisting with >= 2 streams outstanding.
// --------------------------------------------------------------------------

TEST(QosSchedulerTest, BlissBlacklistsHogStreamAfterStreak) {
  RequestTable t(16);
  t.insert(entry(0, 0, 99));                                // Victim miss.
  for (int i = 0; i < 10; ++i) t.insert(entry(1, 1, 20));   // Hog hits.
  AddrBanks banks = open_row_banks(1, 20);
  BlacklistScheduler bliss(3);
  std::size_t scanned = 0;

  int hog_picks_before_victim = 0;
  for (int i = 0; i < 11; ++i) {
    const auto pick = bliss.pick({t, banks}, scanned).value();
    if (t.at(pick).request.stream_id == 0) break;
    t.remove(pick);
    ++hog_picks_before_victim;
  }
  // The hog's streak is capped at the limit, at which point it is
  // blacklisted and the victim's older miss outranks its row hits.
  EXPECT_LE(hog_picks_before_victim, 3);
  EXPECT_TRUE(bliss.blacklisted(1));
  EXPECT_FALSE(bliss.blacklisted(0));
}

TEST(QosSchedulerTest, BlissBlacklistClearsAfterInterval) {
  AddrBanks banks = open_row_banks(1, 20);
  BlacklistScheduler bliss(/*streak_limit=*/2, /*clear_interval=*/4);
  std::size_t scanned = 0;

  // Keep both streams outstanding forever: each pick is served and an
  // identical request re-queued.
  RequestTable t(16);
  for (int i = 0; i < 4; ++i) {
    t.insert(entry(1, 1, 20));  // Hog: row hits.
    t.insert(entry(0, 0, 7));   // Victim: misses.
  }
  auto step = [&] {
    const auto pick = bliss.pick({t, banks}, scanned).value();
    const TableEntry e = t.remove(pick);
    t.insert(entry(e.request.stream_id, e.dram_addr.bank, e.dram_addr.row));
  };
  step();
  step();
  EXPECT_TRUE(bliss.blacklisted(1));  // Streak limit reached.
  step();
  step();
  EXPECT_TRUE(bliss.blacklisted(0));  // The former victim hogged in turn.
  step();  // 5th pick crosses the clearing interval: everyone forgiven.
  EXPECT_FALSE(bliss.blacklisted(0));
  EXPECT_FALSE(bliss.blacklisted(1));
}

// --------------------------------------------------------------------------
// BLISS single-source mode: the row-streak bound is row-key-agnostic. A
// row whose packed key is the all-ones pattern (the old implementation's
// "no previous pick" sentinel) must behave exactly like any other row —
// regression test for the sentinel aliasing fix.
// --------------------------------------------------------------------------

std::vector<std::uint64_t> bliss_single_source_pick_sequence(
    std::uint32_t bank, std::uint32_t row, std::uint32_t channel,
    std::uint32_t rank) {
  RequestTable t(16);
  TableEntry miss = entry(0, bank + 1, 5);  // Closed bank: always a miss.
  t.insert(miss);
  for (int i = 0; i < 10; ++i) {
    TableEntry hit = entry(0, bank, row);
    hit.dram_addr.channel = channel;
    hit.dram_addr.rank = rank;
    t.insert(hit);
  }
  AddrBanks banks(
      [bank, row](const dram::DramAddress& a) -> std::optional<std::uint32_t> {
        if (a.bank == bank) return row;
        return std::nullopt;
      });
  BlacklistScheduler bliss(2);
  std::size_t scanned = 0;
  std::vector<std::uint64_t> seqs;
  for (int i = 0; i < 8; ++i) {
    const auto pick = bliss.pick({t, banks}, scanned).value();
    seqs.push_back(t.at(pick).arrival_seq);
    t.remove(pick);
  }
  return seqs;
}

TEST(QosSchedulerTest, BlissStreakBoundIsRowKeyAgnostic) {
  // dram::row_key packs channel(10b) | rank(6b) | bank(16b) | row(32b);
  // these coordinates produce the all-ones key, the legacy sentinel value.
  const auto sentinel_key = bliss_single_source_pick_sequence(
      0xFFFFu, 0xFFFFFFFFu, 0x3FFu, 0x3Fu);
  const auto normal_key = bliss_single_source_pick_sequence(1, 20, 0, 0);
  EXPECT_EQ(sentinel_key, normal_key);
}

// --------------------------------------------------------------------------
// ATLAS: least attained service outranks row hits.
// --------------------------------------------------------------------------

TEST(QosSchedulerTest, AtlasRankInvertsAfterServiceImbalance) {
  RequestTable t(8);
  t.insert(entry(0, 1, 20));  // Older, and a row hit: FR-FCFS's choice.
  t.insert(entry(1, 0, 7));   // Younger row miss from the light stream.
  AddrBanks banks = open_row_banks(1, 20);
  smc::AtlasScheduler atlas;
  std::size_t scanned = 0;

  // Without stream metadata ATLAS degrades to plain FR-FCFS.
  EXPECT_EQ(t.at(atlas.pick({t, banks}, scanned).value()).request.stream_id,
            0u);

  // Stream 0 has attained far more service: the ranking inverts and the
  // light stream's miss beats the heavy stream's row hit.
  StreamTable st;
  st.note_service(0, 100);
  st.note_service(1, 1);
  EXPECT_EQ(
      t.at(atlas.pick({t, banks, &st}, scanned).value()).request.stream_id,
      1u);
}

// --------------------------------------------------------------------------
// TCM: bandwidth-heavy streams are declassified at the window boundary.
// --------------------------------------------------------------------------

TEST(QosSchedulerTest, TcmDeprioritizesBandwidthClusterAfterWindow) {
  smc::TcmScheduler tcm(/*window_size=*/8);
  std::size_t scanned = 0;

  // Window 1: stream 1 takes 7 of 8 picks, stream 0 one — above vs below
  // the fair share of 4.
  AddrBanks banks = open_row_banks(1, 20);
  for (int i = 0; i < 7; ++i) {
    RequestTable t(4);
    t.insert(entry(1, 1, 20));
    EXPECT_TRUE(tcm.pick({t, banks}, scanned).has_value());
  }
  {
    RequestTable t(4);
    t.insert(entry(0, 0, 7));
    EXPECT_TRUE(tcm.pick({t, banks}, scanned).has_value());
  }

  // Window 2 (rolled on the next pick): stream 1 is bandwidth-classified,
  // so stream 0's younger row miss outranks its older row hit.
  RequestTable t(8);
  t.insert(entry(1, 1, 20));
  t.insert(entry(0, 0, 7));
  const auto pick = tcm.pick({t, banks}, scanned).value();
  EXPECT_EQ(t.at(pick).request.stream_id, 0u);
  EXPECT_TRUE(tcm.bandwidth_cluster(1));
  EXPECT_FALSE(tcm.bandwidth_cluster(0));
}

// --------------------------------------------------------------------------
// Scheduler registry
// --------------------------------------------------------------------------

TEST(SchedulerRegistryTest, TokensRoundTripAndFactoriesMatch) {
  using smc::SchedulerKind;
  for (const SchedulerKind kind :
       {SchedulerKind::kAuto, SchedulerKind::kFcfs, SchedulerKind::kFrfcfs,
        SchedulerKind::kParbs, SchedulerKind::kBliss, SchedulerKind::kAtlas,
        SchedulerKind::kTcm}) {
    EXPECT_EQ(smc::parse_scheduler(smc::to_string(kind)), kind);
  }
  EXPECT_FALSE(smc::parse_scheduler("nope").has_value());
  EXPECT_EQ(smc::make_scheduler(SchedulerKind::kAuto)->name(), "FR-FCFS");
  EXPECT_EQ(smc::make_scheduler(SchedulerKind::kBliss)->name(), "BLISS");
  EXPECT_EQ(smc::make_scheduler(SchedulerKind::kTcm)->name(), "TCM");
  EXPECT_EQ(smc::make_scheduler(SchedulerKind::kAtlas)->name(), "ATLAS");
  EXPECT_EQ(smc::make_scheduler(SchedulerKind::kParbs)->name(), "PAR-BS");
  EXPECT_EQ(smc::make_scheduler(SchedulerKind::kFcfs)->name(), "FCFS");
}

// --------------------------------------------------------------------------
// Stream identity round trip: trace record -> request -> response ->
// completion -> per-stream latency sample.
// --------------------------------------------------------------------------

TEST(StreamRoundTripTest, CompletionEchoesStreamAndLatencyIsBucketed) {
  sys::SystemConfig cfg = sys::jetson_nano_time_scaling();
  cfg.track_stream_latency = true;
  sys::EasyDramSystem sysm(cfg);

  sysm.set_stream(2);
  const std::uint64_t id2 = sysm.submit_read(4096, 100);
  sysm.set_stream(5);
  const std::uint64_t id5 = sysm.submit_read(64 * 1024, 200);

  const cpu::Completion c2 = sysm.wait(id2);
  const cpu::Completion c5 = sysm.wait(id5);
  EXPECT_EQ(c2.stream, 2u);
  EXPECT_EQ(c5.stream, 5u);
  EXPECT_TRUE(c2.ok);

  const auto& samples = sysm.stream_latency_samples();
  ASSERT_GE(samples.size(), 6u);
  ASSERT_EQ(samples[2].size(), 1u);
  ASSERT_EQ(samples[5].size(), 1u);
  EXPECT_TRUE(samples[0].empty());
  // Modeled latency = release minus issue cycle: positive, and consistent
  // with the completion tag.
  EXPECT_EQ(samples[2][0], c2.release_cycle - 100);
  EXPECT_GT(samples[2][0], 0);
}

TEST(StreamRoundTripTest, LatencyTrackingIsOffByDefault) {
  sys::EasyDramSystem sysm(sys::jetson_nano_time_scaling());
  sysm.set_stream(3);
  sysm.wait(sysm.submit_read(4096, 0));
  EXPECT_TRUE(sysm.stream_latency_samples().empty());
}

// --------------------------------------------------------------------------
// Static bank partitioning (mapper layer)
// --------------------------------------------------------------------------

TEST(BankPartitionMapperTest, RoundTripsAndConfinesPartitions) {
  dram::Geometry geo;
  const unsigned partitions = 4;
  smc::BankPartitionMapper m(geo, partitions);
  const std::uint32_t banks_per_partition = geo.num_banks() / partitions;

  for (unsigned p = 0; p < partitions; ++p) {
    const std::uint64_t base = m.partition_base(p);
    for (std::uint64_t off = 0; off < 64 * 1024; off += 64 * 7) {
      const std::uint64_t paddr = base + off;
      const dram::DramAddress a = m.to_dram(paddr);
      // Every line of partition p lands in p's own bank slice...
      EXPECT_EQ(a.bank / banks_per_partition, p);
      // ...and the mapping inverts exactly.
      EXPECT_EQ(m.to_physical(a), paddr);
    }
  }
}

TEST(BankPartitionMapperTest, RegistryKnowsBankpart) {
  EXPECT_EQ(smc::parse_mapping("bankpart"), smc::MappingKind::kBankPartition);
  EXPECT_EQ(smc::to_string(smc::MappingKind::kBankPartition), "bankpart");
  dram::Geometry geo;
  const auto m =
      smc::make_mapper(smc::MappingKind::kBankPartition, geo, /*partitions=*/2);
  EXPECT_EQ(m->name(), "bankpart");
  EXPECT_EQ(m->to_physical(m->to_dram(64 * 1234)), 64u * 1234u);
}

// --------------------------------------------------------------------------
// Mixed-tenant trace builder
// --------------------------------------------------------------------------

std::vector<workloads::TenantSpec> three_tenants() {
  using workloads::TenantKind;
  using workloads::TenantSpec;
  TenantSpec chase;
  chase.kind = TenantKind::kPointerChase;
  chase.stream = 0;
  chase.base_addr = 0;
  chase.footprint_bytes = 16 * 1024;
  TenantSpec copy;
  copy.kind = TenantKind::kStreamCopy;
  copy.stream = 1;
  copy.base_addr = 1 * 1024 * 1024;
  copy.footprint_bytes = 16 * 1024;
  copy.passes = 2;
  TenantSpec hammer;
  hammer.kind = TenantKind::kHammer;
  hammer.stream = 2;
  hammer.base_addr = 2 * 1024 * 1024;
  return {chase, copy, hammer};
}

TEST(MixedTraceTest, TagsEveryRecordAndPreservesCounts) {
  dram::Geometry geo;
  smc::LinearMapper mapper(geo);
  const auto tenants = three_tenants();
  const workloads::MixedTrace mixed =
      workloads::make_mixed_trace(tenants, mapper);

  ASSERT_EQ(mixed.solo.size(), 3u);
  std::size_t total = 0;
  std::vector<std::size_t> per_stream(3, 0);
  for (std::size_t i = 0; i < mixed.solo.size(); ++i) {
    EXPECT_FALSE(mixed.solo[i].empty());
    for (const cpu::TraceRecord& rec : mixed.solo[i]) {
      EXPECT_EQ(rec.stream, tenants[i].stream);
    }
    total += mixed.solo[i].size();
  }
  ASSERT_EQ(mixed.interleaved.size(), total);
  for (const cpu::TraceRecord& rec : mixed.interleaved) {
    ASSERT_LT(rec.stream, 3u);
    ++per_stream[rec.stream];
  }
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(per_stream[i], mixed.solo[i].size());
  }
}

TEST(MixedTraceTest, InterleaveIsProportionalAndDeterministic) {
  dram::Geometry geo;
  smc::LinearMapper mapper(geo);
  const auto tenants = three_tenants();
  const auto a = workloads::make_mixed_trace(tenants, mapper);
  const auto b = workloads::make_mixed_trace(tenants, mapper);

  // Bit-identical rebuild: pure function of the spec list.
  ASSERT_EQ(a.interleaved.size(), b.interleaved.size());
  for (std::size_t i = 0; i < a.interleaved.size(); ++i) {
    EXPECT_EQ(a.interleaved[i].addr, b.interleaved[i].addr);
    EXPECT_EQ(a.interleaved[i].stream, b.interleaved[i].stream);
    EXPECT_EQ(a.interleaved[i].op, b.interleaved[i].op);
  }

  // Proportional interleave: every tenant shows up early — within any
  // window of ~2x the tenant count the smooth round-robin must have
  // visited all of them at least once near the front.
  std::vector<bool> seen(3, false);
  for (std::size_t i = 0; i < 32 && i < a.interleaved.size(); ++i) {
    seen[a.interleaved[i].stream] = true;
  }
  EXPECT_TRUE(seen[0]);
  EXPECT_TRUE(seen[1]);
  EXPECT_TRUE(seen[2]);
}

}  // namespace
}  // namespace easydram
