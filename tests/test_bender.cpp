#include <gtest/gtest.h>

#include <cstring>

#include "bender/interpreter.hpp"
#include "bender/program.hpp"
#include "dram/device.hpp"

namespace easydram::bender {
namespace {

using namespace easydram::literals;
using dram::Command;
using dram::DramAddress;

class BenderTest : public ::testing::Test {
 protected:
  BenderTest() : dev_(geo_, timing_, variation()), interp_(dev_) {}

  static dram::VariationConfig variation() {
    dram::VariationConfig v;
    v.min_trcd = Picoseconds{1000};
    v.max_trcd = Picoseconds{1001};
    v.rowclone_pair_success = 1.0;
    return v;
  }

  dram::Geometry geo_;
  dram::TimingParams timing_ = dram::ddr4_1333();
  dram::DramDevice dev_;
  Interpreter interp_;
};

TEST_F(BenderTest, EmptyProgramTakesNoTime) {
  Program p;
  const ExecutionResult r = interp_.execute(p, 0_ns);
  EXPECT_EQ(r.elapsed.count, 0);
  EXPECT_EQ(r.commands_issued, 0);
}

TEST_F(BenderTest, SleepAdvancesExactCycles) {
  Program p;
  p.sleep(10);
  const ExecutionResult r = interp_.execute(p, 0_ns);
  EXPECT_EQ(r.elapsed, timing_.tCK * 10);
}

TEST_F(BenderTest, SleepAtLeastRoundsUp) {
  Program p;
  p.sleep_at_least(Picoseconds{1600}, timing_.tCK);  // 1.6 ns / 1.5 ns -> 2 cycles
  const ExecutionResult r = interp_.execute(p, 0_ns);
  EXPECT_EQ(r.elapsed, timing_.tCK * 2);
}

TEST_F(BenderTest, NominalCommandsAutoDelay) {
  Program p;
  p.ddr(Command::kAct, {0, 5, 0});
  p.ddr(Command::kRead, {0, 5, 3}, /*capture=*/true);
  const ExecutionResult r = interp_.execute(p, 0_ns);
  EXPECT_EQ(r.violations, dram::kNone);
  // The read waited for tRCD; elapsed covers ACT -> read data end.
  EXPECT_GE(r.elapsed, timing_.tRCD + timing_.read_data_latency());
  ASSERT_EQ(r.readback.size(), 1u);
}

TEST_F(BenderTest, ExactCommandsViolateOnPurpose) {
  Program p;
  p.ddr(Command::kAct, {0, 5, 0});
  p.ddr_exact(Command::kRead, {0, 5, 3}, 5_ns, /*capture=*/true);
  const ExecutionResult r = interp_.execute(p, 0_ns);
  EXPECT_TRUE(r.violations & dram::kTrcd);
}

TEST_F(BenderTest, ExactGapIsExact) {
  Program p;
  p.ddr(Command::kAct, {0, 5, 0});
  p.ddr_exact(Command::kRead, {0, 5, 3}, 7500_ps, /*capture=*/true);
  interp_.execute(p, 0_ns);
  // ACT at 0, RD must be exactly at 7.5 ns: the device saw an effective
  // tRCD of 7.5 ns (reliable in this fixture), flagged as violation.
  // Validate via device clock: last command issued at 7.5 ns.
  EXPECT_EQ(dev_.now(), 7500_ps);
}

TEST_F(BenderTest, WriteReadRoundTripThroughPrograms) {
  std::array<std::uint8_t, 64> data{};
  for (std::size_t i = 0; i < 64; ++i) data[i] = static_cast<std::uint8_t>(i * 3);

  Program w;
  const std::uint32_t idx = w.add_wdata(data);
  w.ddr(Command::kAct, {1, 9, 0});
  Instruction wr;
  wr.op = Opcode::kDdr;
  wr.cmd = Command::kWrite;
  wr.bank = Operand::imm(1);
  wr.row = Operand::imm(9);
  wr.col = Operand::imm(4);
  wr.wdata_index = idx;
  w.push(wr);
  w.ddr(Command::kPre, {1, 0, 0});
  interp_.execute(w, 0_ns);

  Program r;
  r.ddr(Command::kAct, {1, 9, 0});
  r.ddr(Command::kRead, {1, 9, 4}, /*capture=*/true);
  const ExecutionResult res = interp_.execute(r, dev_.now());
  ASSERT_EQ(res.readback.size(), 1u);
  EXPECT_EQ(std::memcmp(res.readback[0].data.data(), data.data(), 64), 0);
}

TEST_F(BenderTest, LoopRepeatsBody) {
  Program p;
  p.loop_begin(5);
  p.ddr(Command::kAct, {0, 1, 0});
  p.ddr(Command::kPre, {0, 0, 0});
  p.loop_end();
  const ExecutionResult r = interp_.execute(p, 0_ns);
  EXPECT_EQ(r.commands_issued, 10);
  EXPECT_EQ(dev_.commands_issued(Command::kAct), 5);
}

TEST_F(BenderTest, NestedLoops) {
  Program p;
  p.loop_begin(3);
  p.loop_begin(4);
  p.sleep(1);
  p.loop_end();
  p.loop_end();
  const ExecutionResult r = interp_.execute(p, 0_ns);
  EXPECT_EQ(r.elapsed, timing_.tCK * 12);
}

TEST_F(BenderTest, ZeroTripLoopIsSkipped) {
  Program p;
  p.loop_begin(0);
  p.ddr(Command::kAct, {0, 1, 0});
  p.loop_end();
  p.sleep(2);
  const ExecutionResult r = interp_.execute(p, 0_ns);
  EXPECT_EQ(r.commands_issued, 0);
  EXPECT_EQ(r.elapsed, timing_.tCK * 2);
}

TEST_F(BenderTest, RegistersDriveAddresses) {
  Program p;
  p.set_reg(0, 100);  // row register
  p.loop_begin(3);
  Instruction act;
  act.op = Opcode::kDdr;
  act.cmd = Command::kAct;
  act.bank = Operand::imm(2);
  act.row = Operand::reg(0);
  p.push(act);
  p.ddr(Command::kPre, {2, 0, 0});
  p.add_reg(0, 1);
  p.loop_end();
  interp_.execute(p, 0_ns);
  // Rows 100, 101, 102 were activated; the last one was 102.
  EXPECT_EQ(dev_.commands_issued(Command::kAct), 3);
}

TEST_F(BenderTest, RowCloneProgram) {
  // Write a marker into row 20 via backdoor, clone to row 21.
  std::array<std::uint8_t, 64> marker{};
  marker.fill(0xCD);
  dev_.backdoor_write({3, 20, 0}, marker);

  Program p;
  p.ddr(Command::kAct, {3, 20, 0});
  p.ddr_exact(Command::kPre, {3, 0, 0}, timing_.tCK * 2);
  p.ddr_exact(Command::kAct, {3, 21, 0}, timing_.tCK * 2);
  p.sleep_at_least(timing_.tRAS, timing_.tCK);
  p.ddr(Command::kPre, {3, 0, 0});
  const ExecutionResult r = interp_.execute(p, 0_ns);
  EXPECT_EQ(r.rowclone_attempts, 1);
  EXPECT_EQ(r.rowclone_successes, 1);

  std::array<std::uint8_t, 64> out{};
  dev_.backdoor_read({3, 21, 0}, out);
  EXPECT_EQ(std::memcmp(out.data(), marker.data(), 64), 0);
}

TEST_F(BenderTest, ElapsedCoversRefresh) {
  Program p;
  p.ddr(Command::kRef, {});
  const ExecutionResult r = interp_.execute(p, 0_ns);
  EXPECT_GE(r.elapsed, timing_.tRFC);
}

TEST_F(BenderTest, CommandBufferCapacityEnforced) {
  Program p;
  for (std::size_t i = 0; i < kCommandBufferCapacity; ++i) p.sleep(1);
  EXPECT_THROW(p.sleep(1), ContractViolation);
}

TEST_F(BenderTest, UnbalancedLoopEndRejected) {
  Program p;
  EXPECT_THROW(p.loop_end(), ContractViolation);
}

TEST_F(BenderTest, StartBeforeDeviceNowIsClamped) {
  Program a;
  a.ddr(Command::kAct, {0, 1, 0});
  interp_.execute(a, 100_ns);
  Program b;
  b.ddr(Command::kPre, {0, 0, 0});
  // Requesting an earlier start silently clamps to the device clock.
  const ExecutionResult r = interp_.execute(b, 0_ns);
  EXPECT_GE(dev_.now(), 100_ns);
  EXPECT_EQ(r.violations & dram::kBankNotActive, 0u);
}

}  // namespace
}  // namespace easydram::bender
