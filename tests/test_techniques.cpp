#include <gtest/gtest.h>

#include "smc/easyapi.hpp"
#include "smc/rowclone_alloc.hpp"
#include "smc/trcd_profiler.hpp"

namespace easydram::smc {
namespace {

using namespace easydram::literals;

/// Harness with the default (paper-calibrated) variation model.
struct Harness {
  explicit Harness(dram::VariationConfig var = dram::VariationConfig{})
      : device(geo, dram::ddr4_1333(), var),
        tile(tile::TileConfig{}),
        mapper(geo),
        keeper(timescale::SystemMode::kTimeScaling,
               timescale::DomainConfig{Frequency::megahertz(100),
                                       Frequency::gigahertz(1)},
               Frequency::megahertz(100), Cycles{24}),
        api(tile, device, mapper, keeper) {}

  dram::Geometry geo;
  dram::DramDevice device;
  tile::EasyTile tile;
  LinearMapper mapper;
  timescale::TimeKeeper keeper;
  EasyApi api;
};

// --------------------------------------------------------------------------
// tRCD profiler
// --------------------------------------------------------------------------

TEST(TrcdProfilerTest, AgreesWithGroundTruth) {
  Harness h;
  TrcdProfiler profiler(h.api, {12000_ps, 10500_ps, 9000_ps, 7500_ps});
  const auto& var = h.device.variation();
  for (std::uint32_t row = 0; row < 24; ++row) {
    const RowProfile p = profiler.profile_row(0, row);
    const Picoseconds truth = var.row_min_trcd(0, row);
    // The measured minimum is the smallest tested value >= the true value.
    EXPECT_GE(p.min_reliable, truth);
    if (p.min_reliable > 7500_ps) {
      // The next lower test value must be below the true minimum.
      const Picoseconds next_lower =
          p.min_reliable == 12000_ps ? 10500_ps
          : p.min_reliable == 10500_ps ? 9000_ps
                                       : 7500_ps;
      EXPECT_LT(next_lower, truth);
    }
  }
}

TEST(TrcdProfilerTest, ReliableAtNominalAlways) {
  Harness h;
  TrcdProfiler profiler(h.api, {13500_ps});
  for (std::uint32_t row = 0; row < 16; ++row) {
    EXPECT_TRUE(profiler.row_reliable_at(1, row, 13500_ps));
  }
}

TEST(TrcdProfilerTest, SampledProfilingTestsFewerLines) {
  Harness h;
  TrcdProfiler profiler(h.api, {9000_ps});
  profiler.row_reliable_at(0, 0, 9000_ps, /*lines_to_test=*/8);
  EXPECT_EQ(profiler.lines_tested(), 8);
}

TEST(TrcdProfilerTest, ProfilingDoesNotChargeTimelines) {
  Harness h;
  TrcdProfiler profiler(h.api, {9000_ps});
  profiler.profile_row(0, 0);
  EXPECT_EQ(h.keeper.counters().mc(), 0);
  EXPECT_EQ(h.keeper.wall().count, 0);
}

TEST(WeakRowFilterTest, MatchesDirectClassification) {
  Harness h;
  const std::uint32_t banks[] = {0, 1};
  WeakRowFilterStats stats;
  const BloomFilter filter = build_weak_row_filter(
      h.api, banks, /*rows_per_bank=*/256, 9000_ps, 1 << 16, 4, &stats);
  EXPECT_EQ(stats.rows_profiled, 512);

  // Every truly weak row must be flagged (no false negatives).
  const auto& var = h.device.variation();
  std::int64_t weak_truth = 0;
  for (std::uint32_t bank : banks) {
    for (std::uint32_t row = 0; row < 256; ++row) {
      if (var.row_min_trcd(bank, row) > 9000_ps) {
        ++weak_truth;
        EXPECT_TRUE(filter.maybe_contains(
            (static_cast<std::uint64_t>(bank) << 32) | row));
      }
    }
  }
  EXPECT_EQ(stats.weak_rows, weak_truth);
  EXPECT_NEAR(stats.weak_fraction, 0.155, 0.08);
}

// --------------------------------------------------------------------------
// RowClone pair testing and allocation
// --------------------------------------------------------------------------

TEST(RowClonePairTesterTest, AgreesWithVariationModel) {
  Harness h;
  RowCloneMap map;
  RowClonePairTester tester(h.api, /*trials=*/4);
  const auto& var = h.device.variation();
  int checked = 0;
  for (std::uint32_t src = 0; src < 40; src += 2) {
    const std::uint32_t dst = src + 1;
    const bool measured = tester.test(2, src, dst, map);
    EXPECT_EQ(measured, var.rowclone_pair_ok(2, src, dst));
    ++checked;
  }
  EXPECT_EQ(map.size(), static_cast<std::size_t>(checked));
}

TEST(RowClonePairTesterTest, CrossSubarrayAlwaysFails) {
  Harness h;
  RowCloneMap map;
  RowClonePairTester tester(h.api, /*trials=*/2);
  EXPECT_FALSE(tester.test(0, 100, 700, map));
}

TEST(RowClonePairTesterTest, CachesVerdicts) {
  Harness h;
  RowCloneMap map;
  RowClonePairTester tester(h.api, /*trials=*/4);
  tester.test(0, 0, 1, map);
  const std::int64_t trials_before = tester.trials_run();
  tester.test(0, 0, 1, map);  // Cached: no new trials.
  EXPECT_EQ(tester.trials_run(), trials_before);
}

TEST(RowCloneMapTest, UnknownPairsAreNotClonable) {
  RowCloneMap map;
  EXPECT_FALSE(map.clonable(0, 1, 2));
  map.record(0, 1, 2, true);
  EXPECT_TRUE(map.clonable(0, 1, 2));
  map.record(0, 1, 3, false);
  EXPECT_FALSE(map.clonable(0, 1, 3));
  EXPECT_EQ(map.known(0, 9, 9), std::nullopt);
}

TEST(RowCloneMapTest, LargeRowIndicesNeverAlias) {
  // Regression: the old `src << 24 | dst` key packing let row indices
  // >= 2^24 bleed into each other and into the bank field, so distinct
  // pairs shared one verdict. The key must carry all 96 bits.
  RowCloneMap map;
  const std::uint32_t big = 1u << 24;

  map.record(/*bank=*/0, /*src=*/0, /*dst=*/big + 5, true);
  // Under the old packing, dst bits >= 24 aliased src bits: (0, 1, 5)
  // collided with (0, 0, 2^24 + 5).
  EXPECT_EQ(map.known(0, 1, 5), std::nullopt);
  EXPECT_TRUE(map.clonable(0, 0, big + 5));

  map.record(/*bank=*/0, /*src=*/big, /*dst=*/0, true);
  // Under the old packing, src bits >= 24 aliased the bank field: bank
  // (2^24 >> 24) == 1 with src 0 collided.
  EXPECT_EQ(map.known(1, 0, 0), std::nullopt);

  // Full-width distinct triples all coexist.
  map.record(7, 0xFFFFFFFF, 0xFFFFFFFE, true);
  map.record(7, 0xFFFFFFFE, 0xFFFFFFFF, false);
  EXPECT_TRUE(map.clonable(7, 0xFFFFFFFF, 0xFFFFFFFE));
  EXPECT_FALSE(map.clonable(7, 0xFFFFFFFE, 0xFFFFFFFF));
  EXPECT_EQ(map.size(), 4u);
}

TEST(RowCloneAllocatorTest, CopyPairsShareSubarray) {
  Harness h;
  RowCloneMap map;
  RowClonePairTester tester(h.api, /*trials=*/2);
  RowCloneAllocator alloc(h.api, map, tester);
  const auto plan = alloc.plan_copy(64);
  ASSERT_EQ(plan.size(), 64u);
  int rowclone_rows = 0;
  for (const CopyPlanEntry& e : plan) {
    if (!e.use_rowclone) continue;
    ++rowclone_rows;
    EXPECT_EQ(e.src.bank, e.dst.bank);
    EXPECT_TRUE(h.geo.same_subarray(e.src.row, e.dst.row));
    EXPECT_TRUE(map.clonable(e.src.bank, e.src.row, e.dst.row));
  }
  // With the default 95 % pair success and 8 candidates, nearly every row
  // finds a verified destination.
  EXPECT_GE(rowclone_rows, 60);
}

TEST(RowCloneAllocatorTest, InitUsesOnePatternRowPerSubarray) {
  Harness h;
  RowCloneMap map;
  RowClonePairTester tester(h.api, /*trials=*/2);
  RowCloneAllocator alloc(h.api, map, tester);
  const auto plan = alloc.plan_init(600);  // Spans two subarrays.
  ASSERT_EQ(plan.size(), 600u);
  std::set<std::uint64_t> pattern_rows;
  for (const InitPlanEntry& e : plan) {
    EXPECT_EQ(e.dst.bank, e.pattern_src.bank);
    EXPECT_TRUE(h.geo.same_subarray(e.dst.row, e.pattern_src.row));
    pattern_rows.insert((static_cast<std::uint64_t>(e.pattern_src.bank) << 32) |
                        e.pattern_src.row);
    // Destination rows never collide with reserved pattern rows.
    EXPECT_NE(e.dst.row, e.pattern_src.row);
  }
  EXPECT_EQ(pattern_rows.size(), 2u);
}

TEST(RowCloneAllocatorTest, InitFallbackRateTracksPairSuccess) {
  dram::VariationConfig var;
  var.rowclone_pair_success = 0.5;
  Harness h(var);
  RowCloneMap map;
  RowClonePairTester tester(h.api, /*trials=*/2);
  RowCloneAllocator alloc(h.api, map, tester);
  const auto plan = alloc.plan_init(400);
  int fallbacks = 0;
  for (const InitPlanEntry& e : plan) {
    if (!e.use_rowclone) ++fallbacks;
  }
  EXPECT_NEAR(static_cast<double>(fallbacks) / 400.0, 0.5, 0.12);
}

TEST(RowCloneAllocatorTest, InterleavedCopySpreadsAcrossBanks) {
  Harness h;
  RowCloneMap map;
  RowClonePairTester tester(h.api, /*trials=*/2);
  RowCloneAllocator alloc(h.api, map, tester);
  const auto plan = alloc.plan_copy_interleaved(32);
  ASSERT_EQ(plan.size(), 32u);
  std::set<std::uint32_t> banks_used;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    banks_used.insert(plan[i].src.bank);
    EXPECT_EQ(plan[i].src.bank, i % h.geo.num_banks());
    if (plan[i].use_rowclone) {
      EXPECT_EQ(plan[i].src.bank, plan[i].dst.bank);
      EXPECT_TRUE(h.geo.same_subarray(plan[i].src.row, plan[i].dst.row));
    }
  }
  EXPECT_EQ(banks_used.size(), h.geo.num_banks());
}

TEST(RowCloneAllocatorTest, InterleavedRowsAreUnique) {
  Harness h;
  RowCloneMap map;
  RowClonePairTester tester(h.api, /*trials=*/1);
  RowCloneAllocator alloc(h.api, map, tester);
  const auto plan = alloc.plan_copy_interleaved(64);
  std::set<std::uint64_t> seen;
  for (const CopyPlanEntry& e : plan) {
    EXPECT_TRUE(
        seen.insert((static_cast<std::uint64_t>(e.src.bank) << 32) | e.src.row)
            .second);
    EXPECT_TRUE(
        seen.insert((static_cast<std::uint64_t>(e.dst.bank) << 32) | e.dst.row)
            .second);
  }
}

TEST(RowCloneAllocatorTest, AllocationsAdvance) {
  Harness h;
  RowCloneMap map;
  RowClonePairTester tester(h.api, /*trials=*/1);
  RowCloneAllocator alloc(h.api, map, tester);
  const auto a = alloc.plan_copy(4);
  const auto b = alloc.plan_copy(4);
  // No row is handed out twice.
  std::set<std::uint64_t> seen;
  for (const auto& plan : {a, b}) {
    for (const CopyPlanEntry& e : plan) {
      EXPECT_TRUE(
          seen.insert((static_cast<std::uint64_t>(e.src.bank) << 32) | e.src.row)
              .second);
      EXPECT_TRUE(
          seen.insert((static_cast<std::uint64_t>(e.dst.bank) << 32) | e.dst.row)
              .second);
    }
  }
}

}  // namespace
}  // namespace easydram::smc
