#include <gtest/gtest.h>

#include <cstring>
#include <functional>

#include "smc/addr_map.hpp"
#include "smc/bloom.hpp"
#include "smc/controller.hpp"
#include "smc/easyapi.hpp"
#include "smc/request_table.hpp"
#include "smc/scheduler.hpp"

namespace easydram::smc {
namespace {

using namespace easydram::literals;
using timescale::SystemMode;

dram::VariationConfig strong_variation() {
  dram::VariationConfig v;
  v.min_trcd = Picoseconds{1000};
  v.max_trcd = Picoseconds{1001};
  v.rowclone_pair_success = 1.0;
  return v;
}

/// Standalone SMC harness: tile + device + mapper + keeper + api.
struct Harness {
  explicit Harness(SystemMode mode = SystemMode::kTimeScaling,
                   dram::VariationConfig var = strong_variation())
      : device(geo, dram::ddr4_1333(), var),
        tile(tile::TileConfig{}),
        mapper(geo),
        keeper(mode,
               timescale::DomainConfig{Frequency::megahertz(100),
                                       Frequency::gigahertz(1)},
               Frequency::megahertz(100), Cycles{24}),
        api(tile, device, mapper, keeper) {}

  void push_request(tile::Request r) {
    r.arrival_wall = keeper.wall();
    tile.incoming().push(std::move(r));
  }

  tile::Response run_until_response(Controller& c) {
    for (int i = 0; i < 10000; ++i) {
      c.step(api);
      if (!tile.outgoing().empty()) return tile.outgoing().pop();
    }
    ADD_FAILURE() << "no response produced";
    return {};
  }

  dram::Geometry geo;
  dram::DramDevice device;
  tile::EasyTile tile;
  LinearMapper mapper;
  timescale::TimeKeeper keeper;
  EasyApi api;
};

// --------------------------------------------------------------------------
// Address mappers
// --------------------------------------------------------------------------

template <typename MapperT>
class MapperRoundTrip : public ::testing::Test {};

using MapperTypes = ::testing::Types<LinearMapper, LineInterleavedMapper>;
TYPED_TEST_SUITE(MapperRoundTrip, MapperTypes);

TYPED_TEST(MapperRoundTrip, RoundTripsEveryRegion) {
  dram::Geometry geo;
  TypeParam mapper(geo);
  for (std::uint64_t paddr = 0; paddr < geo.capacity_bytes();
       paddr += 64 * 1237) {  // Prime stride to cover varied coordinates.
    const dram::DramAddress a = mapper.to_dram(paddr);
    EXPECT_TRUE(geo.contains(a));
    EXPECT_EQ(mapper.to_physical(a), paddr);
  }
}

TEST(MapperTest, LinearKeepsRowsContiguous) {
  dram::Geometry geo;
  LinearMapper m(geo);
  const dram::DramAddress first = m.to_dram(0);
  const dram::DramAddress last = m.to_dram(8192 - 64);
  EXPECT_EQ(first.row, last.row);
  EXPECT_EQ(first.bank, last.bank);
  const dram::DramAddress next = m.to_dram(8192);
  EXPECT_EQ(next.row, first.row + 1);
}

TEST(MapperTest, InterleavedStripesAcrossBanks) {
  dram::Geometry geo;
  LineInterleavedMapper m(geo);
  EXPECT_EQ(m.to_dram(0).bank, 0u);
  EXPECT_EQ(m.to_dram(64).bank, 1u);
  EXPECT_EQ(m.to_dram(64 * 15).bank, 15u);
  EXPECT_EQ(m.to_dram(64 * 16).bank, 0u);
}

TEST(MapperTest, MisalignedAddressRejected) {
  dram::Geometry geo;
  LinearMapper m(geo);
  EXPECT_THROW(m.to_dram(63), ContractViolation);
}

// --------------------------------------------------------------------------
// Request table and schedulers
// --------------------------------------------------------------------------

TableEntry entry_at(std::uint32_t bank, std::uint32_t row) {
  TableEntry e;
  e.dram_addr = dram::DramAddress{bank, row, 0};
  return e;
}

/// Test fake for the scheduler-facing bank-state interface: open rows are
/// described by a lambda over the per-rank bank index.
struct LambdaBanks final : BankStateView {
  explicit LambdaBanks(
      std::function<std::optional<std::uint32_t>(std::uint32_t)> f)
      : fn(std::move(f)) {}
  std::optional<std::uint32_t> open_row(const dram::DramAddress& a) const override {
    return fn(a.bank);
  }
  std::function<std::optional<std::uint32_t>(std::uint32_t)> fn;
};

TEST(RequestTableTest, InsertRemoveAndCapacity) {
  RequestTable t(2);
  t.insert(entry_at(0, 1));
  t.insert(entry_at(0, 2));
  EXPECT_TRUE(t.full());
  EXPECT_THROW(t.insert(entry_at(0, 3)), ContractViolation);
  const TableEntry e = t.remove(0);
  EXPECT_EQ(e.dram_addr.row, 1u);
  EXPECT_EQ(t.size(), 1u);
}

TEST(RequestTableTest, ArrivalSequenceIsMonotonic) {
  RequestTable t(4);
  t.insert(entry_at(0, 1));
  t.insert(entry_at(0, 2));
  EXPECT_LT(t.at(0).arrival_seq, t.at(1).arrival_seq);
}

TEST(SchedulerTest, FcfsPicksOldest) {
  RequestTable t(4);
  t.insert(entry_at(3, 10));
  t.insert(entry_at(1, 20));
  LambdaBanks banks([](std::uint32_t) { return std::optional<std::uint32_t>{}; });
  FcfsScheduler fcfs;
  std::size_t scanned = 0;
  EXPECT_EQ(fcfs.pick({t, banks}, scanned).value(), 0u);
  EXPECT_EQ(scanned, 2u);
}

TEST(SchedulerTest, FrfcfsPrefersRowHit) {
  RequestTable t(4);
  t.insert(entry_at(0, 10));  // oldest, row closed
  t.insert(entry_at(1, 20));  // row hit
  LambdaBanks banks([](std::uint32_t bank) -> std::optional<std::uint32_t> {
    if (bank == 1) return 20;
    return std::nullopt;
  });
  FrfcfsScheduler frfcfs;
  std::size_t scanned = 0;
  EXPECT_EQ(frfcfs.pick({t, banks}, scanned).value(), 1u);
}

TEST(SchedulerTest, FrfcfsFallsBackToOldest) {
  RequestTable t(4);
  t.insert(entry_at(0, 10));
  t.insert(entry_at(1, 20));
  LambdaBanks banks([](std::uint32_t) { return std::optional<std::uint32_t>{}; });
  FrfcfsScheduler frfcfs;
  std::size_t scanned = 0;
  EXPECT_EQ(frfcfs.pick({t, banks}, scanned).value(), 0u);
}

TEST(SchedulerTest, BatchSchedulerBoundsQueueingDelay) {
  // One old row-miss request plus a stream of younger row hits: FR-FCFS
  // starves the old request for the whole table; PAR-BS serves it once the
  // current batch (which it belongs to) is scheduled.
  RequestTable t(16);
  t.insert(entry_at(0, 99));                       // Old row miss (seq 0).
  for (int i = 0; i < 10; ++i) t.insert(entry_at(1, 20));  // Row hits.
  LambdaBanks banks([](std::uint32_t bank) -> std::optional<std::uint32_t> {
    if (bank == 1) return 20;
    return std::nullopt;
  });
  std::size_t scanned = 0;

  FrfcfsScheduler frfcfs;
  EXPECT_NE(frfcfs.pick({t, banks}, scanned).value(), 0u);  // Hit first.

  BatchScheduler parbs(4);  // Batch = requests with seq < 4.
  // Within the first batch, row hits (seq 1..3) still win...
  const auto first = parbs.pick({t, banks}, scanned).value();
  EXPECT_NE(first, 0u);
  EXPECT_LT(t.at(first).arrival_seq, 4u);
  // ...but the old request is served before any seq >= 4 request: drain the
  // batch and verify membership.
  RequestTable t2(16);
  t2.insert(entry_at(0, 99));                      // seq 0
  for (int i = 0; i < 10; ++i) t2.insert(entry_at(1, 20));
  BatchScheduler parbs2(2);
  std::vector<std::uint64_t> served;
  for (int i = 0; i < 3; ++i) {
    const auto pick = parbs2.pick({t2, banks}, scanned).value();
    served.push_back(t2.at(pick).arrival_seq);
    t2.remove(pick);
  }
  // The first two picks come from batch {seq 0, seq 1}.
  EXPECT_LT(served[0], 2u);
  EXPECT_LT(served[1], 2u);
}

TEST(SchedulerTest, BlacklistSchedulerBreaksRowHitStreaks) {
  RequestTable t(16);
  t.insert(entry_at(0, 99));                       // Old row miss.
  for (int i = 0; i < 10; ++i) t.insert(entry_at(1, 20));  // Hit stream.
  LambdaBanks banks([](std::uint32_t bank) -> std::optional<std::uint32_t> {
    if (bank == 1) return 20;
    return std::nullopt;
  });
  std::size_t scanned = 0;
  BlacklistScheduler bliss(3);
  int picks_before_miss = 0;
  for (int i = 0; i < 10; ++i) {
    const auto pick = bliss.pick({t, banks}, scanned).value();
    if (t.at(pick).dram_addr.bank == 0) break;  // The old miss got served.
    t.remove(pick);
    ++picks_before_miss;
  }
  EXPECT_LE(picks_before_miss, 3);  // Streak limit enforced.
}

TEST(SchedulerTest, EmptyTableYieldsNothing) {
  RequestTable t(4);
  LambdaBanks banks([](std::uint32_t) { return std::optional<std::uint32_t>{}; });
  FrfcfsScheduler frfcfs;
  FcfsScheduler fcfs;
  BatchScheduler parbs;
  BlacklistScheduler bliss;
  std::size_t scanned = 0;
  EXPECT_FALSE(frfcfs.pick({t, banks}, scanned).has_value());
  EXPECT_FALSE(fcfs.pick({t, banks}, scanned).has_value());
  EXPECT_FALSE(parbs.pick({t, banks}, scanned).has_value());
  EXPECT_FALSE(bliss.pick({t, banks}, scanned).has_value());
}

// --------------------------------------------------------------------------
// Bloom filter
// --------------------------------------------------------------------------

TEST(BloomTest, NoFalseNegatives) {
  BloomFilter f(4096, 4);
  for (std::uint64_t k = 0; k < 200; ++k) f.insert(k * 977);
  for (std::uint64_t k = 0; k < 200; ++k) EXPECT_TRUE(f.maybe_contains(k * 977));
}

TEST(BloomTest, FalsePositiveRateIsModest) {
  BloomFilter f(16384, 4);
  for (std::uint64_t k = 0; k < 500; ++k) f.insert(k);
  int fp = 0;
  const int probes = 10000;
  for (int k = 0; k < probes; ++k) {
    if (f.maybe_contains(1'000'000 + static_cast<std::uint64_t>(k))) ++fp;
  }
  EXPECT_LT(static_cast<double>(fp) / probes, 0.05);
}

TEST(BloomTest, EmptyFilterContainsNothing) {
  BloomFilter f(1024, 3);
  EXPECT_FALSE(f.maybe_contains(42));
}

TEST(BloomTest, MergeUnionsKeysWithoutFalseNegatives) {
  BloomFilter a(4096, 4);
  BloomFilter b(4096, 4);
  for (std::uint64_t k = 0; k < 100; ++k) (k % 2 == 0 ? a : b).insert(k);
  a.merge(b);
  for (std::uint64_t k = 0; k < 100; ++k) EXPECT_TRUE(a.maybe_contains(k));
  EXPECT_EQ(a.inserted_keys(), 100u);
  BloomFilter wrong_shape(1024, 4);
  EXPECT_THROW(a.merge(wrong_shape), ContractViolation);
}

// --------------------------------------------------------------------------
// EasyAPI
// --------------------------------------------------------------------------

TEST(EasyApiTest, ReadSequenceLeavesRowOpen) {
  Harness h;
  h.api.read_sequence(dram::DramAddress{2, 5, 0});
  h.api.flush_commands();
  EXPECT_EQ(h.device.open_row(2).value(), 5u);
  EXPECT_FALSE(h.api.rdback_empty());
}

TEST(EasyApiTest, ReadSequenceRowHitSkipsActivate) {
  Harness h;
  h.api.read_sequence(dram::DramAddress{2, 5, 0});
  h.api.flush_commands();
  const std::int64_t acts = h.device.commands_issued(dram::Command::kAct);
  h.api.read_sequence(dram::DramAddress{2, 5, 1});
  h.api.flush_commands();
  EXPECT_EQ(h.device.commands_issued(dram::Command::kAct), acts);
}

TEST(EasyApiTest, ReadSequenceConflictPrecharges) {
  Harness h;
  h.api.read_sequence(dram::DramAddress{2, 5, 0});
  h.api.flush_commands();
  h.api.read_sequence(dram::DramAddress{2, 9, 0});
  h.api.flush_commands();
  EXPECT_EQ(h.device.open_row(2).value(), 9u);
  EXPECT_EQ(h.device.commands_issued(dram::Command::kPre), 1);
}

TEST(EasyApiTest, PendingRowTrackedWithinBatch) {
  Harness h;
  // Two reads to different rows of the same bank in ONE batch: the second
  // must precharge even though the device still shows the bank closed.
  h.api.read_sequence(dram::DramAddress{2, 5, 0});
  h.api.read_sequence(dram::DramAddress{2, 9, 0});
  const auto r = h.api.flush_commands();
  EXPECT_EQ(r.violations, dram::kNone);
  EXPECT_EQ(h.device.commands_issued(dram::Command::kPre), 1);
  EXPECT_EQ(h.device.commands_issued(dram::Command::kAct), 2);
}

TEST(EasyApiTest, WriteSequenceStoresData) {
  Harness h;
  std::array<std::uint8_t, 64> data{};
  data.fill(0xAB);
  h.api.write_sequence(dram::DramAddress{1, 3, 7}, data);
  h.api.flush_commands();
  std::array<std::uint8_t, 64> out{};
  h.device.backdoor_read({1, 3, 7}, out);
  EXPECT_EQ(std::memcmp(out.data(), data.data(), 64), 0);
}

TEST(EasyApiTest, ReducedReadForcesFreshActivation) {
  Harness h;
  h.api.read_sequence(dram::DramAddress{1, 3, 0});
  h.api.flush_commands();
  h.api.read_sequence_reduced(dram::DramAddress{1, 3, 0}, 9_ns);
  const auto r = h.api.flush_commands();
  // Row was already open, so this degenerates to a plain (hit) read.
  EXPECT_EQ(r.violations & dram::kTrcd, 0u);

  h.api.close_row(1);
  h.api.flush_commands();
  h.api.read_sequence_reduced(dram::DramAddress{1, 3, 0}, 9_ns);
  const auto r2 = h.api.flush_commands();
  EXPECT_TRUE(r2.violations & dram::kTrcd);
}

TEST(EasyApiTest, RowCloneHelperTriggersDeviceRowClone) {
  Harness h;
  std::array<std::uint8_t, 64> marker{};
  marker.fill(0x5A);
  h.device.backdoor_write({0, 40, 3}, marker);
  h.api.rowclone(0, 40, 41);
  const auto r = h.api.flush_commands();
  EXPECT_EQ(r.rowclone_attempts, 1);
  EXPECT_EQ(r.rowclone_successes, 1);
  std::array<std::uint8_t, 64> out{};
  h.device.backdoor_read({0, 41, 3}, out);
  EXPECT_EQ(std::memcmp(out.data(), marker.data(), 64), 0);
}

TEST(EasyApiTest, BatchAccountingAdvancesMc) {
  Harness h;
  h.api.read_sequence(dram::DramAddress{0, 1, 0});
  const auto r = h.api.flush_commands();
  // The emulated MC point covers the batch duration at 1 GHz plus the
  // SMC's own (cycle-counted) batch-building work.
  const std::int64_t dram_cycles = Frequency::gigahertz(1).ps_to_cycles_ceil(r.elapsed);
  EXPECT_GE(h.keeper.counters().mc(), dram_cycles);
  EXPECT_LE(h.keeper.counters().mc(), dram_cycles + 64);
}

TEST(EasyApiTest, SetupModeLeavesTimelinesAlone) {
  Harness h;
  h.api.set_setup_mode(true);
  h.api.read_sequence(dram::DramAddress{0, 1, 0});
  h.api.flush_commands();
  EXPECT_EQ(h.keeper.counters().mc(), 0);
  EXPECT_EQ(h.keeper.wall().count, 0);
  // Device state still changed: the batch really executed.
  EXPECT_TRUE(h.device.open_row(0).has_value());
}

TEST(EasyApiTest, MeterChargesEveryCall) {
  Harness h;
  const Cycles before = h.tile.meter().total_cycles();
  h.api.get_addr_mapping(0);
  h.api.read_sequence(dram::DramAddress{0, 1, 0});
  h.api.flush_commands();
  EXPECT_GT(h.tile.meter().total_cycles(), before);
}

TEST(EasyApiTest, RefreshCatchUpKeepsDeviceFresh) {
  Harness h;
  // Pretend the emulated system ran 100 us: ~12 refreshes are due.
  h.keeper.counters().advance_mc(100'000);  // 100 us at 1 GHz.
  h.api.refresh_if_due();
  EXPECT_EQ(h.device.refreshes_issued(),
            h.device.refreshes_due(h.keeper.emulated_now()));
}

// --------------------------------------------------------------------------
// Controllers
// --------------------------------------------------------------------------

tile::Request read_request(std::uint64_t id, std::uint64_t paddr,
                           std::int64_t tag = 0) {
  tile::Request r;
  r.id = id;
  r.kind = tile::RequestKind::kRead;
  r.paddr = paddr;
  r.issue_proc_cycle = tag;
  return r;
}

TEST(ControllerTest, ServesReadEndToEnd) {
  Harness h;
  std::array<std::uint8_t, 64> data{};
  data.fill(0x3C);
  h.device.backdoor_write(h.mapper.to_dram(4096), data);

  MemoryController c(ControllerOptions{});
  h.push_request(read_request(1, 4096));
  const tile::Response resp = h.run_until_response(c);
  EXPECT_EQ(resp.id, 1u);
  EXPECT_TRUE(resp.has_data);
  EXPECT_EQ(std::memcmp(resp.data.data(), data.data(), 64), 0);
  EXPECT_GT(resp.release_proc_cycle, 0);
}

TEST(ControllerTest, ReleaseTagCoversSchedulingAndDram) {
  Harness h;
  MemoryController c(ControllerOptions{});
  h.push_request(read_request(1, 0, /*tag=*/1000));
  const tile::Response resp = h.run_until_response(c);
  // Service starts at the request tag; adds scheduling latency (24) plus
  // the DRAM batch at 1 GHz (ACT+RD+data, tens of cycles).
  EXPECT_GE(resp.release_proc_cycle, 1000 + 24);
  EXPECT_LT(resp.release_proc_cycle, 1000 + 24 + 200);
}

TEST(ControllerTest, WritePersistsToDram) {
  Harness h;
  MemoryController c(ControllerOptions{});
  tile::Request w;
  w.id = 9;
  w.kind = tile::RequestKind::kWrite;
  w.paddr = 8192;
  w.wdata.fill(0x77);
  h.push_request(std::move(w));
  const tile::Response resp = h.run_until_response(c);
  EXPECT_EQ(resp.id, 9u);
  std::array<std::uint8_t, 64> out{};
  h.device.backdoor_read(h.mapper.to_dram(8192), out);
  EXPECT_EQ(out[0], 0x77);
}

TEST(ControllerTest, CriticalModeEntersAndExits) {
  Harness h;
  MemoryController c(ControllerOptions{});
  h.push_request(read_request(1, 0));
  h.run_until_response(c);
  // After the table empties, a further step exits critical mode.
  c.step(h.api);
  EXPECT_FALSE(h.keeper.counters().critical());
}

TEST(ControllerTest, RowCloneUnverifiedPairFallsBack) {
  Harness h;
  RowCloneMap map;  // Empty: nothing verified.
  ControllerOptions opt;
  opt.clonable = &map;
  MemoryController c(std::move(opt));

  tile::Request r;
  r.id = 5;
  r.kind = tile::RequestKind::kRowClone;
  r.paddr = 0;
  r.paddr2 = 8192;
  h.push_request(std::move(r));
  const tile::Response resp = h.run_until_response(c);
  EXPECT_FALSE(resp.ok);
}

TEST(ControllerTest, RowCloneVerifiedPairCopies) {
  Harness h;
  RowCloneMap map;
  const dram::DramAddress src = h.mapper.to_dram(0);
  const dram::DramAddress dst = h.mapper.to_dram(8192);
  map.record(src.bank, src.row, dst.row, true);
  ControllerOptions opt;
  opt.clonable = &map;
  MemoryController c(std::move(opt));

  std::array<std::uint8_t, 64> marker{};
  marker.fill(0xE1);
  h.device.backdoor_write({src.bank, src.row, 5}, marker);

  tile::Request r;
  r.id = 6;
  r.kind = tile::RequestKind::kRowClone;
  r.paddr = 0;
  r.paddr2 = 8192;
  h.push_request(std::move(r));
  const tile::Response resp = h.run_until_response(c);
  EXPECT_TRUE(resp.ok);
  std::array<std::uint8_t, 64> out{};
  h.device.backdoor_read({dst.bank, dst.row, 5}, out);
  EXPECT_EQ(std::memcmp(out.data(), marker.data(), 64), 0);
}

TEST(ControllerTest, ProfilingRequestReportsReliability) {
  dram::VariationConfig weak;
  weak.min_trcd = 9_ns;
  weak.max_trcd = Picoseconds{9001};
  weak.line_jitter = Picoseconds{0};
  Harness h(SystemMode::kTimeScaling, weak);
  MemoryController c(ControllerOptions{});

  tile::Request ok_req;
  ok_req.id = 1;
  ok_req.kind = tile::RequestKind::kProfileTrcd;
  ok_req.paddr = 0;
  ok_req.profile_trcd = Picoseconds{9001};
  h.push_request(std::move(ok_req));
  EXPECT_TRUE(h.run_until_response(c).ok);

  tile::Request bad_req;
  bad_req.id = 2;
  bad_req.kind = tile::RequestKind::kProfileTrcd;
  bad_req.paddr = 0;
  bad_req.profile_trcd = 5_ns;
  h.push_request(std::move(bad_req));
  EXPECT_FALSE(h.run_until_response(c).ok);
}

TEST(ControllerTest, BloomDirectedTrcdReduction) {
  Harness h;
  BloomFilter weak(4096, 4);
  const dram::DramAddress weak_addr = h.mapper.to_dram(0);
  weak.insert((static_cast<std::uint64_t>(weak_addr.bank) << 32) | weak_addr.row);
  ControllerOptions opt;
  opt.weak_rows = &weak;
  opt.reduced_trcd = 9_ns;
  MemoryController c(std::move(opt));

  // Weak row: nominal access, no tRCD violation.
  h.push_request(read_request(1, 0));
  h.run_until_response(c);
  EXPECT_EQ(h.api.stats().violations_seen & dram::kTrcd, 0u);

  // Strong row (bank 1): reduced access violates nominal tRCD on purpose.
  h.push_request(read_request(2, 8192ull * 32768));  // bank 1 row 0
  h.run_until_response(c);
  EXPECT_TRUE(h.api.stats().violations_seen & dram::kTrcd);
}

TEST(ControllerTest, FootnoteTwoVisibilityDelaysFutureRequests) {
  Harness h;
  MemoryController c(ControllerOptions{});
  h.push_request(read_request(1, 0, /*tag=*/100));
  // A request tagged far in the future becomes visible only after the MC
  // emulation point reaches it.
  h.push_request(read_request(2, 64, /*tag=*/1'000'000));
  c.step(h.api);  // Serves request 1; request 2 not yet visible.
  EXPECT_EQ(h.tile.outgoing().size(), 1u);
  EXPECT_EQ(h.tile.incoming().size(), 1u);
}

TEST(SimpleReadControllerTest, ListingOneFlow) {
  Harness h;
  std::array<std::uint8_t, 64> data{};
  data.fill(0x42);
  h.device.backdoor_write(h.mapper.to_dram(128), data);
  SimpleReadController c;
  h.push_request(read_request(1, 128));
  const tile::Response resp = h.run_until_response(c);
  EXPECT_EQ(std::memcmp(resp.data.data(), data.data(), 64), 0);
  EXPECT_FALSE(h.keeper.counters().critical());
}

}  // namespace
}  // namespace easydram::smc
