#include <gtest/gtest.h>

#include "smc/rowclone_alloc.hpp"
#include "smc/trcd_profiler.hpp"
#include "sys/system.hpp"
#include "workloads/builder.hpp"

namespace easydram::sys {
namespace {

using namespace easydram::literals;
using timescale::SystemMode;

dram::VariationConfig strong_variation() {
  dram::VariationConfig v;
  v.min_trcd = Picoseconds{1000};
  v.max_trcd = Picoseconds{1001};
  v.rowclone_pair_success = 1.0;
  return v;
}

SystemConfig small_ts_config() {
  SystemConfig cfg = jetson_nano_time_scaling();
  cfg.variation = strong_variation();
  return cfg;
}

cpu::VectorTrace dependent_loads(int n, std::uint64_t stride) {
  workloads::TraceBuilder b;
  for (int i = 0; i < n; ++i) {
    b.load_dependent(static_cast<std::uint64_t>(i) * stride);
  }
  return cpu::VectorTrace(b.take());
}

TEST(SystemTest, ServesSingleRead) {
  EasyDramSystem sysm(small_ts_config());
  const std::uint64_t id = sysm.submit_read(4096, 100);
  const cpu::Completion c = sysm.wait(id);
  EXPECT_GT(c.release_cycle, 100);
  EXPECT_TRUE(c.ok);
}

TEST(SystemTest, TimeScalingLatencyMatchesTargetModel) {
  EasyDramSystem sysm(small_ts_config());
  const std::uint64_t id = sysm.submit_read(4096, 1000);
  const cpu::Completion c = sysm.wait(id);
  // Expected: sched latency (24) + ACT+RD+data (~35 ns -> ~51 cycles at
  // 1.43 GHz). The release tag must be in that ballpark — far below the
  // thousands of cycles the raw SMC software latency would imply.
  const std::int64_t latency = c.release_cycle - 1000;
  EXPECT_GE(latency, 24 + 30);
  EXPECT_LE(latency, 24 + 150);
}

TEST(SystemTest, NoTimeScalingLatencyIsWallBased) {
  SystemConfig cfg = pidram_no_time_scaling();
  cfg.variation = strong_variation();
  EasyDramSystem sysm(cfg);
  const std::uint64_t id = sysm.submit_read(4096, 0);
  const cpu::Completion c = sysm.wait(id);
  // The 50 MHz processor observes the SMC's software latency: hundreds of
  // core cycles of SMC time at 100 MHz map to tens of processor cycles.
  EXPECT_GE(c.release_cycle, 5);
  EXPECT_LE(c.release_cycle, 500);
  EXPECT_GT(sysm.wall().count, 0);
}

TEST(SystemTest, SmcSlownessHiddenOnlyWithTimeScaling) {
  SystemConfig ts = small_ts_config();
  SystemConfig nts = pidram_no_time_scaling();
  nts.variation = strong_variation();

  EasyDramSystem s1(ts), s2(nts);
  const auto c1 = s1.wait(s1.submit_read(0, 0));
  const auto c2 = s2.wait(s2.submit_read(0, 0));
  // In emulated *time* (not cycles), the NoTS system is far slower.
  const double t1 = static_cast<double>(c1.release_cycle) / 1.43e9;
  const double t2 = static_cast<double>(c2.release_cycle) / 50e6;
  EXPECT_GT(t2, 5 * t1);
}

TEST(SystemTest, RunIsDeterministic) {
  auto run_once = [] {
    EasyDramSystem sysm(small_ts_config());
    auto trace = dependent_loads(2000, 8192);
    return sysm.run(trace).cycles;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(SystemTest, ModesProduceDifferentTimelines) {
  SystemConfig ts = small_ts_config();
  EasyDramSystem s_ts(ts);
  auto t1 = dependent_loads(500, 8192);
  const auto r_ts = s_ts.run(t1);

  SystemConfig nts = pidram_no_time_scaling();
  nts.variation = strong_variation();
  EasyDramSystem s_nts(nts);
  auto t2 = dependent_loads(500, 8192);
  const auto r_nts = s_nts.run(t2);

  EXPECT_GT(r_ts.cycles, 0);
  EXPECT_GT(r_nts.cycles, 0);
  // Per-load latency in cycles: TS (GHz-class) must far exceed NoTS.
  EXPECT_GT(r_ts.cycles, 2 * r_nts.cycles);
}

TEST(SystemTest, ReferenceModeMatchesTimeScalingClosely) {
  SystemConfig ts = validation_time_scaling();
  ts.variation = strong_variation();
  EasyDramSystem s_ts(ts);
  auto t1 = dependent_loads(3000, 4096);
  const auto r_ts = s_ts.run(t1);

  SystemConfig ref = validation_reference();
  ref.variation = strong_variation();
  EasyDramSystem s_ref(ref);
  auto t2 = dependent_loads(3000, 4096);
  const auto r_ref = s_ref.run(t2);

  const double err = std::abs(static_cast<double>(r_ts.cycles - r_ref.cycles)) /
                     static_cast<double>(r_ref.cycles);
  EXPECT_LT(err, 0.01);
}

TEST(SystemTest, PostedWritesAreDrained) {
  EasyDramSystem sysm(small_ts_config());
  workloads::TraceBuilder b;
  for (int i = 0; i < 50; ++i) b.store(static_cast<std::uint64_t>(i) * 4096);
  cpu::VectorTrace trace(b.take());
  const auto r = sysm.run(trace);
  EXPECT_EQ(r.stores, 50);
  // All RFOs and writebacks were processed by run()'s final drain.
  EXPECT_GE(sysm.smc_stats().requests_received, 50);
}

TEST(SystemTest, RowClonePathEndToEnd) {
  SystemConfig cfg = small_ts_config();
  EasyDramSystem sysm(cfg);
  // Verify one pair through the allocator machinery, then enable RowClone.
  smc::RowClonePairTester tester(sysm.api(), /*trials=*/2);
  tester.test(0, 0, 1, sysm.clone_map());
  sysm.enable_rowclone();

  const std::uint64_t src = 0;
  const std::uint64_t dst = 8192;  // Row 1 of bank 0 under LinearMapper.
  const auto ok = sysm.wait(sysm.submit_rowclone(src, dst, 10));
  EXPECT_TRUE(ok.ok);

  // An unverified pair falls back.
  const auto fb = sysm.wait(sysm.submit_rowclone(src, 8192 * 5, 20));
  EXPECT_FALSE(fb.ok);
}

TEST(SystemTest, ProfileRequestPath) {
  SystemConfig cfg = jetson_nano_time_scaling();  // Real variation model.
  EasyDramSystem sysm(cfg);
  const auto ok =
      sysm.wait(sysm.submit_profile(0, Picoseconds{13'500}, 5));
  EXPECT_TRUE(ok.ok);  // Nominal tRCD always reads correctly.
}

TEST(SystemTest, WeakRowFilterChangesAccessPath) {
  SystemConfig cfg = jetson_nano_time_scaling();
  EasyDramSystem sysm(cfg);
  const std::uint32_t banks[] = {0};
  smc::WeakRowFilterStats stats;
  auto filter = smc::build_weak_row_filter(sysm.api(), banks, 64, 9_ns,
                                           1 << 14, 4, &stats);
  sysm.install_weak_row_filter(std::move(filter));

  auto trace = dependent_loads(64, 8192);
  const auto r = sysm.run(trace);
  EXPECT_GT(r.cycles, 0);
  // Reduced-tRCD accesses happened: the device saw deliberate violations.
  EXPECT_TRUE(sysm.smc_stats().violations_seen & dram::kTrcd);
}

TEST(SystemTest, RefreshesAreIssuedOverLongRuns) {
  EasyDramSystem sysm(small_ts_config());
  workloads::TraceBuilder b;
  for (int i = 0; i < 200; ++i) {
    b.compute(10000);  // Long compute stretches between misses.
    b.load_dependent(static_cast<std::uint64_t>(i) * 8192);
  }
  cpu::VectorTrace trace(b.take());
  sysm.run(trace);
  EXPECT_GT(sysm.smc_stats().refreshes_issued, 0);
}

TEST(SystemTest, WallClockGrowsWithWork) {
  EasyDramSystem sysm(small_ts_config());
  auto trace = dependent_loads(300, 8192);
  const auto r = sysm.run(trace);
  EXPECT_GT(sysm.wall().count, 0);
  // Wall covers at least the processor execution at the FPGA clock.
  const Picoseconds min_wall =
      sysm.config().proc_domain.fpga_clock.cycles_to_ps(r.cycles);
  EXPECT_GE(sysm.wall() + 1_ns, min_wall);
}

TEST(SystemTest, MismatchedClockConfigRejected) {
  SystemConfig cfg = small_ts_config();
  cfg.core.emulated_clock = Frequency::gigahertz(2);  // != proc_domain.
  EXPECT_THROW(EasyDramSystem{cfg}, ContractViolation);
}

TEST(SystemTest, FifoBackpressurePumpsController) {
  SystemConfig cfg = small_ts_config();
  cfg.tile.incoming_fifo_depth = 2;  // Tiny FIFO forces pumping.
  EasyDramSystem sysm(cfg);
  workloads::TraceBuilder b;
  for (int i = 0; i < 40; ++i) b.store(static_cast<std::uint64_t>(i) * 4096);
  cpu::VectorTrace trace(b.take());
  const auto r = sysm.run(trace);
  EXPECT_EQ(r.stores, 40);
}

TEST(CompletionRingTest, PendingTracksChannelRouting) {
  CompletionRing ring;
  ring.note_pending(1, 3);
  EXPECT_TRUE(ring.pending(1));
  EXPECT_FALSE(ring.ready(1));
  EXPECT_EQ(ring.channel(1), 3u);
  ring.put(1, 500, true);
  EXPECT_FALSE(ring.pending(1));
  EXPECT_TRUE(ring.ready(1));
  EXPECT_EQ(ring.channel(1), 3u);
  ring.consume(1);
  EXPECT_FALSE(ring.pending(1));
  EXPECT_FALSE(ring.ready(1));
}

TEST(CompletionRingTest, PendingWindowSurvivesGrowthAndClear) {
  CompletionRing ring;
  for (std::uint64_t id = 1; id <= 200; ++id) {
    ring.note_pending(id, static_cast<std::uint32_t>(id % 8));
  }
  EXPECT_EQ(ring.channel(200), 200u % 8);
  EXPECT_EQ(ring.channel(1), 1u);
  ring.put(5, 10, true);
  EXPECT_TRUE(ring.ready(5));
  EXPECT_TRUE(ring.pending(4));
  ring.clear();
  EXPECT_FALSE(ring.pending(5));
  EXPECT_FALSE(ring.ready(5));
}

/// Everything the parallel pump could plausibly perturb: per-request
/// completion cycles, the reduced wall clock, and the aggregate SMC
/// counters of every channel.
struct PumpSignature {
  std::vector<std::int64_t> release_cycles;
  std::int64_t wall_ps = 0;
  std::int64_t requests = 0;
  std::int64_t responses = 0;
  std::int64_t batches = 0;
  std::int64_t commands = 0;
  std::int64_t dram_busy_ps = 0;

  bool operator==(const PumpSignature&) const = default;
};

SystemConfig parallel_config(unsigned workers) {
  SystemConfig cfg = small_ts_config();
  cfg.geometry.channels = 8;
  cfg.mapping = smc::MappingKind::kChannelInterleaved;
  cfg.pump_workers = workers;
  return cfg;
}

PumpSignature take_signature(EasyDramSystem& sysm,
                             std::vector<std::int64_t> release_cycles) {
  PumpSignature sig;
  sig.release_cycles = std::move(release_cycles);
  sig.wall_ps = sysm.wall().count;
  const smc::ApiStats s = sysm.smc_stats();
  sig.requests = s.requests_received;
  sig.responses = s.responses_sent;
  sig.batches = s.batches_executed;
  sig.commands = s.commands_executed;
  sig.dram_busy_ps = s.dram_busy.count;
  return sig;
}

/// Independent burst across all 8 channels — more requests per channel
/// than the FIFO holds, so the back-pressure, completion-drain, and
/// run()-style phases all execute.
PumpSignature interleaved_burst_signature(unsigned workers) {
  EasyDramSystem sysm(parallel_config(workers));
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 512; ++i) {
    ids.push_back(
        sysm.submit_read(static_cast<std::uint64_t>(i) * 64, 100 + i));
  }
  std::vector<std::int64_t> cycles;
  for (const std::uint64_t id : ids) {
    cycles.push_back(sysm.wait(id).release_cycle);
  }
  return take_signature(sysm, std::move(cycles));
}

/// Dependent chain hopping across channels: one outstanding request at a
/// time, so every wait() runs its own (short) completion phase.
PumpSignature dependent_chain_signature(unsigned workers) {
  EasyDramSystem sysm(parallel_config(workers));
  std::vector<std::int64_t> cycles;
  std::int64_t now = 100;
  for (int i = 0; i < 96; ++i) {
    const auto addr = static_cast<std::uint64_t>(i) * 64;
    now = sysm.wait(sysm.submit_read(addr, now)).release_cycle + 1;
    cycles.push_back(now);
  }
  return take_signature(sysm, std::move(cycles));
}

TEST(ParallelPumpTest, BurstBitIdenticalAtAnyWorkerCount) {
  const PumpSignature serial = interleaved_burst_signature(1);
  EXPECT_EQ(serial, interleaved_burst_signature(2));
  EXPECT_EQ(serial, interleaved_burst_signature(4));
  EXPECT_EQ(serial, interleaved_burst_signature(8));
}

TEST(ParallelPumpTest, DependentChainBitIdenticalAtAnyWorkerCount) {
  const PumpSignature serial = dependent_chain_signature(1);
  EXPECT_EQ(serial, dependent_chain_signature(2));
  EXPECT_EQ(serial, dependent_chain_signature(8));
}

TEST(ParallelPumpTest, WorkerCountClampedToChannels) {
  // More workers than channels must not break anything (clamped inside).
  SystemConfig cfg = small_ts_config();
  cfg.geometry.channels = 2;
  cfg.mapping = smc::MappingKind::kChannelInterleaved;
  cfg.pump_workers = 16;
  EasyDramSystem sysm(cfg);
  const std::uint64_t a = sysm.submit_read(0, 100);
  const std::uint64_t b = sysm.submit_read(64, 101);
  EXPECT_TRUE(sysm.wait(a).ok);
  EXPECT_TRUE(sysm.wait(b).ok);
}

TEST(ParallelPumpTest, RunTraceBitIdenticalAtAnyWorkerCount) {
  auto run_wall = [](unsigned workers) {
    EasyDramSystem sysm(parallel_config(workers));
    cpu::VectorTrace trace = dependent_loads(64, 64);
    const cpu::RunResult r = sysm.run(trace);
    return std::pair<std::int64_t, std::int64_t>(r.cycles,
                                                 sysm.wall().count);
  };
  const auto serial = run_wall(1);
  EXPECT_EQ(serial, run_wall(4));
  EXPECT_EQ(serial, run_wall(8));
}

}  // namespace
}  // namespace easydram::sys
