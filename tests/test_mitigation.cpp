// RowHammer mitigation subsystem: geometry adjacency, the device's
// ground-truth exposure accounting, the PARA and Graphene policies, the
// controller's ActSink wiring + targeted-refresh injection, and the
// end-to-end scenario claims (mitigated exposure strictly below baseline;
// deterministic across --threads).

#include <gtest/gtest.h>

#include <string>

#include "cli/scenario.hpp"
#include "cpu/trace.hpp"
#include "dram/device.hpp"
#include "smc/addr_map.hpp"
#include "smc/controller.hpp"
#include "smc/easyapi.hpp"
#include "smc/mitigation/graphene.hpp"
#include "smc/mitigation/para.hpp"
#include "sys/system.hpp"
#include "tile/tile.hpp"
#include "timescale/timekeeper.hpp"
#include "workloads/hammer.hpp"

namespace easydram {
namespace {

using namespace easydram::literals;
using dram::Command;
using dram::DramAddress;
using smc::mitigation::MitigationConfig;
using smc::mitigation::MitigationKind;

dram::VariationConfig strong_variation() {
  dram::VariationConfig v;
  v.min_trcd = Picoseconds{1000};
  v.max_trcd = Picoseconds{1001};
  v.rowclone_pair_success = 1.0;
  return v;
}

// --------------------------------------------------------------------------
// Geometry adjacency
// --------------------------------------------------------------------------

TEST(NeighborRows, InteriorRowHasBothNeighbors) {
  const dram::Geometry geo;
  const auto n = geo.neighbor_rows(1000);
  ASSERT_EQ(n.count, 2u);
  EXPECT_EQ(n.rows[0], 999u);
  EXPECT_EQ(n.rows[1], 1001u);
}

TEST(NeighborRows, BankAndSubarrayEdgesHaveOne) {
  const dram::Geometry geo;  // 512-row subarrays.
  const auto first = geo.neighbor_rows(0);
  ASSERT_EQ(first.count, 1u);
  EXPECT_EQ(first.rows[0], 1u);
  const auto last = geo.neighbor_rows(geo.rows_per_bank - 1);
  ASSERT_EQ(last.count, 1u);
  EXPECT_EQ(last.rows[0], geo.rows_per_bank - 2);
  // Subarray boundary: row 511 ends subarray 0, row 512 starts subarray 1;
  // the sense-amp stripe between them breaks adjacency.
  const auto below = geo.neighbor_rows(511);
  ASSERT_EQ(below.count, 1u);
  EXPECT_EQ(below.rows[0], 510u);
  const auto above = geo.neighbor_rows(512);
  ASSERT_EQ(above.count, 1u);
  EXPECT_EQ(above.rows[0], 513u);
}

// --------------------------------------------------------------------------
// Device exposure accounting
// --------------------------------------------------------------------------

class HammerDeviceTest : public ::testing::Test {
 protected:
  HammerDeviceTest() : dev_(dram::Geometry{}, dram::ddr4_1333(), strong_variation()) {
    dev_.set_hammer_tracking(true);
  }

  /// ACT/PRE cycle on bank 0 at nominal spacing.
  void act(std::uint32_t row) {
    DramAddress a{0, row, 0};
    dev_.issue(Command::kAct, a, dev_.earliest_legal(Command::kAct, a));
    dev_.issue(Command::kPre, a, dev_.earliest_legal(Command::kPre, a));
  }

  dram::DramDevice dev_;
};

TEST_F(HammerDeviceTest, ActChargesBothNeighbors) {
  act(1000);
  act(1000);
  act(1000);
  EXPECT_EQ(dev_.hammer_count(0, 999), 3);
  EXPECT_EQ(dev_.hammer_count(0, 1001), 3);
  EXPECT_EQ(dev_.hammer_count(0, 1000), 0) << "aggressor is not its own victim";
  EXPECT_EQ(dev_.max_hammer_exposure(), 3);
}

TEST_F(HammerDeviceTest, DoubleSidedSumsAndVictimActResets) {
  act(1000);
  act(1002);
  act(1000);
  act(1002);
  EXPECT_EQ(dev_.hammer_count(0, 1001), 4) << "hammered from both sides";
  // Activating the victim restores it; the high-water mark survives.
  act(1001);
  EXPECT_EQ(dev_.hammer_count(0, 1001), 0);
  EXPECT_EQ(dev_.max_hammer_exposure(), 4);
  EXPECT_EQ(dev_.hammer_count(0, 1000), 1) << "the victim ACT disturbs back";
}

TEST_F(HammerDeviceTest, RefreshStripeClearsOnlyItsRows) {
  // Default geometry: 32768 rows / 8192 REFs -> REF n clears rows [4n, 4n+4).
  act(2);  // Victims 1 and 3: inside REF 0's stripe.
  act(6);  // Victims 5 and 7: outside it.
  dev_.issue(Command::kRef, {}, dev_.earliest_legal(Command::kRef, {}));
  EXPECT_EQ(dev_.hammer_count(0, 1), 0);
  EXPECT_EQ(dev_.hammer_count(0, 3), 0);
  EXPECT_EQ(dev_.hammer_count(0, 5), 1) << "REF 0's stripe ends at row 3";
  EXPECT_EQ(dev_.hammer_count(0, 7), 1);
}

TEST_F(HammerDeviceTest, TrackingOffCostsNothingAndReadsZero) {
  dev_.set_hammer_tracking(false);
  act(1000);
  EXPECT_EQ(dev_.hammer_count(0, 999), 0);
  EXPECT_EQ(dev_.max_hammer_exposure(), 0);
}

// --------------------------------------------------------------------------
// PARA
// --------------------------------------------------------------------------

TEST(Para, AlwaysOnProbabilityRefreshesAnAdjacentRow) {
  MitigationConfig cfg;
  cfg.kind = MitigationKind::kPara;
  cfg.para_probability = 1.0;
  smc::mitigation::ParaMitigator para(cfg, dram::Geometry{}, /*channel=*/0);
  std::vector<DramAddress> victims;
  const DramAddress aggressor{3, 1000, 0};
  para.on_activate(aggressor, victims);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0].bank, 3u);
  EXPECT_TRUE(victims[0].row == 999u || victims[0].row == 1001u);
  EXPECT_EQ(para.stats().triggers, 1);
}

TEST(Para, DeterministicStreamPerSeedAndChannel) {
  const dram::Geometry geo;
  MitigationConfig cfg;
  cfg.kind = MitigationKind::kPara;
  cfg.para_probability = 0.25;
  auto run = [&](std::uint32_t channel) {
    smc::mitigation::ParaMitigator para(cfg, geo, channel);
    std::vector<DramAddress> victims;
    for (int i = 0; i < 400; ++i) {
      para.on_activate(DramAddress{0, 1000, 0}, victims);
    }
    return victims;
  };
  const auto a = run(0);
  const auto b = run(0);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  EXPECT_GT(a.size(), 0u);
  // A different channel draws an independent stream.
  const auto c = run(1);
  EXPECT_TRUE(c.size() != a.size() ||
              !std::equal(a.begin(), a.end(), c.begin()));
}

// --------------------------------------------------------------------------
// Graphene
// --------------------------------------------------------------------------

TEST(Graphene, ThresholdTriggersBothNeighborsAndRearms) {
  MitigationConfig cfg;
  cfg.kind = MitigationKind::kGraphene;
  cfg.graphene_threshold = 16;
  smc::mitigation::GrapheneMitigator g(cfg, dram::Geometry{});
  std::vector<DramAddress> victims;
  for (int i = 0; i < 15; ++i) g.on_activate(DramAddress{0, 1000, 0}, victims);
  EXPECT_TRUE(victims.empty());
  EXPECT_EQ(g.tracked_count(0, 1000), 15);
  g.on_activate(DramAddress{0, 1000, 0}, victims);
  ASSERT_EQ(victims.size(), 2u);
  EXPECT_EQ(victims[0].row, 999u);
  EXPECT_EQ(victims[1].row, 1001u);
  // The count survives (Misra-Gries invariant); only the arming baseline
  // moves, so the next trigger needs a further full threshold.
  EXPECT_EQ(g.tracked_count(0, 1000), 16);
  EXPECT_EQ(g.stats().triggers, 1);
  for (int i = 0; i < 16; ++i) g.on_activate(DramAddress{0, 1000, 0}, victims);
  EXPECT_EQ(g.stats().triggers, 2);
}

TEST(Graphene, SaturatedSpilloverDoesNotStormTriggers) {
  // Regression: with the old count=0 re-arm, once the spillover counter
  // passed the threshold every ACT to an untracked row adopted the min
  // entry at count=spill and triggered instantly — a refresh per ACT.
  MitigationConfig cfg;
  cfg.kind = MitigationKind::kGraphene;
  cfg.graphene_threshold = 8;
  cfg.graphene_table_rows = 2;
  smc::mitigation::GrapheneMitigator g(cfg, dram::Geometry{});
  std::vector<DramAddress> victims;
  // Touch many distinct rows once each: pure benign sweep, spill >> threshold.
  for (std::uint32_t r = 0; r < 200; ++r) {
    g.on_activate(DramAddress{0, 1000 + 2 * r, 0}, victims);
  }
  EXPECT_EQ(g.stats().triggers, 0)
      << "single-shot rows must never trigger, however large spill grows";
}

TEST(Graphene, MisraGriesAdoptsHeavyRowOverColdEntries) {
  MitigationConfig cfg;
  cfg.kind = MitigationKind::kGraphene;
  cfg.graphene_threshold = 1000;
  cfg.graphene_table_rows = 2;
  smc::mitigation::GrapheneMitigator g(cfg, dram::Geometry{});
  std::vector<DramAddress> victims;
  // Two cold rows grab the table...
  g.on_activate(DramAddress{0, 10, 0}, victims);
  g.on_activate(DramAddress{0, 20, 0}, victims);
  // ...then a genuinely hot row must displace one despite arriving late.
  for (int i = 0; i < 8; ++i) g.on_activate(DramAddress{0, 30, 0}, victims);
  EXPECT_GT(g.tracked_count(0, 30), 0) << "hot row never earned an entry";
  EXPECT_GE(g.tracked_count(0, 30), 2)
      << "adopted entry must inherit at least the spillover bound";
}

TEST(Graphene, TablesResetAfterOneRetentionWindowOfRefs) {
  MitigationConfig cfg;
  cfg.kind = MitigationKind::kGraphene;
  cfg.graphene_threshold = 1000;
  smc::mitigation::GrapheneMitigator g(cfg, dram::Geometry{});
  std::vector<DramAddress> victims;
  for (int i = 0; i < 40; ++i) g.on_activate(DramAddress{0, 77, 0}, victims);
  EXPECT_EQ(g.tracked_count(0, 77), 40);
  for (std::int64_t i = 0; i < dram::kRefsPerRetentionWindow - 1; ++i) {
    g.on_refresh(0);
  }
  EXPECT_EQ(g.tracked_count(0, 77), 40) << "window not complete yet";
  g.on_refresh(0);
  EXPECT_EQ(g.tracked_count(0, 77), 0);
  EXPECT_EQ(g.stats().window_resets, 1);
}

TEST(Graphene, TableMustOutsizeTheAttackWidth) {
  // The documented coverage boundary: a round-robin over MORE distinct
  // aggressors than table_rows keeps every one at the spillover floor and
  // never triggers; the same attack inside the table width is caught. The
  // shipped default (32 rows) therefore covers many-sided patterns far
  // wider than the workload family generates.
  auto triggers_for = [](std::size_t table_rows) {
    MitigationConfig cfg;
    cfg.kind = MitigationKind::kGraphene;
    cfg.graphene_threshold = 8;
    cfg.graphene_table_rows = table_rows;
    smc::mitigation::GrapheneMitigator g(cfg, dram::Geometry{});
    std::vector<DramAddress> victims;
    for (int round = 0; round < 40; ++round) {
      for (std::uint32_t i = 0; i < 16; ++i) {  // 16-sided round-robin.
        g.on_activate(DramAddress{0, 1000 + 2 * i, 0}, victims);
      }
    }
    return g.stats().triggers;
  };
  EXPECT_GT(triggers_for(32), 0) << "16 aggressors inside a 32-row table";
  EXPECT_EQ(triggers_for(8), 0)
      << "16 aggressors churning an 8-row table evade it by design";
}

// --------------------------------------------------------------------------
// Controller integration: ActSink wiring + targeted-refresh injection
// --------------------------------------------------------------------------

struct ControllerHarness {
  explicit ControllerHarness(MitigationConfig mit)
      : device(geo, dram::ddr4_1333(), strong_variation()),
        tile(tile::TileConfig{}),
        mapper(geo),
        keeper(timescale::SystemMode::kTimeScaling,
               timescale::DomainConfig{Frequency::megahertz(100),
                                       Frequency::gigahertz(1)},
               Frequency::megahertz(100), Cycles{24}),
        api(tile, device, mapper, keeper) {
    device.set_hammer_tracking(true);
    mitigator = smc::mitigation::make_mitigator(mit, geo, 0);
    smc::ControllerOptions opt;
    opt.mitigator = mitigator.get();
    controller = std::make_unique<smc::MemoryController>(std::move(opt));
    api.set_act_sink(controller.get());
  }

  void read(std::uint64_t paddr) {
    tile::Request r;
    r.kind = tile::RequestKind::kRead;
    r.paddr = paddr;
    r.id = next_id++;
    r.arrival_wall = keeper.wall();
    tile.incoming().push(std::move(r));
    for (int i = 0; i < 10000 && tile.outgoing().empty(); ++i) {
      controller->step(api);
    }
    ASSERT_FALSE(tile.outgoing().empty()) << "request never completed";
    tile.outgoing().pop();
  }

  dram::Geometry geo;
  dram::DramDevice device;
  tile::EasyTile tile;
  smc::LinearMapper mapper;
  timescale::TimeKeeper keeper;
  smc::EasyApi api;
  std::unique_ptr<smc::mitigation::RowHammerMitigator> mitigator;
  std::unique_ptr<smc::MemoryController> controller;
  std::uint64_t next_id = 1;
};

TEST(ControllerMitigation, EveryDemandActObservedAndVictimsInjected) {
  MitigationConfig mit;
  mit.kind = MitigationKind::kPara;
  mit.para_probability = 1.0;  // Every ACT triggers a neighbor refresh.
  ControllerHarness h(mit);
  // Alternate two far-apart rows of bank 0 -> every read is a row miss.
  for (int i = 0; i < 10; ++i) {
    h.read((1000 + (i % 2) * 50) * 8192ull);
  }
  const auto* mit_ptr = h.controller->mitigator();
  ASSERT_NE(mit_ptr, nullptr);
  // 10 demand ACTs observed — and ONLY the demand ones: the injected
  // victim ACTs (one per demand ACT at p=1) must not re-enter the policy.
  EXPECT_EQ(mit_ptr->stats().acts_observed, 10);
  EXPECT_EQ(mit_ptr->stats().neighbor_refreshes, 10);
  // The device saw demand + injected activations.
  EXPECT_EQ(h.device.commands_issued(Command::kAct), 20);
}

TEST(ControllerMitigation, InjectedRefreshResetsTheVictimCounter) {
  MitigationConfig mit;
  mit.kind = MitigationKind::kGraphene;
  mit.graphene_threshold = 4;
  ControllerHarness h(mit);
  // Hammer rows 1000/1002 alternately: victim 1001 accumulates until one
  // aggressor's counter reaches 4, whose trigger refreshes 1001.
  for (int i = 0; i < 16; ++i) {
    h.read((1000 + (i % 2) * 2) * 8192ull);
  }
  EXPECT_GT(h.controller->mitigator()->stats().neighbor_refreshes, 0);
  // 16 demand ACTs would leave 16 on the victim unmitigated; the injected
  // refreshes must have clamped it near the threshold.
  EXPECT_LE(h.device.max_hammer_exposure(),
            2 * mit.graphene_threshold + 2);
  EXPECT_LT(h.device.hammer_count(0, 1001), 16);
}

// --------------------------------------------------------------------------
// End-to-end scenario claims
// --------------------------------------------------------------------------

/// Pulls `"key": <integer>` out of a scenario's dumped JSON.
std::int64_t extract_int(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const auto pos = json.find(needle);
  EXPECT_NE(pos, std::string::npos) << key;
  if (pos == std::string::npos) return -1;
  return std::stoll(json.substr(pos + needle.size()));
}

std::string run_payload(const char* name, int threads) {
  const cli::Scenario* s = cli::ScenarioRegistry::instance().find(name);
  EXPECT_NE(s, nullptr) << name;
  cli::RunOptions opts;
  opts.verbose = false;
  opts.threads = threads;
  return s->run(opts).dump_string();
}

TEST(RowhammerScenarios, MitigatedExposureStrictlyBelowBaseline) {
  const std::int64_t baseline =
      extract_int(run_payload("rowhammer_baseline", 1), "max_exposure");
  const std::int64_t para =
      extract_int(run_payload("rowhammer_para", 1), "max_exposure");
  const std::int64_t graphene =
      extract_int(run_payload("rowhammer_graphene", 1), "max_exposure");
  EXPECT_GT(baseline, 1000) << "hammer kernel failed to build exposure";
  EXPECT_LT(para, baseline);
  EXPECT_LT(graphene, baseline);
}

TEST(RowhammerScenarios, PayloadsAreDeterministicAcrossThreads) {
  EXPECT_EQ(run_payload("rowhammer_para", 1), run_payload("rowhammer_para", 3));
  EXPECT_EQ(run_payload("rowhammer_graphene", 1),
            run_payload("rowhammer_graphene", 3));
}

TEST(RowhammerScenarios, MitigatorStateSurvivesControllerRebuilds) {
  // enable_rowclone()/install_weak_row_filter() rebuild every channel's
  // controller mid-setup; the mitigation policy (owned by the system, not
  // the controller) must keep its stats and RNG position across that.
  sys::SystemConfig cfg = sys::jetson_nano_time_scaling();
  cfg.mitigation.kind = MitigationKind::kPara;
  cfg.mitigation.para_probability = 1.0;
  sys::EasyDramSystem sysm(cfg);
  sysm.wait(sysm.submit_read(1000 * 8192ull, /*now=*/100));
  const std::int64_t before = sysm.mitigation_stats().acts_observed;
  EXPECT_GT(before, 0);
  sysm.enable_rowclone();  // Rebuilds controllers.
  EXPECT_EQ(sysm.mitigation_stats().acts_observed, before)
      << "rebuild zeroed the mitigation stats";
  sysm.wait(sysm.submit_read(2000 * 8192ull, /*now=*/200'000));
  EXPECT_GT(sysm.mitigation_stats().acts_observed, before)
      << "post-rebuild controller no longer feeds the policy";
}

TEST(RowhammerScenarios, SystemAggregatesMitigationStatsAcrossChannels) {
  sys::SystemConfig cfg = sys::jetson_nano_time_scaling();
  cfg.geometry.channels = 2;
  cfg.mapping = smc::MappingKind::kChannelInterleaved;
  cfg.track_row_hammer = true;
  cfg.mitigation.kind = MitigationKind::kPara;
  cfg.mitigation.para_probability = 1.0;
  sys::EasyDramSystem sysm(cfg);
  // One row-miss read per channel (channel-interleaved: consecutive lines).
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(sysm.submit_read(static_cast<std::uint64_t>(i) * 64,
                                   /*now=*/100 + i));
  }
  for (const std::uint64_t id : ids) sysm.wait(id);
  const auto stats = sysm.mitigation_stats();
  EXPECT_GT(stats.acts_observed, 0);
  EXPECT_EQ(stats.acts_observed, stats.neighbor_refreshes);
}

}  // namespace
}  // namespace easydram
