#include <gtest/gtest.h>

#include <set>

#include "workloads/builder.hpp"
#include "workloads/copyinit.hpp"
#include "workloads/hammer.hpp"
#include "workloads/lmbench.hpp"
#include "workloads/polybench.hpp"
#include "workloads/streamsweep.hpp"

namespace easydram::workloads {
namespace {

TEST(BuilderTest, EmitsRecordsWithGaps) {
  TraceBuilder b(3);
  b.load(64);
  b.store(128);
  b.compute(100);
  b.load(192);
  const auto t = b.take();
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0].op, cpu::Op::kLoad);
  EXPECT_EQ(t[0].gap_instructions, 3u);
  EXPECT_EQ(t[2].gap_instructions, 103u);  // compute folded into next gap.
}

TEST(LayoutTest, AllocationsAreAlignedAndDisjoint) {
  Layout l;
  const std::uint64_t a = l.alloc(100);
  const std::uint64_t b = l.alloc(100);
  EXPECT_EQ(a % 64, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GE(b, a + 100);
}

TEST(LmbenchTest, VisitsEveryLineOncePerPass) {
  const auto t = make_lmbench_chase(64 * 128, /*passes=*/2);
  EXPECT_EQ(t.size(), 256u);
  std::set<std::uint64_t> first_pass;
  for (std::size_t i = 0; i < 128; ++i) {
    EXPECT_EQ(t[i].op, cpu::Op::kLoadDependent);
    first_pass.insert(t[i].addr);
  }
  EXPECT_EQ(first_pass.size(), 128u);
}

TEST(LmbenchTest, Deterministic) {
  const auto a = make_lmbench_chase(64 * 64, 1);
  const auto b = make_lmbench_chase(64 * 64, 1);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].addr, b[i].addr);
}

TEST(LmbenchTest, LoadsPerPass) {
  EXPECT_EQ(lmbench_loads_per_pass(8192), 128u);
}

TEST(PolybenchTest, AllKernelsGenerate) {
  for (const PolybenchKernel& k : all_kernels()) {
    const auto t = k.generate();
    EXPECT_GT(t.size(), 10'000u) << k.name;
    EXPECT_LT(t.size(), 20'000'000u) << k.name;
  }
}

TEST(PolybenchTest, TwentyEightKernels) {
  EXPECT_EQ(all_kernels().size(), 28u);
}

TEST(PolybenchTest, Fig13SubsetExists) {
  EXPECT_EQ(fig13_names().size(), 11u);
  for (const auto name : fig13_names()) {
    EXPECT_NO_THROW(generate_kernel(name));
  }
}

TEST(PolybenchTest, UnknownKernelRejected) {
  EXPECT_THROW(generate_kernel("nonexistent"), ContractViolation);
}

TEST(PolybenchTest, AddressesStayWithinModestFootprint) {
  for (const PolybenchKernel& k : all_kernels()) {
    const auto t = k.generate();
    std::uint64_t max_addr = 0;
    for (const auto& r : t) max_addr = std::max(max_addr, r.addr);
    EXPECT_LT(max_addr, 64ull << 20) << k.name;  // < 64 MiB footprint.
  }
}

TEST(PolybenchTest, KernelsSpanMemoryIntensities) {
  // durbin's working set is tiny (cache resident); gemver streams a large
  // matrix repeatedly. Their distinct-line footprints must reflect that.
  auto lines_of = [](std::string_view name) {
    std::set<std::uint64_t> lines;
    for (const auto& r : generate_kernel(name)) lines.insert(r.addr / 64);
    return lines.size();
  };
  EXPECT_GT(lines_of("gemver"), 20 * lines_of("durbin"));
}

// --------------------------------------------------------------------------
// Copy/Init workload generator
// --------------------------------------------------------------------------

struct CopyInitHarness {
  CopyInitHarness() : mapper(geo) {}

  std::vector<smc::CopyPlanEntry> copy_plan(std::size_t rows, bool all_rowclone) {
    std::vector<smc::CopyPlanEntry> plan;
    for (std::size_t i = 0; i < rows; ++i) {
      smc::CopyPlanEntry e;
      e.src = smc::RowRef{0, static_cast<std::uint32_t>(2 * i)};
      e.dst = smc::RowRef{0, static_cast<std::uint32_t>(2 * i + 1)};
      e.use_rowclone = all_rowclone;
      plan.push_back(e);
    }
    return plan;
  }

  std::vector<smc::InitPlanEntry> init_plan(std::size_t rows) {
    std::vector<smc::InitPlanEntry> plan;
    for (std::size_t i = 0; i < rows; ++i) {
      smc::InitPlanEntry e;
      e.dst = smc::RowRef{0, static_cast<std::uint32_t>(i)};
      e.pattern_src = smc::RowRef{0, 511};
      e.use_rowclone = true;
      plan.push_back(e);
    }
    return plan;
  }

  dram::Geometry geo;
  smc::LinearMapper mapper;
};

std::vector<cpu::TraceRecord> collect(cpu::TraceSource& src,
                                      bool rowclone_feedback = true) {
  std::vector<cpu::TraceRecord> out;
  cpu::TraceRecord r;
  bool ok = true;
  while (src.next(r, ok)) {
    out.push_back(r);
    ok = r.op == cpu::Op::kRowClone ? rowclone_feedback : ok;
  }
  return out;
}

TEST(CopyInitTest, CpuBaselineEmitsLoadStorePairs) {
  CopyInitHarness h;
  CopyInitParams p;
  p.kind = CopyInitParams::Kind::kCopy;
  p.use_rowclone = false;
  CopyInitTrace trace(p, h.mapper, h.copy_plan(2, false), {});
  const auto recs = collect(trace);
  std::int64_t loads = 0, stores = 0, markers = 0;
  for (const auto& r : recs) {
    loads += r.op == cpu::Op::kLoadDependent;  // memcpy load->store chain.
    stores += r.op == cpu::Op::kStore;
    markers += r.op == cpu::Op::kMarker;
  }
  EXPECT_EQ(loads, 2 * 128);
  EXPECT_EQ(stores, 2 * 128);
  EXPECT_EQ(markers, 2);
}

TEST(CopyInitTest, RowCloneVariantEmitsClones) {
  CopyInitHarness h;
  CopyInitParams p;
  p.kind = CopyInitParams::Kind::kCopy;
  p.use_rowclone = true;
  CopyInitTrace trace(p, h.mapper, h.copy_plan(3, true), {});
  const auto recs = collect(trace);
  std::int64_t clones = 0, loads = 0;
  for (const auto& r : recs) {
    clones += r.op == cpu::Op::kRowClone;
    loads += r.op == cpu::Op::kLoadDependent;
  }
  EXPECT_EQ(clones, 3);
  EXPECT_EQ(loads, 0);
}

TEST(CopyInitTest, FailedCloneFallsBackToCpu) {
  CopyInitHarness h;
  CopyInitParams p;
  p.kind = CopyInitParams::Kind::kCopy;
  p.use_rowclone = true;
  CopyInitTrace trace(p, h.mapper, h.copy_plan(2, true), {});
  const auto recs = collect(trace, /*rowclone_feedback=*/false);
  std::int64_t clones = 0, loads = 0;
  for (const auto& r : recs) {
    clones += r.op == cpu::Op::kRowClone;
    loads += r.op == cpu::Op::kLoadDependent;
  }
  EXPECT_EQ(clones, 2);
  EXPECT_EQ(loads, 2 * 128);  // Both rows redone by the CPU.
}

TEST(CopyInitTest, UnverifiedPlanEntrySkipsCloneEntirely) {
  CopyInitHarness h;
  CopyInitParams p;
  p.kind = CopyInitParams::Kind::kCopy;
  p.use_rowclone = true;
  auto plan = h.copy_plan(2, true);
  plan[1].use_rowclone = false;
  CopyInitTrace trace(p, h.mapper, std::move(plan), {});
  const auto recs = collect(trace);
  std::int64_t clones = 0, loads = 0;
  for (const auto& r : recs) {
    clones += r.op == cpu::Op::kRowClone;
    loads += r.op == cpu::Op::kLoadDependent;
  }
  EXPECT_EQ(clones, 1);
  EXPECT_EQ(loads, 128);
}

TEST(CopyInitTest, ClflushSettingEmitsWarmAndFlushes) {
  CopyInitHarness h;
  CopyInitParams p;
  p.kind = CopyInitParams::Kind::kCopy;
  p.use_rowclone = true;
  p.clflush = true;
  CopyInitTrace trace(p, h.mapper, h.copy_plan(2, true), {});
  const auto recs = collect(trace);
  std::int64_t flushes = 0, warm_stores = 0;
  bool seen_marker = false;
  for (const auto& r : recs) {
    if (r.op == cpu::Op::kMarker) seen_marker = true;
    if (r.op == cpu::Op::kFlush) {
      flushes++;
      EXPECT_TRUE(seen_marker);  // Flushes are inside the measured region.
    }
    if (r.op == cpu::Op::kStore && !seen_marker) ++warm_stores;
  }
  EXPECT_EQ(warm_stores, 2 * 128);       // Warm phase dirties the source.
  EXPECT_EQ(flushes, 2 * (128 + 128));   // Source + destination lines.
}

TEST(CopyInitTest, InitUsesPatternSourceRow) {
  CopyInitHarness h;
  CopyInitParams p;
  p.kind = CopyInitParams::Kind::kInit;
  p.use_rowclone = true;
  CopyInitTrace trace(p, h.mapper, {}, h.init_plan(4));
  const auto recs = collect(trace);
  const std::uint64_t pattern_base =
      h.mapper.to_physical(dram::DramAddress{0, 511, 0});
  std::int64_t clones = 0;
  for (const auto& r : recs) {
    if (r.op != cpu::Op::kRowClone) continue;
    ++clones;
    EXPECT_EQ(r.addr, pattern_base);
  }
  EXPECT_EQ(clones, 4);
}

TEST(CopyInitTest, MeasuredRegionBoundedByTwoMarkers) {
  CopyInitHarness h;
  CopyInitParams p;
  p.kind = CopyInitParams::Kind::kInit;
  p.use_rowclone = false;
  CopyInitTrace trace(p, h.mapper, {}, h.init_plan(2));
  const auto recs = collect(trace);
  std::int64_t markers = 0;
  for (const auto& r : recs) markers += r.op == cpu::Op::kMarker;
  EXPECT_EQ(markers, 2);
  EXPECT_EQ(recs.back().op, cpu::Op::kMarker);
}

TEST(PolybenchTest, RecordCountTableMatchesGenerators) {
  // The per-kernel record counts drive generate_kernel's up-front reserve;
  // a stale entry would mean silent re-copying (too small) or a misleading
  // table (too large). Pin every kernel.
  for (const PolybenchKernel& k : all_kernels()) {
    const std::size_t expected = kernel_record_count(k.name);
    EXPECT_GT(expected, 0u) << k.name << " missing from the count table";
    const auto records = generate_kernel(k.name);
    EXPECT_EQ(records.size(), expected) << k.name;
    EXPECT_EQ(records.capacity(), expected) << k.name << " reserve not applied";
  }
  EXPECT_EQ(kernel_record_count("no-such-kernel"), 0u);
}


// --------------------------------------------------------------------------
// RowHammer aggressor kernels
// --------------------------------------------------------------------------

TEST(HammerTest, PatternsProduceTheDocumentedAggressorSets) {
  HammerParams p;
  p.base_row = 1024;
  p.pattern = HammerPattern::kSingleSided;
  EXPECT_EQ(hammer_aggressor_rows(p),
            (std::vector<std::uint32_t>{1024, 1032}));
  p.pattern = HammerPattern::kDoubleSided;
  EXPECT_EQ(hammer_aggressor_rows(p), (std::vector<std::uint32_t>{1024, 1026}));
  p.pattern = HammerPattern::kManySided;
  p.sides = 3;
  EXPECT_EQ(hammer_aggressor_rows(p),
            (std::vector<std::uint32_t>{1024, 1026, 1028}));
}

TEST(HammerTest, VictimsAreNeighborsMinusAggressors) {
  const dram::Geometry geo;
  HammerParams p;  // Default base_row 1030: subarray-interior.
  p.pattern = HammerPattern::kDoubleSided;
  // Aggressors 1030/1032: neighbors 1029, 1031 (shared), 1033.
  EXPECT_EQ(hammer_victim_rows(p, geo),
            (std::vector<std::uint32_t>{1029, 1031, 1033}));
  p.pattern = HammerPattern::kManySided;
  p.sides = 3;
  // 1030/1032/1034: inter-aggressor rows plus the two flanks.
  EXPECT_EQ(hammer_victim_rows(p, geo),
            (std::vector<std::uint32_t>{1029, 1031, 1033, 1035}));
}

TEST(HammerTest, SubarrayBoundaryAggressorLosesOneVictim) {
  const dram::Geometry geo;
  HammerParams p;
  p.base_row = 1024;  // Starts subarray 2: no lower neighbor.
  p.pattern = HammerPattern::kDoubleSided;
  EXPECT_EQ(hammer_victim_rows(p, geo),
            (std::vector<std::uint32_t>{1025, 1027}));
}

TEST(HammerTest, TraceIsDependentLoadPlusFlushPerAggressorPerRound) {
  const dram::Geometry geo;
  const smc::LinearMapper mapper(geo);
  HammerParams p;
  p.pattern = HammerPattern::kDoubleSided;
  p.rounds = 5;
  const auto trace = make_hammer_trace(p, mapper);
  ASSERT_EQ(trace.size(), 5u * 2 * 2);  // rounds x aggressors x (load+flush).
  for (std::size_t i = 0; i < trace.size(); i += 2) {
    EXPECT_EQ(trace[i].op, cpu::Op::kLoadDependent);
    EXPECT_EQ(trace[i + 1].op, cpu::Op::kFlush);
    EXPECT_EQ(trace[i].addr, trace[i + 1].addr);
    // Every access decodes to an aggressor row of bank 0.
    const dram::DramAddress a = mapper.to_dram(trace[i].addr);
    EXPECT_EQ(a.bank, p.bank);
    EXPECT_TRUE(a.row == 1030u || a.row == 1032u) << a.row;
  }
}

TEST(HammerTest, BlendSplicesWholeRoundsAndKeepsEveryRecord) {
  const dram::Geometry geo;
  const smc::LinearMapper mapper(geo);
  HammerParams p;
  p.pattern = HammerPattern::kDoubleSided;
  p.rounds = 10;
  std::vector<cpu::TraceRecord> background(37);
  for (auto& r : background) r.op = cpu::Op::kLoad;
  const auto blend = make_hammer_blend(p, mapper, background, 8);
  const auto hammer = make_hammer_trace(p, mapper);
  EXPECT_EQ(blend.size(), background.size() + hammer.size());
  // First burst lands right after the 8th background record and is one
  // full round (2 aggressors x load+flush).
  EXPECT_EQ(blend[8].op, cpu::Op::kLoadDependent);
  EXPECT_EQ(blend[9].op, cpu::Op::kFlush);
  EXPECT_EQ(blend[10].op, cpu::Op::kLoadDependent);
  EXPECT_EQ(blend[11].op, cpu::Op::kFlush);
  EXPECT_EQ(blend[12].op, cpu::Op::kLoad);  // Background resumes.
}

// --------------------------------------------------------------------------
// STREAM / latency sweep kernels
// --------------------------------------------------------------------------

TEST(StreamSweepTest, RecordCountsExactAcrossTheWholeSweep) {
  // The count functions drive the generator's up-front reserve and the
  // scenario's bytes-moved accounting; pin them for every kernel x size.
  for (const StreamKernel k : kAllStreamKernels) {
    for (const std::uint64_t ws : sweep_working_sets(8 * 1024, 64 * 1024)) {
      StreamSweepParams p;
      p.kernel = k;
      p.working_set_bytes = ws;
      const auto t = make_stream_trace(p);
      EXPECT_EQ(t.size(), stream_record_count(p)) << to_string(k) << " " << ws;
      EXPECT_EQ(t.capacity(), stream_record_count(p))
          << to_string(k) << " " << ws << " reserve not applied";
      std::int64_t markers = 0;
      for (const auto& r : t) markers += r.op == cpu::Op::kMarker;
      EXPECT_EQ(markers, 2);
      EXPECT_EQ(t.back().op, cpu::Op::kMarker);
    }
  }
}

TEST(StreamSweepTest, KernelOpMixMatchesTheStreamDefinition) {
  // Copy/Scale: 1 load + 1 store per line; Add/Triad: 2 loads + 1 store.
  for (const StreamKernel k : kAllStreamKernels) {
    StreamSweepParams p;
    p.kernel = k;
    p.working_set_bytes = 12 * 1024;
    p.warm_passes = 0;
    p.measured_passes = 1;
    const auto t = make_stream_trace(p);
    const std::uint64_t lines = stream_lines_per_array(p);
    std::int64_t loads = 0, stores = 0;
    for (const auto& r : t) {
      loads += r.op == cpu::Op::kLoad;
      stores += r.op == cpu::Op::kStore;
    }
    const bool three_arrays = stream_array_count(k) == 3;
    EXPECT_EQ(loads, static_cast<std::int64_t>(lines * (three_arrays ? 2 : 1)))
        << to_string(k);
    EXPECT_EQ(stores, static_cast<std::int64_t>(lines)) << to_string(k);
    EXPECT_EQ(stream_bytes_per_pass(p), (loads + stores) * 64u);
  }
}

TEST(StreamSweepTest, ArraysAreDisjointAndLineAligned) {
  StreamSweepParams p;
  p.kernel = StreamKernel::kTriad;
  p.working_set_bytes = 24 * 1024;
  p.warm_passes = 0;
  p.measured_passes = 1;
  const std::uint64_t lines = stream_lines_per_array(p);
  std::set<std::uint64_t> touched;
  for (const auto& r : make_stream_trace(p)) {
    if (r.op == cpu::Op::kMarker) continue;
    EXPECT_EQ(r.addr % 64, 0u);
    touched.insert(r.addr / 64);
  }
  // 3 arrays x lines distinct cache lines, contiguous from base_addr.
  EXPECT_EQ(touched.size(), 3 * lines);
  EXPECT_EQ(*touched.begin(), 0u);
  EXPECT_EQ(*touched.rbegin(), 3 * lines - 1);
}

TEST(StreamSweepTest, Deterministic) {
  StreamSweepParams p;
  p.kernel = StreamKernel::kAdd;
  p.working_set_bytes = 12 * 1024;
  const auto a = make_stream_trace(p);
  const auto b = make_stream_trace(p);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].addr, b[i].addr);
    EXPECT_EQ(a[i].op, b[i].op);
  }
}

TEST(LatencySweepTest, ChaseOrderIsOneSingleCycleCoveringEveryLine) {
  for (const std::uint64_t lines : {2ull, 3ull, 64ull, 1024ull}) {
    const auto next = latency_chase_order(lines, /*seed=*/0x17B);
    ASSERT_EQ(next.size(), lines);
    std::set<std::uint64_t> visited;
    std::uint64_t cur = 0;
    for (std::uint64_t i = 0; i < lines; ++i) {
      EXPECT_TRUE(visited.insert(cur).second) << "revisited " << cur;
      EXPECT_NE(next[cur], cur) << "fixed point at " << cur;
      cur = next[cur];
    }
    EXPECT_EQ(cur, 0u) << "cycle of length != lines";
    EXPECT_EQ(visited.size(), lines);
  }
}

TEST(LatencySweepTest, TraceCountsAndEveryLoadIsDependent) {
  LatencySweepParams p;
  p.working_set_bytes = 16 * 1024;
  const auto t = make_latency_trace(p);
  EXPECT_EQ(t.size(), latency_record_count(p));
  EXPECT_EQ(t.capacity(), latency_record_count(p));
  EXPECT_EQ(latency_loads_per_pass(p), (16u * 1024) / 64);
  std::int64_t markers = 0;
  for (const auto& r : t) {
    if (r.op == cpu::Op::kMarker) {
      ++markers;
      continue;
    }
    EXPECT_EQ(r.op, cpu::Op::kLoadDependent);
    EXPECT_EQ(r.addr % 64, 0u);
  }
  EXPECT_EQ(markers, 2);
}

TEST(LatencySweepTest, SeedDeterminesTheChaseOrder) {
  LatencySweepParams p;
  p.working_set_bytes = 8 * 1024;
  const auto a = make_latency_trace(p);
  const auto b = make_latency_trace(p);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].addr, b[i].addr);

  LatencySweepParams q = p;
  q.seed = p.seed + 1;
  const auto c = make_latency_trace(q);
  ASSERT_EQ(a.size(), c.size());
  bool any_different = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_different = any_different || a[i].addr != c[i].addr;
  }
  EXPECT_TRUE(any_different);
}

TEST(SweepWorkingSetsTest, EightPointsSpanningTheTransitions) {
  const auto sizes = sweep_working_sets(8 * 1024, 64 * 1024);
  EXPECT_EQ(sizes, (std::vector<std::uint64_t>{
                       4 * 1024, 8 * 1024, 16 * 1024, 32 * 1024, 64 * 1024,
                       128 * 1024, 256 * 1024, 512 * 1024}));
  // Strictly increasing: every point is a distinct sweep x-coordinate.
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_LT(sizes[i - 1], sizes[i]);
  }
}

}  // namespace
}  // namespace easydram::workloads
