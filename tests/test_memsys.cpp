#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "smc/addr_map.hpp"
#include "smc/controller.hpp"
#include "smc/easyapi.hpp"
#include "smc/rowclone_alloc.hpp"
#include "sys/system.hpp"
#include "workloads/builder.hpp"

// Multi-channel / multi-rank memory-subsystem tests: the generalized
// address space, per-rank device state, channel routing, and the
// channel-scaling behaviour of the full system.

namespace easydram {
namespace {

using namespace easydram::literals;

dram::VariationConfig strong_variation() {
  dram::VariationConfig v;
  v.min_trcd = Picoseconds{1000};
  v.max_trcd = Picoseconds{1001};
  v.rowclone_pair_success = 1.0;
  return v;
}

dram::Geometry two_rank_geometry() {
  dram::Geometry geo;
  geo.ranks_per_channel = 2;
  return geo;
}

// --------------------------------------------------------------------------
// Device: per-rank bank and timing state
// --------------------------------------------------------------------------

TEST(MultiRankDevice, RanksHaveIndependentBankState) {
  const dram::Geometry geo = two_rank_geometry();
  dram::DramDevice dev(geo, dram::ddr4_1333(), strong_variation());

  dram::DramAddress r1{3, 77, 0};
  r1.rank = 1;
  dev.issue(dram::Command::kAct, r1, dev.earliest_legal(dram::Command::kAct, r1));
  EXPECT_FALSE(dev.open_row(3, 0).has_value());
  ASSERT_TRUE(dev.open_row(3, 1).has_value());
  EXPECT_EQ(*dev.open_row(3, 1), 77u);

  dram::DramAddress r0{3, 12, 0};
  dev.issue(dram::Command::kAct, r0, dev.earliest_legal(dram::Command::kAct, r0));
  EXPECT_EQ(*dev.open_row(3, 0), 12u);
  EXPECT_EQ(*dev.open_row(3, 1), 77u);  // Undisturbed.
}

TEST(MultiRankDevice, RanksHaveIndependentStorage) {
  const dram::Geometry geo = two_rank_geometry();
  dram::DramDevice dev(geo, dram::ddr4_1333(), strong_variation());

  std::array<std::uint8_t, 64> a{};
  a.fill(0xAA);
  std::array<std::uint8_t, 64> b{};
  b.fill(0xBB);
  dram::DramAddress addr0{5, 9, 3};
  dram::DramAddress addr1 = addr0;
  addr1.rank = 1;
  dev.backdoor_write(addr0, a);
  dev.backdoor_write(addr1, b);

  std::array<std::uint8_t, 64> out{};
  dev.backdoor_read(addr0, out);
  EXPECT_EQ(std::memcmp(out.data(), a.data(), 64), 0);
  dev.backdoor_read(addr1, out);
  EXPECT_EQ(std::memcmp(out.data(), b.data(), 64), 0);
}

TEST(MultiRankDevice, TfawTrackedPerRank) {
  const dram::Geometry geo = two_rank_geometry();
  dram::DramDevice dev(geo, dram::ddr4_1333(), strong_variation());
  const dram::TimingParams t = dram::ddr4_1333();

  // Four back-to-back ACTs to distinct banks of rank 0 fill its tFAW window.
  Picoseconds at{0};
  for (std::uint32_t bank = 0; bank < 4; ++bank) {
    const dram::DramAddress a{bank, 0, 0};
    at = dev.earliest_legal(dram::Command::kAct, a);
    dev.issue(dram::Command::kAct, a, at);
  }
  // A fifth ACT on rank 0 must wait for the window; the same ACT on rank 1
  // is constrained only by its own (empty) window.
  const dram::DramAddress fifth0{4, 0, 0};
  dram::DramAddress fifth1 = fifth0;
  fifth1.rank = 1;
  EXPECT_GE(dev.earliest_legal(dram::Command::kAct, fifth0),
            Picoseconds{t.tFAW});
  EXPECT_LT(dev.earliest_legal(dram::Command::kAct, fifth1),
            Picoseconds{t.tFAW});
}

TEST(MultiRankDevice, RankSwitchPaysTrtrsOnTheSharedBus) {
  const dram::Geometry geo = two_rank_geometry();
  dram::DramDevice dev(geo, dram::ddr4_1333(), strong_variation());

  // Open row 0 of bank 0 on both ranks, then read rank 0.
  for (std::uint32_t rank = 0; rank < 2; ++rank) {
    dram::DramAddress a{0, 0, 0};
    a.rank = rank;
    dev.issue(dram::Command::kAct, a, dev.earliest_legal(dram::Command::kAct, a));
  }
  dram::DramAddress rd0{0, 0, 0};
  dev.issue(dram::Command::kRead, rd0, dev.earliest_legal(dram::Command::kRead, rd0));

  // The next read on the *same* rank can start tRTRS earlier than the same
  // read on the other rank (same bank group spacing on both).
  dram::DramAddress next_same{0, 0, 1};
  dram::DramAddress next_other = next_same;
  next_other.rank = 1;
  const Picoseconds same = dev.earliest_legal(dram::Command::kRead, next_same);
  const Picoseconds other = dev.earliest_legal(dram::Command::kRead, next_other);
  EXPECT_GT(other, same);
}

TEST(MultiRankDevice, RefreshCountsPerRank) {
  const dram::Geometry geo = two_rank_geometry();
  dram::DramDevice dev(geo, dram::ddr4_1333(), strong_variation());

  dram::DramAddress ref0{};  // rank 0
  dram::DramAddress ref1{};
  ref1.rank = 1;
  dev.issue(dram::Command::kRef, ref0, dev.earliest_legal(dram::Command::kRef, ref0));
  EXPECT_EQ(dev.refreshes_issued(0), 1);
  EXPECT_EQ(dev.refreshes_issued(1), 0);
  dev.issue(dram::Command::kRef, ref1, dev.earliest_legal(dram::Command::kRef, ref1));
  EXPECT_EQ(dev.refreshes_issued(1), 1);
}

// --------------------------------------------------------------------------
// EasyApi on a multi-rank channel
// --------------------------------------------------------------------------

/// Standalone SMC harness over a configurable geometry and channel id.
struct Harness {
  explicit Harness(const dram::Geometry& g, std::uint32_t channel = 0)
      : geo(g),
        device(geo, dram::ddr4_1333(), strong_variation()),
        tile(tile::TileConfig{}),
        mapper(geo),
        keeper(timescale::SystemMode::kTimeScaling,
               timescale::DomainConfig{Frequency::megahertz(100),
                                       Frequency::gigahertz(1)},
               Frequency::megahertz(100), Cycles{24}),
        api(tile, device, mapper, keeper, channel) {}

  dram::Geometry geo;
  dram::DramDevice device;
  tile::EasyTile tile;
  smc::LinearMapper mapper;
  timescale::TimeKeeper keeper;
  smc::EasyApi api;
};

TEST(MultiRankApi, PendingRowsTrackedPerRank) {
  Harness h(two_rank_geometry());
  // Same bank index on both ranks inside ONE batch: no precharge needed,
  // the opens are independent.
  dram::DramAddress a0{2, 5, 0};
  dram::DramAddress a1{2, 9, 0};
  a1.rank = 1;
  h.api.read_sequence(a0);
  h.api.read_sequence(a1);
  const auto r = h.api.flush_commands();
  EXPECT_EQ(r.violations, dram::kNone);
  EXPECT_EQ(h.device.commands_issued(dram::Command::kPre), 0);
  EXPECT_EQ(h.device.commands_issued(dram::Command::kAct), 2);
  EXPECT_EQ(*h.device.open_row(2, 0), 5u);
  EXPECT_EQ(*h.device.open_row(2, 1), 9u);
}

TEST(MultiRankApi, RefreshCatchUpCoversEveryRank) {
  Harness h(two_rank_geometry());
  h.keeper.counters().advance_mc(100'000);  // 100 us at 1 GHz.
  h.api.refresh_if_due();
  const std::int64_t due = h.device.refreshes_due(h.keeper.emulated_now());
  EXPECT_GT(due, 0);
  EXPECT_EQ(h.device.refreshes_issued(0), due);
  EXPECT_EQ(h.device.refreshes_issued(1), due);
}

// --------------------------------------------------------------------------
// Maintenance-batch refresh pacing (easyapi.cpp refresh_rank_if_due): the
// catch-up loop must terminate (tRFC << tREFI), charge only refreshes whose
// tRFC window overlaps "now", and keep every rank converged even though a
// charged refresh on one rank advances the clock the next rank reads.
// --------------------------------------------------------------------------

/// Advances the emulated clock to `target_ns` (1 cycle == 1 ns at the
/// harness's 1 GHz emulated clock).
void advance_emulated_to_ns(Harness& h, std::int64_t target_ns) {
  const std::int64_t now = h.keeper.counters().mc();
  ASSERT_GE(target_ns, now);
  h.keeper.counters().advance_mc(target_ns - now);
}

TEST(MultiRankApi, CatchUpRefreshesRunUncharged) {
  Harness h(two_rank_geometry());
  const dram::TimingParams t = h.api.timing();
  // Land well past the 3rd tREFI *and* past its tRFC window: every owed
  // refresh would have overlapped compute, so none may charge a timeline.
  advance_emulated_to_ns(
      h, (3 * t.tREFI.count + t.tRFC.count + 100'000) / 1000);
  const Picoseconds wall_before = h.keeper.wall();
  h.api.refresh_if_due();
  EXPECT_EQ(h.device.refreshes_issued(0), 3);
  EXPECT_EQ(h.device.refreshes_issued(1), 3);
  EXPECT_EQ(h.api.stats().dram_busy.count, 0);
  EXPECT_EQ(h.keeper.wall(), wall_before);
  EXPECT_EQ(h.api.stats().refreshes_issued, 6);
}

TEST(MultiRankApi, InFlightRefreshChargesTheTimeline) {
  Harness h(two_rank_geometry());
  const dram::TimingParams t = h.api.timing();
  // Land *inside* the 3rd refresh's tRFC window: that refresh is still in
  // flight "now" and must delay current work — per rank.
  advance_emulated_to_ns(h, (3 * t.tREFI.count + t.tRFC.count / 2) / 1000);
  const Picoseconds wall_before = h.keeper.wall();
  h.api.refresh_if_due();
  // Both ranks fully caught up against the clock their own charged
  // refreshes advanced (the convergence contract of refresh_rank_if_due).
  const std::int64_t due = h.device.refreshes_due(h.keeper.emulated_now());
  EXPECT_GE(h.device.refreshes_issued(0), 3);
  EXPECT_GE(h.device.refreshes_issued(1), 3);
  EXPECT_GE(h.device.refreshes_issued(0), due);
  EXPECT_GE(h.device.refreshes_issued(1), due);
  // Rank 0's in-flight refresh charged at least its tRFC. Rank 1 may then
  // legitimately see its own window already past (rank 0's charge advanced
  // the shared clock), so only a lower bound of one charge is portable.
  EXPECT_GE(h.api.stats().dram_busy, t.tRFC);
  EXPECT_GE(h.keeper.wall(), wall_before + t.tRFC);
}

TEST(MultiRankApi, RepeatedPacingIssuesExactlyOneRefreshPerTrefiPerRank) {
  Harness h(two_rank_geometry());
  const dram::TimingParams t = h.api.timing();
  // Walk the clock one tREFI at a time (landing past each window): every
  // step owes each rank exactly one more refresh — no drift, no backlog.
  for (std::int64_t k = 1; k <= 5; ++k) {
    advance_emulated_to_ns(h, (k * t.tREFI.count + t.tRFC.count + 1000) / 1000);
    h.api.refresh_if_due();
    EXPECT_EQ(h.device.refreshes_issued(0), k);
    EXPECT_EQ(h.device.refreshes_issued(1), k);
  }
  EXPECT_EQ(h.api.stats().dram_busy.count, 0);
}

TEST(MultiRankController, CrossRankRowClonePairFallsBack) {
  const dram::Geometry geo = two_rank_geometry();
  Harness h(geo);
  smc::RowCloneMap map;
  // Record the rank-0 pair as clonable under the system-wide bank key; the
  // cross-rank request below must not alias onto it.
  map.record(geo.system_bank(dram::DramAddress{0, 0, 0}), 0, 0, true);
  smc::ControllerOptions opt;
  opt.clonable = &map;
  smc::MemoryController c(std::move(opt));

  tile::Request r;
  r.id = 1;
  r.kind = tile::RequestKind::kRowClone;
  r.paddr = 0;  // rank 0, bank 0, row 0 under the linear mapping.
  r.paddr2 = geo.rank_capacity_bytes();  // rank 1, bank 0, row 0.
  r.arrival_wall = h.keeper.wall();
  h.tile.incoming().push(std::move(r));
  for (int i = 0; i < 10000 && h.tile.outgoing().empty(); ++i) c.step(h.api);
  ASSERT_FALSE(h.tile.outgoing().empty());
  EXPECT_FALSE(h.tile.outgoing().pop().ok);  // CPU fallback, no aliasing.
}

TEST(MultiChannelRowClone, PairTesterRecordsUnderTheControllersKeyNamespace) {
  // The pair tester and the controller must agree on the RowCloneMap key
  // namespace (the system-wide bank index) even off channel 0.
  dram::Geometry geo;
  geo.channels = 2;
  Harness h(geo, /*channel=*/1);
  smc::RowCloneMap map;
  smc::RowClonePairTester tester(h.api, /*trials=*/2);
  ASSERT_TRUE(tester.test(/*bank=*/3, /*src_row=*/10, /*dst_row=*/11, map));

  dram::DramAddress key{3, 0, 0};
  key.channel = 1;
  EXPECT_TRUE(map.clonable(geo.system_bank(key), 10, 11));
  // The channel-0 namespace stays unclaimed: no cross-channel aliasing.
  EXPECT_FALSE(map.clonable(3, 10, 11));
}

// --------------------------------------------------------------------------
// Full system: channel routing and scaling
// --------------------------------------------------------------------------

sys::SystemConfig channels_config(std::uint32_t channels,
                                  smc::MappingKind mapping) {
  sys::SystemConfig cfg = sys::jetson_nano_time_scaling();
  cfg.variation = strong_variation();
  cfg.geometry.channels = channels;
  cfg.mapping = mapping;
  return cfg;
}

/// Requests/us of a stride-64 read burst driven straight into the backend.
double burst_throughput(const sys::SystemConfig& cfg, int n) {
  sys::EasyDramSystem sysm(cfg);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < n; ++i) {
    ids.push_back(sysm.submit_read(static_cast<std::uint64_t>(i) * 64, 100 + i));
  }
  for (const auto id : ids) sysm.wait(id);
  return static_cast<double>(n) / sysm.wall().microseconds();
}

TEST(MultiChannelSystem, ChannelInterleavedMapperRoutesRoundRobin) {
  const sys::SystemConfig cfg =
      channels_config(4, smc::MappingKind::kChannelInterleaved);
  sys::EasyDramSystem sysm(cfg);
  ASSERT_EQ(sysm.num_channels(), 4u);
  for (std::uint64_t line = 0; line < 16; ++line) {
    EXPECT_EQ(sysm.mapper().to_dram(line * 64).channel, line % 4);
  }
}

TEST(MultiChannelSystem, RequestsLandOnTheirChannel) {
  const sys::SystemConfig cfg =
      channels_config(2, smc::MappingKind::kChannelInterleaved);
  sys::EasyDramSystem sysm(cfg);
  // 8 reads alternating channels: each channel's controller must have
  // served exactly its half.
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(sysm.submit_read(static_cast<std::uint64_t>(i) * 64, 100 + i));
  }
  for (const auto id : ids) EXPECT_GT(sysm.wait(id).release_cycle, 0);
  EXPECT_EQ(sysm.api(0).stats().requests_received, 4);
  EXPECT_EQ(sysm.api(1).stats().requests_received, 4);
  EXPECT_EQ(sysm.smc_stats().requests_received, 8);
}

TEST(MultiChannelSystem, FourChannelsBeatOneOnBankParallelBurst) {
  const double one =
      burst_throughput(channels_config(1, smc::MappingKind::kChannelInterleaved), 128);
  const double four =
      burst_throughput(channels_config(4, smc::MappingKind::kChannelInterleaved), 128);
  EXPECT_GT(four, 1.5 * one);
}

TEST(MultiChannelSystem, MultiChannelRunIsDeterministic) {
  auto run_once = [] {
    sys::SystemConfig cfg = channels_config(4, smc::MappingKind::kChannelInterleaved);
    cfg.geometry.ranks_per_channel = 2;
    sys::EasyDramSystem sysm(cfg);
    workloads::TraceBuilder b;
    for (int i = 0; i < 400; ++i) {
      b.load(static_cast<std::uint64_t>(i) * 64);
      if (i % 3 == 0) b.store(static_cast<std::uint64_t>(i) * 64 + (1u << 20));
    }
    cpu::VectorTrace trace(b.take());
    const cpu::RunResult r = sysm.run(trace);
    return std::pair<std::int64_t, std::int64_t>(r.cycles, sysm.wall().count);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_GT(a.first, 0);
  EXPECT_EQ(a, b);
}

TEST(MultiChannelSystem, WeakRowCharacterizationCoversEveryChannel) {
  sys::SystemConfig cfg = sys::jetson_nano_time_scaling();
  cfg.geometry.channels = 2;
  cfg.mapping = smc::MappingKind::kChannelInterleaved;
  // Default variation (not the all-strong test chip): each channel's chip
  // is reseeded, so their weak rows differ and both must be profiled.
  sys::EasyDramSystem sysm(cfg);
  const std::vector<std::uint32_t> banks{0};
  const auto stats = sysm.characterize_and_install_weak_rows(
      banks, /*rows_per_bank=*/32, Picoseconds{9000}, 1 << 14, 4,
      /*lines_per_row=*/4);
  EXPECT_EQ(stats.rows_profiled, 2 * 32);  // Both channels, every row.
}

TEST(MultiChannelSystem, SingleChannelDefaultMatchesLegacyShape) {
  // The default configuration still reports one channel and the historical
  // accessors address it.
  sys::SystemConfig cfg = sys::jetson_nano_time_scaling();
  sys::EasyDramSystem sysm(cfg);
  EXPECT_EQ(sysm.num_channels(), 1u);
  EXPECT_EQ(&sysm.api(), &sysm.api(0));
  EXPECT_EQ(&sysm.device(), &sysm.device(0));
}

}  // namespace
}  // namespace easydram
