#include <gtest/gtest.h>

#include "tile/tile.hpp"

namespace easydram::tile {
namespace {

TEST(BoundedFifoTest, FifoOrder) {
  BoundedFifo<int> f(4);
  f.push(1);
  f.push(2);
  f.push(3);
  EXPECT_EQ(f.pop(), 1);
  EXPECT_EQ(f.pop(), 2);
  EXPECT_EQ(f.pop(), 3);
  EXPECT_TRUE(f.empty());
}

TEST(BoundedFifoTest, CapacityEnforced) {
  BoundedFifo<int> f(2);
  f.push(1);
  f.push(2);
  EXPECT_TRUE(f.full());
  EXPECT_THROW(f.push(3), ContractViolation);
}

TEST(BoundedFifoTest, PopEmptyRejected) {
  BoundedFifo<int> f(2);
  EXPECT_THROW(f.pop(), ContractViolation);
}

TEST(BoundedFifoTest, FrontPeeks) {
  BoundedFifo<int> f(2);
  f.push(7);
  EXPECT_EQ(f.front(), 7);
  EXPECT_EQ(f.size(), 1u);
}

TEST(CycleMeterTest, ChargesAccumulate) {
  CycleMeter m(CoreCostModel{}, Frequency::megahertz(100));
  m.charge(Cycles{10});
  m.charge(Cycles{5});
  EXPECT_EQ(m.total_cycles(), Cycles{15});
}

TEST(CycleMeterTest, TakeReturnsDelta) {
  CycleMeter m(CoreCostModel{}, Frequency::megahertz(100));
  m.charge(Cycles{10});
  EXPECT_EQ(m.take(), Cycles{10});
  EXPECT_EQ(m.take(), Cycles{0});
  m.charge(Cycles{7});
  EXPECT_EQ(m.take(), Cycles{7});
  EXPECT_EQ(m.total_cycles(), Cycles{17});
}

TEST(CycleMeterTest, WallConversion) {
  CycleMeter m(CoreCostModel{}, Frequency::megahertz(100));
  EXPECT_EQ(m.to_wall(Cycles{100}).count, 1'000'000);  // 100 cycles at 10 ns.
}

TEST(CycleMeterTest, NegativeChargeRejected) {
  CycleMeter m(CoreCostModel{}, Frequency::megahertz(100));
  EXPECT_THROW(m.charge(Cycles{-1}), ContractViolation);
}

TEST(EasyTileTest, ScratchpadBudget) {
  TileConfig cfg;
  cfg.scratchpad_bytes = 1024;
  EasyTile tile(cfg);
  tile.reserve_scratchpad(512);
  tile.reserve_scratchpad(512);
  EXPECT_EQ(tile.scratchpad_used(), 1024u);
  EXPECT_THROW(tile.reserve_scratchpad(1), ContractViolation);
}

TEST(EasyTileTest, FifosRespectConfiguredDepths) {
  TileConfig cfg;
  cfg.incoming_fifo_depth = 3;
  cfg.outgoing_fifo_depth = 2;
  EasyTile tile(cfg);
  EXPECT_EQ(tile.incoming().capacity(), 3u);
  EXPECT_EQ(tile.outgoing().capacity(), 2u);
}

}  // namespace
}  // namespace easydram::tile
