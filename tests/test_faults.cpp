#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "dram/device.hpp"
#include "dram/faults.hpp"
#include "smc/bloom.hpp"
#include "smc/easyapi.hpp"
#include "smc/ecc.hpp"
#include "sys/system.hpp"

namespace easydram {
namespace {

// --------------------------------------------------------------------------
// SEC-DED codec
// --------------------------------------------------------------------------

TEST(EccCodecTest, CleanWordsDecodeUntouched) {
  SplitMix64 sm(0xC0DEC);
  for (int i = 0; i < 256; ++i) {
    const std::uint64_t w =
        i == 0 ? 0 : i == 1 ? ~std::uint64_t{0} : i == 2 ? 1 : sm.next();
    const std::uint8_t ck = smc::EccCodec::encode(w);
    const auto d = smc::EccCodec::decode(w, ck);
    EXPECT_EQ(d.status, smc::EccStatus::kOk);
    EXPECT_EQ(d.data, w);
  }
}

TEST(EccCodecTest, CorrectsEverySingleDataBitFlip) {
  SplitMix64 sm(0x51B17);
  for (int rep = 0; rep < 8; ++rep) {
    const std::uint64_t w = sm.next();
    const std::uint8_t ck = smc::EccCodec::encode(w);
    for (int b = 0; b < 64; ++b) {
      const auto d = smc::EccCodec::decode(w ^ (std::uint64_t{1} << b), ck);
      EXPECT_EQ(d.status, smc::EccStatus::kCorrected);
      EXPECT_EQ(d.data, w);
    }
  }
}

TEST(EccCodecTest, FlaggedCheckBitFlipsLeaveDataAlone) {
  // A flip inside the stored check byte is still a single-bit codeword
  // error: reported as a CE, data returned unmodified.
  SplitMix64 sm(0xCB17);
  for (int rep = 0; rep < 8; ++rep) {
    const std::uint64_t w = sm.next();
    const std::uint8_t ck = smc::EccCodec::encode(w);
    for (int b = 0; b < 8; ++b) {
      const auto d =
          smc::EccCodec::decode(w, static_cast<std::uint8_t>(ck ^ (1u << b)));
      EXPECT_EQ(d.status, smc::EccStatus::kCorrected);
      EXPECT_EQ(d.data, w);
    }
  }
}

TEST(EccCodecTest, DetectsDoubleBitFlipsWithoutMiscorrecting) {
  SplitMix64 sm(0xD0B1E);
  for (int rep = 0; rep < 4; ++rep) {
    const std::uint64_t w = sm.next();
    const std::uint8_t ck = smc::EccCodec::encode(w);
    for (int i = 0; i < 64; i += 7) {
      for (int j = i + 1; j < 64; j += 5) {
        const auto d = smc::EccCodec::decode(
            w ^ (std::uint64_t{1} << i) ^ (std::uint64_t{1} << j), ck);
        EXPECT_EQ(d.status, smc::EccStatus::kUncorrectable);
      }
      // One data bit plus one check bit is a double-bit error too.
      const auto d = smc::EccCodec::decode(
          w ^ (std::uint64_t{1} << i), static_cast<std::uint8_t>(ck ^ 1u));
      EXPECT_EQ(d.status, smc::EccStatus::kUncorrectable);
    }
  }
}

// --------------------------------------------------------------------------
// FaultModel
// --------------------------------------------------------------------------

dram::FaultReadContext ctx_at(std::int64_t ps, std::uint32_t fbank,
                              std::uint32_t row, std::uint32_t col) {
  dram::FaultReadContext ctx;
  ctx.at = Picoseconds{ps};
  ctx.fbank = fbank;
  ctx.row = row;
  ctx.col = col;
  return ctx;
}

TEST(FaultModelTest, StuckAtForcesBitOnEveryRead) {
  dram::Geometry geo;
  dram::FaultConfig cfg;
  cfg.enabled = true;
  cfg.plan.stuck.push_back(
      {/*fbank=*/1, /*row=*/7, /*col=*/3, /*byte_in_line=*/12, /*bit=*/5,
       /*value=*/0});
  dram::FaultModel fm(geo, cfg);

  std::array<std::uint8_t, 64> line{};
  line[12] = 0xFF;
  for (int pass = 0; pass < 3; ++pass) {
    auto data = line;
    EXPECT_TRUE(fm.apply_read(ctx_at(1000 + pass, 1, 7, 3), data));
    EXPECT_EQ(data[12], 0xFF & ~(1u << 5));
    auto other = line;  // Neighboring lines stay untouched.
    EXPECT_FALSE(fm.apply_read(ctx_at(1000 + pass, 1, 8, 3), other));
    EXPECT_EQ(other, line);
  }
  // When the stored bit already matches the stuck value nothing changes —
  // a stuck cell only manifests on data that disagrees with it.
  std::array<std::uint8_t, 64> zeros{};
  EXPECT_FALSE(fm.apply_read(ctx_at(5000, 1, 7, 3), zeros));
  EXPECT_EQ(fm.faulty_reads_served(), 3);
}

TEST(FaultModelTest, ScheduledTransientFiresExactlyOnce) {
  dram::Geometry geo;
  dram::FaultConfig cfg;
  cfg.enabled = true;
  cfg.plan.transient.push_back(
      {Picoseconds{2000}, /*fbank=*/0, /*row=*/4, /*col=*/6,
       /*byte_in_line=*/20, /*xor_mask=*/0x3});
  dram::FaultModel fm(geo, cfg);

  std::array<std::uint8_t, 64> clean{};
  auto data = clean;
  EXPECT_FALSE(fm.apply_read(ctx_at(1000, 0, 4, 6), data));  // before `at`
  EXPECT_TRUE(fm.apply_read(ctx_at(2500, 0, 4, 6), data));   // first at/after
  EXPECT_EQ(data[20], 0x3);
  data = clean;
  EXPECT_FALSE(fm.apply_read(ctx_at(3000, 0, 4, 6), data));  // consumed
  EXPECT_EQ(data, clean);
}

std::vector<std::array<std::uint8_t, 64>> transient_sweep(std::uint64_t seed) {
  dram::Geometry geo;
  dram::FaultConfig cfg;
  cfg.enabled = true;
  cfg.seed = seed;
  cfg.transient_read_rate = 0.5;
  dram::FaultModel fm(geo, cfg);
  std::vector<std::array<std::uint8_t, 64>> out;
  for (std::uint32_t i = 0; i < 64; ++i) {
    std::array<std::uint8_t, 64> data{};
    fm.apply_read(ctx_at(100 + i, 0, i, 0), data);
    out.push_back(data);
  }
  return out;
}

TEST(FaultModelTest, RandomTransientsReplayUnderTheSameSeed) {
  const auto a = transient_sweep(0x5EED);
  const auto b = transient_sweep(0x5EED);
  EXPECT_EQ(a, b);  // Same seed: bit-identical draws.
  const auto c = transient_sweep(0x5EED + 1);
  EXPECT_NE(a, c);  // Different seed: a different fault pattern.
}

TEST(FaultModelTest, HammerFlipsAreStickyUntilWritten) {
  dram::Geometry geo;
  dram::FaultConfig cfg;
  cfg.enabled = true;
  cfg.hammer_flip_threshold = 32;
  cfg.hammer_flip_cells = 2;
  dram::FaultModel fm(geo, cfg);

  fm.on_hammer_act(0, 100, 31);  // Below threshold: nothing manifests.
  EXPECT_EQ(fm.faults_manifested(), 0);
  fm.on_hammer_act(0, 100, 32);  // Crossing it flips victim cells.
  EXPECT_GT(fm.faults_manifested(), 0);

  // Find the affected lines; each altered 64-bit word carries at most two
  // flipped bits, so SEC-DED always sees a clean CE or UE (never a 3+-bit
  // aliasing pattern).
  std::vector<std::uint32_t> hit;
  for (std::uint32_t col = 0; col < geo.cols_per_row(); ++col) {
    std::array<std::uint8_t, 64> data{};
    if (!fm.apply_read(ctx_at(9000, 0, 100, col), data)) continue;
    hit.push_back(col);
    for (std::size_t w = 0; w < data.size(); w += 8) {
      std::uint64_t word = 0;
      std::memcpy(&word, data.data() + w, 8);
      EXPECT_LE(std::popcount(word), 2);
    }
  }
  ASSERT_FALSE(hit.empty());

  // Sticky: a later read of the same line is altered again...
  std::array<std::uint8_t, 64> again{};
  EXPECT_TRUE(fm.apply_read(ctx_at(10000, 0, 100, hit[0]), again));
  // ...until a write restores fresh charge.
  fm.on_write(0, 100, hit[0], /*epoch=*/0);
  std::array<std::uint8_t, 64> after{};
  EXPECT_FALSE(fm.apply_read(ctx_at(11000, 0, 100, hit[0]), after));
  const std::array<std::uint8_t, 64> zeros{};
  EXPECT_EQ(after, zeros);
}

// --------------------------------------------------------------------------
// Row retirement
// --------------------------------------------------------------------------

TEST(RowRetirementTest, RemapChainsAndPerBankBudget) {
  dram::Geometry geo;
  geo.rows_per_bank = 128;
  smc::RowRetirementMap map(geo, /*spare_rows_per_bank=*/2);

  EXPECT_EQ(map.remap(3, 10), 10u);  // Identity until retired.
  EXPECT_FALSE(map.is_retired(3, 10));

  const auto s1 = map.retire(3, 10);
  ASSERT_TRUE(s1.has_value());
  EXPECT_EQ(*s1, 126u);  // Spares live at the top of the bank.
  EXPECT_EQ(map.remap(3, 10), 126u);
  EXPECT_TRUE(map.is_retired(3, 10));

  // Retiring the spare itself extends the remap chain.
  const auto s2 = map.retire(3, 126);
  ASSERT_TRUE(s2.has_value());
  EXPECT_EQ(*s2, 127u);
  EXPECT_EQ(map.remap(3, 10), 127u);

  EXPECT_TRUE(map.budget_exhausted(3));
  EXPECT_EQ(map.retire(3, 50), std::nullopt);  // Budget spent.
  EXPECT_EQ(map.retire(3, 10), std::nullopt);  // Already retired.
  EXPECT_FALSE(map.budget_exhausted(0));       // Budgets are per bank.
  EXPECT_EQ(map.rows_retired(), 2);

  EXPECT_EQ(map.note_ce(0, 5), 1);
  EXPECT_EQ(map.note_ce(0, 5), 2);
}

// --------------------------------------------------------------------------
// ErrorPolicy: check store, decode, retirement migration
// --------------------------------------------------------------------------

std::array<std::uint8_t, 64> pattern_line(std::uint64_t seed) {
  std::array<std::uint8_t, 64> data{};
  SplitMix64 sm(seed);
  for (std::size_t w = 0; w < data.size(); w += 8) {
    const std::uint64_t v = sm.next();
    std::memcpy(data.data() + w, &v, 8);
  }
  return data;
}

TEST(ErrorPolicyTest, DecodeLineCorrectsAndDetects) {
  dram::Geometry geo;
  smc::EccConfig cfg;
  cfg.enabled = true;
  smc::ErrorPolicy pol(geo, cfg);

  const auto line = pattern_line(1);
  EXPECT_FALSE(pol.line_protected(0, 5, 2));
  pol.note_write(0, 5, 2, line);
  EXPECT_TRUE(pol.line_protected(0, 5, 2));

  auto clean = line;
  EXPECT_EQ(pol.decode_line(0, 5, 2, clean), smc::EccStatus::kOk);
  EXPECT_EQ(clean, line);

  auto flipped = line;
  flipped[9] ^= 0x10;
  EXPECT_EQ(pol.decode_line(0, 5, 2, flipped), smc::EccStatus::kCorrected);
  EXPECT_EQ(flipped, line);  // Corrected in place.

  auto doubled = line;
  doubled[16] ^= 0x41;  // Two bits of one word.
  EXPECT_EQ(pol.decode_line(0, 5, 2, doubled), smc::EccStatus::kUncorrectable);

  // Never-written lines have nothing to check against and decode clean.
  auto other = line;
  EXPECT_EQ(pol.decode_line(0, 6, 2, other), smc::EccStatus::kOk);
}

TEST(ErrorPolicyTest, RetireRowMigratesDataAndChecks) {
  dram::Geometry geo;
  dram::DramDevice dev(geo, dram::ddr4_1333(), dram::VariationConfig{});
  smc::EccConfig cfg;
  cfg.enabled = true;
  smc::ErrorPolicy pol(geo, cfg);

  const std::uint32_t bank = 1;
  const std::uint32_t row = 42;
  const std::uint32_t fbank = geo.flat_bank(0, bank);
  const auto line = pattern_line(7);
  dev.backdoor_write({bank, row, /*col=*/3}, line);
  pol.note_write(fbank, row, 3, line);

  const auto spare = pol.retire_row(/*rank=*/0, bank, row, dev);
  ASSERT_TRUE(spare.has_value());
  EXPECT_EQ(*spare, geo.rows_per_bank - cfg.spare_rows_per_bank);
  EXPECT_TRUE(pol.retirement().is_retired(fbank, row));
  EXPECT_EQ(pol.retirement().remap(fbank, row), *spare);

  // Data moved to the spare, and the check bits follow the line.
  std::array<std::uint8_t, 64> out{};
  dev.backdoor_read({bank, *spare, 3}, out);
  EXPECT_EQ(out, line);
  EXPECT_TRUE(pol.line_protected(fbank, *spare, 3));
  EXPECT_FALSE(pol.line_protected(fbank, row, 3));
  EXPECT_EQ(pol.decode_line(fbank, *spare, 3, out), smc::EccStatus::kOk);

  // A CE sitting in the stored image is corrected during migration: the
  // spare holds what the check bits protect, not the corrupt copy.
  const std::uint32_t row2 = 43;
  const auto line2 = pattern_line(8);
  auto dirty = line2;
  dirty[4] ^= 0x8;
  dev.backdoor_write({bank, row2, /*col=*/5}, dirty);
  pol.note_write(fbank, row2, 5, line2);
  const auto spare2 = pol.retire_row(0, bank, row2, dev);
  ASSERT_TRUE(spare2.has_value());
  std::array<std::uint8_t, 64> migrated{};
  dev.backdoor_read({bank, *spare2, 5}, migrated);
  EXPECT_EQ(migrated, line2);
}

// --------------------------------------------------------------------------
// data_reliable propagation (reduced-tRCD verdicts survive to completions)
// --------------------------------------------------------------------------

/// An empty weak-row filter declares every row strong, so the controller
/// gambles reduced tRCD everywhere; at 5 ns the gamble loses on every row.
TEST(UnreliablePropagationTest, ReducedTrcdVerdictsAreNeverSilentlyClean) {
  sys::SystemConfig cfg = sys::jetson_nano_time_scaling();
  cfg.reduced_trcd = Picoseconds{5000};
  sys::EasyDramSystem sysm(cfg);
  sysm.install_weak_row_filter(smc::BloomFilter(64, 2));

  std::int64_t now = 100;
  std::vector<std::uint64_t> addrs;
  for (std::uint64_t i = 0; i < 24; ++i) {
    addrs.push_back(i * cfg.geometry.row_bytes);  // One line per row.
  }
  for (const std::uint64_t a : addrs) {
    sysm.wait(sysm.submit_write(a, now += 200));
  }
  int unreliable = 0;
  for (const std::uint64_t a : addrs) {
    const cpu::Completion c = sysm.wait(sysm.submit_read(a, now += 400));
    EXPECT_TRUE(c.ok);  // Without ECC the read still "succeeds"...
    if (!c.data_reliable) ++unreliable;
  }
  // ...but the device's verdict is never laundered into a clean answer.
  EXPECT_GT(unreliable, 0);
}

TEST(UnreliablePropagationTest, EccRetriesReplaceUnreliableData) {
  sys::SystemConfig cfg = sys::jetson_nano_time_scaling();
  cfg.reduced_trcd = Picoseconds{5000};
  cfg.ecc.enabled = true;
  sys::EasyDramSystem sysm(cfg);
  sysm.install_weak_row_filter(smc::BloomFilter(64, 2));

  std::int64_t now = 100;
  std::vector<std::uint64_t> addrs;
  for (std::uint64_t i = 0; i < 24; ++i) {
    addrs.push_back(i * cfg.geometry.row_bytes);
  }
  for (const std::uint64_t a : addrs) {
    sysm.wait(sysm.submit_write(a, now += 200));
  }
  for (const std::uint64_t a : addrs) {
    const cpu::Completion c = sysm.wait(sysm.submit_read(a, now += 400));
    // With the error pipeline on, an unreliable read is retried at nominal
    // timing: an ok completion always carries reliable data, and anything
    // unrecoverable fails with a typed error instead.
    if (c.ok) {
      EXPECT_TRUE(c.data_reliable);
    } else {
      EXPECT_NE(c.error, RequestError::kNone);
    }
  }
  EXPECT_GT(sysm.smc_stats().retries_issued, 0);
}

}  // namespace
}  // namespace easydram
