#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "bender/interpreter.hpp"
#include "common/rng.hpp"
#include "smc/addr_map.hpp"
#include "sys/system.hpp"
#include "workloads/builder.hpp"

// Property-based suites: randomized (seeded, deterministic) traffic checked
// against golden models and cross-configuration invariants.

namespace easydram {
namespace {

using namespace easydram::literals;

dram::VariationConfig strong_variation() {
  dram::VariationConfig v;
  v.min_trcd = Picoseconds{1000};
  v.max_trcd = Picoseconds{1001};
  v.rowclone_pair_success = 1.0;
  return v;
}

// --------------------------------------------------------------------------
// DRAM device vs. a trivial golden store under random legal traffic
// --------------------------------------------------------------------------

class DeviceGoldenModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeviceGoldenModel, LegalTrafficNeverCorruptsData) {
  dram::Geometry geo;
  dram::DramDevice dev(geo, dram::ddr4_1333(), strong_variation());
  Xoshiro256ss rng(GetParam());

  // Golden model: (bank,row,col) -> last written 64-byte value.
  std::map<std::uint64_t, std::array<std::uint8_t, 64>> golden;
  auto key = [](const dram::DramAddress& a) {
    return (static_cast<std::uint64_t>(a.bank) << 40) |
           (static_cast<std::uint64_t>(a.row) << 8) | a.col;
  };

  std::uint32_t violations = 0;
  for (int step = 0; step < 2000; ++step) {
    const dram::DramAddress a{
        static_cast<std::uint32_t>(rng.next_below(geo.num_banks())),
        static_cast<std::uint32_t>(rng.next_below(256)),
        static_cast<std::uint32_t>(rng.next_below(geo.cols_per_row()))};

    // Open the right row legally.
    const auto open = dev.open_row(a.bank);
    if (open && *open != a.row) {
      violations |= dev.issue(dram::Command::kPre, {a.bank, 0, 0},
                              dev.earliest_legal(dram::Command::kPre, a))
                        .violations;
    }
    if (!dev.open_row(a.bank)) {
      violations |= dev.issue(dram::Command::kAct, a,
                              dev.earliest_legal(dram::Command::kAct, a))
                        .violations;
    }

    if (rng.next_below(2) == 0) {
      std::array<std::uint8_t, 64> data{};
      for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
      violations |= dev.issue(dram::Command::kWrite, a,
                              dev.earliest_legal(dram::Command::kWrite, a), data)
                        .violations;
      golden[key(a)] = data;
    } else {
      const dram::IssueResult r = dev.issue(
          dram::Command::kRead, a, dev.earliest_legal(dram::Command::kRead, a));
      EXPECT_TRUE(r.data_reliable);
      const auto it = golden.find(key(a));
      if (it != golden.end()) {
        EXPECT_EQ(std::memcmp(r.data.data(), it->second.data(), 64), 0)
            << "bank " << a.bank << " row " << a.row << " col " << a.col;
      } else {
        for (const std::uint8_t b : r.data) EXPECT_EQ(b, 0);
      }
    }
  }
  EXPECT_EQ(violations, dram::kNone);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeviceGoldenModel,
                         ::testing::Values(1ull, 42ull, 0xDEADBEEFull, 777ull));

// --------------------------------------------------------------------------
// Bender programs against the same golden model (loops + registers)
// --------------------------------------------------------------------------

TEST(BenderGoldenModel, RegisterLoopWritesMatchDirectIssue) {
  dram::Geometry geo;
  dram::DramDevice dev(geo, dram::ddr4_1333(), strong_variation());
  bender::Interpreter interp(dev);

  // Program: for row in [50, 58): ACT row; WR col 3; PRE.
  bender::Program p;
  std::array<std::uint8_t, 64> data{};
  data.fill(0x6B);
  const std::uint32_t idx = p.add_wdata(data);
  p.set_reg(0, 50);
  p.loop_begin(8);
  bender::Instruction act;
  act.op = bender::Opcode::kDdr;
  act.cmd = dram::Command::kAct;
  act.bank = bender::Operand::imm(4);
  act.row = bender::Operand::reg(0);
  p.push(act);
  bender::Instruction wr = act;
  wr.cmd = dram::Command::kWrite;
  wr.col = bender::Operand::imm(3);
  wr.wdata_index = idx;
  p.push(wr);
  p.ddr(dram::Command::kPre, {4, 0, 0});
  p.add_reg(0, 1);
  p.loop_end();
  const auto result = interp.execute(p, 0_ns);
  EXPECT_EQ(result.violations, dram::kNone);

  for (std::uint32_t row = 50; row < 58; ++row) {
    std::array<std::uint8_t, 64> out{};
    dev.backdoor_read({4, row, 3}, out);
    EXPECT_EQ(std::memcmp(out.data(), data.data(), 64), 0) << "row " << row;
  }
}

// --------------------------------------------------------------------------
// Address-mapper invertibility across geometries
// --------------------------------------------------------------------------

/// Geometries the mapper property sweep covers: the paper default, a wide
/// multi-channel/multi-rank system, a non-default bank count, and a
/// non-power-of-two channel count (div/mod layouts must not assume powers
/// of two).
std::vector<dram::Geometry> mapper_geometries() {
  dram::Geometry def;
  dram::Geometry wide;
  wide.channels = 4;
  wide.ranks_per_channel = 2;
  dram::Geometry small_banks;
  small_banks.channels = 2;
  small_banks.ranks_per_channel = 2;
  small_banks.bank_groups = 2;
  small_banks.banks_per_group = 4;
  small_banks.rows_per_bank = 4096;
  dram::Geometry odd;
  odd.channels = 3;
  odd.ranks_per_channel = 2;
  return {def, wide, small_banks, odd};
}

class MapperInvertibility
    : public ::testing::TestWithParam<smc::MappingKind> {};

TEST_P(MapperInvertibility, RoundTripsRandomAddresses) {
  for (const dram::Geometry& geo : mapper_geometries()) {
    const auto mapper = smc::make_mapper(GetParam(), geo);
    Xoshiro256ss rng(0x9A99E5 ^ static_cast<std::uint64_t>(GetParam()));
    const std::uint64_t lines = geo.capacity_bytes() / geo.col_bytes;
    for (int i = 0; i < 2000; ++i) {
      const std::uint64_t paddr = rng.next_below(lines) * geo.col_bytes;
      const dram::DramAddress a = mapper->to_dram(paddr);
      EXPECT_TRUE(geo.contains(a))
          << mapper->name() << " paddr " << paddr << " -> channel " << a.channel
          << " rank " << a.rank << " bank " << a.bank;
      EXPECT_EQ(mapper->to_physical(a), paddr) << mapper->name();
    }
    // And the inverse direction: random coordinates survive the round trip,
    // which (with the forward check) pins the mapping as a bijection.
    for (int i = 0; i < 500; ++i) {
      dram::DramAddress a;
      a.channel = static_cast<std::uint32_t>(rng.next_below(geo.channels));
      a.rank = static_cast<std::uint32_t>(rng.next_below(geo.ranks_per_channel));
      a.bank = static_cast<std::uint32_t>(rng.next_below(geo.num_banks()));
      a.row = static_cast<std::uint32_t>(rng.next_below(geo.rows_per_bank));
      a.col = static_cast<std::uint32_t>(rng.next_below(geo.cols_per_row()));
      const std::uint64_t paddr = mapper->to_physical(a);
      EXPECT_LT(paddr, geo.capacity_bytes()) << mapper->name();
      EXPECT_EQ(mapper->to_dram(paddr), a) << mapper->name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMappers, MapperInvertibility,
                         ::testing::Values(smc::MappingKind::kLinear,
                                           smc::MappingKind::kLineInterleaved,
                                           smc::MappingKind::kChannelInterleaved));

// --------------------------------------------------------------------------
// Cross-mode and cross-run invariants of the full system
// --------------------------------------------------------------------------

struct ModeCase {
  timescale::SystemMode mode;
  std::uint64_t seed;
};

class SystemInvariants : public ::testing::TestWithParam<ModeCase> {};

TEST_P(SystemInvariants, DeterministicAndMonotonic) {
  const auto [mode, seed] = GetParam();
  auto make_cfg = [mode] {
    sys::SystemConfig cfg;
    switch (mode) {
      case timescale::SystemMode::kTimeScaling:
        cfg = sys::jetson_nano_time_scaling();
        break;
      case timescale::SystemMode::kNoTimeScaling:
        cfg = sys::pidram_no_time_scaling();
        break;
      case timescale::SystemMode::kReference:
        cfg = sys::validation_reference();
        break;
    }
    cfg.variation = strong_variation();
    return cfg;
  };

  auto make_trace = [seed] {
    Xoshiro256ss rng(seed);
    workloads::TraceBuilder b;
    for (int i = 0; i < 800; ++i) {
      const std::uint64_t addr = rng.next_below(1 << 22) & ~63ull;
      switch (rng.next_below(4)) {
        case 0: b.load(addr); break;
        case 1: b.load_dependent(addr); break;
        case 2: b.store(addr); break;
        default: b.compute(static_cast<std::uint32_t>(rng.next_below(50))); b.load(addr);
      }
    }
    return cpu::VectorTrace(b.take());
  };

  sys::EasyDramSystem s1(make_cfg());
  auto t1 = make_trace();
  const auto r1 = s1.run(t1);

  sys::EasyDramSystem s2(make_cfg());
  auto t2 = make_trace();
  const auto r2 = s2.run(t2);

  // Determinism: identical cycle counts, instruction counts, wall clocks.
  EXPECT_EQ(r1.cycles, r2.cycles);
  EXPECT_EQ(r1.instructions, r2.instructions);
  EXPECT_EQ(s1.wall().count, s2.wall().count);

  // Sanity invariants: work happened, time moved forward, counters hang
  // together.
  EXPECT_GT(r1.cycles, 0);
  EXPECT_GT(s1.wall().count, 0);
  EXPECT_GE(s1.keeper().counters().mc(), 0);
  EXPECT_FALSE(s1.keeper().counters().critical());
  EXPECT_EQ(s1.smc_stats().requests_received, s2.smc_stats().requests_received);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSeeds, SystemInvariants,
    ::testing::Values(ModeCase{timescale::SystemMode::kTimeScaling, 11},
                      ModeCase{timescale::SystemMode::kTimeScaling, 97},
                      ModeCase{timescale::SystemMode::kNoTimeScaling, 11},
                      ModeCase{timescale::SystemMode::kNoTimeScaling, 97},
                      ModeCase{timescale::SystemMode::kReference, 11},
                      ModeCase{timescale::SystemMode::kReference, 97}));

TEST(SystemInvariants, ReleaseTagsNeverPrecedeIssueTags) {
  sys::SystemConfig cfg = sys::jetson_nano_time_scaling();
  cfg.variation = strong_variation();
  sys::EasyDramSystem sysm(cfg);
  Xoshiro256ss rng(5);
  std::int64_t now = 0;
  for (int i = 0; i < 200; ++i) {
    now += static_cast<std::int64_t>(rng.next_below(300));
    const std::uint64_t addr = rng.next_below(1 << 20) & ~63ull;
    const auto id = sysm.submit_read(addr, now);
    const cpu::Completion c = sysm.wait(id);
    EXPECT_GT(c.release_cycle, now);
    now = std::max(now, c.release_cycle);
  }
}

TEST(SystemInvariants, WallClockCoversDramBusyTime) {
  sys::SystemConfig cfg = sys::jetson_nano_time_scaling();
  cfg.variation = strong_variation();
  sys::EasyDramSystem sysm(cfg);
  workloads::TraceBuilder b;
  for (int i = 0; i < 300; ++i) {
    b.load_dependent(static_cast<std::uint64_t>(i) * 8192);
  }
  cpu::VectorTrace trace(b.take());
  sysm.run(trace);
  EXPECT_GE(sysm.wall(), sysm.smc_stats().dram_busy);
}

}  // namespace
}  // namespace easydram
