#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace easydram {
namespace {

using namespace easydram::literals;

TEST(Contracts, ExpectsThrowsWithLocation) {
  try {
    EASYDRAM_EXPECTS(1 == 2);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Contracts, EnsuresThrows) {
  EXPECT_THROW(EASYDRAM_ENSURES(false), ContractViolation);
  EXPECT_NO_THROW(EASYDRAM_ENSURES(true));
}

TEST(Units, LiteralsAndArithmetic) {
  EXPECT_EQ((1_ns).count, 1000);
  EXPECT_EQ((2_us).count, 2'000'000);
  EXPECT_EQ((1_ms).count, 1'000'000'000);
  EXPECT_EQ((3_ns + 500_ps).count, 3500);
  EXPECT_EQ((3_ns - 500_ps).count, 2500);
  EXPECT_EQ(((1_ns) * 7).count, 7000);
  EXPECT_LT(1_ns, 2_ns);
  EXPECT_DOUBLE_EQ((1500_ps).nanoseconds(), 1.5);
}

TEST(Units, FrequencyPeriod) {
  EXPECT_EQ(Frequency::megahertz(100).period().count, 10'000);
  EXPECT_EQ(Frequency::gigahertz(1).period().count, 1000);
}

TEST(Units, CyclesToPsRoundTrip) {
  const Frequency f = Frequency::megahertz(100);
  EXPECT_EQ(f.cycles_to_ps(1).count, 10'000);
  EXPECT_EQ(f.cycles_to_ps(123).count, 1'230'000);
  EXPECT_EQ(f.ps_to_cycles_floor(Picoseconds{19'999}), 1);
  EXPECT_EQ(f.ps_to_cycles_ceil(Picoseconds{19'999}), 2);
  EXPECT_EQ(f.ps_to_cycles_ceil(Picoseconds{20'000}), 2);
}

TEST(Units, NonDivisibleFrequencyRoundsDeterministically) {
  const Frequency f{1'430'000'000};  // 1.43 GHz: period ~699.3 ps.
  const std::int64_t cycles = 1'000'000;
  const Picoseconds t = f.cycles_to_ps(cycles);
  EXPECT_NEAR(static_cast<double>(t.count), 1e6 * 1e12 / 1.43e9, 1.0);
  // Round-trip may lose at most one cycle to ps rounding.
  EXPECT_NEAR(static_cast<double>(f.ps_to_cycles_floor(t)),
              static_cast<double>(cycles), 1.0);
}

struct FreqCase {
  std::int64_t hertz;
  std::int64_t cycles;
};

class FrequencyProperty : public ::testing::TestWithParam<FreqCase> {};

TEST_P(FrequencyProperty, CeilNeverBelowFloorAndCoversDuration) {
  const auto [hz, cycles] = GetParam();
  const Frequency f{hz};
  const Picoseconds t = f.cycles_to_ps(cycles);
  EXPECT_GE(f.ps_to_cycles_ceil(t), f.ps_to_cycles_floor(t));
  // Ceil covers the duration: converting back does not lose time.
  EXPECT_GE(f.cycles_to_ps(f.ps_to_cycles_ceil(t)) + Picoseconds{1}, t);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FrequencyProperty,
    ::testing::Values(FreqCase{50'000'000, 1}, FreqCase{50'000'000, 999},
                      FreqCase{100'000'000, 12345}, FreqCase{666'666'666, 7},
                      FreqCase{1'000'000'000, 1'000'000},
                      FreqCase{1'430'000'000, 33'333},
                      FreqCase{3'200'000'000, 500'000'001}));

TEST(Rng, SplitMix64IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, HashMixDiffersByKey) {
  EXPECT_NE(hash_mix(1, 2, 3), hash_mix(1, 2, 4));
  EXPECT_NE(hash_mix(1, 2, 3), hash_mix(2, 2, 3));
  EXPECT_EQ(hash_mix(7, 8, 9), hash_mix(7, 8, 9));
}

TEST(Rng, UnitDoubleInRange) {
  SplitMix64 sm(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = to_unit_double(sm.next());
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, XoshiroNextBelowIsBounded) {
  Xoshiro256ss rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, XoshiroUniformish) {
  Xoshiro256ss rng(1234);
  int buckets[10] = {};
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++buckets[rng.next_below(10)];
  for (int b : buckets) {
    EXPECT_NEAR(static_cast<double>(b), n / 10.0, n / 10.0 * 0.1);
  }
}

TEST(Stats, SummaryTracksMinMaxMean) {
  Summary s;
  s.add(1.0);
  s.add(3.0);
  s.add(2.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Stats, GeomeanOfPowers) {
  const double xs[] = {1.0, 4.0, 16.0};
  EXPECT_NEAR(geomean(xs), 4.0, 1e-9);
}

TEST(Stats, GeomeanRejectsNonPositive) {
  const double xs[] = {1.0, 0.0};
  EXPECT_THROW(geomean(xs), StatsError);
  const double all_zero[] = {0.0, 0.0};
  EXPECT_THROW(geomean(all_zero), StatsError);
}

TEST(Stats, GeomeanSkipPolicyAveragesPositives) {
  const double xs[] = {0.0, 4.0, -1.0, 16.0};
  EXPECT_NEAR(geomean(xs, GeomeanPolicy::kSkipNonPositive), 8.0, 1e-9);
  const double all_zero[] = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(geomean(all_zero, GeomeanPolicy::kSkipNonPositive), 0.0);
  // The skip policy also tolerates emptiness (nothing remains -> 0).
  EXPECT_DOUBLE_EQ(geomean({}, GeomeanPolicy::kSkipNonPositive), 0.0);
}

// Unified empty-input policy: a statistic of no samples is an error, not a
// silent 0.0 (matching geomean's existing strict default). Scenarios never
// hit this (every sweep has >= 1 repetition); benches report "n/a" instead.
TEST(Stats, EmptyInputThrowsAcrossTheFamily) {
  EXPECT_THROW(mean({}), StatsError);
  EXPECT_THROW(stddev({}), StatsError);
  EXPECT_THROW(percentile({}, 50.0), StatsError);
  EXPECT_THROW(p50({}), StatsError);
  EXPECT_THROW(p95({}), StatsError);
  EXPECT_THROW(geomean({}), StatsError);
  // The streaming Summary keeps its branchable count() contract instead.
  EXPECT_DOUBLE_EQ(Summary{}.mean(), 0.0);
}

TEST(Stats, StddevSmallSpans) {
  const double one[] = {42.0};
  EXPECT_DOUBLE_EQ(stddev(one), 0.0);
  const double xs[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(stddev(xs), 2.138089935, 1e-6);  // Sample (n-1) stddev.
}

TEST(Stats, PercentileSmallSpans) {
  const double one[] = {7.0};
  EXPECT_DOUBLE_EQ(p50(one), 7.0);
  EXPECT_DOUBLE_EQ(p95(one), 7.0);
  const double xs[] = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(p50(xs), 2.5);
  EXPECT_NEAR(percentile(xs, 100.0), 4.0, 1e-12);
  EXPECT_NEAR(p95(xs), 3.85, 1e-9);
}

TEST(Stats, HistogramBucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-3.0);   // clamps into bucket 0
  h.add(100.0);  // clamps into bucket 9
  EXPECT_EQ(h.count_at(0), 2u);
  EXPECT_EQ(h.count_at(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bucket_low(5), 5.0);
}

TEST(Stats, HistogramRejectsNonFiniteAndHugeSamples) {
  Histogram h(0.0, 10.0, 10);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.rejected(), 3u);
  // Finite but far outside any integer range: must clamp, not overflow
  // (casting the unclamped bucket index to an integer type was UB).
  h.add(1e308);
  h.add(-1e308);
  EXPECT_EQ(h.count_at(9), 1u);
  EXPECT_EQ(h.count_at(0), 1u);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.rejected(), 3u);
}

TEST(Table, PrintsAlignedColumns) {
  TextTable t;
  t.set_header({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2.5"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, FmtFixed) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(2.0, 0), "2");
}

}  // namespace
}  // namespace easydram
