#include <gtest/gtest.h>

#include "dram/variation.hpp"

namespace easydram::dram {
namespace {

using namespace easydram::literals;

class VariationTest : public ::testing::Test {
 protected:
  Geometry geo_;
  VariationConfig cfg_;
  VariationModel model_{geo_, cfg_};
};

TEST_F(VariationTest, Deterministic) {
  const VariationModel other(geo_, cfg_);
  for (std::uint32_t row = 0; row < 512; row += 13) {
    EXPECT_EQ(model_.row_min_trcd(0, row), other.row_min_trcd(0, row));
    EXPECT_EQ(model_.line_min_trcd(1, row, row % 128),
              other.line_min_trcd(1, row, row % 128));
  }
}

TEST_F(VariationTest, DifferentSeedsDiffer) {
  VariationConfig c2 = cfg_;
  c2.seed ^= 0x1234567;
  const VariationModel other(geo_, c2);
  int differing = 0;
  for (std::uint32_t row = 0; row < 256; ++row) {
    if (model_.row_min_trcd(0, row) != other.row_min_trcd(0, row)) ++differing;
  }
  EXPECT_GT(differing, 200);
}

TEST_F(VariationTest, AllRowsBelowNominal) {
  // The paper observes every row works below the nominal 13.5 ns.
  for (std::uint32_t bank = 0; bank < geo_.num_banks(); ++bank) {
    for (std::uint32_t row = 0; row < 4096; row += 7) {
      const Picoseconds v = model_.row_min_trcd(bank, row);
      EXPECT_LT(v, 13500_ps);
      EXPECT_GE(v, cfg_.min_trcd);
      EXPECT_LE(v, cfg_.max_trcd);
    }
  }
}

TEST_F(VariationTest, StrongFractionMatchesPaper) {
  // Fig. 12: 84.5 % of lines are strong (reliable at <= 9.0 ns). Accept a
  // few percent of calibration slack.
  std::int64_t strong = 0, total = 0;
  for (std::uint32_t bank = 0; bank < geo_.num_banks(); ++bank) {
    for (std::uint32_t row = 0; row < 4096; ++row) {
      ++total;
      if (model_.row_min_trcd(bank, row) <= 9000_ps) ++strong;
    }
  }
  const double fraction = static_cast<double>(strong) / static_cast<double>(total);
  EXPECT_NEAR(fraction, 0.845, 0.04);
}

TEST_F(VariationTest, WeakRowsAreSpatiallyClustered) {
  // A weak row's neighbour is much more likely to be weak than the base
  // rate (the paper: "weak cache lines are clustered").
  std::int64_t weak = 0, total = 0, weak_neighbour = 0, weak_pairs = 0;
  for (std::uint32_t bank = 0; bank < 2; ++bank) {
    for (std::uint32_t row = 0; row + 1 < 4096; ++row) {
      const bool w0 = model_.row_min_trcd(bank, row) > 9000_ps;
      const bool w1 = model_.row_min_trcd(bank, row + 1) > 9000_ps;
      ++total;
      if (w0) {
        ++weak;
        ++weak_pairs;
        if (w1) ++weak_neighbour;
      }
    }
  }
  ASSERT_GT(weak, 0);
  const double base_rate = static_cast<double>(weak) / static_cast<double>(total);
  const double cond_rate =
      static_cast<double>(weak_neighbour) / static_cast<double>(weak_pairs);
  EXPECT_GT(cond_rate, 2.0 * base_rate);
}

TEST_F(VariationTest, LineNeverExceedsRowValueAndAnchorsExist) {
  for (std::uint32_t row = 0; row < 64; ++row) {
    const Picoseconds row_v = model_.row_min_trcd(3, row);
    Picoseconds max_line{0};
    for (std::uint32_t col = 0; col < geo_.cols_per_row(); ++col) {
      const Picoseconds line_v = model_.line_min_trcd(3, row, col);
      EXPECT_LE(line_v, row_v);
      max_line = std::max(max_line, line_v);
    }
    // The weakest line carries exactly the row value.
    EXPECT_EQ(max_line, row_v);
  }
}

TEST_F(VariationTest, RowCloneRequiresSameSubarray) {
  for (std::uint32_t row = 0; row < 512; row += 31) {
    EXPECT_FALSE(model_.rowclone_pair_ok(0, row, row + 512));
    EXPECT_FALSE(model_.rowclone_pair_ok(0, row, row + 1024));
  }
}

TEST_F(VariationTest, RowCloneSelfAlwaysOk) {
  EXPECT_TRUE(model_.rowclone_pair_ok(0, 7, 7));
}

TEST_F(VariationTest, RowCloneSuccessRateNearConfig) {
  std::int64_t ok = 0, total = 0;
  for (std::uint32_t bank = 0; bank < 4; ++bank) {
    for (std::uint32_t src = 0; src < 500; ++src) {
      const std::uint32_t dst = src + 1 < 512 ? src + 1 : src - 1;
      ++total;
      if (model_.rowclone_pair_ok(bank, src, dst)) ++ok;
    }
  }
  const double rate = static_cast<double>(ok) / static_cast<double>(total);
  EXPECT_NEAR(rate, cfg_.rowclone_pair_success, 0.05);
}

TEST_F(VariationTest, RowClonePairDecisionIsStable) {
  for (int rep = 0; rep < 3; ++rep) {
    EXPECT_EQ(model_.rowclone_pair_ok(1, 10, 20), model_.rowclone_pair_ok(1, 10, 20));
  }
}

struct ShapeCase {
  double shape;
  double min_expected_strong;
  double max_expected_strong;
};

class ShapeSweep : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(ShapeSweep, ShapeControlsStrongFraction) {
  const auto param = GetParam();
  Geometry geo;
  VariationConfig cfg;
  cfg.shape = param.shape;
  const VariationModel model(geo, cfg);
  std::int64_t strong = 0, total = 0;
  for (std::uint32_t bank = 0; bank < 4; ++bank) {
    for (std::uint32_t row = 0; row < 4096; ++row) {
      ++total;
      if (model.row_min_trcd(bank, row) <= Picoseconds{9000}) ++strong;
    }
  }
  const double fraction = static_cast<double>(strong) / static_cast<double>(total);
  EXPECT_GE(fraction, param.min_expected_strong);
  EXPECT_LE(fraction, param.max_expected_strong);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ShapeSweep,
                         ::testing::Values(ShapeCase{1.0, 0.1, 0.7},
                                           ShapeCase{3.05, 0.78, 0.92},
                                           ShapeCase{8.0, 0.92, 1.0}));

}  // namespace
}  // namespace easydram::dram
